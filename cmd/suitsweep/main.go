// Command suitsweep searches the operating-strategy parameter space
// (p_dl, p_ts, p_ec, p_df — §4.3) for the efficiency-optimal setting,
// reproducing the methodology behind Table 7 ("we ran hundreds of
// simulations to find the optimal values").
//
// Example:
//
//	suitsweep -chip C -offset 97 -instr 3e8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/metrics"
	"suit/internal/report"
	"suit/internal/strategy"
	"suit/internal/units"
	"suit/internal/workload"
)

// sweepPoint is one parameter combination with its outcome.
type sweepPoint struct {
	p   strategy.Params
	eff float64
}

func main() {
	var (
		chipName = flag.String("chip", "C", "CPU model: A, B, C")
		offset   = flag.Int("offset", 97, "undervolt in mV: 70 or 97")
		instrStr = flag.String("instr", "3e8", "instructions per run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		top      = flag.Int("top", 10, "how many settings to print")
	)
	flag.Parse()

	var chip dvfs.Chip
	switch strings.ToUpper(*chipName) {
	case "A":
		chip = dvfs.IntelI9_9900K()
	case "B":
		chip = dvfs.AMDRyzen7700X()
	case "C":
		chip = dvfs.XeonSilver4208()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipName)
		os.Exit(2)
	}
	totalF, err := strconv.ParseFloat(*instrStr, 64)
	if err != nil || totalF < 1e6 {
		fmt.Fprintf(os.Stderr, "bad -instr %q\n", *instrStr)
		os.Exit(2)
	}
	instr := uint64(totalF)

	// Sweep grid around the Table 7 region. CPU ℬ's slow switching gets
	// a coarser, longer-deadline grid.
	deadlines := []float64{10, 20, 30, 50, 80} // µs
	spans := []float64{150, 450, 900}          // µs
	if chip.Transition.FreqDelay > units.Microseconds(100) {
		deadlines = []float64{300, 500, 700, 1000, 1500}
		spans = []float64{7000, 14000, 28000}
	}
	counts := []int{2, 3, 4, 6}
	factors := []float64{4, 9, 14, 20}

	// A representative workload mix: sparse, medium, dense, bursty.
	var benches []workload.Benchmark
	for _, n := range []string{"557.xz", "502.gcc", "527.cam4", "525.x264", "VLC"} {
		b, ok := workload.ByName(n)
		if !ok {
			fmt.Fprintln(os.Stderr, "missing workload", n)
			os.Exit(1)
		}
		benches = append(benches, b)
	}

	var grid []strategy.Params
	for _, dl := range deadlines {
		for _, ts := range spans {
			for _, ec := range counts {
				for _, df := range factors {
					grid = append(grid, strategy.Params{
						Deadline:       units.Microseconds(dl),
						TimeSpan:       units.Microseconds(ts),
						MaxExceptions:  ec,
						DeadlineFactor: df,
					})
				}
			}
		}
	}
	fmt.Printf("sweeping %d parameter settings × %d workloads on %s at −%d mV...\n",
		len(grid), len(benches), chip.Name, *offset)

	results := make([]sweepPoint, len(grid))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i, p := range grid {
		wg.Add(1)
		go func(i int, p strategy.Params) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var effs []float64
			for _, b := range benches {
				pp := p
				o, err := core.Run(core.Scenario{
					Chip: chip, Bench: b, Kind: core.KindFV,
					SpendAging: *offset == 97, Instructions: instr,
					Params: &pp, Seed: *seed,
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				effs = append(effs, o.Efficiency)
			}
			mean, _ := metrics.Mean(effs)
			results[i] = sweepPoint{p: p, eff: mean}
		}(i, p)
	}
	wg.Wait()
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, firstErr)
		os.Exit(1)
	}

	sort.Slice(results, func(i, j int) bool { return results[i].eff > results[j].eff })
	t := report.NewTable(fmt.Sprintf("Top %d parameter settings (mean efficiency over %d workloads)", *top, len(benches)),
		"p_dl", "p_ts", "p_ec", "p_df", "efficiency")
	for i, r := range results {
		if i >= *top {
			break
		}
		t.AddRow(r.p.Deadline.String(), r.p.TimeSpan.String(),
			fmt.Sprintf("%d", r.p.MaxExceptions), fmt.Sprintf("%.0f", r.p.DeadlineFactor),
			report.Pct(r.eff))
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spread := results[0].eff - results[len(results)-1].eff
	fmt.Printf("\nbest-to-worst spread: %.2f points — the paper notes workloads tolerate a wide range (§6.4)\n", spread*100)
	fmt.Printf("Table 7 reference: 𝒜&𝒞 30 µs/450 µs/3/14; ℬ 700 µs/14 ms/4/9\n")
}
