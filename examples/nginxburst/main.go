// nginxburst: the §6.6 contrast — for an HTTPS server whose request
// handling is dominated by AES-NI bursts, DVFS curve switching works well
// while instruction emulation is catastrophic, because every single
// AESENC round pays the emulation-call delay.
//
// The example also shows the third option: the Dynamic strategy that
// emulates isolated traps but switches curves for bursts (§6.8).
//
//	go run ./examples/nginxburst
package main

import (
	"fmt"
	"log"
	"os"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/report"
	"suit/internal/workload"
)

func main() {
	chip := dvfs.IntelI9_9900K()
	nginx := workload.Nginx()

	t := report.NewTable(
		fmt.Sprintf("nginx (HTTPS, AES bursts) on %s at −97 mV", chip.Name),
		"strategy", "perf", "power", "efficiency", "traps", "emulated")

	for _, kind := range []core.StrategyKind{core.KindFV, core.KindEmul, core.KindDynamic} {
		o, err := core.Run(core.Scenario{
			Chip:         chip,
			Bench:        nginx,
			Kind:         kind,
			SpendAging:   true,
			Instructions: 100_000_000,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(string(kind),
			report.Pct(o.Change.Perf), report.Pct(o.Change.Power), report.Pct(o.Efficiency),
			fmt.Sprintf("%d", o.Run.Exceptions), fmt.Sprintf("%d", o.Run.Emulated))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nWhy: each request encrypts ~100 kB — hundreds of thousands of AESENC")
	fmt.Println("rounds back to back. fV pays one trap + one curve switch per burst;")
	fmt.Println("emulation pays the 0.77 µs call delay for every single round (§3.4, §6.6).")
}
