// Package service wraps internal/engine in a sweep-as-a-service layer:
// the suitd daemon's HTTP/JSON API submits sweep and sim specs, every
// spec is content-addressed by its canonical fingerprint (PR 1's
// fingerprint→seed contract), and identical submissions — concurrent or
// repeated — coalesce onto one engine execution via the job registry
// and the engine's single-flight dedup. Results persist in a
// content-addressed store next to the engine's scenario cache, progress
// streams to subscribers, a bounded admission queue applies
// backpressure, and graceful drain reuses the checkpoint journal so a
// restarted daemon resumes byte-identically.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"suit/internal/core"
	"suit/internal/engine"
	"suit/internal/strategy"
	"suit/internal/units"
)

// Spec is one submitted unit of work: a parameter sweep (kind "sweep")
// or a single-setting evaluation (kind "sim") over a workload mix.
// The zero value of every field means "use the default", so a minimal
// submission body is `{}` — the full Table 7 sweep on chip C.
type Spec struct {
	// Kind is "sweep" (rank Params — or the full Table 7 grid when
	// Params is empty — by mean efficiency) or "sim" (evaluate the
	// chip's paper-default parameters). Default "sweep".
	Kind string `json:"kind,omitempty"`
	// Chip is the CPU model letter: A, B or C. Default C.
	Chip string `json:"chip,omitempty"`
	// OffsetMV selects the undervolt: 70 or 97 mV. Default 97.
	OffsetMV int `json:"offset_mv,omitempty"`
	// Instructions per scenario run. Default 2e6 (the smoke size);
	// minimum 1e4.
	Instructions uint64 `json:"instructions,omitempty"`
	// Seed is the base seed for deterministic per-point seed
	// derivation, exactly like suitsweep -seed. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Top bounds the ranked points kept in the result. Default 10.
	Top int `json:"top,omitempty"`
	// Benches names registry workloads; empty means the default sweep
	// mix (sparse, medium, dense, bursty).
	Benches []string `json:"benches,omitempty"`
	// Params is the explicit grid to rank. Empty means the chip's full
	// Table 7 search region for "sweep", or the chip's paper-default
	// setting for "sim".
	Params []ParamSpec `json:"params,omitempty"`
}

// ParamSpec is one strategy parameter setting in JSON-friendly units.
type ParamSpec struct {
	DeadlineUS     float64 `json:"p_dl_us"`
	TimeSpanUS     float64 `json:"p_ts_us"`
	MaxExceptions  int     `json:"p_ec"`
	DeadlineFactor float64 `json:"p_df"`
}

func (p ParamSpec) params() strategy.Params {
	return strategy.Params{
		Deadline:       units.Microseconds(p.DeadlineUS),
		TimeSpan:       units.Microseconds(p.TimeSpanUS),
		MaxExceptions:  p.MaxExceptions,
		DeadlineFactor: p.DeadlineFactor,
	}
}

// Spec kinds.
const (
	KindSweep = "sweep"
	KindSim   = "sim"
)

// Normalize fills defaults and validates, returning the canonical form
// whose Fingerprint identifies the work. Two submissions that normalize
// equal are the same job.
func (s Spec) Normalize() (Spec, error) {
	if s.Kind == "" {
		s.Kind = KindSweep
	}
	if s.Kind != KindSweep && s.Kind != KindSim {
		return s, fmt.Errorf("bad kind %q: want %q or %q", s.Kind, KindSweep, KindSim)
	}
	if s.Chip == "" {
		s.Chip = "C"
	}
	chip, err := core.ChipByName(s.Chip)
	if err != nil {
		return s, err
	}
	s.Chip = strings.ToUpper(s.Chip)
	switch s.OffsetMV {
	case 0:
		s.OffsetMV = 97
	case 70, 97:
	default:
		return s, fmt.Errorf("bad offset_mv %d: the guardband model covers 70 and 97", s.OffsetMV)
	}
	if s.Instructions == 0 {
		s.Instructions = 2_000_000
	}
	if s.Instructions < 10_000 {
		return s, fmt.Errorf("bad instructions %d: need at least 1e4 for a meaningful run", s.Instructions)
	}
	if s.Seed == 0 {
		s.Seed = 1 // suitsweep's default, so served and direct sweeps align
	}
	if s.Top == 0 {
		s.Top = 10
	}
	if s.Top < 1 {
		return s, fmt.Errorf("bad top %d: need at least one ranked setting", s.Top)
	}
	if len(s.Benches) == 0 {
		s.Benches = append([]string(nil), core.SweepBenchNames...)
	}
	if _, err := core.BenchesByName(s.Benches); err != nil {
		return s, err
	}
	for i, p := range s.Params {
		if p.DeadlineUS <= 0 || p.TimeSpanUS <= 0 || p.MaxExceptions < 1 || p.DeadlineFactor <= 0 {
			return s, fmt.Errorf("bad params[%d]: all of p_dl_us, p_ts_us, p_df must be positive and p_ec >= 1", i)
		}
	}
	if s.Kind == KindSim && len(s.Params) == 0 {
		// The paper-default setting for this chip, spelled out so the
		// fingerprint does not depend on ParamsFor's implementation.
		d := core.ParamsFor(chip)
		s.Params = []ParamSpec{{
			DeadlineUS:     float64(d.Deadline) / float64(units.Microseconds(1)),
			TimeSpanUS:     float64(d.TimeSpan) / float64(units.Microseconds(1)),
			MaxExceptions:  d.MaxExceptions,
			DeadlineFactor: d.DeadlineFactor,
		}}
	}
	return s, nil
}

// Fingerprint is the canonical description of a normalized spec — the
// content address of the work. Every field that influences the result
// appears; an empty Params means "the chip's full Table 7 grid", which
// is stable across submissions by construction.
func (s Spec) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suitd/v1|kind=%s|chip=%s|offset=%d|instr=%d|seed=%d|top=%d|benches=%s",
		s.Kind, s.Chip, s.OffsetMV, s.Instructions, s.Seed, s.Top, strings.Join(s.Benches, ","))
	if len(s.Params) == 0 {
		b.WriteString("|grid=table7")
	}
	for _, p := range s.Params {
		fmt.Fprintf(&b, "|params=%g/%g/%d/%g", p.DeadlineUS, p.TimeSpanUS, p.MaxExceptions, p.DeadlineFactor)
	}
	return b.String()
}

// ID is the job identifier derived from the fingerprint: 32 hex
// characters of its SHA-256, the same digest family as the engine's
// cache filenames. POSTing the same spec always yields the same ID.
func (s Spec) ID() string {
	sum := sha256.Sum256([]byte(s.Fingerprint()))
	return hex.EncodeToString(sum[:16])
}

// grid returns the parameter settings a normalized spec ranks.
func (s Spec) grid() []strategy.Params {
	if len(s.Params) > 0 {
		g := make([]strategy.Params, len(s.Params))
		for i, p := range s.Params {
			g[i] = p.params()
		}
		return g
	}
	chip, err := core.ChipByName(s.Chip)
	if err != nil {
		return nil // unreachable on a normalized spec
	}
	return core.SweepGrid(chip)
}

// Scenarios expands a normalized spec into the engine's job list: one
// scenario per (grid point, workload), each carrying an explicit seed
// derived exactly like the engine would under BaseSeed = Spec.Seed —
// DeriveSeed over the zero-seed scenario fingerprint — so a served
// sweep is point-for-point identical to `suitsweep -seed N`.
func (s Spec) Scenarios() ([]core.Scenario, []strategy.Params, error) {
	chip, err := core.ChipByName(s.Chip)
	if err != nil {
		return nil, nil, err
	}
	benches, err := core.BenchesByName(s.Benches)
	if err != nil {
		return nil, nil, err
	}
	grid := s.grid()
	scs := make([]core.Scenario, 0, len(grid)*len(benches))
	for i := range grid {
		for _, b := range benches {
			sc := core.Scenario{
				Chip: chip, Bench: b, Kind: core.KindFV,
				SpendAging:   s.OffsetMV == 97,
				Instructions: s.Instructions,
				Params:       &grid[i],
			}
			// The explicit seed makes the shared service engine
			// (BaseSeed 0) reproduce what a dedicated engine with
			// BaseSeed = s.Seed would derive for this scenario.
			sc.Seed = engine.DeriveSeed(s.Seed, sc.Fingerprint())
			scs = append(scs, sc)
		}
	}
	return scs, grid, nil
}
