package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
//
// A well-formed suppression names one analyzer and gives a non-empty
// reason; it silences that analyzer's diagnostics on the same line or
// on the line directly below (so it works both trailing a statement and
// standing on its own line above one). The reason ends at the first
// "//" so a trailing comment does not count as explanation.
//
// Suppressions are themselves checked: a missing reason or an unknown
// analyzer name is reported as a diagnostic (analyzer "lintallow") and
// the suppression does not take effect.
const AllowPrefix = "lint:allow"

// An Allow is one well-formed suppression comment.
type Allow struct {
	Pos      token.Pos
	Line     int    // line the comment starts on
	File     string // filename the comment appears in
	Analyzer string
	Reason   string
}

// CollectAllows extracts every //lint:allow comment from files.
// Malformed suppressions are returned as diagnostics; only well-formed
// ones participate in Suppress.
func CollectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]Allow, []Diagnostic) {
	var allows []Allow
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, " ")
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				// A nested comment is not a reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				switch {
				case name == "":
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
					})
				case !known[name]:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow names unknown analyzer " + name,
					})
				case reason == "":
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow " + name + " is missing a reason; unexplained suppressions are not honored",
					})
				default:
					allows = append(allows, Allow{
						Pos:      c.Pos(),
						Line:     pos.Line,
						File:     pos.Filename,
						Analyzer: name,
						Reason:   reason,
					})
				}
			}
		}
	}
	return allows, bad
}

// Suppress drops diagnostics matched by a suppression: same analyzer,
// same file, and the diagnostic sits on the comment's line (trailing
// form) or the line below (standalone form).
func Suppress(fset *token.FileSet, diags []Diagnostic, allows []Allow) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.Analyzer == d.Analyzer && a.File == pos.Filename &&
				(a.Line == pos.Line || a.Line+1 == pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
