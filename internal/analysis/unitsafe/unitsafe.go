// Package unitsafe guards the internal/units quantity types (Volt,
// Hertz, Watt, Joule, Second, Celsius). Two mistakes defeat them:
// passing a raw numeric literal where a unit type is expected (the
// untyped constant converts silently, so "SetVdd(0.85)" and
// "SetVdd(850)" both compile, one of them 1000x wrong) and laundering
// one unit into another through a bare conversion
// ("units.Second(f)" with f a Hertz). Both are flagged; call sites are
// steered to the units constructors (units.MilliVolts, units.MHz,
// units.Microseconds, ...) and combinators (units.Energy, units.Cycles,
// units.TimeFor).
package unitsafe

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/types"

	"suit/internal/analysis"
)

// unitsPkg is the path suffix of the package defining quantity types.
const unitsPkg = "internal/units"

// Analyzer flags raw literals passed into unit-typed parameters/fields
// and bare cross-unit conversions.
var Analyzer = &analysis.Analyzer{
	Name: "units",
	Doc: "numeric literals must not flow into internal/units quantity types without a " +
		"constructor, and distinct unit types must not be mixed through bare conversions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The units package itself defines the constructors and
	// combinators; raw float math is its job.
	if analysis.PkgPathMatches(pass.Pkg.Path(), []string{unitsPkg}) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, e)
			case *ast.CompositeLit:
				checkCompositeLit(pass, e)
			}
			return true
		})
	}
	return nil
}

// unitType returns the named internal/units type of t, or nil.
func unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if !analysis.PkgPathMatches(named.Obj().Pkg().Path(), []string{unitsPkg}) {
		return nil
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return nil
	}
	return named
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		checkConversion(pass, call, tv.Type)
		return
	}
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		u := unitType(pt)
		if u == nil {
			continue
		}
		if lit, ok := rawNonzeroLiteral(pass, arg); ok {
			pass.Reportf(arg.Pos(),
				"raw literal %s passed as %s; construct the quantity explicitly (units.MilliVolts, units.MHz, units.Microseconds, units.%s(...))",
				lit, u.Obj().Name(), u.Obj().Name())
		}
	}
}

// checkConversion flags U(expr) when expr is, or visibly contains, a
// value of a different unit type V: converting microseconds into
// megahertz should go through units.TimeFor/units.Cycles, not a cast.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type) {
	u := unitType(target)
	if u == nil || len(call.Args) != 1 {
		return
	}
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return true
		}
		v := unitType(tv.Type)
		if v == nil || types.Identical(v, u) {
			return true
		}
		pass.Reportf(call.Pos(),
			"bare conversion mixes units: %s built from a %s; use the units package combinators (units.Energy, units.Cycles, units.TimeFor) or convert through an explicit rate",
			u.Obj().Name(), v.Obj().Name())
		return false
	})
}

func checkCompositeLit(pass *analysis.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range cl.Elts {
		var ft types.Type
		var fname string
		var val ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					ft, fname = st.Field(j).Type(), key.Name
					break
				}
			}
			val = kv.Value
		} else if i < st.NumFields() {
			ft, fname, val = st.Field(i).Type(), st.Field(i).Name(), el
		}
		if ft == nil {
			continue
		}
		u := unitType(ft)
		if u == nil {
			continue
		}
		if lit, ok := rawNonzeroLiteral(pass, val); ok {
			pass.Reportf(val.Pos(),
				"raw literal %s assigned to field %s (%s); construct the quantity explicitly (units.MilliVolts, units.MHz, units.Microseconds, units.%s(...))",
				lit, fname, u.Obj().Name(), u.Obj().Name())
		}
	}
}

// rawNonzeroLiteral reports whether e is a nonzero constant expression
// built purely from numeric literals (0.85, -97, 10*60). Named
// constants and function results carry intent and pass; zero is exempt
// because 0 mV and 0 µs denote the same quantity, so a bare 0 cannot be
// misread. The returned string renders the offending expression.
func rawNonzeroLiteral(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	pure := true
	sawLit := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.ParenExpr, *ast.UnaryExpr, *ast.BinaryExpr:
		case *ast.BasicLit:
			sawLit = true
		default:
			pure = false
		}
		return pure
	})
	if !pure || !sawLit {
		return "", false
	}
	if v := constant.ToFloat(tv.Value); v.Kind() == constant.Float || v.Kind() == constant.Int {
		if f, _ := constant.Float64Val(v); f == 0 {
			return "", false
		}
	}
	return render(pass, e), true
}

// render prints the expression as it appears in source.
func render(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "literal"
	}
	return buf.String()
}

// callSignature resolves the signature of a non-conversion call.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}
