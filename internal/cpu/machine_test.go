package cpu

import (
	"testing"

	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/trace"
	"suit/internal/units"
)

// testTrace builds a trace with faultable events at the given indices.
func testTrace(total uint64, ipc float64, idx ...uint64) *trace.Trace {
	tr := &trace.Trace{Name: "test", Total: total, IPC: ipc}
	for _, i := range idx {
		tr.Events = append(tr.Events, trace.Event{Index: i, Op: isa.OpAESENC})
	}
	return tr
}

func testConfig(tr ...*trace.Trace) Config {
	chip := dvfs.XeonSilver4208()
	gb := guardband.Default()
	return Config{
		Chip:           chip,
		Traces:         tr,
		Offset:         gb.EfficientOffset(isa.FaultableMask, true, true),
		Faults:         gb,
		HardenedIMUL:   true,
		ExceptionDelay: units.Microseconds(0.34),
		Emul:           emul.NewCostModel(units.Microseconds(0.77)),
		Seed:           1,
	}
}

// pinnedBase runs the trace on the conservative baseline.
func runWith(t *testing.T, cfg Config, s Strategy) Result {
	t.Helper()
	m, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// simple strategies for unit tests.

type pinnedBase struct{}

func (pinnedBase) Name() string                                      { return "base" }
func (pinnedBase) Init(Controller)                                   {}
func (pinnedBase) OnDisabledOpcode(Controller, int, int, isa.Opcode) {}
func (pinnedBase) OnDeadline(Controller, int)                        {}

// fvLite is Listing 1 without thrashing prevention.
type fvLite struct {
	deadline units.Second
}

func (fvLite) Name() string { return "fvLite" }
func (fvLite) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, ModeE)
	}
}
func (s fvLite) OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode) {
	ctl.RequestWait(domain, ModeCf)
	ctl.RequestAsync(domain, ModeCv)
	ctl.EnableInstructions(domain)
	ctl.ArmDeadline(domain, s.deadline)
}
func (s fvLite) OnDeadline(ctl Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, ModeE)
}

type emulAll struct{}

func (emulAll) Name() string { return "e" }
func (emulAll) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, ModeE)
	}
}
func (emulAll) OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode) {
	ctl.Emulate(op)
}
func (emulAll) OnDeadline(Controller, int) { panic("no deadline") }

func TestConfigValidation(t *testing.T) {
	good := testConfig(testTrace(1000, 1, 10))
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Traces = nil },
		func(c *Config) { c.Traces = make([]*trace.Trace, 99) },
		func(c *Config) { c.Traces = []*trace.Trace{nil} },
		func(c *Config) { c.Traces = []*trace.Trace{testTrace(0, 0)} },
		func(c *Config) { c.Offset = units.MilliVolts(5) },
		func(c *Config) { c.Faults = nil },
		func(c *Config) { c.ExceptionDelay = -1 },
		func(c *Config) { c.IMULOverhead = []float64{1, 2, 3} },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil strategy accepted")
	}
}

func TestPointsOrdering(t *testing.T) {
	m, err := New(testConfig(testTrace(1000, 1, 10)), pinnedBase{})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Points()
	// The efficient point runs at least as fast as the baseline (TDP
	// headroom from undervolting) at a lower voltage than the
	// conservative curve would require.
	if p.E.F < p.Base.F {
		t.Errorf("E.F %v < Base.F %v", p.E.F, p.Base.F)
	}
	cons := dvfs.XeonSilver4208().Vendor
	if p.E.V >= cons.VoltageAt(p.E.F) {
		t.Errorf("E.V %v not below conservative %v", p.E.V, cons.VoltageAt(p.E.F))
	}
	// Cf: same voltage as E, lower frequency, safe on the vendor curve.
	if p.Cf.V != p.E.V {
		t.Errorf("Cf.V %v != E.V %v", p.Cf.V, p.E.V)
	}
	if p.Cf.F >= p.E.F {
		t.Errorf("Cf.F %v not below E.F %v", p.Cf.F, p.E.F)
	}
	if cons.VoltageAt(p.Cf.F) > p.Cf.V {
		t.Errorf("Cf is not conservative-curve safe: needs %v, has %v", cons.VoltageAt(p.Cf.F), p.Cf.V)
	}
	// Cv: the conservative curve at full sustained (TDP-legal)
	// performance — the baseline operating point.
	if p.Cv != p.Base {
		t.Errorf("Cv = %+v, want the baseline point %+v", p.Cv, p.Base)
	}
	if p.Cv.V != cons.VoltageAt(p.Cv.F) {
		t.Errorf("Cv voltage %v not on the conservative curve", p.Cv.V)
	}
}

func TestBaselineRunDeterministicTiming(t *testing.T) {
	// 1e9 instructions at IPC 2 on the baseline frequency must take
	// total/(IPC·f) seconds exactly — no traps, no switches.
	tr := testTrace(1_000_000_000, 2)
	cfg := testConfig(tr)
	res := runWith(t, cfg, pinnedBase{})
	m, _ := New(cfg, pinnedBase{})
	f := m.Points().Base.F
	want := units.Second(float64(tr.Total) / (tr.IPC * float64(f)))
	if diff := float64(res.Duration-want) / float64(want); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("duration %v, want %v", res.Duration, want)
	}
	if res.Exceptions != 0 || res.Switches != 0 || res.DeadlineFires != 0 {
		t.Errorf("baseline had events: %+v", res)
	}
	if len(res.Faults) != 0 {
		t.Errorf("baseline recorded faults: %v", res.Faults)
	}
	if res.Instructions != tr.Total {
		t.Errorf("instructions %d", res.Instructions)
	}
	if res.Energy <= 0 || res.AvgPower <= 0 {
		t.Errorf("no energy accounted: %v %v", res.Energy, res.AvgPower)
	}
}

func TestTrapSwitchesToConservativeAndBack(t *testing.T) {
	// One faultable instruction mid-stream: expect one exception, a
	// switch to Cf/Cv and a deadline-driven return to E.
	tr := testTrace(200_000_000, 2, 100_000_000)
	cfg := testConfig(tr)
	res := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions != 1 {
		t.Fatalf("exceptions = %d, want 1", res.Exceptions)
	}
	if res.DeadlineFires != 1 {
		t.Errorf("deadline fires = %d, want 1", res.DeadlineFires)
	}
	if len(res.Faults) != 0 {
		t.Errorf("SUIT run recorded faults: %v", res.Faults)
	}
	// Residency: mostly E, a little conservative time.
	if res.EfficientShare() < 0.9 {
		t.Errorf("efficient share = %v, want > 0.9", res.EfficientShare())
	}
	if res.Residency[ModeCf]+res.Residency[ModeCv] == 0 {
		t.Error("no conservative residency despite a trap")
	}
}

func TestSUITNeverFaults(t *testing.T) {
	// Dense faultable stream under fV: the monitor must stay clean.
	var idx []uint64
	for i := uint64(1_000_000); i < 50_000_000; i += 1_000_000 {
		idx = append(idx, i)
	}
	tr := testTrace(60_000_000, 2, idx...)
	res := runWith(t, testConfig(tr), fvLite{deadline: units.Microseconds(30)})
	if len(res.Faults) != 0 {
		t.Fatalf("SUIT recorded %d faults; first: %+v", len(res.Faults), res.Faults[0])
	}
	if res.Exceptions == 0 {
		t.Fatal("no exceptions despite dense faultable stream")
	}
}

func TestUnsafeUndervoltingFaults(t *testing.T) {
	// A pre-SUIT CPU blindly undervolted (pinned to E, nothing disabled)
	// executes faultable instructions below their margin: the monitor
	// must record silent corruption — the attack SUIT prevents.
	tr := testTrace(10_000_000, 2, 5_000_000)
	cfg := testConfig(tr)
	cfg.AllowUnsafe = true
	res := runWith(t, cfg, unsafePinnedE{})
	if len(res.Faults) == 0 {
		t.Fatal("unsafe undervolting recorded no faults")
	}
	f := res.Faults[0]
	if f.Op != isa.OpAESENC || f.Margin <= 0 {
		t.Errorf("fault record %+v", f)
	}
	if res.Exceptions != 0 {
		t.Error("nothing was disabled; no exceptions expected")
	}
}

type unsafePinnedE struct{}

func (unsafePinnedE) Name() string { return "unsafe" }
func (unsafePinnedE) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.RequestAsync(d, ModeE)
	}
}
func (unsafePinnedE) OnDisabledOpcode(Controller, int, int, isa.Opcode) {}
func (unsafePinnedE) OnDeadline(Controller, int)                        {}

func TestHardwareInterlockRefusesUnsafeEfficient(t *testing.T) {
	// Selecting the efficient curve without disabling the instructions
	// must be refused by SUIT hardware (§3.2).
	defer func() {
		if recover() == nil {
			t.Fatal("interlock did not fire")
		}
	}()
	cfg := testConfig(testTrace(1000, 1, 10))
	m, err := New(cfg, unsafePinnedE{}) // AllowUnsafe is false here
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Run()
}

func TestEmulationConsumesInstructions(t *testing.T) {
	tr := testTrace(10_000_000, 2, 1_000_000, 2_000_000, 3_000_000)
	res := runWith(t, testConfig(tr), emulAll{})
	if res.Exceptions != 3 || res.Emulated != 3 {
		t.Fatalf("exceptions=%d emulated=%d, want 3/3", res.Exceptions, res.Emulated)
	}
	// Never left the efficient curve.
	if res.Residency[ModeCf] != 0 && res.Residency[ModeCv] != 0 {
		t.Error("emulation strategy switched curves")
	}
	if res.EfficientShare() < 0.99 {
		t.Errorf("efficient share %v", res.EfficientShare())
	}
	if len(res.Faults) != 0 {
		t.Errorf("faults under emulation: %v", res.Faults)
	}
}

func TestDeadlineResetByFaultableExecution(t *testing.T) {
	// Two faultable instructions closer together than the deadline: the
	// second must execute on the conservative curve without a second
	// trap, and the timer must fire only after the burst ends.
	ipc := 2.0
	f := 3.2e9                             // Xeon top frequency
	gap30us := uint64(30e-6 * ipc * f / 2) // half a deadline apart
	first := uint64(50_000_000)
	tr := testTrace(200_000_000, ipc, first, first+gap30us)
	res := runWith(t, testConfig(tr), fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions != 1 {
		t.Errorf("exceptions = %d, want 1 (second instruction inside deadline)", res.Exceptions)
	}
	if res.DeadlineFires != 1 {
		t.Errorf("deadline fires = %d, want 1", res.DeadlineFires)
	}
	if len(res.Faults) != 0 {
		t.Errorf("faults: %v", res.Faults)
	}
}

func TestGapLongerThanDeadlineRetraps(t *testing.T) {
	ipc := 2.0
	f := 3.2e9
	gap1ms := uint64(1e-3 * ipc * f)
	first := uint64(50_000_000)
	tr := testTrace(2_000_000_000, ipc, first, first+gap1ms)
	res := runWith(t, testConfig(tr), fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions != 2 {
		t.Errorf("exceptions = %d, want 2 (gap exceeds deadline)", res.Exceptions)
	}
	if res.DeadlineFires != 2 {
		t.Errorf("deadline fires = %d, want 2", res.DeadlineFires)
	}
}

func TestSUITCostsTimeVersusBaseline(t *testing.T) {
	// With the same operating point pinned, a trap-heavy stream under
	// fV must take longer than the same stream with nothing disabled at
	// the same efficient point (transitions cost time)...
	var idx []uint64
	for i := uint64(1_000_000); i < 190_000_000; i += 2_000_000 {
		idx = append(idx, i)
	}
	tr := testTrace(200_000_000, 2, idx...)
	cfg := testConfig(tr)
	suit := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})

	unsafeCfg := cfg
	unsafeCfg.AllowUnsafe = true
	unsafe := runWith(t, unsafeCfg, unsafePinnedE{})
	if suit.Duration <= unsafe.Duration {
		t.Errorf("SUIT %v not slower than unconstrained efficient %v", suit.Duration, unsafe.Duration)
	}
	// ...but SUIT is safe while the pinned-efficient run faulted.
	if len(suit.Faults) != 0 {
		t.Error("SUIT faulted")
	}
	if len(unsafe.Faults) == 0 {
		t.Error("unsafe run did not fault")
	}
}

func TestMultiCoreSingleDomainInterference(t *testing.T) {
	// On a single-domain chip (𝒜), one core's faultable bursts drag all
	// cores' curves; duration of a clean co-runner grows versus running
	// the trap-heavy core alone on a per-core-domain chip.
	var idx []uint64
	for i := uint64(1_000_000); i < 90_000_000; i += 1_000_000 {
		idx = append(idx, i)
	}
	noisy := testTrace(100_000_000, 2, idx...)
	clean := testTrace(100_000_000, 2)

	mk := func(chip dvfs.Chip) Config {
		cfg := testConfig(noisy, clean)
		cfg.Chip = chip
		return cfg
	}
	single := runWith(t, mk(dvfs.IntelI9_9900K()), fvLite{deadline: units.Microseconds(30)})
	perCore := runWith(t, mk(dvfs.XeonSilver4208()), fvLite{deadline: units.Microseconds(30)})

	// On the single-domain chip the clean core suffers with the noisy
	// one; on per-core domains it does not. Compare the clean core's
	// completion relative to its own solo time per chip.
	solo := func(chip dvfs.Chip) Result {
		cfg := testConfig(clean)
		cfg.Chip = chip
		return runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	}
	slowdownSingle := float64(single.PerCore[1]) / float64(solo(dvfs.IntelI9_9900K()).PerCore[0])
	slowdownPerCore := float64(perCore.PerCore[1]) / float64(solo(dvfs.XeonSilver4208()).PerCore[0])
	if slowdownSingle < 1.001 {
		t.Errorf("clean core on single domain unaffected by noisy neighbour: %v", slowdownSingle)
	}
	if slowdownPerCore > 1.0001 {
		t.Errorf("clean core on per-core domains slowed by neighbour: %v", slowdownPerCore)
	}
	if slowdownPerCore >= slowdownSingle {
		t.Errorf("per-core slowdown %v not below single-domain slowdown %v",
			slowdownPerCore, slowdownSingle)
	}
}

func TestMSRsReflectState(t *testing.T) {
	tr := testTrace(10_000_000, 2, 5_000_000)
	cfg := testConfig(tr)
	m, err := New(cfg, emulAll{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got, err := m.MSRs(0).Read(0x1503); err != nil || got != 1 { // SUITDOCount
		t.Errorf("DO count MSR = %d (err %v), want 1", got, err)
	}
	if got, err := m.MSRs(0).Read(0x1500); err != nil || got == 0 { // SUITDisable
		t.Errorf("disable MSR empty under emulation strategy (err %v)", err)
	}
}

func TestResultEfficientShareEmpty(t *testing.T) {
	var r Result
	if r.EfficientShare() != 0 {
		t.Error("empty result must have zero efficient share")
	}
}
