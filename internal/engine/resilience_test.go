package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// checkNoGoroutineLeak polls until the goroutine count returns to its
// pre-test level; every recovery path must leave the pool fully
// drained.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanicContainment: a panicking job must become a typed error with
// the panic value and stack attached — never a crashed sweep.
func TestPanicContainment(t *testing.T) {
	before := runtime.NumGoroutine()
	bomb := func(_ context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 3 {
			panic("simulated core meltdown")
		}
		return computeFn(context.Background(), s, seed)
	}
	e := New(specKey, bomb, Options{Workers: 2})
	_, err := e.Run(context.Background(), specs(8))
	if err == nil {
		t.Fatal("panicking job did not fail the FailFast sweep")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if fmt.Sprint(pe.Value) != "simulated core meltdown" {
		t.Errorf("panic value %v lost", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if st := e.Stats(); st.Panicked == 0 {
		t.Errorf("stats did not count the panic: %+v", st)
	}
	checkNoGoroutineLeak(t, before)
}

// TestPanicContainmentUnderWatchdog: the same containment must hold on
// the watchdog path, where the attempt runs in a child goroutine.
func TestPanicContainmentUnderWatchdog(t *testing.T) {
	before := runtime.NumGoroutine()
	bomb := func(_ context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 1 {
			panic("boom under watchdog")
		}
		return computeFn(context.Background(), s, seed)
	}
	e := New(specKey, bomb, Options{Workers: 2, JobTimeout: time.Second})
	_, err := e.Run(context.Background(), specs(4))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRetryPreservesSeedAndResult is the determinism half of the retry
// contract: every attempt reuses the same derived seed, so a run that
// needed retries returns results identical to a clean run.
func TestRetryPreservesSeedAndResult(t *testing.T) {
	in := specs(16)
	clean := New(specKey, computeFn, Options{Workers: 4, BaseSeed: 11})
	want, err := clean.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seedsSeen := map[string][]uint64{}
	fails := map[string]int{}
	flaky := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		k := specKey(s)
		mu.Lock()
		seedsSeen[k] = append(seedsSeen[k], seed)
		n := fails[k]
		fails[k]++
		mu.Unlock()
		if s.ID%5 == 0 && n < 2 {
			return testResult{}, fmt.Errorf("transient failure %d of %s", n, k)
		}
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, flaky, Options{Workers: 4, BaseSeed: 11, Retries: 2})
	got, err := e.Run(context.Background(), in)
	if err != nil {
		t.Fatalf("retries did not absorb the transient failures: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spec %d: retried run diverged from clean run: %+v vs %+v", i, got[i], want[i])
		}
	}
	for k, seeds := range seedsSeen {
		for _, s := range seeds[1:] {
			if s != seeds[0] {
				t.Fatalf("%s: retry changed the derived seed: %v", k, seeds)
			}
		}
	}
	if st := e.Stats(); st.Retried != 2*4 { // IDs 0,5,10,15 each retried twice
		t.Errorf("Retried = %d, want 8 (%+v)", st.Retried, st)
	}
}

// TestRetryExhaustion: a job that fails more often than Retries allows
// surfaces its last error — with no leaked goroutines.
func TestRetryExhaustion(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("permanent fault")
	failing := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 2 {
			return testResult{}, boom
		}
		return computeFn(ctx, s, seed)
	}
	var attempts atomic.Int64
	counting := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 2 {
			attempts.Add(1)
		}
		return failing(ctx, s, seed)
	}
	e := New(specKey, counting, Options{Workers: 2, Retries: 3})
	_, err := e.Run(context.Background(), specs(6))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped permanent fault", err)
	}
	if n := attempts.Load(); n != 4 {
		t.Errorf("made %d attempts, want 4 (1 + 3 retries)", n)
	}
	checkNoGoroutineLeak(t, before)
}

// TestWatchdogTimeout: a hung (context-honoring) job is killed by the
// watchdog, reported as a *TimeoutError, and leaves no goroutines.
func TestWatchdogTimeout(t *testing.T) {
	before := runtime.NumGoroutine()
	hang := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 3 {
			<-ctx.Done() // a hung simulation; only the watchdog gets us out
			return testResult{}, ctx.Err()
		}
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, hang, Options{Workers: 2, JobTimeout: 30 * time.Millisecond})
	_, err := e.Run(context.Background(), specs(8))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TimeoutError", err, err)
	}
	if te.Timeout != 30*time.Millisecond {
		t.Errorf("timeout %v recorded, want 30ms", te.Timeout)
	}
	if st := e.Stats(); st.TimedOut == 0 {
		t.Errorf("stats did not count the timeout: %+v", st)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCollectPolicy: failures under Collect do not stop the sweep; the
// partial results carry every successful index and the RunError names
// each failed fingerprint in spec order.
func TestCollectPolicy(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	failing := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 2 || s.ID == 5 {
			return testResult{}, boom
		}
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, failing, Options{Workers: 4, Policy: Collect})
	got, err := e.Run(context.Background(), specs(8))
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if len(re.Failures) != 2 || re.Jobs != 8 {
		t.Fatalf("RunError = %+v, want 2 failures of 8 jobs", re)
	}
	wantKeys := []string{specKey(testSpec{ID: 2}), specKey(testSpec{ID: 5})}
	gotKeys := re.Keys()
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Errorf("failure keys %v, want %v (spec order)", gotKeys, wantKeys)
		}
	}
	for i, r := range got {
		switch i {
		case 2, 5:
			if r != (testResult{}) {
				t.Errorf("failed spec %d holds non-zero result %+v", i, r)
			}
		default:
			want, _ := computeFn(context.Background(), testSpec{ID: i}, DeriveSeed(0, specKey(testSpec{ID: i})))
			if r != want {
				t.Errorf("spec %d: %+v, want %+v", i, r, want)
			}
		}
	}
	if st := e.Stats(); st.Failed != 2 || st.Ran != 6 {
		t.Errorf("stats = %+v, want 2 failed / 6 ran", st)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCollectFailuresAreNotMemoized: a failed fingerprint must be
// recomputable — the next Run of the same batch retries it rather than
// replaying the failure from the memo.
func TestCollectFailuresAreNotMemoized(t *testing.T) {
	var failOnce atomic.Bool
	failOnce.Store(true)
	flaky := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 1 && failOnce.Swap(false) {
			return testResult{}, errors.New("first pass fails")
		}
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, flaky, Options{Workers: 2, Policy: Collect})
	if _, err := e.Run(context.Background(), specs(3)); err == nil {
		t.Fatal("first pass should report the failure")
	}
	got, err := e.Run(context.Background(), specs(3))
	if err != nil {
		t.Fatalf("second pass should heal: %v", err)
	}
	want, _ := computeFn(context.Background(), testSpec{ID: 1}, DeriveSeed(0, specKey(testSpec{ID: 1})))
	if got[1] != want {
		t.Errorf("healed result %+v, want %+v", got[1], want)
	}
}

// TestRetryDelayDeterministic pins the backoff contract: a pure
// function of (base, fingerprint, attempt), growing with attempt,
// jittered apart across fingerprints, and zero for a zero base.
func TestRetryDelayDeterministic(t *testing.T) {
	base := 10 * time.Millisecond
	if RetryDelay(base, "k", 1) != RetryDelay(base, "k", 1) {
		t.Error("backoff not deterministic")
	}
	if RetryDelay(0, "k", 3) != 0 {
		t.Error("zero base must retry immediately")
	}
	if RetryDelay(base, "k", 4) <= RetryDelay(base, "k", 0) {
		t.Error("backoff does not grow with attempt")
	}
	if RetryDelay(base, "a", 0) == RetryDelay(base, "b", 0) {
		t.Error("distinct fingerprints should jitter apart")
	}
	// Bounded: never more than 32x base plus half-jitter.
	if d := RetryDelay(base, "k", 40); d > 48*base {
		t.Errorf("backoff %v exceeds its cap", d)
	}
}

// TestCancellationReturnsPartialResults: aborting mid-sweep returns the
// completed prefix so callers (and the checkpoint) keep finished work.
func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	slow := func(c context.Context, s testSpec, seed uint64) (testResult, error) {
		if started.Add(1) == 5 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return computeFn(c, s, seed)
	}
	e := New(specKey, slow, Options{Workers: 2})
	got, err := e.Run(ctx, specs(50))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got == nil {
		t.Fatal("cancellation must return the partial results, not nil")
	}
	if len(got) != 50 {
		t.Fatalf("partial result slice has %d entries, want 50", len(got))
	}
}
