// Command suitlint is the SUIT simulator's static-analysis suite. It
// bundles six domain analyzers:
//
//	determinism  no wall clock, global rand, unseeded sources or
//	             order-dependent map iteration in result-affecting
//	             packages (the engine's cross--j replay contract);
//	             wall-clock taint propagates through helpers in ANY
//	             package and is charged at result-affecting call sites
//	exhaustive   switches over enum-like simulator types cover every
//	             constant or panic in an explicit default
//	units        no raw literals into internal/units quantity types,
//	             no bare cross-unit conversions
//	panicpath    panic only for machine invariants; I/O and command
//	             paths return errors
//	hotpath      math.Pow in internal/cpu's per-event code must carry
//	             an explained allow (the constant-voltage fast path
//	             makes the slow path exceptional)
//	allocfree    no allocation sites reachable from //suit:hotpath
//	             roots; hotness propagates over static calls and method
//	             values, and "may allocate" facts cross package
//	             boundaries
//
// Findings are suppressed line-by-line with an explained comment:
//
//	//lint:allow <analyzer> <reason>
//
// A trailing allow covers its own line; a standalone allow covers the
// line below. When the full analyzer set runs, an allow that suppresses
// nothing is itself reported (staleallow), so dead suppressions cannot
// accumulate.
//
// It runs in two modes:
//
//	suitlint [-only=a,b] [-json] [packages]   standalone
//	go vet -vettool=suitlint pkgs             as a vet tool (cmd/go protocol)
//
// -json emits machine-readable findings on stdout, stably sorted by
// (file, line, col, analyzer, message), for CI annotation.
//
// Exit status is 0 when the tree is clean, 2 when diagnostics were
// reported, 1 on usage or load errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"suit/internal/analysis"
	"suit/internal/analysis/allocfree"
	"suit/internal/analysis/determinism"
	"suit/internal/analysis/exhaustive"
	"suit/internal/analysis/hotpath"
	"suit/internal/analysis/load"
	"suit/internal/analysis/panicpath"
	"suit/internal/analysis/unitchecker"
	"suit/internal/analysis/unitsafe"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		exhaustive.Analyzer,
		unitsafe.Analyzer,
		panicpath.Analyzer,
		hotpath.Analyzer,
		allocfree.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// Vet tool protocol, part 1: `suitlint -V=full` prints a version
	// line whose content hash the go command uses as a cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		printVersion()
		return
	}
	// Vet tool protocol, part 2: `suitlint -flags` describes the flags
	// the go command may forward. The analyzers take none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet tool protocol, part 3: one JSON config file per package.
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		unitchecker.Run(args[len(args)-1], analyzers())
		return
	}

	os.Exit(standalone(args))
}

// A finding is the JSON wire form of one diagnostic. Suppressible is
// false for the framework's own meta-diagnostics (malformed or stale
// //lint:allow comments), which cannot themselves be allowed away.
type finding struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	Suppressible bool   `json:"suppressible"`
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("suitlint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout (stable sort: file, line, col, analyzer, message)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: suitlint [-only=a,b] [-json] [packages]")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "\n%s:\n  %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	run := analyzers()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range run {
			byName[a.Name] = a
		}
		run = run[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "suitlint: unknown analyzer %q\n", name)
				return 1
			}
			run = append(run, a)
		}
	}

	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitlint:", err)
		return 1
	}

	// One session across every package: load.Packages returns them in
	// dependency order, so facts flow bottom-up. Stale-allow detection
	// is only sound when every analyzer runs — under -only, an unused
	// allow may belong to an analyzer that simply did not execute.
	session := analysis.NewSession(run)
	session.ReportStale = *only == ""

	// Findings are reported relative to the working directory when they
	// fall under it, so CI annotations map onto repository paths.
	wd, _ := os.Getwd()

	var all []finding
	for _, pkg := range pkgs {
		diags, err := session.RunPackage(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suitlint:", err)
			return 1
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			all = append(all, finding{
				File:     relPath(wd, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Suppressible: d.Analyzer != analysis.LintAllowName &&
					d.Analyzer != analysis.StaleAllowName,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []finding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "suitlint:", err)
			return 1
		}
	} else {
		for _, f := range all {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "suitlint: %d finding(s)\n", len(all))
		}
		return 2
	}
	return 0
}

// relPath returns name relative to wd when it lies underneath it, and
// name unchanged otherwise (including when wd is empty).
func relPath(wd, name string) string {
	if wd == "" {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}

// printVersion emits "<name> version <id>" where id hashes the binary,
// so the go command's vet cache invalidates when suitlint changes.
func printVersion() {
	name := "suitlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}
