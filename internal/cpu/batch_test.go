package cpu

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"suit/internal/dvfs"
	"suit/internal/trace"
	"suit/internal/units"
)

// randomBatchMember builds one randomized (Config, Strategy) pair for
// the batch differential: mixed core counts (multi-core members are not
// fast-forward eligible, so both stepping regimes appear in one batch),
// mixed chips and all four test strategies.
func randomBatchMember(rng *rand.Rand) (Config, Strategy) {
	ncores := 1 + rng.IntN(3)
	total := uint64(150_000 + rng.IntN(400_000))
	var trs []*trace.Trace
	for c := 0; c < ncores; c++ {
		trs = append(trs, randomDiffTrace(rng, total))
	}
	cfg := testConfig(trs...)
	cfg.Seed = rng.Uint64()
	if rng.IntN(2) == 1 {
		cfg.Chip = dvfs.AMDRyzen7700X()
	}
	if rng.IntN(3) == 0 {
		cfg.SampleEvery = units.Microseconds(50)
	}
	var s Strategy
	switch rng.IntN(4) {
	case 0:
		s = fvLite{deadline: units.Microseconds(float64(5 + rng.IntN(50)))}
	case 1:
		s = fvThrash{
			deadline:      units.Microseconds(float64(5 + rng.IntN(50))),
			window:        units.Microseconds(float64(100 + rng.IntN(900))),
			maxExceptions: 1 + rng.IntN(5),
		}
	case 2:
		s = emulAll{}
	default:
		s = pinnedBase{}
	}
	return cfg, s
}

// TestDifferentialBatchedVsSolo is the batched-execution oracle: K
// randomized machines co-stepped through Batch.Run must dispatch the
// exact (t, kind, who) event sequence per member — and produce
// bitwise-identical Results — as the same K machines run solo.
// Co-stepping only interleaves work across machines, never reorders it
// within one.
func TestDifferentialBatchedVsSolo(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 2026))
	for _, k := range []int{2, 4, 8} {
		for iter := 0; iter < 6; iter++ {
			cfgs := make([]Config, k)
			strats := make([]Strategy, k)
			for i := range cfgs {
				cfgs[i], strats[i] = randomBatchMember(rng)
			}

			soloLogs := make([][]eventRecord, k)
			soloRes := make([]Result, k)
			for i := range cfgs {
				m, err := New(cfgs[i], strats[i])
				if err != nil {
					t.Fatalf("k=%d iter=%d member %d: %v", k, iter, i, err)
				}
				m.evLog = &soloLogs[i]
				if soloRes[i], err = m.Run(); err != nil {
					t.Fatalf("k=%d iter=%d member %d solo run: %v", k, iter, i, err)
				}
			}

			batchLogs := make([][]eventRecord, k)
			ms := make([]*Machine, k)
			for i := range cfgs {
				m, err := New(cfgs[i], strats[i])
				if err != nil {
					t.Fatalf("k=%d iter=%d member %d: %v", k, iter, i, err)
				}
				m.evLog = &batchLogs[i]
				ms[i] = m
			}
			b, err := NewBatch(ms)
			if err != nil {
				t.Fatalf("k=%d iter=%d: NewBatch: %v", k, iter, err)
			}
			batchRes, err := b.Run()
			if err != nil {
				t.Fatalf("k=%d iter=%d: batch run: %v", k, iter, err)
			}
			if len(batchRes) != k {
				t.Fatalf("k=%d iter=%d: batch returned %d results", k, iter, len(batchRes))
			}

			for i := 0; i < k; i++ {
				if len(soloLogs[i]) != len(batchLogs[i]) {
					t.Fatalf("k=%d iter=%d member %d (%s): solo dispatched %d events, batched %d",
						k, iter, i, strats[i].Name(), len(soloLogs[i]), len(batchLogs[i]))
				}
				for j := range soloLogs[i] {
					if soloLogs[i][j] != batchLogs[i][j] {
						t.Fatalf("k=%d iter=%d member %d (%s): event %d diverges: solo (t=%v kind=%d who=%d) vs batched (t=%v kind=%d who=%d)",
							k, iter, i, strats[i].Name(), j,
							soloLogs[i][j].t, soloLogs[i][j].kind, soloLogs[i][j].who,
							batchLogs[i][j].t, batchLogs[i][j].kind, batchLogs[i][j].who)
					}
				}
				if !reflect.DeepEqual(soloRes[i], batchRes[i]) {
					t.Fatalf("k=%d iter=%d member %d (%s): results diverge:\nsolo:    %+v\nbatched: %+v",
						k, iter, i, strats[i].Name(), soloRes[i], batchRes[i])
				}
			}
		}
	}
}

// TestDifferentialFastForwardVsStepped pins the analytic fast-forward
// against the plain event-queue stepper on the same machine: with the
// noFastForward hook set, every core arrival goes through the heap, and
// the dispatched sequence plus the Result must still match bitwise.
func TestDifferentialFastForwardVsStepped(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 404))
	for iter := 0; iter < 12; iter++ {
		// Single core, single domain: the only shape fast-forward
		// engages on, so the comparison is never vacuous.
		total := uint64(150_000 + rng.IntN(400_000))
		cfg := testConfig(randomDiffTrace(rng, total))
		cfg.Seed = rng.Uint64()
		var s Strategy
		switch rng.IntN(4) {
		case 0:
			s = fvLite{deadline: units.Microseconds(float64(5 + rng.IntN(50)))}
		case 1:
			s = fvThrash{
				deadline:      units.Microseconds(float64(5 + rng.IntN(50))),
				window:        units.Microseconds(float64(100 + rng.IntN(900))),
				maxExceptions: 1 + rng.IntN(5),
			}
		case 2:
			s = emulAll{}
		default:
			s = pinnedBase{}
		}

		runOne := func(noFF bool) ([]eventRecord, Result) {
			m, err := New(cfg, s)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			var log []eventRecord
			m.evLog = &log
			m.noFastForward = noFF
			res, err := m.Run()
			if err != nil {
				t.Fatalf("iter %d (noFF=%v): %v", iter, noFF, err)
			}
			return log, res
		}
		ffLog, ffRes := runOne(false)
		stepLog, stepRes := runOne(true)

		if len(ffLog) != len(stepLog) {
			t.Fatalf("iter %d (%s): fast-forward dispatched %d events, stepped %d",
				iter, s.Name(), len(ffLog), len(stepLog))
		}
		for i := range ffLog {
			if ffLog[i] != stepLog[i] {
				t.Fatalf("iter %d (%s): event %d diverges: ff (t=%v kind=%d who=%d) vs stepped (t=%v kind=%d who=%d)",
					iter, s.Name(), i,
					ffLog[i].t, ffLog[i].kind, ffLog[i].who,
					stepLog[i].t, stepLog[i].kind, stepLog[i].who)
			}
		}
		if !reflect.DeepEqual(ffRes, stepRes) {
			t.Fatalf("iter %d (%s): results diverge:\nff:      %+v\nstepped: %+v", iter, s.Name(), ffRes, stepRes)
		}
	}
}

func TestNewBatchValidation(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := NewBatch([]*Machine{nil}); err == nil {
		t.Error("nil member accepted")
	}
}
