package core

import (
	"fmt"
	"strings"
	"sync"

	"suit/internal/trace"
	"suit/internal/workload"
)

// This file implements the shared trace-artifact store: a process-wide,
// content-addressed cache of generated instruction traces. A sweep
// point's run machine and baseline machine request byte-identical
// traces (same benchmark, instruction count and derived seed), and
// within one process several sweep points can share a (workload, seed)
// pair too — regenerating a 50k-event stream for each requester is pure
// waste. The store builds each distinct artifact exactly once
// (single-flight) and hands every requester the same immutable
// *trace.Trace; the simulator treats traces as read-only, so sharing
// one pointer across machines and engine workers is race-free.
//
// Artifacts are keyed by the full generative input — every field of the
// trace.Spec the benchmark expands to, plus the post-generation noSIMD
// filter — so two requests share an artifact if and only if generation
// would have produced identical bytes. The key deliberately ignores
// chip and strategy: those live outside trace generation.
//
// Eviction is FIFO over completed artifacts, bounded by a total-event
// budget: a sweep touches each (workload, seed) pair in a burst (run +
// baseline machines of one point, then possibly neighbouring points)
// and never returns to it, so retaining the newest artifacts is enough
// and memory stays bounded on arbitrarily long sweeps. Hit/miss
// counters are telemetry only — results never depend on cache state,
// and an evicted artifact is simply regenerated bit-identically.

// traceArtifactBudget bounds the store's resident size in trace events
// (~16 bytes each). A var so tests can force eviction cheaply.
var traceArtifactBudget uint64 = 8 << 20

// traceArtifact is one store entry. ready closes when generation
// finished; tr/err are immutable afterwards.
type traceArtifact struct {
	ready chan struct{}
	tr    *trace.Trace
	err   error
}

type traceArtifactStore struct {
	mu      sync.Mutex
	enabled bool
	entries map[string]*traceArtifact
	order   []string // completed-key FIFO, eviction order
	usage   uint64   // total events of completed entries

	hits, misses, evictions uint64
}

var traceArtifacts = &traceArtifactStore{
	enabled: true,
	entries: map[string]*traceArtifact{},
}

// TraceArtifactStats is a snapshot of the store's counters.
type TraceArtifactStats struct {
	Hits, Misses, Evictions uint64
	ResidentEvents          uint64
}

// TraceArtifactStatsNow snapshots the shared trace-artifact cache
// (telemetry for tests and /metrics; results never depend on it).
func TraceArtifactStatsNow() TraceArtifactStats {
	s := traceArtifacts
	s.mu.Lock()
	defer s.mu.Unlock()
	return TraceArtifactStats{Hits: s.hits, Misses: s.misses, Evictions: s.evictions, ResidentEvents: s.usage}
}

// artifactKey content-addresses one generation request: the expanded
// trace.Spec (name, total, IPC, seed and the concrete source list) plus
// the noSIMD post-filter. %#v on the source values spells out their
// concrete type and every field, so any parameter change changes the
// key.
func artifactKey(spec trace.Spec, nosimd bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%g|%d|%v", spec.Name, spec.Total, spec.IPC, spec.Seed, nosimd)
	for _, src := range spec.Sources {
		fmt.Fprintf(&b, "|%#v", src)
	}
	return b.String()
}

// sharedTrace returns the trace for (bench, total, seed), optionally
// noSIMD-filtered, through the artifact store. With sharing disabled it
// generates a private copy, exactly as core.Run always did.
func sharedTrace(b workload.Benchmark, total, seed uint64, nosimd bool) (*trace.Trace, error) {
	generate := func() (*trace.Trace, error) {
		tr, err := b.GenerateTrace(total, seed)
		if err != nil || !nosimd {
			return tr, err
		}
		return tr.WithoutSIMD(), nil
	}

	s := traceArtifacts
	s.mu.Lock()
	if !s.enabled {
		s.mu.Unlock()
		return generate()
	}
	key := artifactKey(b.TraceSpec(total, seed), nosimd)
	if a, ok := s.entries[key]; ok {
		s.hits++
		s.mu.Unlock()
		<-a.ready
		return a.tr, a.err
	}
	a := &traceArtifact{ready: make(chan struct{})}
	s.entries[key] = a
	s.misses++
	s.mu.Unlock()

	a.tr, a.err = generate()
	close(a.ready)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[key] != a {
		// The store was reset (SetBatchedExecution toggle) mid-flight;
		// the result is still valid for this requester, just unretained.
		return a.tr, a.err
	}
	if a.err != nil {
		delete(s.entries, key)
		return nil, a.err
	}
	s.usage += uint64(len(a.tr.Events))
	s.order = append(s.order, key)
	for s.usage > traceArtifactBudget && len(s.order) > 1 {
		victim := s.order[0]
		s.order = s.order[1:]
		if v, ok := s.entries[victim]; ok {
			s.usage -= uint64(len(v.tr.Events))
			delete(s.entries, victim)
			s.evictions++
		}
	}
	return a.tr, a.err
}

// batchingEnabled reports whether SetBatchedExecution left batched
// execution (trace sharing + co-stepped run/baseline machines) on.
func batchingEnabled() bool {
	s := traceArtifacts
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enabled
}

// SetBatchedExecution toggles batched sweep execution process-wide:
// the shared trace-artifact store and the co-stepped run/baseline
// machine batch in Run. On by default; turning it off reverts to fully
// independent per-point execution (the suitbench "unbatched" leg and
// suitsweep's -batch=false). Outputs are bit-identical either way —
// this knob trades only speed and memory. Turning it off drops every
// cached artifact.
func SetBatchedExecution(on bool) {
	s := traceArtifacts
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enabled == on {
		return
	}
	s.enabled = on
	s.entries = map[string]*traceArtifact{}
	s.order = nil
	s.usage = 0
}
