// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary, sized for this repo's
// needs. The container this project builds in has no module proxy, so
// the suitlint analyzers (internal/analysis/{determinism,exhaustive,
// unitsafe,panicpath}) run on a framework built entirely from the
// standard library's go/ast, go/types and go/importer packages.
//
// The shapes mirror x/tools deliberately: an Analyzer has a Name, a Doc
// string and a Run function over a Pass; a Pass exposes the FileSet,
// the parsed files, the type-checked package and the types.Info; Run
// reports Diagnostics. If the module ever gains a real
// golang.org/x/tools dependency the analyzers port over mechanically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// enforces, shown by `suitlint -help`.
	Doc string

	// Run executes the check and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only; _test.go is never analyzed
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, type-checked package ready for analysis.
// Drivers (the standalone loader, the vet unitchecker, analysistest)
// construct it and hand it to Run.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run executes the given analyzers over pkg and returns the surviving
// diagnostics, sorted by position. It is the single code path shared by
// every driver:
//
//  1. _test.go files are excluded from analysis (tests may use
//     wall-clock time, ad-hoc randomness and raw literals freely);
//  2. //lint:allow comments are collected once per package; malformed
//     ones (missing reason, unknown analyzer) become diagnostics;
//  3. each analyzer runs over the remaining files;
//  4. diagnostics matched by a well-formed suppression are dropped.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, diags := CollectAllows(pkg.Fset, files, known)

	for _, a := range analyzers {
		var out []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &out,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		diags = append(diags, Suppress(pkg.Fset, out, allows)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// PkgPathMatches reports whether a package import path ends in one of
// the given suffixes (e.g. "internal/cpu" matches "suit/internal/cpu").
// Vet analyzes test variants under synthesized paths like
// "suit/internal/cpu [suit/internal/cpu.test]"; the bracketed part is
// ignored.
func PkgPathMatches(path string, suffixes []string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
