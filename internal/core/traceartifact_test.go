package core

import (
	"reflect"
	"testing"

	"suit/internal/dvfs"
)

// TestTraceArtifactCacheSecondRunHitsOnly asserts the tentpole cache
// property: re-running an identical scenario performs zero trace
// generation — every trace request hits an existing artifact — and the
// outcome is bitwise-identical.
func TestTraceArtifactCacheSecondRunHitsOnly(t *testing.T) {
	sc := Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "557.xz"),
		Kind: KindFV, SpendAging: true, Instructions: 20_000_000, Seed: 42}

	// First run warms the store (it may itself hit run/base sharing).
	first := run(t, sc)
	before := TraceArtifactStatsNow()

	second := run(t, sc)
	after := TraceArtifactStatsNow()

	if misses := after.Misses - before.Misses; misses != 0 {
		t.Errorf("second identical run generated %d traces, want 0 (all artifact hits)", misses)
	}
	if hits := after.Hits - before.Hits; hits == 0 {
		t.Error("second identical run recorded no artifact hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached-trace run diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestTraceArtifactRunBaseShare asserts the guaranteed within-point
// win: a single Run requests run and baseline traces from the same
// (bench, total, seed) triple, so the baseline's requests hit the run's
// freshly built artifacts instead of regenerating them.
func TestTraceArtifactRunBaseShare(t *testing.T) {
	SetBatchedExecution(false) // drop every cached artifact...
	SetBatchedExecution(true)  // ...and re-enable sharing, store empty

	before := TraceArtifactStatsNow()
	run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "525.x264"),
		Kind: KindFV, Instructions: 20_000_000, Seed: 7})
	after := TraceArtifactStatsNow()

	if hits := after.Hits - before.Hits; hits == 0 {
		t.Error("run/baseline machines did not share a single trace artifact")
	}
}

// TestTraceArtifactEviction forces the event budget down so a second
// distinct artifact evicts the first, and checks the store's resident
// size stays within budget while results remain correct.
func TestTraceArtifactEviction(t *testing.T) {
	SetBatchedExecution(false)
	SetBatchedExecution(true)
	old := traceArtifactBudget
	traceArtifactBudget = 1 // any second completed artifact evicts the first
	defer func() { traceArtifactBudget = old }()

	sc := Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "557.xz"),
		Kind: KindFV, Instructions: 20_000_000}
	before := TraceArtifactStatsNow()
	sc.Seed = 1
	a := run(t, sc)
	sc.Seed = 2
	run(t, sc)
	after := TraceArtifactStatsNow()

	if after.Evictions == before.Evictions {
		t.Error("shrunken budget triggered no evictions")
	}
	// The store keeps at least one artifact (len(order) > 1 guard), so
	// residency can exceed a pathological budget by one artifact but
	// must not accumulate.
	if after.ResidentEvents == 0 {
		t.Error("store evicted its only artifact; the newest entry must survive")
	}

	// Eviction is lossless: rerunning the first scenario regenerates
	// bit-identically.
	sc.Seed = 1
	if b := run(t, sc); !reflect.DeepEqual(a, b) {
		t.Errorf("post-eviction rerun diverged:\nfirst: %+v\nrerun: %+v", a, b)
	}
}

// TestSetBatchedExecutionDisablesStore asserts -batch=false semantics:
// no artifact traffic at all, and identical outcomes.
func TestSetBatchedExecutionDisablesStore(t *testing.T) {
	sc := Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "557.xz"),
		Kind: KindFV, Instructions: 20_000_000, Seed: 3}
	batched := run(t, sc)

	SetBatchedExecution(false)
	defer SetBatchedExecution(true)
	before := TraceArtifactStatsNow()
	unbatched := run(t, sc)
	after := TraceArtifactStatsNow()

	if before != after {
		t.Errorf("disabled store still saw traffic: %+v -> %+v", before, after)
	}
	if !reflect.DeepEqual(batched, unbatched) {
		t.Errorf("batched and unbatched outcomes diverge:\nbatched:   %+v\nunbatched: %+v", batched, unbatched)
	}
}
