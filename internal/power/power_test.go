package power

import (
	"math"
	"testing"
	"testing/quick"

	"suit/internal/units"
)

func testModel() Model {
	return Model{CoreCeff: 1e-9, LeakGV: 2, Uncore: 5}
}

func TestModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []Model{
		{CoreCeff: 0, LeakGV: 1, Uncore: 1},
		{CoreCeff: -1, LeakGV: 1, Uncore: 1},
		{CoreCeff: 1e-9, LeakGV: -1, Uncore: 1},
		{CoreCeff: 1e-9, LeakGV: 1, Uncore: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestDynamicQuadraticInVoltage(t *testing.T) {
	// §2.1: switching energy depends on V² — halving V quarters P_dyn.
	m := testModel()
	f := units.GHz(4)
	p1 := m.Dynamic(1.0, f, 1)
	p2 := m.Dynamic(0.5, f, 1)
	if math.Abs(float64(p1)/float64(p2)-4) > 1e-9 {
		t.Errorf("P(1V)/P(0.5V) = %v, want 4", float64(p1)/float64(p2))
	}
}

func TestDynamicLinearInFrequencyAndActivity(t *testing.T) {
	m := testModel()
	if got, want := m.Dynamic(1, units.GHz(4), 1), 2*m.Dynamic(1, units.GHz(2), 1); math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("frequency linearity: %v vs %v", got, want)
	}
	if got, want := m.Dynamic(1, units.GHz(4), 0.5), m.Dynamic(1, units.GHz(4), 1)/2; math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("activity linearity: %v vs %v", got, want)
	}
}

func TestActivityClamped(t *testing.T) {
	m := testModel()
	if m.Dynamic(1, units.GHz(4), -3) != 0 {
		t.Error("negative activity must clamp to 0")
	}
	if m.Dynamic(1, units.GHz(4), 7) != m.Dynamic(1, units.GHz(4), 1) {
		t.Error("activity above 1 must clamp to 1")
	}
}

func TestLeakageIndependentOfFrequency(t *testing.T) {
	m := testModel()
	if math.Abs(float64(m.Leakage(1.1))-2*1.1*1.1) > 1e-12 {
		t.Errorf("Leakage(1.1) = %v", m.Leakage(1.1))
	}
	// Core at activity 0 still leaks.
	if got := m.Core(1.1, units.GHz(5), 0); got != m.Leakage(1.1) {
		t.Errorf("idle core power %v != leakage %v", got, m.Leakage(1.1))
	}
}

func TestPackageAggregation(t *testing.T) {
	m := testModel()
	cores := []CoreState{
		{V: 1.0, F: units.GHz(4), Activity: 1},
		{V: 0.9, F: units.GHz(3), Activity: 0.5},
	}
	want := m.Uncore + m.Core(1.0, units.GHz(4), 1) + m.Core(0.9, units.GHz(3), 0.5)
	if got := m.Package(cores); math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("Package = %v, want %v", got, want)
	}
	if got := m.Package(nil); got != m.Uncore {
		t.Errorf("empty package = %v, want uncore %v", got, m.Uncore)
	}
}

func TestCalibrateCeffRoundTrip(t *testing.T) {
	// Fit Ceff so an 8-core package at 1.174 V / 4.7 GHz draws 95 W, then
	// verify the fitted model reproduces that power.
	v, f := units.Volt(1.174), units.GHz(4.7)
	ceff, err := CalibrateCeff(95, v, f, 8, 1.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{CoreCeff: ceff, LeakGV: 1.5, Uncore: 10}
	cores := make([]CoreState, 8)
	for i := range cores {
		cores[i] = CoreState{V: v, F: f, Activity: 1}
	}
	if got := m.Package(cores); math.Abs(float64(got)-95) > 1e-9 {
		t.Errorf("calibrated package power = %v, want 95 W", got)
	}
}

func TestCalibrateCeffErrors(t *testing.T) {
	if _, err := CalibrateCeff(95, 1, units.GHz(4), 0, 0, 0); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := CalibrateCeff(95, 0, units.GHz(4), 4, 0, 0); err == nil {
		t.Error("zero voltage accepted")
	}
	if _, err := CalibrateCeff(5, 1, units.GHz(4), 4, 0, 10); err == nil {
		t.Error("package power below uncore floor accepted")
	}
}

func TestUndervoltingReducesPower(t *testing.T) {
	// The headline physics: a −97 mV offset at constant frequency lowers
	// package power.
	m := testModel()
	f := units.GHz(4)
	base := m.Core(1.0, f, 1)
	uv := m.Core(1.0+units.MilliVolts(-97), f, 1)
	if uv >= base {
		t.Errorf("undervolted power %v >= nominal %v", uv, base)
	}
	// Roughly quadratic: expect ~18-19% reduction for ~9.7% voltage cut
	// on the dynamic part; with leakage also quadratic the whole core
	// scales by (0.903)².
	ratio := float64(uv) / float64(base)
	want := 0.903 * 0.903
	if math.Abs(ratio-want) > 1e-6 {
		t.Errorf("power ratio %v, want %v", ratio, want)
	}
}

func TestIntegrator(t *testing.T) {
	var in Integrator
	if in.AveragePower() != 0 {
		t.Error("zero-value integrator average power must be 0")
	}
	in.Add(100, 2)
	in.Add(50, 2)
	if in.Energy() != 300 {
		t.Errorf("Energy = %v, want 300 J", in.Energy())
	}
	if in.Elapsed() != 4 {
		t.Errorf("Elapsed = %v, want 4 s", in.Elapsed())
	}
	if in.AveragePower() != 75 {
		t.Errorf("AveragePower = %v, want 75 W", in.AveragePower())
	}
	in.Reset()
	if in.Energy() != 0 || in.Elapsed() != 0 {
		t.Error("Reset did not clear integrator")
	}
}

func TestIntegratorPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	var in Integrator
	in.Add(10, -1)
}

func TestRAPLQuantisation(t *testing.T) {
	r := NewRAPL(0)
	if r.Unit() != DefaultRAPLUnit {
		t.Fatalf("default unit = %v", r.Unit())
	}
	// Deposits below one unit accumulate in the residue.
	r.Deposit(DefaultRAPLUnit / 4)
	if r.Counter() != 0 {
		t.Errorf("counter ticked early: %d", r.Counter())
	}
	r.Deposit(DefaultRAPLUnit * 3 / 4)
	if r.Counter() != 1 {
		t.Errorf("counter = %d, want 1", r.Counter())
	}
}

func TestRAPLConservesEnergy(t *testing.T) {
	r := NewRAPL(0)
	total := units.Joule(0)
	for i := 0; i < 1000; i++ {
		e := units.Joule(float64(i%7) * 1e-5)
		r.Deposit(e)
		total += e
	}
	measured := r.EnergyBetween(0, r.Counter())
	if math.Abs(float64(measured-total)) > float64(r.Unit()) {
		t.Errorf("measured %v vs deposited %v differs by more than one unit", measured, total)
	}
}

func TestRAPLWrapAround(t *testing.T) {
	r := NewRAPL(0)
	c0 := uint32(0xFFFFFFF0)
	c1 := uint32(0x00000010)
	want := units.Joule(float64(0x20) * float64(r.Unit()))
	if got := r.EnergyBetween(c0, c1); math.Abs(float64(got-want)) > 1e-15 {
		t.Errorf("wrap energy = %v, want %v", got, want)
	}
}

func TestRAPLPanicsOnNegativeDeposit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative deposit did not panic")
		}
	}()
	NewRAPL(0).Deposit(-1)
}

func TestPowerMonotoneInVoltage(t *testing.T) {
	m := testModel()
	prop := func(rawV1, rawV2 uint16, rawF uint16) bool {
		v1 := units.Volt(0.5 + float64(rawV1%1000)/2000) // 0.5..1.0
		v2 := units.Volt(0.5 + float64(rawV2%1000)/2000)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		f := units.GHz(1 + float64(rawF%40)/10)
		return m.Core(v1, f, 1) <= m.Core(v2, f, 1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
