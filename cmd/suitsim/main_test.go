package main

import "testing"

func TestChipByName(t *testing.T) {
	cases := map[string]string{
		"A":     "Intel Core i9-9900K",
		"a":     "Intel Core i9-9900K",
		"i9":    "Intel Core i9-9900K",
		"B":     "AMD Ryzen 7 7700X",
		"ryzen": "AMD Ryzen 7 7700X",
		"C":     "Intel Xeon Silver 4208",
		"xeon":  "Intel Xeon Silver 4208",
		"4208":  "Intel Xeon Silver 4208",
		"i5":    "Intel Core i5-1035G1",
	}
	for in, want := range cases {
		chip, ok := chipByName(in)
		if !ok {
			t.Errorf("chipByName(%q) not found", in)
			continue
		}
		if chip.Name != want {
			t.Errorf("chipByName(%q) = %q, want %q", in, chip.Name, want)
		}
	}
	if _, ok := chipByName("pentium"); ok {
		t.Error("unknown chip resolved")
	}
}
