// Command suitd serves SUIT simulations as a long-running daemon: an
// HTTP/JSON API over the shared experiment engine (internal/service).
// Every submitted spec is content-addressed by its canonical
// fingerprint, so identical submissions — concurrent or repeated,
// within one daemon lifetime or across restarts — cost one simulation:
// concurrent duplicates coalesce onto the live job (single-flight),
// repeats hit the persistent result store, and overlapping sweeps share
// scenario results through the engine's content-addressed cache.
//
// API:
//
//	POST /v1/sweeps                submit a sweep/sim spec → job ID (the spec fingerprint digest)
//	GET  /v1/sweeps                list jobs
//	GET  /v1/sweeps/{id}           status + result
//	GET  /v1/sweeps/{id}/events    progress stream (Server-Sent Events)
//	GET  /metrics                  Prometheus text format
//	GET  /healthz                  pure liveness
//	GET  /readyz                   readiness (503 while draining)
//
// Distributed execution: every daemon also serves the work-distribution
// API (POST /v1/work/claim, /v1/work/{lease}/heartbeat,
// /v1/work/{lease}/result) that suitworker processes pull leased,
// fingerprint-addressed scenario units from. Workers are optional: with
// none connected every sweep runs in-process exactly as before, and
// because results are content-addressed, local and remote execution
// store byte-identical files. A worker that crashes mid-unit simply
// stops heartbeating; its lease expires (-lease-ttl) and the unit is
// reassigned, or — after -remote-attempts failed leases — falls back to
// local execution. -remote-only forbids that fallback for daemons that
// must not simulate locally. Result digests prove transport integrity
// only; on a daemon reachable beyond its worker fleet, -worker-token
// (or $SUITD_WORKER_TOKEN) makes every /v1/work request require the
// matching bearer token.
//
// Backpressure: the admission queue is bounded (-queue); a submission
// that finds it full gets 429 with a Retry-After estimate.
//
// Shutdown: SIGTERM/SIGINT starts a graceful drain — submissions are
// refused, running sweeps get -drain-timeout to finish, then their
// engine runs are cancelled. Completed scenario points are journaled
// and cached throughout, so a restarted daemon given the same -state
// dir resumes an interrupted sweep where it stopped and reproduces its
// result byte-identically. A clean drain exits 0.
//
// Example:
//
//	suitd -addr :8470 -state /var/lib/suitd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"suit/internal/dist"
	"suit/internal/service"
)

const (
	exitOK    = 0
	exitUsage = 1
	exitErr   = 2
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", ":8470", "listen address")
		stateDir     = flag.String("state", "", "persistent state directory (scenario cache, result store, checkpoint journals); required")
		workers      = flag.Int("j", runtime.GOMAXPROCS(0), "engine scenario workers")
		execJobs     = flag.Int("exec", 2, "jobs executed concurrently (they share the engine pool)")
		queueDepth   = flag.Int("queue", 64, "admission queue capacity; submissions beyond it get 429 + Retry-After")
		retries      = flag.Int("retries", 1, "per-scenario retry budget; 0 disables retries, as suitsweep defaults to (same derived seed every attempt)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-scenario watchdog timeout (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long running sweeps may finish after SIGTERM before their runs are cancelled")

		leaseTTL       = flag.Duration("lease-ttl", 3*time.Second, "work-unit lease TTL: a worker that stops heartbeating for this long loses the unit to reassignment")
		remoteAttempts = flag.Int("remote-attempts", 3, "failed leases a work unit may burn before falling back to local execution")
		remoteOnly     = flag.Bool("remote-only", false, "never execute scenarios in-process; wait for workers instead (readiness degrades while the dispatcher is tripped)")
		workerToken    = flag.String("worker-token", os.Getenv("SUITD_WORKER_TOKEN"), "bearer token required on /v1/work requests; empty leaves the work endpoints open to anyone who can connect (default $SUITD_WORKER_TOKEN)")
	)
	flag.CommandLine.Init("suitd", flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "suitd: -state is required: the daemon's cache, result store and journals live there")
		return exitUsage
	}

	svc, err := service.New(service.Config{
		StateDir:      *stateDir,
		EngineWorkers: *workers,
		ExecJobs:      *execJobs,
		QueueDepth:    *queueDepth,
		Retries:       *retries,
		JobTimeout:    *jobTimeout,
		Dist: dist.Config{
			LeaseTTL:       *leaseTTL,
			RemoteAttempts: *remoteAttempts,
			RemoteOnly:     *remoteOnly,
			WorkerToken:    *workerToken,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitd:", err)
		return exitUsage
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "suitd: serving on %s (state %s, %d engine workers, queue %d)\n",
		*addr, *stateDir, *workers, *queueDepth)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case <-sigCtx.Done():
		// Graceful drain: stop accepting, let running sweeps finish
		// inside the drain budget, then cancel — the journals and the
		// scenario cache make the cancellation lossless.
		fmt.Fprintf(os.Stderr, "suitd: signal received, draining (timeout %s)\n", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "suitd: drain timeout hit; interrupted sweeps are journaled and will resume on restart")
		}
		if err := server.Shutdown(ctx); err != nil {
			server.Close()
		}
		fmt.Fprintln(os.Stderr, "suitd: drained")
		return exitOK
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return exitOK
		}
		fmt.Fprintln(os.Stderr, "suitd:", err)
		return exitErr
	}
}
