package core

import (
	"errors"
	"fmt"

	"suit/internal/metrics"
)

// Stats summarises repeated runs of one scenario across seeds — the form
// in which the paper reports its measurements (mean with n and σ).
type Stats struct {
	N int
	// Means and sample standard deviations of the headline metrics.
	Perf, PerfSigma   float64
	Power, PowerSigma float64
	Eff, EffSigma     float64
	Share, ShareSigma float64
	// Outcomes holds the individual runs (seed order).
	Outcomes []Outcome
}

// RunN evaluates the scenario under n different seeds (s.Seed, s.Seed+1,
// …) and aggregates. Trace generation and transition jitter both depend
// on the seed, so the spread captures the model's run-to-run variance.
func RunN(s Scenario, n int) (Stats, error) {
	if n < 2 {
		return Stats{}, errors.New("core: RunN needs at least two seeds for a σ")
	}
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = s
		scs[i].Seed = s.Seed + uint64(i)
	}
	outs, err := RunAll(scs)
	if err != nil {
		return Stats{}, fmt.Errorf("core: %w", err)
	}

	collect := func(f func(Outcome) float64) (mean, sigma float64) {
		xs := make([]float64, n)
		for i, o := range outs {
			xs[i] = f(o)
		}
		mean, _ = metrics.Mean(xs)
		sigma, _ = metrics.StdDev(xs)
		return
	}
	st := Stats{N: n, Outcomes: outs}
	st.Perf, st.PerfSigma = collect(func(o Outcome) float64 { return o.Change.Perf })
	st.Power, st.PowerSigma = collect(func(o Outcome) float64 { return o.Change.Power })
	st.Eff, st.EffSigma = collect(func(o Outcome) float64 { return o.Efficiency })
	st.Share, st.ShareSigma = collect(func(o Outcome) float64 { return o.EfficientShare })
	return st, nil
}
