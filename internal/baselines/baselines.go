// Package baselines implements executable models of the undervolting
// approaches the paper positions SUIT against (§7): Razor's circuit-level
// timing speculation (Ernst et al.), ECC-feedback-guided voltage reduction
// (Bacha & Teodorescu), and workload-dependent undervolting in the style
// of xDVS/CADU++ (Koutsovasilis et al., Maroudas et al.).
//
// Each model answers the same two questions on our chip models: what
// undervolt does the mechanism achieve, and what does it cost — so the
// approaches can be compared with SUIT on equal footing. The comparisons
// are model estimates, not reproductions of those papers' testbeds; their
// purpose is to reproduce the paper's *argument*: prior work spends the
// aging guardband or adds circuit complexity, SUIT does neither.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/metrics"
	"suit/internal/power"
	"suit/internal/trace"
	"suit/internal/units"
)

// Razor models circuit-level timing speculation: shadow latches detect
// late data and replay the pipeline. Voltage can drop until the
// error-replay overhead outweighs the power saving.
type Razor struct {
	// ReplayCycles is the pipeline flush+replay penalty per timing error.
	ReplayCycles float64
	// Vcrit is the voltage (below the conservative curve) where errors
	// explode; Scale sets how sharply the rate rises as V approaches it.
	// rate(off) = exp((|off| − |Vcrit|)/Scale), capped at 1 error/cycle.
	Vcrit units.Volt // negative offset
	Scale units.Volt
	// ShadowOverhead is the constant power overhead of the shadow
	// latches and error logic (fraction of core dynamic power).
	ShadowOverhead float64
}

// DefaultRazor returns a Razor model matched to our guardband physics:
// errors explode where the first instructions' timing collapses.
func DefaultRazor() Razor {
	return Razor{
		ReplayCycles:   12,
		Vcrit:          units.MilliVolts(-160),
		Scale:          units.MilliVolts(6),
		ShadowOverhead: 0.04,
	}
}

// ErrorRate returns timing errors per cycle at the given offset below the
// conservative curve (offset ≤ 0).
func (r Razor) ErrorRate(offset units.Volt) float64 {
	rate := math.Exp(float64(offset-r.Vcrit) / float64(r.Scale) * -1)
	// offset and Vcrit are negative; deeper offset → offset < Vcrit →
	// exponent positive → rate ≥ 1.
	if rate > 1 {
		return 1
	}
	return rate
}

// ThroughputFactor returns the fraction of nominal throughput that
// survives error replays at the given offset.
func (r Razor) ThroughputFactor(offset units.Volt) float64 {
	return 1 / (1 + r.ErrorRate(offset)*r.ReplayCycles)
}

// Optimize scans offsets and returns the energy-per-instruction-optimal
// operating offset for the chip with its efficiency gain over nominal.
func (r Razor) Optimize(chip dvfs.Chip) (units.Volt, metrics.Change) {
	base := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	pkgPlain := func(off units.Volt) units.Watt {
		cores := make([]power.CoreState, chip.Cores)
		for i := range cores {
			cores[i] = power.CoreState{V: base.V + off, F: base.F, Activity: 1}
		}
		return chip.Power.Package(cores)
	}
	// The comparison baseline is a plain (shadow-latch-free) chip at the
	// nominal point; the Razor chip pays ShadowOverhead everywhere.
	basePower := float64(pkgPlain(0))
	razorPower := func(off units.Volt) float64 {
		return float64(pkgPlain(off)) * (1 + r.ShadowOverhead)
	}
	bestOff := units.Volt(0)
	best := metrics.Change{Power: razorPower(0)/basePower - 1}
	bestEff := best.Efficiency()
	for mv := -1.0; mv >= -250; mv-- {
		off := units.MilliVolts(mv)
		ch := metrics.Change{
			Perf:  r.ThroughputFactor(off) - 1,
			Power: razorPower(off)/basePower - 1,
		}
		if eff := ch.Efficiency(); eff > bestEff {
			bestEff, bestOff, best = eff, off, ch
		}
	}
	return bestOff, best
}

// ECCGuided models cache-ECC-feedback undervolting: voltage drops until
// the weakest cache line produces correctable errors, then backs off by a
// safety margin; a periodic calibration pass re-finds the floor as the
// part ages.
type ECCGuided struct {
	// Lines is the number of cache lines sampled during calibration.
	Lines int
	// MeanFloor/Sigma describe the per-line fault-voltage offsets below
	// the conservative curve (process variation across the array).
	MeanFloor units.Volt
	Sigma     units.Volt
	// SafetyMargin is kept above the weakest line.
	SafetyMargin units.Volt
	// CalibrationEvery/CalibrationCost give the recalibration duty cycle.
	CalibrationEvery units.Second
	CalibrationCost  units.Second
}

// DefaultECCGuided returns parameters in line with the 33 % power
// reduction Bacha & Teodorescu report on Itanium.
func DefaultECCGuided() ECCGuided {
	return ECCGuided{
		Lines:            4096,
		MeanFloor:        units.MilliVolts(-210),
		Sigma:            units.MilliVolts(15),
		SafetyMargin:     units.MilliVolts(20),
		CalibrationEvery: units.Second(10 * 60), // every ten minutes
		CalibrationCost:  units.Second(2),       // two seconds of probing
	}
}

// Calibrate runs one calibration pass and returns the chosen offset: the
// weakest sampled line's floor plus the safety margin.
func (e ECCGuided) Calibrate(seed uint64) units.Volt {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	weakest := e.MeanFloor - 10*e.Sigma // start far below, take the max
	for i := 0; i < e.Lines; i++ {
		line := e.MeanFloor + units.Volt(rng.NormFloat64())*e.Sigma
		if line > weakest {
			weakest = line
		}
	}
	return weakest + e.SafetyMargin
}

// Response returns the steady-state performance/power change of the
// mechanism on the chip, including the calibration duty cycle.
func (e ECCGuided) Response(chip dvfs.Chip, seed uint64) (units.Volt, metrics.Change) {
	off := e.Calibrate(seed)
	uv := chip.SustainableState(chip.Vendor, off, chip.Cores)
	base := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	pkg := func(s dvfs.PState, o units.Volt) units.Watt {
		cores := make([]power.CoreState, chip.Cores)
		for i := range cores {
			cores[i] = power.CoreState{V: s.V + o, F: s.F, Activity: 1}
		}
		return chip.Power.Package(cores)
	}
	dutyLoss := float64(e.CalibrationCost) / float64(e.CalibrationEvery)
	ch := metrics.Change{
		Perf:  (float64(uv.F)/float64(base.F))*(1-dutyLoss) - 1,
		Power: float64(pkg(uv, off))/float64(pkg(base, 0)) - 1,
	}
	return off, ch
}

// WorkloadAwareOffset models xDVS/CADU++-style workload-dependent
// undervolting: the voltage is set by the margins of the instructions the
// workload *actually executed* (observed via performance counters),
// minus a safety term. It is the certified margin of the observed
// instruction set — and therein lies the insecurity: an instruction the
// profile missed faults silently.
func WorkloadAwareOffset(gb *guardband.Model, tr *trace.Trace, safety units.Volt) (units.Volt, error) {
	if safety < 0 {
		return 0, errors.New("baselines: negative safety margin")
	}
	seen := tr.CountByOpcode()
	minMargin := gb.PhysicalMargin(isa.OpALU, false) // background floor
	for op := range seen {
		if m := gb.PhysicalMargin(op, false); m < minMargin {
			minMargin = m
		}
	}
	off := -(minMargin - safety)
	if off > 0 {
		off = 0
	}
	return off, nil
}

// Approach is one row of the comparison.
type Approach struct {
	Name   string
	Offset units.Volt
	Eff    float64
	// SpendsAgingGuardband marks approaches whose offset eats into the
	// reliability guardband (the paper's §7 distinction).
	SpendsAgingGuardband bool
	// FaultsOnUnprofiled marks approaches that silently fault when the
	// workload executes an instruction outside the profiled set.
	FaultsOnUnprofiled bool
	// HardwareComplexity is a qualitative marker (circuit-level changes
	// beyond SUIT's trap/MSR additions).
	HardwareComplexity string
}

// Compare produces the §7 comparison on a chip: SUIT at −97 mV against
// the three related mechanisms.
func Compare(chip dvfs.Chip, gb *guardband.Model, tr *trace.Trace, seed uint64) ([]Approach, error) {
	var out []Approach

	suitOff := gb.EfficientOffset(isa.FaultableMask, true, true)
	suit := suitResponse(chip, suitOff)
	out = append(out, Approach{
		Name: "SUIT (fV)", Offset: suitOff, Eff: suit.Efficiency(),
		HardwareComplexity: "trap + MSRs + 1 IMUL stage",
	})

	rOff, rCh := DefaultRazor().Optimize(chip)
	out = append(out, Approach{
		Name: "Razor", Offset: rOff, Eff: rCh.Efficiency(),
		SpendsAgingGuardband: true,
		HardwareComplexity:   "shadow latches on every critical path",
	})

	e := DefaultECCGuided()
	eOff, eCh := e.Response(chip, seed)
	out = append(out, Approach{
		Name: "ECC-guided", Offset: eOff, Eff: eCh.Efficiency(),
		SpendsAgingGuardband: true,
		HardwareComplexity:   "ECC feedback plumbing",
	})

	wOff, err := WorkloadAwareOffset(gb, tr, units.MilliVolts(10))
	if err != nil {
		return nil, err
	}
	wCh := suitResponse(chip, wOff)
	out = append(out, Approach{
		Name: "workload-aware (xDVS-style)", Offset: wOff, Eff: wCh.Efficiency(),
		SpendsAgingGuardband: true,
		FaultsOnUnprofiled:   true,
		HardwareComplexity:   "none (software only)",
	})

	sort.Slice(out, func(i, j int) bool { return out[i].Eff > out[j].Eff })
	return out, nil
}

// suitResponse is the steady-state chip response at an offset (shared by
// the SUIT and workload-aware rows; per-workload trap overheads are the
// business of internal/core, not this coarse comparison).
func suitResponse(chip dvfs.Chip, off units.Volt) metrics.Change {
	base := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	uv := chip.SustainableState(chip.Vendor, off, chip.Cores)
	pkg := func(s dvfs.PState, o units.Volt) units.Watt {
		cores := make([]power.CoreState, chip.Cores)
		for i := range cores {
			cores[i] = power.CoreState{V: s.V + o, F: s.F, Activity: 1}
		}
		return chip.Power.Package(cores)
	}
	return metrics.Change{
		Perf:  float64(uv.F)/float64(base.F) - 1,
		Power: float64(pkg(uv, off))/float64(pkg(base, 0)) - 1,
	}
}

// String implements fmt.Stringer for an Approach row.
func (a Approach) String() string {
	flags := ""
	if a.SpendsAgingGuardband {
		flags += " [spends guardband]"
	}
	if a.FaultsOnUnprofiled {
		flags += " [unsafe on unprofiled code]"
	}
	return fmt.Sprintf("%s: %v, eff %+.1f %%%s", a.Name, a.Offset, a.Eff*100, flags)
}
