// Package other is outside the hot-path boundary: math.Pow is fine here.
package other

import "math"

func Free(v, e float64) float64 { return math.Pow(v, e) }
