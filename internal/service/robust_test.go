package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"suit/internal/core"
	"suit/internal/dist"
	"suit/internal/engine/faultinject"
)

// fakeResult builds a small valid Result for store tests.
func fakeResult(points int) *Result {
	r := &Result{GridPoints: points}
	return r
}

// TestStoreQuarantinesCorruptEntries: a corrupt result file reads as a
// miss AND is moved to *.quarantined — the engine cache's self-heal,
// applied to the persistent result store.
func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	store, err := newResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range []uint64{1, 2, 3} {
		id := fmt.Sprintf("job%d", i)
		store.put(id, "fp-"+id, fakeResult(i+1))
		if _, ok := store.get(id, "fp-"+id); !ok {
			t.Fatalf("entry %s unreadable before corruption", id)
		}
		if err := faultinject.CorruptFile(store.path(id), seed); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.get(id, "fp-"+id); ok {
			t.Fatalf("corrupt entry %s (mode %d) served a result", id, seed%3)
		}
		if _, err := os.Stat(store.path(id)); !os.IsNotExist(err) {
			t.Errorf("corrupt entry %s still occupies its slot", id)
		}
		quarantined, err := filepath.Glob(store.path(id) + ".quarantined*")
		if err != nil || len(quarantined) == 0 {
			t.Errorf("corrupt entry %s was removed without quarantine (mode %d)", id, seed%3)
		}
	}
	if got := store.Quarantined(); got != 3 {
		t.Errorf("Quarantined() = %d, want 3", got)
	}
	// A recomputed result lands cleanly in the freed slot.
	store.put("job0", "fp-job0", fakeResult(1))
	if _, ok := store.get("job0", "fp-job0"); !ok {
		t.Error("slot not reusable after quarantine")
	}
}

// TestStoreForeignEntryIsMissNotQuarantine: an entry whose digest is
// self-consistent but answers a different fingerprint is someone else's
// valid data — a miss, never quarantined.
func TestStoreForeignEntryIsMissNotQuarantine(t *testing.T) {
	store, err := newResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.put("job", "fingerprint-a", fakeResult(2))
	if _, ok := store.get("job", "fingerprint-b"); ok {
		t.Fatal("foreign entry served as a result")
	}
	if _, err := os.Stat(store.path("job")); err != nil {
		t.Errorf("foreign-but-valid entry was quarantined: %v", err)
	}
	if got := store.Quarantined(); got != 0 {
		t.Errorf("Quarantined() = %d, want 0", got)
	}
	if _, ok := store.get("job", "fingerprint-a"); !ok {
		t.Error("original entry no longer readable")
	}
}

// TestSubmitTooLargeIs413: a spec body over the limit gets 413 with a
// distinct message, not a generic 400.
func TestSubmitTooLargeIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	huge := `{"benches":["VLC"],"pad":"` + strings.Repeat("x", maxSpecBytes+1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "exceeds") || !strings.Contains(body.Error, "limit") {
		t.Errorf("error %q does not say the body was too large", body.Error)
	}
}

// TestEventsClientDisconnect: cancelling an SSE client's request
// mid-stream must return the handler promptly, remove the
// subscription, and leak no goroutines.
func TestEventsClientDisconnect(t *testing.T) {
	release := make(chan struct{})
	svc, ts := newTestServer(t, Config{
		// Hold the job mid-run so the SSE stream stays open until the
		// client disconnects.
		runJob: func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return core.RunJob(ctx, sc, seed)
		},
	})
	defer close(release)
	job, _, err := svc.Submit(tinySpec(1, 1))
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sweeps/"+job.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read the first event so the stream is demonstrably live, then
		// disconnect mid-stream.
		buf := make([]byte, 1)
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("stream %d never produced data: %v", i, err)
		}
		cancel()
		resp.Body.Close()
	}

	// The handler returns and unsubscribes; subscribers drop back to
	// zero and the goroutine count settles to where it started.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job.mu.Lock()
		subs := len(job.subs)
		job.mu.Unlock()
		if subs == 0 && runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	job.mu.Lock()
	subs := len(job.subs)
	job.mu.Unlock()
	t.Fatalf("after disconnects: %d subscriptions, %d goroutines (started with %d) — handler leaked",
		subs, runtime.NumGoroutine(), before)
}

// TestDistributedServiceByteIdentical is the tentpole's service-level
// proof: a daemon whose sweep is executed by a pull worker over HTTP
// stores a result byte-identical to a daemon that ran everything
// locally.
func TestDistributedServiceByteIdentical(t *testing.T) {
	spec := tinySpec(3, 7)

	// Reference: a plain local daemon.
	localSvc, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, localSvc)
	localJob, _, err := localSvc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, localJob); snap.State != StateDone {
		t.Fatalf("local job: %s (%s)", snap.State, snap.Error)
	}
	wantRaw, err := json.Marshal(localJob.Result())
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: a daemon with a worker pulling over its real HTTP
	// handler. Short lease TTL keeps the test fast if anything goes
	// sideways.
	distSvc, ts := newTestServer(t, Config{
		Dist: dist.Config{LeaseTTL: time.Second},
	})
	w, err := dist.NewWorker(dist.WorkerConfig{
		BaseURL:      ts.URL,
		ID:           "svc-test-worker",
		Slots:        2,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(wctx) //nolint:errcheck
	}()
	defer func() {
		wcancel()
		<-workerDone
	}()
	deadline := time.Now().Add(10 * time.Second)
	for distSvc.DistStats().LiveWorkers == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if distSvc.DistStats().LiveWorkers == 0 {
		t.Fatal("worker never registered with the daemon")
	}

	distJob, _, err := distSvc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, distJob); snap.State != StateDone {
		t.Fatalf("distributed job: %s (%s)", snap.State, snap.Error)
	}
	gotRaw, err := json.Marshal(distJob.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRaw, wantRaw) {
		t.Error("distributed result differs from the local daemon's bytes")
	}
	st := distSvc.DistStats()
	t.Logf("dispatcher: %+v, worker: %+v", st, w.Stats())
	if st.Completed == 0 {
		t.Error("no unit completed remotely — the worker path was not exercised")
	}
	if st.Conflicts != 0 {
		t.Errorf("%d conflicting results — determinism violation", st.Conflicts)
	}
	// The dist metrics are exposed on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page bytes.Buffer
	if _, err := page.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"suitd_dist_completed_total", "suitd_dist_live_workers", "suitd_engine_remote_total", "suitd_store_quarantined_total"} {
		if !strings.Contains(page.String(), want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}
