package service

import (
	"fmt"
	"sort"

	"suit/internal/core"
	"suit/internal/metrics"
	"suit/internal/strategy"
	"suit/internal/units"
)

// Result is the deliverable of a completed job. Every field is a pure
// function of the normalized spec — no timestamps, no throughput, no
// hostnames — so the JSON encoding is byte-identical across runs,
// restarts and resumes, which is what makes the result store
// content-addressable and the drain/resume contract testable with cmp.
type Result struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// GridPoints and Workloads describe the evaluated matrix.
	GridPoints int      `json:"grid_points"`
	Workloads  []string `json:"workloads"`
	// Points is the efficiency ranking, truncated to Spec.Top.
	Points []RankedPoint `json:"points"`
	// BestToWorstSpread is the efficiency spread across the full
	// ranking in percentage points (§6.4's "wide range" observation).
	BestToWorstSpread float64 `json:"best_to_worst_spread_pct"`
}

// RankedPoint is one parameter setting with its mean efficiency over
// the workload mix.
type RankedPoint struct {
	ParamSpec
	Efficiency float64 `json:"efficiency"`
}

// aggregate folds the engine's outcomes back into the ranked result,
// mirroring suitsweep's per-point mean-efficiency ranking: outcomes
// arrive in (grid × benches) order, ties keep grid order.
func aggregate(id string, spec Spec, grid []strategy.Params, outs []core.Outcome) (*Result, error) {
	nb := len(spec.Benches)
	if len(outs) != len(grid)*nb {
		return nil, fmt.Errorf("aggregate: %d outcomes for %d grid points × %d workloads", len(outs), len(grid), nb)
	}
	type point struct {
		i   int
		eff float64
	}
	points := make([]point, len(grid))
	for i := range grid {
		effs := make([]float64, nb)
		for j := 0; j < nb; j++ {
			effs[j] = outs[i*nb+j].Efficiency
		}
		mean, _ := metrics.Mean(effs)
		points[i] = point{i: i, eff: mean}
	}
	sort.SliceStable(points, func(a, b int) bool { return points[a].eff > points[b].eff })

	res := &Result{
		ID: id, Spec: spec,
		GridPoints: len(grid),
		Workloads:  spec.Benches,
	}
	if len(points) > 0 {
		res.BestToWorstSpread = (points[0].eff - points[len(points)-1].eff) * 100
	}
	n := spec.Top
	if n > len(points) {
		n = len(points)
	}
	for _, p := range points[:n] {
		g := grid[p.i]
		res.Points = append(res.Points, RankedPoint{
			ParamSpec: ParamSpec{
				DeadlineUS:     float64(g.Deadline) / float64(units.Microseconds(1)),
				TimeSpanUS:     float64(g.TimeSpan) / float64(units.Microseconds(1)),
				MaxExceptions:  g.MaxExceptions,
				DeadlineFactor: g.DeadlineFactor,
			},
			Efficiency: p.eff,
		})
	}
	return res, nil
}
