// Package cache models a utility package OUTSIDE the result-affecting
// list: direct wall-clock reads are not reported here, but they taint
// the enclosing functions and the facts cross the package boundary.
package cache

import "time"

// Stamp reads the wall clock; no diagnostic here (not a result
// package), but Stamp is exported as Tainted.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Age is tainted transitively through Stamp.
func Age(since int64) int64 {
	return Stamp() - since
}

// Size is pure: no fact, callers stay clean.
func Size() int {
	return 42
}

// Watchdog's timer is explained, so the taint stops here and callers
// are clean.
func Watchdog() {
	//lint:allow determinism watchdog pacing only, never reaches results
	_ = time.Now()
}
