// Package prof wires runtime/pprof into the CLIs behind -cpuprofile /
// -memprofile flags. The stop function it returns flushes both profiles
// and must run on every exit path — callers defer it inside run() so it
// also fires on the SIGINT path (signal.NotifyContext cancels the run
// context, run() returns normally, defers execute before os.Exit).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (when non-empty) and arranges a
// heap snapshot to memFile (when non-empty). Either may be empty; the
// returned stop function is always safe to call exactly once.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpu = f
	}
	return func() error {
		var first error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				first = err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("prof: %w", err)
				}
				return first
			}
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
		}
		return first
	}, nil
}
