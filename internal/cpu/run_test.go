package cpu

import (
	"math"
	"testing"

	"suit/internal/dvfs"
	"suit/internal/isa"
	"suit/internal/trace"
	"suit/internal/units"
)

// vLite / fLite are single-knob strategies for focused timing tests.
type vLite struct{ deadline units.Second }

func (vLite) Name() string { return "vLite" }
func (vLite) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, ModeE)
	}
}
func (s vLite) OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode) {
	ctl.RequestWait(domain, ModeCv)
	ctl.EnableInstructions(domain)
	ctl.ArmDeadline(domain, s.deadline)
}
func (s vLite) OnDeadline(ctl Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, ModeE)
}

type fLite struct{ deadline units.Second }

func (fLite) Name() string { return "fLite" }
func (fLite) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, ModeE)
	}
}
func (s fLite) OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode) {
	ctl.RequestWait(domain, ModeCf)
	ctl.EnableInstructions(domain)
	ctl.ArmDeadline(domain, s.deadline)
}
func (s fLite) OnDeadline(ctl Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, ModeE)
}

func TestVoltOnlyTrapBlocksForVoltageSettle(t *testing.T) {
	// A single trap under the voltage-only strategy blocks the core for
	// roughly the voltage settle time (Fig 4's CV arm) — an order of
	// magnitude longer than the frequency switch (§4.3).
	tr1 := testTrace(200_000_000, 2, 100_000_000)
	tr2 := testTrace(200_000_000, 2, 100_000_000)
	cfgV := testConfig(tr1)
	cfgF := testConfig(tr2)
	resV := runWith(t, cfgV, vLite{deadline: units.Microseconds(30)})
	resF := runWith(t, cfgF, fLite{deadline: units.Microseconds(30)})
	if resV.Exceptions != 1 || resF.Exceptions != 1 {
		t.Fatalf("exceptions V=%d f=%d, want 1 each", resV.Exceptions, resF.Exceptions)
	}
	extraV := resV.Duration - resF.Duration
	// Xeon volt delay 335 µs vs freq delay 31 µs: the V strategy should
	// lose roughly the difference once.
	if extraV < units.Microseconds(150) || extraV > units.Microseconds(800) {
		t.Errorf("V-vs-f extra block = %v, want ≈300 µs", extraV)
	}
}

func TestFreqOnlyNeverRaisesVoltage(t *testing.T) {
	// Under the f strategy the domain voltage never exceeds the
	// efficient level: check via the fault monitor surrogate — run a
	// trace and assert Cv residency is zero.
	var idx []uint64
	for i := uint64(1_000_000); i < 190_000_000; i += 10_000_000 {
		idx = append(idx, i)
	}
	tr := testTrace(200_000_000, 2, idx...)
	res := runWith(t, testConfig(tr), fLite{deadline: units.Microseconds(30)})
	if res.Residency[ModeCv] != 0 {
		t.Errorf("frequency-only run has Cv residency %v", res.Residency[ModeCv])
	}
	if res.Residency[ModeCf] == 0 {
		t.Error("no Cf residency despite traps")
	}
}

func TestTimelineRecording(t *testing.T) {
	tr := testTrace(200_000_000, 2, 100_000_000)
	cfg := testConfig(tr)
	cfg.RecordTimeline = true
	res := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	// Init E, trap → Cf, Cv, deadline → E: at least 4 entries, strictly
	// non-decreasing timestamps.
	if len(res.Timeline) < 4 {
		t.Fatalf("timeline has %d entries", len(res.Timeline))
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].T < res.Timeline[i-1].T {
			t.Fatalf("timeline not ordered at %d", i)
		}
	}
	wantModes := []Mode{ModeE, ModeCf, ModeCv, ModeE}
	for i, want := range wantModes {
		if res.Timeline[i].Mode != want {
			t.Errorf("timeline[%d] = %v, want %v", i, res.Timeline[i].Mode, want)
		}
	}
	// Without the flag, no timeline is recorded.
	cfg2 := testConfig(testTrace(200_000_000, 2, 100_000_000))
	res2 := runWith(t, cfg2, fvLite{deadline: units.Microseconds(30)})
	if len(res2.Timeline) != 0 {
		t.Error("timeline recorded without the flag")
	}
}

func TestRAPLCounterMatchesEnergy(t *testing.T) {
	tr := testTrace(500_000_000, 2, 100_000_000, 300_000_000)
	res := runWith(t, testConfig(tr), fvLite{deadline: units.Microseconds(30)})
	// The RAPL counter (61 µJ units) must agree with the integrator to
	// within one unit.
	raplJ := float64(res.RAPLCounter) / 16384
	if math.Abs(raplJ-float64(res.Energy)) > 1.0/16384+1e-9 {
		t.Errorf("RAPL %.6f J vs integrator %v", raplJ, res.Energy)
	}
	if res.Energy <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestPerCoreFreqChipBuildsPerCoreDomains(t *testing.T) {
	cfg := testConfig(testTrace(1000, 1), testTrace(1000, 1), testTrace(1000, 1))
	cfg.Chip = dvfs.AMDRyzen7700X()
	m, err := New(cfg, pinnedBase{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Domains() != 3 {
		t.Errorf("7700X machine has %d domains for 3 cores, want 3", m.Domains())
	}
	single := testConfig(testTrace(1000, 1), testTrace(1000, 1))
	single.Chip = dvfs.IntelI9_9900K()
	m2, err := New(single, pinnedBase{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Domains() != 1 {
		t.Errorf("i9 machine has %d domains, want 1", m2.Domains())
	}
}

func TestHardenedIMULTraceExecutesWithoutTraps(t *testing.T) {
	// IMUL events in the trace are not in the faultable set: they
	// execute on the efficient curve without trapping and — hardened —
	// without faulting.
	tr := &trace.Trace{Name: "imul", Total: 10_000_000, IPC: 2}
	for i := uint64(1); i <= 1000; i++ {
		tr.Events = append(tr.Events, trace.Event{Index: i * 5600, Op: isa.OpIMUL})
	}
	cfg := testConfig(tr)
	res := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions != 0 {
		t.Errorf("hardened IMUL trapped %d times", res.Exceptions)
	}
	if len(res.Faults) != 0 {
		t.Errorf("hardened IMUL faulted: %v", res.Faults)
	}
	// The same trace on an unhardened machine faults on the efficient
	// curve (the §4.2 motivation).
	cfg2 := testConfig(tr)
	cfg2.HardenedIMUL = false
	res2 := runWith(t, cfg2, fvLite{deadline: units.Microseconds(30)})
	if len(res2.Faults) == 0 {
		t.Error("stock IMUL survived the efficient curve")
	}
}

func TestTrapIMULAblationPinsConservative(t *testing.T) {
	tr := &trace.Trace{Name: "imul", Total: 50_000_000, IPC: 2}
	for i := uint64(1); i*560 < tr.Total; i += 1 {
		tr.Events = append(tr.Events, trace.Event{Index: i * 560, Op: isa.OpIMUL})
	}
	cfg := testConfig(tr)
	cfg.TrapIMUL = true
	cfg.HardenedIMUL = false
	res := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions == 0 {
		t.Fatal("TrapIMUL machine never trapped")
	}
	if res.EfficientShare() > 0.05 {
		t.Errorf("efficient share %v; an IMUL every 560 instructions should pin the conservative curve", res.EfficientShare())
	}
	if len(res.Faults) != 0 {
		t.Errorf("trapped IMUL still faulted: %v", res.Faults)
	}
}

func TestDeadlineNoResetAblation(t *testing.T) {
	// Two faultable instructions half a deadline apart: with the reset
	// the second executes quietly; without it the timer fires mid-burst
	// and the second instruction traps again.
	ipc, f := 2.0, 3.2e9
	gap := uint64(20e-6 * ipc * f)
	first := uint64(50_000_000)
	mk := func() *trace.Trace { return testTrace(400_000_000, ipc, first, first+gap, first+2*gap) }

	withReset := testConfig(mk())
	r1 := runWith(t, withReset, fvLite{deadline: units.Microseconds(30)})
	noReset := testConfig(mk())
	noReset.NoDeadlineReset = true
	r2 := runWith(t, noReset, fvLite{deadline: units.Microseconds(30)})
	if r1.Exceptions != 1 {
		t.Errorf("with reset: %d exceptions, want 1", r1.Exceptions)
	}
	if r2.Exceptions <= r1.Exceptions {
		t.Errorf("without reset: %d exceptions, want more than %d", r2.Exceptions, r1.Exceptions)
	}
	if len(r1.Faults)+len(r2.Faults) != 0 {
		t.Error("ablation faulted")
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{ModeBase: "base", ModeE: "E", ModeCf: "Cf", ModeCv: "Cv", Mode(99): "Mode(99)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestPointsGet(t *testing.T) {
	p := Points{
		Base: Point{F: 1, V: 1}, E: Point{F: 2, V: 2},
		Cf: Point{F: 3, V: 3}, Cv: Point{F: 4, V: 4},
	}
	if p.Get(ModeE) != p.E || p.Get(ModeCf) != p.Cf || p.Get(ModeCv) != p.Cv {
		t.Error("Get mapping wrong")
	}
	if p.Get(ModeBase) != p.Base || p.Get(Mode(99)) != p.Base {
		t.Error("default mapping wrong")
	}
}

func TestEmptyTraceCompletesInstantly(t *testing.T) {
	tr := testTrace(1_000_000, 2)
	res := runWith(t, testConfig(tr), pinnedBase{})
	want := units.Second(1_000_000 / (2 * 3.0e9))
	if math.Abs(float64(res.Duration-want)/float64(want)) > 1e-9 {
		t.Errorf("duration %v, want %v", res.Duration, want)
	}
}

func TestEventAtIndexZero(t *testing.T) {
	// A faultable instruction as the very first instruction must trap
	// cleanly at t=0 without time going backwards.
	tr := testTrace(10_000_000, 2, 0)
	res := runWith(t, testConfig(tr), fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions != 1 {
		t.Errorf("exceptions = %d, want 1", res.Exceptions)
	}
}

func TestBackToBackFaultableInstructions(t *testing.T) {
	// Adjacent faultable instructions: one trap, then both execute on
	// the conservative curve.
	tr := testTrace(10_000_000, 2, 5_000_000, 5_000_001, 5_000_002)
	res := runWith(t, testConfig(tr), fvLite{deadline: units.Microseconds(30)})
	if res.Exceptions != 1 {
		t.Errorf("exceptions = %d, want 1 (burst absorbed)", res.Exceptions)
	}
	if len(res.Faults) != 0 {
		t.Errorf("faults: %v", res.Faults)
	}
}

func TestStateSampling(t *testing.T) {
	tr := testTrace(200_000_000, 2, 100_000_000)
	cfg := testConfig(tr)
	cfg.SampleEvery = units.Microseconds(5)
	res := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	// Samples lie on the grid and are strictly increasing.
	for i, s := range res.Samples {
		if i > 0 && s.T <= res.Samples[i-1].T {
			t.Fatalf("samples not increasing at %d", i)
		}
		steps := float64(s.T) / 5e-6
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			t.Fatalf("sample %d at %v off the 5 µs grid", i, s.T)
		}
	}
	// The trap must be visible: some samples at the Cf frequency.
	pts := Points{}
	m, _ := New(cfg, fvLite{deadline: units.Microseconds(30)})
	pts = m.Points()
	var sawE, sawConservative bool
	for _, s := range res.Samples {
		if s.F == pts.E.F && s.Mode == ModeE {
			sawE = true
		}
		if s.F == pts.Cf.F {
			sawConservative = true
		}
	}
	if !sawE || !sawConservative {
		t.Errorf("sampling missed operating points: E=%t Cf=%t", sawE, sawConservative)
	}
	// Without the knob, no samples.
	cfg2 := testConfig(testTrace(1_000_000, 2))
	res2 := runWith(t, cfg2, pinnedBase{})
	if len(res2.Samples) != 0 {
		t.Error("samples recorded without SampleEvery")
	}
}

func TestExecuteEmulationRunsRealReplacements(t *testing.T) {
	// Every faultable opcode trapped under the emulation strategy gets
	// its software replacement actually executed.
	tr := &trace.Trace{Name: "all-ops", Total: 10_000_000, IPC: 2}
	for i, op := range isa.Faultable() {
		tr.Events = append(tr.Events, trace.Event{Index: uint64(i+1) * 100_000, Op: op})
	}
	cfg := testConfig(tr)
	cfg.ExecuteEmulation = true
	res := runWith(t, cfg, emulAll{})
	if res.Emulated != len(isa.Faultable()) {
		t.Errorf("emulated %d of %d opcodes", res.Emulated, len(isa.Faultable()))
	}
	if len(res.Faults) != 0 {
		t.Error("functional emulation run faulted")
	}
}

// inspectStrategy exercises the read-only controller surface from inside
// a handler.
type inspectStrategy struct {
	t        *testing.T
	deadline units.Second
}

func (inspectStrategy) Name() string { return "inspect" }
func (s inspectStrategy) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, ModeE)
	}
}
func (s inspectStrategy) OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode) {
	if ctl.Mode(domain) != ModeE {
		s.t.Errorf("mode at trap = %v, want E", ctl.Mode(domain))
	}
	if ctl.Now() <= 0 {
		s.t.Error("handler clock not advanced past zero")
	}
	pts := ctl.Points()
	if pts.E.F < pts.Cf.F {
		s.t.Error("points inverted")
	}
	if n := ctl.ExceptionsWithin(domain, units.Milliseconds(100)); n != 1 {
		s.t.Errorf("ExceptionsWithin = %d, want 1 (this trap)", n)
	}
	ctl.RequestWait(domain, ModeCf)
	ctl.EnableInstructions(domain)
	ctl.ArmDeadline(domain, s.deadline)
	ctl.DisarmDeadline(domain) // exercise disarm: the machine stays at Cf
}
func (s inspectStrategy) OnDeadline(ctl Controller, domain int) {
	s.t.Error("deadline fired despite disarm")
}

func TestControllerReadSurfaceAndDisarm(t *testing.T) {
	tr := testTrace(100_000_000, 2, 50_000_000)
	res := runWith(t, testConfig(tr), inspectStrategy{t: t, deadline: units.Microseconds(30)})
	if res.Exceptions != 1 {
		t.Fatalf("exceptions = %d", res.Exceptions)
	}
	if res.DeadlineFires != 0 {
		t.Error("disarmed timer fired")
	}
	// Machine parked at Cf for the rest of the run.
	if res.Residency[ModeCf] == 0 {
		t.Error("no Cf residency after the disarmed park")
	}
}

func TestMachineNowAndZeroExceptionDelay(t *testing.T) {
	cfg := testConfig(testTrace(10_000_000, 2, 5_000_000))
	cfg.ExceptionDelay = 0 // must clamp to a positive epsilon internally
	m, err := New(cfg, fvLite{deadline: units.Microseconds(30)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Now() != 0 {
		t.Error("fresh machine clock nonzero")
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exceptions != 1 {
		t.Errorf("exceptions = %d", res.Exceptions)
	}
	if m.Now() <= 0 {
		t.Error("clock did not advance")
	}
}
