#!/usr/bin/env bash
# bench_summary.sh BASELINE.json CURRENT.json
#
# Renders a markdown delta table comparing a fresh suitbench report
# against the committed baseline: sweep throughput per leg, hot-path
# ns/op per benchmark, and ramp-memo hit rates when the report carries
# them. CI appends the output to $GITHUB_STEP_SUMMARY so the numbers
# land on the job page without downloading the artifact; locally it
# just prints to stdout.
set -euo pipefail

if [ "$#" -ne 2 ]; then
  echo "usage: $0 BASELINE.json CURRENT.json" >&2
  exit 2
fi
base=$1
cur=$2

echo "## Hot-path bench: $(basename "$cur") vs $(basename "$base")"
echo
echo "| Sweep leg | baseline pts/s | current pts/s | delta |"
echo "|---|---:|---:|---:|"
for leg in sweep sweep_unbatched; do
  jq -r --slurpfile b "$base" --arg leg "$leg" '
    ($b[0][$leg].points_per_sec // null) as $old
    | (.[$leg].points_per_sec // null) as $new
    | if $new == null then empty
      elif $old == null or $old <= 0 then
        "| \($leg) | n/a | \($new | . * 100 | round / 100) | new |"
      else
        "| \($leg) | \($old | . * 100 | round / 100) | \($new | . * 100 | round / 100) | \((($new / $old - 1) * 1000 | round) / 10)% |"
      end' "$cur"
done
echo
echo "| Benchmark | baseline ns/op | current ns/op | delta |"
echo "|---|---:|---:|---:|"
jq -r --slurpfile b "$base" '
  ($b[0].benchmarks // [] | map({(.name): .min_ns_per_op}) | add // {}) as $old
  | (.benchmarks // [])[]
  | ($old[.name] // null) as $prev
  | if $prev == null or $prev <= 0 then
      "| \(.name) | n/a | \(.min_ns_per_op) | new |"
    else
      "| \(.name) | \($prev) | \(.min_ns_per_op) | \(((.min_ns_per_op / $prev - 1) * 1000 | round) / 10)% |"
    end' "$cur"

# Ramp-memo telemetry rides on each sweep leg when the binary reports
# it; older baselines predate the memo, so only the current side prints.
rm_rows=$(jq -r '
  [ ["sweep", .sweep.ramp_memo], ["sweep_unbatched", .sweep_unbatched.ramp_memo] ][]
  | select(.[1] != null)
  | "| \(.[0]) | \(.[1].pair_hit_rate * 1000 | round / 10)% | \(.[1].pow_hit_rate * 1000 | round / 10)% | \(.[1].pair_evictions + .[1].pow_evictions) |"' "$cur")
if [ -n "$rm_rows" ]; then
  echo
  echo "| Sweep leg | pair hit rate | pow hit rate | evictions |"
  echo "|---|---:|---:|---:|"
  echo "$rm_rows"
fi
