package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"suit/internal/engine"
)

type spec struct{ ID int }

func key(s spec) string { return fmt.Sprintf("s%d", s.ID) }

func passthrough(_ context.Context, s spec, seed uint64) (int, error) {
	return s.ID*1000 + int(seed%1000), nil
}

func TestDecideDeterministic(t *testing.T) {
	p := Plan{Seed: 42, Rate: 0.5, RateKind: Error}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("s%d", i)
		if p.Decide(k) != p.Decide(k) {
			t.Fatalf("Decide(%q) is not stable", k)
		}
	}
}

func TestDecideExplicitFaultsWin(t *testing.T) {
	p := Plan{Seed: 1, Rate: 0, Faults: map[string]Kind{"s3": Hang}}
	if got := p.Decide("s3"); got != Hang {
		t.Errorf("Decide(s3) = %v, want Hang", got)
	}
	if got := p.Decide("s4"); got != None {
		t.Errorf("Decide(s4) = %v, want None with zero rate", got)
	}
}

func TestDecideRateRoughlyProportional(t *testing.T) {
	p := Plan{Seed: 7, Rate: 0.3, RateKind: Error}
	faulted := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.Decide(fmt.Sprintf("key-%d", i)) == Error {
			faulted++
		}
	}
	frac := float64(faulted) / n
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("rate 0.3 faulted %.3f of keys", frac)
	}
	if all := (Plan{Seed: 7, Rate: 1, RateKind: Panic}); all.Decide("anything") != Panic {
		t.Error("rate 1.0 must fault every key")
	}
}

func TestTimesFailThenSucceed(t *testing.T) {
	in := New(Plan{Faults: map[string]Kind{"s0": Error}, Times: 2}, key,
		engine.RunFunc[spec, int](passthrough))
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := in.Run(context.Background(), spec{0}, 9); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", attempt, err)
		}
	}
	got, err := in.Run(context.Background(), spec{0}, 9)
	if err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	if want, _ := passthrough(context.Background(), spec{0}, 9); got != want {
		t.Errorf("delegated result %d, want %d", got, want)
	}
	if in.Attempts("s0") != 3 {
		t.Errorf("Attempts = %d, want 3", in.Attempts("s0"))
	}
}

func TestTimesNegativeAlwaysFaults(t *testing.T) {
	in := New(Plan{Faults: map[string]Kind{"s0": Error}, Times: -1}, key,
		engine.RunFunc[spec, int](passthrough))
	for attempt := 1; attempt <= 5; attempt++ {
		if _, err := in.Run(context.Background(), spec{0}, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", attempt, err)
		}
	}
}

func TestTimesZeroDefaultsToOne(t *testing.T) {
	in := New(Plan{Faults: map[string]Kind{"s0": Error}}, key,
		engine.RunFunc[spec, int](passthrough))
	if _, err := in.Run(context.Background(), spec{0}, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("first attempt: err = %v, want ErrInjected", err)
	}
	if _, err := in.Run(context.Background(), spec{0}, 0); err != nil {
		t.Fatalf("second attempt should delegate: %v", err)
	}
}

func TestHangHonorsContext(t *testing.T) {
	in := New(Plan{Faults: map[string]Kind{"s0": Hang}}, key,
		engine.RunFunc[spec, int](passthrough))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := in.Run(ctx, spec{0}, 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not honor context cancellation")
	}
}

func TestPanicPanics(t *testing.T) {
	in := New(Plan{Faults: map[string]Kind{"s0": Panic}}, key,
		engine.RunFunc[spec, int](passthrough))
	defer func() {
		if recover() == nil {
			t.Error("Panic fault did not panic")
		}
	}()
	in.Run(context.Background(), spec{0}, 0)
}

func TestUnfaultedKeysDelegate(t *testing.T) {
	in := New(Plan{Faults: map[string]Kind{"s9": Error}, Times: -1}, key,
		engine.RunFunc[spec, int](passthrough))
	got, err := in.Run(context.Background(), spec{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := passthrough(context.Background(), spec{1}, 5); got != want {
		t.Errorf("delegated result %d, want %d", got, want)
	}
}

func TestCorruptFileModesChangeBytes(t *testing.T) {
	orig := []byte(`{"key":"k","result":{"v":12345},"sum":"abc"}`)
	// Distinct seeds exercise different modes; every mode must change the
	// on-disk bytes so the cache integrity check has something to catch.
	for seed := uint64(0); seed < 6; seed++ {
		p := filepath.Join(t.TempDir(), "entry.json")
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CorruptFile(p, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == string(orig) {
			t.Errorf("seed %d: CorruptFile left the file unchanged", seed)
		}
	}
}

func TestCorruptFileDeterministic(t *testing.T) {
	orig := []byte(`{"key":"k","result":1,"sum":"x"}`)
	dir := t.TempDir()
	// Same relative content + same seed on the same path → same damage.
	p := filepath.Join(dir, "e.json")
	var first []byte
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CorruptFile(p, 3); err != nil {
			t.Fatal(err)
		}
		got, _ := os.ReadFile(p)
		if i == 0 {
			first = got
		} else if string(got) != string(first) {
			t.Error("CorruptFile is not deterministic for a fixed (path, seed)")
		}
	}
}

func TestCorruptFileMissingFile(t *testing.T) {
	if err := CorruptFile(filepath.Join(t.TempDir(), "nope.json"), 0); err == nil {
		t.Error("CorruptFile on a missing file must error")
	}
}
