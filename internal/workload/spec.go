package workload

import (
	"suit/internal/isa"
)

// The SPEC CPU2017 workload models. Calibration sources:
//
//   - Faultable-instruction episode spacing (BurstEvery): tuned so the fV
//     operating strategy reproduces the efficient-curve residency reported
//     in §6.4 — 97.1 % for 557.xz, 76.6 % for 502.gcc, 3.2 % for
//     520.omnetpp, ≈72.7 % on average — with the Fig 16 ordering across
//     the suite. 520.omnetpp and 521.wrf model faultable instructions
//     arriving continuously below the deadline spacing (they pin the CPU
//     to the conservative curve).
//   - IMULFraction: §6.1 — 0.99 % in 525.x264, 0.07 % average elsewhere.
//   - NoSIMD: Table 4 — measured for 508/521/538/554/525/548, remaining
//     benchmarks assigned so the suite means match the published
//     fprate/intrate rows (i9: −4.1 %/+0.5 %, 7700X: −5.9 %/+2.6 %).
//
// noSIMD values are relative score changes: −0.22 = 22 % slower.

func ns(intel, amd float64) map[CPUFamily]float64 {
	return map[CPUFamily]float64{Intel: intel, AMD: amd}
}

// SPEC returns models for all 23 SPEC CPU2017 rate benchmarks.
func SPEC() []Benchmark {
	return []Benchmark{
		// --- intrate ---
		{Name: "500.perlbench", Suite: SPECint, IPC: 1.6, IMULFraction: 0.0008,
			BurstEvery: 4e6, BurstLen: 90, BurstIntraGap: 1200, BurstSigma: 0.8,
			BurstOp: isa.OpVPCMP, NoSIMD: ns(-0.015, -0.004)},
		{Name: "502.gcc", Suite: SPECint, IPC: 1.0, IMULFraction: 0.0009,
			BurstEvery: 7.4e6, BurstLen: 110, BurstIntraGap: 1500, BurstSigma: 0.9,
			BurstOp: isa.OpVXOR, NoSIMD: ns(-0.012, -0.003)},
		{Name: "505.mcf", Suite: SPECint, IPC: 0.6, IMULFraction: 0.0005,
			BurstEvery: 26e6, BurstLen: 70, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVPADDQ, NoSIMD: ns(-0.008, -0.002)},
		{Name: "520.omnetpp", Suite: SPECint, IPC: 0.7, IMULFraction: 0.0006,
			PoissonGap: 1.8e3, DiffuseOp: isa.OpVOR, NoSIMD: ns(-0.017, -0.006)},
		{Name: "523.xalancbmk", Suite: SPECint, IPC: 1.1, IMULFraction: 0.0004,
			BurstEvery: 110e6, BurstLen: 80, BurstIntraGap: 1200, BurstSigma: 0.8,
			BurstOp: isa.OpVPCMP, NoSIMD: ns(-0.010, -0.004)},
		{Name: "525.x264", Suite: SPECint, IPC: 2.4, IMULFraction: 0.0099,
			BurstEvery: 18e6, BurstLen: 120, BurstIntraGap: 900, BurstSigma: 0.8,
			BurstOp: isa.OpVPMAX, NoSIMD: ns(+0.070, +0.220)},
		{Name: "531.deepsjeng", Suite: SPECint, IPC: 1.5, IMULFraction: 0.0007,
			BurstEvery: 20e6, BurstLen: 60, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVANDN, NoSIMD: ns(-0.013, -0.003)},
		{Name: "541.leela", Suite: SPECint, IPC: 1.4, IMULFraction: 0.0006,
			BurstEvery: 12e6, BurstLen: 70, BurstIntraGap: 1100, BurstSigma: 0.8,
			BurstOp: isa.OpVAND, NoSIMD: ns(-0.011, -0.003)},
		{Name: "548.exchange2", Suite: SPECint, IPC: 2.2, IMULFraction: 0.0012,
			BurstEvery: 16.5e6, BurstLen: 50, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVPADDQ, NoSIMD: ns(+0.077, +0.068)},
		{Name: "557.xz", Suite: SPECint, IPC: 1.3, IMULFraction: 0.0008,
			BurstEvery: 75e6, BurstLen: 100, BurstIntraGap: 1300, BurstSigma: 0.8,
			BurstOp: isa.OpVPCLMULQDQ, NoSIMD: ns(-0.011, -0.003)},

		// --- fprate ---
		{Name: "503.bwaves", Suite: SPECfp, IPC: 1.5, IMULFraction: 0.0004,
			BurstEvery: 4.5e6, BurstLen: 90, BurstIntraGap: 1100, BurstSigma: 0.8,
			BurstOp: isa.OpVSQRTPD, NoSIMD: ns(-0.025, -0.012)},
		{Name: "507.cactuBSSN", Suite: SPECfp, IPC: 1.6, IMULFraction: 0.0005,
			BurstEvery: 4.6e6, BurstLen: 100, BurstIntraGap: 1200, BurstSigma: 0.8,
			BurstOp: isa.OpVAND, NoSIMD: ns(-0.030, -0.015)},
		{Name: "508.namd", Suite: SPECfp, IPC: 2.2, IMULFraction: 0.0003,
			BurstEvery: 6.4e6, BurstLen: 110, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVSQRTPD, NoSIMD: ns(-0.220, -0.350)},
		{Name: "510.parest", Suite: SPECfp, IPC: 1.7, IMULFraction: 0.0006,
			BurstEvery: 8.5e6, BurstLen: 90, BurstIntraGap: 1100, BurstSigma: 0.8,
			BurstOp: isa.OpVPADDQ, NoSIMD: ns(-0.015, -0.009)},
		{Name: "511.povray", Suite: SPECfp, IPC: 2.0, IMULFraction: 0.0008,
			BurstEvery: 5.2e6, BurstLen: 80, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVSQRTPD, NoSIMD: ns(-0.010, -0.005)},
		{Name: "519.lbm", Suite: SPECfp, IPC: 1.4, IMULFraction: 0.0002,
			BurstEvery: 14e6, BurstLen: 70, BurstIntraGap: 1200, BurstSigma: 0.8,
			BurstOp: isa.OpVXOR, NoSIMD: ns(-0.020, -0.011)},
		{Name: "521.wrf", Suite: SPECfp, IPC: 1.5, IMULFraction: 0.0005,
			PoissonGap: 5e3, DiffuseOp: isa.OpVAND, NoSIMD: ns(-0.014, -0.053)},
		{Name: "526.blender", Suite: SPECfp, IPC: 1.8, IMULFraction: 0.0009,
			BurstEvery: 5.8e6, BurstLen: 90, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVPMAX, NoSIMD: ns(-0.018, -0.010)},
		{Name: "527.cam4", Suite: SPECfp, IPC: 1.5, IMULFraction: 0.0006,
			PoissonGap: 150e3, DiffuseOp: isa.OpVANDN, NoSIMD: ns(-0.013, -0.008)},
		{Name: "538.imagick", Suite: SPECfp, IPC: 2.3, IMULFraction: 0.0011,
			BurstEvery: 10e6, BurstLen: 100, BurstIntraGap: 900, BurstSigma: 0.8,
			BurstOp: isa.OpVPSRAD, NoSIMD: ns(-0.120, -0.090)},
		{Name: "544.nab", Suite: SPECfp, IPC: 1.9, IMULFraction: 0.0007,
			BurstEvery: 4.5e6, BurstLen: 80, BurstIntraGap: 1000, BurstSigma: 0.8,
			BurstOp: isa.OpVSQRTPD, NoSIMD: ns(-0.008, -0.007)},
		{Name: "549.fotonik3d", Suite: SPECfp, IPC: 1.9, IMULFraction: 0.0004,
			BurstEvery: 43e6, BurstLen: 90, BurstIntraGap: 1100, BurstSigma: 0.8,
			BurstOp: isa.OpVXOR, NoSIMD: ns(-0.007, -0.007)},
		{Name: "554.roms", Suite: SPECfp, IPC: 1.6, IMULFraction: 0.0005,
			BurstEvery: 4.5e6, BurstLen: 90, BurstIntraGap: 1100, BurstSigma: 0.8,
			BurstOp: isa.OpVSQRTPD, NoSIMD: ns(-0.033, -0.190)},
	}
}

// Nginx models the HTTPS server workload of §6.2: 100 kB files served
// over TLS, saturated by wrk. AES-NI rounds dominate request handling —
// dense intra-request AESENC bursts separated by request/network gaps —
// which is why instruction emulation is catastrophic for it (−98 %
// performance, §6.6) while DVFS curve switching works well.
func Nginx() Benchmark {
	return Benchmark{
		Name: "nginx", Suite: Network, IPC: 1.2, IMULFraction: 0.0004,
		BurstEvery: 36e6, BurstLen: 470e3, BurstIntraGap: 10, BurstSigma: 0.5,
		BurstOp: isa.OpAESENC,
		// nginx is not part of Table 4; compiled without SIMD it loses
		// its AES-NI fast path — modelled as a modest constant (the
		// trace-based evaluation never uses it: network workloads are
		// evaluated with fV and e only).
		NoSIMD: ns(-0.05, -0.05),
	}
}

// VLC models the streaming client of §6.2: a 1080p HTTPS stream, AES
// bursts per segment download with longer quiet gaps than the saturated
// server (Fig 7's burst/gap timeline).
func VLC() Benchmark {
	return Benchmark{
		Name: "VLC", Suite: Network, IPC: 1.6, IMULFraction: 0.0005,
		BurstEvery: 48e6, BurstLen: 150e3, BurstIntraGap: 20, BurstSigma: 0.7,
		BurstOp: isa.OpAESENC,
		NoSIMD:  ns(-0.05, -0.05),
	}
}

// All returns every workload of the evaluation: SPEC, nginx, VLC.
func All() []Benchmark {
	return append(SPEC(), Nginx(), VLC())
}

// ByName returns the named workload.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// SuiteMeanNoSIMD returns the mean noSIMD impact over the given suite,
// reproducing the fprate/intrate rows of Table 4.
func SuiteMeanNoSIMD(suite Suite, fam CPUFamily) float64 {
	var sum float64
	var n int
	for _, b := range SPEC() {
		if b.Suite == suite {
			sum += b.NoSIMD[fam]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
