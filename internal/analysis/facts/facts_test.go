package facts

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Note string `json:"note"`
}

func (*testFact) AFact() {}

type otherFact struct {
	N int `json:"n"`
}

func (*otherFact) AFact() {}

func init() {
	Register(&testFact{})
	Register(&otherFact{})
}

const factSrc = `package p

type T struct{}

func F() {}
func (T) M() {}
func (t *T) P() {}
func init() {}
`

func checkSrc(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := new(types.Config).Check("example.com/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func lookupFunc(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	if fn, ok := obj.(*types.Func); ok {
		return fn
	}
	t.Fatalf("no function %q in %s", name, pkg.Path())
	return nil
}

func lookupMethod(t *testing.T, pkg *types.Package, typ, name string) *types.Func {
	t.Helper()
	tn := pkg.Scope().Lookup(typ).(*types.TypeName)
	named := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	t.Fatalf("no method %s.%s", typ, name)
	return nil
}

func TestFuncKey(t *testing.T) {
	pkg := checkSrc(t, factSrc)
	cases := []struct {
		fn   *types.Func
		want string
	}{
		{lookupFunc(t, pkg, "F"), "F"},
		{lookupMethod(t, pkg, "T", "M"), "(T).M"},
		{lookupMethod(t, pkg, "T", "P"), "(*T).P"},
	}
	for _, c := range cases {
		key, ok := FuncKey(c.fn)
		if !ok {
			t.Errorf("FuncKey(%s) not addressable", c.fn.Name())
			continue
		}
		if key.Pkg != "example.com/p" || key.Obj != c.want {
			t.Errorf("FuncKey(%s) = %+v, want {example.com/p %s}", c.fn.Name(), key, c.want)
		}
	}
	if _, ok := FuncKey(nil); ok {
		t.Error("FuncKey(nil) should not be addressable")
	}
}

func TestNormPkgPath(t *testing.T) {
	if got := NormPkgPath("suit/internal/cpu [suit/internal/cpu.test]"); got != "suit/internal/cpu" {
		t.Errorf("NormPkgPath test variant = %q", got)
	}
	if got := NormPkgPath("suit/internal/cpu"); got != "suit/internal/cpu" {
		t.Errorf("NormPkgPath plain = %q", got)
	}
}

func TestExportImport(t *testing.T) {
	pkg := checkSrc(t, factSrc)
	f := lookupFunc(t, pkg, "F")
	m := lookupMethod(t, pkg, "T", "M")

	s := NewStore()
	if !s.Export(f, &testFact{Note: "hello"}) {
		t.Fatal("Export(F) failed")
	}
	if !s.Export(m, &testFact{Note: "method"}) {
		t.Fatal("Export(M) failed")
	}
	if !s.Export(f, &otherFact{N: 7}) {
		t.Fatal("Export(F, otherFact) failed")
	}

	var got testFact
	if !s.Import(f, &got) || got.Note != "hello" {
		t.Errorf("Import(F) = %+v, %v", got, true)
	}
	if !s.Import(m, &got) || got.Note != "method" {
		t.Errorf("Import(M) = %+v", got)
	}
	var other otherFact
	if !s.Import(f, &other) || other.N != 7 {
		t.Errorf("Import(F, otherFact) = %+v", other)
	}
	// A function with no fact of that type.
	p := lookupMethod(t, pkg, "T", "P")
	if s.Import(p, &got) {
		t.Error("Import(P) should miss")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pkg := checkSrc(t, factSrc)
	f := lookupFunc(t, pkg, "F")
	m := lookupMethod(t, pkg, "T", "P")

	s := NewStore()
	s.Export(f, &testFact{Note: "alpha"})
	s.Export(m, &otherFact{N: 42})

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: encoding twice yields identical bytes.
	data2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("Encode is not deterministic")
	}

	revived := NewStore()
	if err := revived.Decode(data); err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !revived.Import(f, &got) || got.Note != "alpha" {
		t.Errorf("revived Import(F) = %+v", got)
	}
	var other otherFact
	if !revived.Import(m, &other) || other.N != 42 {
		t.Errorf("revived Import(P) = %+v", other)
	}

	// Decoding into a non-empty store merges.
	s2 := NewStore()
	s2.Export(f, &otherFact{N: 1})
	if err := s2.Decode(data); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Errorf("merged Len = %d, want 3", s2.Len())
	}

	// Empty input is a no-op.
	if err := NewStore().Decode(nil); err != nil {
		t.Errorf("Decode(nil) = %v", err)
	}
}
