// Package hotregress seeds the canonical regression the allocfree
// analyzer exists to catch: an append creeping under the sweep engine's
// per-event dispatch loop. The shape mirrors internal/cpu's Machine —
// if this fixture ever stops flagging, the real contract is unguarded.
package hotregress

type machine struct {
	now   int
	trace []int
}

// runStep is the per-event dispatch loop.
//
//suit:hotpath
func (m *machine) runStep() {
	m.now++
	m.trace = append(m.trace, m.now) // want `hot path: append may grow the backing array`
	m.advanceTo(m.now + 1)
}

// advanceTo is reached transitively: not annotated, still hot.
func (m *machine) advanceTo(t int) {
	for m.now < t {
		m.now++
		m.popEvent()
	}
}

func (m *machine) popEvent() {
	_ = new(int) // want `hot path: new allocates`
}
