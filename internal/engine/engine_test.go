package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testSpec is a minimal sweep point; its key is its ID.
type testSpec struct {
	ID int
}

func specKey(s testSpec) string { return fmt.Sprintf("spec-%d", s.ID) }

// testResult must round-trip through JSON for the disk-cache tests.
type testResult struct {
	ID   int
	Seed uint64
	Val  float64
}

// computeFn derives the result purely from spec + seed, like a
// simulation does.
func computeFn(_ context.Context, s testSpec, seed uint64) (testResult, error) {
	return testResult{ID: s.ID, Seed: seed, Val: float64(seed%1000) / 1000}, nil
}

func specs(n int) []testSpec {
	out := make([]testSpec, n)
	for i := range out {
		out[i] = testSpec{ID: i}
	}
	return out
}

// TestDeterministicAcrossWorkerCounts is the engine's core contract:
// the result slice is a pure function of (specs, base seed), no matter
// how many workers race over the queue.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	in := specs(64)
	var runs [][]testResult
	for _, workers := range []int{1, 8} {
		e := New(specKey, computeFn, Options{Workers: workers, BaseSeed: 42})
		got, err := e.Run(context.Background(), in)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		runs = append(runs, got)
	}
	for i := range in {
		if runs[0][i] != runs[1][i] {
			t.Fatalf("spec %d diverged across worker counts: %+v vs %+v", i, runs[0][i], runs[1][i])
		}
		if runs[0][i].ID != i {
			t.Fatalf("result %d out of order: %+v", i, runs[0][i])
		}
	}
}

// TestDeriveSeed pins the seed-derivation contract: deterministic,
// key- and base-sensitive, never zero.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("derivation not deterministic")
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("distinct keys map to the same seed")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("base seed does not influence the derived seed")
	}
	for base := uint64(0); base < 64; base++ {
		if DeriveSeed(base, "x") == 0 {
			t.Fatal("derived seed 0 would read as 'unset' downstream")
		}
	}
}

// TestMemoAccounting checks the in-memory layer: a re-run of the same
// batch computes nothing and reports full hits.
func TestMemoAccounting(t *testing.T) {
	var calls atomic.Int64
	counting := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		calls.Add(1)
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, counting, Options{Workers: 4})
	in := specs(20)
	for pass := 0; pass < 2; pass++ {
		if _, err := e.Run(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if calls.Load() != 20 {
		t.Errorf("computed %d times, want 20", calls.Load())
	}
	if st.Jobs != 40 || st.Unique != 40 || st.Ran != 20 || st.MemHits != 20 || st.DiskHits != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %.2f, want 0.50", st.HitRate())
	}
}

// TestBatchDeduplication: duplicate fingerprints inside one batch are
// computed once and every index still gets its result.
func TestBatchDeduplication(t *testing.T) {
	var calls atomic.Int64
	counting := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		calls.Add(1)
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, counting, Options{Workers: 4})
	in := []testSpec{{ID: 7}, {ID: 8}, {ID: 7}, {ID: 7}}
	got, err := e.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("computed %d times, want 2", calls.Load())
	}
	if got[0] != got[2] || got[0] != got[3] || got[0].ID != 7 || got[1].ID != 8 {
		t.Errorf("duplicate indices not filled: %+v", got)
	}
	st := e.Stats()
	if st.Jobs != 4 || st.Unique != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDiskCache: a cold run populates the cache directory; a fresh
// engine over the same directory resolves everything from disk with
// identical results; a different base seed misses.
func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	in := specs(12)
	cold := New(specKey, computeFn, Options{Workers: 4, BaseSeed: 9, CacheDir: dir})
	want, err := cold.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Ran != 12 || st.Hits() != 0 {
		t.Errorf("cold stats = %+v", st)
	}

	warm := New(specKey, computeFn, Options{Workers: 4, BaseSeed: 9, CacheDir: dir})
	got, err := warm.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Ran != 0 || st.DiskHits != 12 {
		t.Errorf("warm stats = %+v", st)
	}
	if st.HitRate() < 0.9 {
		t.Errorf("warm hit rate %.2f, want > 0.9", st.HitRate())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spec %d changed across cache reload: %+v vs %+v", i, want[i], got[i])
		}
	}

	other := New(specKey, computeFn, Options{Workers: 4, BaseSeed: 10, CacheDir: dir})
	if _, err := other.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if st := other.Stats(); st.DiskHits != 0 || st.Ran != 12 {
		t.Errorf("a different base seed must not alias the cache: %+v", st)
	}
}

// TestErrorPropagation: the first failing job aborts the sweep with a
// contextualized error.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	failing := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if s.ID == 3 {
			return testResult{}, boom
		}
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, failing, Options{Workers: 2})
	_, err := e.Run(context.Background(), specs(8))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job") {
		t.Errorf("error lacks job context: %v", err)
	}
}

// TestCancellationLeavesNoGoroutines cancels mid-sweep and asserts the
// goroutine count returns to its pre-Run level.
func TestCancellationLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	slow := func(ctx context.Context, s testSpec, seed uint64) (testResult, error) {
		if started.Add(1) == 3 {
			cancel() // pull the plug mid-sweep
		}
		time.Sleep(2 * time.Millisecond)
		return computeFn(ctx, s, seed)
	}
	e := New(specKey, slow, Options{Workers: 4, Progress: io.Discard, ProgressEvery: time.Millisecond})
	_, err := e.Run(ctx, specs(200))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 200 {
		t.Errorf("cancellation did not stop the sweep: %d jobs started", n)
	}

	// Workers exit before Run returns; allow the runtime a moment to
	// reap anything transient before comparing counts.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
