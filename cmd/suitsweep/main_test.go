package main

import (
	"reflect"
	"strings"
	"testing"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/engine"
	"suit/internal/strategy"
)

func TestChipByName(t *testing.T) {
	for _, name := range []string{"A", "a", "B", "c"} {
		if _, err := chipByName(name); err != nil {
			t.Errorf("chip %q rejected: %v", name, err)
		}
	}
	_, err := chipByName("Z")
	if err == nil {
		t.Fatal("unknown chip accepted")
	}
	if !strings.Contains(err.Error(), `"Z"`) || !strings.Contains(err.Error(), "A, B, C") {
		t.Errorf("unknown-chip error should name the value and the known set: %v", err)
	}
}

func TestSweepGridShape(t *testing.T) {
	fast := sweepGrid(dvfs.XeonSilver4208())
	slow := sweepGrid(dvfs.AMDRyzen7700X())
	if len(fast) != 240 || len(slow) != 240 {
		t.Fatalf("grid sizes %d/%d, want 240 (5 deadlines × 3 spans × 4 counts × 4 factors)", len(fast), len(slow))
	}
	// CPU ℬ's slow frequency switching must push the grid to longer
	// deadlines.
	if slow[0].Deadline <= fast[len(fast)-1].Deadline {
		t.Errorf("ℬ grid deadline %v not beyond the fast grid's %v", slow[0].Deadline, fast[len(fast)-1].Deadline)
	}
	for _, p := range fast {
		if err := p.Validate(); err != nil {
			t.Fatalf("grid point invalid: %v", err)
		}
	}
}

// TestSweepDeterministicAcrossWorkers runs a miniature sweep at -j 1 and
// -j 8, cold and warm (reusing the on-disk result cache), and demands
// identical ranked results across all four combinations — the acceptance
// contract of the parallel engine, and the machine-level oracle that the
// indexed event queue preserved the linear scan's event order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	chip := dvfs.XeonSilver4208()
	grid := sweepGrid(chip)[:3]
	benches, err := sweepBenches()
	if err != nil {
		t.Fatal(err)
	}
	benches = benches[:2]

	type variant struct {
		name    string
		workers int
		warm    bool
	}
	variants := []variant{
		{"j1-cold", 1, false},
		{"j8-cold", 8, false},
		{"j1-warm", 1, true},
		{"j8-warm", 8, true},
	}
	cacheDir := t.TempDir()
	var runs [][]sweepPoint
	for _, v := range variants {
		opts := engine.Options{Workers: v.workers, BaseSeed: 1}
		if v.warm {
			// Warm runs read every point back from the cache the cold
			// runs populated; a decode/encode asymmetry would diverge here.
			opts.CacheDir = cacheDir
		} else if v.workers == 1 {
			// One cold run also writes the cache so the warm runs hit it.
			opts.CacheDir = cacheDir
		}
		core.SetEngineOptions(opts)
		points, failed, err := sweep(chip, grid, benches, true, 2_000_000)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if len(failed) != 0 {
			t.Fatalf("%s: unexpected failures %v", v.name, failed)
		}
		runs = append(runs, points)
	}
	core.SetEngineOptions(engine.Options{}) // restore defaults for other tests
	for i := 1; i < len(runs); i++ {
		if !reflect.DeepEqual(runs[0], runs[i]) {
			t.Fatalf("sweep diverged between %s and %s:\n%+v\n%+v",
				variants[0].name, variants[i].name, runs[0], runs[i])
		}
	}
	// Seeds derive per point, so distinct grid points must not share one.
	k0 := core.Scenario{Chip: chip, Bench: benches[0], Kind: core.KindFV,
		SpendAging: true, Instructions: 2_000_000, Params: &grid[0]}.Fingerprint()
	k1 := core.Scenario{Chip: chip, Bench: benches[0], Kind: core.KindFV,
		SpendAging: true, Instructions: 2_000_000, Params: &grid[1]}.Fingerprint()
	if engine.DeriveSeed(1, k0) == engine.DeriveSeed(1, k1) {
		t.Error("distinct sweep points derived the same seed")
	}
}

// TestSweepDropsFailedPointsUnderCollect: with -on-error=continue a
// failing grid point must not abort the sweep or leak a zero-valued
// mean into the ranking — its scenarios are reported by fingerprint and
// the point disappears from the table.
func TestSweepDropsFailedPointsUnderCollect(t *testing.T) {
	chip := dvfs.XeonSilver4208()
	grid := sweepGrid(chip)[:3]
	grid[1] = strategy.Params{} // invalid: every scenario at this point fails
	benches, err := sweepBenches()
	if err != nil {
		t.Fatal(err)
	}
	benches = benches[:2]

	core.SetEngineOptions(engine.Options{Workers: 4, BaseSeed: 1, Policy: engine.Collect})
	defer core.SetEngineOptions(engine.Options{})
	points, failed, err := sweep(chip, grid, benches, true, 2_000_000)
	if err != nil {
		t.Fatalf("collect policy must not abort the sweep: %v", err)
	}
	if len(failed) != len(benches) {
		t.Fatalf("%d failed fingerprints, want %d (one per workload at the bad point)", len(failed), len(benches))
	}
	if len(points) != 2 {
		t.Fatalf("%d ranked points, want 2 (the failed point must be dropped)", len(points))
	}
	for _, p := range points {
		if p.p == grid[1] {
			t.Error("failed grid point survived into the ranking")
		}
	}

	// FailFast with the same grid aborts instead.
	core.SetEngineOptions(engine.Options{Workers: 4, BaseSeed: 1})
	if _, _, err := sweep(chip, grid, benches, true, 2_000_000); err == nil {
		t.Fatal("fail-fast policy should surface the failure as an error")
	}
}
