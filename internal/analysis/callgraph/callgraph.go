// Package callgraph builds the intra-package static call graph the
// cross-function analyzers (allocfree, determinism taint) propagate
// over. Nodes are the package's declared functions and methods; edges
// are resolved with go/types:
//
//   - direct calls of package functions and methods are Static;
//   - calls through an interface are Interface edges carrying the
//     interface method — dynamic dispatch cannot be resolved to an
//     implementation, so analyzers treat them conservatively (a callee
//     is not considered reached unless separately annotated);
//   - calls of function-typed values (variables, fields, parameters,
//     call results) are FuncValue edges with no callee;
//   - binding a method value (x.M used as a value, or the method
//     expression T.M) is a MethodValue edge: the target is statically
//     known even though the call happens later, so reachability-style
//     propagation follows it.
//
// Deferred calls and go statements produce ordinary edges with the
// Deferred/Go flags set: both run the callee on the same logical path
// for the properties checked here. Function literals have no stable
// identity, so their bodies are attributed to the enclosing declared
// function — an allocation inside a closure inside runStep is
// runStep's problem.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Kind classifies how an edge's target is reached.
type Kind uint8

const (
	// Static is a direct call of a known function or method.
	Static Kind = iota
	// Interface is dynamic dispatch through an interface method; the
	// Callee is the interface method declaration, not an implementation.
	Interface
	// FuncValue is a call of a function-typed value; Callee is nil.
	FuncValue
	// MethodValue is the creation of a bound method value (or method
	// expression): the target is known, the call site is elsewhere.
	MethodValue
)

// String implements fmt.Stringer for diagnostics and tests.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case FuncValue:
		return "funcvalue"
	case MethodValue:
		return "methodvalue"
	default:
		return "unknown"
	}
}

// An Edge is one outgoing reference from a function body.
type Edge struct {
	Pos      token.Pos
	Callee   *types.Func // resolved target; nil for FuncValue
	Kind     Kind
	Deferred bool // the call sits in a defer statement
	Go       bool // the call starts a goroutine
}

// A Node is one declared function or method and its outgoing edges, in
// source order.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Out  []Edge
}

// A Graph is the package's call graph. Nodes preserves declaration
// order so iteration is deterministic.
type Graph struct {
	Nodes  []*Node
	byFunc map[*types.Func]*Node
}

// Node returns the node for fn, or nil if fn is not declared in this
// package ('s analyzed files).
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn.Origin()]
}

// Build constructs the call graph for the given type-checked files.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{byFunc: map[*types.Func]*Node{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Func: fn, Decl: fd}
			collectEdges(info, fd.Body, node)
			g.Nodes = append(g.Nodes, node)
			g.byFunc[fn] = node
		}
	}
	return g
}

// collectEdges walks a function body and appends every outgoing edge.
func collectEdges(info *types.Info, body ast.Node, node *Node) {
	// callFuns marks expressions in call position so a selector that IS
	// the call's Fun is not double-counted as a method-value binding.
	callFuns := map[ast.Expr]bool{}
	// deferred / goStmt mark call expressions reached through
	// defer / go statements (ast.Inspect visits parents first).
	deferred := map[*ast.CallExpr]bool{}
	goStmt := map[*ast.CallExpr]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			deferred[s.Call] = true
		case *ast.GoStmt:
			goStmt[s.Call] = true
		case *ast.CallExpr:
			fun := unwrapFun(s.Fun)
			callFuns[fun] = true
			if tv, ok := info.Types[s.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			edge, ok := resolveCall(info, fun)
			if !ok {
				return true
			}
			edge.Pos = s.Lparen
			edge.Deferred = deferred[s]
			edge.Go = goStmt[s]
			node.Out = append(node.Out, edge)
		case *ast.SelectorExpr:
			if callFuns[s] {
				return true
			}
			sel, ok := info.Selections[s]
			if !ok {
				return true
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return true
			}
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				kind := MethodValue
				if types.IsInterface(sel.Recv()) {
					// A bound interface method: target unresolved.
					kind = Interface
				}
				node.Out = append(node.Out, Edge{
					Pos:    s.Sel.Pos(),
					Callee: fn.Origin(),
					Kind:   kind,
				})
			}
		}
		return true
	})
}

// unwrapFun strips parentheses and generic instantiation indices from a
// call's Fun expression.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// resolveCall classifies a call by its (unwrapped) Fun expression.
// The second result is false for builtins and type conversions, which
// are not edges.
func resolveCall(info *types.Info, fun ast.Expr) (Edge, bool) {
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			return Edge{Callee: obj.Origin(), Kind: Static}, true
		case *types.Var:
			return Edge{Kind: FuncValue}, true
		default:
			// Builtin, type name (conversion) or unresolved.
			return Edge{}, false
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				if types.IsInterface(sel.Recv()) {
					return Edge{Callee: obj.Origin(), Kind: Interface}, true
				}
				return Edge{Callee: obj.Origin(), Kind: Static}, true
			case *types.Var:
				// Calling a function-typed field.
				return Edge{Kind: FuncValue}, true
			}
			return Edge{}, false
		}
		// Qualified identifier: pkg.F or pkg.Var.
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			return Edge{Callee: obj.Origin(), Kind: Static}, true
		case *types.Var:
			return Edge{Kind: FuncValue}, true
		}
		return Edge{}, false
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed to
		// the enclosing declaration.
		return Edge{}, false
	default:
		// Call of a call result or other computed function value.
		return Edge{Kind: FuncValue}, true
	}
}

// Reachable returns the functions reachable from roots by following
// edges admitted by follow. A nil follow admits the statically resolved
// kinds (Static and MethodValue), which is what hot-path propagation
// wants: dynamic dispatch does not spread reachability. Only functions
// declared in this graph's package are traversed; cross-package targets
// are the caller's business (via facts).
func (g *Graph) Reachable(roots []*types.Func, follow func(Edge) bool) map[*types.Func]bool {
	if follow == nil {
		follow = func(e Edge) bool { return e.Kind == Static || e.Kind == MethodValue }
	}
	seen := map[*types.Func]bool{}
	var stack []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r.Origin()] {
			seen[r.Origin()] = true
			stack = append(stack, r.Origin())
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := g.byFunc[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if e.Callee == nil || !follow(e) || seen[e.Callee] {
				continue
			}
			if g.byFunc[e.Callee] == nil {
				continue // cross-package or bodiless: not traversed here
			}
			seen[e.Callee] = true
			stack = append(stack, e.Callee)
		}
	}
	return seen
}
