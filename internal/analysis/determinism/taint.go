// Taint propagation: the cross-function half of the determinism
// contract. The per-file checks in determinism.go only see DIRECT
// wall-clock and global-rand uses inside result-affecting packages; a
// helper in a utility package that calls time.Now escapes them
// entirely. Here every analyzed package computes, per function, whether
// its result can depend on the wall clock or the process-global rand
// source — directly or through any chain of statically resolved calls —
// and exports that as a Tainted fact. Result-affecting packages then
// report call sites whose (cross-package) callee carries the fact.
//
// Propagation is conservative in the same way as allocfree: static
// calls and bound method values carry taint; interface dispatch and
// function-typed values do not (a Strategy implementation is checked in
// its own package, not through the dispatch site). A //lint:allow
// determinism on a site or call line both silences the finding and
// stops the taint, so an explained watchdog timer does not smear every
// transitive caller.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"suit/internal/analysis"
	"suit/internal/analysis/callgraph"
	"suit/internal/analysis/facts"
)

// Tainted is the cross-package fact: the function's behavior can depend
// on the wall clock or the process-global rand source. Source names the
// ROOT cause ("time.Now at clock.go:14") and is propagated unchanged
// through transitive carriers, so the eventual diagnostic points at the
// original sin, not the nearest link.
type Tainted struct {
	Source string `json:"source"`
}

// AFact marks Tainted as a fact type.
func (*Tainted) AFact() {}

func init() { facts.Register(&Tainted{}) }

// taintSite is one direct nondeterminism source in a function body.
type taintSite struct {
	pos    token.Pos
	source string
}

// propagateTaint computes and exports per-function taint for this
// package and, in result-affecting packages, reports calls to tainted
// cross-package callees.
func propagateTaint(pass *analysis.Pass, report bool) {
	g := callgraph.Build(pass.TypesInfo, pass.Files)

	// Direct sources, suppression applied: an allowed site neither
	// taints its function nor (in result packages) survives as a
	// diagnostic, and consulting the allow marks it load-bearing.
	tainted := make(map[*types.Func]string, len(g.Nodes))
	for _, n := range g.Nodes {
		if sites := directTaints(pass, n.Decl); len(sites) > 0 {
			tainted[n.Func] = sites[0].source
		}
	}

	// Fixpoint over static and method-value edges; allowed call sites
	// break the chain.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if _, done := tainted[n.Func]; done {
				continue
			}
			for _, e := range n.Out {
				src, ok := taintSource(pass, g, tainted, e)
				if !ok || pass.Allowed(e.Pos) {
					continue
				}
				tainted[n.Func] = src
				changed = true
				break
			}
		}
	}

	for _, n := range g.Nodes {
		if src, ok := tainted[n.Func]; ok {
			pass.ExportFact(n.Func, &Tainted{Source: src})
		}
	}

	if !report {
		return
	}
	// Call-site findings for cross-package (or bodiless) tainted
	// callees. Local callees are skipped: their direct sites were
	// already reported where they occur by checkClockAndRand.
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Callee == nil || g.Node(e.Callee) != nil {
				continue
			}
			if e.Kind != callgraph.Static && e.Kind != callgraph.MethodValue {
				continue
			}
			var fact Tainted
			if pass.ImportFact(e.Callee, &fact) {
				pass.Reportf(e.Pos,
					"calls %s, which is tainted by %s; results must be a pure function of (spec, seed) — inject the value, or suppress with //lint:allow determinism <reason> if it never reaches results",
					taintCalleeName(e.Callee), fact.Source)
			}
		}
	}
}

// taintSource resolves whether an edge's target is tainted and by what
// root source.
func taintSource(pass *analysis.Pass, g *callgraph.Graph, tainted map[*types.Func]string, e callgraph.Edge) (string, bool) {
	if e.Callee == nil || (e.Kind != callgraph.Static && e.Kind != callgraph.MethodValue) {
		return "", false
	}
	if g.Node(e.Callee) != nil {
		src, ok := tainted[e.Callee]
		return src, ok
	}
	var fact Tainted
	if pass.ImportFact(e.Callee, &fact) {
		return fact.Source, true
	}
	return "", false
}

// directTaints scans one declaration for unsuppressed direct sources:
// wall-clock reads, wall-clock timers, global math/rand draws and
// visibly unseeded rand.New constructions. The classification matches
// checkClockAndRand so a site reported there and the taint it spreads
// here are always the same set.
func directTaints(pass *analysis.Pass, decl *ast.FuncDecl) []taintSite {
	var out []taintSite
	add := func(pos token.Pos, source string) {
		if pass.Allowed(pos) {
			return
		}
		out = append(out, taintSite{pos: pos, source: source})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := pass.TypesInfo.Uses[x.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
					add(x.Pos(), fmt.Sprintf("time.%s at %s", fn.Name(), taintPos(pass.Fset, x.Pos())))
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					add(x.Pos(), fmt.Sprintf("global rand.%s at %s", fn.Name(), taintPos(pass.Fset, x.Pos())))
				}
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Name() != "New" {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if !mentionsSeed(x.Args) {
				add(x.Pos(), fmt.Sprintf("unseeded rand.New at %s", taintPos(pass.Fset, x.Pos())))
			}
		}
		return true
	})
	return out
}

// taintCalleeName renders a callee as pkg.F / pkg.(T).M for diagnostics.
func taintCalleeName(fn *types.Func) string {
	key, ok := facts.FuncKey(fn)
	if !ok {
		return fn.Name()
	}
	pkg := key.Pkg
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + key.Obj
}

// taintPos renders "file.go:line" with the directory stripped.
func taintPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
