package service

import (
	"bufio"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)$`)
)

// parsePromText is a strict mini-parser for Prometheus text exposition
// format 0.0.4: every line must be a HELP comment, a TYPE comment, or a
// sample; every sample must follow its metric's TYPE; HELP/TYPE come
// before the first sample of their metric. Returns sample values keyed
// by full series name (metric plus label set).
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	values := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !helpLine.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", n, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", n, line)
			}
			typed[m[1]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", n, line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", n, line)
		}
		if !typed[m[1]] {
			t.Fatalf("line %d: sample %q before its # TYPE", n, m[1])
		}
		v, err := strconv.ParseFloat(m[len(m)-1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", n, line, err)
		}
		values[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return values
}

func TestMetricsPrometheusFormat(t *testing.T) {
	svc, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svc)

	job, _, err := svc.Submit(tinySpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if _, _, err := svc.Submit(tinySpec(2, 1)); err != nil { // dedup hit
		t.Fatal(err)
	}

	var b strings.Builder
	if err := svc.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	values := parsePromText(t, b.String())

	want := map[string]float64{
		"suitd_submissions_total":        2,
		"suitd_cache_hits_total":         1,
		"suitd_singleflight_dedup_total": 1,
		"suitd_result_store_hits_total":  0,
		"suitd_rejected_total":           0,
		"suitd_jobs_executed_total":      1,
		"suitd_queue_depth":              0,
		"suitd_engine_ran_total":         2,
		`suitd_jobs{state="done"}`:       1,
		`suitd_jobs{state="queued"}`:     0,
	}
	for name, v := range want {
		got, ok := values[name]
		if !ok {
			t.Errorf("metric %s missing", name)
		} else if got != v {
			t.Errorf("%s = %g, want %g", name, got, v)
		}
	}
	for _, state := range States {
		if _, ok := values[fmt.Sprintf("suitd_jobs{state=%q}", string(state))]; !ok {
			t.Errorf("per-state gauge for %q missing", state)
		}
	}
}

func TestMetricsHTTPContentType(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	parsePromText(t, b.String()) // strict-parses clean even when idle
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
