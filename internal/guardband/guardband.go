// Package guardband models the voltage-margin physics SUIT builds on:
// the per-instruction variation in required voltage (§2.3, Table 1), the
// aging guardband of FinFET circuits (§2.2, §5.6), the temperature
// guardband (§5.7), and the vendor procedure that turns those margins into
// the efficient DVFS curve offset (§3.1: −70 mV from instruction variation
// alone, −97 mV when additionally spending 20 % of the aging guardband).
package guardband

import (
	"fmt"
	"math"

	"suit/internal/dvfs"
	"suit/internal/isa"
	"suit/internal/units"
)

// Model is the chip's voltage-margin model. All margins are voltages below
// the conservative DVFS curve at which the subject starts to fault: an
// instruction with margin m executes correctly at curve offsets o with
// |o| < m and produces silently wrong results at deeper undervolts.
type Model struct {
	// VariationMargin is the per-instruction margin from the instruction
	// voltage variation, for the instructions with observed faults
	// (Table 1). Instructions faulting more readily have smaller margins.
	VariationMargin map[isa.Opcode]units.Volt
	// BackgroundVariation is the margin of every other instruction: the
	// average instruction-voltage variation of 70 mV (§3.1).
	BackgroundVariation units.Volt
	// AgingGuardband is the full worst-case aging guardband (137 mV on
	// the i9-9900K, §5.6). A fraction of it can be spent on young,
	// temperature-controlled parts.
	AgingGuardband units.Volt
	// SpendableAgingFraction is the share of the aging guardband SUIT is
	// willing to consume (0.2 in the paper's evaluation).
	SpendableAgingFraction float64
	// TempGuardband is the voltage the guardband reserves for the
	// worst-case core temperature (35 mV ≈ 3.5 %, §5.7).
	TempGuardband units.Volt
	// IMULHardeningBonus is the extra margin the +1-cycle IMUL gains:
	// 33 % added timing slack corresponds to up to 220 mV at 5 GHz on the
	// Fig 13 curve (§6.9); 150 mV is a conservative mid-curve value.
	IMULHardeningBonus units.Volt
}

// Default returns the model seeded from the paper's measurements. The
// faultable-set margins are spread over (0, 70) mV in inverse Table 1
// fault-count order — instructions observed faulting more often fault at
// shallower undervolts ("the rarely faulting instructions occur on average
// at lower voltages", Table 1 caption).
func Default() *Model {
	return &Model{
		VariationMargin: map[isa.Opcode]units.Volt{
			isa.OpIMUL:       units.MilliVolts(12),
			isa.OpVOR:        units.MilliVolts(22),
			isa.OpAESENC:     units.MilliVolts(27),
			isa.OpVXOR:       units.MilliVolts(28),
			isa.OpVANDN:      units.MilliVolts(35),
			isa.OpVAND:       units.MilliVolts(38),
			isa.OpVSQRTPD:    units.MilliVolts(43),
			isa.OpVPCLMULQDQ: units.MilliVolts(50),
			isa.OpVPSRAD:     units.MilliVolts(56),
			isa.OpVPCMP:      units.MilliVolts(61),
			isa.OpVPMAX:      units.MilliVolts(64),
			isa.OpVPADDQ:     units.MilliVolts(68),
		},
		BackgroundVariation:    units.MilliVolts(70),
		AgingGuardband:         units.MilliVolts(137),
		SpendableAgingFraction: 0.2,
		TempGuardband:          units.MilliVolts(35),
		IMULHardeningBonus:     units.MilliVolts(150),
	}
}

// NoVariation returns the model of a part without measurable instruction
// voltage variation — Kogler et al. found Intel 6th-generation CPUs behave
// this way (§3.1). Every instruction shares the background margin, the
// faultable set is empty, and SUIT's variation-derived offset collapses to
// zero: only the spendable aging fraction remains, which is exactly the
// §3.1 claim that SUIT's headroom comes from the variation.
func NoVariation() *Model {
	m := Default()
	m.VariationMargin = map[isa.Opcode]units.Volt{}
	m.IMULHardeningBonus = 0
	return m
}

// Validate checks the model.
func (m *Model) Validate() error {
	if m.BackgroundVariation <= 0 {
		return fmt.Errorf("guardband: background variation must be positive, got %v", m.BackgroundVariation)
	}
	if m.SpendableAgingFraction < 0 || m.SpendableAgingFraction > 1 {
		return fmt.Errorf("guardband: spendable aging fraction %v outside [0,1]", m.SpendableAgingFraction)
	}
	if m.AgingGuardband < 0 || m.TempGuardband < 0 || m.IMULHardeningBonus < 0 {
		return fmt.Errorf("guardband: negative guardband component")
	}
	for op, v := range m.VariationMargin {
		if v <= 0 {
			return fmt.Errorf("guardband: %v has non-positive margin %v", op, v)
		}
		if op != isa.OpIMUL && v >= m.BackgroundVariation {
			return fmt.Errorf("guardband: %v margin %v not below background variation %v — it would not be in the faultable set", op, v, m.BackgroundVariation)
		}
	}
	return nil
}

// Margin returns op's *certified* margin: how far below the conservative
// curve the vendor guarantees correctness over the whole service life —
// the margins the curve-determination procedure (EfficientOffset) reasons
// with. hardenedIMUL selects the SUIT CPU with the 4-cycle IMUL.
func (m *Model) Margin(op isa.Opcode, hardenedIMUL bool) units.Volt {
	margin, ok := m.VariationMargin[op]
	if !ok {
		margin = m.BackgroundVariation
	}
	if op == isa.OpIMUL && hardenedIMUL {
		margin += m.IMULHardeningBonus
	}
	return margin
}

// PhysicalMargin returns op's margin on the worst chip SUIT must still be
// safe on: a part near the end of its planned service life, which — per
// the §3.1 argument about limited data-center lifetimes and controlled
// temperatures — retains at least the spendable fraction of the aging
// guardband as real headroom on top of the certified margin.
func (m *Model) PhysicalMargin(op isa.Opcode, hardenedIMUL bool) units.Volt {
	return m.Margin(op, hardenedIMUL) + units.Volt(m.SpendableAgingFraction)*m.AgingGuardband
}

// Faults reports whether op computes incorrectly at the given offset below
// the conservative curve (offset is negative for undervolts), on the
// worst in-service chip. Executing exactly at the margin is still safe;
// any deeper faults.
func (m *Model) Faults(op isa.Opcode, offset units.Volt, hardenedIMUL bool) bool {
	return -offset > m.PhysicalMargin(op, hardenedIMUL)
}

// EfficientOffset runs the vendor curve-determination procedure (§3.5):
// with the disabled set excluded, the efficient curve can sit at the
// smallest margin of any remaining instruction; spending the allowed aging
// fraction deepens it further. The returned offset is negative.
// SUIT's evaluation uses disabled = the full faultable set with a hardened
// IMUL, which yields −70 mV (−97 mV with spendAging).
func (m *Model) EfficientOffset(disabled isa.DisableMask, hardenedIMUL, spendAging bool) units.Volt {
	minMargin := m.BackgroundVariation
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if op == isa.OpNop || disabled.Has(op) {
			continue
		}
		if mg := m.Margin(op, hardenedIMUL); mg < minMargin {
			minMargin = mg
		}
	}
	off := -minMargin
	if spendAging {
		off -= units.Volt(m.SpendableAgingFraction) * m.AgingGuardband
	}
	return off
}

// AgingDegradation returns the fractional propagation-delay increase after
// the given years of continuous operation at the given core temperature.
// Sub-20 nm FinFETs degrade ≈15 % over 10 years at >100 °C (§5.6); BTI
// degradation follows a power law in time (≈t^0.25) and accelerates
// exponentially with temperature.
func AgingDegradation(years float64, temp units.Celsius) float64 {
	if years <= 0 {
		return 0
	}
	const (
		refYears = 10.0
		refTemp  = 105.0 // °C reference for the 15 % figure
		full     = 0.15
	)
	timeFactor := math.Pow(years/refYears, 0.25)
	tempFactor := math.Exp((float64(temp) - refTemp) / 40)
	if tempFactor > 1 {
		tempFactor = 1 // the 15 % figure is already the hot worst case
	}
	return full * timeFactor * tempFactor
}

// AgingGuardbandFor computes the aging guardband a vendor must build into
// a DVFS curve, following §5.6's method: the voltage at the top frequency
// must support a 15 % higher frequency at age zero, priced with the curve's
// top-end voltage/frequency gradient. For the i9-9900K curve this yields
// 5 GHz · 15 % · 183 mV/GHz = 137 mV.
func AgingGuardbandFor(c dvfs.Curve) units.Volt {
	top := c.Top()
	//lint:allow units the §5.6 guardband prices frequency headroom into voltage via the curve gradient (V/Hz)
	return units.Volt(float64(top.F) * 0.15 * c.Gradient())
}

// TempPoint is one row of Table 3: the maximum safe undervolting offset
// measured at a core temperature.
type TempPoint struct {
	Temp      units.Celsius
	MaxOffset units.Volt // negative
}

// Table3 returns the paper's measured points on the i9-9900K.
func Table3() [2]TempPoint {
	return [2]TempPoint{
		{Temp: units.Celsius(50), MaxOffset: units.MilliVolts(-90)},
		{Temp: units.Celsius(88), MaxOffset: units.MilliVolts(-55)},
	}
}

// MaxUndervoltAt interpolates/extrapolates the maximum safe undervolt at a
// core temperature from the Table 3 measurements: higher temperature means
// less undervolting headroom.
func MaxUndervoltAt(temp units.Celsius) units.Volt {
	p := Table3()
	slope := float64(p[1].MaxOffset-p[0].MaxOffset) / float64(p[1].Temp-p[0].Temp)
	//lint:allow units the Table 3 interpolation multiplies a measured V/°C slope by a temperature delta
	return p[0].MaxOffset + units.Volt(slope*float64(temp-p[0].Temp))
}

// TempGuardbandFor returns the voltage difference in undervolting headroom
// between two core temperatures (35 mV between 50 °C and 88 °C in §5.7).
func TempGuardbandFor(cool, hot units.Celsius) units.Volt {
	return MaxUndervoltAt(cool) - MaxUndervoltAt(hot)
}

// HardenedIMULCurve returns the safe voltage curve for the 4-cycle IMUL:
// the Fig 13 "Modified IMUL" plot. Adding one pipeline stage to a 3-stage
// instruction adds 33 % timing slack, which converts to voltage headroom
// via the local voltage/frequency gradient of the vendor curve: the safe
// voltage at frequency f is the vendor voltage at f/1.33.
func HardenedIMULCurve(vendor dvfs.Curve) dvfs.Curve {
	out := dvfs.Curve{Name: vendor.Name + "+modified-IMUL"}
	for _, s := range vendor.States {
		equiv := units.Hertz(float64(s.F) / (4.0 / 3.0))
		v := vendor.VoltageAt(equiv)
		out.States = append(out.States, dvfs.PState{Ratio: s.Ratio, F: s.F, V: v})
	}
	return out
}
