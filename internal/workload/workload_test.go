package workload

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"suit/internal/isa"
)

func TestAllBenchmarksValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := SPEC()[0]
	mutations := []func(*Benchmark){
		func(b *Benchmark) { b.Name = "" },
		func(b *Benchmark) { b.IPC = 0 },
		func(b *Benchmark) { b.IMULFraction = -0.1 },
		func(b *Benchmark) { b.IMULFraction = 0.5 },
		func(b *Benchmark) { b.BurstEvery = -1 },
		func(b *Benchmark) { b.BurstLen = 0 },
		func(b *Benchmark) { b.BurstIntraGap = 0 },
		func(b *Benchmark) { b.NoSIMD = map[CPUFamily]float64{Intel: 0} },
	}
	for i, mut := range mutations {
		b := good
		mut(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	// SPEC CPU2017: 10 intrate + 13 fprate benchmarks.
	var nInt, nFP int
	for _, b := range SPEC() {
		switch b.Suite {
		case SPECint:
			nInt++
		case SPECfp:
			nFP++
		default:
			t.Errorf("%s has suite %v", b.Name, b.Suite)
		}
	}
	if nInt != 10 || nFP != 13 {
		t.Errorf("suite sizes int=%d fp=%d, want 10/13", nInt, nFP)
	}
	if len(All()) != 25 {
		t.Errorf("All() = %d workloads, want 25 (23 SPEC + nginx + VLC)", len(All()))
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate workload %s", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("557.xz")
	if !ok || b.Name != "557.xz" {
		t.Fatal("ByName(557.xz) failed")
	}
	if _, ok := ByName("999.nope"); ok {
		t.Error("ByName found a phantom workload")
	}
}

func TestIMULFractionsMatchPaper(t *testing.T) {
	// §6.1: 0.99 % of 525.x264's instructions are IMUL, 0.07 % on
	// average over all other benchmarks.
	x264, _ := ByName("525.x264")
	if math.Abs(x264.IMULFraction-0.0099) > 1e-9 {
		t.Errorf("x264 IMUL fraction = %v, want 0.0099", x264.IMULFraction)
	}
	var sum float64
	var n int
	for _, b := range SPEC() {
		if b.Name != "525.x264" {
			sum += b.IMULFraction
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 0.0004 || avg > 0.0010 {
		t.Errorf("average IMUL fraction of others = %v, want ≈0.0007", avg)
	}
}

func TestTable4MeasuredValues(t *testing.T) {
	// The six benchmarks Table 4 reports explicitly.
	cases := []struct {
		name       string
		intel, amd float64
	}{
		{"508.namd", -0.22, -0.35},
		{"521.wrf", -0.014, -0.053},
		{"538.imagick", -0.12, -0.09},
		{"554.roms", -0.033, -0.19},
		{"525.x264", 0.07, 0.22},
		{"548.exchange2", 0.077, 0.068},
	}
	for _, c := range cases {
		b, ok := ByName(c.name)
		if !ok {
			t.Fatalf("%s missing", c.name)
		}
		if math.Abs(b.NoSIMD[Intel]-c.intel) > 1e-9 {
			t.Errorf("%s Intel noSIMD = %v, want %v", c.name, b.NoSIMD[Intel], c.intel)
		}
		if math.Abs(b.NoSIMD[AMD]-c.amd) > 1e-9 {
			t.Errorf("%s AMD noSIMD = %v, want %v", c.name, b.NoSIMD[AMD], c.amd)
		}
	}
}

func TestTable4SuiteMeans(t *testing.T) {
	// Table 4 suite rows: i9 fprate −4.1 %, intrate +0.5 %;
	// 7700X fprate −5.9 %, intrate +2.6 %.
	cases := []struct {
		suite Suite
		fam   CPUFamily
		want  float64
	}{
		{SPECfp, Intel, -0.041},
		{SPECint, Intel, +0.005},
		{SPECfp, AMD, -0.059},
		{SPECint, AMD, +0.026},
	}
	for _, c := range cases {
		got := SuiteMeanNoSIMD(c.suite, c.fam)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("%v/%v mean = %.4f, want %.4f", c.suite, c.fam, got, c.want)
		}
	}
	if SuiteMeanNoSIMD(Network, Intel) != 0 {
		t.Error("network suite mean over SPEC() must be 0 (no members)")
	}
}

func TestTraceSpecGeneratesBurstyNetworkTraces(t *testing.T) {
	for _, b := range []Benchmark{Nginx(), VLC()} {
		tr, err := b.GenerateTrace(50_000_000, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(tr.Events) == 0 {
			t.Fatalf("%s trace empty", b.Name)
		}
		// AES must dominate (§5.1: encryption bursts).
		byOp := tr.CountByOpcode()
		if byOp[isa.OpAESENC] == 0 {
			t.Errorf("%s has no AESENC events", b.Name)
		}
		// Network traces are dense: nginx ≈1.3 % of instructions.
		density := tr.Density()
		if b.Name == "nginx" && (density < 0.004 || density > 0.05) {
			t.Errorf("nginx density = %v, want ≈0.013", density)
		}
	}
}

func TestTraceSpecSPECDensities(t *testing.T) {
	// Sparse benchmarks (557.xz) vs dense ones (520.omnetpp) must differ
	// by orders of magnitude.
	xz, _ := ByName("557.xz")
	omnet, _ := ByName("520.omnetpp")
	txz, err := xz.GenerateTrace(500_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	tom, err := omnet.GenerateTrace(500_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if txz.Density()*20 > tom.Density() {
		t.Errorf("xz density %v not ≪ omnetpp density %v", txz.Density(), tom.Density())
	}
}

func TestMixSumsToOne(t *testing.T) {
	for _, b := range All() {
		mix := b.Mix()
		var sum float64
		for op, f := range mix {
			if f < 0 {
				t.Errorf("%s mix[%v] negative", b.Name, op)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s mix sums to %v", b.Name, sum)
		}
		if mix[isa.OpIMUL] != b.IMULFraction {
			t.Errorf("%s mix IMUL = %v, want %v", b.Name, mix[isa.OpIMUL], b.IMULFraction)
		}
	}
}

func TestSuiteAndFamilyStrings(t *testing.T) {
	if SPECint.String() != "SPECint" || SPECfp.String() != "SPECfp" || Network.String() != "network" {
		t.Error("suite strings wrong")
	}
	if !strings.Contains(Suite(9).String(), "9") {
		t.Error("unknown suite string wrong")
	}
	if Intel.String() != "i9-9900K" || AMD.String() != "7700X" {
		t.Error("family strings wrong")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	b, _ := ByName("502.gcc")
	a1, err := b.GenerateTrace(100_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.GenerateTrace(100_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Events) != len(a2.Events) {
		t.Fatal("trace generation not deterministic")
	}
	for i := range a1.Events {
		if a1.Events[i] != a2.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestBenchmarkJSONRoundTrip(t *testing.T) {
	for _, b := range All() {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var back Benchmark
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !reflect.DeepEqual(b, back) {
			t.Errorf("%s round trip mismatch:\n in  %+v\n out %+v", b.Name, b, back)
		}
	}
}

func TestBenchmarkJSONDefaults(t *testing.T) {
	var b Benchmark
	err := json.Unmarshal([]byte(`{"name":"custom","ipc":1.5,"poissonGap":5000,"diffuseOp":"VAND"}`), &b)
	if err != nil {
		t.Fatal(err)
	}
	if b.Suite != Network {
		t.Errorf("default suite = %v", b.Suite)
	}
	if b.NoSIMD[Intel] != 0 || b.NoSIMD[AMD] != 0 {
		t.Error("missing noSIMD not defaulted to zero")
	}
	if b.DiffuseOp != isa.OpVAND {
		t.Errorf("diffuse op = %v", b.DiffuseOp)
	}
}

func TestBenchmarkJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"name":"x","ipc":0}`,                               // invalid IPC
		`{"name":"x","ipc":1,"suite":"bogus"}`,               // unknown suite
		`{"name":"x","ipc":1,"burstOp":"FROB"}`,              // unknown opcode
		`{"name":"x","ipc":1,"noSIMD":{"sparc":0.1}}`,        // unknown family
		`{"name":"x","ipc":1,"burstEvery":100,"burstLen":0}`, // incomplete burst
	}
	for _, c := range cases {
		var b Benchmark
		if err := json.Unmarshal([]byte(c), &b); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}
