package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"suit/internal/core"
	"suit/internal/engine"
)

// Config sizes the dispatcher. The zero value of every field means "use
// the default"; the defaults suit a LAN of workers polling a daemon.
type Config struct {
	// LeaseTTL is how long a claimed unit may go without a heartbeat
	// before it is reassigned. Default 3s.
	LeaseTTL time.Duration
	// RemoteAttempts bounds how many leases a unit may burn (expiry,
	// error result, bad digest each count one) before the dispatcher
	// gives up on remote execution and the unit falls back to the local
	// engine. Default 3.
	RemoteAttempts int
	// RetryBackoff is the base delay before a failed unit re-enters the
	// pending queue, grown and jittered by the engine's deterministic
	// fingerprint-derived schedule (engine.RetryDelay). Default 100ms.
	RetryBackoff time.Duration
	// QuarantineAfter is how many consecutive lease failures a worker
	// may accumulate before its claims are refused for QuarantineFor.
	// Default 3; QuarantineFor default 30s.
	QuarantineAfter int
	QuarantineFor   time.Duration
	// TripAfter is how many consecutive remote failures (across all
	// workers) trip the dispatcher's circuit breaker: for TripFor no new
	// units are offered remotely and everything runs locally. Default 8;
	// TripFor default 10s.
	TripAfter int
	TripFor   time.Duration
	// LiveWindow is how recently a worker must have polled to count as
	// live; with zero live workers Execute declines immediately instead
	// of parking units nobody will claim, and a unit already offered is
	// pulled back to local execution if every worker goes silent
	// mid-wait. Default 4×LeaseTTL.
	LiveWindow time.Duration
	// WorkerToken, when non-empty, requires every /v1/work request to
	// carry "Authorization: Bearer <token>". The result digest only
	// proves transport integrity — any client that can reach the
	// endpoints could otherwise post forged outcomes with a matching
	// self-computed digest — so set a token whenever the daemon is
	// reachable beyond the worker fleet's trust boundary. Default ""
	// (open: trust everyone who can connect).
	WorkerToken string
	// RemoteOnly forbids the local fallback: Execute waits for workers
	// instead of declining, and a unit that exhausts its remote attempts
	// fails the job instead of running locally. For fleets where the
	// daemon host must not simulate. Default false — and the default is
	// what makes every other failure mode safe.
	RemoteOnly bool

	// nowFn overrides the wall clock in tests.
	nowFn func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.RemoteAttempts <= 0 {
		c.RemoteAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = 30 * time.Second
	}
	if c.TripAfter <= 0 {
		c.TripAfter = 8
	}
	if c.TripFor <= 0 {
		c.TripFor = 10 * time.Second
	}
	if c.LiveWindow <= 0 {
		c.LiveWindow = 4 * c.LeaseTTL
	}
	return c
}

func (c Config) now() time.Time {
	if c.nowFn != nil {
		return c.nowFn()
	}
	// The clock only drives lease deadlines, quarantine windows and
	// liveness — pure scheduling. Results are content-addressed and
	// byte-identical regardless of when, where or how often a unit runs.
	return time.Now() //lint:allow determinism lease/quarantine/liveness timing is scheduling-only; unit results are content-addressed and cannot depend on it
}

// Errors a result post can fail with; the HTTP layer maps them to
// status codes.
var (
	// ErrGone: the lease is unknown and the fingerprint is not a
	// recently completed unit — expired and reassigned, or abandoned.
	ErrGone = errors.New("dist: lease gone")
	// ErrBadDigest: the result bytes do not match their digest (a torn
	// or garbled body). The lease fails and the unit is reassigned.
	ErrBadDigest = errors.New("dist: result digest mismatch")
	// ErrConflict: a duplicate delivery carried a different result than
	// the one recorded for the fingerprint — a determinism violation.
	// Counted and rejected; the recorded result stands.
	ErrConflict = errors.New("dist: conflicting duplicate result")
	// ErrMismatch: the result names a different fingerprint than its
	// lease — a misrouted or corrupted report.
	ErrMismatch = errors.New("dist: result fingerprint does not match lease")
)

// errExhausted completes a unit whose remote attempts are spent; under
// the default config the caller falls back to local execution.
var errExhausted = errors.New("dist: remote attempts exhausted")

// Stats is a snapshot of the dispatcher's accounting: counters since
// creation plus point-in-time gauges.
type Stats struct {
	// Offered counts units entered into the remote queue; Completed
	// counts those that came back verified from a worker.
	Offered   int64
	Completed int64
	// LocalFallbacks counts Execute calls that declined remote execution
	// (no live workers, tripped breaker, exhausted attempts, unencodable
	// scenario) and handed the unit back to the local engine.
	LocalFallbacks int64
	// NoWorkerAbandons counts the subset of LocalFallbacks where a unit
	// already offered remotely was pulled back because every worker went
	// silent mid-wait — the whole-fleet-crash path.
	NoWorkerAbandons int64
	// Leases/Expired/Reassigned/Exhausted trace the lease lifecycle;
	// ErrorResults counts worker-reported failures (fingerprint
	// mismatch, failed simulation).
	Leases       int64
	Expired      int64
	Reassigned   int64
	Exhausted    int64
	ErrorResults int64
	// Duplicates counts at-least-once re-deliveries that verified
	// against the recorded digest; Conflicts counts re-deliveries that
	// did not (a determinism violation — always 0 in a healthy fleet).
	// BadDigests counts torn/garbled bodies; Orphans counts results for
	// leases nobody remembers.
	Duplicates int64
	Conflicts  int64
	BadDigests int64
	Orphans    int64
	// WorkerFailures/Quarantines/QuarantineRefusals and Trips count the
	// two circuit breakers.
	WorkerFailures     int64
	Quarantines        int64
	QuarantineRefusals int64
	Trips              int64
	// Gauges.
	PendingUnits       int
	LeasedUnits        int
	LiveWorkers        int
	QuarantinedWorkers int
	Tripped            bool
}

type unit struct {
	key       string
	wire      WorkUnit
	attempts  int
	notBefore time.Time
	res       core.Outcome
	err       error
	done      chan struct{}
}

type lease struct {
	id       string
	seq      uint64 // creation order; expiry processes leases by it
	u        *unit
	worker   string
	deadline time.Time
}

type workerState struct {
	lastSeen         time.Time
	consecFailures   int
	quarantinedUntil time.Time
}

// Dispatcher is the daemon side of the distributed tier: it queues
// fingerprint-addressed units, leases them to polling workers, verifies
// and dedups results, and degrades to local execution whenever the
// remote tier cannot be trusted to make progress.
type Dispatcher struct {
	cfg Config

	mu        sync.Mutex
	units     map[string]*unit // live units by fingerprint
	pending   []*unit          // claim order; reassignments append
	leases    map[string]*lease
	workers   map[string]*workerState
	completed map[string]string // fingerprint → result digest, for dedup
	compOrder []string          // completed eviction order (FIFO)
	seq       uint64            // lease ID sequence
	consec    int               // consecutive remote failures (breaker input)
	tripUntil time.Time
	closed    bool
	stats     Stats

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
}

// completedKeep bounds the duplicate-detection window: digests of the
// most recent completions kept for verify-and-dedup of late deliveries.
const completedKeep = 4096

// NewDispatcher builds a dispatcher and starts its lease janitor. Call
// Close to stop it.
func NewDispatcher(cfg Config) *Dispatcher {
	d := &Dispatcher{
		cfg:         cfg.withDefaults(),
		units:       make(map[string]*unit),
		leases:      make(map[string]*lease),
		workers:     make(map[string]*workerState),
		completed:   make(map[string]string),
		janitorStop: make(chan struct{}),
	}
	interval := d.cfg.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	d.janitorWG.Add(1)
	go d.janitor(interval)
	return d
}

// Close stops the janitor and fails every queued unit so their Execute
// callers return (to the local engine, under the default config).
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.janitorWG.Wait()
		return
	}
	d.closed = true
	for _, u := range d.units {
		u.err = errors.New("dist: dispatcher closed")
		close(u.done)
	}
	d.units = make(map[string]*unit)
	d.pending = nil
	d.leases = make(map[string]*lease)
	close(d.janitorStop)
	d.mu.Unlock()
	d.janitorWG.Wait()
}

// Stats snapshots the accounting.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.now()
	st := d.stats
	st.PendingUnits = len(d.pending)
	st.LeasedUnits = len(d.leases)
	for _, w := range d.workers {
		if now.Before(w.quarantinedUntil) {
			st.QuarantinedWorkers++
		} else if now.Sub(w.lastSeen) <= d.cfg.LiveWindow {
			st.LiveWorkers++
		}
	}
	st.Tripped = now.Before(d.tripUntil)
	return st
}

// Tripped reports whether the circuit breaker is open right now — the
// readiness signal for a remote-only daemon.
func (d *Dispatcher) Tripped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.now().Before(d.tripUntil)
}

// Execute is the engine's RemoteFunc: offer one job to the worker tier
// and wait for its digest-verified result. It declines — handled=false,
// sending the engine down its local path — whenever remote execution
// cannot make progress: no live workers, breaker tripped, dispatcher
// closed, scenario not wire-able, or remote attempts exhausted. Under
// RemoteOnly it instead waits for workers and surfaces remote
// exhaustion as a real error.
func (d *Dispatcher) Execute(ctx context.Context, sc core.Scenario, key string, seed uint64) (core.Outcome, bool, error) {
	var zero core.Outcome
	wire, err := EncodeScenario(sc)
	if err != nil {
		// Not expressible on the wire (ad-hoc benchmark, foreign chip):
		// permanently a local job, never an error.
		d.mu.Lock()
		d.stats.LocalFallbacks++
		d.mu.Unlock()
		return zero, false, nil
	}
	u := &unit{key: key, wire: WorkUnit{Fingerprint: key, Seed: seed, Scenario: wire}, done: make(chan struct{})}
	for {
		d.mu.Lock()
		now := d.cfg.now()
		if d.closed {
			d.mu.Unlock()
			if d.cfg.RemoteOnly {
				return zero, true, errors.New("dist: dispatcher closed")
			}
			return zero, false, nil
		}
		if d.eligibleLocked(now) {
			if _, dup := d.units[key]; dup {
				// The engine's single-flight layer makes concurrent offers
				// of one fingerprint impossible; if it ever happens, local
				// execution is always byte-identical and always safe.
				d.stats.LocalFallbacks++
				d.mu.Unlock()
				return zero, false, nil
			}
			d.units[key] = u
			d.pending = append(d.pending, u)
			d.stats.Offered++
			d.mu.Unlock()
			break
		}
		d.mu.Unlock()
		if !d.cfg.RemoteOnly {
			d.mu.Lock()
			d.stats.LocalFallbacks++
			d.mu.Unlock()
			return zero, false, nil
		}
		if !sleepCtx(ctx, 50*time.Millisecond) {
			return zero, true, ctx.Err()
		}
	}

	// Wait for the result — but keep watching worker liveness. Liveness
	// was checked at offer time only; if the last worker crashes while
	// the unit is queued (or after its lease expires), nothing will ever
	// claim it again and no lease failure fires to exhaust its attempt
	// budget. Without the recheck the wait would be unbounded — the
	// remote offer runs before the engine's per-attempt JobTimeout
	// watchdog, so nothing else caps it. Under the default config a dead
	// fleet hands the unit back to local execution; under RemoteOnly the
	// wait-for-workers contract holds and only ctx bounds it.
	recheck := d.cfg.LiveWindow / 4
	if recheck < 10*time.Millisecond {
		recheck = 10 * time.Millisecond
	}
	tick := time.NewTicker(recheck) //lint:allow determinism liveness recheck pacing for a parked offer — scheduling only, results are content-addressed
	defer tick.Stop()
	for {
		select {
		case <-u.done:
			if u.err != nil {
				if d.cfg.RemoteOnly {
					return zero, true, u.err
				}
				d.mu.Lock()
				d.stats.LocalFallbacks++
				d.mu.Unlock()
				return zero, false, nil
			}
			return u.res, true, nil
		case <-ctx.Done():
			d.abandon(u)
			return zero, true, ctx.Err()
		case <-tick.C:
			if d.cfg.RemoteOnly {
				continue
			}
			d.mu.Lock()
			// units[key] == u rules out completion (results land under
			// this lock); a silent fleet means no claim can ever come.
			if d.units[u.key] == u && !d.hasLiveWorkerLocked(d.cfg.now()) {
				d.abandonLocked(u)
				d.stats.NoWorkerAbandons++
				d.stats.LocalFallbacks++
				d.mu.Unlock()
				return zero, false, nil
			}
			d.mu.Unlock()
		}
	}
}

// eligibleLocked: can a unit be offered remotely right now? Clears an
// expired trip as a side effect (the breaker's half-open transition).
func (d *Dispatcher) eligibleLocked(now time.Time) bool {
	if !d.tripUntil.IsZero() && !now.Before(d.tripUntil) {
		d.tripUntil = time.Time{}
		d.consec = 0
	}
	if now.Before(d.tripUntil) {
		return false
	}
	return d.hasLiveWorkerLocked(now)
}

// hasLiveWorkerLocked: has any non-quarantined worker polled within the
// liveness window? When false, nothing will ever claim a pending unit —
// the signal Execute's wait loop uses to stop parking work nobody can
// take. (A worker with a lease in flight keeps itself live through its
// heartbeats.)
func (d *Dispatcher) hasLiveWorkerLocked(now time.Time) bool {
	for _, w := range d.workers {
		if now.Before(w.quarantinedUntil) {
			continue
		}
		if now.Sub(w.lastSeen) <= d.cfg.LiveWindow {
			return true
		}
	}
	return false
}

// abandon forgets a unit whose Execute caller gave up (context
// cancelled): it leaves the queue, and any in-flight lease for it dies
// — a late result reads as gone.
func (d *Dispatcher) abandon(u *unit) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.abandonLocked(u)
}

func (d *Dispatcher) abandonLocked(u *unit) {
	if d.units[u.key] == u {
		delete(d.units, u.key)
	}
	for i, p := range d.pending {
		if p == u {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			break
		}
	}
	for id, l := range d.leases {
		if l.u == u {
			delete(d.leases, id)
		}
	}
}

// Claim hands the next ready unit to a worker under a fresh lease. A
// claim — successful or empty — also registers the worker as live.
// ok=false means no work (or the worker is quarantined): poll again
// after a short interval.
func (d *Dispatcher) Claim(workerID string) (Grant, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return Grant{}, false
	}
	now := d.cfg.now()
	w := d.workers[workerID]
	if w == nil {
		w = &workerState{}
		d.workers[workerID] = w
	}
	w.lastSeen = now
	if now.Before(w.quarantinedUntil) {
		d.stats.QuarantineRefusals++
		return Grant{}, false
	}
	for i, u := range d.pending {
		if u.notBefore.After(now) {
			continue
		}
		d.pending = append(d.pending[:i], d.pending[i+1:]...)
		u.attempts++
		d.seq++
		id := fmt.Sprintf("l%08d-%s", d.seq, shortKey(u.key))
		d.leases[id] = &lease{id: id, seq: d.seq, u: u, worker: workerID, deadline: now.Add(d.cfg.LeaseTTL)}
		d.stats.Leases++
		return Grant{LeaseID: id, TTLMillis: d.cfg.LeaseTTL.Milliseconds(), Unit: u.wire}, true
	}
	return Grant{}, false
}

// Heartbeat extends a lease. ok=false tells the worker the lease is
// gone (expired and reassigned, or the job was abandoned): it should
// stop computing the unit.
func (d *Dispatcher) Heartbeat(leaseID string) (ttl time.Duration, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, found := d.leases[leaseID]
	if !found {
		return 0, false
	}
	now := d.cfg.now()
	l.deadline = now.Add(d.cfg.LeaseTTL)
	if w := d.workers[l.worker]; w != nil {
		w.lastSeen = now
	}
	return d.cfg.LeaseTTL, true
}

// Result resolves a worker's report. Success paths return the ack
// status ("accepted" for a live lease, "duplicate" for a verified
// at-least-once re-delivery, "retrying" when the worker reported an
// error and the unit will be reassigned); failure paths return ErrGone,
// ErrBadDigest, ErrConflict or ErrMismatch.
func (d *Dispatcher) Result(leaseID string, msg ResultMsg) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.now()
	l, found := d.leases[leaseID]
	if !found {
		// At-least-once duplicate? A unit completed under another lease
		// (ours expired, or a torn 500 made the worker resend) re-delivers
		// here: verify against the recorded digest and dedup.
		if dig, done := d.completed[msg.Fingerprint]; done && msg.Error == "" {
			if msg.Digest == dig && ResultDigest(msg.Fingerprint, msg.Outcome) == dig {
				d.stats.Duplicates++
				return "duplicate", nil
			}
			d.stats.Conflicts++
			return "", fmt.Errorf("%w: fingerprint %s", ErrConflict, shortKey(msg.Fingerprint))
		}
		d.stats.Orphans++
		return "", ErrGone
	}
	delete(d.leases, leaseID)
	u := l.u
	if w := d.workers[l.worker]; w != nil {
		w.lastSeen = now
	}
	if msg.Error != "" {
		d.stats.ErrorResults++
		d.failLeaseLocked(l, now, "worker reported: "+msg.Error)
		return "retrying", nil
	}
	if msg.Fingerprint != u.key {
		d.failLeaseLocked(l, now, "fingerprint mismatch")
		return "", ErrMismatch
	}
	if ResultDigest(msg.Fingerprint, msg.Outcome) != msg.Digest {
		d.stats.BadDigests++
		d.failLeaseLocked(l, now, "digest mismatch")
		return "", ErrBadDigest
	}
	var out core.Outcome
	if err := json.Unmarshal(msg.Outcome, &out); err != nil {
		d.stats.BadDigests++
		d.failLeaseLocked(l, now, "undecodable outcome")
		return "", fmt.Errorf("%w: outcome: %v", ErrBadDigest, err)
	}
	// Verified result: complete the unit, record the digest for
	// duplicate verification, and reset both breakers' failure streaks.
	delete(d.units, u.key)
	d.recordCompletedLocked(u.key, msg.Digest)
	if w := d.workers[l.worker]; w != nil {
		w.consecFailures = 0
	}
	d.consec = 0
	d.stats.Completed++
	u.res, u.err = out, nil
	close(u.done)
	return "accepted", nil
}

// failLeaseLocked charges one lease failure: the worker's quarantine
// counter, the dispatcher's trip counter, and the unit's attempt budget
// — reassigning it with deterministic fingerprint-derived backoff, or
// completing it with errExhausted when the budget is spent.
func (d *Dispatcher) failLeaseLocked(l *lease, now time.Time, reason string) {
	d.stats.WorkerFailures++
	if w := d.workers[l.worker]; w != nil {
		w.consecFailures++
		if w.consecFailures >= d.cfg.QuarantineAfter {
			w.quarantinedUntil = now.Add(d.cfg.QuarantineFor)
			w.consecFailures = 0
			d.stats.Quarantines++
		}
	}
	d.consec++
	if d.consec >= d.cfg.TripAfter && !now.Before(d.tripUntil) {
		d.tripUntil = now.Add(d.cfg.TripFor)
		d.stats.Trips++
	}

	u := l.u
	if d.units[u.key] != u {
		return // abandoned while leased; nothing to requeue
	}
	if u.attempts >= d.cfg.RemoteAttempts {
		delete(d.units, u.key)
		d.stats.Exhausted++
		u.err = fmt.Errorf("%w after %d leases (%s)", errExhausted, u.attempts, reason)
		close(u.done)
		return
	}
	u.notBefore = now.Add(engine.RetryDelay(d.cfg.RetryBackoff, u.key, u.attempts-1))
	d.pending = append(d.pending, u)
	d.stats.Reassigned++
}

// recordCompletedLocked remembers a completed fingerprint's digest for
// the duplicate-verification window, evicting FIFO beyond the cap.
func (d *Dispatcher) recordCompletedLocked(key, digest string) {
	if _, ok := d.completed[key]; !ok {
		d.compOrder = append(d.compOrder, key)
		if len(d.compOrder) > completedKeep {
			delete(d.completed, d.compOrder[0])
			d.compOrder = d.compOrder[1:]
		}
	}
	d.completed[key] = digest
}

// janitor expires leases whose heartbeat lapsed.
func (d *Dispatcher) janitor(interval time.Duration) {
	defer d.janitorWG.Done()
	t := time.NewTicker(interval) //lint:allow determinism the janitor paces lease-expiry sweeps — reassignment scheduling only, results are content-addressed
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.expireLeases()
		case <-d.janitorStop:
			return
		}
	}
}

// expireLeases fails every lease past its deadline, in lease-creation
// order (the numeric sequence stamped on the lease) so reassignment
// order is a deterministic function of the expiry set, not of map
// iteration. It also forgets workers gone long past the liveness
// window: suitworker IDs embed the PID, so without pruning every
// restart would grow the map forever.
func (d *Dispatcher) expireLeases() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.now()
	var expired []*lease
	for _, l := range d.leases {
		if now.After(l.deadline) {
			expired = append(expired, l)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].seq < expired[j].seq })
	for _, l := range expired {
		delete(d.leases, l.id)
		d.stats.Expired++
		d.failLeaseLocked(l, now, "lease expired without heartbeat")
	}
	for id, w := range d.workers {
		if now.Sub(w.lastSeen) > workerForgetAfter*d.cfg.LiveWindow && !now.Before(w.quarantinedUntil) {
			delete(d.workers, id)
		}
	}
}

// workerForgetAfter, in LiveWindow multiples, is how long a silent
// worker's state is kept before the janitor forgets it. Long enough
// that a partitioned worker usually finds its failure history waiting
// when it returns; a quarantined worker is never forgotten early.
const workerForgetAfter = 4

// sleepCtx pauses for d, returning false if ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d) //lint:allow determinism poll/backoff pacing for remote-only waits; unit results are content-addressed and timing-independent
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
