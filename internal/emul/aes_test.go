package emul

import (
	"bytes"
	"crypto/aes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSboxCTMatchesTable(t *testing.T) {
	for x := 0; x < 256; x++ {
		got := sboxCT(byte(x))
		want := sboxTable[x]
		if got != want {
			t.Errorf("sboxCT(%#02x) = %#02x, want %#02x", x, got, want)
		}
	}
}

func TestGmulProperties(t *testing.T) {
	// Identity, zero, commutativity, distributivity over a sample.
	for a := 0; a < 256; a += 7 {
		if gmul(byte(a), 1) != byte(a) {
			t.Errorf("gmul(%d,1) != %d", a, a)
		}
		if gmul(byte(a), 0) != 0 {
			t.Errorf("gmul(%d,0) != 0", a)
		}
		for b := 0; b < 256; b += 11 {
			if gmul(byte(a), byte(b)) != gmul(byte(b), byte(a)) {
				t.Errorf("gmul not commutative at %d,%d", a, b)
			}
			for c := 0; c < 256; c += 37 {
				left := gmul(byte(a), byte(b)^byte(c))
				right := gmul(byte(a), byte(b)) ^ gmul(byte(a), byte(c))
				if left != right {
					t.Errorf("gmul not distributive at %d,%d,%d", a, b, c)
				}
			}
		}
	}
	// xtime is gmul by 2.
	for a := 0; a < 256; a++ {
		if xtime(byte(a)) != gmul(byte(a), 2) {
			t.Errorf("xtime(%d) != gmul(%d,2)", a, a)
		}
	}
}

func TestGF256InverseProperty(t *testing.T) {
	// sboxCT's core is x^254 = x⁻¹; check gmul(x, x^254) == 1 for x ≠ 0
	// indirectly: the affine transform is a bijection, so instead verify
	// the S-box is a bijection (it is iff the inversion is correct).
	var seen [256]bool
	for x := 0; x < 256; x++ {
		s := sboxCT(byte(x))
		if seen[s] {
			t.Fatalf("sboxCT not a bijection: duplicate output %#02x", s)
		}
		seen[s] = true
	}
}

func TestAESENCMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		state := Vec128{rng.Uint64(), rng.Uint64()}
		key := Vec128{rng.Uint64(), rng.Uint64()}
		got := AESENC(state, key)
		want := aesencRef(state, key)
		if got != want {
			t.Fatalf("AESENC(%v, %v) = %v, want %v", state, key, got, want)
		}
	}
}

func TestEncryptAES128AgainstFIPS197(t *testing.T) {
	// FIPS-197 Appendix B vector.
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	plain := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	got := EncryptAES128(key, plain)
	if got != want {
		t.Fatalf("EncryptAES128 = %x, want %x", got, want)
	}
}

func TestEncryptAES128AgainstStdlib(t *testing.T) {
	prop := func(key, block [16]byte) bool {
		c, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		c.Encrypt(want, block[:])
		got := EncryptAES128(key, block)
		return bytes.Equal(got[:], want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAESENCLASTDiffersFromAESENC(t *testing.T) {
	state := Vec128{0x0123456789abcdef, 0xfedcba9876543210}
	key := Vec128{0x1111111111111111, 0x2222222222222222}
	if AESENC(state, key) == AESENCLAST(state, key) {
		t.Error("AESENC and AESENCLAST agree; MixColumns is missing")
	}
}

func TestShiftRowsStructure(t *testing.T) {
	// Row 0 is unchanged; row r moves column c+r → c.
	var in [16]byte
	for i := range in {
		in[i] = byte(i)
	}
	out := shiftRows(in)
	// Row 0 (bytes 0,4,8,12) unchanged.
	for c := 0; c < 4; c++ {
		if out[4*c] != in[4*c] {
			t.Errorf("row 0 changed at col %d", c)
		}
	}
	// Row 1: out[4c+1] = in[4(c+1 mod 4)+1].
	for c := 0; c < 4; c++ {
		want := in[4*((c+1)%4)+1]
		if out[4*c+1] != want {
			t.Errorf("row 1 col %d = %d, want %d", c, out[4*c+1], want)
		}
	}
}

func TestMixColumnsKnownVector(t *testing.T) {
	// FIPS-197 example column: db 13 53 45 → 8e 4d a1 bc.
	in := [16]byte{0xdb, 0x13, 0x53, 0x45}
	out := mixColumns(in)
	want := [4]byte{0x8e, 0x4d, 0xa1, 0xbc}
	for i := 0; i < 4; i++ {
		if out[i] != want[i] {
			t.Errorf("mixColumns[%d] = %#02x, want %#02x", i, out[i], want[i])
		}
	}
}

func TestExpandKeyFirstAndLastRound(t *testing.T) {
	// FIPS-197 Appendix A: round 10 key for the sample key.
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	rk := ExpandKeyAES128(key)
	if rk[0] != FromBytes(key) {
		t.Error("round key 0 must be the cipher key")
	}
	want10 := [16]byte{0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6}
	if rk[10] != FromBytes(want10) {
		t.Errorf("round key 10 = %x, want %x", rk[10].Bytes(), want10)
	}
}
