package trace

import (
	"bytes"
	"reflect"
	"testing"

	"suit/internal/isa"
)

// FuzzReadBinary hardens the trace decoder against corrupted inputs: it
// must either reject the bytes or produce a trace that passes Validate
// and survives a re-encode round trip.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	valid := &Trace{
		Name: "seed", Total: 100_000, IPC: 1.5,
		Events: []Event{{10, isa.OpAESENC}, {5000, isa.OpVOR}},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SUITTRC1"))
	f.Add([]byte("SUITTRC1\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; crashing is not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatal("re-encode round trip not stable")
		}
	})
}

// FuzzTraceJSON does the same for the JSON codec.
func FuzzTraceJSON(f *testing.F) {
	f.Add([]byte(`{"name":"x","total":10,"ipc":1,"events":[{"i":1,"op":"VOR"}]}`))
	f.Add([]byte(`{"name":"","total":0,"ipc":0,"events":[]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if err := tr.UnmarshalJSON(data); err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("JSON decoder accepted an invalid trace: %v", err)
		}
	})
}
