package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"suit/internal/core"
	"suit/internal/engine"
)

// WorkerConfig configures a pull-based worker. Only BaseURL and ID are
// required; the zero value of every other field means "use the
// default".
type WorkerConfig struct {
	// BaseURL of the suitd daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ID names this worker to the dispatcher (quarantine is per-ID).
	ID string
	// Token is sent as "Authorization: Bearer <token>" on every request;
	// required when the daemon runs with a worker token, ignored by an
	// open daemon. Default "".
	Token string
	// Slots is how many units run concurrently. Default 1.
	Slots int
	// PollInterval is the pause after an empty claim. Default 250ms.
	PollInterval time.Duration
	// ResultAttempts bounds result-post retries on transport and 5xx
	// failures (a 4xx is final). Default 4.
	ResultAttempts int
	// RetryBackoff is the base of the deterministic fingerprint-derived
	// backoff between result-post retries. Default 100ms.
	RetryBackoff time.Duration
	// Client overrides the HTTP client — the chaos tests inject a
	// fault-laden transport here. Default: http.Client with a 30s
	// timeout.
	Client *http.Client

	// runFn overrides the simulation in tests. Default core.RunJob.
	runFn func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.ResultAttempts <= 0 {
		c.ResultAttempts = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.runFn == nil {
		c.runFn = core.RunJob
	}
	return c
}

// WorkerStats counts one worker's lifetime activity.
type WorkerStats struct {
	Claims        int64 // granted leases
	EmptyPolls    int64 // 204 responses
	Completed     int64 // accepted or deduped results
	Errors        int64 // error results posted (mismatch, failed run)
	LeaseLost     int64 // heartbeats answered 410 (run cancelled)
	PostFailures  int64 // result posts that failed an attempt
	ClaimFailures int64 // claim requests that failed in transport
}

// Worker pulls leased work units from a suitd dispatcher, executes them
// through the same deterministic simulation a local run would use, and
// posts digest-protected results back. It is crash-safe by design: a
// worker killed mid-unit simply stops heartbeating and the dispatcher
// reassigns the lease; a worker that delivers twice is deduped by
// digest. Everything it computes is a pure function of the work unit,
// so any number of workers — or none — produce byte-identical stores.
type Worker struct {
	cfg WorkerConfig

	mu    sync.Mutex
	stats WorkerStats
}

// NewWorker builds a worker; call Run to start it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("dist: worker needs a BaseURL")
	}
	if cfg.ID == "" {
		return nil, errors.New("dist: worker needs an ID")
	}
	return &Worker{cfg: cfg.withDefaults()}, nil
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Run polls, executes and reports until ctx is cancelled, then drains
// its slots and returns ctx's error.
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slotLoop(ctx, slot)
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}

func (w *Worker) slotLoop(ctx context.Context, slot int) {
	for ctx.Err() == nil {
		grant, ok, err := w.claim(ctx)
		if err != nil {
			w.count(func(s *WorkerStats) { s.ClaimFailures++ })
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return
			}
			continue
		}
		if !ok {
			w.count(func(s *WorkerStats) { s.EmptyPolls++ })
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return
			}
			continue
		}
		w.count(func(s *WorkerStats) { s.Claims++ })
		w.execute(ctx, grant)
	}
}

// claim asks for one unit. ok=false with a nil error is an empty poll.
func (w *Worker) claim(ctx context.Context) (Grant, bool, error) {
	body, _ := json.Marshal(ClaimRequest{WorkerID: w.cfg.ID})
	resp, err := w.post(ctx, w.cfg.BaseURL+"/v1/work/claim", body)
	if err != nil {
		return Grant{}, false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return Grant{}, false, nil
	case http.StatusOK:
		var g Grant
		if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
			return Grant{}, false, fmt.Errorf("dist: bad grant: %w", err)
		}
		if g.LeaseID == "" || g.Unit.Fingerprint == "" {
			return Grant{}, false, errors.New("dist: grant missing lease or unit")
		}
		return g, true, nil
	default:
		return Grant{}, false, fmt.Errorf("dist: claim: unexpected status %d", resp.StatusCode)
	}
}

// execute runs one granted unit under its lease: reconstruct and verify
// the scenario, heartbeat in the background, simulate, and post the
// digest-protected result.
func (w *Worker) execute(ctx context.Context, g Grant) {
	unit := g.Unit
	sc, err := unit.Scenario.Scenario()
	if err == nil {
		if got := sc.Fingerprint(); got != unit.Fingerprint {
			err = fmt.Errorf("reconstructed fingerprint %q != unit %q (registry skew?)", got, unit.Fingerprint)
		}
	}
	if err != nil {
		// Refuse rather than mis-simulate: an error result releases the
		// lease immediately so another worker (or the local fallback)
		// takes over without waiting for expiry.
		w.count(func(s *WorkerStats) { s.Errors++ })
		w.postResult(ctx, g.LeaseID, ResultMsg{Fingerprint: unit.Fingerprint, Error: err.Error()})
		return
	}

	// Heartbeat until the run finishes; a 410 cancels the run — the
	// lease was reassigned, so finishing here would be wasted work.
	runCtx, cancelRun := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	ttl := time.Duration(g.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(runCtx, g.LeaseID, ttl, cancelRun)
	}()

	out, runErr := w.cfg.runFn(runCtx, sc, unit.Seed)
	cancelRun()
	<-hbDone

	if ctx.Err() != nil && runErr != nil {
		return // shutting down; let the lease expire
	}
	if runErr != nil {
		w.count(func(s *WorkerStats) { s.Errors++ })
		w.postResult(ctx, g.LeaseID, ResultMsg{Fingerprint: unit.Fingerprint, Error: runErr.Error()})
		return
	}
	raw, err := json.Marshal(out)
	if err != nil {
		w.count(func(s *WorkerStats) { s.Errors++ })
		w.postResult(ctx, g.LeaseID, ResultMsg{Fingerprint: unit.Fingerprint, Error: "marshal outcome: " + err.Error()})
		return
	}
	msg := ResultMsg{
		Fingerprint: unit.Fingerprint,
		Outcome:     raw,
		Digest:      ResultDigest(unit.Fingerprint, raw),
	}
	if w.postResult(ctx, g.LeaseID, msg) {
		w.count(func(s *WorkerStats) { s.Completed++ })
	}
}

// heartbeatLoop extends the lease at TTL/3 until ctx is cancelled; a
// gone lease (410) cancels the run via lost.
func (w *Worker) heartbeatLoop(ctx context.Context, leaseID string, ttl time.Duration, lost context.CancelFunc) {
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	for {
		if !sleepCtx(ctx, interval) {
			return
		}
		body := []byte("{}")
		resp, err := w.post(ctx, w.cfg.BaseURL+"/v1/work/"+leaseID+"/heartbeat", body)
		if err != nil {
			continue // transient; the next beat may land before expiry
		}
		code := resp.StatusCode
		drainClose(resp)
		if code == http.StatusGone {
			w.count(func(s *WorkerStats) { s.LeaseLost++ })
			lost()
			return
		}
	}
}

// postResult delivers a result with bounded retries: transport errors
// and 5xx responses retry under the deterministic fingerprint-derived
// backoff (the dispatcher dedups re-deliveries by digest), any other
// status is final. Reports whether the result was accepted or deduped.
func (w *Worker) postResult(ctx context.Context, leaseID string, msg ResultMsg) bool {
	body, err := json.Marshal(msg)
	if err != nil {
		return false
	}
	url := w.cfg.BaseURL + "/v1/work/" + leaseID + "/result"
	for attempt := 0; attempt < w.cfg.ResultAttempts; attempt++ {
		if attempt > 0 {
			if !sleepCtx(ctx, engine.RetryDelay(w.cfg.RetryBackoff, msg.Fingerprint, attempt-1)) {
				return false
			}
		}
		resp, err := w.post(ctx, url, body)
		if err != nil {
			w.count(func(s *WorkerStats) { s.PostFailures++ })
			continue
		}
		code := resp.StatusCode
		var ack ResultAck
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack)
		drainClose(resp)
		switch {
		case code == http.StatusAccepted, code == http.StatusOK && decErr == nil && (ack.Status == "duplicate" || ack.Status == "retrying"):
			return ack.Status != "retrying"
		case code >= 500:
			w.count(func(s *WorkerStats) { s.PostFailures++ })
			continue // server-side trouble; the dispatcher dedups retries
		default:
			// 4xx is final: gone lease, conflict, or a digest problem the
			// dispatcher already charged against this lease.
			return false
		}
	}
	return false
}

func (w *Worker) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	// GetBody lets fault-injecting transports replay the request for
	// duplicated deliveries (and net/http use it on redirects/retries).
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}
	return w.cfg.Client.Do(req)
}

func (w *Worker) count(f func(*WorkerStats)) {
	w.mu.Lock()
	f(&w.stats)
	w.mu.Unlock()
}

// drainClose finishes a response body so the connection can be reused.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	_ = resp.Body.Close()
}
