// Package panicpath polices where panic is allowed. Inside the
// simulated machine (internal/cpu, strategy, power, isa, emul) a panic
// marks a violated invariant — state that no input should be able to
// reach — and crashing is correct. Everywhere user input, files or
// flags flow (cmd/*, the experiment engine, trace/workload codecs,
// report writers, MSR file I/O) a bad input is an expected condition
// and must surface as an error the caller can handle.
package panicpath

import (
	"go/ast"
	"go/types"
	"strings"

	"suit/internal/analysis"
)

// errorPackages must return errors instead of panicking: they sit on
// I/O and user-input paths.
var errorPackages = []string{
	"internal/engine",
	"internal/trace",
	"internal/workload",
	"internal/report",
	"internal/msr",
	"internal/dist",
	"internal/service",
}

// Analyzer flags panic calls in cmd/ and I/O-adjacent packages.
var Analyzer = &analysis.Analyzer{
	Name: "panicpath",
	Doc: "panic is reserved for machine invariants (internal/cpu, strategy, power, isa, emul); " +
		"cmd/, internal/engine and I/O-adjacent packages (" + strings.Join(errorPackages, ", ") +
		") must return errors",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), errorPackages) && !isCmd(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(),
					"panic on an I/O or user-input path; return an error (panic is reserved for machine invariants in internal/{cpu,strategy,power,isa,emul})")
			}
			return true
		})
	}
	return nil
}

// isCmd reports whether the import path is under the module's cmd/
// tree (also matching vet's bracketed test-variant paths).
func isCmd(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
