// scheduler: the paper's §7 future-work direction, made concrete — on a
// machine with cluster-granular DVFS domains, a SUIT-aware scheduler
// packs the workloads that are bound to the conservative curve onto one
// cluster, leaving the others free to stay on the efficient curve.
//
// Four tasks, two clusters of two cores: the oblivious round-robin
// placement lands one conservative-bound task on each cluster, parking
// both; density packing sacrifices one cluster and doubles the machine's
// efficiency gain.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"os"

	"suit/internal/dvfs"
	"suit/internal/report"
	"suit/internal/sched"
	"suit/internal/workload"
)

func main() {
	var tasks []workload.Benchmark
	for _, n := range []string{"557.xz", "505.mcf", "520.omnetpp", "521.wrf"} {
		b, ok := workload.ByName(n)
		if !ok {
			log.Fatalf("workload %s missing", n)
		}
		tasks = append(tasks, b)
	}

	cfg := sched.Config{
		Chip:            dvfs.IntelI9_9900K(),
		Clusters:        2,
		CoresPerCluster: 2,
		Tasks:           tasks,
		Instructions:    200_000_000,
		SpendAging:      true,
		Seed:            1,
	}

	spread, packed, err := sched.Compare(cfg)
	if err != nil {
		log.Fatal(err)
	}

	names := func(a sched.Assignment, cluster int) string {
		out := ""
		for i, c := range a {
			if c != cluster {
				continue
			}
			if out != "" {
				out += " + "
			}
			out += tasks[i].Name
		}
		return out
	}

	t := report.NewTable("SUIT-aware placement on 2 clusters × 2 cores (−97 mV)",
		"policy", "cluster 0", "cluster 1", "perf", "power", "efficiency")
	for _, row := range []struct {
		name string
		r    sched.Result
	}{
		{"round-robin (oblivious)", spread},
		{"pack by faultable density", packed},
	} {
		t.AddRow(row.name, names(row.r.Assignment, 0), names(row.r.Assignment, 1),
			report.Pct(row.r.Change.Perf), report.Pct(row.r.Change.Power), report.Pct(row.r.Eff))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n520.omnetpp and 521.wrf execute faultable instructions continuously and")
	fmt.Println("park their whole DVFS domain on the conservative curve (§6.4). Round-robin")
	fmt.Println("gives each cluster one of them; packing confines the damage to one cluster.")
}
