package guardband_test

import (
	"fmt"

	"suit/internal/guardband"
	"suit/internal/isa"
)

// The vendor curve-determination procedure of §3.5: disabling the
// faultable set and hardening IMUL certifies the −70 mV efficient curve;
// spending 20 % of the aging guardband deepens it to ≈−97 mV.
func ExampleModel_EfficientOffset() {
	m := guardband.Default()
	fmt.Println("stock CPU:   ", m.EfficientOffset(0, false, false))
	fmt.Println("SUIT:        ", m.EfficientOffset(isa.FaultableMask, true, false))
	fmt.Println("SUIT + aging:", m.EfficientOffset(isa.FaultableMask, true, true))
	// Output:
	// stock CPU:    -12 mV
	// SUIT:         -70 mV
	// SUIT + aging: -97 mV
}
