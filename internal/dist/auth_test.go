package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"suit/internal/core"
)

// TestWorkerTokenRequired: with a WorkerToken configured, every
// /v1/work endpoint refuses requests without the matching bearer token.
// The result digest only proves transport integrity, so this token is
// what keeps an exposed daemon from accepting forged outcomes.
func TestWorkerTokenRequired(t *testing.T) {
	d := newTestDispatcher(t, Config{WorkerToken: "s3cret"})
	mux := http.NewServeMux()
	d.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	claimBody, _ := json.Marshal(ClaimRequest{WorkerID: "intruder"})
	post := func(path, token string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for _, path := range []string{"/v1/work/claim", "/v1/work/l1/heartbeat", "/v1/work/l1/result"} {
		if resp := post(path, "", claimBody); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s with no token: status %d, want 401", path, resp.StatusCode)
		} else if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("%s 401 carried no WWW-Authenticate challenge", path)
		}
		if resp := post(path, "wrong", claimBody); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s with a wrong token: status %d, want 401", path, resp.StatusCode)
		}
	}

	// The right token passes through to the real handler: an empty
	// queue answers an authorized claim with 204.
	if resp := post("/v1/work/claim", "s3cret", claimBody); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("authorized claim: status %d, want 204", resp.StatusCode)
	}
	// Unauthorized probes must not have registered as live workers.
	if st := d.Stats(); st.LiveWorkers != 1 {
		t.Errorf("LiveWorkers = %d, want only the authorized claimer", st.LiveWorkers)
	}
}

// TestWorkerTokenEndToEnd: a worker configured with the token completes
// a unit against a token-requiring daemon; one without it never gets a
// claim through.
func TestWorkerTokenEndToEnd(t *testing.T) {
	d := newTestDispatcher(t, Config{WorkerToken: "s3cret"})
	mux := http.NewServeMux()
	d.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	sc := testScenario(t, 40)
	run := func(ctx context.Context, got core.Scenario, seed uint64) (core.Outcome, error) {
		return core.Outcome{Scenario: got, Efficiency: 3}, nil
	}

	stopDenied := runWorker(t, WorkerConfig{
		BaseURL: srv.URL, ID: "no-token", PollInterval: 5 * time.Millisecond, runFn: run,
	})
	stopAllowed := runWorker(t, WorkerConfig{
		BaseURL: srv.URL, ID: "with-token", Token: "s3cret", PollInterval: 5 * time.Millisecond, runFn: run,
	})
	defer stopDenied()
	defer stopAllowed()
	waitLiveWorkers(t, d, 1)

	v := waitVerdict(t, startExecute(d, sc))
	if !v.handled || v.err != nil || v.out.Efficiency != 3 {
		t.Fatalf("verdict %+v, want the authorized worker's outcome", v)
	}
}
