package cpu

import "math"

// advanceTo stands in for the simulator's per-event power accounting.
func advanceTo(v, e float64) float64 {
	return math.Pow(v, e) // want `math.Pow on a per-event path`
}

// refreshVoltCache is the one legitimate slow-path site: it runs only
// when a ramp settles, not per event.
func refreshVoltCache(v, e float64) float64 {
	//lint:allow hotpath runs once per ramp settle, not per event
	return math.Pow(v, e)
}

// sameLine suppression works too.
func sameLine(v, e float64) float64 {
	return math.Pow(v, e) //lint:allow hotpath cold configuration path
}

// powMethod is a method named Pow on a local type; only math.Pow is hot.
type calc struct{}

func (calc) Pow(v, e float64) float64 { return v * e }

func uses(c calc) float64 { return c.Pow(2, 3) }

// The pow-kernel/memo helpers are sanctioned: their math.Pow calls are
// the deliberate bit-identical fallback ladder, not a hot-path leak.
type powKernel struct{ exp float64 }

func (k *powKernel) eval(x float64) float64 {
	return math.Pow(x, k.exp) // sanctioned receiver: no diagnostic
}

type rampMemo struct{ kern powKernel }

func (mm rampMemo) pow(v float64) float64 {
	return math.Pow(v, mm.kern.exp) // sanctioned value receiver: no diagnostic
}

func newPowKernel(exp float64) powKernel {
	if math.Pow(2, exp) > 1 { // sanctioned constructor: no diagnostic
		return powKernel{exp: exp}
	}
	return powKernel{}
}

// A lookalike type is NOT sanctioned: sanctioning is by exact receiver
// base name.
type powKernelView struct{ k powKernel }

func (v *powKernelView) eval(x float64) float64 {
	return math.Pow(x, v.k.exp) // want `math.Pow on a per-event path`
}
