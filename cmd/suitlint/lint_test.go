package main

import (
	"os/exec"
	"path/filepath"
	"testing"

	"suit/internal/analysis"
	"suit/internal/analysis/load"
)

// TestRepoIsLintClean runs all four analyzers over the whole module
// in-process and demands a clean tree: every remaining finding must be
// fixed or carry an explained //lint:allow.
func TestRepoIsLintClean(t *testing.T) {
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers())
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Pkg.Path(), err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestVettoolProtocol builds the binary and drives it through the real
// cmd/go vet-tool handshake (-V=full, then per-package .cfg files).
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "suitlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building suitlint: %v\n%s", err, out)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/units/...", "./internal/isa/...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
