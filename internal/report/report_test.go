package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X. Demo", "name", "value")
	tb.AddRow("alpha", "+1.0 %")
	tb.AddRow("a-much-longer-name", "-2.5 %")
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.HasPrefix(out, "Table X. Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All rows align: the value column starts at the same offset.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:5] {
		if len(ln) < idx {
			continue
		}
		if strings.TrimRight(ln[:idx], " ") == ln[:idx] && !strings.HasSuffix(ln[:idx], " ") {
			t.Errorf("column misaligned in %q", ln)
		}
	}
	if tb.Rows() != 3 {
		t.Errorf("Rows() = %d", tb.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced a leading blank line")
	}
}

func TestPctFormats(t *testing.T) {
	if got := Pct(0.038); got != "+3.8 %" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.16); got != "-16.0 %" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct2(0.0003); got != "+0.03 %" {
		t.Errorf("Pct2 = %q", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Name: "fig", XLabel: "x", YLabel: "y"}
	s.Add(1, 10)
	s.Add(2, 20)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "# fig\nx,y\n1,10\n2,20\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	bad := Series{Name: "bad", X: []float64{1}, Y: nil}
	if err := bad.WriteCSV(&b); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestSparkline(t *testing.T) {
	s := Series{}
	if s.Sparkline() != "" {
		t.Error("empty sparkline not empty")
	}
	s.Add(0, 0)
	s.Add(1, 1)
	s.Add(2, 0.5)
	sp := []rune(s.Sparkline())
	if len(sp) != 3 {
		t.Fatalf("sparkline %q", string(sp))
	}
	if sp[0] == sp[1] {
		t.Error("min and max rendered identically")
	}
	// Flat series must not divide by zero.
	flat := Series{Y: []float64{5, 5, 5}, X: []float64{0, 1, 2}}
	if got := flat.Sparkline(); len([]rune(got)) != 3 {
		t.Errorf("flat sparkline %q", got)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := NewTable("Title | piped", "a", "b")
	tb.AddRow("x|y", "2")
	var b strings.Builder
	if err := tb.Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "**Title \\| piped**") {
		t.Errorf("title not escaped:\n%s", out)
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "|---|---|") {
		t.Errorf("header/rule missing:\n%s", out)
	}
	if !strings.Contains(out, "| x\\|y | 2 |") {
		t.Errorf("cell not escaped:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	err := Histogram(&b, "gaps", []string{"10^0", "10^1", "10^2"}, []uint64{0, 100, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 10)) {
		t.Errorf("max bucket not full width: %q", lines[2])
	}
	if strings.Contains(lines[1], "█") {
		t.Errorf("zero bucket has a bar: %q", lines[1])
	}
	if !strings.Contains(lines[3], "█") {
		t.Errorf("small nonzero bucket invisible: %q", lines[3])
	}
	if err := Histogram(&b, "", []string{"a"}, []uint64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Zero width defaults; all-zero counts render without division by zero.
	var b2 strings.Builder
	if err := Histogram(&b2, "", []string{"a"}, []uint64{0}, 0); err != nil {
		t.Fatal(err)
	}
}
