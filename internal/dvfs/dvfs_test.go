package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"suit/internal/units"
)

func testCurve() Curve {
	return Curve{Name: "test", States: []PState{
		{Ratio: 10, F: units.GHz(1), V: 0.80},
		{Ratio: 20, F: units.GHz(2), V: 0.90},
		{Ratio: 40, F: units.GHz(4), V: 1.10},
	}}
}

func TestCurveValidate(t *testing.T) {
	if err := testCurve().Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	bad := []Curve{
		{Name: "empty"},
		{Name: "zeroF", States: []PState{{F: 0, V: 1}}},
		{Name: "zeroV", States: []PState{{F: units.GHz(1), V: 0}}},
		{Name: "nonmonotoneF", States: []PState{{F: units.GHz(2), V: 0.9}, {F: units.GHz(1), V: 1.0}}},
		{Name: "equalF", States: []PState{{F: units.GHz(2), V: 0.9}, {F: units.GHz(2), V: 1.0}}},
		{Name: "decreasingV", States: []PState{{F: units.GHz(1), V: 1.0}, {F: units.GHz(2), V: 0.9}}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("curve %q accepted", c.Name)
		}
	}
}

func TestVoltageAtInterpolationAndClamping(t *testing.T) {
	c := testCurve()
	if got := c.VoltageAt(units.GHz(0.5)); got != 0.80 {
		t.Errorf("below range: %v, want clamp to 0.80", got)
	}
	if got := c.VoltageAt(units.GHz(5)); got != 1.10 {
		t.Errorf("above range: %v, want clamp to 1.10", got)
	}
	if got := c.VoltageAt(units.GHz(1.5)); math.Abs(float64(got)-0.85) > 1e-12 {
		t.Errorf("midpoint: %v, want 0.85", got)
	}
	if got := c.VoltageAt(units.GHz(3)); math.Abs(float64(got)-1.0) > 1e-12 {
		t.Errorf("interpolated: %v, want 1.0", got)
	}
	// Exactly at a p-state.
	if got := c.VoltageAt(units.GHz(2)); got != 0.90 {
		t.Errorf("at state: %v, want 0.90", got)
	}
}

func TestVoltageAtMonotone(t *testing.T) {
	c := IntelI9_9900K().Vendor
	prop := func(a, b uint16) bool {
		f1 := units.GHz(0.5 + float64(a%500)/100) // 0.5..5.5 GHz
		f2 := units.GHz(0.5 + float64(b%500)/100)
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		return c.VoltageAt(f1) <= c.VoltageAt(f2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStateAtAndNearest(t *testing.T) {
	c := testCurve()
	if s, ok := c.StateAt(20); !ok || s.F != units.GHz(2) {
		t.Errorf("StateAt(20) = %+v, %t", s, ok)
	}
	if _, ok := c.StateAt(99); ok {
		t.Error("StateAt(99) found a phantom state")
	}
	if got := c.Nearest(units.GHz(1.9)); got.Ratio != 20 {
		t.Errorf("Nearest(1.9 GHz).Ratio = %d, want 20", got.Ratio)
	}
	if got := c.Nearest(units.GHz(10)); got.Ratio != 40 {
		t.Errorf("Nearest(10 GHz).Ratio = %d, want 40 (top)", got.Ratio)
	}
	// Tie prefers the lower state.
	if got := c.Nearest(units.GHz(1.5)); got.Ratio != 10 {
		t.Errorf("Nearest(tie).Ratio = %d, want 10", got.Ratio)
	}
}

func TestI9GradientMatchesPaper(t *testing.T) {
	// §5.6: the 4→5 GHz gradient on the i9-9900K is 183 mV/GHz and the
	// 5 GHz voltage is 1.174 V.
	c := IntelI9_9900K().Vendor
	mvPerGHz := c.Gradient() * 1e9 * 1000
	if math.Abs(mvPerGHz-183) > 1 {
		t.Errorf("gradient = %.1f mV/GHz, want 183", mvPerGHz)
	}
	if top := c.Top(); top.V != 1.174 || top.F != units.GHz(5) {
		t.Errorf("top state = %+v", top)
	}
	if got := c.VoltageAt(units.GHz(4)); math.Abs(float64(got)-0.991) > 1e-9 {
		t.Errorf("V(4 GHz) = %v, want 0.991 (paper §5.7: 991 mV)", got)
	}
}

func TestGradientDegenerate(t *testing.T) {
	c := Curve{Name: "one", States: []PState{{Ratio: 1, F: units.GHz(1), V: 1}}}
	if c.Gradient() != 0 {
		t.Error("single-state curve gradient must be 0")
	}
}

func TestOffsetAndFloor(t *testing.T) {
	c := testCurve()
	off := c.Offset("eff", units.MilliVolts(-97), 0.78)
	if off.Name != "eff" {
		t.Errorf("name = %q", off.Name)
	}
	// 0.80 - 0.097 = 0.703 < floor 0.78 → clamped.
	if off.States[0].V != 0.78 {
		t.Errorf("floored V = %v, want 0.78", off.States[0].V)
	}
	if got := off.States[2].V; math.Abs(float64(got)-1.003) > 1e-12 {
		t.Errorf("offset V = %v, want 1.003", got)
	}
	// Original untouched.
	if c.States[0].V != 0.80 {
		t.Error("Offset mutated the source curve")
	}
}

func TestDerivePair(t *testing.T) {
	p, err := DerivePair(testCurve(), units.MilliVolts(-70), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Get(Conservative).Name != "test" {
		t.Error("conservative curve must be the vendor curve")
	}
	for i := range p.Conservative.States {
		dc := p.Conservative.States[i].V - p.Efficient.States[i].V
		if math.Abs(float64(dc)-0.070) > 1e-12 {
			t.Errorf("state %d offset = %v, want 70 mV", i, dc)
		}
	}
	if _, err := DerivePair(testCurve(), units.MilliVolts(+10), 0.7); err == nil {
		t.Error("positive offset accepted")
	}
	if _, err := DerivePair(Curve{Name: "empty"}, units.MilliVolts(-70), 0.7); err == nil {
		t.Error("invalid vendor curve accepted")
	}
}

func TestCurveIDAndDomainKindStrings(t *testing.T) {
	if Conservative.String() != "conservative" || Efficient.String() != "efficient" {
		t.Error("CurveID strings wrong")
	}
	if CurveID(9).String() != "CurveID(9)" {
		t.Error("unknown CurveID string wrong")
	}
	kinds := map[DomainKind]string{
		SingleDomain: "single-domain",
		PerCoreFreq:  "per-core-frequency",
		PerCoreBoth:  "per-core-frequency+voltage",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if DomainKind(9).String() != "DomainKind(9)" {
		t.Error("unknown DomainKind string wrong")
	}
}

func TestTransitionModelValidate(t *testing.T) {
	good := TransitionModel{FreqDelay: 1e-5, VoltDelay: 1e-4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []TransitionModel{
		{FreqDelay: -1},
		{VoltDelay: -1},
		{FreqStall: -1},
		{FreqDelaySigma: -1},
		{VoltDelaySigma: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestJitterClampsAtTenPercent(t *testing.T) {
	mean := units.Microseconds(100)
	if got := Jitter(mean, units.Microseconds(10), 0); got != mean {
		t.Errorf("zero normal variate should give the mean, got %v", got)
	}
	if got := Jitter(mean, units.Microseconds(50), -10); got != mean/10 {
		t.Errorf("extreme negative variate should clamp to mean/10, got %v", got)
	}
	if got := Jitter(mean, units.Microseconds(10), 2); got != mean+units.Microseconds(20) {
		t.Errorf("positive variate: %v", got)
	}
}

func TestAllPresetsValidate(t *testing.T) {
	for _, chip := range []Chip{IntelI9_9900K(), AMDRyzen7700X(), XeonSilver4208()} {
		if err := chip.Validate(); err != nil {
			t.Errorf("%s: %v", chip.Name, err)
		}
	}
}

func TestPresetDomainKinds(t *testing.T) {
	if IntelI9_9900K().Domains != SingleDomain {
		t.Error("𝒜 must be single-domain")
	}
	if AMDRyzen7700X().Domains != PerCoreFreq {
		t.Error("ℬ must be per-core-frequency")
	}
	c := XeonSilver4208()
	if c.Domains != PerCoreBoth || !c.Transition.VoltFirst {
		t.Error("𝒞 must be per-core-both with volt-first transitions")
	}
}

func TestChipValidateRejectsBadChips(t *testing.T) {
	good := IntelI9_9900K()
	mutations := []func(*Chip){
		func(c *Chip) { c.Cores = 0 },
		func(c *Chip) { c.Vendor.States = nil },
		func(c *Chip) { c.Transition.FreqDelay = -1 },
		func(c *Chip) { c.Power.CoreCeff = 0 },
		func(c *Chip) { c.TDP = 0 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSustainableStateUndervoltingRaisesFrequency(t *testing.T) {
	// The §5.4 effect: a negative offset lowers power, so the package can
	// sustain a frequency at least as high under the same TDP.
	chip := IntelI9_9900K()
	base := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	uv := chip.SustainableState(chip.Vendor, units.MilliVolts(-97), chip.Cores)
	if uv.F < base.F {
		t.Errorf("undervolted sustainable %v < baseline %v", uv.F, base.F)
	}
	if base.F >= chip.Vendor.Top().F {
		t.Errorf("baseline already at top (%v); TDP not constraining, calibration off", base.F)
	}
	if uv.F == base.F {
		t.Error("undervolting made no difference; expected at least one p-state of headroom")
	}
}

func TestSustainableStateFloorsAtMin(t *testing.T) {
	chip := IntelI9_9900K()
	chip.TDP = 1 // impossible budget
	got := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	if got != chip.Vendor.Min() {
		t.Errorf("got %+v, want the minimum state", got)
	}
}

func TestSustainableStateFewerCoresMoreHeadroom(t *testing.T) {
	chip := IntelI9_9900K()
	one := chip.SustainableState(chip.Vendor, 0, 1)
	all := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	if one.F < all.F {
		t.Errorf("1-core sustainable %v < all-core %v", one.F, all.F)
	}
}

func TestEnergyOptimalState(t *testing.T) {
	chip := IntelI9_9900K()
	perf := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	energy := chip.EnergyOptimalState(chip.Vendor, 0, chip.Cores)
	// The energy governor never runs faster than the performance one.
	if energy.F > perf.F {
		t.Errorf("energy state %v above performance state %v", energy.F, perf.F)
	}
	// Its energy per instruction is minimal among TDP-feasible states.
	epi := func(s PState) float64 {
		return float64(chip.packagePower(s, 0, chip.Cores)) / float64(s.F)
	}
	for _, s := range chip.Vendor.States {
		if chip.packagePower(s, 0, chip.Cores) > chip.TDP {
			continue
		}
		if epi(s) < epi(energy)-1e-12 {
			t.Errorf("state %v beats the 'optimal' %v on energy/instruction", s.F, energy.F)
		}
	}
	// With the frequency-independent uncore floor, crawling at the
	// bottom of the curve is NOT optimal: the floor amortises over more
	// work at higher frequency.
	if energy == chip.Vendor.Min() {
		t.Error("energy governor picked the minimum state; uncore amortisation ignored")
	}
}

func TestEnergyOptimalRespectsTDP(t *testing.T) {
	chip := IntelI9_9900K()
	got := chip.EnergyOptimalState(chip.Vendor, 0, chip.Cores)
	if chip.packagePower(got, 0, chip.Cores) > chip.TDP {
		t.Errorf("energy-optimal state %v exceeds the TDP", got.F)
	}
}
