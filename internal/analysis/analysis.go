// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary, sized for this repo's
// needs. The container this project builds in has no module proxy, so
// the suitlint analyzers (internal/analysis/{determinism,exhaustive,
// unitsafe,panicpath}) run on a framework built entirely from the
// standard library's go/ast, go/types and go/importer packages.
//
// The shapes mirror x/tools deliberately: an Analyzer has a Name, a Doc
// string and a Run function over a Pass; a Pass exposes the FileSet,
// the parsed files, the type-checked package and the types.Info; Run
// reports Diagnostics. If the module ever gains a real
// golang.org/x/tools dependency the analyzers port over mechanically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"suit/internal/analysis/facts"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// enforces, shown by `suitlint -help`.
	Doc string

	// Run executes the check and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only; _test.go is never analyzed
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the session's cross-package fact store. Analyzers export
	// deductions about this package's functions and import deductions
	// about dependencies' functions at call sites.
	Facts *facts.Store

	diags  *[]Diagnostic
	allows *allowTracker
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a cross-package fact for fn, which must be a
// package-level function or method (closures are not addressable; fold
// their state into the enclosing declaration).
func (p *Pass) ExportFact(fn *types.Func, f facts.Fact) {
	p.Facts.Export(fn, f)
}

// ImportFact copies a previously exported fact of ptr's concrete type
// for fn into *ptr, reporting whether one existed. Facts flow in
// dependency order: a callee's facts are available when the caller's
// package is analyzed.
func (p *Pass) ImportFact(fn *types.Func, ptr facts.Fact) bool {
	return p.Facts.Import(fn, ptr)
}

// Allowed reports whether a //lint:allow comment for this analyzer
// covers pos, and marks that suppression as load-bearing for stale
// detection. Analyzers call it while computing facts: a site whose
// finding is explained away must not export its taint/allocation to
// callers, and the comment that does the explaining is "used" even
// when the site never surfaces as a diagnostic.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allows == nil {
		return false
	}
	return p.allows.match(p.Analyzer.Name, p.Fset.Position(pos))
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, type-checked package ready for analysis.
// Drivers (the standalone loader, the vet unitchecker, analysistest)
// construct it and hand it to Run.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Meta-analyzer names used for diagnostics the framework itself emits.
// Neither can be suppressed with //lint:allow (their names are not
// accepted by CollectAllows' known set).
const (
	// LintAllowName attributes malformed-suppression diagnostics.
	LintAllowName = "lintallow"
	// StaleAllowName attributes dead-suppression diagnostics: a
	// well-formed //lint:allow that suppressed nothing and blocked no
	// fact export during the whole package run.
	StaleAllowName = "staleallow"
)

// A Session drives the analyzers over a sequence of packages sharing
// one fact store. Packages must be presented in dependency order
// (dependencies first) for cross-package facts to flow; the go-list
// loader and the vet protocol both guarantee that.
type Session struct {
	// Facts carries cross-package analysis state. A fresh store is
	// created by NewSession; drivers reviving dependency facts (the vet
	// unitchecker) may replace it before the first RunPackage.
	Facts *facts.Store

	// ReportStale, when set, reports //lint:allow comments that neither
	// suppressed a diagnostic nor blocked a fact export, as
	// StaleAllowName diagnostics. Enable only when running the full
	// analyzer set: under -only, an allow for an analyzer that did not
	// run is silent, not stale (allows naming analyzers outside the
	// session are never reported either way).
	ReportStale bool

	analyzers []*Analyzer
	known     map[string]bool
}

// NewSession returns a session running the given analyzers with an
// empty fact store.
func NewSession(analyzers []*Analyzer) *Session {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return &Session{
		Facts:     facts.NewStore(),
		analyzers: analyzers,
		known:     known,
	}
}

// Run executes the given analyzers over a single package with a fresh,
// private fact store — the compatibility path for fixture tests and
// one-package drivers. Multi-package drivers use a Session so facts
// cross package boundaries.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewSession(analyzers).RunPackage(pkg)
}

// RunPackage executes the session's analyzers over pkg and returns the
// surviving diagnostics, sorted by position. It is the single code path
// shared by every driver:
//
//  1. _test.go files are excluded from analysis (tests may use
//     wall-clock time, ad-hoc randomness and raw literals freely);
//  2. //lint:allow comments are collected once per package; malformed
//     ones (missing reason, unknown analyzer) become diagnostics;
//  3. each analyzer runs over the remaining files, reading and writing
//     session facts;
//  4. diagnostics matched by a well-formed suppression are dropped;
//  5. with ReportStale, suppressions that did no work become
//     StaleAllowName diagnostics.
func (s *Session) RunPackage(pkg *Package) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}

	allows, diags := CollectAllows(pkg.Fset, files, s.known)
	tracker := newAllowTracker(allows)

	for _, a := range s.analyzers {
		var out []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Facts:     s.Facts,
			diags:     &out,
			allows:    tracker,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		diags = append(diags, tracker.suppress(pkg.Fset, out)...)
	}

	if s.ReportStale {
		for i, a := range tracker.allows {
			if tracker.used[i] || !s.known[a.Analyzer] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      a.Pos,
				Analyzer: StaleAllowName,
				Message: "lint:allow " + a.Analyzer +
					" suppresses nothing on the current tree; delete the stale comment",
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// PkgPathMatches reports whether a package import path ends in one of
// the given suffixes (e.g. "internal/cpu" matches "suit/internal/cpu").
// Vet analyzes test variants under synthesized paths like
// "suit/internal/cpu [suit/internal/cpu.test]"; the bracketed part is
// ignored.
func PkgPathMatches(path string, suffixes []string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
