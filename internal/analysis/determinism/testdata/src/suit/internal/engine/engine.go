// Package engine is a determinism fixture: its import path matches a
// result-affecting package, so wall-clock reads, global rand draws and
// order-dependent map iteration are all flagged.
package engine

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"sort"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func telemetry() time.Time {
	return time.Now() //lint:allow determinism fixture: wall clock feeds telemetry only
}

func timers(d time.Duration) {
	<-time.After(d)              // want `time\.After schedules off the wall clock`
	t := time.NewTimer(d)        // want `time\.NewTimer schedules off the wall clock`
	k := time.NewTicker(d)       // want `time\.NewTicker schedules off the wall clock`
	time.AfterFunc(d, func() {}) // want `time\.AfterFunc schedules off the wall clock`
	t.Stop()
	k.Stop()
}

func watchdog(d time.Duration) *time.Timer {
	// The audited form: a timer whose suppression explains why its firing
	// cannot reach a result.
	return time.NewTimer(d) //lint:allow determinism fixture: watchdog only converts a hang into an error
}

func sleeping(d time.Duration) {
	time.Sleep(d) // pacing without a readable value: deliberately not flagged
}

func globalDraw() (int, uint64) {
	a := rand.Intn(8)    // want `rand\.Intn draws from the process-global source`
	b := randv2.Uint64() // want `rand\.Uint64 draws from the process-global source`
	return a, b
}

func unseeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `not visibly derived from a seed`
}

func seeded(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys is appended to while ranging over a map`
	}
	return keys
}

func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keysSliceSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum
}

func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func printLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println writes output while ranging over a map`
	}
}

func writeLoop(m map[string]int, w *os.File) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `fmt\.Fprintf writes output while ranging over a map`
	}
}

func keyedCopy(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v * 2
	}
	return dst
}

func suppressedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow determinism fixture: caller sorts before rendering
	}
	return keys
}

func missingReason() time.Time {
	return time.Now() //lint:allow determinism // want `time\.Now reads the wall clock` `missing a reason`
}

func unknownAnalyzer() {
	//lint:allow nosuchpass typo in the analyzer name // want `unknown analyzer`
}

func emptyAllow() {
	//lint:allow // want `needs an analyzer name and a reason`
}
