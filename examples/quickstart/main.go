// Quickstart: simulate SUIT on one workload and print the headline
// numbers.
//
// The five steps below are the whole public API surface needed to
// evaluate SUIT on a workload: pick a CPU model, pick (or define) a
// workload, choose an operating strategy and undervolt depth, run, and
// read the outcome relative to the pre-SUIT baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/workload"
)

func main() {
	// 1. The CPU: the paper's server-class model 𝒞 (Intel Xeon Silver
	//    4208) with per-core frequency and voltage domains.
	chip := dvfs.XeonSilver4208()

	// 2. The workload: 557.xz — faultable SIMD instructions arrive in
	//    rare bursts, SUIT's best case.
	bench, ok := workload.ByName("557.xz")
	if !ok {
		log.Fatal("workload missing")
	}

	// 3+4. The operating strategy (fV, Listing 1 of the paper) at the
	//    −97 mV design point (instruction variation + 20 % of the aging
	//    guardband), run against the baseline.
	outcome, err := core.Run(core.Scenario{
		Chip:       chip,
		Bench:      bench,
		Kind:       core.KindFV,
		SpendAging: true,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Read the results.
	fmt.Printf("SUIT on %s running %s (offset %v):\n", chip.Name, bench.Name, outcome.Offset)
	fmt.Printf("  performance: %+.2f %%\n", outcome.Change.Perf*100)
	fmt.Printf("  power:       %+.2f %%\n", outcome.Change.Power*100)
	fmt.Printf("  efficiency:  %+.2f %%\n", outcome.Efficiency*100)
	fmt.Printf("  time on efficient curve: %.1f %%\n", outcome.EfficientShare*100)
	fmt.Printf("  #DO exceptions: %d, curve switches: %d\n",
		outcome.Run.Exceptions, outcome.Run.Switches)
	fmt.Printf("  silent faults: %d (SUIT guarantees 0)\n", len(outcome.Run.Faults))
}
