package security

import (
	"errors"
	"fmt"
	"sort"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/strategy"
	"suit/internal/trace"
	"suit/internal/units"
)

// This file makes the §8 "Side-Channel Leakage" discussion executable: on
// a single-DVFS-domain CPU, SUIT's curve switching is a shared, attacker-
// modulatable resource. A sender process executes a disabled instruction
// to drag the whole domain to the conservative curve for at least one
// deadline period; a co-located receiver observes the frequency dip. The
// experiment quantifies the resulting covert-channel capacity.

// CovertResult reports one covert-channel transmission.
type CovertResult struct {
	Sent     []bool
	Received []bool
	// BitErrors counts positions where Received differs from Sent.
	BitErrors int
	// Window is the symbol period used.
	Window units.Second
	// BitsPerSecond is the raw symbol rate; effective capacity scales
	// with (1 - error rate).
	BitsPerSecond float64
}

// ErrorRate returns the fraction of mis-received bits.
func (r CovertResult) ErrorRate() float64 {
	if len(r.Sent) == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(len(r.Sent))
}

// CovertChannel transmits bits through SUIT's curve switching on a
// single-domain chip: for each 1-bit the sender executes faultable
// instructions at the start of the symbol window, trapping the domain to
// the conservative curve; for a 0-bit it stays quiet and the deadline
// mechanism returns the domain to the efficient curve. The receiver
// decodes from the per-window conservative-curve occupancy — the same
// signal a real receiver extracts from its own instruction throughput.
func CovertChannel(chip dvfs.Chip, bits []bool, window units.Second, seed uint64) (CovertResult, error) {
	if chip.Domains != dvfs.SingleDomain {
		return CovertResult{}, errors.New("security: the covert channel needs a shared DVFS domain")
	}
	if len(bits) == 0 {
		return CovertResult{}, errors.New("security: nothing to send")
	}
	params := strategy.ParamsAC()
	if window < 4*params.Deadline {
		return CovertResult{}, fmt.Errorf("security: window %v too short for deadline %v", window, params.Deadline)
	}

	gb := guardband.Default()
	offset := gb.EfficientOffset(isa.FaultableMask, true, true)

	// The sender's instruction rate on the efficient curve converts
	// window times to instruction indices. Conservative periods slow the
	// sender down, so 1-bits are preceded by idle slack (the sender
	// spins); using the efficient rate keeps windows aligned well enough
	// for the ~30 µs deadline tail to stay inside the window.
	const ipc = 2.0
	effState := chip.SustainableState(chip.Vendor, offset, chip.Cores)
	rate := ipc * float64(effState.F)

	winInstr := uint64(float64(window) * rate)
	total := winInstr * uint64(len(bits)+1)
	sender := &trace.Trace{Name: "covert-sender", Total: total, IPC: ipc}
	for i, bit := range bits {
		if !bit {
			continue
		}
		base := uint64(i) * winInstr
		// A short kick of faultable instructions: the first traps, the
		// rest keep the deadline armed briefly.
		for k := uint64(0); k < 4; k++ {
			sender.Events = append(sender.Events, trace.Event{
				Index: base + k*1000, Op: isa.OpVOR,
			})
		}
	}
	if err := sender.Validate(); err != nil {
		return CovertResult{}, err
	}
	receiver := &trace.Trace{Name: "covert-receiver", Total: total, IPC: ipc}

	m, err := cpu.New(cpu.Config{
		Chip:           chip,
		Traces:         []*trace.Trace{sender, receiver},
		Offset:         offset,
		Faults:         gb,
		HardenedIMUL:   true,
		ExceptionDelay: chip.ExceptionDelay,
		Emul:           emul.NewCostModel(chip.EmulCallDelay),
		Seed:           seed,
		RecordTimeline: true,
	}, strategy.FV{P: params})
	if err != nil {
		return CovertResult{}, err
	}
	res, err := m.Run()
	if err != nil {
		return CovertResult{}, err
	}

	received := decodeEpisodes(res.Timeline, window, len(bits))
	out := CovertResult{
		Sent:          bits,
		Received:      received,
		Window:        window,
		BitsPerSecond: 1 / float64(window),
	}
	for i := range bits {
		if bits[i] != received[i] {
			out.BitErrors++
		}
	}
	return out, nil
}

// episode is one conservative-curve excursion of the domain.
type episode struct {
	start, end units.Second
}

// episodesOf extracts conservative excursions from the switch timeline.
func episodesOf(timeline []cpu.ModeChange) []episode {
	sorted := append([]cpu.ModeChange(nil), timeline...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	var eps []episode
	inCons := false
	var start units.Second
	for _, mc := range sorted {
		switch {
		case mc.Mode != cpu.ModeE && !inCons:
			inCons, start = true, mc.T
		case mc.Mode == cpu.ModeE && inCons:
			inCons = false
			eps = append(eps, episode{start: start, end: mc.T})
		}
	}
	if inCons {
		eps = append(eps, episode{start: start, end: start})
	}
	return eps
}

// senderDriftFactor is the receiver's clock-recovery constant: the sender
// loses roughly this fraction of each conservative episode (trap handler
// block, frequency-change stalls and the reduced Cf clock), shifting all
// later symbols. A real receiver recovers the clock the same way — from
// the dips it observes.
const senderDriftFactor = 0.9

// decodeEpisodes maps each conservative excursion to its symbol window,
// compensating the sender's cumulative slowdown.
func decodeEpisodes(timeline []cpu.ModeChange, window units.Second, nBits int) []bool {
	received := make([]bool, nBits)
	var drift units.Second
	for _, ep := range episodesOf(timeline) {
		w := int(float64((ep.start-drift)/window) + 0.5)
		if w >= 0 && w < nBits {
			received[w] = true
		}
		drift += units.Second(senderDriftFactor) * (ep.end - ep.start)
	}
	return received
}
