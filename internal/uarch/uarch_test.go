package uarch

import (
	"math"
	"testing"

	"suit/internal/isa"
	"suit/internal/workload"
)

const testN = 200_000

func x264Mix(t *testing.T) map[isa.Opcode]float64 {
	t.Helper()
	b, ok := workload.ByName("525.x264")
	if !ok {
		t.Fatal("525.x264 missing")
	}
	return b.Mix()
}

func TestDefaultConfigValidates(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.ROB = 0 },
		func(c *Config) { c.IMULLatency = 0 },
		func(c *Config) { c.BranchMispredictRate = 1.5 },
		func(c *Config) { c.LoadMissRate = -0.1 },
		func(c *Config) { c.DepMeanDist = 0.5 },
		func(c *Config) { c.IMULChainIn = 2 },
		func(c *Config) { c.IMULChainLen = -1 },
		func(c *Config) { c.FUs = map[isa.FUKind]int{isa.FUALU: 0} },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	mix := x264Mix(t)
	a, err := Simulate(cfg, mix, testN, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, mix, testN, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("not deterministic: %+v vs %+v", a, b)
	}
	c, err := Simulate(cfg, mix, testN, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds gave identical results")
	}
}

func TestSimulateErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Simulate(cfg, nil, testN, 1); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Simulate(cfg, map[isa.Opcode]float64{isa.OpALU: -1}, testN, 1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Simulate(cfg, map[isa.Opcode]float64{isa.OpALU: 1}, 0, 1); err == nil {
		t.Error("zero instructions accepted")
	}
	bad := cfg
	bad.Width = 0
	if _, err := Simulate(bad, map[isa.Opcode]float64{isa.OpALU: 1}, testN, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestIPCBounds(t *testing.T) {
	cfg := DefaultConfig()
	r, err := Simulate(cfg, x264Mix(t), testN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.IPC > float64(cfg.Width) {
		t.Errorf("IPC = %v outside (0, width]", r.IPC)
	}
	if r.Instructions != testN {
		t.Errorf("Instructions = %d", r.Instructions)
	}
	if r.Cycles <= 0 {
		t.Error("non-positive cycle count")
	}
}

func TestPureALUStreamNearWidthBound(t *testing.T) {
	// Independent single-cycle ops with no hazards should approach the
	// dispatch width.
	cfg := DefaultConfig()
	cfg.BranchMispredictRate = 0
	cfg.LoadMissRate = 0
	cfg.DepMeanDist = 10_000 // dependences effectively never bind
	r, err := Simulate(cfg, map[isa.Opcode]float64{isa.OpALU: 1}, testN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC < float64(cfg.Width)*0.9 {
		t.Errorf("hazard-free ALU IPC = %v, want ≈%d", r.IPC, cfg.Width)
	}
}

func TestUnpipelinedDivThroughputBound(t *testing.T) {
	// A pure DIV stream on one unpipelined divider is bounded by
	// 1/latency IPC.
	cfg := DefaultConfig()
	cfg.BranchMispredictRate = 0
	r, err := Simulate(cfg, map[isa.Opcode]float64{isa.OpDiv: 1}, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1.0 / float64(isa.Lookup(isa.OpDiv).Latency)
	if r.IPC > bound*1.05 {
		t.Errorf("DIV IPC = %v exceeds structural bound %v", r.IPC, bound)
	}
}

func TestFig14Shape(t *testing.T) {
	// Fig 14: slowdown grows with IMUL latency; small increments are
	// mostly hidden by out-of-order execution, large ones approach the
	// exposure ceiling. x264 at latency 4 is ≈1.6 %, at 30 ≈46 %.
	cfg := DefaultConfig()
	mix := x264Mix(t)
	prev := -1.0
	slow := map[int]float64{}
	for _, lat := range []int{4, 5, 6, 15, 30} {
		s, err := Slowdown(cfg, mix, testN, 3, lat)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Errorf("slowdown not increasing at latency %d: %v after %v", lat, s, prev)
		}
		prev = s
		slow[lat] = s
	}
	if slow[4] < 0.008 || slow[4] > 0.025 {
		t.Errorf("x264 latency-4 slowdown = %.3f%%, want ≈1.6%%", slow[4]*100)
	}
	if slow[30] < 0.30 || slow[30] > 0.65 {
		t.Errorf("x264 latency-30 slowdown = %.1f%%, want ≈46%%", slow[30]*100)
	}
	// Sub-linear onset: the first +1 cycle costs much less than 1/27 of
	// the +27-cycle slowdown would suggest linearly... in fact the curve
	// is super-linear at the start because OoO hides small bumps.
	if slow[4] > slow[30]/27*3 {
		t.Errorf("latency-4 slowdown %.4f not hidden relative to linear extrapolation %.4f",
			slow[4], slow[30]/27)
	}
}

func TestGeomeanSlowdownSmall(t *testing.T) {
	// §6.1: the average slowdown of the 4-cycle IMUL over SPEC CPU2017
	// is ≈0.03 % (σ 0.15). Our model lands under 0.15 %.
	cfg := DefaultConfig()
	var sumLog float64
	var n int
	for _, b := range workload.SPEC() {
		s, err := Slowdown(cfg, b.Mix(), testN, 3, 4)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		sumLog += math.Log1p(s)
		n++
	}
	geo := math.Expm1(sumLog / float64(n))
	if geo < 0 || geo > 0.0015 {
		t.Errorf("geomean latency-4 slowdown = %.4f%%, want ≈0.03%% (<0.15%%)", geo*100)
	}
}

func TestX264WorstCase(t *testing.T) {
	// 525.x264 must be the benchmark most affected by the hardened IMUL
	// (0.99 % IMUL density vs 0.07 % average).
	cfg := DefaultConfig()
	var worst string
	var worstS float64
	for _, b := range workload.SPEC() {
		s, err := Slowdown(cfg, b.Mix(), testN, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s > worstS {
			worst, worstS = b.Name, s
		}
	}
	if worst != "525.x264" {
		t.Errorf("worst benchmark = %s (%.3f%%), want 525.x264", worst, worstS*100)
	}
}

func TestSlowdownZeroWhenNoIMUL(t *testing.T) {
	cfg := DefaultConfig()
	mix := map[isa.Opcode]float64{isa.OpALU: 0.7, isa.OpLoad: 0.3}
	s, err := Slowdown(cfg, mix, testN, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("slowdown %v for an IMUL-free mix, want exactly 0", s)
	}
}

func TestMixSamplerShares(t *testing.T) {
	mix := map[isa.Opcode]float64{isa.OpALU: 3, isa.OpIMUL: 1}
	s, err := newMixSampler(mix)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.share(isa.OpIMUL); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("share(IMUL) = %v, want 0.25", got)
	}
	if got := s.share(isa.OpALU); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("share(ALU) = %v, want 0.75", got)
	}
	if got := s.share(isa.OpVOR); got != 0 {
		t.Errorf("share of absent op = %v", got)
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// With a tiny ROB, a long-latency load blocks retirement and drags
	// IPC down versus a big ROB.
	small := DefaultConfig()
	small.ROB = 8
	big := DefaultConfig()
	mix := map[isa.Opcode]float64{isa.OpALU: 0.8, isa.OpLoad: 0.2}
	rs, err := Simulate(small, mix, testN, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(big, mix, testN, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.IPC >= rb.IPC {
		t.Errorf("ROB=8 IPC %v not below ROB=192 IPC %v", rs.IPC, rb.IPC)
	}
}
