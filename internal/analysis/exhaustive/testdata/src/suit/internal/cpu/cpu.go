// Package cpu checks the unexported evKind enum, switchable only from
// inside its declaring package.
package cpu

type evKind uint8

const (
	evNone evKind = iota
	evSched
	evDone
)

func dispatch(k evKind) int {
	switch k { // want `switch on evKind is missing cases evNone`
	case evSched:
		return 1
	case evDone:
		return 2
	}
	return 0
}

func dispatchAll(k evKind) int {
	switch k {
	case evNone:
		return 0
	case evSched:
		return 1
	case evDone:
		return 2
	}
	return -1
}
