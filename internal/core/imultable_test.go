package core

import (
	"math"
	"testing"

	"suit/internal/uarch"
	"suit/internal/workload"
)

// TestIMULTableMatchesLiveStudy pins the baked hardened-IMUL slowdown
// table to the live out-of-order study bit for bit: every shipped
// workload must have a table entry, and every table entry must equal
// exactly what uarch.Slowdown computes for that mix today. A model or
// mix change that shifts any slowdown by even one ulp fails here until
// the table is regenerated.
func TestIMULTableMatchesLiveStudy(t *testing.T) {
	covered := make(map[[2]uint64]bool, len(imulBaked))
	for _, b := range workload.All() {
		key := imulMixKey(b)
		baked, ok := imulBaked[key]
		if !ok {
			t.Errorf("%s: no baked entry for mix key %#x", b.Name, key)
			continue
		}
		covered[key] = true
		live, err := uarch.Slowdown(uarch.DefaultConfig(), b.Mix(), 200_000, 1, 4)
		if err != nil {
			t.Fatalf("%s: live study: %v", b.Name, err)
		}
		if live < 0 {
			live = 0 // IMULOverheadFor's clamp
		}
		if math.Float64bits(live) != baked {
			t.Errorf("%s: baked 0x%016x (%g) != live 0x%016x (%g); regenerate imultable.go",
				b.Name, baked, math.Float64frombits(baked), math.Float64bits(live), live)
		}
	}
	for key := range imulBaked {
		if !covered[key] {
			t.Errorf("stale baked entry %#x matches no shipped workload", key)
		}
	}
}

// TestIMULOverheadForCustomMixFallsThrough ensures a mix that is not in
// the baked table still takes the live computation path.
func TestIMULOverheadForCustomMixFallsThrough(t *testing.T) {
	b := workload.Nginx()
	b.Name = "custom-imul-test"
	b.IMULFraction = 0.0123 // not a shipped value: misses the baked table
	if _, ok := imulBaked[imulMixKey(b)]; ok {
		t.Fatal("test premise broken: custom mix unexpectedly present in baked table")
	}
	got, err := IMULOverheadFor(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := uarch.Slowdown(uarch.DefaultConfig(), b.Mix(), 200_000, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want < 0 {
		want = 0
	}
	if got != want {
		t.Errorf("custom mix: IMULOverheadFor %g != live study %g", got, want)
	}
}
