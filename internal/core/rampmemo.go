package core

import "sync/atomic"

// Process-wide toggle for the algebraic mid-ramp integration memo
// (internal/cpu's pair-keyed segment memo and exponent-specialized Pow
// kernel). On by default; suitsweep -rampmemo=false flips it off so the
// retained reference path voltPowIntegralsRef can be timed and diffed.
// Either setting produces bit-identical results — the knob trades only
// speed — so unlike SetBatchedExecution there is no cache state to
// reset when it flips.
var rampMemoOff atomic.Bool

// SetRampMemo enables or disables the mid-ramp integration memo for
// machines built by subsequent Run calls. Safe for concurrent use;
// machines already constructed keep the setting they were built with.
func SetRampMemo(on bool) {
	rampMemoOff.Store(!on)
}

// rampMemoEnabled reports the current process-wide setting.
func rampMemoEnabled() bool {
	return !rampMemoOff.Load()
}
