package cpu

import (
	"testing"

	"suit/internal/isa"
	"suit/internal/trace"
	"suit/internal/units"
)

// benchOp cycles the faultable set for variety.
var benchOpIdx int

func benchOp() isa.Opcode {
	ops := isa.Faultable()
	benchOpIdx++
	return ops[benchOpIdx%len(ops)]
}

// BenchmarkMachineEventLoop measures the simulator's own throughput: trap
// events processed per wall second — the quantity that sets how long
// Table 6 regeneration takes.
func BenchmarkMachineEventLoop(b *testing.B) {
	const events = 10_000
	tr := &trace.Trace{Name: "bench", Total: uint64(events+1) * 500_000, IPC: 2}
	for i := uint64(0); i < events; i++ {
		tr.Events = append(tr.Events, trace.Event{Index: (i + 1) * 500_000, Op: benchOp()})
	}
	cfg := testConfig(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg, fvLite{deadline: units.Microseconds(30)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Exceptions == 0 {
			b.Fatal("no traps simulated")
		}
		b.ReportMetric(float64(res.Exceptions), "traps")
	}
}
