package core

import (
	"fmt"

	"suit/internal/dvfs"
	"suit/internal/metrics"
	"suit/internal/power"
	"suit/internal/units"
	"suit/internal/workload"
)

// Cell is one aggregate of Table 6: power, performance and efficiency
// changes relative to the pre-SUIT baseline.
type Cell struct {
	Pwr  float64
	Perf float64
	Eff  float64
}

func cellOf(o Outcome) Cell {
	return Cell{Pwr: o.Change.Power, Perf: o.Change.Perf, Eff: o.Efficiency}
}

// SuiteResult is one Table 6 row: a CPU × core count × strategy × offset
// evaluated over SPEC CPU2017 plus the network workloads.
type SuiteResult struct {
	Chip       string
	Kind       StrategyKind
	Cores      int
	SpendAging bool

	PerBench map[string]Outcome // SPEC benchmarks with the row strategy

	SPECGmean  Cell
	SPECMedian Cell
	X264       Cell
	NoSIMD     Cell // every benchmark compiled without SIMD (§6.7)
	Nginx      Cell
	VLC        Cell

	// MeanEfficientShare is the average efficient-curve residency over
	// SPEC (the 72.7 % headline at −97 mV on 𝒞).
	MeanEfficientShare float64
}

// runParallel evaluates scenarios through the shared engine, keyed by
// workload name.
func runParallel(scs []Scenario) (map[string]Outcome, error) {
	outs, err := RunAll(scs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Outcome, len(outs))
	for _, o := range outs {
		out[o.Scenario.Bench.Name] = o
	}
	return out, nil
}

// EvaluateSuite produces one Table 6 row. instructions of 0 uses the
// defaults; smaller values speed up exploratory runs at some statistical
// cost.
func EvaluateSuite(chip dvfs.Chip, kind StrategyKind, cores int, spendAging bool, instructions uint64, seed uint64) (SuiteResult, error) {
	res := SuiteResult{Chip: chip.Name, Kind: kind, Cores: cores, SpendAging: spendAging}

	mk := func(b workload.Benchmark, k StrategyKind) Scenario {
		return Scenario{
			Chip: chip, Bench: b, Kind: k, Cores: cores,
			SpendAging: spendAging, Instructions: instructions, Seed: seed,
		}
	}

	var scs []Scenario
	for _, b := range workload.SPEC() {
		scs = append(scs, mk(b, kind))
	}
	outs, err := runParallel(scs)
	if err != nil {
		return res, err
	}
	res.PerBench = outs

	var perf, pwr, eff, share []float64
	for _, b := range workload.SPEC() {
		o := outs[b.Name]
		perf = append(perf, o.Change.Perf)
		pwr = append(pwr, o.Change.Power)
		eff = append(eff, o.Efficiency)
		share = append(share, o.EfficientShare)
	}
	if res.SPECGmean.Perf, err = metrics.GeomeanChange(perf); err != nil {
		return res, err
	}
	if res.SPECGmean.Pwr, err = metrics.GeomeanChange(pwr); err != nil {
		return res, err
	}
	if res.SPECGmean.Eff, err = metrics.GeomeanChange(eff); err != nil {
		return res, err
	}
	res.SPECMedian.Perf, _ = metrics.Median(perf)
	res.SPECMedian.Pwr, _ = metrics.Median(pwr)
	res.SPECMedian.Eff, _ = metrics.Median(eff)
	res.MeanEfficientShare, _ = metrics.Mean(share)
	res.X264 = cellOf(outs["525.x264"])

	// SPECnoSIMD column: every benchmark compiled without SIMD running
	// permanently on the efficient curve (identical for every strategy
	// row of a CPU; for the e rows the paper notes nothing is emulated).
	var nsScs []Scenario
	for _, b := range workload.SPEC() {
		nsScs = append(nsScs, mk(b, KindNoSIMD))
	}
	nsOuts, err := runParallel(nsScs)
	if err != nil {
		return res, err
	}
	var nsPerf, nsPwr, nsEff []float64
	for _, b := range workload.SPEC() {
		o := nsOuts[b.Name]
		nsPerf = append(nsPerf, o.Change.Perf)
		nsPwr = append(nsPwr, o.Change.Power)
		nsEff = append(nsEff, o.Efficiency)
	}
	res.NoSIMD.Perf, _ = metrics.GeomeanChange(nsPerf)
	res.NoSIMD.Pwr, _ = metrics.GeomeanChange(nsPwr)
	res.NoSIMD.Eff, _ = metrics.GeomeanChange(nsEff)

	// Network workloads with the row strategy (f and fV rows; the paper
	// reports them for e as well).
	netOuts, err := runParallel([]Scenario{mk(workload.Nginx(), kind), mk(workload.VLC(), kind)})
	if err != nil {
		return res, err
	}
	res.Nginx = cellOf(netOuts["nginx"])
	res.VLC = cellOf(netOuts["VLC"])
	return res, nil
}

// Table8Row reports, per CPU configuration, for how many SPEC benchmarks
// compiling without SIMD beats running the stock binary under SUIT (§6.7).
type Table8Row struct {
	Label        string
	NoSIMDBetter int
	SUITBetter   int
}

// CompareNoSIMD computes a Table 8 row from per-benchmark outcomes of the
// same chip/cores/offset under the row strategy and under noSIMD.
func CompareNoSIMD(chip dvfs.Chip, kind StrategyKind, cores int, spendAging bool, instructions uint64, seed uint64) (Table8Row, error) {
	row := Table8Row{Label: fmt.Sprintf("%s/%s", chip.Name, kind)}
	var scs []Scenario
	for _, b := range workload.SPEC() {
		for _, k := range []StrategyKind{kind, KindNoSIMD} {
			scs = append(scs, Scenario{Chip: chip, Bench: b, Kind: k, Cores: cores,
				SpendAging: spendAging, Instructions: instructions, Seed: seed})
		}
	}
	outs, err := RunAll(scs)
	if err != nil {
		return row, err
	}
	for i := 0; i < len(outs); i += 2 {
		suit, ns := outs[i], outs[i+1]
		if ns.Change.Perf > suit.Change.Perf {
			row.NoSIMDBetter++
		} else {
			row.SUITBetter++
		}
	}
	return row, nil
}

// UndervoltPoint is one Table 2 / Fig 12 measurement: the steady-state
// response of a chip to a raw undervolt under its TDP, with all cores
// active — no SUIT machinery involved.
type UndervoltPoint struct {
	Offset   units.Volt
	Score    float64 // relative score change (frequency-bound workloads)
	Power    float64 // relative package power change
	Freq     float64 // relative sustained frequency change
	Eff      float64
	AbsFreq  units.Hertz
	AbsPower units.Watt
}

// UndervoltResponse computes the §5.4 response analytically from the chip
// model: the sustainable p-state shifts up as the undervolt frees TDP
// headroom, and package power follows the voltage exponent.
func UndervoltResponse(chip dvfs.Chip, offset units.Volt) UndervoltPoint {
	pkg := func(f units.Hertz, v units.Volt) units.Watt {
		cores := make([]power.CoreState, chip.Cores)
		for i := range cores {
			cores[i] = power.CoreState{V: v, F: f, Activity: 1}
		}
		return chip.Power.Package(cores)
	}
	base := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	uv := chip.SustainableState(chip.Vendor, offset, chip.Cores)
	basePower := pkg(base.F, base.V)
	uvPower := pkg(uv.F, uv.V+offset)
	ch := metrics.Change{
		Perf:  float64(uv.F)/float64(base.F) - 1,
		Power: float64(uvPower)/float64(basePower) - 1,
	}
	return UndervoltPoint{
		Offset:   offset,
		Score:    ch.Perf,
		Power:    ch.Power,
		Freq:     ch.Perf,
		Eff:      ch.Efficiency(),
		AbsFreq:  uv.F,
		AbsPower: uvPower,
	}
}
