package main

import (
	"os"
	"testing"

	"suit/internal/report"
	"suit/internal/trace"
	"suit/internal/workload"
)

func TestExperimentRegistryUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if e.id == "" || e.desc == "" || e.run == nil {
			t.Errorf("experiment %+v incomplete", e.id)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	// Every table and figure of the paper must be covered.
	for _, id := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig16",
		"security", "delays", "aging", "covert", "baselines", "sched", "variance",
	} {
		if !seen[id] {
			t.Errorf("experiment %q missing from the registry", id)
		}
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	// The non-simulation experiments must run clean end to end.
	c := cfg{quick: true, seed: 1, specInstr: 50_000_000, netInstr: 20_000_000}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, id := range []string{"table1", "delays", "table2", "fig12", "fig13", "table3", "aging", "table4", "table5", "fig8", "fig9", "fig10", "fig11"} {
		for _, e := range experiments {
			if e.id != id {
				continue
			}
			if err := e.run(c, devnull); err != nil {
				t.Errorf("%s: %v", id, err)
			}
		}
	}
}

func TestDownsample(t *testing.T) {
	s := report.Series{Name: "x"}
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	ds := downsample(s, 10)
	if ds.Len() != 10 {
		t.Fatalf("downsampled to %d points", ds.Len())
	}
	if ds.X[0] != 0 {
		t.Errorf("first point %v", ds.X[0])
	}
	// Short series pass through untouched.
	short := report.Series{X: []float64{1}, Y: []float64{2}}
	if got := downsample(short, 10); got.Len() != 1 {
		t.Error("short series resampled")
	}
}

func TestDownsampleMaxKeepsSpikes(t *testing.T) {
	s := report.Series{Name: "spiky"}
	for i := 0; i < 100; i++ {
		y := 1.0
		if i == 57 {
			y = 99 // the spike must survive
		}
		s.Add(float64(i), y)
	}
	ds := downsampleMax(s, 10)
	if ds.Len() != 10 {
		t.Fatalf("downsampled to %d points", ds.Len())
	}
	found := false
	for i := range ds.Y {
		if ds.Y[i] == 99 {
			found = true
		}
	}
	if !found {
		t.Error("max-downsampling lost the spike")
	}
}

func TestTraceGapSeries(t *testing.T) {
	tr, err := workload.VLC().GenerateTrace(5_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := traceGapSeries(tr, "test")
	if s.Len() != len(tr.Events) {
		t.Fatalf("series has %d points for %d events", s.Len(), len(tr.Events))
	}
	for i, y := range s.Y {
		if y < 0 {
			t.Fatalf("negative log gap at %d", i)
		}
	}
	// Zero-gap events (back to back) produce 0, not -inf.
	var zeroTr trace.Trace
	zeroTr.Total = 10
	zeroTr.IPC = 1
	s2 := traceGapSeries(&zeroTr, "empty")
	if s2.Len() != 0 {
		t.Error("empty trace produced points")
	}
}

func TestTable6ConfigsMatchPaperRows(t *testing.T) {
	rows := table6Configs()
	if len(rows) != 6 {
		t.Fatalf("%d Table 6 rows, want 6", len(rows))
	}
	// 𝒜 appears with 1 and 4 cores; ℬ with f and e; 𝒞 with fV.
	if rows[0].cores != 1 || rows[1].cores != 4 {
		t.Error("𝒜 core counts wrong")
	}
	if rows[3].kind != "f" || rows[4].kind != "e" {
		t.Error("ℬ strategies wrong")
	}
	if rows[5].kind != "fV" {
		t.Error("𝒞 strategy wrong")
	}
}

func TestAllChips(t *testing.T) {
	chips := allChips()
	if len(chips) != 4 {
		t.Fatalf("%d chips, want 4", len(chips))
	}
	for _, c := range chips {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
