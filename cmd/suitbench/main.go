// Command suitbench is the CI performance harness for the simulator's
// hot path. It runs the zero-allocation steady-state benchmarks
// (BenchmarkMachineHotPath in internal/cpu), times a smoke-sized
// suitsweep grid end to end, and writes the combined measurement to a
// JSON report (bench.json by default; CI derives a versioned name).
//
// The exit status is the regression gate, on two axes:
//
//   - any hot-path benchmark that reports a nonzero allocs/op fails the
//     run, because a steady-state allocation is exactly the class of
//     regression the indexed event queue and Machine.Reset were built
//     to eliminate;
//   - with -compare BASELINE.json, a smoke-sweep throughput below 85%
//     of the baseline report's points/s fails the run, so the committed
//     baseline pins a trajectory every PR must hold;
//   - also with -compare, any hot-path benchmark whose min ns/op
//     exceeds 125% of its baseline entry fails the run (benchmarks
//     absent from the baseline are skipped, so adding one never
//     requires editing history).
//
// Each sweep leg's report records the mid-ramp integration memo's
// hit/miss/eviction counters and hit rates (ramp_memo), parsed from
// suitsweep's stderr telemetry.
//
// Usage:
//
//	suitbench [-out bench.json] [-compare BENCH_5.json] [-count 3] [-instr 2e6] [-skip-sweep]
//
// Run it from the repository root: it shells out to the go tool for the
// benchmarks and builds cmd/suitsweep for the throughput timing.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchStat aggregates the -count repetitions of one benchmark: the
// minimum ns/op (least-noise estimate) and the maximum allocs/op and
// B/op (the gate must see the worst repetition).
type benchStat struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	MaxAllocsOp float64 `json:"max_allocs_per_op"`
	MaxBytesOp  float64 `json:"max_bytes_per_op"`
}

// rampMemoStat records the mid-ramp integration memo's effectiveness
// for one sweep leg, parsed from suitsweep's stderr telemetry line.
// Rates are hits/(hits+misses); cold sweeps sit near zero (no endpoint
// recurrence — the speedup there is the exponent-specialized kernel),
// warm Reset replays near one.
type rampMemoStat struct {
	PairHits      uint64  `json:"pair_hits"`
	PairMisses    uint64  `json:"pair_misses"`
	PairEvictions uint64  `json:"pair_evictions"`
	PowHits       uint64  `json:"pow_hits"`
	PowMisses     uint64  `json:"pow_misses"`
	PowEvictions  uint64  `json:"pow_evictions"`
	PairHitRate   float64 `json:"pair_hit_rate"`
	PowHitRate    float64 `json:"pow_hit_rate"`
}

// sweepStat is the end-to-end throughput of a cold smoke sweep: the
// full 240-parameter × 5-workload grid (1200 scenario points) at a
// reduced instruction count.
type sweepStat struct {
	Points       int           `json:"points"`
	Instructions uint64        `json:"instructions_per_point"`
	Seconds      float64       `json:"seconds"`
	PointsPerSec float64       `json:"points_per_sec"`
	Workers      int           `json:"workers"`
	RampMemo     *rampMemoStat `json:"ramp_memo,omitempty"`
}

type report struct {
	GoVersion  string      `json:"go_version"`
	BenchCount int         `json:"bench_count"`
	Benchmarks []benchStat `json:"benchmarks"`
	// Sweep is the headline batched-execution throughput; SweepUnbatched
	// repeats the grid with -batch=false (no shared trace artifacts, no
	// co-stepped machines), so the report tracks both the amortized and
	// the per-point cost PR over PR.
	Sweep          *sweepStat `json:"sweep,omitempty"`
	SweepUnbatched *sweepStat `json:"sweep_unbatched,omitempty"`
	AllocFree      bool       `json:"steady_state_alloc_free"`
	ElapsedSecs    float64    `json:"harness_seconds"`
}

func main() { os.Exit(run()) }

func run() int {
	var (
		out       = flag.String("out", "bench.json", "JSON report path")
		compare   = flag.String("compare", "", "baseline report to gate against: fail if sweep points/s drops more than 15% below it")
		count     = flag.Int("count", 3, "benchmark repetitions (-count for go test)")
		benchPat  = flag.String("bench", "BenchmarkMachineHotPath", "benchmark pattern (-bench for go test)")
		instrStr  = flag.String("instr", "2e6", "instructions per sweep point for the smoke grid")
		workers   = flag.Int("j", runtime.GOMAXPROCS(0), "sweep workers")
		skipSweep = flag.Bool("skip-sweep", false, "measure only the benchmarks, not the smoke sweep")
	)
	flag.Parse()
	instrF, err := strconv.ParseFloat(*instrStr, 64)
	if err != nil || instrF < 1 {
		fmt.Fprintf(os.Stderr, "bad -instr %q\n", *instrStr)
		return 2
	}

	start := time.Now()
	rep := report{GoVersion: runtime.Version(), BenchCount: *count, AllocFree: true}

	stats, err := runBenchmarks(*benchPat, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitbench:", err)
		return 1
	}
	rep.Benchmarks = stats

	if !*skipSweep {
		sw, err := runSmokeSweep(uint64(instrF), *workers, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suitbench:", err)
			return 1
		}
		rep.Sweep = sw
		fmt.Printf("smoke sweep (batched):   %d points in %.2fs = %.1f points/s (instr=%s, j=%d)\n",
			sw.Points, sw.Seconds, sw.PointsPerSec, *instrStr, *workers)
		swu, err := runSmokeSweep(uint64(instrF), *workers, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suitbench:", err)
			return 1
		}
		rep.SweepUnbatched = swu
		fmt.Printf("smoke sweep (unbatched): %d points in %.2fs = %.1f points/s (instr=%s, j=%d)\n",
			swu.Points, swu.Seconds, swu.PointsPerSec, *instrStr, *workers)
	}

	code := 0
	for _, s := range stats {
		fmt.Printf("%-50s %12.0f ns/op %8.0f B/op %6.0f allocs/op (%d runs)\n",
			s.Name, s.MinNsPerOp, s.MaxBytesOp, s.MaxAllocsOp, s.Runs)
		if s.MaxAllocsOp > 0 {
			fmt.Fprintf(os.Stderr, "suitbench: FAIL: %s allocates %.0f allocs/op in steady state, want 0\n",
				s.Name, s.MaxAllocsOp)
			rep.AllocFree = false
			code = 1
		}
	}
	if len(stats) == 0 {
		fmt.Fprintf(os.Stderr, "suitbench: no benchmarks matched %q\n", *benchPat)
		return 1
	}

	if *compare != "" {
		if err := compareBaseline(*compare, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "suitbench: FAIL:", err)
			code = 1
		}
	}

	rep.ElapsedSecs = time.Since(start).Seconds()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitbench:", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "suitbench:", err)
		return 1
	}
	fmt.Printf("report written to %s\n", *out)
	return code
}

// regressionFloor is the fraction of the baseline's sweep throughput a
// run must hold: below 85% (a >15% regression) the gate fails.
const regressionFloor = 0.85

// nsCeiling is the per-benchmark time budget relative to the baseline:
// a hot-path benchmark whose min ns/op exceeds 125% of the committed
// baseline's fails the gate. Looser than the sweep floor because 1x
// micro-benchmark repetitions are noisier than a 1200-point wall-clock
// measurement.
const nsCeiling = 1.25

// gateBenchmarks gates each measured benchmark's min ns/op against the
// baseline report. A benchmark missing from the baseline is noted and
// skipped (new benchmarks must not require a baseline edit to land);
// unusable values — zero, negative, NaN, Inf — fail loudly on either
// side rather than producing a vacuous ceiling.
func gateBenchmarks(path string, base, cur []benchStat) error {
	baseline := make(map[string]benchStat, len(base))
	for _, b := range base {
		baseline[b.Name] = b
	}
	for _, c := range cur {
		b, ok := baseline[c.Name]
		if !ok {
			fmt.Printf("compare (bench): %s has no baseline in %s; skipped\n", c.Name, path)
			continue
		}
		if math.IsInf(b.MinNsPerOp, 0) || !(b.MinNsPerOp > 0) {
			return fmt.Errorf("baseline %s in %s has unusable ns/op %v; refusing a vacuous gate", c.Name, path, b.MinNsPerOp)
		}
		if math.IsInf(c.MinNsPerOp, 0) || !(c.MinNsPerOp > 0) {
			return fmt.Errorf("this run's %s has unusable ns/op %v; refusing a vacuous gate", c.Name, c.MinNsPerOp)
		}
		ceiling := b.MinNsPerOp * nsCeiling
		fmt.Printf("compare (bench): %-44s %12.0f ns/op vs baseline %12.0f (ceiling %.0f = +25%%)\n",
			c.Name, c.MinNsPerOp, b.MinNsPerOp, ceiling)
		if c.MinNsPerOp > ceiling {
			return fmt.Errorf("%s regressed >25%%: %.0f ns/op > ceiling %.0f (baseline %.0f in %s)",
				c.Name, c.MinNsPerOp, ceiling, b.MinNsPerOp, path)
		}
	}
	return nil
}

// checkThroughput rejects a sweep stat whose points/s cannot gate
// anything: missing, zero, negative, NaN or Inf. A corrupt baseline
// used to slip through as floor = 0.85 × 0, making the gate vacuous —
// it must fail loudly instead.
func checkThroughput(what, path string, s *sweepStat) error {
	if s == nil {
		return fmt.Errorf("%s in %s has no sweep measurement", what, path)
	}
	pps := s.PointsPerSec
	if math.IsInf(pps, 0) || !(pps > 0) { // !(x > 0) also catches NaN
		return fmt.Errorf("%s in %s has unusable sweep throughput %v points/s; refusing a vacuous gate", what, path, pps)
	}
	return nil
}

// gateLeg gates one measured sweep leg against its baseline stat.
func gateLeg(leg, path string, cur, base *sweepStat) error {
	if err := checkThroughput("baseline ("+leg+")", path, base); err != nil {
		return err
	}
	if err := checkThroughput("this run ("+leg+")", "current report", cur); err != nil {
		return err
	}
	floor := base.PointsPerSec * regressionFloor
	fmt.Printf("compare (%s): %.1f points/s vs baseline %.1f from %s (floor %.1f = -15%%)\n",
		leg, cur.PointsPerSec, base.PointsPerSec, path, floor)
	if cur.PointsPerSec < floor {
		return fmt.Errorf("%s sweep throughput regressed >15%%: %.1f points/s < floor %.1f (baseline %.1f in %s)",
			leg, cur.PointsPerSec, floor, base.PointsPerSec, path)
	}
	return nil
}

// compareBaseline gates the current report's smoke-sweep throughput —
// both the batched and the unbatched leg — against a committed baseline
// report. Baselines older than the batched-execution split carry a
// single sweep stat; both legs gate against it then (the pre-split
// sweep was unbatched, so that floor is conservative for the batched
// leg and exact for the unbatched one).
func compareBaseline(path string, rep *report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if err := gateBenchmarks(path, base.Benchmarks, rep.Benchmarks); err != nil {
		return err
	}
	if rep.Sweep == nil && rep.SweepUnbatched == nil {
		return fmt.Errorf("this run skipped the smoke sweep (-skip-sweep); cannot compare against %s", path)
	}
	if err := gateLeg("batched", path, rep.Sweep, base.Sweep); err != nil {
		return err
	}
	baseUnbatched := base.SweepUnbatched
	if baseUnbatched == nil {
		baseUnbatched = base.Sweep
	}
	return gateLeg("unbatched", path, rep.SweepUnbatched, baseUnbatched)
}

// runBenchmarks shells out to go test and aggregates the repetitions.
func runBenchmarks(pattern string, count int) ([]benchStat, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", "1x", "-count", strconv.Itoa(count),
		"./internal/cpu")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, buf.String())
	}
	byName := map[string]*benchStat{}
	var order []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		s, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		agg, seen := byName[s.Name]
		if !seen {
			cp := s
			byName[s.Name] = &cp
			order = append(order, s.Name)
			continue
		}
		agg.Runs += s.Runs
		agg.MinNsPerOp = min(agg.MinNsPerOp, s.MinNsPerOp)
		agg.MaxAllocsOp = max(agg.MaxAllocsOp, s.MaxAllocsOp)
		agg.MaxBytesOp = max(agg.MaxBytesOp, s.MaxBytesOp)
	}
	var stats []benchStat
	for _, name := range order {
		stats = append(stats, *byName[name])
	}
	return stats, nil
}

// parseBenchLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkMachineHotPath/dense-trap-8  1  2049713 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (benchStat, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchStat{}, false
	}
	s := benchStat{Name: trimCPUSuffix(f[0]), Runs: 1}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchStat{}, false
		}
		switch f[i+1] {
		case "ns/op":
			s.MinNsPerOp = v
		case "B/op":
			s.MaxBytesOp = v
		case "allocs/op":
			s.MaxAllocsOp = v
		}
	}
	return s, s.MinNsPerOp > 0
}

// trimCPUSuffix drops go test's trailing -<GOMAXPROCS> so repetitions
// aggregate under a stable name across machines.
func trimCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// runSmokeSweep builds cmd/suitsweep and times a cold full-grid run at
// a smoke instruction count. 240 parameter points × 5 workloads = 1200
// scenario points; the binary prints its ranking to stdout, which the
// harness discards — only wall time matters here. batch selects the
// suitsweep execution mode (shared trace artifacts + co-stepped
// machines vs fully independent points; output bytes are identical).
func runSmokeSweep(instr uint64, workers int, batch bool) (*sweepStat, error) {
	dir, err := os.MkdirTemp("", "suitbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "suitsweep")
	build := exec.Command("go", "build", "-o", bin, "./cmd/suitsweep")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building suitsweep: %w", err)
	}

	sweep := exec.Command(bin, "-chip", "C",
		"-instr", strconv.FormatUint(instr, 10),
		"-batch="+strconv.FormatBool(batch),
		"-j", strconv.Itoa(workers))
	sweep.Stdout = nil // ranking discarded; determinism is tested elsewhere
	// Tee stderr: the operator still sees suitsweep's progress, and the
	// harness parses the rampmemo telemetry line out of the copy.
	var errBuf bytes.Buffer
	sweep.Stderr = io.MultiWriter(os.Stderr, &errBuf)
	start := time.Now()
	if err := sweep.Run(); err != nil {
		return nil, fmt.Errorf("suitsweep smoke run: %w", err)
	}
	elapsed := time.Since(start).Seconds()

	const points = 240 * 5
	return &sweepStat{
		Points:       points,
		Instructions: instr,
		Seconds:      elapsed,
		PointsPerSec: float64(points) / elapsed,
		Workers:      workers,
		RampMemo:     parseRampMemoLine(&errBuf),
	}, nil
}

// parseRampMemoLine extracts the memo counters from suitsweep's stderr
// telemetry line:
//
//	suitsweep: rampmemo pair_hits=12 pair_misses=34 ... pow_evictions=0
//
// Returns nil when the line is absent (older binary) — telemetry is
// best-effort and never fails the harness.
func parseRampMemoLine(buf *bytes.Buffer) *rampMemoStat {
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line, ok := strings.CutPrefix(sc.Text(), "suitsweep: rampmemo ")
		if !ok {
			continue
		}
		vals := map[string]uint64{}
		for _, kv := range strings.Fields(line) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				continue
			}
			vals[k] = n
		}
		st := &rampMemoStat{
			PairHits:      vals["pair_hits"],
			PairMisses:    vals["pair_misses"],
			PairEvictions: vals["pair_evictions"],
			PowHits:       vals["pow_hits"],
			PowMisses:     vals["pow_misses"],
			PowEvictions:  vals["pow_evictions"],
		}
		if t := st.PairHits + st.PairMisses; t > 0 {
			st.PairHitRate = float64(st.PairHits) / float64(t)
		}
		if t := st.PowHits + st.PowMisses; t > 0 {
			st.PowHitRate = float64(st.PowHits) / float64(t)
		}
		return st
	}
	return nil
}
