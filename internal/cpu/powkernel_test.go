package cpu

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"suit/internal/units"
)

// kernelExponents is the differential-test exponent set: the shipped
// voltExp (3.5, the specialized pow35 kernel), other powGeneric shapes
// (integer parts with varied bit patterns, fractional parts on both
// sides of the 0.5 carry), and every powFallback class the constructor
// must route back to math.Pow.
var kernelExponents = []float64{
	3.5, 2, 2.5, 3, 1.2, 0.7, 7.25, 10.0 / 3, 33.75, 127,
	1, 0.5, 0, -1.5, -0.5, math.Inf(1), math.Inf(-1), math.NaN(),
}

// kernelInputs returns a differential corpus for one rng: the dense
// realizable voltage band, a log-uniform sweep across the whole binade
// range, ulp-stepped neighbourhoods of the algebraically special points,
// and the explicit special values.
func kernelInputs(rng *rand.Rand) []float64 {
	xs := make([]float64, 0, 4096)
	// Realizable voltages: every value the simulator can actually ask for.
	for i := 0; i < 1200; i++ {
		xs = append(xs, 0.4+rng.Float64())
	}
	// Log-uniform wide: magnitudes from ~1e-90 to ~1e+90.
	for i := 0; i < 1200; i++ {
		xs = append(xs, math.Exp2((rng.Float64()-0.5)*600))
	}
	// Ulp walks around 1, 0.5 and 2 (the mantissa/exponent split edges).
	for _, center := range []float64{1, 0.5, 2} {
		x := center
		for i := 0; i < 64; i++ {
			x = math.Nextafter(x, 2*center)
			xs = append(xs, x)
		}
		x = center
		for i := 0; i < 64; i++ {
			x = math.Nextafter(x, 0)
			xs = append(xs, x)
		}
	}
	// Exact powers of two, including extremes near overflow/underflow.
	for _, e := range []int{-1074, -1073, -1022, -1021, -512, -1, 0, 1, 511, 1022, 1023} {
		xs = append(xs, math.Ldexp(1, e))
	}
	// Specials and out-of-regime classes.
	xs = append(xs,
		0, math.Copysign(0, -1), 1, -1, -0.75, -2.5,
		math.Inf(1), math.Inf(-1), math.NaN(),
		5e-324, 1e-310, -5e-324,
		math.MaxFloat64, -math.MaxFloat64,
	)
	return xs
}

// TestPowKernelMatchesMathPow is the tentpole's bit-identity proof for
// the exponent-specialized kernel: for every exponent shape and a wide
// randomized input corpus, eval must return the exact bits math.Pow
// returns.
func TestPowKernelMatchesMathPow(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 10))
	xs := kernelInputs(rng)
	for _, exp := range kernelExponents {
		k := newPowKernel(exp)
		for _, x := range xs {
			got := k.eval(x)
			want := math.Pow(x, exp)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("eval(%g [0x%016x], exp=%g): got %g [0x%016x], math.Pow %g [0x%016x]",
					x, math.Float64bits(x), exp,
					got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestPowKernelKinds pins the constructor's strategy resolution.
func TestPowKernelKinds(t *testing.T) {
	cases := []struct {
		exp  float64
		kind powKind
	}{
		{3.5, pow35},
		{2.5, powGeneric}, // yi=2, yf=0.5: not the specialized shape
		{2, powGeneric},
		{1.2, powGeneric},
		{7.25, powGeneric},
		{1, powFallback},
		{0.5, powFallback},
		{0, powFallback},
		{-1.5, powFallback},
		{math.Inf(1), powFallback},
		{math.NaN(), powFallback},
	}
	for _, c := range cases {
		if k := newPowKernel(c.exp); k.kind != c.kind {
			t.Errorf("newPowKernel(%g).kind = %d, want %d", c.exp, k.kind, c.kind)
		}
	}
}

// rampDomain builds a bare domain with the given linear ramp state, the
// minimum integrate and voltPowIntegralsRef need.
func rampDomain(volt, voltGoal float64, voltT0, voltT1 units.Second) *domain {
	return &domain{
		volt:     units.Volt(volt),
		voltGoal: units.Volt(voltGoal),
		voltT0:   voltT0,
		voltT1:   voltT1,
	}
}

// FuzzVoltPowIntegrals fuzzes the memoized mid-ramp integration against
// the retained reference path: for arbitrary ramp state, query window
// and exponent, rampMemo.integrate must return bit-identical integrals
// to voltPowIntegralsRef — including across repeat queries that turn
// memo hits, and including the chain-cache interplay. It also pins the
// exp == 2 invariant ie == i2.
func FuzzVoltPowIntegrals(f *testing.F) {
	f.Add(0.0, 1e-6, 0.0, 1e-6, 0.95, 0.80, 3.5)
	f.Add(1e-7, 9e-7, 0.0, 1e-6, 0.80, 0.95, 3.5)
	f.Add(0.0, 1e-6, 2e-7, 8e-7, 1.05, 0.75, 2.0)
	f.Add(0.0, 5e-7, 0.0, 0.0, 0.9, 0.9, 2.5)
	f.Add(-1e-7, 1e-6, -2e-7, 1.2e-6, 0.7, 1.3, 7.25)
	f.Fuzz(func(t *testing.T, t0, t1, vT0, vT1, volt, goal, exp float64) {
		// Reject windows and ramps the simulator cannot produce:
		// non-finite state, or a reversed query window.
		for _, v := range []float64{t0, t1, vT0, vT1, volt, goal, exp} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		if t1 < t0 || vT1 < vT0 {
			t.Skip()
		}
		mm := newRampMemo(exp)
		dMemo := rampDomain(volt, goal, units.Second(vT0), units.Second(vT1))
		dRef := rampDomain(volt, goal, units.Second(vT0), units.Second(vT1))
		// Three rounds: cold (pair misses), warm (pair hits), and a
		// shifted window that exercises the chain cache both paths
		// carried out of round two.
		windows := [][2]units.Second{
			{units.Second(t0), units.Second(t1)},
			{units.Second(t0), units.Second(t1)},
			{units.Second(t1), units.Second(t1 + (t1 - t0))},
		}
		for round, w := range windows {
			gi2, gie := mm.integrate(dMemo, w[0], w[1])
			wi2, wie := dRef.voltPowIntegralsRef(w[0], w[1], exp)
			if math.Float64bits(gi2) != math.Float64bits(wi2) ||
				math.Float64bits(gie) != math.Float64bits(wie) {
				t.Fatalf("round %d window [%g, %g] exp=%g: memo (%g [0x%016x], %g [0x%016x]) != ref (%g [0x%016x], %g [0x%016x])",
					round, float64(w[0]), float64(w[1]), exp,
					gi2, math.Float64bits(gi2), gie, math.Float64bits(gie),
					wi2, math.Float64bits(wi2), wie, math.Float64bits(wie))
			}
			if exp == 2 && math.Float64bits(gie) != math.Float64bits(gi2) {
				t.Fatalf("round %d: exp == 2 invariant violated: ie %g [0x%016x] != i2 %g [0x%016x]",
					round, gie, math.Float64bits(gie), gi2, math.Float64bits(gi2))
			}
		}
	})
}

// TestRampMemoHitsOnReplay checks the memo actually memoizes: replaying
// the same window hits the pair table and skips every kernel call.
func TestRampMemoHitsOnReplay(t *testing.T) {
	mm := newRampMemo(3.5)
	d := rampDomain(0.95, 0.80, 0, 1e-6)
	mm.integrate(d, 0, 5e-7)
	mm.integrate(d, 5e-7, 1e-6)
	if mm.pairMisses == 0 {
		t.Fatal("cold pass should miss")
	}
	misses, powMisses := mm.pairMisses, mm.powMisses
	d.pvOK = false // fresh replay state, as after Machine.Reset
	mm.integrate(d, 0, 5e-7)
	mm.integrate(d, 5e-7, 1e-6)
	if mm.pairMisses != misses {
		t.Errorf("replay added %d pair misses, want 0", mm.pairMisses-misses)
	}
	if mm.powMisses != powMisses {
		t.Errorf("replay added %d pow misses, want 0", mm.powMisses-powMisses)
	}
	if mm.pairHits == 0 {
		t.Error("replay recorded no pair hits")
	}
}

// TestRampMemoProbeCutoffAndRearm checks adaptive probing: a run with
// no recurrence stops probing after the window, and arm() (runInit)
// re-enables it so a warm replay still hits.
func TestRampMemoProbeCutoffAndRearm(t *testing.T) {
	mm := newRampMemo(3.5)
	d := rampDomain(0.95, 0.80, 0, 1)
	// memoProbeWindow distinct single-segment windows: all misses.
	for i := 0; i < memoProbeWindow; i++ {
		a := units.Second(float64(i) * 1e-6)
		mm.integrate(d, a, a+5e-7)
	}
	if mm.pairProbe {
		t.Fatal("pair probing still enabled after a zero-hit window")
	}
	stored := mm.pairMisses
	a := units.Second(0)
	mm.integrate(d, a, a+5e-7) // would hit, but probing is off
	if mm.pairHits != 0 {
		t.Fatal("disabled probe recorded a hit")
	}
	if mm.pairMisses != stored+1 {
		t.Fatal("disabled probe must still count lookups as misses")
	}
	mm.arm()
	mm.integrate(d, a, a+5e-7) // stored during the probe window: hits now
	if mm.pairHits == 0 {
		t.Fatal("re-armed probe did not hit a stored pair")
	}
}

// TestResetClearsVoltAndPowCaches is the Reset regression test: poison
// every per-domain value cache between two replays and require the
// results to stay identical. Before pvOK joined vcOK in Reset's clear
// list, the poisoned chain cache survived into the replay; with the
// ramp memo disabled the reference path then consumed the stale Pow
// value directly.
func TestResetClearsVoltAndPowCaches(t *testing.T) {
	for _, noMemo := range []bool{false, true} {
		name := "rampmemo"
		if noMemo {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(testTrace(2000, 40), testTrace(2000, 55))
			cfg.NoRampMemo = noMemo
			m, err := New(cfg, fvLite{})
			if err != nil {
				t.Fatal(err)
			}
			first, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 2; round++ {
				// Poison before Reset: Reset must clear all of it. pvV is
				// set to the base operating voltage — the first ramp's
				// actual start voltage — so a surviving chain cache would
				// feed a wrong Pow into the first mid-ramp segment.
				for _, d := range m.domains {
					d.pvOK = true
					d.pvV = float64(m.pts.Base.V)
					d.pvP = 123.456
					d.vcOK = true
					d.vcGoal = d.voltGoal
					d.vcV2 = 1e9
					d.vcVe = -1e9
					d.consVOK = true
					d.consVFreq = d.freq
					d.consV = 42
				}
				m.Reset()
				got, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, first) {
					t.Fatalf("NoRampMemo=%v round %d: replay after poisoned caches diverged from first run", noMemo, round)
				}
			}
		})
	}
}

// TestBatchSharesRampMemo pins NewBatch's eager memo sharing: members
// with the lead's exponent point at one table; a NoRampMemo member
// keeps nil.
func TestBatchSharesRampMemo(t *testing.T) {
	cfg := testConfig(testTrace(600, 40))
	a, err := New(cfg, fvLite{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, fvLite{})
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := cfg
	cfgOff.NoRampMemo = true
	c, err := New(cfgOff, fvLite{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatch([]*Machine{a, b, c}); err != nil {
		t.Fatal(err)
	}
	if a.memo == nil {
		t.Fatal("lead memo not built by NewBatch")
	}
	if b.memo != a.memo {
		t.Error("same-exponent member did not share the lead memo")
	}
	if c.memo != nil {
		t.Error("NoRampMemo member was given a memo")
	}
}
