package emul_test

import (
	"fmt"

	"suit/internal/emul"
)

// The constant-time AES emulation reproduces the FIPS-197 Appendix B
// vector — the computation a #DO handler would run in place of AESENC.
func ExampleEncryptAES128() {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	plain := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	fmt.Printf("%x\n", emul.EncryptAES128(key, plain))
	// Output:
	// 3925841d02dc09fbdc118597196a0b32
}

// Full AES-GCM sealed with the emulated instruction set (AESENC rounds +
// VPCLMULQDQ GHASH) — the operation inside nginx's TLS records.
func ExampleSealAESGCM() {
	var key [16]byte
	var nonce [12]byte
	sealed, err := emul.SealAESGCM(key, nonce, []byte("hi"), nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d bytes (2 ciphertext + 16 tag)\n", len(sealed))
	pt, err := emul.OpenAESGCM(key, nonce, sealed, nil)
	fmt.Printf("%s %v\n", pt, err)
	// Output:
	// 18 bytes (2 ciphertext + 16 tag)
	// hi <nil>
}
