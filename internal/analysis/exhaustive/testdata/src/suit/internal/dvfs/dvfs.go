// Package dvfs declares the guarded enum types for the exhaustive
// fixture (a stand-in for the real suit/internal/dvfs).
package dvfs

type CurveID uint8

const (
	Conservative CurveID = iota
	Efficient
)

type DomainKind uint8

const (
	SingleDomain DomainKind = iota
	PerCoreFreq
	PerCoreBoth
)
