// Package power implements the CMOS power model of §2.1 of the paper
// (P_dyn = C_L · V_DD² · f_CLK), a leakage term, an energy integrator for
// the event-driven simulation, and a RAPL-style quantised energy counter
// matching how the paper measures package power (§5.4).
package power

import (
	"errors"
	"fmt"
	"math"

	"suit/internal/units"
)

// Model is the package-level power model. The simulator treats the package
// as one uncore block plus n identical cores, each switching an effective
// load capacitance CoreCeff at its clock frequency.
type Model struct {
	// CoreCeff is the effective switched capacitance per core in farads:
	// the C_L of P_dyn = C_L · Vᵉ · f, already scaled by average activity.
	CoreCeff float64
	// LeakGV is the leakage conductance in siemens: P_leak = LeakGV · V².
	// Sub-threshold leakage grows faster than linearly with V; a quadratic
	// form keeps the model monotone and captures the curvature that
	// matters for undervolting studies.
	LeakGV float64
	// Uncore is the voltage/frequency-independent package floor (memory
	// controller, fabric, I/O).
	Uncore units.Watt
	// UncorePerCore is the uncore share that scales with active cores:
	// L3 slices and ring stops clock-gate with their core. It keeps
	// relative power savings comparable across core counts.
	UncorePerCore units.Watt
	// VoltExp is the effective voltage exponent e of the dynamic term.
	// Pure CMOS switching gives 2 (§2.1); measured package responses are
	// steeper because short-circuit currents and voltage-dependent
	// leakage ride on top — the paper's own Table 2 (−16 % power for a
	// −97 mV offset with +3.3 % frequency on the i9-9900K) implies an
	// effective exponent near 3.5, which the chip presets use. Zero
	// means the textbook value 2.
	VoltExp float64
}

// voltExp returns the effective exponent (default 2).
func (m Model) voltExp() float64 {
	if m.VoltExp == 0 {
		return 2
	}
	return m.VoltExp
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.CoreCeff <= 0 {
		return fmt.Errorf("power: CoreCeff must be positive, got %g", m.CoreCeff)
	}
	if m.LeakGV < 0 {
		return fmt.Errorf("power: LeakGV must be non-negative, got %g", m.LeakGV)
	}
	if m.Uncore < 0 {
		return fmt.Errorf("power: Uncore must be non-negative, got %v", m.Uncore)
	}
	if m.VoltExp < 0 || (m.VoltExp > 0 && m.VoltExp < 1) {
		return fmt.Errorf("power: VoltExp %v implausible", m.VoltExp)
	}
	if m.UncorePerCore < 0 {
		return fmt.Errorf("power: UncorePerCore must be non-negative, got %v", m.UncorePerCore)
	}
	return nil
}

// Dynamic returns the dynamic power of one core at the given supply voltage
// and clock frequency, scaled by activity ∈ [0, 1] (1 = fully loaded,
// 0 = clock-gated/stalled).
func (m Model) Dynamic(v units.Volt, f units.Hertz, activity float64) units.Watt {
	if activity < 0 {
		activity = 0
	} else if activity > 1 {
		activity = 1
	}
	//lint:allow units the dynamic-power law P = Ceff·Vᵉ·f is the defining cross-unit relation of this model
	return units.Watt(m.CoreCeff * math.Pow(float64(v), m.voltExp()) * float64(f) * activity)
}

// Leakage returns the static power of one core at the given voltage.
// Leakage flows whether or not the core is clocked.
func (m Model) Leakage(v units.Volt) units.Watt {
	//lint:allow units the leakage law P = G·V² is the defining cross-unit relation of this model
	return units.Watt(m.LeakGV * float64(v) * float64(v))
}

// Core returns the total power of one core.
func (m Model) Core(v units.Volt, f units.Hertz, activity float64) units.Watt {
	return m.Dynamic(v, f, activity) + m.Leakage(v)
}

// CoreState is one core's operating point for package aggregation.
type CoreState struct {
	V        units.Volt
	F        units.Hertz
	Activity float64
}

// Package returns the whole-package power for the given per-core states.
func (m Model) Package(cores []CoreState) units.Watt {
	p := m.Uncore
	for _, c := range cores {
		p += m.Core(c.V, c.F, c.Activity) + m.UncorePerCore
	}
	return p
}

// CalibrateCeff solves for CoreCeff such that a package with nCores fully
// active cores at (v, f) draws pkg watts given the model's LeakGV and
// Uncore. This is how the per-CPU models in internal/workload are fitted
// to the paper's measured package powers (Table 2, Fig 12).
func CalibrateCeff(pkg units.Watt, v units.Volt, f units.Hertz, nCores int, leakGV float64, uncore units.Watt) (float64, error) {
	return CalibrateCeffExp(pkg, v, f, nCores, leakGV, uncore, 2)
}

// CalibrateCeffExp is CalibrateCeff for a non-quadratic voltage exponent.
func CalibrateCeffExp(pkg units.Watt, v units.Volt, f units.Hertz, nCores int, leakGV float64, uncore units.Watt, exp float64) (float64, error) {
	if nCores <= 0 {
		return 0, errors.New("power: CalibrateCeff needs at least one core")
	}
	if v <= 0 || f <= 0 {
		return 0, fmt.Errorf("power: CalibrateCeff needs positive v and f, got %v, %v", v, f)
	}
	if exp <= 0 {
		exp = 2
	}
	perCore := (float64(pkg) - float64(uncore)) / float64(nCores)
	dyn := perCore - leakGV*float64(v)*float64(v)
	if dyn <= 0 {
		return 0, fmt.Errorf("power: package power %v too low for %d cores with leakage+uncore floor", pkg, nCores)
	}
	return dyn / (math.Pow(float64(v), exp) * float64(f)), nil
}

// Integrator accumulates energy over piecewise-constant power segments.
// The zero value is ready to use.
type Integrator struct {
	energy  units.Joule
	elapsed units.Second
}

// Add accounts for dt seconds at power p. Negative durations are rejected
// by panicking: they indicate a simulator time-ordering bug that must not
// be silently absorbed into energy totals.
func (i *Integrator) Add(p units.Watt, dt units.Second) {
	if dt < 0 {
		panic(fmt.Sprintf("power: negative duration %v", dt)) //lint:allow allocfree panic formatting on a time-ordering invariant; never taken on the steady path
	}
	i.energy += units.Energy(p, dt)
	i.elapsed += dt
}

// Energy returns the accumulated energy.
func (i *Integrator) Energy() units.Joule { return i.energy }

// Elapsed returns the accumulated time.
func (i *Integrator) Elapsed() units.Second { return i.elapsed }

// AveragePower returns energy/elapsed, or 0 before any time has passed.
func (i *Integrator) AveragePower() units.Watt {
	if i.elapsed == 0 {
		return 0
	}
	return units.Power(i.energy, i.elapsed)
}

// Reset clears the integrator.
func (i *Integrator) Reset() { *i = Integrator{} }

// RAPL models Intel's Running Average Power Limit energy counter
// (MSR_PKG_ENERGY_STATUS): a 32-bit cumulative counter in fixed energy
// units (default 61 µJ = 2⁻¹⁴ J) that wraps around. The paper reads RAPL
// for all power measurements; modelling the quantisation and wrap keeps
// the measurement path faithful.
type RAPL struct {
	unit    units.Joule
	residue units.Joule // energy deposited but below one unit
	counter uint32
}

// DefaultRAPLUnit is 2⁻¹⁴ J, the common Intel energy-status unit.
const DefaultRAPLUnit = units.Joule(1.0 / 16384)

// NewRAPL returns a RAPL counter with the given unit (DefaultRAPLUnit if 0).
func NewRAPL(unit units.Joule) *RAPL {
	if unit <= 0 {
		unit = DefaultRAPLUnit
	}
	return &RAPL{unit: unit}
}

// Unit returns the energy quantum of the counter.
func (r *RAPL) Unit() units.Joule { return r.unit }

// Deposit adds energy to the meter.
func (r *RAPL) Deposit(e units.Joule) {
	if e < 0 {
		panic(fmt.Sprintf("power: negative energy deposit %v", e)) //lint:allow allocfree panic formatting on a negative-energy invariant; never taken on the steady path
	}
	r.residue += e
	ticks := uint64(float64(r.residue) / float64(r.unit))
	if ticks > 0 {
		r.residue -= units.Joule(float64(ticks) * float64(r.unit))
		r.counter += uint32(ticks) // wraps like the hardware counter
	}
}

// Counter returns the current 32-bit counter value.
func (r *RAPL) Counter() uint32 { return r.counter }

// Reset clears the counter and residue, keeping the unit.
func (r *RAPL) Reset() { r.residue, r.counter = 0, 0 }

// EnergyBetween converts two counter readings (c0 taken before c1) to
// joules, handling a single wrap-around like RAPL consumers must.
func (r *RAPL) EnergyBetween(c0, c1 uint32) units.Joule {
	delta := c1 - c0 // uint32 arithmetic handles the wrap
	return units.Joule(float64(delta) * float64(r.unit))
}
