package main

import (
	"fmt"
	"math"
	"os"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/report"
	"suit/internal/trace"
	"suit/internal/uarch"
	"suit/internal/units"
	"suit/internal/workload"
)

// runTable1 prints the faultable-instruction table with the margins the
// guardband model assigns from it.
func runTable1(c cfg, w *os.File) error {
	gb := guardband.Default()
	t := report.NewTable("Table 1. Undervolting-induced instruction faults",
		"instruction", "faults", "class", "certified margin", "physical margin")
	for _, info := range isa.Table1() {
		t.AddRow(info.Name,
			fmt.Sprintf("%d", info.FaultCount),
			info.Class.String(),
			gb.Margin(info.Op, false).String(),
			gb.PhysicalMargin(info.Op, false).String())
	}
	return t.Render(w)
}

// runDelays prints the §5.2/§5.3 delay parameters per chip.
func runDelays(c cfg, w *os.File) error {
	t := report.NewTable("§5.2/§5.3. Measured delays driving the simulation",
		"CPU", "freq change", "freq stall", "volt change", "#DO entry", "emulation call")
	for _, chip := range allChips() {
		tm := chip.Transition
		t.AddRow(chip.Name, tm.FreqDelay.String(), tm.FreqStall.String(),
			tm.VoltDelay.String(), chip.ExceptionDelay.String(), chip.EmulCallDelay.String())
	}
	return t.Render(w)
}

func allChips() []dvfs.Chip {
	return []dvfs.Chip{
		dvfs.IntelI5_1035G1(), dvfs.IntelI9_9900K(),
		dvfs.AMDRyzen7700X(), dvfs.XeonSilver4208(),
	}
}

// runTable2 prints the undervolting response of every chip.
func runTable2(c cfg, w *os.File) error {
	t := report.NewTable("Table 2. Undervolting response (score, power, frequency, efficiency)",
		"CPU", "offset", "score", "power", "freq", "efficiency")
	for _, chip := range allChips() {
		for _, mv := range []float64{-70, -97} {
			p := core.UndervoltResponse(chip, units.MilliVolts(mv))
			t.AddRow(chip.Name, fmt.Sprintf("%.0f mV", mv),
				report.Pct(p.Score), report.Pct(p.Power), report.Pct(p.Freq), report.Pct(p.Eff))
		}
	}
	return t.Render(w)
}

// runFig12 prints the i9-9900K sweep over voltage offsets.
func runFig12(c cfg, w *os.File) error {
	chip := dvfs.IntelI9_9900K()
	score := report.Series{Name: "Fig 12: SPEC score increase (i9-9900K)", XLabel: "offset_mV", YLabel: "score_pct"}
	pwr := report.Series{Name: "Fig 12: mean package power (i9-9900K)", XLabel: "offset_mV", YLabel: "power_W"}
	freq := report.Series{Name: "Fig 12: mean frequency (i9-9900K)", XLabel: "offset_mV", YLabel: "freq_GHz"}
	for _, mv := range []float64{0, -40, -70, -97} {
		p := core.UndervoltResponse(chip, units.MilliVolts(mv))
		score.Add(mv, p.Score*100)
		pwr.Add(mv, float64(p.AbsPower))
		freq.Add(mv, p.AbsFreq.GHz())
	}
	for _, s := range []*report.Series{&score, &pwr, &freq} {
		if err := s.WriteCSV(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "shape: %s\n\n", s.Sparkline())
	}
	return nil
}

// runFig13 prints the vendor curve and the hardened-IMUL safe curve.
func runFig13(c cfg, w *os.File) error {
	vendor := dvfs.IntelI9_9900K().Vendor
	mod := guardband.HardenedIMULCurve(vendor)
	t := report.NewTable("Fig 13. Stable frequency-voltage pairs, i9-9900K",
		"frequency", "vendor voltage", "modified-IMUL voltage", "ΔV")
	for i, s := range vendor.States {
		t.AddRow(s.F.String(), s.V.String(), mod.States[i].V.String(),
			(s.V - mod.States[i].V).String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "top-of-curve gradient: %.0f mV/GHz (paper: 183 mV/GHz)\n",
		vendor.Gradient()*1e9*1000)
	return nil
}

// runTable3 prints the temperature guardband measurements.
func runTable3(c cfg, w *os.File) error {
	t := report.NewTable("Table 3. Maximum undervolt vs core temperature (i9-9900K)",
		"f_CLK", "fan", "t_core", "V_off")
	pts := guardband.Table3()
	fans := []string{"1800 rpm (max)", "300 rpm"}
	for i, p := range pts {
		t.AddRow("4.00 GHz", fans[i], p.Temp.String(), p.MaxOffset.String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	gbv := guardband.TempGuardbandFor(units.Celsius(50), units.Celsius(88))
	fmt.Fprintf(w, "temperature guardband 50→88 °C: %s (paper: 35 mV ≈ 3.5 %%)\n", (-gbv).String())
	return nil
}

// runAging prints the §5.6 aging guardband derivation.
func runAging(c cfg, w *os.File) error {
	curve := dvfs.IntelI9_9900K().Vendor
	gbv := guardband.AgingGuardbandFor(curve)
	fmt.Fprintf(w, "aging guardband = f_top · 15 %% · gradient = %.2f GHz · 0.15 · %.0f mV/GHz = %s (paper: 137 mV = 12 %%)\n",
		curve.Top().F.GHz(), curve.Gradient()*1e9*1000, gbv.String())
	t := report.NewTable("Delay degradation model (BTI power law)",
		"years", "at 105 °C", "at 60 °C")
	for _, y := range []float64{1, 2, 5, 10} {
		t.AddRow(fmt.Sprintf("%.0f", y),
			fmt.Sprintf("%.1f %%", guardband.AgingDegradation(y, units.Celsius(105))*100),
			fmt.Sprintf("%.1f %%", guardband.AgingDegradation(y, units.Celsius(60))*100))
	}
	return t.Render(w)
}

// runTable4 prints the noSIMD impact table.
func runTable4(c cfg, w *os.File) error {
	t := report.NewTable("Table 4. Performance impact of disabling SSE/AVX",
		"benchmark", "i9-9900K", "7700X")
	t.AddRow("fprate (mean)",
		report.Pct(workload.SuiteMeanNoSIMD(workload.SPECfp, workload.Intel)),
		report.Pct(workload.SuiteMeanNoSIMD(workload.SPECfp, workload.AMD)))
	t.AddRow("intrate (mean)",
		report.Pct(workload.SuiteMeanNoSIMD(workload.SPECint, workload.Intel)),
		report.Pct(workload.SuiteMeanNoSIMD(workload.SPECint, workload.AMD)))
	for _, name := range []string{"508.namd", "521.wrf", "538.imagick", "554.roms", "525.x264", "548.exchange2"} {
		b, _ := workload.ByName(name)
		t.AddRow(name, report.Pct(b.NoSIMD[workload.Intel]), report.Pct(b.NoSIMD[workload.AMD]))
	}
	return t.Render(w)
}

// runTable5 prints the out-of-order core configuration.
func runTable5(c cfg, w *os.File) error {
	u := uarch.DefaultConfig()
	t := report.NewTable("Table 5. Out-of-order core model (gem5 O3 substitute)",
		"parameter", "value")
	t.AddRow("dispatch/retire width", fmt.Sprintf("%d", u.Width))
	t.AddRow("reorder buffer", fmt.Sprintf("%d entries", u.ROB))
	t.AddRow("IMUL latency (stock)", fmt.Sprintf("%d cycles, pipelined", u.IMULLatency))
	t.AddRow("branch mispredict", fmt.Sprintf("%.1f %% @ %d cycles", u.BranchMispredictRate*100, u.MispredictPenalty))
	t.AddRow("LLC miss", fmt.Sprintf("%.1f %% @ %d cycles", u.LoadMissRate*100, u.MissLatency))
	for k, n := range u.FUs {
		t.AddRow("FU "+k.String(), fmt.Sprintf("%d", n))
	}
	return t.Render(w)
}

// runFig14 prints the IMUL latency study.
func runFig14(c cfg, w *os.File) error {
	ucfg := uarch.DefaultConfig()
	n := 400_000
	if c.quick {
		n = 150_000
	}
	x264, _ := workload.ByName("525.x264")
	geo := report.Series{Name: "Fig 14: geomean slowdown", XLabel: "imul_latency", YLabel: "slowdown_pct"}
	xs := report.Series{Name: "Fig 14: 525.x264 slowdown", XLabel: "imul_latency", YLabel: "slowdown_pct"}
	for _, lat := range []int{4, 5, 6, 15, 30} {
		var sumLog float64
		for _, b := range workload.SPEC() {
			s, err := uarch.Slowdown(ucfg, b.Mix(), n, c.seed, lat)
			if err != nil {
				return err
			}
			sumLog += math.Log1p(s)
		}
		geo.Add(float64(lat), math.Expm1(sumLog/23)*100)
		s, err := uarch.Slowdown(ucfg, x264.Mix(), n, c.seed, lat)
		if err != nil {
			return err
		}
		xs.Add(float64(lat), s*100)
	}
	for _, s := range []*report.Series{&geo, &xs} {
		if err := s.WriteCSV(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "paper: geomean 0.03 %% at latency 4; 525.x264 1.60 %% at 4, ~46 %% at 30\n")
	return nil
}

// traceGapSeries converts a trace into the gap-size timeline of Figs 5/7.
func traceGapSeries(tr *trace.Trace, name string) report.Series {
	s := report.Series{Name: name, XLabel: "instruction_index", YLabel: "log10_gap"}
	var prev uint64
	for _, ev := range tr.Events {
		gap := ev.Index - prev
		y := 0.0
		if gap > 0 {
			y = math.Log10(float64(gap))
		}
		s.Add(float64(ev.Index), y)
		prev = ev.Index + 1
	}
	return s
}
