// Package isa defines the instruction-set model used throughout the SUIT
// simulator: an x86-64-flavoured opcode space, instruction classes, the set
// of undervolting-faultable instructions observed by Kogler et al. (Table 1
// of the paper), and per-opcode microarchitectural metadata (latency,
// throughput, functional-unit class).
//
// The simulator does not interpret machine code; it executes abstract
// instruction events. The opcode space here is therefore a curated set of
// the instructions that matter for SUIT — the faultable set, IMUL, and a
// handful of background classes (scalar ALU, loads/stores, branches) used
// by the out-of-order model in internal/uarch.
package isa

import "fmt"

// Opcode identifies one instruction kind in the simulated ISA.
type Opcode uint16

// The opcode space. Background classes first, then the faultable set of
// Table 1 in decreasing observed fault count.
const (
	// OpNop is the zero Opcode and is never executed; it marks "no
	// instruction" in traces and exception records.
	OpNop Opcode = iota

	// Background (never faultable) classes.
	OpALU    // scalar integer add/sub/logic, 1-cycle
	OpLoad   // memory load
	OpStore  // memory store
	OpBranch // conditional/unconditional branch
	OpFPAdd  // scalar floating-point add/sub
	OpFPMul  // scalar floating-point multiply
	OpDiv    // integer/FP divide (long latency, unpipelined)
	OpLEA    // address generation

	// IMUL: the high-frequency faultable instruction (§4.2). SUIT hardens
	// it statically (latency 3 → 4) instead of trapping it.
	OpIMUL

	// The low-frequency faultable set (Table 1), ordered by the number of
	// observed faults in Kogler et al.'s study.
	OpVOR        // vector bitwise or (VOR*)
	OpAESENC     // one AES encryption round
	OpVXOR       // vector bitwise xor (VXOR*)
	OpVANDN      // vector and-not (VANDN*)
	OpVAND       // vector and (VAND*)
	OpVSQRTPD    // packed double sqrt
	OpVPCLMULQDQ // carry-less multiply
	OpVPSRAD     // packed arithmetic shift right
	OpVPCMP      // packed compare (VPCMP*)
	OpVPMAX      // packed max (VPMAX*)
	OpVPADDQ     // packed 64-bit add

	numOpcodes // sentinel; keep last
)

// NumOpcodes is the size of the opcode space (including OpNop).
const NumOpcodes = int(numOpcodes)

// Class groups opcodes by their role in the SUIT design.
type Class uint8

const (
	// ClassBackground instructions never fault from undervolting within
	// the voltage ranges SUIT uses.
	ClassBackground Class = iota
	// ClassHardened instructions (IMUL) are frequent faultable
	// instructions whose critical path is statically relaxed in hardware.
	ClassHardened
	// ClassFaultable instructions are the infrequent faultable set that
	// SUIT disables on the efficient DVFS curve.
	ClassFaultable
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassBackground:
		return "background"
	case ClassHardened:
		return "hardened"
	case ClassFaultable:
		return "faultable"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// FUKind is the functional-unit class an opcode executes on, used by the
// out-of-order model.
type FUKind uint8

const (
	FUALU FUKind = iota
	FUMul
	FUDiv
	FULoad
	FUStore
	FUBranch
	FUFPAdd
	FUFPMul
	FUVector
	FUAES
	NumFUKinds = int(FUAES) + 1
)

// String implements fmt.Stringer.
func (f FUKind) String() string {
	switch f {
	case FUALU:
		return "alu"
	case FUMul:
		return "mul"
	case FUDiv:
		return "div"
	case FULoad:
		return "load"
	case FUStore:
		return "store"
	case FUBranch:
		return "branch"
	case FUFPAdd:
		return "fpadd"
	case FUFPMul:
		return "fpmul"
	case FUVector:
		return "vector"
	case FUAES:
		return "aes"
	default:
		return fmt.Sprintf("FUKind(%d)", uint8(f))
	}
}

// Info is the static metadata for one opcode.
type Info struct {
	Op         Opcode
	Name       string // canonical mnemonic, e.g. "IMUL", "VPCLMULQDQ"
	Class      Class
	FU         FUKind
	Latency    int  // result latency in clock cycles (baseline, unhardened)
	Pipelined  bool // whether a new input can issue every cycle
	SIMD       bool // part of SSE/AVX; removed when compiling without SIMD
	FaultCount int  // observed faults in Kogler et al. (Table 1); 0 if none
}

// Latency values follow Agner Fog's tables for contemporary Intel/AMD
// cores, as cited by the paper (IMUL: 3 cycles, throughput 1/cycle).
var infos = [numOpcodes]Info{
	OpNop:    {Op: OpNop, Name: "NOP", Class: ClassBackground, FU: FUALU, Latency: 1, Pipelined: true},
	OpALU:    {Op: OpALU, Name: "ALU", Class: ClassBackground, FU: FUALU, Latency: 1, Pipelined: true},
	OpLoad:   {Op: OpLoad, Name: "LOAD", Class: ClassBackground, FU: FULoad, Latency: 4, Pipelined: true},
	OpStore:  {Op: OpStore, Name: "STORE", Class: ClassBackground, FU: FUStore, Latency: 1, Pipelined: true},
	OpBranch: {Op: OpBranch, Name: "BRANCH", Class: ClassBackground, FU: FUBranch, Latency: 1, Pipelined: true},
	OpFPAdd:  {Op: OpFPAdd, Name: "FPADD", Class: ClassBackground, FU: FUFPAdd, Latency: 3, Pipelined: true},
	OpFPMul:  {Op: OpFPMul, Name: "FPMUL", Class: ClassBackground, FU: FUFPMul, Latency: 4, Pipelined: true},
	OpDiv:    {Op: OpDiv, Name: "DIV", Class: ClassBackground, FU: FUDiv, Latency: 20, Pipelined: false},
	OpLEA:    {Op: OpLEA, Name: "LEA", Class: ClassBackground, FU: FUALU, Latency: 1, Pipelined: true},

	OpIMUL: {Op: OpIMUL, Name: "IMUL", Class: ClassHardened, FU: FUMul, Latency: 3, Pipelined: true, FaultCount: 79},

	OpVOR:        {Op: OpVOR, Name: "VOR", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 47},
	OpAESENC:     {Op: OpAESENC, Name: "AESENC", Class: ClassFaultable, FU: FUAES, Latency: 4, Pipelined: true, SIMD: true, FaultCount: 40},
	OpVXOR:       {Op: OpVXOR, Name: "VXOR", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 40},
	OpVANDN:      {Op: OpVANDN, Name: "VANDN", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 30},
	OpVAND:       {Op: OpVAND, Name: "VAND", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 28},
	OpVSQRTPD:    {Op: OpVSQRTPD, Name: "VSQRTPD", Class: ClassFaultable, FU: FUVector, Latency: 18, Pipelined: false, SIMD: true, FaultCount: 24},
	OpVPCLMULQDQ: {Op: OpVPCLMULQDQ, Name: "VPCLMULQDQ", Class: ClassFaultable, FU: FUVector, Latency: 7, Pipelined: true, SIMD: true, FaultCount: 16},
	OpVPSRAD:     {Op: OpVPSRAD, Name: "VPSRAD", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 9},
	OpVPCMP:      {Op: OpVPCMP, Name: "VPCMP", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 5},
	OpVPMAX:      {Op: OpVPMAX, Name: "VPMAX", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 3},
	OpVPADDQ:     {Op: OpVPADDQ, Name: "VPADDQ", Class: ClassFaultable, FU: FUVector, Latency: 1, Pipelined: true, SIMD: true, FaultCount: 1},
}

var byName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// Lookup returns the Info for op. It panics if op is out of range, which
// indicates a corrupted trace or programming error.
func Lookup(op Opcode) Info {
	if int(op) >= NumOpcodes {
		panic(fmt.Sprintf("isa: opcode %d out of range", op)) //lint:allow allocfree panic formatting on the corrupted-trace invariant; unreachable for validated traces
	}
	return infos[op]
}

// Valid reports whether op is a defined opcode (including OpNop).
func Valid(op Opcode) bool { return int(op) < NumOpcodes }

// ByName returns the opcode with the given canonical mnemonic.
func ByName(name string) (Opcode, bool) {
	op, ok := byName[name]
	return op, ok
}

// String implements fmt.Stringer.
func (op Opcode) String() string {
	if !Valid(op) {
		return fmt.Sprintf("Opcode(%d)", uint16(op))
	}
	return infos[op].Name
}

// Class returns the SUIT class of op.
func (op Opcode) Class() Class { return Lookup(op).Class }

// IsFaultable reports whether op is in the low-frequency faultable set that
// SUIT disables on the efficient DVFS curve.
func (op Opcode) IsFaultable() bool { return Lookup(op).Class == ClassFaultable }

// IsSIMD reports whether op disappears from a binary compiled without
// SSE/AVX support (§5.8: every Table 1 instruction except IMUL and AESENC
// is SIMD; AESENC is AES-NI, not SSE/AVX, but compilers emit it only with
// -maes, so recompilation also removes it — the paper counts only IMUL and
// AESENC as non-SIMD, which we follow).
func (op Opcode) IsSIMD() bool { return Lookup(op).SIMD }

// Faultable returns the faultable set in Table 1 order (decreasing observed
// fault count). IMUL is excluded: it is hardened, not trapped.
func Faultable() []Opcode {
	out := make([]Opcode, 0, 11)
	for op := Opcode(0); op < numOpcodes; op++ {
		if infos[op].Class == ClassFaultable {
			out = append(out, op)
		}
	}
	return out
}

// Table1 returns all instructions with observed undervolting faults
// (IMUL first, then the faultable set) in decreasing fault-count order,
// exactly as the paper's Table 1 lists them.
func Table1() []Info {
	out := make([]Info, 0, 12)
	for op := Opcode(0); op < numOpcodes; op++ {
		if infos[op].FaultCount > 0 {
			out = append(out, infos[op])
		}
	}
	// infos is already ordered by decreasing fault count within each
	// class, and IMUL (79) precedes the faultable set, so declaration
	// order is Table 1 order.
	return out
}

// DisableMask is a bit set over opcodes, used by the SUIT disable-opcode
// MSR to select which instructions raise #DO.
type DisableMask uint32

// MaskOf builds a DisableMask containing the given opcodes.
func MaskOf(ops ...Opcode) DisableMask {
	var m DisableMask
	for _, op := range ops {
		m |= 1 << op
	}
	return m
}

// FaultableMask is the mask of the full faultable set — what the OS writes
// to the disable MSR before selecting the efficient DVFS curve.
var FaultableMask = MaskOf(Faultable()...)

// Has reports whether op is in the mask.
func (m DisableMask) Has(op Opcode) bool { return m&(1<<op) != 0 }

// With returns m with op added.
func (m DisableMask) With(op Opcode) DisableMask { return m | 1<<op }

// Without returns m with op removed.
func (m DisableMask) Without(op Opcode) DisableMask { return m &^ (1 << op) }

// Count returns the number of opcodes in the mask.
func (m DisableMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
