package guardband

import (
	"errors"
	"math/rand/v2"

	"suit/internal/isa"
	"suit/internal/units"
)

// Per-core process variation. Murdoch et al. and Kogler et al. observed
// that fault voltages differ not only between instructions but between
// CPUs and even between cores of one CPU (§3.1). A vendor certifying one
// efficient curve for the whole package must therefore use the *weakest*
// core's margins; a hypothetical per-core-curve SUIT could undervolt the
// stronger cores deeper — quantified by PerCoreHeadroom.

// PerCoreModels derives n per-core margin models from a base model by
// jittering every instruction margin with core-specific offsets of the
// given sigma (deterministic in seed). Margins are clamped to stay
// positive and below the background variation (the faultable set must
// remain faultable).
func PerCoreModels(base *Model, n int, sigma units.Volt, seed uint64) ([]*Model, error) {
	if n < 1 {
		return nil, errors.New("guardband: need at least one core")
	}
	if sigma < 0 {
		return nil, errors.New("guardband: negative sigma")
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xc0ffee))
	// Fixed iteration order keeps the derivation deterministic in seed.
	ops := make([]isa.Opcode, 0, len(base.VariationMargin))
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if _, ok := base.VariationMargin[op]; ok {
			ops = append(ops, op)
		}
	}
	out := make([]*Model, n)
	for c := 0; c < n; c++ {
		m := *base // shallow copy; rebuild the margin map
		m.VariationMargin = make(map[isa.Opcode]units.Volt, len(ops))
		// One core-wide shift plus small per-instruction jitter: process
		// variation moves whole cores more than individual paths. The
		// core shift moves the background variation too — the quantity
		// that sets the certified offset, so weak cores cap the package.
		coreShift := units.Volt(rng.NormFloat64()) * sigma
		m.BackgroundVariation = base.BackgroundVariation + coreShift
		for _, op := range ops {
			v := base.VariationMargin[op]
			jittered := v + coreShift + units.Volt(rng.NormFloat64())*sigma/4
			if min := v / 4; jittered < min {
				jittered = min
			}
			if max := m.BackgroundVariation - units.MilliVolts(1); jittered > max && op != isa.OpIMUL {
				jittered = max
			}
			m.VariationMargin[op] = jittered
		}
		out[c] = &m
	}
	return out, nil
}

// WeakestOffset returns the efficient-curve offset the vendor can certify
// for the whole package: the shallowest per-core offset. This is how the
// §3.5 procedure extends to multi-core parts with variation.
func WeakestOffset(cores []*Model, disabled isa.DisableMask, hardenedIMUL, spendAging bool) units.Volt {
	if len(cores) == 0 {
		return 0
	}
	weakest := cores[0].EfficientOffset(disabled, hardenedIMUL, spendAging)
	for _, m := range cores[1:] {
		if off := m.EfficientOffset(disabled, hardenedIMUL, spendAging); off > weakest {
			weakest = off
		}
	}
	return weakest
}

// PerCoreHeadroom reports, per core, how much deeper that core could be
// undervolted than the package-wide certification allows — the gain a
// per-core-curve extension of SUIT would harvest on parts with per-core
// voltage domains.
func PerCoreHeadroom(cores []*Model, disabled isa.DisableMask, hardenedIMUL, spendAging bool) []units.Volt {
	pkg := WeakestOffset(cores, disabled, hardenedIMUL, spendAging)
	out := make([]units.Volt, len(cores))
	for i, m := range cores {
		out[i] = pkg - m.EfficientOffset(disabled, hardenedIMUL, spendAging)
	}
	return out
}
