package trace

import (
	"fmt"
	"os"
)

// WriteFile stores the trace at path in the binary SUITTRC1 format,
// writing through a temporary file so that a crash never leaves a
// truncated trace behind.
func WriteFile(path string, t *Trace) (err error) {
	tmp, err := os.CreateTemp(dirOf(path), ".suittrc-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = WriteBinary(tmp, t); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads a binary trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", path, err)
	}
	return t, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
