// attackdemo: the security story of the paper in one run (§6.9).
//
// An attacker undervolts the CPU while a victim computes AES (the
// Plundervolt / V0LTpwn scenario). Three machines face the same −97 mV
// offset:
//
//   - today's CPU at nominal voltage — safe but inefficient;
//   - a pre-SUIT CPU blindly undervolted — AESENC silently faults and
//     the corrupted ciphertext leaks the key to differential fault
//     analysis;
//   - a SUIT CPU — the same instructions trap (#DO) and re-execute on
//     the conservative curve; the result stays correct.
//
// The demo also runs the reduction check: SUIT's efficient curve gives
// the reduced instruction set exactly the margin guarantee today's curve
// gives the full set.
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"
	"os"

	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/report"
	"suit/internal/security"
	"suit/internal/units"
)

func main() {
	chip := dvfs.IntelI9_9900K()
	offset := units.MilliVolts(-97)

	rep, err := security.RunAttack(chip, offset, 1)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Undervolting fault attack on %s at %v (AES victim)", chip.Name, offset),
		"machine", "silent faults", "#DO traps", "victim result")
	for _, o := range []security.AttackOutcome{rep.Nominal, rep.Unsafe, rep.SUIT} {
		verdict := "correct ✓"
		if o.WrongResult {
			verdict = "corrupted ✗ (DFA-recoverable)"
		}
		t.AddRow(o.Config, fmt.Sprintf("%d", o.Faults), fmt.Sprintf("%d", o.Exceptions), verdict)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The reductionist argument, checked mechanically.
	gb := guardband.Default()
	fmt.Println("\nReduction check (§6.9):")
	if bad := security.CheckReduction(gb, isa.FaultableMask, offset, true); len(bad) == 0 {
		fmt.Printf("  faultable set disabled + hardened IMUL at %v: every enabled\n", offset)
		fmt.Println("  instruction keeps a non-negative margin — same guarantee as today ✓")
	} else {
		fmt.Printf("  UNEXPECTED violations: %v\n", bad)
		os.Exit(1)
	}
	if bad := security.CheckReduction(gb, 0, offset, false); len(bad) > 0 {
		fmt.Printf("  the same offset without SUIT violates %d instructions (first: %v) ✗\n",
			len(bad), bad[0])
	}

	// The margin ladder: why the faultable set must be disabled.
	lt := report.NewTable("\nPer-instruction physical margins vs the −97 mV offset",
		"instruction", "margin", "at −97 mV")
	for _, info := range isa.Table1() {
		m := gb.PhysicalMargin(info.Op, true)
		state := "safe"
		if gb.Faults(info.Op, offset, true) {
			state = "FAULTS → disabled + trapped"
		}
		lt.AddRow(info.Name, m.String(), state)
	}
	if err := lt.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
