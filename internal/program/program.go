// Package program records instruction traces by executing structured
// synthetic programs — the closest stdlib-only analogue of the paper's
// QEMU plugin (§5.1), which logs when specific instructions execute while
// a real application runs.
//
// A Program is a small AST of instruction runs and counted loops. Record
// walks it exactly as an in-order interpreter would, maintaining a dynamic
// instruction counter, and emits a trace.Trace event for every interesting
// instruction (the Table 1 faultable set and IMUL). Unlike the statistical
// generators in internal/trace, the burst/gap structure here *derives*
// from program shape: an AES-GCM record seal produces its AESENC bursts
// because the loop over cipher blocks says so.
package program

import (
	"errors"
	"fmt"

	"suit/internal/isa"
	"suit/internal/trace"
)

// Node is one element of a program body.
type Node interface {
	// instructions returns the dynamic instruction count of the node.
	instructions() uint64
}

// Inst executes Op N times in a row.
type Inst struct {
	Op isa.Opcode
	N  uint64
}

func (i Inst) instructions() uint64 { return i.N }

// Seq executes its children in order.
type Seq []Node

func (s Seq) instructions() uint64 {
	var n uint64
	for _, c := range s {
		n += c.instructions()
	}
	return n
}

// Loop executes Body Count times.
type Loop struct {
	Count uint64
	Body  Seq
}

func (l Loop) instructions() uint64 { return l.Count * l.Body.instructions() }

// Program is a named, executable instruction-stream description.
type Program struct {
	Name string
	// IPC is the instructions-per-cycle estimate recorded alongside the
	// trace (§5.1's INSTRUCTIONS_RETIRED conversion).
	IPC  float64
	Body Seq
}

// maxInstructions bounds recording against accidentally enormous loops.
const maxInstructions = 1 << 40

// Validate checks the program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return errors.New("program: unnamed program")
	}
	if !(p.IPC > 0) {
		return fmt.Errorf("program: %s has non-positive IPC", p.Name)
	}
	var walk func(Node) error
	walk = func(n Node) error {
		switch v := n.(type) {
		case Inst:
			if !isa.Valid(v.Op) || v.Op == isa.OpNop {
				return fmt.Errorf("program: %s uses invalid opcode %d", p.Name, v.Op)
			}
		case Loop:
			if v.Count == 0 {
				return fmt.Errorf("program: %s has a zero-trip loop", p.Name)
			}
			return walk(v.Body)
		case Seq:
			for _, c := range v {
				if err := walk(c); err != nil {
					return err
				}
			}
		case nil:
			return fmt.Errorf("program: %s contains a nil node", p.Name)
		default:
			return fmt.Errorf("program: %s contains unknown node %T", p.Name, n)
		}
		return nil
	}
	if err := walk(p.Body); err != nil {
		return err
	}
	if total := p.Body.instructions(); total == 0 {
		return fmt.Errorf("program: %s executes no instructions", p.Name)
	} else if total > maxInstructions {
		return fmt.Errorf("program: %s executes %d instructions, beyond the recorder bound", p.Name, total)
	}
	return nil
}

// Instructions returns the program's dynamic instruction count.
func (p *Program) Instructions() uint64 { return p.Body.instructions() }

// interesting reports whether the recorder logs op (the QEMU plugin logs
// the Table 1 instructions; IMUL is included for §6.1-style analyses).
func interesting(op isa.Opcode) bool {
	return op.IsFaultable() || op == isa.OpIMUL
}

// Record executes the program and returns its trace.
func (p *Program) Record() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tr := &trace.Trace{Name: p.Name, Total: p.Instructions(), IPC: p.IPC}
	var pc uint64
	var exec func(Node)
	exec = func(n Node) {
		switch v := n.(type) {
		case Inst:
			if interesting(v.Op) {
				for k := uint64(0); k < v.N; k++ {
					tr.Events = append(tr.Events, trace.Event{Index: pc + k, Op: v.Op})
				}
			}
			pc += v.N
		case Loop:
			for i := uint64(0); i < v.Count; i++ {
				exec(v.Body)
			}
		case Seq:
			for _, c := range v {
				exec(c)
			}
		}
	}
	exec(p.Body)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("program: recorded trace invalid: %w", err)
	}
	return tr, nil
}

// Repeat runs the whole program body n times — a workload executing the
// program in a service loop.
func (p *Program) Repeat(n uint64) *Program {
	return &Program{
		Name: p.Name,
		IPC:  p.IPC,
		Body: Seq{Loop{Count: n, Body: p.Body}},
	}
}
