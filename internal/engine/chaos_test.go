// Chaos tests: deterministic fault injection over full sweeps. These
// live in an external test package because they drive the engine
// through internal/engine/faultinject, which itself imports the engine.
package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"suit/internal/engine"
	"suit/internal/engine/faultinject"
)

type chaosSpec struct{ ID int }

func chaosKey(s chaosSpec) string { return fmt.Sprintf("chaos-%d", s.ID) }

type chaosResult struct {
	ID   int
	Seed uint64
	Val  float64
}

func chaosCompute(_ context.Context, s chaosSpec, seed uint64) (chaosResult, error) {
	return chaosResult{ID: s.ID, Seed: seed, Val: float64(seed%1000) / 1000}, nil
}

func chaosSpecs(n int) []chaosSpec {
	out := make([]chaosSpec, n)
	for i := range out {
		out[i] = chaosSpec{ID: i}
	}
	return out
}

func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCollectSweep is the acceptance scenario: an injected error,
// panic and hang plus a corrupted cache entry inside a 100-spec sweep
// under the Collect policy. The sweep must complete with exactly the
// unaffected results present, a RunError naming each failed spec by
// fingerprint, the corrupt entry quarantined and recomputed correctly,
// and zero leaked goroutines.
func TestChaosCollectSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	in := chaosSpecs(100)
	const baseSeed = 5

	keyErr := chaosKey(in[7])
	keyPanic := chaosKey(in[23])
	keyHang := chaosKey(in[61])
	keyCorrupt := chaosKey(in[42])

	// Pre-populate spec 42's cache entry, then damage it on disk.
	pre := engine.New(chaosKey, chaosCompute, engine.Options{BaseSeed: baseSeed, CacheDir: dir})
	if _, err := pre.Run(context.Background(), []chaosSpec{in[42]}); err != nil {
		t.Fatal(err)
	}
	corruptPath := engine.CachePath(dir, baseSeed, keyCorrupt)
	if err := faultinject.CorruptFile(corruptPath, 1); err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(faultinject.Plan{
		Faults: map[string]faultinject.Kind{
			keyErr:   faultinject.Error,
			keyPanic: faultinject.Panic,
			keyHang:  faultinject.Hang,
		},
		Times: -1, // every attempt faults: the three jobs must exhaust retries
	}, chaosKey, engine.RunFunc[chaosSpec, chaosResult](chaosCompute))

	e := engine.New(chaosKey, inj.Run, engine.Options{
		Workers:    8,
		BaseSeed:   baseSeed,
		CacheDir:   dir,
		Policy:     engine.Collect,
		Retries:    1,
		JobTimeout: 50 * time.Millisecond,
	})
	got, err := e.Run(context.Background(), in)

	var re *engine.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	wantFailed := []string{keyErr, keyPanic, keyHang} // spec order: 7, 23, 61
	if keys := re.Keys(); len(keys) != 3 || keys[0] != wantFailed[0] || keys[1] != wantFailed[1] || keys[2] != wantFailed[2] {
		t.Fatalf("failed fingerprints %v, want %v", re.Keys(), wantFailed)
	}
	var pe *engine.PanicError
	var te *engine.TimeoutError
	var injected, panicked, timedOut bool
	for _, f := range re.Failures {
		switch {
		case errors.Is(f.Err, faultinject.ErrInjected):
			injected = true
		case errors.As(f.Err, &pe):
			panicked = true
		case errors.As(f.Err, &te):
			timedOut = true
		}
		if f.Attempts != 2 {
			t.Errorf("%s: %d attempts, want 2 (1 + 1 retry)", f.Key, f.Attempts)
		}
	}
	if !injected || !panicked || !timedOut {
		t.Errorf("failure causes lost: injected=%v panicked=%v timedOut=%v", injected, panicked, timedOut)
	}

	// Every unaffected spec — including the one whose cache entry was
	// corrupted — carries its correct deterministic result.
	for i, r := range got {
		switch i {
		case 7, 23, 61:
			if r != (chaosResult{}) {
				t.Errorf("failed spec %d holds non-zero result %+v", i, r)
			}
		default:
			want, _ := chaosCompute(context.Background(), in[i], engine.DeriveSeed(baseSeed, chaosKey(in[i])))
			if r != want {
				t.Errorf("spec %d: %+v, want %+v", i, r, want)
			}
		}
	}

	st := e.Stats()
	if st.Failed != 3 {
		t.Errorf("Failed = %d, want 3 (%+v)", st.Failed, st)
	}
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1: the corrupt entry must be healed, not fatal (%+v)", st.Quarantined, st)
	}
	if st.Panicked == 0 || st.TimedOut == 0 {
		t.Errorf("cause accounting lost: %+v", st)
	}
	waitNoLeak(t, before)
}

// TestChaosRetriedRunIsByteIdentical: transient injected faults
// absorbed by retries must not change a single byte of the output —
// the retried attempt reuses the derived seed.
func TestChaosRetriedRunIsByteIdentical(t *testing.T) {
	in := chaosSpecs(64)
	clean := engine.New(chaosKey, chaosCompute, engine.Options{Workers: 4, BaseSeed: 9})
	want, err := clean.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(faultinject.Plan{
		Seed: 77, Rate: 0.3, RateKind: faultinject.Error, Times: 2,
	}, chaosKey, engine.RunFunc[chaosSpec, chaosResult](chaosCompute))
	flaky := engine.New(chaosKey, inj.Run, engine.Options{Workers: 4, BaseSeed: 9, Retries: 2})
	got, err := flaky.Run(context.Background(), in)
	if err != nil {
		t.Fatalf("retries did not absorb the injected faults: %v", err)
	}

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("retried run is not byte-identical to the clean run")
	}
	if st := flaky.Stats(); st.Retried == 0 {
		t.Errorf("injection plan never fired: %+v", st)
	}
}

// TestChaosCheckpointResume kills a sweep mid-run and resumes it: the
// final output must be byte-identical to an uninterrupted run, with
// only the unfinished jobs recomputed.
func TestChaosCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal")
	cacheDir := filepath.Join(dir, "cache")
	in := chaosSpecs(40)
	const config = "chaos-resume chip=C seed=7"

	// Reference: one uninterrupted run, no cache involved.
	ref := engine.New(chaosKey, chaosCompute, engine.Options{Workers: 4, BaseSeed: 7})
	want, err := ref.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	// First run: killed (context cancelled, like SIGINT) after ~10 jobs.
	cp, err := engine.OpenCheckpoint(journal, config, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var calls1 atomic.Int64
	counting1 := func(c context.Context, s chaosSpec, seed uint64) (chaosResult, error) {
		if calls1.Add(1) == 10 {
			cancel()
		}
		return chaosCompute(c, s, seed)
	}
	e1 := engine.New(chaosKey, counting1, engine.Options{
		Workers: 4, BaseSeed: 7, CacheDir: cacheDir, Checkpoint: cp,
	})
	if _, err := e1.Run(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	cp.Close()
	finished := cp.Completed()
	if finished == 0 || finished >= len(in) {
		t.Fatalf("interruption finished %d jobs, want a strict partial", finished)
	}

	// Second run: -resume. Journal must load, config must match, and
	// only the unfinished jobs may recompute.
	cp2, err := engine.OpenCheckpoint(journal, config, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Completed() != finished {
		t.Fatalf("resume loaded %d completions, journal had %d", cp2.Completed(), finished)
	}
	var calls2 atomic.Int64
	counting2 := func(c context.Context, s chaosSpec, seed uint64) (chaosResult, error) {
		calls2.Add(1)
		return chaosCompute(c, s, seed)
	}
	e2 := engine.New(chaosKey, counting2, engine.Options{
		Workers: 4, BaseSeed: 7, CacheDir: cacheDir, Checkpoint: cp2,
	})
	got, err := e2.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("resumed output is not byte-identical to the uninterrupted run")
	}
	st := e2.Stats()
	if st.Resumed != int64(finished) {
		t.Errorf("Resumed = %d, want %d", st.Resumed, finished)
	}
	if st.Ran+st.DiskHits != int64(len(in)) {
		t.Errorf("resume accounting broken: %+v", st)
	}
	if int(calls2.Load()) != len(in)-int(st.DiskHits) {
		t.Errorf("resume recomputed %d jobs, want only the %d unfinished ones",
			calls2.Load(), len(in)-int(st.DiskHits))
	}
	if st.DiskHits < int64(finished) {
		t.Errorf("resume served %d jobs from cache, journal promised at least %d", st.DiskHits, finished)
	}
	// The journal is now complete: a third resume computes nothing.
	if cp2.Completed() != len(in) {
		t.Errorf("journal records %d completions after resume, want %d", cp2.Completed(), len(in))
	}
}

// TestChaosHangsDegradeGracefully: several context-honoring hangs at
// once must not stall the pool — the watchdog frees every worker and
// the healthy majority completes.
func TestChaosHangsDegradeGracefully(t *testing.T) {
	before := runtime.NumGoroutine()
	in := chaosSpecs(30)
	plan := faultinject.Plan{Faults: map[string]faultinject.Kind{}, Times: -1}
	for _, i := range []int{3, 11, 19, 27} {
		plan.Faults[chaosKey(in[i])] = faultinject.Hang
	}
	inj := faultinject.New(plan, chaosKey, engine.RunFunc[chaosSpec, chaosResult](chaosCompute))
	e := engine.New(chaosKey, inj.Run, engine.Options{
		Workers: 2, BaseSeed: 3, Policy: engine.Collect, JobTimeout: 20 * time.Millisecond,
	})
	got, err := e.Run(context.Background(), in)
	var re *engine.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if len(re.Failures) != 4 {
		t.Fatalf("%d failures, want the 4 hung jobs", len(re.Failures))
	}
	for _, f := range re.Failures {
		var te *engine.TimeoutError
		if !errors.As(f.Err, &te) {
			t.Errorf("%s failed with %v, want a watchdog timeout", f.Key, f.Err)
		}
	}
	healthy := 0
	for i, r := range got {
		if r != (chaosResult{}) {
			want, _ := chaosCompute(context.Background(), in[i], engine.DeriveSeed(3, chaosKey(in[i])))
			if r != want {
				t.Errorf("spec %d wrong: %+v", i, r)
			}
			healthy++
		}
	}
	if healthy != 26 {
		t.Errorf("%d healthy results, want 26", healthy)
	}
	waitNoLeak(t, before)
}
