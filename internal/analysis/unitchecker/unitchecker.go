// Package unitchecker implements the cmd/go vet tool protocol, so the
// suitlint binary can run as `go vet -vettool=$(which suitlint) ./...`.
// It is a standard-library re-implementation of the x/tools unitchecker
// essentials: the go command invokes the tool once per package with a
// JSON config file describing the sources and the export data of every
// dependency; the tool type-checks, analyzes, prints findings to
// stderr and signals them with exit code 2.
//
// Facts are not supported — none of the suitlint analyzers need
// cross-package state — so the .vetx output the go command expects is
// written as an empty file.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"suit/internal/analysis"
)

// Config mirrors the JSON schema cmd/go writes for vet tools. Field
// names must match exactly; unused fields are listed for completeness.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet config file and exits: 0 on success, 1 on
// protocol or type-check errors, 2 when diagnostics were reported.
func Run(cfgPath string, analyzers []*analysis.Analyzer) {
	code, err := run(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitlint:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// The go command expects the facts file to exist even though
	// suitlint produces no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.Run(&analysis.Package{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}
