// Package analysistest runs an analyzer over GOPATH-style fixture
// trees and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<importpath>/*.go
//
// A fixture line expecting a diagnostic carries a marker comment with
// one regular expression per expected diagnostic on that line:
//
//	_ = time.Now() // want `time\.Now reads the wall clock`
//
// Fixture-local imports resolve under testdata/src (so fixtures can
// model real package paths like suit/internal/engine); everything else
// (fmt, time, math/rand) falls back to the standard library's source
// importer, which type-checks GOROOT sources and therefore works
// without compiled stdlib export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"suit/internal/analysis"
)

// Run analyzes each fixture package and reports mismatches between
// produced diagnostics and // want expectations via t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		pkg, err := loadFixture(testdata, path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// RunDeps analyzes the fixture packages in the given order through ONE
// shared analysis.Session, so facts exported while analyzing an earlier
// package are importable when a later one calls into it — the same
// cross-package path the standalone loader and the vet protocol take.
// List dependencies before dependents. Each fixture is type-checked in
// its own session (separate FileSet, separate types.Package identities),
// which is exactly what makes this a real test of the string-keyed fact
// store: object pointers do not survive, keys must.
func RunDeps(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	s := analysis.NewSession([]*analysis.Analyzer{a})
	for _, path := range paths {
		pkg, err := loadFixture(testdata, path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := s.RunPackage(pkg)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, diags)
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// wantPayload extracts the quoted or backquoted regexps after "// want".
var wantPayload = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, pkg *analysis.Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				payload := c.Text[idx+len("// want "):]
				tokens := wantPayload.FindAllString(payload, -1)
				if len(tokens) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, c.Text)
					continue
				}
				for _, tok := range tokens {
					var s string
					if tok[0] == '`' {
						s = tok[1 : len(tok)-1]
					} else {
						var err error
						s, err = strconv.Unquote(tok)
						if err != nil {
							t.Errorf("%s: bad want string %s: %v", pos, tok, err)
							continue
						}
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, s, err)
						continue
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// fixtureImporter resolves imports under testdata/src first, then
// falls back to the stdlib source importer.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	loading  map[string]bool
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		p, err := fi.fallback.Import(path)
		if err != nil {
			return nil, err
		}
		fi.pkgs[path] = p
		return p, nil
	}
	if fi.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	fi.loading[path] = true
	defer delete(fi.loading, path)
	files, err := fi.parseDir(dir)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(path, fi.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	fi.pkgs[path] = pkg
	return pkg, nil
}

func (fi *fixtureImporter) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

func loadFixture(testdata, path string) (*analysis.Package, error) {
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		root:     testdata,
		fset:     fset,
		pkgs:     make(map[string]*types.Package),
		loading:  make(map[string]bool),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	files, err := fi.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}
