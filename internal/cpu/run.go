package cpu

import (
	"errors"
	"fmt"
	"math"
	"suit/internal/isa"

	"suit/internal/msr"
	"suit/internal/units"
)

// maxSteps bounds the event loop against pathological configurations
// (e.g. a strategy that neither enables nor emulates, re-trapping the same
// instruction forever).
const maxSteps = 200_000_000

// eventRecord is one dispatched event, captured when a test installs
// m.evLog (the differential heap-vs-linear oracle compares sequences).
type eventRecord struct {
	t    units.Second
	kind evKind
	who  int
}

// Run executes all traces to completion and returns the result.
func (m *Machine) Run() (Result, error) {
	m.runInit()
	for !m.runDone {
		if err := m.runStep(); err != nil {
			return Result{}, err
		}
	}
	return m.finishRun(), nil
}

// runInit performs the OS boot: the strategy configures the machine at
// time zero and the event scheduler is seeded. Split out of Run so a
// Batch can boot every member before interleaving their steps.
func (m *Machine) runInit() {
	m.runDone = false
	m.stepCount = 0
	m.handlerTime = 0
	if m.voltExp != 2 && !m.cfg.NoRampMemo {
		if m.memo == nil {
			// Lazy: the ~100KB memo tables are built on first run (or
			// shared in by NewBatch before this point) rather than in
			// New, so each batched sweep point allocates one memo
			// instead of one per member machine.
			m.memo = newRampMemo(m.voltExp)
		} else {
			// Re-arm adaptive probing: a warm replay over a populated
			// table should probe (and hit) even if the previous cold
			// run tripped the probe cutoff.
			m.memo.arm()
		}
	}
	m.strategy.Init(controller{m})
	// Transitions requested during Init complete instantaneously: the
	// workload is defined to start on the strategy's initial curve
	// (the paper's simulations begin in steady state).
	for _, d := range m.domains {
		if d.pending != nil {
			d.freq = d.pending.freqTarget
			if d.pending.freqTarget == 0 {
				d.freq = m.pts.Get(d.pending.target).F
			}
			d.volt = m.pts.Get(d.pending.target).V
			d.voltGoal = d.volt
			d.voltT0, d.voltT1 = 0, 0
			d.mode = d.pending.target
			d.pending = nil
		}
	}
	for i := range m.scheduled {
		a := m.scheduled[i]
		m.applySched(&a)
	}
	m.scheduled = m.scheduled[:0]
	m.schedLive = 0
	m.handlerTime = 0
	m.syncAll()
}

// runStep dispatches the next event; when the machine is eligible it
// first fast-forwards through a streak of uncontended core arrivals
// without touching the event queue. Sets m.runDone when the run is over.
//
//suit:hotpath
func (m *Machine) runStep() error {
	if m.ffEligible && !m.linearScan && !m.noFastForward && m.schedLive == 0 {
		m.fastForward()
		if m.runDone {
			return nil
		}
	}
	if m.stepCount >= maxSteps {
		return errors.New("cpu: event-loop step limit exceeded") //lint:allow allocfree constructed once on the runaway-configuration abort path
	}
	m.stepCount++
	var (
		t    units.Second
		kind evKind
		who  int
	)
	if m.linearScan {
		t, kind, who = m.nextEventLinear()
	} else {
		t, kind, who = m.popEvent()
	}
	if kind == evNone {
		m.runDone = true
		return nil
	}
	if t < m.now {
		return fmt.Errorf("cpu: time went backwards: %v < %v", t, m.now) //lint:allow allocfree time-regression invariant abort, not the steady state
	}
	if m.evLog != nil {
		*m.evLog = append(*m.evLog, eventRecord{t: t, kind: kind, who: who}) //lint:allow allocfree test-only differential-oracle log; evLog is nil in production runs
	}
	m.advanceTo(t)
	switch kind {
	case evSched:
		a := m.scheduled[who]
		m.consumeSched(who)
		m.applySched(&a)
	case evFreqApply:
		m.applyFreq(m.domains[who])
	case evTransitionEnd:
		d := m.domains[who]
		d.mode = d.pending.target
		d.pending = nil
		m.syncTransition(d)
	case evDeadline:
		m.fireDeadline(who)
	case evStallStart:
		// No state change: the boundary only segments power/timing.
		d := m.domains[who]
		d.pending.stallFrom = -1 // consumed as an event
		m.syncDomainCores(d)     // the stall window is now active
	case evCoreArrive:
		m.coreArrive(m.cores[who])
	case evCoreUnblock:
		c := m.cores[who]
		c.blockedUntil = 0
		// The pending (retrying) instruction is handled on the next
		// iteration via evCoreArrive at the same timestamp.
		m.syncCore(c)
	case evNone:
		panic("cpu: evNone dispatched; the scheduler filters it above")
	}
	if m.audit {
		if err := m.auditQueue(); err != nil {
			return err
		}
	}
	// The measurement interval ends when the last core commits its
	// stream; residual transitions or timer events past that point
	// would otherwise inflate energy and residency totals.
	if m.allDone() {
		m.runDone = true
	}
	return nil
}

// finishRun finalises the result once runDone is set.
func (m *Machine) finishRun() Result {
	var maxDone units.Second
	for _, c := range m.cores {
		m.res.PerCore[c.id] = c.done
		if c.done > maxDone {
			maxDone = c.done
		}
		m.res.Instructions += c.tr.Total
	}
	m.res.Duration = maxDone
	m.res.Energy = m.meter.Energy()
	if maxDone > 0 {
		m.res.AvgPower = units.Power(m.res.Energy, maxDone)
	}
	m.res.RAPLCounter = m.rapl.Counter()
	if m.memo != nil {
		// Drain memo-effectiveness counters into the process-wide totals.
		// A batch-shared memo is flushed by every member; flush zeroes the
		// locals so each event is counted once.
		m.memo.flush()
	}
	return m.res
}

// fastForward processes consecutive core arrivals of a single-core,
// single-domain machine inline, without any event-queue traffic. It is
// the analytic closed form of the inter-exception interval: between two
// queue-worthy events (a trap, a transition boundary, a deadline, an
// unblock) every arrival is a pure function of (m.now, c.pos, d.freq),
// so the next-event computation, the dispatch switch and the heap
// pop/sync round-trips collapse into one loop. Each iteration computes
// the arrival time with the exact expressions evalCore uses and charges
// it through the same advanceTo, so timestamps, energy and the evLog
// sequence stay bit-identical to the queue path (the differential
// heap-vs-linear oracle runs with fast-forward enabled on the heap
// side).
//
// A streak ends as soon as the arrival stops being uncontended: the
// break conditions mirror evalDomainSub/evalCore term for term, and at
// equal timestamps a due domain event outranks a core arrival exactly
// as the (time, rank) heap order does. The event queue is only
// re-synced at streak exit; in between, cached heap times can only be
// stale-early (time moves forward), which popEvent's lazy re-evaluation
// already handles.
//
//suit:hotpath
func (m *Machine) fastForward() {
	c := m.cores[0]
	d := m.domains[0]
	n := 0
	for m.stepCount < maxSteps {
		if c.finished || c.blockedUntil > m.now || d.stalledAt(m.now) {
			break
		}
		// Next arrival, exactly as evalCore computes it.
		nextIdx := c.tr.Total
		end := true
		var op isa.Opcode
		if c.idx < len(c.tr.Events) {
			nextIdx = c.tr.Events[c.idx].Index
			op = c.tr.Events[c.idx].Op
			end = false
		}
		t := m.now
		if remaining := float64(nextIdx) - c.pos; remaining > 0 {
			rate := c.effRate(d.freq) // instructions/second
			t = m.now + units.Second(remaining/rate)
		}
		// A domain event due at or before the arrival wins the tie-break
		// (domain rank < core rank): hand control back to the queue. The
		// conditions mirror evalDomainSub per sub-slot.
		if p := d.pending; p != nil {
			if p.freqApply > 0 && p.freqTarget != 0 {
				if p.stallFrom >= 0 && p.stallFrom > m.now && p.stallFrom <= t {
					break
				}
				if p.freqApply <= t {
					break
				}
			} else if p.end <= t {
				break
			}
		}
		if d.deadlineAt > 0 && d.deadlineAt <= t {
			break
		}
		trapped := false
		if !end {
			trapped = op.IsFaultable() || (m.cfg.TrapIMUL && op == isa.OpIMUL)
			if d.disabled && trapped {
				// A #DO trap runs the strategy handler: back to the full
				// dispatch loop (the core slot's cached time is at most
				// the true arrival, so the queue re-delivers it).
				break
			}
		}
		m.stepCount++
		n++
		if m.evLog != nil {
			*m.evLog = append(*m.evLog, eventRecord{t: t, kind: evCoreArrive, who: 0}) //lint:allow allocfree test-only differential-oracle log; evLog is nil in production runs
		}
		m.advanceTo(t)
		if end {
			c.pos = float64(c.tr.Total)
			c.finished = true
			c.done = m.now
			break
		}
		c.pos = float64(nextIdx)
		// Execute: safety monitor and hardware deadline reset, exactly as
		// coreArrive's execute path (minus the per-event queue sync).
		off := m.safeOffset(d, m.now)
		if -off > m.physMargin[op] {
			//lint:allow allocfree faults only occur on misconfigured runs; the zero-fault steady state never appends
			m.res.Faults = append(m.res.Faults, FaultRecord{
				T: m.now, Core: c.id, Op: op, V: d.voltAt(m.now),
				Margin: -off - m.cfg.Faults.PhysicalMargin(op, m.cfg.HardenedIMUL),
			})
		}
		if d.deadlineAt > 0 && trapped && !m.cfg.NoDeadlineReset {
			d.deadlineAt = m.now + d.deadlineDur
		}
		c.retry = false
		c.pos = float64(nextIdx) + 1
		c.idx++
		if c.idx >= len(c.tr.Events) && c.pos >= float64(c.tr.Total) {
			c.finished = true
			c.done = m.now
			break
		}
	}
	if n > 0 {
		// Re-sync the slots the streak mutated. Deadline pushes during the
		// streak only move the due time later, so the deferred sync is
		// safe: a stale-early cached time is re-keyed at pop.
		m.syncCore(c)
		m.syncDeadline(d)
		if m.allDone() {
			m.runDone = true
		}
	}
}

// allDone reports whether every core has committed its whole stream.
func (m *Machine) allDone() bool {
	for _, c := range m.cores {
		if !c.finished {
			return false
		}
	}
	return true
}

type evKind uint8

const (
	evNone evKind = iota
	evSched
	evFreqApply
	evTransitionEnd
	evStallStart
	evDeadline
	evCoreArrive
	evCoreUnblock
)

// nextEventLinear is the pre-scheduler linear scan, kept verbatim as the
// reference implementation for the differential oracle (enabled via the
// test-only m.linearScan flag; production always uses popEvent). The
// only change from the original nextEvent is skipping tombstoned
// scheduled entries, whose stable indices reproduce the insertion-order
// tie-break of the old compacting slice.
func (m *Machine) nextEventLinear() (units.Second, evKind, int) {
	best := units.Second(math.Inf(1))
	kind := evNone
	who := -1
	//lint:allow allocfree non-escaping closure in the test-only linear-scan reference path; production uses popEvent
	consider := func(t units.Second, k evKind, w int) {
		if k == evNone || t >= best && kind != evNone {
			return
		}
		best, kind, who = t, k, w
	}
	// Deferred handler effects come first so that, at equal timestamps,
	// an instruction-enable lands before the trapped core retries.
	for i := range m.scheduled {
		if m.scheduled[i].done {
			continue
		}
		consider(m.scheduled[i].t, evSched, i)
	}
	for i, d := range m.domains {
		if p := d.pending; p != nil {
			if p.freqApply > 0 && p.freqTarget != 0 {
				if p.stallFrom >= 0 && p.stallFrom > m.now {
					consider(p.stallFrom, evStallStart, i)
				}
				consider(p.freqApply, evFreqApply, i)
			} else {
				consider(p.end, evTransitionEnd, i)
			}
		}
		if d.deadlineAt > 0 {
			consider(d.deadlineAt, evDeadline, i)
		}
	}
	for i, c := range m.cores {
		if c.finished {
			continue
		}
		if c.blockedUntil > m.now {
			consider(c.blockedUntil, evCoreUnblock, i)
			continue
		}
		d := m.domainOf(c.id)
		if d.stalledAt(m.now) {
			// The core resumes at the frequency application; that event
			// is already a candidate.
			continue
		}
		nextIdx := c.tr.Total
		if c.idx < len(c.tr.Events) {
			nextIdx = c.tr.Events[c.idx].Index
		}
		remaining := float64(nextIdx) - c.pos
		if remaining <= 0 {
			consider(m.now, evCoreArrive, i)
			continue
		}
		rate := c.tr.IPC * float64(d.freq) / c.rate // instructions/second
		consider(m.now+units.Second(remaining/rate), evCoreArrive, i)
	}
	return best, kind, who
}

// applyFreq commits a pending frequency change; if the voltage ramp is
// still outstanding, the transition stays pending until its end.
func (m *Machine) applyFreq(d *domain) {
	p := d.pending
	d.freq = p.freqTarget
	d.msrs.Poke(msr.IA32PerfStatus,
		msr.EncodePerfStatus(uint8(d.freq.GHz()*10), float64(d.voltAt(m.now))))
	p.freqApply = 0
	p.freqTarget = 0
	if p.end <= m.now {
		d.mode = p.target
		d.pending = nil
	}
	m.syncTransition(d)
	m.syncDomainCores(d) // new frequency, stall window over
}

// fireDeadline delivers the timer interrupt to the strategy.
func (m *Machine) fireDeadline(domainID int) {
	d := m.domains[domainID]
	d.deadlineAt = 0
	m.res.DeadlineFires++
	m.handlerTime = m.now
	m.handlerCore = -1
	m.strategy.OnDeadline(controller{m}, domainID)
}

// excRingCap is the exception ring capacity; excKeep replicates the old
// copy-truncation low-water mark so thrashing-window counts stay
// byte-identical (the slice used to grow to excRingCap entries and then
// be copy-truncated to its newest excKeep).
const (
	excRingCap = 8192 // power of two (ring indices are masked)
	excKeep    = 4096
)

// recordException appends a #DO timestamp. Once the ring is full, the
// oldest entry is overwritten in place — the allocation-free equivalent
// of the old append-then-copy-truncate pattern.
func (d *domain) recordException(t units.Second) {
	if d.exceptions == nil {
		// Lazy one-time allocation at full ring capacity: only trapping
		// domains pay for the ring, and the first Run reaches steady
		// state (Reset keeps the backing array, so replay is alloc-free).
		d.exceptions = make([]units.Second, 0, excRingCap) //lint:allow allocfree one-time full-capacity ring allocation; Reset keeps the backing array so replay is alloc-free
	}
	if len(d.exceptions) < excRingCap {
		d.exceptions = append(d.exceptions, t) //lint:allow allocfree fills the preallocated ring within capacity; in-place overwrite once full
	} else {
		d.exceptions[int(d.excTotal&(excRingCap-1))] = t
	}
	d.excTotal++
}

// excKept returns how many recent exceptions are visible to
// ExceptionsWithin — exactly the slice length the old grow-then-truncate
// code would have at this append count (it cycled between excKeep and
// excRingCap entries).
func (d *domain) excKept() int {
	if d.excTotal <= excRingCap {
		return int(d.excTotal)
	}
	return excKeep + int((d.excTotal-excRingCap-1)%(excRingCap-excKeep+1))
}

// excNth returns the i-th newest recorded exception (0 = newest);
// i must be < excKept().
func (d *domain) excNth(i int) units.Second {
	return d.exceptions[int((d.excTotal-1-uint64(i))&(excRingCap-1))]
}

// coreArrive processes a core reaching its next trace event (or the end
// of its stream).
func (m *Machine) coreArrive(c *core) {
	if c.idx >= len(c.tr.Events) {
		// End of stream.
		c.pos = float64(c.tr.Total)
		c.finished = true
		c.done = m.now
		m.syncCore(c)
		return
	}
	ev := c.tr.Events[c.idx]
	c.pos = float64(ev.Index)
	d := m.domainOf(c.id)

	trapped := ev.Op.IsFaultable() || (m.cfg.TrapIMUL && ev.Op == isa.OpIMUL)
	if d.disabled && trapped {
		// #DO trap (§3.3). The instruction re-executes after the handler
		// unless the strategy emulates it.
		m.res.Exceptions++
		d.recordException(m.now)
		doCount, err := d.msrs.Read(msr.SUITDOCount)
		if err != nil {
			panic(err) // machine invariant: SUITDOCount is always mapped
		}
		d.msrs.Poke(msr.SUITDOCount, doCount+1)
		c.retry = true
		m.handlerTime = m.now + m.effExceptionDelay()
		m.handlerCore = c.id
		m.strategy.OnDisabledOpcode(controller{m}, m.domainIndexOf(c.id), c.id, ev.Op)
		m.handlerCore = -1
		c.blockedUntil = m.handlerTime
		m.syncCore(c)
		return
	}

	// Execute. Safety monitor: a faultable (or IMUL) instruction running
	// below its margin silently corrupts (§2.3) — SUIT configurations
	// must never reach this.
	off := m.safeOffset(d, m.now)
	if -off > m.physMargin[ev.Op] {
		//lint:allow allocfree faults only occur on misconfigured runs; the zero-fault steady state never appends
		m.res.Faults = append(m.res.Faults, FaultRecord{
			T: m.now, Core: c.id, Op: ev.Op, V: d.voltAt(m.now),
			Margin: -off - m.cfg.Faults.PhysicalMargin(ev.Op, m.cfg.HardenedIMUL),
		})
	}
	// Hardware deadline reset: executing an instruction that would be
	// disabled on the efficient curve restarts the count-down (§4.1).
	if d.deadlineAt > 0 && trapped && !m.cfg.NoDeadlineReset {
		d.deadlineAt = m.now + d.deadlineDur
		m.syncDeadline(d)
	}
	c.retry = false
	c.pos = float64(ev.Index) + 1
	c.idx++
	if c.idx >= len(c.tr.Events) && c.pos >= float64(c.tr.Total) {
		c.finished = true
		c.done = m.now
	}
	m.syncCore(c)
}

// advanceTo integrates power and residency from m.now to t and moves the
// clock. Within the segment each domain's frequency and each core's
// activity are constant; the voltage may be mid-ramp and is integrated
// analytically.
//
// Fast path: a settled domain (voltT1 <= m.now) has a constant voltage,
// so its ∫V²dt and ∫Vᵉdt integrands are cached per domain and the
// per-event Simpson/math.Pow work is skipped. The cached constants use
// the exact same floating-point expressions the general integral would
// evaluate for a single constant-voltage segment, keeping the energy
// totals bit-identical; the cache keys on voltGoal, which is the settled
// voltage, so any new ramp (which changes voltGoal or voltT1) naturally
// invalidates it.
//
//suit:hotpath
func (m *Machine) advanceTo(t units.Second) {
	dt := t - m.now
	if dt < 0 {
		panic("cpu: advanceTo into the past")
	}
	if dt == 0 {
		m.now = t
		return
	}
	// Fixed-grid operating-point sampling (domain 0). The frequency is
	// constant within a segment; the voltage may be mid-ramp.
	if iv := m.cfg.SampleEvery; iv > 0 {
		d0 := m.domains[0]
		for m.nextSample <= t && len(m.res.Samples) < timelineCap {
			//lint:allow allocfree bounded by timelineCap and gated on cfg.SampleEvery, which sweeps leave off
			m.res.Samples = append(m.res.Samples, StateSample{
				T: m.nextSample, F: d0.freq, V: d0.voltAt(m.nextSample), Mode: d0.mode,
			})
			m.nextSample += iv
		}
	}
	pm := m.cfg.Chip.Power
	fdt := float64(dt)
	energy := m.uncoreW * fdt
	for _, d := range m.domains {
		var v2, ve float64
		if d.voltT1 <= m.now {
			if !d.vcOK || d.vcGoal != d.voltGoal {
				m.refreshVoltCache(d)
			}
			v2 = d.vcV2 * fdt
			ve = d.vcVe * fdt
		} else if m.memo != nil {
			v2, ve = m.memo.integrate(d, m.now, t)
		} else {
			v2, ve = d.voltPowIntegralsRef(m.now, t, m.voltExp)
		}
		// Hoisted per-domain factors. Only multiplications are factored
		// out (left-associated exactly as the per-core expression was),
		// so every core's contribution keeps its original bit pattern.
		dyn := pm.CoreCeff * ve * float64(d.freq)
		leak := pm.LeakGV * v2
		for _, c := range d.cores {
			activity := 1.0
			switch {
			case c.finished:
				activity = 0.02
			case c.blockedUntil > m.now || d.stalledAt(m.now):
				activity = 0.1
			}
			// Core progress for running cores.
			if activity == 1.0 && !c.finished {
				c.pos += c.effRate(d.freq) * fdt
			}
			energy += dyn * activity
			energy += leak
		}
		// Residency for the first domain (reports use domain 0).
		if d == m.domains[0] {
			mode := d.mode
			if int(mode) < int(numModes) {
				m.res.Residency[mode] += dt
			}
		}
	}
	m.meter.Add(units.Power(units.Joule(energy), dt), dt)
	m.rapl.Deposit(units.Joule(energy))
	m.now = t
}

// refreshVoltCache computes the constant-voltage integrands at voltGoal.
// The expressions replicate, term by term, what voltPowIntegralsRef
// would evaluate over a single settled segment (va == vb == voltGoal):
// the quadrature sum is formed the same way and divided before scaling
// by dt, so the fast path is bit-identical to the slow path it bypasses.
// With the ramp memo active the Pow evaluation routes through the
// bits-keyed memo and the exponent-specialized kernel, both bit-equal
// to math.Pow by construction.
func (m *Machine) refreshVoltCache(d *domain) {
	v := float64(d.voltGoal)
	s := v * v
	d.vcV2 = (s + s + s) / 3
	switch {
	case m.voltExp == 2:
		d.vcVe = d.vcV2
	case m.memo != nil:
		p := m.memo.pow(v)
		d.vcVe = (p + 4*p + p) / 6
	default:
		p := math.Pow(v, m.voltExp) //lint:allow hotpath reference path with the ramp memo disabled; cache refresh runs once per settled voltage level, not per event
		d.vcVe = (p + 4*p + p) / 6
	}
	d.vcGoal = d.voltGoal
	d.vcOK = true
}

// voltPowIntegralsRef computes ∫V²dτ (leakage) and ∫Vᵉdτ (dynamic) over
// [t0, t1] in one pass over the domain's piecewise-linear voltage
// profile. The quadratic integral is exact; other exponents use
// Simpson's rule per linear segment, which is accurate to ~10⁻⁸
// relative over the millivolt-scale ramps that occur here. Only
// mid-ramp segments reach this slow path; settled domains use the
// per-domain cache in advanceTo.
//
// Consecutive advanceTo segments within a ramp share an endpoint, so
// math.Pow at the segment start is served from the domain's chain cache
// (pvV/pvP) — one Pow per segment is the previous segment's end.
//
// This is the retained reference implementation, kept verbatim as the
// differential oracle for rampMemo.integrate (the analogue of
// nextEventLinear for the event queue): production machines take the
// memoized path unless Config.NoRampMemo (suitsweep -rampmemo=false)
// selects this one, and FuzzVoltPowIntegrals asserts the two are
// bit-identical.
func (d *domain) voltPowIntegralsRef(t0, t1 units.Second, exp float64) (i2, ie float64) {
	// Split at the ramp boundaries. A fixed array keeps the hot loop
	// allocation-free.
	var points [4]units.Second
	points[0], points[1] = t0, t1
	n := 2
	if d.voltT0 > t0 && d.voltT0 < t1 {
		points[n] = d.voltT0
		n++
	}
	if d.voltT1 > t0 && d.voltT1 < t1 {
		points[n] = d.voltT1
		n++
	}
	// Simple 4-element sort.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && points[j] < points[j-1]; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	for i := 1; i < n; i++ {
		a, b := points[i-1], points[i]
		if b <= a {
			continue
		}
		va, vb := float64(d.voltAt(a)), float64(d.voltAt(b))
		seg := float64(b - a)
		// Exact: ∫(va + (vb-va)·s)² = (va² + va·vb + vb²)/3 × length.
		i2 += (va*va + va*vb + vb*vb) / 3 * seg
		if exp == 2 {
			continue
		}
		var pa float64
		if d.pvOK && d.pvV == va {
			pa = d.pvP
		} else {
			pa = math.Pow(va, exp) //lint:allow hotpath reference-path Simpson segment start; production uses rampMemo.integrate
		}
		vm := (va + vb) / 2
		pmid := math.Pow(vm, exp) //lint:allow hotpath reference-path Simpson midpoint; production uses rampMemo.integrate
		pb := math.Pow(vb, exp)   //lint:allow hotpath reference-path Simpson endpoint; production uses rampMemo.integrate
		d.pvV, d.pvP, d.pvOK = vb, pb, true
		ie += (pa + 4*pmid + pb) / 6 * seg
	}
	if exp == 2 {
		// With a quadratic dynamic exponent both integrals accumulate the
		// identical term sequence, so reuse keeps them bit-equal.
		ie = i2
	}
	return i2, ie
}
