package service

import (
	"fmt"
	"io"

	"suit/internal/cpu"
)

// WriteMetrics renders the service's telemetry in Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` comment pairs
// followed by one sample per line. Everything here is operator
// telemetry — results never depend on any of it.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.EngineStats()
	queued, capacity := s.QueueDepth()

	type sample struct {
		name  string
		help  string
		typ   string // counter | gauge
		value float64
	}
	samples := []sample{
		{"suitd_submissions_total", "Spec submissions received.", "counter", float64(s.submissions.Load())},
		{"suitd_cache_hits_total", "Submissions served without a new engine execution (registry dedup + persistent result store).", "counter", float64(s.dedupHits.Load() + s.storeHits.Load())},
		{"suitd_singleflight_dedup_total", "Submissions coalesced onto an existing registry job.", "counter", float64(s.dedupHits.Load())},
		{"suitd_result_store_hits_total", "Submissions served from the persistent result store.", "counter", float64(s.storeHits.Load())},
		{"suitd_rejected_total", "Submissions rejected with backpressure (admission queue full).", "counter", float64(s.rejected.Load())},
		{"suitd_jobs_executed_total", "Jobs whose execution ran to a terminal state in this daemon lifetime.", "counter", float64(s.jobsExecuted.Load())},
		{"suitd_queue_depth", "Jobs waiting in the admission queue.", "gauge", float64(queued)},
		{"suitd_queue_capacity", "Admission queue capacity.", "gauge", float64(capacity)},
		{"suitd_engine_inflight", "Scenario executions currently running (single-flight leaders).", "gauge", float64(s.Inflight())},
		{"suitd_engine_scenarios_total", "Scenario jobs submitted to the engine.", "counter", float64(st.Jobs)},
		{"suitd_engine_unique_total", "Unique scenario fingerprints submitted.", "counter", float64(st.Unique)},
		{"suitd_engine_ran_total", "Scenarios actually simulated.", "counter", float64(st.Ran)},
		{"suitd_engine_mem_hits_total", "Unique scenarios served from the in-memory memo.", "counter", float64(st.MemHits)},
		{"suitd_engine_disk_hits_total", "Unique scenarios served from the on-disk cache.", "counter", float64(st.DiskHits)},
		{"suitd_engine_coalesced_total", "Scenarios served by another run's in-flight execution.", "counter", float64(st.Coalesced)},
		{"suitd_engine_retried_total", "Scenario attempts retried.", "counter", float64(st.Retried)},
		{"suitd_engine_failed_total", "Scenarios that exhausted their retries.", "counter", float64(st.Failed)},
		{"suitd_engine_timeouts_total", "Scenario attempts killed by the watchdog.", "counter", float64(st.TimedOut)},
		{"suitd_engine_panics_total", "Scenario attempts that panicked and were contained.", "counter", float64(st.Panicked)},
		{"suitd_engine_quarantined_total", "Corrupt cache entries quarantined.", "counter", float64(st.Quarantined)},
		{"suitd_engine_resumed_total", "Scenarios already journaled as complete when their run started.", "counter", float64(st.Resumed)},
		{"suitd_engine_cache_hit_rate", "Fraction of unique scenarios served from a cache layer.", "gauge", st.HitRate()},
		{"suitd_engine_run_seconds_total", "Wall-clock seconds spent inside engine runs.", "counter", st.Elapsed.Seconds()},
		{"suitd_engine_throughput_scenarios_per_second", "Simulated scenarios per second of engine run time.", "gauge", st.Throughput()},
		{"suitd_engine_remote_total", "Scenarios executed by remote workers (within ran).", "counter", float64(st.Remote)},
		{"suitd_store_quarantined_total", "Corrupt result-store entries moved aside.", "counter", float64(s.store.Quarantined())},
	}
	ds := s.DistStats()
	tripped := 0.0
	if ds.Tripped {
		tripped = 1
	}
	samples = append(samples,
		sample{"suitd_dist_offered_total", "Work units offered to the remote worker tier.", "counter", float64(ds.Offered)},
		sample{"suitd_dist_completed_total", "Work units completed by workers with a verified digest.", "counter", float64(ds.Completed)},
		sample{"suitd_dist_local_fallbacks_total", "Offers that declined to local execution (no workers, tripped breaker, exhausted attempts).", "counter", float64(ds.LocalFallbacks)},
		sample{"suitd_dist_no_worker_abandons_total", "Offered units pulled back to local execution because every worker went silent mid-wait.", "counter", float64(ds.NoWorkerAbandons)},
		sample{"suitd_dist_leases_total", "Leases granted to workers.", "counter", float64(ds.Leases)},
		sample{"suitd_dist_leases_expired_total", "Leases expired without a heartbeat (worker crash or partition).", "counter", float64(ds.Expired)},
		sample{"suitd_dist_reassigned_total", "Units re-queued after a failed lease.", "counter", float64(ds.Reassigned)},
		sample{"suitd_dist_exhausted_total", "Units whose remote attempt budget ran out.", "counter", float64(ds.Exhausted)},
		sample{"suitd_dist_error_results_total", "Worker-reported failures (fingerprint mismatch, failed simulation).", "counter", float64(ds.ErrorResults)},
		sample{"suitd_dist_duplicates_total", "At-least-once re-deliveries that verified against the recorded digest.", "counter", float64(ds.Duplicates)},
		sample{"suitd_dist_conflicts_total", "Duplicate deliveries that did NOT match the recorded digest (determinism violation; always 0 in a healthy fleet).", "counter", float64(ds.Conflicts)},
		sample{"suitd_dist_bad_digests_total", "Results rejected for a torn or garbled body.", "counter", float64(ds.BadDigests)},
		sample{"suitd_dist_worker_quarantines_total", "Workers quarantined after consecutive lease failures.", "counter", float64(ds.Quarantines)},
		sample{"suitd_dist_trips_total", "Dispatcher circuit-breaker trips.", "counter", float64(ds.Trips)},
		sample{"suitd_dist_pending_units", "Units queued for workers right now.", "gauge", float64(ds.PendingUnits)},
		sample{"suitd_dist_leased_units", "Units out under a live lease right now.", "gauge", float64(ds.LeasedUnits)},
		sample{"suitd_dist_live_workers", "Workers seen within the liveness window.", "gauge", float64(ds.LiveWorkers)},
		sample{"suitd_dist_quarantined_workers", "Workers currently quarantined.", "gauge", float64(ds.QuarantinedWorkers)},
		sample{"suitd_dist_tripped", "Whether the dispatcher breaker is open (1) or closed (0).", "gauge", tripped},
	)
	rm := cpu.RampMemoStatsNow()
	samples = append(samples,
		sample{"suitd_rampmemo_pair_hits_total", "Mid-ramp segment integrations served from the pair memo.", "counter", float64(rm.PairHits)},
		sample{"suitd_rampmemo_pair_misses_total", "Mid-ramp segment integrations computed (pair memo misses).", "counter", float64(rm.PairMisses)},
		sample{"suitd_rampmemo_pair_evictions_total", "Pair memo entries overwritten by colliding keys.", "counter", float64(rm.PairEvictions)},
		sample{"suitd_rampmemo_pow_hits_total", "Pow evaluations served from the bits-keyed memo.", "counter", float64(rm.PowHits)},
		sample{"suitd_rampmemo_pow_misses_total", "Pow evaluations computed by the exponent-specialized kernel.", "counter", float64(rm.PowMisses)},
		sample{"suitd_rampmemo_pow_evictions_total", "Pow memo entries overwritten by colliding keys.", "counter", float64(rm.PowEvictions)},
	)
	for _, m := range samples {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}

	// Per-state job gauges, iterated in lifecycle order (never over a
	// map) so the page renders deterministically.
	counts := make(map[State]int, len(States))
	for _, j := range s.JobsInOrder() {
		counts[j.State()]++
	}
	if _, err := fmt.Fprintf(w, "# HELP suitd_jobs Registry jobs by lifecycle state.\n# TYPE suitd_jobs gauge\n"); err != nil {
		return err
	}
	for _, state := range States {
		if _, err := fmt.Fprintf(w, "suitd_jobs{state=%q} %d\n", string(state), counts[state]); err != nil {
			return err
		}
	}
	return nil
}
