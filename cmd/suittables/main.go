// Command suittables regenerates every table and figure of the SUIT paper
// (ASPLOS '24) from the simulation stack, printing paper-style tables and
// CSV figure series.
//
// Usage:
//
//	suittables [-exp all|<id>] [-quick] [-seed n]
//
// Experiment ids: table1 delays table2 fig12 fig13 table3 aging table4
// table5 fig14 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table6 table7 table8
// fig16 security, plus the extension experiments covert, baselines, sched
// and variance. "all" (default) runs everything; -quick shortens the
// simulated instruction streams for a fast pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"suit/internal/core"
	"suit/internal/engine"
)

type experiment struct {
	id   string
	desc string
	run  func(c cfg, w *os.File) error
}

type cfg struct {
	quick bool
	seed  uint64
	// specInstr / netInstr are the per-core stream lengths.
	specInstr uint64
	netInstr  uint64
}

var experiments = []experiment{
	{"table1", "Undervolting-induced instruction faults (Kogler et al.)", runTable1},
	{"delays", "§5.2/5.3 measured delays used by the simulation", runDelays},
	{"table2", "Score/power/frequency/efficiency response to undervolting", runTable2},
	{"fig12", "SPEC score, power, frequency vs voltage offset (i9-9900K)", runFig12},
	{"fig13", "Frequency-voltage pairs and the modified-IMUL curve", runFig13},
	{"table3", "Temperature guardband (fan RPM / core temperature)", runTable3},
	{"aging", "§5.6 aging guardband derivation", runAging},
	{"table4", "SPEC CPU2017 without SIMD instructions", runTable4},
	{"table5", "Out-of-order core configuration (gem5 substitute)", runTable5},
	{"fig14", "Slowdown with increasing IMUL latency", runFig14},
	{"fig5", "AES burst and the resulting DVFS curve switches", runFig5},
	{"fig6", "Long burst under the fV operating strategy", runFig6},
	{"fig7", "AES instruction timeline while VLC streams (gap sizes)", runFig7},
	{"fig8", "Voltage change delay, i9-9900K", runFig8},
	{"fig9", "Frequency change delay and stall, i9-9900K", runFig9},
	{"fig10", "Frequency change delay, Ryzen 7 7700X (no stall)", runFig10},
	{"fig11", "Per-core voltage-then-frequency change, Xeon Silver 4208", runFig11},
	{"table6", "Power saving and performance impact of SUIT (main result)", runTable6},
	{"table7", "Operating-strategy parameters and their sensitivity", runTable7},
	{"table8", "Benchmarks where compiling without SIMD beats SUIT", runTable8},
	{"fig16", "Per-benchmark performance and efficiency on CPU 𝒞 (fV)", runFig16},
	{"security", "§6.9 security analysis: reduction check and fault attack", runSecurity},
	{"covert", "§8 extension: curve-switching covert channel", runCovert},
	{"baselines", "§7 extension: Razor / ECC-guided / xDVS comparison", runBaselines},
	{"sched", "§7 extension: SUIT-aware task placement", runSched},
	{"variance", "run-to-run variance of flagship cells (mean ± σ)", runVariance},
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id to run, or 'all'")
		quick    = flag.Bool("quick", false, "shorter simulations (lower fidelity)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		outDir   = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		cacheDir = flag.String("cache", "", "directory for the on-disk result cache (reused across runs)")
	)
	flag.Parse()
	core.SetEngineOptions(engine.Options{
		Workers:  *workers,
		BaseSeed: *seed,
		CacheDir: *cacheDir,
		Progress: os.Stderr,
		Label:    "suittables",
	})
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	c := cfg{quick: *quick, seed: *seed, specInstr: 1_000_000_000, netInstr: 200_000_000}
	if *quick {
		c.specInstr = 200_000_000
		c.netInstr = 50_000_000
	}

	ids := map[string]experiment{}
	for _, e := range experiments {
		ids[e.id] = e
	}
	var torun []experiment
	if *exp == "all" {
		torun = experiments
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := ids[id]
			if !ok {
				var known []string
				for k := range ids {
					known = append(known, k)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(known, " "))
				os.Exit(2)
			}
			torun = append(torun, e)
		}
	}
	for _, e := range torun {
		fmt.Printf("==> %s — %s\n\n", e.id, e.desc)
		target := os.Stdout
		if *outDir != "" {
			f, err := os.Create(fmt.Sprintf("%s/%s.txt", *outDir, e.id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
				os.Exit(1)
			}
			target = f
		}
		err := e.run(c, target)
		if target != os.Stdout {
			target.Close()
			fmt.Printf("(written to %s/%s.txt)\n", *outDir, e.id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
