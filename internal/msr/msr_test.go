package msr

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadWriteKnownRegisters(t *testing.T) {
	f := NewFile()
	for _, a := range f.Addrs() {
		v, err := f.Read(a)
		if err != nil || v != 0 {
			t.Errorf("fresh register %#x: v=%d err=%v", uint32(a), v, err)
		}
		if err := f.Write(a, 0xDEAD); err != nil {
			t.Errorf("write %#x: %v", uint32(a), err)
		}
		if v, _ := f.Read(a); v != 0xDEAD {
			t.Errorf("readback %#x = %#x", uint32(a), v)
		}
	}
}

func TestUnknownMSRIsGP(t *testing.T) {
	f := NewFile()
	if _, err := f.Read(0xBEEF); err == nil {
		t.Error("read of unknown MSR did not fault")
	} else {
		var gp ErrUnknown
		if !errors.As(err, &gp) || gp.Addr != 0xBEEF {
			t.Errorf("wrong error: %v", err)
		}
	}
	if err := f.Write(0xBEEF, 1); err == nil {
		t.Error("write to unknown MSR did not fault")
	}
}

// testWrite and testRead fail the test on #GP instead of panicking: the
// register file itself only reports errors (suitlint panicpath).
func testWrite(t *testing.T, f *File, a Addr, v uint64) {
	t.Helper()
	if err := f.Write(a, v); err != nil {
		t.Fatalf("write %#x: %v", uint32(a), err)
	}
}

func testRead(t *testing.T, f *File, a Addr) uint64 {
	t.Helper()
	v, err := f.Read(a)
	if err != nil {
		t.Fatalf("read %#x: %v", uint32(a), err)
	}
	return v
}

func TestWriteHooksFireInOrderWithOldAndNew(t *testing.T) {
	f := NewFile()
	var calls []uint64
	f.OnWrite(SUITCurve, func(a Addr, old, new uint64) {
		if a != SUITCurve {
			t.Errorf("hook addr = %#x", uint32(a))
		}
		calls = append(calls, old, new)
	})
	testWrite(t, f, SUITCurve, 1)
	testWrite(t, f, SUITCurve, 0)
	want := []uint64{0, 1, 1, 0}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("calls[%d] = %d, want %d", i, calls[i], want[i])
		}
	}
}

func TestPokeDoesNotFireHooks(t *testing.T) {
	f := NewFile()
	fired := false
	f.OnWrite(IA32PerfStatus, func(Addr, uint64, uint64) { fired = true })
	f.Poke(IA32PerfStatus, 42)
	if fired {
		t.Error("Poke fired a hook")
	}
	if testRead(t, f, IA32PerfStatus) != 42 {
		t.Error("Poke did not store value")
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := NewFile()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n uint64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := f.Write(SUITDOCount, n); err != nil {
					panic(err)
				}
				if _, err := f.Read(SUITDOCount); err != nil {
					panic(err)
				}
			}
		}(uint64(i))
	}
	wg.Wait() // run with -race to exercise
}

func TestPerfCtlEncoding(t *testing.T) {
	for _, ratio := range []uint8{0, 8, 26, 47, 255} {
		v := EncodePerfCtl(ratio)
		if got := DecodePerfCtl(v); got != ratio {
			t.Errorf("ratio %d round trip = %d", ratio, got)
		}
	}
}

func TestPerfStatusEncoding(t *testing.T) {
	v := EncodePerfStatus(47, 1.174)
	if got := DecodePerfStatusRatio(v); got != 47 {
		t.Errorf("ratio = %d", got)
	}
	if got := DecodePerfStatusVolts(v); math.Abs(got-1.174) > 1.0/8192 {
		t.Errorf("volts = %v", got)
	}
}

func TestVoltOffsetEncoding(t *testing.T) {
	for _, mv := range []float64{0, -50, -70, -97, -250, 100} {
		enc := EncodeVoltOffset(mv)
		got := DecodeVoltOffset(enc)
		if math.Abs(got-mv) > 1 { // 1/1.024 mV quantum
			t.Errorf("offset %v mV round trip = %v", mv, got)
		}
	}
}

func TestVoltOffsetEncodingProperty(t *testing.T) {
	prop := func(raw int16) bool {
		mv := float64(raw % 500) // ±500 mV, within the 11-bit field
		got := DecodeVoltOffset(EncodeVoltOffset(mv))
		return math.Abs(got-mv) <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveConstants(t *testing.T) {
	if CurveConservative != 0 || CurveEfficient != 1 {
		t.Error("curve constants changed; MSR ABI is fixed")
	}
}
