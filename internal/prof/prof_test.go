package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	// stop must be idempotent: the SIGINT path and the deferred flush
	// can both call it.
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("unwritable CPU profile path accepted")
	}
}
