package cpu

import (
	"fmt"
	"suit/internal/emul"

	"suit/internal/dvfs"
	"suit/internal/isa"
	"suit/internal/units"
)

// Strategy is the OS half of SUIT (§4.3): it receives the #DO exception
// and deadline-timer interrupts and drives the hardware through the
// Controller, exactly as Listing 1 sketches.
//
// Hooks run in "handler time": controller calls that wait (RequestWait,
// Emulate) advance the handler clock, and state changes (Enable/Disable,
// ArmDeadline) take effect at the handler clock's current value. The
// trapping core resumes when the hook returns.
type Strategy interface {
	// Name identifies the strategy in reports ("fV", "f", "V", "e").
	Name() string
	// Init runs once at time zero, before any instruction executes —
	// the OS configuring the machine (disable instructions, select the
	// starting curve).
	Init(ctl Controller)
	// OnDisabledOpcode handles a #DO trap raised by core in domain.
	// If it does not emulate the instruction, the instruction re-executes
	// when the core resumes.
	OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode)
	// OnDeadline handles the deadline-timer interrupt of domain.
	OnDeadline(ctl Controller, domain int)
}

// Controller is the hardware interface strategies program, mirroring the
// SUIT MSRs (§3.2, §3.3) plus the p-state machinery.
type Controller interface {
	// Now returns the handler clock.
	Now() units.Second
	// Points returns the machine's operating points.
	Points() Points
	// Domains returns the number of DVFS domains.
	Domains() int
	// Mode returns the domain's current target mode.
	Mode(domain int) Mode
	// RequestWait initiates a transition to mode and advances the
	// handler clock to its completion (Listing 1's change_pstate_wait).
	RequestWait(domain int, mode Mode)
	// RequestAsync initiates a transition without waiting.
	RequestAsync(domain int, mode Mode)
	// DisableInstructions/EnableInstructions write the SUIT disable MSR
	// at the current handler clock.
	DisableInstructions(domain int)
	EnableInstructions(domain int)
	// ArmDeadline writes the deadline MSR: the timer fires after d
	// unless a faultable instruction resets it first (§4.1).
	ArmDeadline(domain int, d units.Second)
	// DisarmDeadline cancels the timer.
	DisarmDeadline(domain int)
	// ExceptionsWithin counts #DO traps in the domain during the last
	// window — the OS bookkeeping behind thrashing prevention.
	ExceptionsWithin(domain int, window units.Second) int
	// Emulate resolves the trapped instruction in software: the core is
	// charged the emulation-call delay plus the replacement's work, and
	// the instruction is consumed instead of re-executed. Only valid
	// inside OnDisabledOpcode.
	Emulate(op isa.Opcode)
}

// controller is the Machine's Controller implementation. It is recreated
// per hook invocation to carry the handler context.
type controller struct {
	m *Machine
}

func (c controller) Now() units.Second { return c.m.handlerTime }
func (c controller) Points() Points    { return c.m.pts }
func (c controller) Domains() int      { return len(c.m.domains) }

func (c controller) Mode(domain int) Mode { return c.m.domains[domain].target }

// at performs a at the handler clock: immediately when the handler has
// not advanced past simulation time, deferred otherwise. MSR writes and
// timer arming must not become visible to other cores before the handler
// actually reaches that line. Actions are typed values (applySched), not
// closures, so deferring one does not allocate.
func (c controller) at(a schedAction) {
	if c.m.handlerTime <= c.m.now {
		c.m.applySched(&a)
		return
	}
	a.t = c.m.handlerTime
	c.m.pushSched(a)
}

func (c controller) RequestWait(domain int, mode Mode) {
	end := c.m.requestTransition(domain, mode, c.m.handlerTime)
	if end > c.m.handlerTime {
		c.m.handlerTime = end
	}
}

func (c controller) RequestAsync(domain int, mode Mode) {
	c.m.requestTransition(domain, mode, c.m.handlerTime)
}

func (c controller) DisableInstructions(domain int) {
	d := c.m.domains[domain]
	d.disabledView = true
	c.at(schedAction{kind: schedDisable, d: d})
}

func (c controller) EnableInstructions(domain int) {
	d := c.m.domains[domain]
	d.disabledView = false
	c.at(schedAction{kind: schedEnable, d: d})
}

func (c controller) ArmDeadline(domain int, dur units.Second) {
	if dur <= 0 {
		panic(fmt.Sprintf("cpu: non-positive deadline %v", dur))
	}
	d := c.m.domains[domain]
	c.at(schedAction{kind: schedArmDeadline, d: d, dur: dur, expiry: c.m.handlerTime + dur})
}

func (c controller) DisarmDeadline(domain int) {
	c.at(schedAction{kind: schedDisarmDeadline, d: c.m.domains[domain]})
}

func (c controller) ExceptionsWithin(domain int, window units.Second) int {
	d := c.m.domains[domain]
	cutoff := c.m.handlerTime - window
	n := 0
	for i, kept := 0, d.excKept(); i < kept; i++ {
		if d.excNth(i) < cutoff {
			break
		}
		n++
	}
	return n
}

func (c controller) Emulate(op isa.Opcode) {
	m := c.m
	if m.handlerCore < 0 {
		panic("cpu: Emulate outside a #DO handler")
	}
	co := m.cores[m.handlerCore]
	d := m.domainOf(m.handlerCore)
	cost := m.cfg.Emul.Time(op, d.freq)
	m.handlerTime += cost
	if m.cfg.ExecuteEmulation {
		// Functionally execute the replacement: the machine refuses to
		// pretend an emulation exists that internal/emul cannot perform.
		a := emul.Vec128{Lo: uint64(co.idx)*0x9e3779b97f4a7c15 + 1, Hi: uint64(co.id) + 0xabcdef}
		b := emul.Vec128{Lo: a.Hi ^ 0x5555555555555555, Hi: a.Lo}
		if _, err := emul.Emulate(op, a, b, uint8(co.idx)); err != nil {
			panic(fmt.Sprintf("cpu: emulation of %v failed: %v", op, err))
		}
	}
	// The instruction is resolved in software: consume it.
	if co.retry {
		co.retry = false
		co.pos = float64(co.tr.Events[co.idx].Index) + 1
		co.idx++
	}
	m.res.Emulated++
}

// requestTransition plans a p-state change toward mode starting at time t,
// returning its completion time. A pending transition is superseded: the
// new plan starts from the instantaneous voltage/frequency (this is how a
// deadline expiring mid-ramp "cancels the voltage change", §4.3).
func (m *Machine) requestTransition(domainID int, mode Mode, t units.Second) units.Second {
	d := m.domains[domainID]
	target := m.pts.Get(mode)

	// Hardware interlock (§3.2): the efficient curve is refused while
	// the faultable instructions are enabled — unless this machine
	// models a pre-SUIT CPU (AllowUnsafe) for attack baselines.
	// (A deferred disable counts: the handler issued it before this
	// request, so check the handler-visible state.)
	if mode == ModeE && !m.handlerDisabled(d) && !m.cfg.AllowUnsafe {
		panic(fmt.Sprintf("cpu: strategy %q selected the efficient curve with instructions enabled", m.strategy.Name()))
	}

	// Supersede any in-flight transition from the instantaneous state:
	// milestones already in the past are committed first, the rest is
	// cancelled (a deadline expiring mid-ramp "cancels the voltage
	// change", §4.3).
	if p := d.pending; p != nil {
		if p.target == mode {
			// Already heading there; keep the existing plan.
			return p.safeAt
		}
		if p.freqApply > 0 && p.freqTarget != 0 && p.freqApply <= t {
			d.freq = p.freqTarget
		}
		if p.end <= t {
			d.mode = p.target
		}
	}
	curV := d.voltAt(t)
	d.pending = nil
	d.volt, d.voltGoal, d.voltT0, d.voltT1 = curV, curV, t, t

	if d.freq == target.F && curV == target.V {
		d.target = mode
		d.mode = mode
		m.syncTransition(d)
		m.syncDomainCores(d)
		return t
	}
	m.res.Switches++
	if m.cfg.RecordTimeline && domainID == 0 && len(m.res.Timeline) < timelineCap {
		m.res.Timeline = append(m.res.Timeline, ModeChange{T: t, Mode: mode})
	}
	d.target = mode

	tm := m.cfg.Chip.Transition
	norm := m.rng.NormFloat64

	// The transition record is embedded in the domain: a superseded
	// pending plan is fully read above before this overwrite, so reusing
	// the buffer is safe and keeps the steady state allocation-free.
	tr := &d.pendBuf
	*tr = transition{target: mode}
	voltChange := curV != target.V
	freqChange := d.freq != target.F

	var voltDelay, freqDelay units.Second
	if voltChange {
		voltDelay = dvfs.Jitter(tm.VoltDelay, tm.VoltDelaySigma, norm())
	}
	if freqChange {
		freqDelay = dvfs.Jitter(tm.FreqDelay, tm.FreqDelaySigma, norm())
	}

	switch {
	case voltChange && freqChange && target.V > curV:
		// Raising voltage and frequency: voltage must settle first
		// (raising f early would undervolt the new frequency).
		d.voltGoal = target.V
		d.voltT0, d.voltT1 = t, t+voltDelay
		tr.freqTarget = target.F
		tr.freqApply = t + voltDelay + freqDelay
		tr.stallFrom = tr.freqApply - tm.FreqStall
		tr.safeAt = tr.freqApply
	case voltChange && freqChange:
		// Lowering voltage: frequency drops first, voltage follows. The
		// target curve is safely reached once the frequency applies —
		// the outstanding voltage drop only sheds excess margin.
		tr.freqTarget = target.F
		tr.freqApply = t + freqDelay
		tr.stallFrom = tr.freqApply - tm.FreqStall
		d.voltGoal = target.V
		d.voltT0, d.voltT1 = t+freqDelay, t+freqDelay+voltDelay
		tr.safeAt = tr.freqApply
	case voltChange:
		d.voltGoal = target.V
		d.voltT0, d.voltT1 = t, t+voltDelay
		tr.safeAt = t
		if target.V > curV {
			tr.safeAt = d.voltT1
		}
	default: // frequency only
		tr.freqTarget = target.F
		tr.freqApply = t + freqDelay
		tr.stallFrom = tr.freqApply - tm.FreqStall
		tr.safeAt = tr.freqApply
	}
	if tr.stallFrom < t {
		tr.stallFrom = t
	}
	tr.voltDone = d.voltT1
	tr.end = max(tr.freqApply, d.voltT1)
	d.pending = tr
	m.syncTransition(d)
	m.syncDomainCores(d)
	return tr.safeAt
}

func (m *Machine) domainOf(coreID int) *domain {
	return m.domains[m.domainIndexOf(coreID)]
}

func (m *Machine) domainIndexOf(coreID int) int {
	if m.coreDomain != nil {
		return m.coreDomain[coreID]
	}
	if len(m.domains) == 1 {
		return 0
	}
	return coreID
}
