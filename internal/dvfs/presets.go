package dvfs

import (
	"suit/internal/power"
	"suit/internal/units"
)

// The CPU models of the paper's evaluation:
//
//	𝒜  Intel Core i9-9900K   — single frequency+voltage domain (§6.2)
//	ℬ  AMD Ryzen 7 7700X     — per-core frequency domains (§6.2)
//	𝒞  Intel Xeon Silver 4208 — per-core frequency and voltage domains (§6.2)
//	   Intel Core i5-1035G1  — TDP-bound laptop part (Table 2 only)
//
// Transition delays are the paper's measurements (§5.2, Figs 8–11); the
// DVFS curve of 𝒜 follows Fig 13 (1.174 V at 5 GHz, 183 mV/GHz gradient
// from 4 to 5 GHz); curves for the other parts are representative tables.
//
// Power models are calibrated against the paper's measured undervolting
// responses (§5.4, Fig 12, Table 2): the effective voltage exponent 3.5
// and per-chip Ceff reproduce the measured score/power/frequency changes
// at −70 mV and −97 mV under each chip's TDP — e.g. on 𝒜 the package
// draws ≈92 W at the 4.5 GHz all-core SPEC point, gains one p-state of
// TDP headroom when undervolted, and sheds ≈13 % power.

// IntelI9_9900K returns the CPU 𝒜 model.
func IntelI9_9900K() Chip {
	curve := Curve{Name: "i9-9900K", States: []PState{
		{Ratio: 8, F: units.GHz(0.8), V: units.Volt(0.760)},
		{Ratio: 16, F: units.GHz(1.6), V: units.Volt(0.800)},
		{Ratio: 24, F: units.GHz(2.4), V: units.Volt(0.852)},
		{Ratio: 30, F: units.GHz(3.0), V: units.Volt(0.896)},
		{Ratio: 36, F: units.GHz(3.6), V: units.Volt(0.942)},
		{Ratio: 40, F: units.GHz(4.0), V: units.Volt(0.991)},
		{Ratio: 43, F: units.GHz(4.3), V: units.Volt(1.046)},
		{Ratio: 45, F: units.GHz(4.5), V: units.Volt(1.083)},
		{Ratio: 47, F: units.GHz(4.7), V: units.Volt(1.119)},
		{Ratio: 50, F: units.GHz(5.0), V: units.Volt(1.174)},
	}}
	return Chip{
		Name:    "Intel Core i9-9900K",
		Cores:   8,
		Domains: SingleDomain,
		Transition: TransitionModel{
			FreqDelay:      units.Microseconds(22),
			FreqDelaySigma: units.Microseconds(0.21),
			FreqStall:      units.Microseconds(18),
			VoltDelay:      units.Microseconds(350),
			VoltDelaySigma: units.Microseconds(22),
		},
		Vendor:   curve,
		Power:    power.Model{CoreCeff: 1.55e-9, LeakGV: 1.1, Uncore: units.Watt(2), UncorePerCore: units.Watt(0.75), VoltExp: 3.5},
		TDP:      units.Watt(95),
		BusClock: units.MHz(100),
		// §5.3 on the i9-9900K: 0.34 µs exception entry, 0.77 µs
		// emulation call.
		ExceptionDelay: units.Microseconds(0.34),
		EmulCallDelay:  units.Microseconds(0.77),
	}
}

// AMDRyzen7700X returns the CPU ℬ model.
func AMDRyzen7700X() Chip {
	curve := Curve{Name: "Ryzen7-7700X", States: []PState{
		{Ratio: 8, F: units.GHz(0.8), V: units.Volt(0.720)},
		{Ratio: 17, F: units.GHz(1.7), V: units.Volt(0.780)},
		{Ratio: 25, F: units.GHz(2.5), V: units.Volt(0.840)},
		{Ratio: 30, F: units.GHz(3.0), V: units.Volt(0.885)},
		{Ratio: 36, F: units.GHz(3.6), V: units.Volt(0.950)},
		{Ratio: 42, F: units.GHz(4.2), V: units.Volt(1.040)},
		{Ratio: 45, F: units.GHz(4.5), V: units.Volt(1.100)},
		{Ratio: 46, F: units.GHz(4.6), V: units.Volt(1.120)},
		{Ratio: 48, F: units.GHz(4.8), V: units.Volt(1.210)},
		{Ratio: 50, F: units.GHz(5.0), V: units.Volt(1.250)},
		{Ratio: 54, F: units.GHz(5.4), V: units.Volt(1.300)},
	}}
	return Chip{
		Name:    "AMD Ryzen 7 7700X",
		Cores:   8,
		Domains: PerCoreFreq,
		Transition: TransitionModel{
			// Fig 10: 668 µs mean, σ = 292 µs, the core does not stall.
			FreqDelay:      units.Microseconds(668),
			FreqDelaySigma: units.Microseconds(292),
			FreqStall:      0,
			// No software voltage control (curve optimizer is static);
			// modelled as a slow firmware-mediated change.
			VoltDelay:      units.Milliseconds(1),
			VoltDelaySigma: units.Microseconds(100),
		},
		Vendor:   curve,
		Power:    power.Model{CoreCeff: 1.60e-9, LeakGV: 1.0, Uncore: units.Watt(4), UncorePerCore: units.Watt(1), VoltExp: 3.5},
		TDP:      units.Watt(105),
		BusClock: units.MHz(100),
		// §5.3 on the 7700X: 0.11 µs exception entry, 0.27 µs emulation
		// call — the short delays that make emulation comparatively
		// attractive on ℬ (§6.8).
		ExceptionDelay: units.Microseconds(0.11),
		EmulCallDelay:  units.Microseconds(0.27),
	}
}

// XeonSilver4208 returns the CPU 𝒞 model.
func XeonSilver4208() Chip {
	curve := Curve{Name: "XeonSilver-4208", States: []PState{
		{Ratio: 8, F: units.GHz(0.8), V: units.Volt(0.700)},
		{Ratio: 12, F: units.GHz(1.2), V: units.Volt(0.730)},
		{Ratio: 16, F: units.GHz(1.6), V: units.Volt(0.762)},
		{Ratio: 21, F: units.GHz(2.1), V: units.Volt(0.810)},
		{Ratio: 24, F: units.GHz(2.4), V: units.Volt(0.848)},
		{Ratio: 28, F: units.GHz(2.8), V: units.Volt(0.905)},
		{Ratio: 30, F: units.GHz(3.0), V: units.Volt(0.940)},
		{Ratio: 31, F: units.GHz(3.1), V: units.Volt(0.960)},
		{Ratio: 32, F: units.GHz(3.2), V: units.Volt(1.040)},
	}}
	return Chip{
		Name:    "Intel Xeon Silver 4208",
		Cores:   8,
		Domains: PerCoreBoth,
		Transition: TransitionModel{
			// Fig 11: p-state changes always apply voltage first
			// (335 µs, σ = 135) then frequency (31 µs, σ = 2.3) during
			// which the core stalls for 27 µs (σ = 2.5).
			FreqDelay:      units.Microseconds(31),
			FreqDelaySigma: units.Microseconds(2.3),
			FreqStall:      units.Microseconds(27),
			VoltDelay:      units.Microseconds(335),
			VoltDelaySigma: units.Microseconds(135),
			VoltFirst:      true,
		},
		Vendor:   curve,
		Power:    power.Model{CoreCeff: 3.05e-9, LeakGV: 1.3, Uncore: units.Watt(4), UncorePerCore: units.Watt(1.25), VoltExp: 3.5},
		TDP:      units.Watt(85),
		BusClock: units.MHz(100),
		// The paper measures trap delays on the client Intel part; the
		// Xeon shares the microarchitectural lineage.
		ExceptionDelay: units.Microseconds(0.34),
		EmulCallDelay:  units.Microseconds(0.77),
	}
}

// IntelI5_1035G1 returns the laptop part of Table 2: a strongly TDP-bound
// chip where undervolting barely changes the package power (it stays
// pinned at the limit) but buys a large sustained-frequency increase —
// score +7.9 %, power −0.5 %, frequency +12 % at −97 mV in the paper.
func IntelI5_1035G1() Chip {
	curve := Curve{Name: "i5-1035G1", States: []PState{
		{Ratio: 4, F: units.GHz(0.4), V: units.Volt(0.620)},
		{Ratio: 8, F: units.GHz(0.8), V: units.Volt(0.650)},
		{Ratio: 12, F: units.GHz(1.2), V: units.Volt(0.680)},
		{Ratio: 16, F: units.GHz(1.6), V: units.Volt(0.720)},
		{Ratio: 20, F: units.GHz(2.0), V: units.Volt(0.760)},
		{Ratio: 22, F: units.GHz(2.2), V: units.Volt(0.785)},
		{Ratio: 23, F: units.GHz(2.3), V: units.Volt(0.810)},
		{Ratio: 24, F: units.GHz(2.4), V: units.Volt(0.870)},
		{Ratio: 26, F: units.GHz(2.6), V: units.Volt(0.900)},
		{Ratio: 28, F: units.GHz(2.8), V: units.Volt(0.920)},
		{Ratio: 30, F: units.GHz(3.0), V: units.Volt(0.940)},
		{Ratio: 33, F: units.GHz(3.3), V: units.Volt(0.965)},
		{Ratio: 36, F: units.GHz(3.6), V: units.Volt(1.000)},
	}}
	return Chip{
		Name:    "Intel Core i5-1035G1",
		Cores:   4,
		Domains: SingleDomain,
		Transition: TransitionModel{
			FreqDelay:      units.Microseconds(25),
			FreqDelaySigma: units.Microseconds(1),
			FreqStall:      units.Microseconds(15),
			VoltDelay:      units.Microseconds(300),
			VoltDelaySigma: units.Microseconds(30),
		},
		Vendor:         curve,
		Power:          power.Model{CoreCeff: 3.1e-9, LeakGV: 0.6, Uncore: units.Watt(1), UncorePerCore: units.Watt(0.25), VoltExp: 3.5},
		TDP:            units.Watt(13),
		BusClock:       units.MHz(100),
		ExceptionDelay: units.Microseconds(0.30),
		EmulCallDelay:  units.Microseconds(0.70),
	}
}
