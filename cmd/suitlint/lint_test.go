package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"suit/internal/analysis"
	"suit/internal/analysis/load"
)

// TestRepoIsLintClean runs all six analyzers over the whole module
// in-process through one shared session — facts flowing in dependency
// order, stale-allow detection on — and demands a clean tree: every
// remaining finding must be fixed or carry an explained //lint:allow,
// and every //lint:allow must still be doing work.
func TestRepoIsLintClean(t *testing.T) {
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	session := analysis.NewSession(analyzers())
	session.ReportStale = true
	for _, pkg := range pkgs {
		diags, err := session.RunPackage(pkg)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Pkg.Path(), err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestAllocRegressionIsCaught is the tree-level half of the allocfree
// acceptance criterion: a copy of the real internal/ tree with an
// append seeded under cpu.runStep must produce an allocfree finding at
// exactly that line. The fixture half lives in
// internal/analysis/allocfree/testdata/src/hotregress.
func TestAllocRegressionIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("copies the tree and shells out to go list")
	}
	tmp := t.TempDir()
	copyTree(t, "../../internal", filepath.Join(tmp, "internal"))
	mod, err := os.ReadFile("../../go.mod")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), mod, 0o666); err != nil {
		t.Fatal(err)
	}

	// Seed the regression: a trace append on runStep's first line.
	runGo := filepath.Join(tmp, "internal", "cpu", "run.go")
	src, err := os.ReadFile(runGo)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "func (m *Machine) runStep() error {"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("anchor %q not found in %s", anchor, runGo)
	}
	mutated := strings.Replace(string(src), anchor,
		anchor+"\n\tmutationLeak = append(mutationLeak, m.now)", 1)
	mutated += "\n\nvar mutationLeak []units.Second\n"
	if err := os.WriteFile(runGo, []byte(mutated), 0o666); err != nil {
		t.Fatal(err)
	}

	pkgs, err := load.Packages(tmp, "./internal/cpu")
	if err != nil {
		t.Fatalf("loading mutated tree: %v", err)
	}
	session := analysis.NewSession(analyzers())
	var hits []string
	for _, pkg := range pkgs {
		diags, err := session.RunPackage(pkg)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Pkg.Path(), err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if d.Analyzer == "allocfree" && strings.HasSuffix(pos.Filename, "run.go") &&
				strings.Contains(d.Message, "append") {
				hits = append(hits, pos.String()+": "+d.Message)
			}
		}
	}
	if len(hits) == 0 {
		t.Fatal("seeded append under runStep was not flagged by allocfree")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o777); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTree(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVettoolProtocol builds the binary and drives it through the real
// cmd/go vet-tool handshake (-V=full, then per-package .cfg files).
// The package set deliberately spans a fact edge — internal/msr and
// internal/isa export Allocates facts that internal/cpu's hot path
// consumes via .vetx files — so the protocol's fact plumbing is
// exercised, not just its diagnostics.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "suitlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building suitlint: %v\n%s", err, out)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/units/...", "./internal/isa/...", "./internal/msr/...", "./internal/cpu/...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}

	// Positive control: a synthetic two-package module where the hot
	// package can ONLY be flagged if the dependency's Allocates fact
	// survived the .vetx round-trip. A silent fact-plumbing regression
	// would make this vet run pass, so demand the failure.
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vx\n\ngo 1.22\n")
	write("dep/dep.go", "package dep\n\nfunc Grow(s []int) []int { return append(s, 1) }\n")
	write("hot/hot.go", "package hot\n\nimport \"vx/dep\"\n\n//suit:hotpath\nfunc Step(s []int) []int {\n\treturn dep.Grow(s)\n}\n")
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet on the seeded module passed; dependency facts did not cross the .vetx boundary\n%s", out)
	}
	if !strings.Contains(string(out), "calls dep.Grow which may allocate") {
		t.Fatalf("vet failed but not with the fact-derived finding:\n%s", out)
	}
}
