// baselines: the §7 related-work comparison as an executable experiment.
//
// SUIT is compared against models of Razor (circuit-level timing
// speculation), ECC-feedback-guided undervolting and xDVS-style
// workload-aware undervolting on the same chip model. The prior
// approaches reach deeper offsets — by spending the aging guardband or
// adding shadow circuitry — while SUIT keeps the guardband intact and
// faults on nothing.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"os"

	"suit/internal/baselines"
	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/report"
	"suit/internal/units"
	"suit/internal/workload"
)

func main() {
	chip := dvfs.IntelI9_9900K()
	gb := guardband.Default()

	xz, _ := workload.ByName("557.xz")
	tr, err := xz.GenerateTrace(50_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	rows, err := baselines.Compare(chip, gb, tr, 1)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Undervolting approaches on %s (profiled workload: %s)", chip.Name, tr.Name),
		"approach", "offset", "efficiency", "spends guardband", "unsafe on new code", "hardware cost")
	for _, r := range rows {
		yn := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		t.AddRow(r.Name, r.Offset.String(), report.Pct(r.Eff),
			yn(r.SpendsAgingGuardband), yn(r.FaultsOnUnprofiled), r.HardwareComplexity)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Make the xDVS hazard concrete: the profile-derived offset faults
	// the moment the workload runs an AES round the profiler never saw.
	off, err := baselines.WorkloadAwareOffset(gb, tr, units.MilliVolts(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload-aware offset from the %s profile: %v\n", tr.Name, off)
	if gb.Faults(isa.OpAESENC, off, false) {
		fmt.Println("→ an unprofiled AESENC at this offset faults silently (the Plundervolt hazard);")
		fmt.Println("  SUIT instead traps it and re-executes safely (§3.5).")
	} else {
		fmt.Println("→ this profile already contains the most fragile instructions.")
	}
}
