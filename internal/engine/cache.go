package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// cacheEntry is the on-disk record: the full key is stored alongside the
// result so a filename hash collision reads as a miss, never as a wrong
// result, and an integrity digest over (key, result) detects garbled
// bytes that still happen to parse as JSON — a bit-flip inside a cached
// number would otherwise read back as a silently wrong result.
type cacheEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
	Sum    string          `json:"sum"`
}

// entrySum is the integrity digest stored in Sum: SHA-256 over the key
// and the raw result bytes.
func entrySum(key string, result []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// quarantineSuffix marks a corrupt cache file that was set aside: the
// entry stops being parsed on every lookup but stays on disk for
// inspection. Quarantined files are ignored by the cache forever.
const quarantineSuffix = ".quarantined"

// tmpPattern is the os.CreateTemp pattern for in-flight cache writes;
// cleanStaleTemps matches files it produces.
const tmpPattern = ".tmp-*"

// staleTempAge is how old an orphaned temp file must be before the
// cleanup sweep removes it. Generous enough that a temp file belonging
// to a concurrent live sweep (written and renamed within milliseconds)
// is never touched.
const staleTempAge = 10 * time.Minute

// CachePath returns the on-disk cache file for a (cache dir, base seed,
// fingerprint) triple: entries bucket by the SHA-256 of the key plus
// base seed, so caches warmed under different -seed values never alias.
// Exported so chaos tests and tooling can locate a specific entry.
func CachePath(dir string, baseSeed uint64, key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|base=%d", key, baseSeed)))
	return filepath.Join(dir, hex.EncodeToString(sum[:16])+".json")
}

func (e *Engine[S, R]) cachePath(key string) string {
	return CachePath(e.opts.CacheDir, e.opts.BaseSeed, key)
}

// decodeEntry parses an on-disk cache entry for key. ok reports a
// usable result; corrupt distinguishes undecodable bytes (truncated or
// garbled files, which the caller should quarantine) from a well-formed
// entry that simply belongs to a different key (a filename-hash
// collision — a miss, but not damage).
func decodeEntry[R any](data []byte, key string) (r R, ok, corrupt bool) {
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return r, false, true
	}
	if ent.Key != key {
		// Distinguish a healthy foreign entry (filename-hash collision)
		// from one whose key bytes were damaged: a foreign entry still
		// carries a digest consistent with its own key.
		if ent.Sum == entrySum(ent.Key, ent.Result) {
			return r, false, false
		}
		return r, false, true
	}
	if ent.Sum != entrySum(ent.Key, ent.Result) {
		return r, false, true
	}
	if err := json.Unmarshal(ent.Result, &r); err != nil {
		var zero R
		return zero, false, true
	}
	return r, true, false
}

// diskGet loads a cached result. A missing or foreign entry is a miss;
// a corrupt (truncated, torn, garbled) entry is quarantined so it is
// never parsed again and the job is recomputed — corruption can cost a
// recomputation, never a wrong result and never a failed sweep.
func (e *Engine[S, R]) diskGet(key string) (R, bool) {
	var zero R
	if e.opts.CacheDir == "" {
		return zero, false
	}
	path := e.cachePath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, false
	}
	r, ok, corrupt := decodeEntry[R](data, key)
	if corrupt {
		e.quarantine(path)
		return zero, false
	}
	return r, ok
}

// quarantine sets a corrupt cache file aside (best-effort: if the
// rename fails the file is removed instead, and if that fails too the
// entry simply stays a slow miss).
func (e *Engine[S, R]) quarantine(path string) {
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		os.Remove(path)
	}
	e.mu.Lock()
	e.stats.Quarantined++
	e.mu.Unlock()
}

// diskPut persists a result via write-to-temp + rename so concurrent
// sweeps sharing a cache directory never observe torn files. Cache
// writes are best-effort: a full disk or unmarshalable result type only
// disables reuse, it never fails the sweep.
func (e *Engine[S, R]) diskPut(key string, r R) {
	if e.opts.CacheDir == "" {
		return
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Key: key, Result: raw, Sum: entrySum(key, raw)})
	if err != nil {
		return
	}
	if err := os.MkdirAll(e.opts.CacheDir, 0o755); err != nil {
		return
	}
	path := e.cachePath(key)
	tmp, err := os.CreateTemp(e.opts.CacheDir, tmpPattern)
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// cleanStaleTemps removes orphaned temp files that a killed process
// left behind mid-write (the temp-file + rename protocol never cleans
// them up on SIGKILL). Only files matching the temp pattern and older
// than staleTempAge are removed, so the in-flight writes of concurrent
// live sweeps sharing the directory are safe. Best-effort: an
// unreadable directory just skips the sweep.
func cleanStaleTemps(dir string) (removed int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-staleTempAge) //lint:allow determinism the temp-file age check is cache-directory hygiene; it cannot influence any result
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, ".tmp-") {
			continue
		}
		info, err := ent.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}
