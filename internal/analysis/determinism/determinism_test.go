package determinism_test

import (
	"testing"

	"suit/internal/analysis/analysistest"
	"suit/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"suit/internal/engine", "suit/internal/report")
}

// TestTaintPropagation drives a non-result utility package and a
// result-affecting dependent through one session: wall-clock taint is
// computed (silently) in the former and reported at call sites in the
// latter, with explained sites breaking the chain.
func TestTaintPropagation(t *testing.T) {
	analysistest.RunDeps(t, "testdata", determinism.Analyzer,
		"suit/internal/cache", "suit/internal/core")
}
