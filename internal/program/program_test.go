package program

import (
	"testing"
	"testing/quick"

	"suit/internal/isa"
)

func TestInstructionCounting(t *testing.T) {
	p := &Program{
		Name: "count", IPC: 1,
		Body: Seq{
			Inst{Op: isa.OpALU, N: 10},
			Loop{Count: 3, Body: Seq{
				Inst{Op: isa.OpAESENC, N: 2},
				Inst{Op: isa.OpALU, N: 5},
			}},
		},
	}
	if got := p.Instructions(); got != 10+3*7 {
		t.Errorf("Instructions = %d, want 31", got)
	}
}

func TestRecordEventPositions(t *testing.T) {
	p := &Program{
		Name: "pos", IPC: 2,
		Body: Seq{
			Inst{Op: isa.OpALU, N: 100},
			Inst{Op: isa.OpAESENC, N: 3},
			Inst{Op: isa.OpALU, N: 50},
			Inst{Op: isa.OpVOR, N: 1},
		},
	}
	tr, err := p.Record()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total != 154 || tr.IPC != 2 || tr.Name != "pos" {
		t.Errorf("trace header %+v", tr)
	}
	wantIdx := []uint64{100, 101, 102, 153}
	if len(tr.Events) != len(wantIdx) {
		t.Fatalf("events = %v", tr.Events)
	}
	for i, w := range wantIdx {
		if tr.Events[i].Index != w {
			t.Errorf("event %d at %d, want %d", i, tr.Events[i].Index, w)
		}
	}
	if tr.Events[3].Op != isa.OpVOR {
		t.Errorf("last event op %v", tr.Events[3].Op)
	}
}

func TestRecordLoopsProduceBursts(t *testing.T) {
	// Two loop iterations with quiet ALU stretches between AES bursts:
	// the gap structure must derive from the loop shape.
	p := &Program{
		Name: "bursty", IPC: 1,
		Body: Seq{Loop{Count: 2, Body: Seq{
			Inst{Op: isa.OpALU, N: 1000},
			Inst{Op: isa.OpAESENC, N: 10},
		}}},
	}
	tr, err := p.Record()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 20 {
		t.Fatalf("%d events, want 20", len(tr.Events))
	}
	// First burst at 1000..1009, second at 2010..2019.
	if tr.Events[0].Index != 1000 || tr.Events[10].Index != 2010 {
		t.Errorf("burst starts %d, %d", tr.Events[0].Index, tr.Events[10].Index)
	}
	gaps := tr.Gaps()
	if gaps[0] != 1000 || gaps[10] != 1000 {
		t.Errorf("inter-burst gaps %d, %d", gaps[0], gaps[10])
	}
}

func TestRecordIncludesIMUL(t *testing.T) {
	p := VideoSAD(10)
	tr, err := p.Record()
	if err != nil {
		t.Fatal(err)
	}
	byOp := tr.CountByOpcode()
	if byOp[isa.OpIMUL] != 40 {
		t.Errorf("IMUL events = %d, want 40", byOp[isa.OpIMUL])
	}
	if byOp[isa.OpVPMAX] != 20 {
		t.Errorf("VPMAX events = %d, want 20", byOp[isa.OpVPMAX])
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := []*Program{
		{Name: "", IPC: 1, Body: Seq{Inst{Op: isa.OpALU, N: 1}}},
		{Name: "noipc", Body: Seq{Inst{Op: isa.OpALU, N: 1}}},
		{Name: "empty", IPC: 1, Body: Seq{}},
		{Name: "zeroloop", IPC: 1, Body: Seq{Loop{Count: 0, Body: Seq{Inst{Op: isa.OpALU, N: 1}}}}},
		{Name: "nop", IPC: 1, Body: Seq{Inst{Op: isa.OpNop, N: 1}}},
		{Name: "badop", IPC: 1, Body: Seq{Inst{Op: isa.Opcode(999), N: 1}}},
		{Name: "nil", IPC: 1, Body: Seq{nil}},
		{Name: "huge", IPC: 1, Body: Seq{Loop{Count: 1 << 30, Body: Seq{Inst{Op: isa.OpALU, N: 1 << 30}}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %q accepted", p.Name)
		}
		if _, err := p.Record(); err == nil {
			t.Errorf("program %q recorded", p.Name)
		}
	}
}

func TestRepeat(t *testing.T) {
	p := AESGCMSeal(64)
	r := p.Repeat(5)
	if r.Instructions() != 5*p.Instructions() {
		t.Errorf("Repeat(5) has %d instructions, want %d", r.Instructions(), 5*p.Instructions())
	}
	tr, err := r.Record()
	if err != nil {
		t.Fatal(err)
	}
	single, _ := p.Record()
	if len(tr.Events) != 5*len(single.Events) {
		t.Errorf("Repeat(5) has %d events, want %d", len(tr.Events), 5*len(single.Events))
	}
}

func TestKernelsValidateAndRecord(t *testing.T) {
	kernels := []*Program{
		AESGCMSeal(100_000),
		HTTPSRequest(100, 40_000),
		VideoSAD(5_000),
		CompressionBlock(50_000),
		AESGCMSeal(0), // degenerate sizes clamp to one unit
		HTTPSRequest(0, 8),
		VideoSAD(0),
		CompressionBlock(0),
	}
	for _, p := range kernels {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		tr, err := p.Record()
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if len(tr.Events) == 0 {
			t.Errorf("%s recorded no interesting instructions", p.Name)
		}
	}
}

func TestHTTPSRequestAESDominates(t *testing.T) {
	tr, err := HTTPSRequest(100, 50_000).Record()
	if err != nil {
		t.Fatal(err)
	}
	byOp := tr.CountByOpcode()
	// 100 KiB = 7 TLS records × 1024 blocks × 10 rounds + tag rounds.
	if byOp[isa.OpAESENC] < 70_000 {
		t.Errorf("AESENC events = %d, want ≥70k for a 100 KiB response", byOp[isa.OpAESENC])
	}
	if byOp[isa.OpVPCLMULQDQ] == 0 {
		t.Error("no GHASH multiplies recorded")
	}
}

func TestRecordCountsMatchProperty(t *testing.T) {
	// For random (bounded) loop shapes, the recorded event count must
	// equal loop count × per-iteration interesting instructions, and the
	// trace total must equal the program's instruction count.
	prop := func(loopRaw, aesRaw, aluRaw uint8) bool {
		loops := uint64(loopRaw%50) + 1
		aes := uint64(aesRaw % 20)
		alu := uint64(aluRaw%100) + 1
		p := &Program{Name: "prop", IPC: 1, Body: Seq{Loop{Count: loops, Body: Seq{
			Inst{Op: isa.OpALU, N: alu},
			Inst{Op: isa.OpAESENC, N: aes},
		}}}}
		tr, err := p.Record()
		if err != nil {
			return false
		}
		return uint64(len(tr.Events)) == loops*aes && tr.Total == loops*(alu+aes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
