// Package msr models the model-specific-register interface through which
// the OS half of SUIT drives the hardware half: the existing DVFS MSRs the
// paper measures with (IA32_PERF_CTL/STATUS, the undocumented voltage-
// offset MSR 0x150, APERF/MPERF), and the three new architectural MSRs
// SUIT introduces (§3.2, §3.3): opcode disable, curve select and the
// deadline timer.
//
// The register file is per logical domain (the CPU simulator instantiates
// one per core for per-core-domain CPUs, or one per package). Writes can
// carry side effects via hooks, which is how the DVFS machinery reacts to
// p-state requests with realistic delays.
package msr

import (
	"fmt"
	"sort"
	"sync"
)

// Addr is an MSR address.
type Addr uint32

// Architectural MSRs used by the paper's measurements, plus the SUIT MSRs.
const (
	// IA32MPerf counts at a fixed reference rate; IA32APerf counts at the
	// actual core clock. Their ratio yields the effective frequency
	// (§5.2 measures frequency-change delays this way).
	IA32MPerf Addr = 0xE7
	IA32APerf Addr = 0xE8
	// IA32PerfStatus reports the current p-state; bits 47:32 hold the
	// core voltage in 1/8192 V units on Intel parts (§5.5 reads it).
	IA32PerfStatus Addr = 0x198
	// IA32PerfCtl requests a p-state; bits 15:8 hold the target ratio
	// (multiples of the 100 MHz bus clock).
	IA32PerfCtl Addr = 0x199
	// VoltOffset is the undocumented Intel MSR 0x150 used for per-plane
	// voltage offsets (the paper's undervolting knob on client CPUs).
	VoltOffset Addr = 0x150

	// SUIT MSRs (new architectural state proposed by the paper).
	// SUITDisable holds the opcode disable mask; a set bit makes the
	// corresponding opcode raise #DO.
	SUITDisable Addr = 0x1500
	// SUITCurve selects the DVFS curve: 0 conservative, 1 efficient.
	// Hardware refuses the efficient curve while SUITDisable is zero.
	SUITCurve Addr = 0x1501
	// SUITDeadline arms the count-down deadline timer, in reference-clock
	// ticks; writing zero disarms it.
	SUITDeadline Addr = 0x1502
	// SUITDOCount counts #DO exceptions since reset (diagnostics and the
	// thrashing-prevention window in software use it).
	SUITDOCount Addr = 0x1503
)

// CurveConservative and CurveEfficient are the SUITCurve values.
const (
	CurveConservative uint64 = 0
	CurveEfficient    uint64 = 1
)

// WriteHook observes a write after the register value is stored.
type WriteHook func(addr Addr, old, new uint64)

// ErrUnknown reports access to an address the file does not implement.
type ErrUnknown struct{ Addr Addr }

func (e ErrUnknown) Error() string { return fmt.Sprintf("msr: #GP, unknown MSR %#x", uint32(e.Addr)) }

// File is a register file for one domain. Files are safe for concurrent
// use; the simulator itself is single-threaded per machine, but tooling
// reads registers from other goroutines.
type File struct {
	mu    sync.Mutex
	regs  map[Addr]uint64
	hooks map[Addr][]WriteHook
}

// NewFile returns a register file implementing the standard SUIT register
// set, all zeroed.
func NewFile() *File {
	f := &File{regs: make(map[Addr]uint64), hooks: make(map[Addr][]WriteHook)}
	for _, a := range []Addr{
		IA32MPerf, IA32APerf, IA32PerfStatus, IA32PerfCtl, VoltOffset,
		SUITDisable, SUITCurve, SUITDeadline, SUITDOCount,
	} {
		f.regs[a] = 0
	}
	return f
}

// Read returns the register value, or ErrUnknown (#GP) for unimplemented
// addresses.
func (f *File) Read(addr Addr) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.regs[addr]
	if !ok {
		return 0, ErrUnknown{addr} //lint:allow allocfree boxes only on the unmapped-register (#GP) path; hot callers treat that as a machine invariant and panic
	}
	return v, nil
}

// Write stores value and fires hooks, or returns ErrUnknown (#GP).
func (f *File) Write(addr Addr, value uint64) error {
	f.mu.Lock()
	old, ok := f.regs[addr]
	if !ok {
		f.mu.Unlock()
		return ErrUnknown{addr}
	}
	f.regs[addr] = value
	hooks := append([]WriteHook(nil), f.hooks[addr]...)
	f.mu.Unlock()
	for _, h := range hooks {
		h(addr, old, value)
	}
	return nil
}

// OnWrite registers a hook fired after each write to addr.
func (f *File) OnWrite(addr Addr, h WriteHook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hooks[addr] = append(f.hooks[addr], h)
}

// Poke sets a register without firing hooks — the hardware side updating
// status registers (e.g. IA32PerfStatus as the voltage settles).
func (f *File) Poke(addr Addr, value uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regs[addr] = value //lint:allow allocfree overwrites a key pre-populated by NewFile; the register map never grows here
}

// Addrs lists the implemented addresses in ascending order.
func (f *File) Addrs() []Addr {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Addr, 0, len(f.regs))
	for a := range f.regs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Field encodings ---

// EncodePerfCtl packs a frequency ratio (multiples of 100 MHz) into
// IA32PerfCtl format (bits 15:8).
func EncodePerfCtl(ratio uint8) uint64 { return uint64(ratio) << 8 }

// DecodePerfCtl extracts the requested ratio from an IA32PerfCtl value.
func DecodePerfCtl(v uint64) uint8 { return uint8(v >> 8) }

// EncodePerfStatus packs ratio (bits 15:8) and core voltage in 1/8192 V
// units (bits 47:32) into IA32PerfStatus format.
func EncodePerfStatus(ratio uint8, volts float64) uint64 {
	vu := uint64(volts*8192+0.5) & 0xFFFF
	return uint64(ratio)<<8 | vu<<32
}

// DecodePerfStatusVolts extracts the core voltage in volts.
func DecodePerfStatusVolts(v uint64) float64 {
	return float64((v>>32)&0xFFFF) / 8192
}

// DecodePerfStatusRatio extracts the current ratio.
func DecodePerfStatusRatio(v uint64) uint8 { return uint8(v >> 8) }

// EncodeVoltOffset packs a signed voltage offset in millivolts into the
// MSR 0x150 style: an 11-bit two's-complement field in 1/1024 V units at
// bits 31:21 (plane and command fields are not modelled).
func EncodeVoltOffset(milliVolts float64) uint64 {
	steps := int64(milliVolts*1.024 + sign(milliVolts)*0.5) // round to nearest
	return uint64(steps&0x7FF) << 21
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// DecodeVoltOffset extracts the offset in millivolts.
func DecodeVoltOffset(v uint64) float64 {
	raw := int64(v>>21) & 0x7FF
	if raw&0x400 != 0 { // sign-extend 11 bits
		raw -= 0x800
	}
	return float64(raw) / 1.024
}
