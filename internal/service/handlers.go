package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// maxSpecBytes bounds a submission body; a spec listing a full
// explicit grid fits comfortably, anything larger is abuse.
const maxSpecBytes = 1 << 20

// jobView is the JSON shape of a job in API responses.
type jobView struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Done  int     `json:"done"`
	Total int     `json:"total"`
	Error string  `json:"error,omitempty"`
	Spec  Spec    `json:"spec"`
	Href  string  `json:"href"`
	Rslt  *Result `json:"result,omitempty"`
}

func viewOf(j *Job, withResult bool) jobView {
	snap := j.Snapshot()
	v := jobView{
		ID: j.ID, State: snap.State, Done: snap.Done, Total: snap.Total,
		Error: snap.Error, Spec: j.Spec, Href: "/v1/sweeps/" + j.ID,
	}
	if withResult {
		v.Rslt = j.Result()
	}
	return v
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // headers are out; an encode error here has no recourse
}

// Handler assembles the daemon's HTTP API:
//
//	POST /v1/sweeps                submit a spec; the job ID is its fingerprint digest
//	GET  /v1/sweeps                list jobs in submission order
//	GET  /v1/sweeps/{id}           status + result
//	GET  /v1/sweeps/{id}/events    progress stream (SSE)
//	GET  /metrics                  Prometheus text format
//	GET  /healthz                  pure liveness (200 while the process serves)
//	GET  /readyz                   readiness (503 while draining or remote-only with a tripped dispatcher)
//
// plus the distributed-work endpoints suitworker pulls from
// (POST /v1/work/claim, /v1/work/{lease}/heartbeat, /v1/work/{lease}/result).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.dist.Register(mux)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// Distinguish "your spec is too large" from "your spec is
			// malformed": the former needs a smaller body, not a fixed one.
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("spec body exceeds the %d-byte limit", maxSpecBytes),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad spec: " + err.Error()})
		return
	}
	job, outcome, err := s.Submit(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	switch outcome {
	case SubmitQueued:
		writeJSON(w, http.StatusCreated, viewOf(job, false))
	case SubmitCoalesced, SubmitStored:
		// Content-addressed hit: same spec, same job, no new execution.
		writeJSON(w, http.StatusOK, viewOf(job, job.State() == StateDone))
	case SubmitQueueFull:
		retry := s.RetryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:      "admission queue full; retry later",
			RetryAfter: retry,
		})
	case SubmitDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "daemon is draining; resubmit after restart"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("unhandled submit outcome %d", outcome)})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.JobsInOrder()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = viewOf(j, false)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobView `json:"jobs"`
	}{views})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, viewOf(job, true))
}

// handleEvents streams job progress as Server-Sent Events: one
// `event: state` message per transition or progress tick, ending after
// the terminal event (clients see the stream close as completion).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	events, cancel := job.Subscribe()
	defer cancel()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, data); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// handleHealthz is pure liveness: 200 for as long as the process can
// serve HTTP, draining or not. Restart-deciding orchestration probes
// this; killing a daemon *because* it is draining gracefully would
// defeat the drain.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleReadyz is readiness: whether this daemon should receive new
// work. 503 while draining, and — for a remote-only daemon that cannot
// fall back locally — while the work dispatcher's breaker is tripped.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.Draining():
		status, code = "draining", http.StatusServiceUnavailable
	case s.cfg.Dist.RemoteOnly && s.dist.Tripped():
		// With local fallback (the default) a tripped dispatcher costs
		// nothing: sweeps run in-process. Remote-only daemons have no such
		// floor, so a tripped breaker means submissions would stall.
		status, code = "dispatcher tripped", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{status})
}
