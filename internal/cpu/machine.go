// Package cpu implements the event-driven CPU simulator of §6.2 (Fig 15):
// a machine executes one recorded instruction stream per core while an
// operating-strategy (the OS half of SUIT) reacts to Disabled Opcode
// exceptions and deadline-timer interrupts through the controller
// interface of Listing 1. The machine models DVFS domains with the
// measured transition delays, the #DO trap with its measured exception
// delay, the deadline timer with hardware reset-on-faultable-execution,
// per-segment package power integration, and a fault monitor that records
// any faultable instruction executed below its safe voltage — the
// security property SUIT must uphold and unsafe undervolting violates.
package cpu

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/msr"
	"suit/internal/power"
	"suit/internal/trace"
	"suit/internal/units"
)

// Mode identifies an operating point of the SUIT state machine (Fig 4).
type Mode uint8

// Operating points. ModeBase is the pre-SUIT baseline: the vendor curve at
// the TDP-sustainable state with no undervolt. ModeE is the efficient
// curve; ModeCf the conservative curve reached by lowering the frequency
// at the efficient voltage; ModeCv the conservative curve at full
// frequency and voltage.
const (
	ModeBase Mode = iota
	ModeE
	ModeCf
	ModeCv
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeE:
		return "E"
	case ModeCf:
		return "Cf"
	case ModeCv:
		return "Cv"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Point is a concrete operating point.
type Point struct {
	F units.Hertz
	V units.Volt
}

// Points are the machine's resolved operating points.
type Points struct {
	Base Point // conservative curve, no undervolt, TDP-sustainable
	E    Point // efficient curve: higher sustainable frequency, V−offset
	Cf   Point // conservative curve at the efficient voltage (lower f)
	Cv   Point // conservative curve at the efficient frequency (full V)
}

// Get returns the point for a mode.
func (p Points) Get(m Mode) Point {
	switch m {
	case ModeE:
		return p.E
	case ModeCf:
		return p.Cf
	case ModeCv:
		return p.Cv
	default:
		return p.Base
	}
}

// Config assembles a machine.
type Config struct {
	Chip dvfs.Chip
	// Traces holds one instruction stream per core to simulate; its
	// length sets the number of active cores (≤ Chip.Cores).
	Traces []*trace.Trace
	// Offset is the efficient-curve undervolt (negative, e.g. −97 mV).
	Offset units.Volt
	// Faults is the voltage-margin model used for curve determination
	// and the fault monitor.
	Faults *guardband.Model
	// HardenedIMUL selects the SUIT CPU with the 4-cycle IMUL.
	HardenedIMUL bool
	// IMULOverhead is the per-core relative slowdown of the hardened
	// IMUL for this workload (§6.1; from internal/uarch). Applied as a
	// reduction of the effective execution rate.
	IMULOverhead []float64
	// ExceptionDelay is the #DO entry+exit cost (§5.3).
	ExceptionDelay units.Second
	// Emul prices instruction emulation (§5.3 call delay + work).
	Emul emul.CostModel
	// AllowUnsafe permits selecting undervolted points without disabling
	// the faultable instructions — a CPU without SUIT's hardware
	// interlock, used for the attack baseline. SUIT machines must leave
	// this false.
	AllowUnsafe bool
	// Seed drives transition-delay jitter.
	Seed uint64
	// RecordTimeline captures curve-switch events (domain 0) in
	// Result.Timeline — the raw material of Figs 5 and 6.
	RecordTimeline bool
	// SampleEvery, when positive, samples domain 0's operating point
	// (frequency, instantaneous voltage, mode) on a fixed grid into
	// Result.Samples — the simulator-side analogue of the §5.2 polling
	// loops, and the direct data behind Fig 6's voltage/frequency traces.
	SampleEvery units.Second

	// DomainOf, when non-nil, overrides the chip's domain topology with
	// an explicit core→domain mapping (one entry per trace; domain ids
	// must be contiguous from 0). Cluster-granular DVFS domains are what
	// make SUIT-aware scheduling interesting (§7's Nest-style placement,
	// internal/sched).
	DomainOf []int

	// NoRampMemo disables the algebraic mid-ramp integration memo (the
	// pair-keyed segment memo and the bits-keyed Pow memo backed by the
	// exponent-specialized kernel): every mid-ramp segment then takes
	// the retained reference path voltPowIntegralsRef. Outputs are
	// bit-identical either way — this knob trades only speed, and exists
	// so suitsweep -rampmemo=false and the differential tests can pin
	// that equivalence.
	NoRampMemo bool

	// TrustedTraces skips per-trace validation in Validate. Set it only
	// for traces that were already validated once — e.g. shared immutable
	// artifacts from internal/core's trace cache, where re-walking a
	// 50k-event stream per sweep point costs more than the point's own
	// stepping.
	TrustedTraces bool

	// ExecuteEmulation runs the actual software replacement from
	// internal/emul for every emulated trap (on deterministic synthetic
	// operands) instead of only charging its cost — proving each trapped
	// opcode really has a working emulation. Expensive for emulation-
	// heavy runs; intended for verification passes.
	ExecuteEmulation bool

	// Ablation hooks (not part of the SUIT design; used to quantify the
	// design decisions of §4):
	//
	// NoDeadlineReset disables the hardware behaviour of §4.1 where
	// executing a faultable instruction restarts the deadline timer —
	// the timer then measures a fixed stay after the *first* trap.
	NoDeadlineReset bool
	// TrapIMUL treats IMUL as a member of the disabled set instead of
	// hardening it — the configuration §4.2 argues against (a trap every
	// ~560 instructions pins the CPU to the conservative curve).
	TrapIMUL bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Chip.Validate(); err != nil {
		return err
	}
	if len(c.Traces) == 0 {
		return errors.New("cpu: need at least one trace")
	}
	if len(c.Traces) > c.Chip.Cores {
		return fmt.Errorf("cpu: %d traces exceed %d cores", len(c.Traces), c.Chip.Cores)
	}
	for i, tr := range c.Traces {
		if tr == nil {
			return fmt.Errorf("cpu: trace %d is nil", i)
		}
		if c.TrustedTraces {
			continue
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("cpu: trace %d: %w", i, err)
		}
	}
	if c.Offset > 0 {
		return fmt.Errorf("cpu: positive undervolt offset %v", c.Offset)
	}
	if c.Faults == nil {
		return errors.New("cpu: nil fault model")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if len(c.IMULOverhead) != 0 && len(c.IMULOverhead) != len(c.Traces) {
		return errors.New("cpu: IMULOverhead length must match traces")
	}
	if c.ExceptionDelay < 0 {
		return errors.New("cpu: negative exception delay")
	}
	if c.DomainOf != nil {
		if len(c.DomainOf) != len(c.Traces) {
			return fmt.Errorf("cpu: DomainOf has %d entries for %d traces", len(c.DomainOf), len(c.Traces))
		}
		seen := map[int]bool{}
		maxID := -1
		for i, d := range c.DomainOf {
			if d < 0 {
				return fmt.Errorf("cpu: DomainOf[%d] = %d negative", i, d)
			}
			seen[d] = true
			if d > maxID {
				maxID = d
			}
		}
		for d := 0; d <= maxID; d++ {
			if !seen[d] {
				return fmt.Errorf("cpu: DomainOf skips domain %d", d)
			}
		}
	}
	return nil
}

// FaultRecord is one silent-data-corruption event: a faultable instruction
// executed while the supply voltage was below its requirement.
type FaultRecord struct {
	T      units.Second
	Core   int
	Op     isa.Opcode
	V      units.Volt
	Margin units.Volt // how far below the safe voltage it executed
}

// Result summarises one run.
type Result struct {
	// Duration is the wall-clock time until the last core finished.
	Duration units.Second
	// PerCore is each core's completion time.
	PerCore []units.Second
	// Energy is the package energy over Duration; AvgPower its mean.
	Energy   units.Joule
	AvgPower units.Watt
	// RAPLCounter is the final package energy-status reading.
	RAPLCounter uint32
	// Exceptions is the number of #DO traps; Emulated the subset resolved
	// by emulation; Switches the number of p-state transition requests.
	Exceptions int
	Emulated   int
	Switches   int
	// DeadlineFires counts timer interrupts delivered to the strategy.
	DeadlineFires int
	// Residency is the time the (first) domain spent at each mode.
	Residency [numModes]units.Second
	// Faults are the recorded silent corruptions (must be empty for any
	// SUIT configuration).
	Faults []FaultRecord
	// Instructions is the total committed over all cores.
	Instructions uint64
	// Timeline holds domain 0's curve-switch requests when
	// Config.RecordTimeline is set (capped at timelineCap entries).
	Timeline []ModeChange
	// Samples holds the fixed-grid operating-point samples when
	// Config.SampleEvery is set (capped at timelineCap entries).
	Samples []StateSample
}

// StateSample is one operating-point observation of domain 0.
type StateSample struct {
	T    units.Second
	F    units.Hertz
	V    units.Volt
	Mode Mode
}

// ModeChange is one curve-switch request on the timeline.
type ModeChange struct {
	T    units.Second
	Mode Mode
}

// timelineCap bounds timeline memory for switch-heavy runs.
const timelineCap = 1 << 18

// EfficientShare returns the fraction of time on the efficient curve.
func (r Result) EfficientShare() float64 {
	var tot units.Second
	for _, d := range r.Residency {
		tot += d
	}
	if tot == 0 {
		return 0
	}
	return float64(r.Residency[ModeE] / tot)
}

// core is one simulated core's execution state.
type core struct {
	id       int
	tr       *trace.Trace
	idx      int     // next trace event
	pos      float64 // current instruction index (fractional progress)
	rate     float64 // slowdown divisor: 1 + IMULOverhead
	finished bool
	// blockedUntil: the core executes nothing before this time (handler
	// execution, emulation, wait-for-transition).
	blockedUntil units.Second
	// retry: the pending faultable instruction trapped and must
	// re-execute once the core unblocks.
	retry bool
	done  units.Second // completion time

	// Effective-rate memo: IPC·f/rate is a pure function of the domain
	// frequency (IPC and the slowdown divisor are fixed per core), so the
	// division — evaluated once per arrival and per power segment — is
	// cached keyed on freq alone. Pure, hence legal to keep across Reset;
	// cleared there anyway under the reset-or-pure defense-in-depth rule.
	rateOK   bool
	rateFreq units.Hertz
	rateVal  float64
}

// effRate returns the core's effective execution rate in
// instructions/second at domain frequency f: the exact expression
// c.tr.IPC * float64(f) / c.rate, memoized on f so the hot path pays a
// compare instead of a divide. Identical bits by purity — same operands,
// same operation, same result.
func (c *core) effRate(f units.Hertz) float64 {
	if !c.rateOK || c.rateFreq != f {
		c.rateVal = c.tr.IPC * float64(f) / c.rate
		c.rateFreq = f
		c.rateOK = true
	}
	return c.rateVal
}

// transition is an in-flight p-state change of a domain.
type transition struct {
	target     Mode
	freqTarget units.Hertz
	freqApply  units.Second // when the new frequency takes effect (0 = none)
	stallFrom  units.Second
	voltDone   units.Second // when the ramp ends (0 = none pending)
	end        units.Second
	// safeAt is when the domain is safely *at* the target curve for the
	// purpose of re-enabling instructions: rising-voltage transitions
	// must settle fully, falling-voltage ones only need the frequency
	// applied (the residual voltage drop only adds margin).
	safeAt units.Second
}

// domain is one frequency(+voltage) domain.
type domain struct {
	id    int
	cores []*core
	msrs  *msr.File

	mode     Mode // residency attribution: last *completed* target
	target   Mode // requested target
	freq     units.Hertz
	volt     units.Volt // voltage at voltT (start of current ramp segment)
	voltGoal units.Volt
	voltT0   units.Second // ramp start time
	voltT1   units.Second // ramp end (== voltT0 when settled)

	disabled bool // faultable instructions disabled (hardware state)
	// disabledView is the OS-visible value: handler writes become
	// visible here immediately while the hardware effect lands at the
	// handler clock.
	disabledView bool

	pending *transition
	// pendBuf backs pending: transitions are planned into this embedded
	// record instead of a fresh allocation per request (requestTransition
	// fully consumes any superseded plan before overwriting it).
	pendBuf transition

	deadlineAt  units.Second // 0 = disarmed
	deadlineDur units.Second

	// exceptions holds recent #DO timestamps for thrashing prevention.
	// It fills to excRingCap entries and then becomes a ring indexed by
	// excTotal (see recordException/excKept/excNth in run.go).
	exceptions []units.Second
	excTotal   uint64 // total #DO recorded over the run

	// Constant-voltage integrand cache for advanceTo's fast path:
	// when the ramp is settled, vcV2/vcVe hold the per-second ∫V²/∫Vᵉ
	// integrands at vcGoal. Keyed on voltGoal — starting a new ramp
	// changes voltGoal or un-settles voltT1, either of which bypasses or
	// refreshes the cache.
	vcOK       bool
	vcGoal     units.Volt
	vcV2, vcVe float64

	// Pow chain cache for the mid-ramp slow path: successive integration
	// segments share an endpoint (this segment's start voltage is the
	// previous segment's end voltage), so the last math.Pow(v, exp) result
	// is memoized. Pow is pure, so the cache never needs invalidation.
	pvOK     bool
	pvV, pvP float64

	// Conservative-curve voltage at the current frequency, memoized for
	// the per-arrival safety monitor. VoltageAt is a pure function of the
	// frequency, so the cache is keyed on freq alone.
	consVOK   bool
	consVFreq units.Hertz
	consV     units.Volt
}

// voltAt returns the domain voltage at time t (linear regulator ramp).
func (d *domain) voltAt(t units.Second) units.Volt {
	if t >= d.voltT1 || d.voltT1 == d.voltT0 {
		return d.voltGoal
	}
	if t <= d.voltT0 {
		return d.volt
	}
	frac := float64(t-d.voltT0) / float64(d.voltT1-d.voltT0)
	return d.volt + units.Volt(frac)*(d.voltGoal-d.volt)
}

// stalledAt reports whether the domain cores are stalled by a frequency
// change at time t.
func (d *domain) stalledAt(t units.Second) bool {
	return d.pending != nil && d.pending.freqApply > 0 &&
		t >= d.pending.stallFrom && t < d.pending.freqApply
}

// Machine is the simulated CPU.
type Machine struct {
	cfg     Config
	pts     Points
	cons    dvfs.Curve // conservative (vendor) curve
	domains []*domain
	cores   []*core
	rng     *rand.Rand
	pcg     *rand.PCG // rng's source, reseedable in place by Reset

	now      units.Second
	meter    power.Integrator
	rapl     *power.RAPL
	strategy Strategy

	// voltExp is the resolved dynamic-power exponent (Config default
	// applied once); uncoreW the precomputed package floor in watts.
	voltExp float64
	uncoreW float64
	// memo is the algebraic mid-ramp integration memo (pair-keyed
	// segment integrands + bits-keyed Pow backed by the
	// exponent-specialized kernel; see powkernel.go). Nil when the
	// exponent is quadratic (no Pow on any path) or Config.NoRampMemo
	// selects the reference path. Pure — survives Reset by design, and a
	// Batch may point all members with the same exponent at one shared
	// table (see NewBatch).
	memo *rampMemo
	// physMargin is Faults.PhysicalMargin per opcode, precomputed so the
	// per-arrival safety monitor indexes an array instead of hashing into
	// the model's margin map.
	physMargin [isa.NumOpcodes]units.Volt

	// handlerTime is the OS-handler clock while a strategy hook runs.
	handlerTime units.Second
	// handlerCore is the core executing the current #DO handler (-1 in
	// timer context).
	handlerCore int
	// scheduled holds handler effects that land later in simulated time.
	// Entries are tombstoned in place (done flag) and the slice resets
	// once all are consumed, keeping indices — and the insertion-order
	// tie-break — stable with O(1) removal.
	scheduled []schedAction
	schedLive int
	// eq is the indexed event scheduler (see eventq.go).
	eq eventQueue
	// nextSample is the next grid point when SampleEvery is active.
	nextSample units.Second
	// coreDomain maps core → domain when Config.DomainOf is set.
	coreDomain []int

	// Run-loop state, held on the machine so a Batch can interleave
	// runStep calls across members (see batch.go).
	runDone   bool
	stepCount int
	// ffEligible marks a single-core single-domain topology, the shape
	// fastForward's inline arrival processing is specialised for.
	ffEligible bool

	// Test hooks: linearScan selects the reference nextEventLinear scan
	// instead of the heap; audit cross-checks the heap after every event;
	// evLog records the dispatched (t, kind, who) sequence;
	// noFastForward forces every arrival through the event queue.
	linearScan    bool
	audit         bool
	evLog         *[]eventRecord
	noFastForward bool

	res Result
}

// schedKind enumerates the deferred handler effects.
type schedKind uint8

const (
	schedDisable schedKind = iota
	schedEnable
	schedArmDeadline
	schedDisarmDeadline
)

// schedAction is a deferred handler effect as plain data (no closure):
// kind selects the operation in applySched, d its target domain.
type schedAction struct {
	t           units.Second
	kind        schedKind
	d           *domain
	dur, expiry units.Second // deadline arming parameters
	done        bool         // consumed (tombstone)
}

// handlerDisabled reports the OS-visible disable state of d.
func (m *Machine) handlerDisabled(d *domain) bool { return d.disabledView }

// New builds a machine. The operating points are resolved from the chip,
// the fault model and the offset: the efficient point gets the TDP
// headroom the undervolt frees up (§5.4).
func New(cfg Config, strategy Strategy) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, errors.New("cpu: nil strategy")
	}
	chip := cfg.Chip
	// P-states are provisioned for the all-core sustained load: vendors
	// pick the guaranteed base bins assuming every core is busy, and the
	// paper's measured frequency gains (Table 2) are all-core SPEC runs.
	baseState := chip.SustainableState(chip.Vendor, 0, chip.Cores)
	effState := chip.SustainableState(chip.Vendor, cfg.Offset, chip.Cores)
	fE := effState.F
	vE := chip.Vendor.VoltageAt(fE) + cfg.Offset
	// Cf: the highest frequency the conservative curve certifies at the
	// efficient voltage (Fig 4's horizontal move), floored to the bus
	// clock granularity the ratio field can express.
	fCf := chip.Vendor.FrequencyAt(vE)
	if chip.BusClock > 0 {
		fCf = units.Hertz(math.Floor(float64(fCf)/float64(chip.BusClock))) * chip.BusClock
	}
	if min := chip.Vendor.Min().F; fCf < min {
		fCf = min
	}
	// Cv is the conservative curve at full sustained performance. The
	// undervolt-earned frequency headroom evaporates at full voltage —
	// sustaining fE at the conservative voltage would exceed the TDP —
	// so Cv coincides with the baseline operating point.
	pts := Points{
		Base: Point{F: baseState.F, V: chip.Vendor.VoltageAt(baseState.F)},
		E:    Point{F: fE, V: vE},
		Cf:   Point{F: fCf, V: vE},
		Cv:   Point{F: baseState.F, V: chip.Vendor.VoltageAt(baseState.F)},
	}

	seededPCG := rand.NewPCG(cfg.Seed, cfg.Seed^0x5DEECE66D)
	m := &Machine{
		cfg:         cfg,
		pts:         pts,
		cons:        chip.Vendor,
		pcg:         seededPCG,
		rng:         rand.New(seededPCG),
		rapl:        power.NewRAPL(0),
		strategy:    strategy,
		handlerCore: -1,
	}
	m.voltExp = cfg.Chip.Power.VoltExp
	if m.voltExp == 0 {
		m.voltExp = 2
	}
	for op := 0; op < isa.NumOpcodes; op++ {
		m.physMargin[op] = cfg.Faults.PhysicalMargin(isa.Opcode(op), cfg.HardenedIMUL)
	}

	for i, tr := range cfg.Traces {
		rate := 1.0
		if len(cfg.IMULOverhead) > 0 {
			rate = 1 + cfg.IMULOverhead[i]
		}
		m.cores = append(m.cores, &core{id: i, tr: tr, rate: rate})
	}

	switch {
	case cfg.DomainOf != nil:
		maxID := 0
		for _, d := range cfg.DomainOf {
			if d > maxID {
				maxID = d
			}
		}
		groups := make([][]*core, maxID+1)
		for i, c := range m.cores {
			d := cfg.DomainOf[i]
			groups[d] = append(groups[d], c)
		}
		m.coreDomain = cfg.DomainOf
		for id, g := range groups {
			m.domains = append(m.domains, newDomain(id, g, pts.Base))
		}
	case chip.Domains == dvfs.SingleDomain:
		m.domains = []*domain{newDomain(0, m.cores, pts.Base)}
	default:
		for i, c := range m.cores {
			m.domains = append(m.domains, newDomain(i, []*core{c}, pts.Base))
		}
	}
	m.res.PerCore = make([]units.Second, len(m.cores))
	// Identical expression to the uncore term advanceTo used to evaluate
	// per event; hoisting the sum preserves the bit pattern.
	pm := cfg.Chip.Power
	m.uncoreW = float64(pm.Uncore) + float64(pm.UncorePerCore)*float64(len(m.cores))
	m.ffEligible = len(m.cores) == 1 && len(m.domains) == 1
	m.eq.init(len(m.cores) + 4*len(m.domains))
	return m, nil
}

// resetMSRs are the registers the simulator itself writes during a run;
// Reset restores them to their boot values.
var resetMSRs = [...]msr.Addr{msr.SUITDisable, msr.SUITCurve, msr.SUITDeadline, msr.SUITDOCount}

// Reset rewinds the machine to its initial state so it can be Run again
// with the same configuration and seed. A Reset machine produces a
// byte-identical Result to a freshly built one, without allocating —
// the benchmark harness measures steady-state Run cost with it. The
// strategy is the caller's: it must be stateless (all shipped strategies
// are) or reset separately.
func (m *Machine) Reset() {
	m.now = 0
	m.handlerTime = 0
	m.handlerCore = -1
	m.nextSample = 0
	m.meter.Reset()
	m.rapl.Reset()
	m.pcg.Seed(m.cfg.Seed, m.cfg.Seed^0x5DEECE66D)
	m.scheduled = m.scheduled[:0]
	m.schedLive = 0
	m.eq.init(len(m.cores) + 4*len(m.domains))
	for _, c := range m.cores {
		c.idx = 0
		c.pos = 0
		c.finished = false
		c.blockedUntil = 0
		c.retry = false
		c.done = 0
		c.rateOK = false
	}
	start := m.pts.Base
	for _, d := range m.domains {
		d.mode, d.target = ModeBase, ModeBase
		d.freq = start.F
		d.volt, d.voltGoal = start.V, start.V
		d.voltT0, d.voltT1 = 0, 0
		d.disabled, d.disabledView = false, false
		d.pending = nil
		d.deadlineAt, d.deadlineDur = 0, 0
		d.exceptions = d.exceptions[:0]
		d.excTotal = 0
		// Every per-domain value cache is dropped, pure or not, under the
		// reset-or-pure rule: vcOK (settled integrands), pvOK (the Pow
		// chain cache — previously left populated across replays, safe
		// only by purity) and consVOK (conservative-curve voltage). The
		// machine-level ramp memo is the deliberate exception: it is pure
		// by construction (keyed on raw float64 bits, backed by a
		// deterministic kernel), so replays keep its tables warm.
		d.vcOK = false
		d.pvOK = false
		d.consVOK = false
		for _, a := range resetMSRs {
			d.msrs.Poke(a, 0)
		}
		d.msrs.Poke(msr.IA32PerfStatus, msr.EncodePerfStatus(uint8(start.F.GHz()*10), float64(start.V)))
	}
	pc := m.res.PerCore
	for i := range pc {
		pc[i] = 0
	}
	m.res = Result{
		PerCore:  pc,
		Faults:   m.res.Faults[:0],
		Timeline: m.res.Timeline[:0],
		Samples:  m.res.Samples[:0],
	}
}

func newDomain(id int, cores []*core, start Point) *domain {
	d := &domain{
		id:       id,
		cores:    cores,
		msrs:     msr.NewFile(),
		mode:     ModeBase,
		target:   ModeBase,
		freq:     start.F,
		volt:     start.V,
		voltGoal: start.V,
		// The exception ring (64 KiB per domain at excRingCap) is
		// allocated lazily on the first #DO in recordException: trap-free
		// runs — every non-SUIT baseline machine — never pay for it.
	}
	d.msrs.Poke(msr.IA32PerfStatus, msr.EncodePerfStatus(uint8(start.F.GHz()*10), float64(start.V)))
	return d
}

// Points returns the resolved operating points.
func (m *Machine) Points() Points { return m.pts }

// Domains returns the number of DVFS domains.
func (m *Machine) Domains() int { return len(m.domains) }

// MSRs exposes a domain's register file (read-only use by tools/tests).
func (m *Machine) MSRs(domain int) *msr.File { return m.domains[domain].msrs }

// Now returns the current simulation time.
func (m *Machine) Now() units.Second { return m.now }

// safeOffset returns how far the instantaneous voltage sits below the
// conservative curve for the domain's current frequency.
func (m *Machine) safeOffset(d *domain, t units.Second) units.Volt {
	if !d.consVOK || d.consVFreq != d.freq {
		d.consV = m.cons.VoltageAt(d.freq)
		d.consVFreq = d.freq
		d.consVOK = true
	}
	return d.voltAt(t) - d.consV
}

// effExceptionDelay returns the configured #DO entry/exit cost, with a
// minimum so that zero-cost configs still order events sanely.
func (m *Machine) effExceptionDelay() units.Second {
	if m.cfg.ExceptionDelay > 0 {
		return m.cfg.ExceptionDelay
	}
	return units.Second(1e-9)
}
