package main

import (
	"fmt"
	"os"

	"suit/internal/core"
	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/report"
	"suit/internal/units"
	"suit/internal/workload"
)

// runFig5 shows an AES burst in the VLC trace and the DVFS curve switches
// SUIT performs around it.
func runFig5(c cfg, w *os.File) error {
	// VLC's AES bursts are tens of millions of instructions apart; keep
	// the stream long enough to show several even in quick mode.
	instr := max(c.netInstr, 200_000_000)
	o, err := core.Run(core.Scenario{
		Chip: dvfs.XeonSilver4208(), Bench: workload.VLC(), Kind: core.KindFV,
		SpendAging: true, Instructions: instr, Seed: c.seed, RecordTimeline: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "VLC under fV on 𝒞: %d AES bursts trapped, %d curve-switch requests\n\n",
		o.Run.Exceptions, len(o.Run.Timeline))
	t := report.NewTable("Fig 5. DVFS curve switching around AES bursts (first 12 switches)",
		"time", "target curve")
	for i, mc := range o.Run.Timeline {
		if i >= 12 {
			break
		}
		curve := "conservative (" + mc.Mode.String() + ")"
		if mc.Mode == cpu.ModeE {
			curve = "efficient (E)"
		}
		t.AddRow(mc.T.String(), curve)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// The burst/gap structure itself (the horizontal segments of Fig 5).
	tr, err := workload.VLC().GenerateTrace(instr, c.seed)
	if err != nil {
		return err
	}
	stats := traceGapSeries(tr, "Fig 5: gap sizes (log10 instructions)")
	ds := downsample(stats, 64)
	fmt.Fprintf(w, "\ngap-size shape over the run: %s\n", ds.Sparkline())
	return nil
}

// runFig6 drives one long synthetic burst through the fV strategy and
// prints the E → Cf → Cv → E sequence with its timing.
func runFig6(c cfg, w *os.File) error {
	// A burst long enough for the voltage change to complete (§4.3).
	b := workload.Benchmark{
		Name: "longburst", Suite: workload.Network, IPC: 2,
		BurstEvery: 80e6, BurstLen: 40_000, BurstIntraGap: 50, BurstSigma: 0.1,
		NoSIMD: map[workload.CPUFamily]float64{workload.Intel: 0, workload.AMD: 0},
	}
	o, err := core.Run(core.Scenario{
		Chip: dvfs.XeonSilver4208(), Bench: b, Kind: core.KindFV,
		SpendAging: true, Instructions: 100_000_000, Seed: c.seed,
		RecordTimeline: true, SampleEvery: units.Microseconds(25),
	})
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 6. fV operating strategy over a long burst",
		"time", "requested p-state", "meaning")
	meaning := map[cpu.Mode]string{
		cpu.ModeE:  "efficient curve (low V, full f)",
		cpu.ModeCf: "conservative via frequency drop (fast)",
		cpu.ModeCv: "conservative at full performance (V settled)",
	}
	for i, mc := range o.Run.Timeline {
		if i >= 9 {
			break
		}
		t.AddRow(mc.T.String(), mc.Mode.String(), meaning[mc.Mode])
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nexceptions: %d, deadline fires: %d (one per burst)\n",
		o.Run.Exceptions, o.Run.DeadlineFires)
	// The sampled voltage/frequency traces around the first burst — the
	// actual curves of Fig 6.
	if len(o.Run.Timeline) >= 2 && len(o.Run.Samples) > 0 {
		burstAt := o.Run.Timeline[1].T
		volt := report.Series{Name: "Fig 6: domain voltage", XLabel: "t_us", YLabel: "mV"}
		freq := report.Series{Name: "Fig 6: domain frequency", XLabel: "t_us", YLabel: "GHz"}
		for _, s := range o.Run.Samples {
			if s.T < burstAt-units.Microseconds(100) || s.T > burstAt+units.Milliseconds(1) {
				continue
			}
			volt.Add(s.T.Microseconds(), s.V.MilliVolts())
			freq.Add(s.T.Microseconds(), s.F.GHz())
		}
		fmt.Fprintf(w, "voltage around the burst:   %s\n", volt.Sparkline())
		fmt.Fprintf(w, "frequency around the burst: %s\n", freq.Sparkline())
	}
	return nil
}

// runFig7 prints the VLC AES timeline (gap sizes over instruction index).
func runFig7(c cfg, w *os.File) error {
	tr, err := workload.VLC().GenerateTrace(max(c.netInstr, 400_000_000), c.seed)
	if err != nil {
		return err
	}
	s := traceGapSeries(tr, "Fig 7: AES gap sizes while VLC streams")
	ds := downsampleMax(s, 48)
	if err := ds.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "shape: %s\n", ds.Sparkline())
	fmt.Fprintf(w, "%d AES events in %.0fM instructions; bursts with intra-gaps ~10¹, quiet gaps ~10⁶⁺\n",
		len(tr.Events), float64(tr.Total)/1e6)
	return nil
}

// downsampleMax reduces a series to n buckets keeping each bucket's
// maximum — gap spikes (the quiet periods of Fig 7) survive.
func downsampleMax(s report.Series, n int) report.Series {
	if s.Len() <= n {
		return s
	}
	out := report.Series{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
	step := float64(s.Len()) / float64(n)
	for i := 0; i < n; i++ {
		lo, hi := int(float64(i)*step), int(float64(i+1)*step)
		if hi > s.Len() {
			hi = s.Len()
		}
		bestIdx := lo
		for j := lo + 1; j < hi; j++ {
			if s.Y[j] > s.Y[bestIdx] {
				bestIdx = j
			}
		}
		out.Add(s.X[bestIdx], s.Y[bestIdx])
	}
	return out
}

// downsample reduces a series to at most n evenly spaced points.
func downsample(s report.Series, n int) report.Series {
	if s.Len() <= n {
		return s
	}
	out := report.Series{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
	step := float64(s.Len()) / float64(n)
	for i := 0; i < n; i++ {
		idx := int(float64(i) * step)
		out.Add(s.X[idx], s.Y[idx])
	}
	return out
}

// probeFigure renders one §5.2 transition measurement.
func probeFigure(w *os.File, name string, chip dvfs.Chip, from, to dvfs.PState, interval units.Second) error {
	norm := func() float64 { return 0 }
	samples := dvfs.ProbeTransition(chip.Transition, from, to, norm, interval)
	volt := report.Series{Name: name + ": core voltage", XLabel: "t_us", YLabel: "mV"}
	freq := report.Series{Name: name + ": effective frequency", XLabel: "t_us", YLabel: "GHz"}
	stalled := 0
	for _, s := range samples {
		volt.Add(s.T.Microseconds(), s.V.MilliVolts())
		freq.Add(s.T.Microseconds(), s.F.GHz())
		if s.Stalled {
			stalled++
		}
	}
	if err := volt.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "shape: %s\n\n", volt.Sparkline())
	if err := freq.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "shape: %s\nstalled samples: %d of %d\n", freq.Sparkline(), stalled, len(samples))
	return nil
}

func runFig8(c cfg, w *os.File) error {
	chip := dvfs.IntelI9_9900K()
	// §5.2: reset a negative offset back to 0 mV — voltage rises at a
	// fixed frequency.
	s, _ := chip.Vendor.StateAt(47)
	from := dvfs.PState{Ratio: s.Ratio, F: s.F, V: s.V + units.MilliVolts(-97)}
	return probeFigure(w, "Fig 8 (i9-9900K voltage change, 350 µs)", chip, from, s, units.Microseconds(10))
}

func runFig9(c cfg, w *os.File) error {
	chip := dvfs.IntelI9_9900K()
	hi, _ := chip.Vendor.StateAt(47)
	lo, _ := chip.Vendor.StateAt(40)
	from := dvfs.PState{Ratio: hi.Ratio, F: hi.F, V: hi.V}
	to := dvfs.PState{Ratio: lo.Ratio, F: lo.F, V: hi.V} // frequency only
	return probeFigure(w, "Fig 9 (i9-9900K frequency change, 22 µs with stall)", chip, from, to, units.Microseconds(1))
}

func runFig10(c cfg, w *os.File) error {
	chip := dvfs.AMDRyzen7700X()
	hi, _ := chip.Vendor.StateAt(45)
	lo, _ := chip.Vendor.StateAt(25)
	from := dvfs.PState{Ratio: hi.Ratio, F: hi.F, V: hi.V}
	to := dvfs.PState{Ratio: lo.Ratio, F: lo.F, V: hi.V}
	return probeFigure(w, "Fig 10 (7700X frequency change, 668 µs, no stall)", chip, from, to, units.Microseconds(20))
}

func runFig11(c cfg, w *os.File) error {
	chip := dvfs.XeonSilver4208()
	lo, _ := chip.Vendor.StateAt(21)
	hi, _ := chip.Vendor.StateAt(30)
	return probeFigure(w, "Fig 11 (Xeon 4208 p-state change: voltage 335 µs then frequency 31 µs)",
		chip, lo, hi, units.Microseconds(10))
}
