package strategy

import (
	"reflect"
	"testing"

	"suit/internal/cpu"
	"suit/internal/isa"
	"suit/internal/units"
)

// mockController records the calls a strategy makes, in order.
type mockController struct {
	calls      []string
	domains    int
	mode       cpu.Mode
	exceptions int
	deadline   units.Second
}

func (m *mockController) Now() units.Second  { return 0 }
func (m *mockController) Points() cpu.Points { return cpu.Points{} }
func (m *mockController) Domains() int       { return m.domains }
func (m *mockController) Mode(int) cpu.Mode  { return m.mode }
func (m *mockController) RequestWait(d int, mo cpu.Mode) {
	m.calls = append(m.calls, "wait:"+mo.String())
}
func (m *mockController) RequestAsync(d int, mo cpu.Mode) {
	m.calls = append(m.calls, "async:"+mo.String())
}
func (m *mockController) DisableInstructions(int) { m.calls = append(m.calls, "disable") }
func (m *mockController) EnableInstructions(int)  { m.calls = append(m.calls, "enable") }
func (m *mockController) ArmDeadline(d int, dur units.Second) {
	if dur <= 0 {
		panic("mock: non-positive deadline") // mirrors the real controller
	}
	m.deadline = dur
	m.calls = append(m.calls, "arm")
}
func (m *mockController) DisarmDeadline(int)                     { m.calls = append(m.calls, "disarm") }
func (m *mockController) ExceptionsWithin(int, units.Second) int { return m.exceptions }
func (m *mockController) Emulate(op isa.Opcode)                  { m.calls = append(m.calls, "emulate") }

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{ParamsAC(), ParamsB()} {
		if err := p.Validate(); err != nil {
			t.Errorf("default params rejected: %v", err)
		}
	}
	bad := []Params{
		{},
		{Deadline: 1, TimeSpan: 0, MaxExceptions: 1, DeadlineFactor: 1},
		{Deadline: 1, TimeSpan: 1, MaxExceptions: 0, DeadlineFactor: 1},
		{Deadline: 1, TimeSpan: 1, MaxExceptions: 1, DeadlineFactor: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestTable7Values(t *testing.T) {
	ac := ParamsAC()
	if ac.Deadline != units.Microseconds(30) || ac.TimeSpan != units.Microseconds(450) ||
		ac.MaxExceptions != 3 || ac.DeadlineFactor != 14 {
		t.Errorf("ParamsAC = %+v, want Table 7 row 𝒜&𝒞", ac)
	}
	b := ParamsB()
	if b.Deadline != units.Microseconds(700) || b.TimeSpan != units.Milliseconds(14) ||
		b.MaxExceptions != 4 || b.DeadlineFactor != 9 {
		t.Errorf("ParamsB = %+v, want Table 7 row ℬ", b)
	}
}

func TestFVHandlerFollowsListing1(t *testing.T) {
	// Listing 1 order: wait for Cf, async Cv, enable, arm.
	ctl := &mockController{domains: 1}
	FV{P: ParamsAC()}.OnDisabledOpcode(ctl, 0, 0, isa.OpAESENC)
	want := []string{"wait:Cf", "async:Cv", "enable", "arm"}
	if !reflect.DeepEqual(ctl.calls, want) {
		t.Errorf("calls = %v, want %v", ctl.calls, want)
	}
	if ctl.deadline != ParamsAC().Deadline {
		t.Errorf("deadline = %v, want p_dl", ctl.deadline)
	}
}

func TestFVDeadlineHandler(t *testing.T) {
	ctl := &mockController{domains: 1}
	FV{P: ParamsAC()}.OnDeadline(ctl, 0)
	want := []string{"disable", "async:E"}
	if !reflect.DeepEqual(ctl.calls, want) {
		t.Errorf("calls = %v, want %v", ctl.calls, want)
	}
}

func TestThrashingPreventionStretchesDeadline(t *testing.T) {
	p := ParamsAC()
	ctl := &mockController{domains: 1, exceptions: p.MaxExceptions}
	FV{P: p}.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	want := units.Second(float64(p.Deadline) * p.DeadlineFactor)
	if ctl.deadline != want {
		t.Errorf("deadline = %v, want ×%v = %v", ctl.deadline, p.DeadlineFactor, want)
	}
	// Below the threshold: plain deadline.
	ctl2 := &mockController{domains: 1, exceptions: p.MaxExceptions - 1}
	FV{P: p}.OnDisabledOpcode(ctl2, 0, 0, isa.OpVOR)
	if ctl2.deadline != p.Deadline {
		t.Errorf("deadline = %v, want %v", ctl2.deadline, p.Deadline)
	}
}

func TestInitDisablesBeforeSelectingEfficient(t *testing.T) {
	for _, s := range []cpu.Strategy{
		FV{P: ParamsAC()}, FreqOnly{P: ParamsAC()}, VoltOnly{P: ParamsAC()},
		Emulation{}, Dynamic{P: ParamsAC()}, AlwaysEfficient{},
	} {
		ctl := &mockController{domains: 2}
		s.Init(ctl)
		want := []string{"disable", "async:E", "disable", "async:E"}
		if !reflect.DeepEqual(ctl.calls, want) {
			t.Errorf("%s Init calls = %v, want %v", s.Name(), ctl.calls, want)
		}
	}
}

func TestFreqOnlyNeverTouchesVoltage(t *testing.T) {
	ctl := &mockController{domains: 1}
	s := FreqOnly{P: ParamsAC()}
	s.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	s.OnDeadline(ctl, 0)
	for _, c := range ctl.calls {
		if c == "wait:Cv" || c == "async:Cv" {
			t.Fatalf("frequency-only strategy requested Cv: %v", ctl.calls)
		}
	}
}

func TestVoltOnlyBlocksForVoltage(t *testing.T) {
	ctl := &mockController{domains: 1}
	VoltOnly{P: ParamsAC()}.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	want := []string{"wait:Cv", "enable", "arm"}
	if !reflect.DeepEqual(ctl.calls, want) {
		t.Errorf("calls = %v, want %v", ctl.calls, want)
	}
}

func TestEmulationStrategy(t *testing.T) {
	ctl := &mockController{domains: 1}
	Emulation{}.OnDisabledOpcode(ctl, 0, 0, isa.OpAESENC)
	if !reflect.DeepEqual(ctl.calls, []string{"emulate"}) {
		t.Errorf("calls = %v", ctl.calls)
	}
	defer func() {
		if recover() == nil {
			t.Error("emulation OnDeadline did not panic")
		}
	}()
	Emulation{}.OnDeadline(ctl, 0)
}

func TestDynamicEmulatesIsolatedTraps(t *testing.T) {
	// One isolated trap on the efficient curve → emulate in place.
	ctl := &mockController{domains: 1, mode: cpu.ModeE, exceptions: 1}
	Dynamic{P: ParamsAC()}.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	if !reflect.DeepEqual(ctl.calls, []string{"emulate"}) {
		t.Errorf("isolated trap calls = %v, want emulate", ctl.calls)
	}
	// Clustered traps → fall back to fV switching.
	ctl2 := &mockController{domains: 1, mode: cpu.ModeE, exceptions: 3}
	Dynamic{P: ParamsAC()}.OnDisabledOpcode(ctl2, 0, 0, isa.OpVOR)
	if len(ctl2.calls) == 0 || ctl2.calls[0] != "wait:Cf" {
		t.Errorf("clustered trap calls = %v, want fV sequence", ctl2.calls)
	}
	// Deadline delegates to fV.
	ctl3 := &mockController{domains: 1}
	Dynamic{P: ParamsAC()}.OnDeadline(ctl3, 0)
	if !reflect.DeepEqual(ctl3.calls, []string{"disable", "async:E"}) {
		t.Errorf("deadline calls = %v", ctl3.calls)
	}
}

func TestPinnedPanicsOnUnexpectedEvents(t *testing.T) {
	p := Pinned{M: cpu.ModeBase}
	ctl := &mockController{domains: 1}
	p.Init(ctl)
	if len(ctl.calls) != 0 {
		t.Errorf("pinned-base Init issued calls: %v", ctl.calls)
	}
	pe := Pinned{M: cpu.ModeE}
	ctl2 := &mockController{domains: 1}
	pe.Init(ctl2)
	if !reflect.DeepEqual(ctl2.calls, []string{"async:E"}) {
		t.Errorf("pinned-E Init calls = %v", ctl2.calls)
	}
	for name, fn := range map[string]func(){
		"OnDisabledOpcode": func() { p.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR) },
		"OnDeadline":       func() { p.OnDeadline(ctl, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pinned %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAlwaysEfficientPanicsOnTrap(t *testing.T) {
	ctl := &mockController{domains: 1}
	for name, fn := range map[string]func(){
		"OnDisabledOpcode": func() { AlwaysEfficient{}.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR) },
		"OnDeadline":       func() { AlwaysEfficient{}.OnDeadline(ctl, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestArmPanicsOnNonPositiveDeadline(t *testing.T) {
	// Params.Validate would catch it, but arm must also refuse garbage.
	ctl := &mockController{domains: 1}
	defer func() { recover() }()
	Params{Deadline: -1, TimeSpan: 1, MaxExceptions: 1, DeadlineFactor: 1}.arm(ctl, 0)
	if ctl.deadline < 0 {
		t.Error("negative deadline armed")
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]cpu.Strategy{
		"fV":          FV{},
		"f":           FreqOnly{},
		"V":           VoltOnly{},
		"e":           Emulation{},
		"dyn":         Dynamic{},
		"noSIMD":      AlwaysEfficient{},
		"pinned-base": Pinned{M: cpu.ModeBase},
		"pinned-E":    Pinned{M: cpu.ModeE},
	}
	for want, s := range names {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
