// programtrace: record an instruction trace by *executing a program* —
// the repository's analogue of the paper's QEMU plugin (§5.1) — and drive
// it through the SUIT machine directly.
//
// The program is an HTTPS service loop: per request, protocol handling
// followed by TLS record seals whose AESENC/VPCLMULQDQ bursts come from
// the loop structure of AES-GCM itself, not from a statistical model.
//
//	go run ./examples/programtrace
package main

import (
	"fmt"
	"log"
	"os"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/program"
	"suit/internal/report"
	"suit/internal/strategy"
	"suit/internal/trace"
)

func main() {
	// 1. Write the workload as a program: 40 requests serving 100 KiB
	//    each, with ~2M instructions of non-crypto handling per request.
	service := program.HTTPSRequest(100, 2_000_000).Repeat(40)

	// 2. Record its trace — every Table 1 instruction with its exact
	//    dynamic position.
	tr, err := service.Record()
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.Summarize(tr)
	fmt.Printf("recorded %q: %d instructions, %d interesting events (density %.2e)\n",
		stats.Name, stats.Total, stats.Events, stats.Density)
	fmt.Printf("gap structure: median %d, max %d instructions — bursts from the AES-GCM loop\n\n",
		stats.MedianGap, stats.MaxGap)

	// 3. Run it on the SUIT machine under both trap-handling approaches.
	chip := dvfs.XeonSilver4208()
	gb := guardband.Default()
	t := report.NewTable(
		fmt.Sprintf("program-recorded HTTPS service on %s at −97 mV", chip.Name),
		"strategy", "duration", "avg power", "E-share", "traps", "faults")
	for _, strat := range []cpu.Strategy{
		strategy.FV{P: strategy.ParamsAC()},
		strategy.Emulation{},
	} {
		m, err := cpu.New(cpu.Config{
			Chip:           chip,
			Traces:         []*trace.Trace{tr},
			Offset:         gb.EfficientOffset(isa.FaultableMask, true, true),
			Faults:         gb,
			HardenedIMUL:   true,
			ExceptionDelay: chip.ExceptionDelay,
			Emul:           emul.NewCostModel(chip.EmulCallDelay),
			Seed:           1,
		}, strat)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(strat.Name(), res.Duration.String(), res.AvgPower.String(),
			fmt.Sprintf("%.1f %%", res.EfficientShare()*100),
			fmt.Sprintf("%d", res.Exceptions), fmt.Sprintf("%d", len(res.Faults)))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfV traps once per request burst; emulation traps on every AES round —")
	fmt.Println("the same §6.6 contrast, here emerging from real program structure.")
}
