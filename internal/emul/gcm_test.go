package emul

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"testing"
	"testing/quick"
)

func stdlibSeal(t testing.TB, key [16]byte, nonce [12]byte, pt, aad []byte) []byte {
	t.Helper()
	c, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	g, err := cipher.NewGCM(c)
	if err != nil {
		t.Fatal(err)
	}
	return g.Seal(nil, nonce[:], pt, aad)
}

func TestGhashMulFieldProperties(t *testing.T) {
	// The GCM "one" element is 0x80 followed by zeros (coefficient of x⁰
	// is the MSB of byte 0).
	var one gcmBlock
	one[0] = 0x80
	prop := func(raw [16]byte, raw2 [16]byte) bool {
		a, b := gcmBlock(raw), gcmBlock(raw2)
		// Identity and commutativity.
		if ghashMul(a, one) != a {
			return false
		}
		return ghashMul(a, b) == ghashMul(b, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Zero annihilates.
	var zero gcmBlock
	if ghashMul(gcmBlock{0xde, 0xad}, zero) != zero {
		t.Error("multiplication by zero not zero")
	}
}

func TestPolyRoundTrip(t *testing.T) {
	prop := func(raw [16]byte) bool {
		lo, hi := toPoly(gcmBlock(raw))
		return fromPoly(lo, hi) == gcmBlock(raw)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSealMatchesStdlibGCM(t *testing.T) {
	key := [16]byte{0xfe, 0xff, 0xe9, 0x92, 0x86, 0x65, 0x73, 0x1c, 0x6d, 0x6a, 0x8f, 0x94, 0x67, 0x30, 0x83, 0x08}
	nonce := [12]byte{0xca, 0xfe, 0xba, 0xbe, 0xfa, 0xce, 0xdb, 0xad, 0xde, 0xca, 0xf8, 0x88}
	for _, tc := range []struct {
		pt, aad []byte
	}{
		{nil, nil},
		{[]byte("hello SUIT"), nil},
		{bytes.Repeat([]byte{0x42}, 64), []byte("header")},
		{bytes.Repeat([]byte{0x01}, 61), []byte("odd-length aad!")}, // non-block-aligned
		{make([]byte, 257), nil},
	} {
		got, err := SealAESGCM(key, nonce, tc.pt, tc.aad)
		if err != nil {
			t.Fatal(err)
		}
		want := stdlibSeal(t, key, nonce, tc.pt, tc.aad)
		if !bytes.Equal(got, want) {
			t.Errorf("seal(%d bytes pt, %d aad):\n got %x\nwant %x", len(tc.pt), len(tc.aad), got, want)
		}
	}
}

func TestSealMatchesStdlibProperty(t *testing.T) {
	prop := func(key [16]byte, nonce [12]byte, pt, aad []byte) bool {
		if len(pt) > 512 {
			pt = pt[:512]
		}
		got, err := SealAESGCM(key, nonce, pt, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, stdlibSeal(t, key, nonce, pt, aad))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpenRoundTripAndAuth(t *testing.T) {
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	nonce := [12]byte{9, 9, 9}
	pt := []byte("the efficient curve is only legal with the faultable set disabled")
	aad := []byte("record header")
	sealed, err := SealAESGCM(key, nonce, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenAESGCM(key, nonce, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip: %q", got)
	}
	// Any single bit flip must fail authentication.
	for _, pos := range []int{0, len(sealed) / 2, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[pos] ^= 0x40
		if _, err := OpenAESGCM(key, nonce, tampered, aad); err == nil {
			t.Errorf("tampering at %d went undetected", pos)
		}
	}
	// Wrong AAD fails too.
	if _, err := OpenAESGCM(key, nonce, sealed, []byte("other")); err == nil {
		t.Error("wrong AAD accepted")
	}
	// Truncated input rejected.
	if _, err := OpenAESGCM(key, nonce, sealed[:10], aad); err == nil {
		t.Error("short input accepted")
	}
}
