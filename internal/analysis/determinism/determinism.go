// Package determinism mechanizes the engine's cross--j determinism
// contract (DESIGN.md, "Parallel experiment engine & the
// deterministic-seeding contract"): in result-affecting packages every
// number must be a pure function of (spec, base seed). Wall-clock
// reads, the process-global math/rand source, unseeded rand.New sources
// and order-dependent map iteration all silently break byte-identical
// replay, so they are flagged at compile-review time instead of being
// hunted through flaky reruns.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"suit/internal/analysis"
)

// resultPackages are the packages whose outputs feed tables and
// figures. The list matches the spec-fingerprint seeding boundary from
// DESIGN.md: anything that runs under engine.Run must replay
// byte-identically at any worker count.
var resultPackages = []string{
	"internal/cpu",
	"internal/uarch",
	"internal/trace",
	"internal/guardband",
	"internal/baselines",
	"internal/power",
	"internal/strategy",
	"internal/core",
	"internal/engine",
	"internal/dist",
	"internal/service",
}

// Analyzer flags nondeterminism sources in result-affecting packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global/unseeded rand and order-dependent map iteration " +
		"in result-affecting packages (" + strings.Join(resultPackages, ", ") + ")",
	Run: run,
}

func run(pass *analysis.Pass) error {
	reportHere := analysis.PkgPathMatches(pass.Pkg.Path(), resultPackages)
	if reportHere {
		for _, f := range pass.Files {
			checkClockAndRand(pass, f)
			checkMapRanges(pass, f)
		}
	}
	// Taint runs in EVERY package: a helper in internal/cache that reads
	// the wall clock exports a Tainted fact even though nothing is
	// reported there, and the result-affecting caller is charged at its
	// call site (see taint.go).
	propagateTaint(pass, reportHere)
	return nil
}

// checkClockAndRand flags time.Now/time.Since, math/rand top-level
// functions (which draw from the process-global source) and rand.New
// calls whose source expression does not mention a seed.
func checkClockAndRand(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Int64N) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in a result-affecting package; results must be a pure function of (spec, seed) — inject timestamps, or suppress with //lint:allow determinism <reason> if this never reaches results",
					fn.Name())
			case "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
				// The timer audit: watchdogs, backoff pacing and progress
				// tickers are legitimate, but each use must carry an
				// explained suppression stating why its firing can never
				// influence a result.
				pass.Reportf(sel.Pos(),
					"time.%s schedules off the wall clock in a result-affecting package; timer firings must never select or alter a result — if this is a watchdog, backoff or telemetry timer, explain that with //lint:allow determinism <reason>",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source; construct rand.New(rand.NewPCG(seed, ...)) from the job's derived seed (engine.DeriveSeed)",
					fn.Name())
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Name() != "New" {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		if !mentionsSeed(call.Args) {
			pass.Reportf(call.Pos(),
				"rand.New source is not visibly derived from a seed; feed it from the job's Seed (engine.DeriveSeed keeps results byte-identical at any -j)")
		}
		return true
	})
}

// mentionsSeed reports whether any identifier or selector in the
// argument expressions names a seed. This is a syntactic heuristic: it
// accepts rand.NewPCG(spec.Seed, seed^0x9e37...) and rejects
// rand.NewSource(42) or rand.NewPCG(uint64(i), 7).
func mentionsSeed(args []ast.Expr) bool {
	found := false
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok &&
				strings.Contains(strings.ToLower(id.Name), "seed") {
				found = true
			}
			return !found
		})
	}
	return found
}

// checkMapRanges walks every statement list so that a range-over-map
// can be related to the statements that follow it (a sort directly
// after the loop absolves an append accumulator).
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		for i, st := range list {
			rs, ok := st.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				continue
			}
			checkMapBody(pass, rs, list[i+1:])
		}
		return true
	})
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapBody flags three order-dependent patterns inside a
// range-over-map body:
//
//   - appending to a slice declared outside the loop, unless a
//     sort.*/slices.Sort* call mentioning that slice follows the loop
//     in the same statement list;
//   - compound floating-point accumulation (+=, -=, *=, /=) into a
//     variable declared outside the loop (float addition is not
//     associative, so the sum depends on iteration order);
//   - writing to an output sink (fmt.Print/Fprint family, Write*,
//     Encode methods on outer values) while iterating.
//
// Purely keyed writes (out[k] = v), integer accumulation and min/max
// scans commute, so they pass.
func checkMapBody(pass *analysis.Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	outside := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
			return nil
		}
		return obj
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range s.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(s.Lhs) {
						continue
					}
					obj := outside(s.Lhs[i])
					if obj == nil || sortedAfter(pass, obj, after) {
						continue
					}
					pass.Reportf(s.Pos(),
						"%s is appended to while ranging over a map and is not sorted afterwards; map order is nondeterministic — sort it or iterate sorted keys",
						obj.Name())
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				obj := outside(s.Lhs[0])
				if obj == nil || !isFloat(obj.Type()) {
					return true
				}
				pass.Reportf(s.Pos(),
					"floating-point accumulation into %s while ranging over a map is order-dependent (float addition does not associate); iterate sorted keys",
					obj.Name())
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(pass, s, outside); ok {
				pass.Reportf(s.Pos(),
					"%s writes output while ranging over a map; map order is nondeterministic — iterate sorted keys", name)
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether any statement after the loop (in the same
// list) calls a sort function whose arguments mention obj.
func sortedAfter(pass *analysis.Pass, obj types.Object, after []ast.Stmt) bool {
	found := false
	for _, st := range after {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(pass, call) {
				return true
			}
			for _, a := range call.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return strings.HasPrefix(fn.Name(), "Sort") || strings.HasPrefix(fn.Name(), "Slice") ||
			fn.Name() == "Strings" || fn.Name() == "Ints" || fn.Name() == "Float64s" ||
			fn.Name() == "Stable"
	}
	return false
}

// sinkCall reports calls that emit ordered output: fmt print functions
// and Write*/Encode methods on values declared outside the loop.
func sinkCall(pass *analysis.Pass, call *ast.CallExpr, outside func(ast.Expr) types.Object) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return "fmt." + fn.Name(), true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return "fmt." + fn.Name(), true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			if outside(sel.X) != nil {
				return fn.Name(), true
			}
		}
	}
	return "", false
}

// rootIdent unwraps x in x, x.f, x[i], *x, (x) to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
