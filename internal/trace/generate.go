package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"suit/internal/isa"
)

// Source produces event indices for one opcode within [0, total). The
// concrete sources below model the patterns observed in §5.1: periodic
// use (IMUL every ~560 instructions in hot code), memoryless background
// use, and the bursty use typical of encryption (Figs 5 and 7).
type Source interface {
	// Emit appends events to dst, using rng for randomness. Emitted
	// indices need not be unique across sources; Generate normalises.
	Emit(dst []Event, total uint64, rng *rand.Rand) []Event
}

// Periodic emits Op every Interval instructions starting at Offset.
type Periodic struct {
	Op       isa.Opcode
	Interval uint64
	Offset   uint64
}

// Emit implements Source.
func (p Periodic) Emit(dst []Event, total uint64, rng *rand.Rand) []Event {
	if p.Interval == 0 {
		return dst
	}
	for idx := p.Offset; idx < total; idx += p.Interval {
		dst = append(dst, Event{Index: idx, Op: p.Op})
	}
	return dst
}

func (p Periodic) estimateEvents(total uint64) int {
	if p.Interval == 0 || p.Offset >= total {
		return 0
	}
	return int((total-p.Offset-1)/p.Interval) + 1
}

// Poisson emits Op with exponentially distributed gaps of the given mean —
// the memoryless baseline against which the deadline mechanism's burst
// adaptation is compared.
type Poisson struct {
	Op      isa.Opcode
	MeanGap float64 // mean instructions between events
}

// Emit implements Source.
func (p Poisson) Emit(dst []Event, total uint64, rng *rand.Rand) []Event {
	if p.MeanGap <= 0 {
		return dst
	}
	idx := uint64(rng.ExpFloat64() * p.MeanGap)
	for idx < total {
		dst = append(dst, Event{Index: idx, Op: p.Op})
		step := uint64(rng.ExpFloat64()*p.MeanGap) + 1
		next := idx + step
		if next < idx { // overflow
			break
		}
		idx = next
	}
	return dst
}

func (p Poisson) estimateEvents(total uint64) int {
	if p.MeanGap <= 0 {
		return 0
	}
	return int(float64(total)/p.MeanGap*1.1) + 16
}

// Burst emits Op in bursts: a geometric number of events with small
// intra-burst gaps, separated by log-normally distributed quiet gaps.
// This reproduces the structure of Fig 7 (AES during VLC streaming): most
// gap mass at 10^1–10^2 inside bursts, quiet gaps spanning 10^4–10^7.
type Burst struct {
	Op           isa.Opcode
	MeanBurstLen float64 // mean events per burst (geometric), >= 1
	IntraGap     uint64  // instructions between events inside a burst
	QuietMedian  float64 // median quiet gap between bursts (instructions)
	QuietSigma   float64 // log-space sigma of the quiet gap (log-normal)
}

// Emit implements Source.
func (b Burst) Emit(dst []Event, total uint64, rng *rand.Rand) []Event {
	if b.MeanBurstLen < 1 || b.QuietMedian <= 0 {
		return dst
	}
	mu := math.Log(b.QuietMedian)
	intra := b.IntraGap
	if intra == 0 {
		intra = 1
	}
	quiet := func() uint64 {
		g := math.Exp(mu + b.QuietSigma*rng.NormFloat64())
		if g < 1 {
			g = 1
		}
		if g > float64(total) {
			g = float64(total)
		}
		return uint64(g)
	}
	// Burst length uniform in [mean/2, 3·mean/2]: the mean is preserved
	// and the spread stays bounded, so short traces with few bursts keep
	// a stable event density (a heavy-tailed length distribution makes
	// per-seed densities swing by an order of magnitude).
	burstLen := func() int {
		n := int(b.MeanBurstLen * (0.5 + rng.Float64()))
		if n < 1 {
			n = 1
		}
		return n
	}
	idx := quiet() / 2 // first burst starts after roughly half a quiet gap
	for idx < total {
		for i, n := 0, burstLen(); i < n && idx < total; i++ {
			dst = append(dst, Event{Index: idx, Op: b.Op})
			idx += intra
		}
		next := idx + quiet()
		if next < idx {
			break
		}
		idx = next
	}
	return dst
}

func (b Burst) estimateEvents(total uint64) int {
	if b.MeanBurstLen < 1 || b.QuietMedian <= 0 {
		return 0
	}
	intra := float64(b.IntraGap)
	if intra == 0 {
		intra = 1
	}
	meanQuiet := b.QuietMedian * math.Exp(b.QuietSigma*b.QuietSigma/2)
	// Emit clamps every quiet gap at total, so for traces shorter than
	// the typical quiet gap the realized mean is bounded by total too.
	// Without this clamp the hint collapses to a fraction of the real
	// event count on short traces of long-quiet workloads (the AES-dense
	// benches) and append regrowth dominates generation.
	if meanQuiet > float64(total) {
		meanQuiet = float64(total)
	}
	cycle := b.MeanBurstLen*intra + meanQuiet
	if cycle < 1 {
		cycle = 1
	}
	return int(float64(total)/cycle*b.MeanBurstLen*1.2) + 16
}

// Spec describes a synthetic trace to generate.
type Spec struct {
	Name    string
	Total   uint64
	IPC     float64
	Seed    uint64
	Sources []Source
}

// Generate materialises the trace described by spec. It is deterministic
// in spec.Seed. Colliding indices across sources are resolved by shifting
// later events forward by one instruction.
func Generate(spec Spec) (*Trace, error) {
	if spec.Total == 0 {
		return nil, errors.New("trace: Generate with zero total")
	}
	if !(spec.IPC > 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadIPC, spec.IPC)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x9e3779b97f4a7c15))
	// Size the buffer from the sources' expected event counts: emission
	// appends millions of events on dense specs, and letting append grow
	// the slice dominates generation time with copying. Estimates are
	// deterministic (they never touch rng) and only affect capacity.
	capHint := 0
	for _, src := range spec.Sources {
		if e, ok := src.(interface{ estimateEvents(total uint64) int }); ok {
			capHint += e.estimateEvents(spec.Total)
		}
	}
	events := make([]Event, 0, capHint)
	bounds := make([]int, 1, len(spec.Sources)+1)
	for _, src := range spec.Sources {
		events = src.Emit(events, spec.Total, rng)
		bounds = append(bounds, len(events))
	}
	events = sortEmitted(events, bounds)
	// Resolve collisions: each instruction slot holds one instruction.
	out := events[:0]
	var nextFree uint64
	for _, ev := range events {
		if ev.Index < nextFree {
			ev.Index = nextFree
		}
		if ev.Index >= spec.Total {
			break
		}
		out = append(out, ev)
		nextFree = ev.Index + 1
	}
	t := &Trace{Name: spec.Name, Total: spec.Total, IPC: spec.IPC, Events: out}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// eventLess is Generate's (Index, Op) ordering.
func eventLess(a, b Event) bool {
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	return a.Op < b.Op
}

// sortEmitted orders the emitted events by (Index, Op). Every shipped
// Source emits strictly increasing indices of a single opcode, so the
// buffer is a concatenation of pre-sorted runs (bounds[i]:bounds[i+1]
// is source i's run) and a k-way merge replaces the O(n log n) global
// sort. The merge output is byte-identical to the sort: events with
// equal (Index, Op) keys are identical structs, so the only freedom the
// comparison sort had — the order of fully-equal elements — cannot be
// observed. A custom Source that emits out of order falls back to the
// global sort.
func sortEmitted(events []Event, bounds []int) []Event {
	type run struct{ i, end int }
	runs := make([]run, 0, len(bounds)-1)
	for r := 0; r+1 < len(bounds); r++ {
		lo, hi := bounds[r], bounds[r+1]
		for i := lo + 1; i < hi; i++ {
			if eventLess(events[i], events[i-1]) {
				sort.Slice(events, func(i, j int) bool {
					return eventLess(events[i], events[j])
				})
				return events
			}
		}
		if lo < hi {
			runs = append(runs, run{i: lo, end: hi})
		}
	}
	if len(runs) <= 1 {
		return events // zero or one non-empty run: already sorted in place
	}
	out := make([]Event, 0, len(events))
	for {
		best := -1
		for r := range runs {
			if runs[r].i >= runs[r].end {
				continue
			}
			if best < 0 || eventLess(events[runs[r].i], events[runs[best].i]) {
				best = r
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, events[runs[best].i])
		runs[best].i++
	}
}
