// Package dvfs models dynamic voltage and frequency scaling as SUIT needs
// it: vendor-defined DVFS curves (p-state tables, §2.4), the pair of
// conservative/efficient curves SUIT introduces (§3.2), frequency and
// voltage domains (per-chip vs per-core, §6.2), and the transition-delay
// behaviour the paper measures on real CPUs (§5.2, Figs 8–11).
package dvfs

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"suit/internal/power"
	"suit/internal/units"
)

// PState is one vendor-defined frequency/voltage pair.
type PState struct {
	// Ratio is the bus-clock multiplier (×100 MHz) written to PERF_CTL.
	Ratio uint8
	// F is the core clock frequency.
	F units.Hertz
	// V is the guaranteed-stable supply voltage at F, including the
	// guardband (§2.2).
	V units.Volt
}

// Curve is a DVFS curve: p-states in strictly increasing frequency order
// with non-decreasing voltage.
type Curve struct {
	Name   string
	States []PState
}

// Validate checks the curve invariants.
func (c Curve) Validate() error {
	if len(c.States) == 0 {
		return errors.New("dvfs: empty curve")
	}
	for i, s := range c.States {
		if s.F <= 0 || s.V <= 0 {
			return fmt.Errorf("dvfs: %s state %d has non-positive F or V", c.Name, i)
		}
		if i > 0 {
			if s.F <= c.States[i-1].F {
				return fmt.Errorf("dvfs: %s not strictly increasing in frequency at %d", c.Name, i)
			}
			if s.V < c.States[i-1].V {
				return fmt.Errorf("dvfs: %s voltage decreases at %d", c.Name, i)
			}
		}
	}
	return nil
}

// Top returns the highest-frequency p-state.
func (c Curve) Top() PState { return c.States[len(c.States)-1] }

// Min returns the lowest-frequency p-state.
func (c Curve) Min() PState { return c.States[0] }

// VoltageAt returns the stable voltage for frequency f, linearly
// interpolated between p-states. Frequencies outside the table clamp to
// the end states (extrapolation would leave the vendor-validated region).
func (c Curve) VoltageAt(f units.Hertz) units.Volt {
	ss := c.States
	if f <= ss[0].F {
		return ss[0].V
	}
	if f >= ss[len(ss)-1].F {
		return ss[len(ss)-1].V
	}
	// Binary search for ss[i-1].F < f <= ss[i].F.
	i := sort.Search(len(ss), func(i int) bool { return ss[i].F >= f }) //lint:allow allocfree non-escaping predicate closure; sort.Search does not retain it, so it stays on the stack
	lo, hi := ss[i-1], ss[i]
	t := float64(f-lo.F) / float64(hi.F-lo.F)
	return lo.V + units.Volt(t)*(hi.V-lo.V)
}

// FrequencyAt returns the highest frequency the curve certifies stable at
// supply voltage v, inverting the VoltageAt interpolation. Voltages below
// the curve floor return the minimum frequency; voltages above the top
// return the maximum (the curve does not certify beyond its table).
func (c Curve) FrequencyAt(v units.Volt) units.Hertz {
	ss := c.States
	if v <= ss[0].V {
		return ss[0].F
	}
	if v >= ss[len(ss)-1].V {
		return ss[len(ss)-1].F
	}
	// Find the segment with ss[i-1].V <= v < ss[i].V. Voltages are
	// non-decreasing but may repeat across states (flat region): take
	// the highest frequency at that voltage.
	i := sort.Search(len(ss), func(i int) bool { return ss[i].V > v })
	lo, hi := ss[i-1], ss[i]
	if hi.V == lo.V {
		return hi.F
	}
	t := float64(v-lo.V) / float64(hi.V-lo.V)
	return lo.F + units.Hertz(t)*(hi.F-lo.F)
}

// StateAt returns the p-state with the given ratio.
func (c Curve) StateAt(ratio uint8) (PState, bool) {
	for _, s := range c.States {
		if s.Ratio == ratio {
			return s, true
		}
	}
	return PState{}, false
}

// Nearest returns the p-state whose frequency is closest to f, preferring
// the lower state on ties (never exceeding a requested budget).
func (c Curve) Nearest(f units.Hertz) PState {
	best := c.States[0]
	bestDist := math.Abs(float64(f - best.F))
	for _, s := range c.States[1:] {
		d := math.Abs(float64(f - s.F))
		if d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// Gradient returns the voltage/frequency slope between the two highest
// p-states in volts per hertz. §5.6 uses the 4→5 GHz gradient
// (183 mV/GHz on the i9-9900K) to size the aging guardband.
func (c Curve) Gradient() float64 {
	n := len(c.States)
	if n < 2 {
		return 0
	}
	a, b := c.States[n-2], c.States[n-1]
	return float64(b.V-a.V) / float64(b.F-a.F)
}

// Offset returns a copy of the curve with every voltage shifted by off
// (clamped below at floor) and renamed.
func (c Curve) Offset(name string, off units.Volt, floor units.Volt) Curve {
	out := Curve{Name: name, States: make([]PState, len(c.States))}
	for i, s := range c.States {
		v := s.V + off
		if v < floor {
			v = floor
		}
		out.States[i] = PState{Ratio: s.Ratio, F: s.F, V: v}
	}
	return out
}

// Pair is SUIT's two curves. The conservative curve is the vendor curve
// shipping today; the efficient curve is determined by excluding the
// faultable instruction set and is only legal while those instructions
// are disabled.
type Pair struct {
	Conservative Curve
	Efficient    Curve
}

// DerivePair builds the SUIT curve pair from a vendor curve and the
// undervolting offset established for the excluded instruction set
// (−70 mV from instruction variation alone, −97 mV with 20 % of the aging
// guardband; §3.1). floor guards against unphysically low voltages at the
// bottom of the curve.
func DerivePair(vendor Curve, offset units.Volt, floor units.Volt) (Pair, error) {
	if offset > 0 {
		return Pair{}, fmt.Errorf("dvfs: efficient-curve offset must be ≤ 0, got %v", offset)
	}
	p := Pair{
		Conservative: vendor,
		Efficient:    vendor.Offset(vendor.Name+"+efficient", offset, floor),
	}
	if err := p.Conservative.Validate(); err != nil {
		return Pair{}, err
	}
	if err := p.Efficient.Validate(); err != nil {
		return Pair{}, err
	}
	return p, nil
}

// CurveID selects one of the pair.
type CurveID uint8

// The two curves of a Pair.
const (
	Conservative CurveID = iota
	Efficient
)

// String implements fmt.Stringer.
func (id CurveID) String() string {
	switch id {
	case Conservative:
		return "conservative"
	case Efficient:
		return "efficient"
	default:
		return fmt.Sprintf("CurveID(%d)", uint8(id))
	}
}

// Get returns the selected curve.
func (p Pair) Get(id CurveID) Curve {
	if id == Efficient {
		return p.Efficient
	}
	return p.Conservative
}

// DomainKind describes how cores share frequency and voltage planes
// (§6.2's CPU models 𝒜, ℬ, 𝒞).
type DomainKind uint8

const (
	// SingleDomain: one frequency and one voltage plane for the whole
	// package (CPU 𝒜, i9-9900K). A curve switch affects every core.
	SingleDomain DomainKind = iota
	// PerCoreFreq: per-core frequency domains, shared voltage plane
	// (CPU ℬ, Ryzen 7 7700X). Only frequency switching is core-local.
	PerCoreFreq
	// PerCoreBoth: per-core frequency and voltage domains (CPU 𝒞,
	// Xeon Silver 4208 with PCPS).
	PerCoreBoth
)

// String implements fmt.Stringer.
func (k DomainKind) String() string {
	switch k {
	case SingleDomain:
		return "single-domain"
	case PerCoreFreq:
		return "per-core-frequency"
	case PerCoreBoth:
		return "per-core-frequency+voltage"
	default:
		return fmt.Sprintf("DomainKind(%d)", uint8(k))
	}
}

// TransitionModel captures the measured p-state change behaviour of §5.2.
type TransitionModel struct {
	// FreqDelay is the mean time from writing PERF_CTL to the new
	// frequency being active.
	FreqDelay units.Second
	// FreqDelaySigma is the standard deviation of FreqDelay.
	FreqDelaySigma units.Second
	// FreqStall is how long cores in the domain stall at the end of a
	// frequency change (the grey area of Fig 9; zero on AMD, Fig 10).
	FreqStall units.Second
	// VoltDelay is the mean time for a voltage change to settle.
	VoltDelay units.Second
	// VoltDelaySigma is the standard deviation of VoltDelay.
	VoltDelaySigma units.Second
	// VoltFirst: the domain serialises p-state changes as voltage change
	// followed by frequency change regardless of direction (Xeon PCPS
	// behaviour, Fig 11).
	VoltFirst bool
}

// Validate checks the model.
func (m TransitionModel) Validate() error {
	if m.FreqDelay < 0 || m.VoltDelay < 0 || m.FreqStall < 0 {
		return errors.New("dvfs: negative transition delay")
	}
	if m.FreqDelaySigma < 0 || m.VoltDelaySigma < 0 {
		return errors.New("dvfs: negative transition sigma")
	}
	return nil
}

// Jitter draws a delay around mean with the given sigma using norm, a
// standard normal variate supplied by the caller (keeps the package free
// of RNG policy). Results are clamped to ≥ 10 % of the mean.
func Jitter(mean, sigma units.Second, norm float64) units.Second {
	d := mean + units.Second(norm)*sigma
	if min := mean / 10; d < min {
		d = min
	}
	return d
}

// Chip bundles everything the simulator needs to instantiate a CPU model.
type Chip struct {
	Name       string
	Cores      int
	Domains    DomainKind
	Transition TransitionModel
	Vendor     Curve       // the conservative curve as shipped
	Power      power.Model // package power model
	TDP        units.Watt  // sustained package power limit
	BusClock   units.Hertz // ratio quantum (100 MHz on Intel)
	// ExceptionDelay is the measured #DO entry+exit cost on this system
	// (§5.3), EmulCallDelay the end-to-end emulation-call cost (two
	// kernel transitions).
	ExceptionDelay units.Second
	EmulCallDelay  units.Second
}

// Validate checks the chip description.
func (c Chip) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("dvfs: chip %q needs at least one core", c.Name)
	}
	if err := c.Vendor.Validate(); err != nil {
		return err
	}
	if err := c.Transition.Validate(); err != nil {
		return err
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.TDP <= 0 {
		return fmt.Errorf("dvfs: chip %q needs a positive TDP", c.Name)
	}
	if c.ExceptionDelay < 0 || c.EmulCallDelay < 0 {
		return fmt.Errorf("dvfs: chip %q has negative trap delays", c.Name)
	}
	return nil
}

// SustainableState returns the highest p-state on the curve (with voltages
// shifted by offset) at which nActive fully-loaded cores stay within the
// chip's TDP. This is the mechanism behind §5.4: undervolting lowers power,
// which lets the package sustain higher frequencies under the same TDP.
// If even the lowest p-state exceeds the TDP, the lowest state is returned.
//
// This is a *performance* governor: it always cashes TDP headroom into
// frequency, even across a p-state bin whose voltage step costs more power
// than the frequency gains. EnergyOptimalState is the alternative policy.
func (c Chip) SustainableState(curve Curve, offset units.Volt, nActive int) PState {
	best := curve.Min()
	for _, s := range curve.States {
		if c.packagePower(s, offset, nActive) <= c.TDP {
			best = s
		}
	}
	return best
}

// EnergyOptimalState returns the TDP-feasible p-state with the lowest
// energy per instruction (package power over frequency) — an
// energy-governor alternative to SustainableState. Throughput-oriented
// deployments use SustainableState; battery- or cost-bound ones this.
func (c Chip) EnergyOptimalState(curve Curve, offset units.Volt, nActive int) PState {
	best := curve.Min()
	bestEPI := float64(c.packagePower(best, offset, nActive)) / float64(best.F)
	for _, s := range curve.States {
		p := c.packagePower(s, offset, nActive)
		if p > c.TDP {
			continue
		}
		if epi := float64(p) / float64(s.F); epi < bestEPI {
			best, bestEPI = s, epi
		}
	}
	return best
}

// packagePower is the all-active package power at state s shifted by
// offset.
func (c Chip) packagePower(s PState, offset units.Volt, nActive int) units.Watt {
	cores := make([]power.CoreState, nActive)
	for i := range cores {
		cores[i] = power.CoreState{V: s.V + offset, F: s.F, Activity: 1}
	}
	return c.Power.Package(cores)
}
