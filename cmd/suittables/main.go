// Command suittables regenerates every table and figure of the SUIT paper
// (ASPLOS '24) from the simulation stack, printing paper-style tables and
// CSV figure series.
//
// Usage:
//
//	suittables [-exp all|<id>] [-quick] [-seed n]
//
// Experiment ids: table1 delays table2 fig12 fig13 table3 aging table4
// table5 fig14 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table6 table7 table8
// fig16 security, plus the extension experiments covert, baselines, sched
// and variance. "all" (default) runs everything; -quick shortens the
// simulated instruction streams for a fast pass.
//
// A failed experiment no longer aborts the batch: the remaining
// experiments still run, every failure is summarised on stderr (with
// the failed scenario fingerprints when the engine reports them), and
// the process exits 2. Usage errors exit 1; SIGINT checkpoints
// completed jobs (with -cache) and exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"suit/internal/core"
	"suit/internal/engine"
	"suit/internal/prof"
)

type experiment struct {
	id   string
	desc string
	run  func(c cfg, w *os.File) error
}

type cfg struct {
	quick bool
	seed  uint64
	// specInstr / netInstr are the per-core stream lengths.
	specInstr uint64
	netInstr  uint64
}

var experiments = []experiment{
	{"table1", "Undervolting-induced instruction faults (Kogler et al.)", runTable1},
	{"delays", "§5.2/5.3 measured delays used by the simulation", runDelays},
	{"table2", "Score/power/frequency/efficiency response to undervolting", runTable2},
	{"fig12", "SPEC score, power, frequency vs voltage offset (i9-9900K)", runFig12},
	{"fig13", "Frequency-voltage pairs and the modified-IMUL curve", runFig13},
	{"table3", "Temperature guardband (fan RPM / core temperature)", runTable3},
	{"aging", "§5.6 aging guardband derivation", runAging},
	{"table4", "SPEC CPU2017 without SIMD instructions", runTable4},
	{"table5", "Out-of-order core configuration (gem5 substitute)", runTable5},
	{"fig14", "Slowdown with increasing IMUL latency", runFig14},
	{"fig5", "AES burst and the resulting DVFS curve switches", runFig5},
	{"fig6", "Long burst under the fV operating strategy", runFig6},
	{"fig7", "AES instruction timeline while VLC streams (gap sizes)", runFig7},
	{"fig8", "Voltage change delay, i9-9900K", runFig8},
	{"fig9", "Frequency change delay and stall, i9-9900K", runFig9},
	{"fig10", "Frequency change delay, Ryzen 7 7700X (no stall)", runFig10},
	{"fig11", "Per-core voltage-then-frequency change, Xeon Silver 4208", runFig11},
	{"table6", "Power saving and performance impact of SUIT (main result)", runTable6},
	{"table7", "Operating-strategy parameters and their sensitivity", runTable7},
	{"table8", "Benchmarks where compiling without SIMD beats SUIT", runTable8},
	{"fig16", "Per-benchmark performance and efficiency on CPU 𝒞 (fV)", runFig16},
	{"security", "§6.9 security analysis: reduction check and fault attack", runSecurity},
	{"covert", "§8 extension: curve-switching covert channel", runCovert},
	{"baselines", "§7 extension: Razor / ECC-guided / xDVS comparison", runBaselines},
	{"sched", "§7 extension: SUIT-aware task placement", runSched},
	{"variance", "run-to-run variance of flagship cells (mean ± σ)", runVariance},
}

// Exit codes, shared with suitsweep: usage/environment errors exit 1,
// failed experiments exit 2, SIGINT exits 130.
const (
	exitOK     = 0
	exitUsage  = 1
	exitFailed = 2
	exitSignal = 130
)

func main() { os.Exit(run()) }

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment id to run, or 'all'")
		quick      = flag.Bool("quick", false, "shorter simulations (lower fidelity)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		outDir     = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		cacheDir   = flag.String("cache", "", "directory for the on-disk result cache (reused across runs)")
		retries    = flag.Int("retries", 0, "per-job retry budget for transient failures (same derived seed on every attempt)")
		onError    = flag.String("on-error", "fail", "engine failure policy: 'fail' stops a sweep at the first failed job, 'continue' finishes it and reports failures")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job watchdog timeout (0 disables)")
		resume     = flag.Bool("resume", false, "resume interrupted experiments from the checkpoint journal (requires -cache)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file (flushed on exit, including SIGINT)")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file (flushed on exit, including SIGINT)")
	)
	flag.CommandLine.Init("suittables", flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	var policy engine.FailurePolicy
	switch *onError {
	case "fail":
		policy = engine.FailFast
	case "continue":
		policy = engine.Collect
	default:
		fmt.Fprintf(os.Stderr, "bad -on-error %q: want 'fail' or 'continue'\n", *onError)
		return exitUsage
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -cache: the checkpoint journal lives next to the result cache")
		return exitUsage
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "suittables: profile flush:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	core.SetRunContext(ctx)

	var cp *engine.Checkpoint
	if *cacheDir != "" {
		config := fmt.Sprintf("suittables seed=%d quick=%t", *seed, *quick)
		var err error
		cp, err = engine.OpenCheckpoint(filepath.Join(*cacheDir, "suittables.journal"), config, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
		defer cp.Close()
	}

	core.SetEngineOptions(engine.Options{
		Workers:      *workers,
		BaseSeed:     *seed,
		CacheDir:     *cacheDir,
		Progress:     os.Stderr,
		Label:        "suittables",
		Retries:      *retries,
		RetryBackoff: 100 * time.Millisecond,
		Policy:       policy,
		JobTimeout:   *jobTimeout,
		Checkpoint:   cp,
	})
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
	}

	c := cfg{quick: *quick, seed: *seed, specInstr: 1_000_000_000, netInstr: 200_000_000}
	if *quick {
		c.specInstr = 200_000_000
		c.netInstr = 50_000_000
	}

	ids := map[string]experiment{}
	for _, e := range experiments {
		ids[e.id] = e
	}
	var torun []experiment
	if *exp == "all" {
		torun = experiments
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := ids[id]
			if !ok {
				var known []string
				for k := range ids {
					known = append(known, k)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(known, " "))
				return exitUsage
			}
			torun = append(torun, e)
		}
	}
	// An experiment failure degrades gracefully: log it, keep going, and
	// report everything that broke at the end. Only an interrupt stops
	// the batch early.
	var failed []string
	for _, e := range torun {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "suittables: interrupted — completed jobs are checkpointed; re-run with -resume to continue\n")
			fmt.Fprintf(os.Stderr, "suittables: partial stats: %s\n", core.EngineStats())
			return exitSignal
		}
		fmt.Printf("==> %s — %s\n\n", e.id, e.desc)
		target := os.Stdout
		if *outDir != "" {
			f, err := os.Create(fmt.Sprintf("%s/%s.txt", *outDir, e.id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
				return exitUsage
			}
			target = f
		}
		err := e.run(c, target)
		if target != os.Stdout {
			target.Close()
			fmt.Printf("(written to %s/%s.txt)\n", *outDir, e.id)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "suittables: interrupted — completed jobs are checkpointed; re-run with -resume to continue\n")
				fmt.Fprintf(os.Stderr, "suittables: partial stats: %s\n", core.EngineStats())
				return exitSignal
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			var re *engine.RunError
			if errors.As(err, &re) {
				for _, k := range re.Keys() {
					fmt.Fprintf(os.Stderr, "  failed: %s\n", k)
				}
			}
			failed = append(failed, e.id)
			fmt.Println()
			continue
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "suittables: %s\n", core.EngineStats())
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "suittables: %d of %d experiments failed: %s\n",
			len(failed), len(torun), strings.Join(failed, " "))
		return exitFailed
	}
	return exitOK
}
