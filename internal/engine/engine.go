// Package engine runs large batches of independent simulations — the
// "hundreds of simulations" behind Table 7 and every other sweep-shaped
// experiment — through one shared, deterministic parallel runner.
//
// The engine provides what every sweep caller used to hand-roll:
//
//   - a bounded worker pool (GOMAXPROCS-sized by default, -j overridable)
//     consuming a queue of simulation specs;
//   - per-job deterministic seed derivation (a hash of the spec
//     fingerprint mixed with a base seed), so results are identical at
//     any parallelism level;
//   - a memoized result store — always in memory, optionally on disk
//     (-cache dir) — keyed by the canonical spec fingerprint, so repeated
//     table/sweep runs skip already-computed points;
//   - a progress/throughput reporter (jobs done, jobs/s, ETA) on stderr;
//   - a resilience layer: per-job panic containment, bounded retries
//     with deterministic fingerprint-derived backoff, a per-job watchdog
//     timeout, a Collect failure policy that finishes the sweep and
//     reports failed specs by fingerprint, and a checkpoint journal so
//     an interrupted sweep resumes where it left off.
//
// Results come back in spec order regardless of completion order, which
// together with the seed contract makes engine output a pure function of
// (specs, base seed): `-j 1` and `-j 8` produce byte-identical reports.
// Retries preserve that contract: a retried attempt reuses the same
// derived seed, so a run that needed retries is byte-identical to a run
// that did not.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RunFunc computes one job's result from its spec and derived seed. The
// context is cancelled when the sweep is aborted or when the job's
// watchdog timeout fires; long-running implementations should honor it
// so a killed job releases its worker promptly (a run that ignores the
// context is abandoned by the watchdog and its goroutine lingers until
// the computation finishes on its own).
type RunFunc[S, R any] func(ctx context.Context, spec S, seed uint64) (R, error)

// RemoteFunc offers one job to an external execution tier — a pool of
// pull-based workers behind internal/dist's dispatcher — before the
// engine falls back to running it locally. It receives the job's
// canonical fingerprint (the content address of the work) and the seed
// the engine derived for it, so a remote executor reproduces exactly
// what a local attempt would compute.
//
// The contract is built for graceful degradation: handled=false means
// the remote tier declined the job (no live workers, circuit breaker
// tripped, remote attempts exhausted) and the engine MUST run it
// locally — declining is never an error. handled=true returns the
// remote result (or, only when the context was cancelled or the tier is
// configured remote-only, a real error). Because results are
// content-addressed and byte-identical wherever they run, routing a job
// remotely can change timing but never bytes.
type RemoteFunc[S, R any] func(ctx context.Context, spec S, key string, seed uint64) (r R, handled bool, err error)

// FailurePolicy selects what Run does when a job fails after all
// retries.
type FailurePolicy int

const (
	// FailFast cancels the remaining queue on the first failed job and
	// returns its error — the strict, abort-everything behavior.
	FailFast FailurePolicy = iota
	// Collect finishes the whole sweep, fills every successful index,
	// and returns the partial results together with a *RunError listing
	// each failed spec by fingerprint.
	Collect
)

func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "fail"
	case Collect:
		return "continue"
	default:
		return fmt.Sprintf("FailurePolicy(%d)", int(p))
	}
}

// Options configures an Engine. The zero value is usable: GOMAXPROCS
// workers, base seed 0, no disk cache, no retries, fail-fast, no
// timeout, no checkpoint, no progress output.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed is mixed into every derived job seed (see DeriveSeed).
	BaseSeed uint64
	// CacheDir, when non-empty, persists results as JSON files keyed by
	// the spec fingerprint (plus BaseSeed), shared across processes.
	CacheDir string
	// Progress, when non-nil, receives periodic throughput lines and a
	// final summary. Point it at os.Stderr to keep stdout reproducible.
	Progress io.Writer
	// ProgressEvery is the reporting interval; <= 0 means 1s.
	ProgressEvery time.Duration
	// Label prefixes progress lines; empty means "engine".
	Label string

	// Retries is how many times a failed job is re-run before it counts
	// as failed (0 = a single attempt). Retried attempts reuse the same
	// derived seed, so retries never change results.
	Retries int
	// RetryBackoff is the base delay between attempts; the actual delay
	// grows with the attempt number plus a deterministic jitter derived
	// from the job fingerprint (see RetryDelay). 0 retries immediately.
	RetryBackoff time.Duration
	// Policy selects fail-fast or collect-and-continue error handling.
	Policy FailurePolicy
	// JobTimeout bounds a single attempt's wall time; when it elapses
	// the watchdog cancels the attempt's context and records a
	// *TimeoutError. 0 disables the watchdog.
	JobTimeout time.Duration
	// Checkpoint, when non-nil, journals every completed fingerprint so
	// an interrupted sweep can be resumed (see OpenCheckpoint).
	Checkpoint *Checkpoint
}

// Stats counts the engine's work since creation. Jobs is the number of
// submitted specs; Unique excludes within-batch duplicates; Ran is the
// number of specs actually simulated. MemHits/DiskHits count unique specs
// resolved from the memo layers; HitRate is (MemHits+DiskHits)/Unique.
type Stats struct {
	Jobs     int64
	Unique   int64
	Ran      int64
	MemHits  int64
	DiskHits int64
	// Retried counts re-run attempts; Failed counts jobs that exhausted
	// their retries; TimedOut and Panicked break Failed-or-retried
	// attempts down by cause.
	Retried  int64
	Failed   int64
	TimedOut int64
	Panicked int64
	// Quarantined counts corrupt on-disk cache entries that were set
	// aside and recomputed.
	Quarantined int64
	// Resumed counts unique jobs that a checkpoint journal already
	// recorded as complete when Run started.
	Resumed int64
	// Coalesced counts jobs that were served by another Run call's
	// in-flight or just-finished execution instead of running themselves
	// — the single-flight dedup that makes N concurrent identical
	// submissions cost one simulation.
	Coalesced int64
	// Remote counts jobs executed by the remote tier (see RemoteFunc);
	// they are included in Ran, so Ran-Remote is the local share.
	Remote int64
	// Elapsed is the wall-clock time spent inside Run calls.
	Elapsed time.Duration
}

// Hits is the number of unique specs served from a cache layer.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// HitRate is the fraction of unique specs served from a cache layer.
func (s Stats) HitRate() float64 {
	if s.Unique == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Unique)
}

// Throughput is the number of simulated specs per second of Run time.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ran) / s.Elapsed.Seconds()
}

func (s Stats) String() string {
	out := fmt.Sprintf("%d jobs (%d unique), %d ran, %d memo + %d disk hits (%.1f%% hit rate), %.1f jobs/s",
		s.Jobs, s.Unique, s.Ran, s.MemHits, s.DiskHits, s.HitRate()*100, s.Throughput())
	if s.Retried > 0 || s.Failed > 0 {
		out += fmt.Sprintf(", %d retried, %d failed (%d timeouts, %d panics)",
			s.Retried, s.Failed, s.TimedOut, s.Panicked)
	}
	if s.Quarantined > 0 {
		out += fmt.Sprintf(", %d cache entries quarantined", s.Quarantined)
	}
	if s.Resumed > 0 {
		out += fmt.Sprintf(", %d resumed from checkpoint", s.Resumed)
	}
	if s.Coalesced > 0 {
		out += fmt.Sprintf(", %d coalesced in flight", s.Coalesced)
	}
	if s.Remote > 0 {
		out += fmt.Sprintf(", %d executed remotely", s.Remote)
	}
	return out
}

// Engine runs spec-shaped jobs of type S producing results of type R.
// An Engine is safe for concurrent use; the in-memory memo persists for
// its lifetime.
type Engine[S, R any] struct {
	key  func(S) string
	run  RunFunc[S, R]
	opts Options

	// remote, when non-nil, is offered every job before the local
	// attempt loop runs it (see RemoteFunc and SetRemote). Options
	// cannot carry it because Options is not generic.
	remote RemoteFunc[S, R]

	sweepTemps sync.Once

	mu      sync.Mutex
	memo    map[string]R
	stats   Stats
	flights map[string]*flight[R]
}

// flight is one in-progress execution of a fingerprint, shared between
// the Run call that leads it and any concurrent Run calls waiting on
// the same key. The leader publishes r/err before closing done, so a
// follower that returns from <-f.done reads them race-free.
type flight[R any] struct {
	done chan struct{}
	r    R
	err  error
}

// New builds an engine. key must return a canonical fingerprint: equal
// fingerprints are assumed to denote identical work and are computed only
// once. run receives the spec plus its derived seed (DeriveSeed of the
// fingerprint); callers whose specs carry explicit seeds may ignore it.
func New[S, R any](key func(S) string, run RunFunc[S, R], opts Options) *Engine[S, R] {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = time.Second
	}
	if opts.Label == "" {
		opts.Label = "engine"
	}
	return &Engine[S, R]{key: key, run: run, opts: opts,
		memo: make(map[string]R), flights: make(map[string]*flight[R])}
}

// SetRemote installs (or, with nil, removes) the remote-executor hook.
// Call it before the first Run; the engine reads it without locking on
// the job path, so installing it mid-sweep is a race.
func (e *Engine[S, R]) SetRemote(remote RemoteFunc[S, R]) { e.remote = remote }

// Stats returns a snapshot of the cumulative accounting.
func (e *Engine[S, R]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Inflight is the number of jobs currently executing (single-flight
// leaders). It is a point-in-time gauge for telemetry — the /metrics
// endpoint of a serving daemon — not part of the cumulative Stats.
func (e *Engine[S, R]) Inflight() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.flights)
}

// job groups all batch indices that share one fingerprint.
type job[S any] struct {
	key     string
	spec    S
	indices []int
}

// Run evaluates every spec and returns the results in spec order.
//
// Under the FailFast policy the first job failure (after retries)
// cancels the remaining queue and is returned; under Collect the whole
// sweep finishes and failures come back as a *RunError alongside the
// partial results (failed indices hold the zero R). Cancelling ctx
// stops dispatching (in-flight jobs finish first) and returns the
// partial results plus ctx.Err(); completed jobs are already cached and
// checkpointed, so a resumed run recomputes only what is missing. Run
// never leaks goroutines on its own: all workers have exited by the
// time it returns (only a job that ignores its context after the
// watchdog fired can leave its computation behind).
func (e *Engine[S, R]) Run(ctx context.Context, specs []S) ([]R, error) {
	return e.RunCheckpointed(ctx, specs, e.opts.Checkpoint)
}

// RunCheckpointed is Run with a per-call checkpoint journal overriding
// Options.Checkpoint (nil runs without one). A long-lived engine shared
// by many independent sweeps — the suitd daemon — journals each sweep
// into its own file this way, so one interrupted sweep resumes without
// conflating its progress with its neighbours'.
func (e *Engine[S, R]) RunCheckpointed(ctx context.Context, specs []S, cp *Checkpoint) ([]R, error) {
	start := time.Now() //lint:allow determinism wall-clock only feeds Stats.Elapsed and the progress reporter, never results
	results := make([]R, len(specs))

	if e.opts.CacheDir != "" {
		e.sweepTemps.Do(func() { cleanStaleTemps(e.opts.CacheDir) })
	}

	// Group duplicate fingerprints so each is computed once per batch.
	byKey := make(map[string]*job[S], len(specs))
	order := make([]*job[S], 0, len(specs))
	for i, s := range specs {
		k := e.key(s)
		if j, ok := byKey[k]; ok {
			j.indices = append(j.indices, i)
			continue
		}
		j := &job[S]{key: k, spec: s, indices: []int{i}}
		byKey[k] = j
		order = append(order, j)
	}

	fill := func(j *job[S], r R) {
		for _, i := range j.indices {
			results[i] = r
		}
	}

	// Resolve the memo layers before spinning up workers. A checkpoint
	// journal entry means a previous run completed the job: its result
	// normally arrives via the disk cache; if the cache entry is gone or
	// was quarantined the job is simply recomputed.
	var pending []*job[S]
	var memHits, diskHits, resumed int64
	for _, j := range order {
		if cp.Done(j.key) {
			resumed++
		}
		e.mu.Lock()
		r, ok := e.memo[j.key]
		e.mu.Unlock()
		if ok {
			fill(j, r)
			cp.Record(j.key)
			memHits++
			continue
		}
		if r, ok := e.diskGet(j.key); ok {
			e.mu.Lock()
			e.memo[j.key] = r
			e.mu.Unlock()
			fill(j, r)
			cp.Record(j.key)
			diskHits++
			continue
		}
		pending = append(pending, j)
	}

	var done atomic.Int64
	stopProgress := e.startProgress(&done, len(pending), start)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan *job[S])
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	var failures []JobFailure
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if runCtx.Err() != nil {
					continue // drain the queue without working
				}
				r, attempts, shared, err := e.executeShared(runCtx, j)
				if err != nil {
					if runCtx.Err() != nil && errors.Is(err, context.Canceled) {
						continue // sweep aborted, not a job failure
					}
					e.countFailure(err)
					if e.opts.Policy == Collect {
						errMu.Lock()
						failures = append(failures, JobFailure{
							Key: j.key, Index: j.indices[0], Attempts: attempts, Err: err,
						})
						errMu.Unlock()
						done.Add(1)
						continue
					}
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("engine: job %d/%d (%s): %w", j.indices[0]+1, len(specs), j.key, err)
					}
					errMu.Unlock()
					cancel()
					continue
				}
				e.mu.Lock()
				e.memo[j.key] = r
				if !shared {
					e.stats.Ran++
				}
				e.mu.Unlock()
				if !shared {
					// The leader already persisted a shared result.
					e.diskPut(j.key, r)
				}
				// Journal into this call's checkpoint even when the
				// execution was shared: the leader only journals its own.
				cp.Record(j.key)
				fill(j, r)
				done.Add(1)
			}
		}()
	}
feed:
	for _, j := range pending {
		select {
		case jobs <- j:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	stopProgress()

	e.mu.Lock()
	e.stats.Jobs += int64(len(specs))
	e.stats.Unique += int64(len(order))
	e.stats.MemHits += memHits
	e.stats.DiskHits += diskHits
	e.stats.Resumed += resumed
	e.stats.Failed += int64(len(failures))
	e.stats.Elapsed += time.Since(start) //lint:allow determinism Stats.Elapsed is operator telemetry, not a result
	e.mu.Unlock()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		// Partial results: every completed index is filled, and the
		// caches/checkpoint already hold the finished jobs.
		return results, err
	}
	if len(failures) > 0 {
		// Completion order is scheduling-dependent; report failures in
		// spec order so the error text is deterministic.
		sort.Slice(failures, func(i, k int) bool { return failures[i].Index < failures[k].Index })
		return results, &RunError{Failures: failures, Jobs: len(order)}
	}
	return results, nil
}

// executeShared runs one job under single-flight dedup: the first Run
// call to reach a fingerprint becomes its leader and executes it; any
// concurrent Run call landing on the same key waits for the leader and
// shares its result (shared=true, counted in Stats.Coalesced) instead
// of executing a second time. A leader failure is not shared: the
// follower loops around and executes under its own retry budget, so
// one Run's bad luck (or cancelled context) cannot fail another's job.
// A follower whose own context is cancelled stops waiting and returns
// the context error.
func (e *Engine[S, R]) executeShared(ctx context.Context, j *job[S]) (r R, attempts int, shared bool, err error) {
	for {
		e.mu.Lock()
		// A concurrent Run may have finished the key after this batch's
		// cache-resolution pass; the memo is the cheapest re-check.
		if r, ok := e.memo[j.key]; ok {
			e.stats.Coalesced++
			e.mu.Unlock()
			return r, 0, true, nil
		}
		if f, ok := e.flights[j.key]; ok {
			e.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					e.mu.Lock()
					e.stats.Coalesced++
					e.mu.Unlock()
					return f.r, 0, true, nil
				}
				continue // leader failed: try to lead our own execution
			case <-ctx.Done():
				return r, 0, false, ctx.Err()
			}
		}
		f := &flight[R]{done: make(chan struct{})}
		e.flights[j.key] = f
		e.mu.Unlock()

		r, attempts, err = e.executeJob(ctx, j)
		e.mu.Lock()
		delete(e.flights, j.key)
		e.mu.Unlock()
		f.r, f.err = r, err
		close(f.done)
		return r, attempts, false, err
	}
}

// countFailure attributes a failed or retried attempt's cause.
func (e *Engine[S, R]) countFailure(err error) {
	var te *TimeoutError
	var pe *PanicError
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case errors.As(err, &te):
		e.stats.TimedOut++
	case errors.As(err, &pe):
		e.stats.Panicked++
	}
}

// startProgress launches the throughput reporter; the returned func stops
// it and prints the final line. A no-op when Progress is nil or the batch
// resolved entirely from cache.
func (e *Engine[S, R]) startProgress(done *atomic.Int64, total int, start time.Time) func() {
	if e.opts.Progress == nil || total == 0 {
		return func() {}
	}
	report := func(final bool) {
		d := done.Load()
		elapsed := time.Since(start).Seconds() //lint:allow determinism progress-line throughput is stderr telemetry, not a result
		rate := float64(d) / elapsed
		line := fmt.Sprintf("%s: %d/%d jobs, %.1f jobs/s", e.opts.Label, d, total, rate)
		if !final && rate > 0 {
			eta := time.Duration(float64(total-int(d))/rate*1e9) * time.Nanosecond
			line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
		}
		fmt.Fprintln(e.opts.Progress, line)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(e.opts.ProgressEvery) //lint:allow determinism the progress ticker paces stderr telemetry, never results
		defer t.Stop()
		for {
			select {
			case <-t.C:
				report(false)
			case <-stop:
				return
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
		report(true)
	}
}

// DeriveSeed maps (base seed, spec fingerprint) to the job's simulation
// seed: an FNV-1a hash of the fingerprint mixed with the base seed and
// finalized with splitmix64. The derivation depends only on its inputs —
// never on worker count, completion order or retry attempt — which is
// what makes sweep output reproducible at any parallelism level. The
// result is never 0 so downstream code can keep treating a zero seed as
// "unset".
func DeriveSeed(base uint64, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	x := h.Sum64() ^ (base * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
