package trace

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"suit/internal/isa"
)

func TestBinaryRoundTrip(t *testing.T) {
	orig := &Trace{
		Name:  "557.xz",
		Total: 5_000_000_000,
		IPC:   1.73,
		Events: []Event{
			{0, isa.OpVOR},
			{559, isa.OpIMUL},
			{1_000_000, isa.OpAESENC},
			{4_999_999_999, isa.OpVPADDQ},
		},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestBinaryRejectsInvalidTrace(t *testing.T) {
	bad := &Trace{Total: 1, IPC: 0}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, bad); err == nil {
		t.Error("WriteBinary accepted an invalid trace")
	}
	if buf.Len() != 0 {
		// Nothing useful should have been committed before validation.
		t.Error("WriteBinary wrote bytes for an invalid trace")
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOTATRACE-------"))
	if err != ErrBadMagic {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	orig := mkTrace(t, 100, 1, 2, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes not detected", cut, len(full))
		}
	}
}

func TestReadBinaryCorruptOpcode(t *testing.T) {
	orig := mkTrace(t, 100, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] = 0xFF // opcode varint → continuation byte garbage
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("corrupt opcode not detected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := &Trace{
		Name:  "nginx",
		Total: 12345,
		IPC:   2.5,
		Events: []Event{
			{7, isa.OpAESENC}, {8, isa.OpAESENC}, {9000, isa.OpVPCLMULQDQ},
		},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, &got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, orig)
	}
	// Opcode names must be symbolic in the wire form.
	if !bytes.Contains(data, []byte(`"AESENC"`)) {
		t.Errorf("JSON does not use mnemonic opcodes: %s", data)
	}
}

func TestJSONRejectsUnknownOpcode(t *testing.T) {
	var tr Trace
	err := json.Unmarshal([]byte(`{"name":"x","total":10,"ipc":1,"events":[{"i":1,"op":"FROB"}]}`), &tr)
	if err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	faultable := isa.Faultable()
	prop := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		total := uint64(1_000_000)
		tr := &Trace{Name: "prop", Total: total, IPC: 0.5 + rng.Float64()*3}
		idx := uint64(0)
		for i := 0; i < int(n); i++ {
			idx += rng.Uint64N(10_000) + 1
			if idx >= total {
				break
			}
			op := faultable[rng.IntN(len(faultable))]
			tr.Events = append(tr.Events, Event{Index: idx, Op: op})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{
		Name: "det", Total: 1_000_000, IPC: 2, Seed: 42,
		Sources: []Source{
			Burst{Op: isa.OpAESENC, MeanBurstLen: 20, IntraGap: 3, QuietMedian: 50_000, QuietSigma: 1.5},
			Poisson{Op: isa.OpVOR, MeanGap: 100_000},
		},
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Generate not deterministic in seed")
	}
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidatesSpec(t *testing.T) {
	if _, err := Generate(Spec{Total: 0, IPC: 1}); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := Generate(Spec{Total: 10, IPC: 0}); err == nil {
		t.Error("zero IPC accepted")
	}
}

func TestPeriodicSource(t *testing.T) {
	tr, err := Generate(Spec{
		Name: "imul", Total: 5601, IPC: 1, Seed: 1,
		Sources: []Source{Periodic{Op: isa.OpIMUL, Interval: 560}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 11 { // indices 0,560,...,5600
		t.Fatalf("got %d events, want 11", len(tr.Events))
	}
	for i, ev := range tr.Events {
		if ev.Index != uint64(i)*560 || ev.Op != isa.OpIMUL {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
	// Zero interval emits nothing rather than looping forever.
	tr2, err := Generate(Spec{Name: "z", Total: 100, IPC: 1,
		Sources: []Source{Periodic{Op: isa.OpIMUL, Interval: 0}}})
	if err != nil || len(tr2.Events) != 0 {
		t.Errorf("zero-interval: %v, %d events", err, len(tr2.Events))
	}
}

func TestPoissonSourceDensity(t *testing.T) {
	tr, err := Generate(Spec{
		Name: "poisson", Total: 10_000_000, IPC: 1, Seed: 7,
		Sources: []Source{Poisson{Op: isa.OpVXOR, MeanGap: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(tr.Events))
	want := 10_000_000.0 / 1000
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("Poisson event count %v not within 10%% of %v", got, want)
	}
}

func TestBurstSourceIsBursty(t *testing.T) {
	tr, err := Generate(Spec{
		Name: "bursty", Total: 100_000_000, IPC: 1, Seed: 3,
		Sources: []Source{Burst{Op: isa.OpAESENC, MeanBurstLen: 50, IntraGap: 2, QuietMedian: 1_000_000, QuietSigma: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) < 100 {
		t.Fatalf("too few events to assess burstiness: %d", len(tr.Events))
	}
	// Bimodal gaps: many tiny (intra-burst), some huge (quiet). Compare
	// the count of gaps <=10 against gaps >=100000.
	var tiny, huge int
	for _, g := range tr.Gaps() {
		switch {
		case g <= 10:
			tiny++
		case g >= 100_000:
			huge++
		}
	}
	if tiny == 0 || huge == 0 {
		t.Errorf("burst trace not bimodal: tiny=%d huge=%d", tiny, huge)
	}
	if float64(tiny) < 5*float64(huge) {
		t.Errorf("expected intra-burst gaps to dominate: tiny=%d huge=%d", tiny, huge)
	}
}

func TestGenerateResolvesCollisions(t *testing.T) {
	// Two periodic sources emitting at identical indices must still yield
	// a valid (strictly increasing) trace.
	tr, err := Generate(Spec{
		Name: "collide", Total: 1000, IPC: 1, Seed: 1,
		Sources: []Source{
			Periodic{Op: isa.OpVOR, Interval: 100},
			Periodic{Op: isa.OpVXOR, Interval: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 20 {
		t.Errorf("got %d events, want 20 (collisions shifted, not dropped)", len(tr.Events))
	}
}
