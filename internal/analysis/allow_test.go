package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func a() {
	_ = 1 //lint:allow determinism trailing form with a reason
}

func b() {
	//lint:allow units standalone form above the statement
	_ = 2
}

func c() {
	_ = 3 //lint:allow determinism
}

func d() {
	_ = 4 //lint:allow nosuchpass it is not a real analyzer
}

func e() {
	_ = 5 //lint:allow
}
`

func parseAllowSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectAllows(t *testing.T) {
	fset, files := parseAllowSrc(t)
	known := map[string]bool{"determinism": true, "units": true}
	allows, bad := CollectAllows(fset, files, known)

	if len(allows) != 2 {
		t.Fatalf("well-formed allows = %d, want 2: %+v", len(allows), allows)
	}
	if allows[0].Analyzer != "determinism" || allows[1].Analyzer != "units" {
		t.Errorf("allow analyzers = %s, %s; want determinism, units",
			allows[0].Analyzer, allows[1].Analyzer)
	}

	if len(bad) != 3 {
		t.Fatalf("malformed allows = %d, want 3: %+v", len(bad), bad)
	}
	wantBad := []string{"missing a reason", "unknown analyzer nosuchpass", "needs an analyzer name"}
	for i, w := range wantBad {
		if bad[i].Analyzer != "lintallow" {
			t.Errorf("bad[%d].Analyzer = %s, want lintallow", i, bad[i].Analyzer)
		}
		if !strings.Contains(bad[i].Message, w) {
			t.Errorf("bad[%d].Message = %q, want substring %q", i, bad[i].Message, w)
		}
	}
}

func TestSuppress(t *testing.T) {
	fset, files := parseAllowSrc(t)
	known := map[string]bool{"determinism": true, "units": true}
	allows, _ := CollectAllows(fset, files, known)

	lineOf := func(a Allow) int { return a.Line }
	trailing, standalone := allows[0], allows[1]

	posAt := func(line int) token.Pos {
		tf := fset.File(files[0].Pos())
		return tf.LineStart(line)
	}

	diags := []Diagnostic{
		// Same line as the trailing suppression: suppressed.
		{Pos: posAt(lineOf(trailing)), Analyzer: "determinism", Message: "x"},
		// Line below the standalone suppression: suppressed.
		{Pos: posAt(lineOf(standalone) + 1), Analyzer: "units", Message: "y"},
		// Wrong analyzer on a suppressed line: kept.
		{Pos: posAt(lineOf(trailing)), Analyzer: "units", Message: "z"},
		// Two lines below a suppression: kept.
		{Pos: posAt(lineOf(standalone) + 2), Analyzer: "units", Message: "w"},
	}
	kept := Suppress(fset, diags, allows)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	if kept[0].Message != "z" || kept[1].Message != "w" {
		t.Errorf("kept = %q, %q; want z, w", kept[0].Message, kept[1].Message)
	}
}

func TestMalformedAllowDoesNotSuppress(t *testing.T) {
	fset, files := parseAllowSrc(t)
	allows, _ := CollectAllows(fset, files, map[string]bool{"determinism": true})

	// The reason-less //lint:allow determinism in func c must not have
	// produced an Allow for its line.
	tf := fset.File(files[0].Pos())
	for _, a := range allows {
		line := a.Line
		text := allowSrc[tf.Offset(tf.LineStart(line)):]
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			text = text[:i]
		}
		if strings.Contains(text, "_ = 3") {
			t.Errorf("reason-less suppression was honored: %+v", a)
		}
	}
}
