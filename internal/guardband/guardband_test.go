package guardband

import (
	"math"
	"testing"
	"testing/quick"

	"suit/internal/dvfs"
	"suit/internal/isa"
	"suit/internal/units"
)

func mv(v units.Volt) float64 { return v.MilliVolts() }

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	mutations := []func(*Model){
		func(m *Model) { m.BackgroundVariation = 0 },
		func(m *Model) { m.SpendableAgingFraction = -0.1 },
		func(m *Model) { m.SpendableAgingFraction = 1.1 },
		func(m *Model) { m.AgingGuardband = -1 },
		func(m *Model) { m.TempGuardband = -1 },
		func(m *Model) { m.IMULHardeningBonus = -1 },
		func(m *Model) { m.VariationMargin[isa.OpVOR] = 0 },
		func(m *Model) { m.VariationMargin[isa.OpVOR] = m.BackgroundVariation },
	}
	for i, mut := range mutations {
		m := Default()
		mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMarginOrderingFollowsTable1(t *testing.T) {
	// Higher fault count → smaller margin (faults at shallower undervolt).
	m := Default()
	rows := isa.Table1()
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		ma := m.Margin(a.Op, false)
		mb := m.Margin(b.Op, false)
		if a.FaultCount > b.FaultCount && ma >= mb {
			t.Errorf("%s (faults %d, margin %v) should have smaller margin than %s (faults %d, margin %v)",
				a.Name, a.FaultCount, ma, b.Name, b.FaultCount, mb)
		}
	}
}

func TestBackgroundMarginIs70mV(t *testing.T) {
	m := Default()
	if got := m.Margin(isa.OpALU, false); math.Abs(mv(got)-70) > 1e-9 {
		t.Errorf("background margin = %v, want 70 mV", got)
	}
}

func TestIMULHardening(t *testing.T) {
	m := Default()
	plain := m.Margin(isa.OpIMUL, false)
	hard := m.Margin(isa.OpIMUL, true)
	if hard-plain != m.IMULHardeningBonus {
		t.Errorf("hardening bonus = %v, want %v", hard-plain, m.IMULHardeningBonus)
	}
	// Hardened IMUL must be safe at the deepest SUIT offset (−97 mV).
	if m.Faults(isa.OpIMUL, units.MilliVolts(-97), true) {
		t.Error("hardened IMUL faults at −97 mV; SUIT design broken")
	}
	// Unhardened IMUL faults early — it is the most fault-prone opcode:
	// 12 mV certified variation + 27.4 mV residual aging headroom.
	if !m.Faults(isa.OpIMUL, units.MilliVolts(-45), false) {
		t.Error("unhardened IMUL survives −45 mV; Table 1 says it faults first")
	}
	if m.Faults(isa.OpIMUL, units.MilliVolts(-35), false) {
		t.Error("unhardened IMUL faults within its physical margin")
	}
}

func TestFaultsThreshold(t *testing.T) {
	m := Default()
	pm := m.PhysicalMargin(isa.OpVOR, false)
	if got := pm - m.Margin(isa.OpVOR, false); math.Abs(mv(got)-0.2*137) > 1e-9 {
		t.Errorf("physical margin headroom = %v, want 20%% of 137 mV", got)
	}
	if m.Faults(isa.OpVOR, -pm, false) {
		t.Error("VOR faults at exactly its physical margin")
	}
	if !m.Faults(isa.OpVOR, -(pm + units.MilliVolts(1)), false) {
		t.Error("VOR survives below its physical margin")
	}
	// Background instructions survive the full −97 mV design point.
	if m.Faults(isa.OpALU, units.MilliVolts(-97), false) {
		t.Error("background instruction faults at the SUIT design point")
	}
	if !m.Faults(isa.OpALU, units.MilliVolts(-99), false) {
		t.Error("background instruction survives below its margin")
	}
}

func TestEfficientOffsetMatchesPaper(t *testing.T) {
	m := Default()
	// Full faultable set disabled, hardened IMUL: −70 mV, or −97 mV
	// when spending 20 % of the 137 mV aging guardband (§3.1).
	got70 := m.EfficientOffset(isa.FaultableMask, true, false)
	if math.Abs(mv(got70)+70) > 0.5 {
		t.Errorf("offset without aging = %v, want −70 mV", got70)
	}
	got97 := m.EfficientOffset(isa.FaultableMask, true, true)
	if math.Abs(mv(got97)+97.4) > 0.5 {
		t.Errorf("offset with aging = %v, want ≈−97 mV", got97)
	}
}

func TestEfficientOffsetWithoutDisablingIsShallow(t *testing.T) {
	// Nothing disabled, stock IMUL: the curve is limited by IMUL's
	// margin — this is "today's CPU".
	m := Default()
	got := m.EfficientOffset(0, false, false)
	if math.Abs(mv(got)+12) > 0.5 {
		t.Errorf("stock offset = %v, want −12 mV (IMUL-limited)", got)
	}
	// Disabling everything but leaving IMUL unhardened still pins the
	// curve to IMUL's margin.
	got2 := m.EfficientOffset(isa.FaultableMask, false, false)
	if math.Abs(mv(got2)+12) > 0.5 {
		t.Errorf("unhardened offset = %v, want −12 mV", got2)
	}
}

func TestEfficientOffsetNeverFaultsEnabledInstructions(t *testing.T) {
	m := Default()
	prop := func(rawMask uint32, hardened bool) bool {
		mask := isa.DisableMask(rawMask) & isa.FaultableMask
		off := m.EfficientOffset(mask, hardened, false)
		for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
			if op == isa.OpNop || mask.Has(op) {
				continue
			}
			if m.Faults(op, off+units.MilliVolts(0.01), hardened) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAgingDegradation(t *testing.T) {
	// 15 % after 10 years at reference temperature.
	if got := AgingDegradation(10, 105); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("10y@105°C = %v, want 0.15", got)
	}
	if AgingDegradation(0, 105) != 0 {
		t.Error("zero years must give zero degradation")
	}
	if AgingDegradation(-3, 105) != 0 {
		t.Error("negative years must give zero degradation")
	}
	// Monotone in time, accelerating with temperature.
	if AgingDegradation(5, 105) >= AgingDegradation(10, 105) {
		t.Error("degradation not monotone in time")
	}
	if AgingDegradation(10, 50) >= AgingDegradation(10, 105) {
		t.Error("cooler part must age slower (§3.1)")
	}
	// Sub-linear in time: 5 years costs much more than half of 10 years'
	// wear — the motivation for data centers retiring CPUs early is that
	// *late* wear is cheap, early wear is front-loaded.
	if AgingDegradation(5, 105) <= 0.075 {
		t.Error("BTI power law should front-load degradation")
	}
	// Never exceeds the hot worst case.
	if AgingDegradation(10, 200) > 0.15 {
		t.Error("temperature factor must cap at the worst case")
	}
}

func TestAgingGuardbandForI9(t *testing.T) {
	// §5.6: 5 GHz · 15 % · 183 mV/GHz = 137 mV (12 % of 1.174 V).
	c := dvfs.IntelI9_9900K().Vendor
	got := AgingGuardbandFor(c)
	if math.Abs(mv(got)-137.25) > 1 {
		t.Errorf("aging guardband = %v, want ≈137 mV", got)
	}
	frac := float64(got) / float64(c.Top().V)
	if math.Abs(frac-0.12) > 0.005 {
		t.Errorf("guardband fraction = %v, want ≈12%%", frac)
	}
}

func TestTable3AndTempInterpolation(t *testing.T) {
	p := Table3()
	if p[0].Temp != 50 || math.Abs(mv(p[0].MaxOffset)+90) > 1e-9 {
		t.Errorf("Table 3 row 0 = %+v", p[0])
	}
	if p[1].Temp != 88 || math.Abs(mv(p[1].MaxOffset)+55) > 1e-9 {
		t.Errorf("Table 3 row 1 = %+v", p[1])
	}
	// Exact at the measured points.
	if got := MaxUndervoltAt(50); math.Abs(mv(got)+90) > 1e-9 {
		t.Errorf("MaxUndervoltAt(50) = %v", got)
	}
	if got := MaxUndervoltAt(88); math.Abs(mv(got)+55) > 1e-9 {
		t.Errorf("MaxUndervoltAt(88) = %v", got)
	}
	// Monotone: hotter → shallower (less negative) max undervolt.
	if MaxUndervoltAt(60) >= MaxUndervoltAt(80) {
		t.Error("undervolt headroom must shrink with temperature")
	}
	// §5.7: the 50→88 °C guardband is 35 mV.
	if got := TempGuardbandFor(50, 88); math.Abs(mv(got)+35) > 1e-9 {
		t.Errorf("temp guardband = %v, want −35 mV of headroom change", got)
	}
}

func TestHardenedIMULCurveBelowVendor(t *testing.T) {
	// Fig 13: the modified-IMUL curve sits below the vendor curve, with
	// the largest gap at the top of the curve (≈220 mV at 5 GHz in the
	// best case per §6.9) and a negligible gap at the flat bottom.
	vendor := dvfs.IntelI9_9900K().Vendor
	mod := HardenedIMULCurve(vendor)
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mod.States) != len(vendor.States) {
		t.Fatal("state count changed")
	}
	var gaps []float64
	for i := range mod.States {
		gap := float64(vendor.States[i].V - mod.States[i].V)
		if gap < 0 {
			t.Errorf("modified curve above vendor at state %d", i)
		}
		gaps = append(gaps, gap)
	}
	topGap := gaps[len(gaps)-1] * 1000
	if topGap < 150 || topGap > 250 {
		t.Errorf("top-of-curve gap = %.0f mV, want ≈220 mV (§6.9)", topGap)
	}
	if gaps[0]*1000 > 50 {
		t.Errorf("bottom-of-curve gap = %.0f mV, should be small (flat region)", gaps[0]*1000)
	}
}

func TestNoVariationModel(t *testing.T) {
	// §3.1: CPUs without instruction voltage variation (Intel 6th gen in
	// Kogler et al.) give SUIT nothing beyond the spendable aging slice.
	m := NoVariation()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every instruction shares the background margin.
	for _, op := range []isa.Opcode{isa.OpIMUL, isa.OpAESENC, isa.OpVOR, isa.OpALU} {
		if got := m.Margin(op, true); got != m.BackgroundVariation {
			t.Errorf("%v margin = %v, want background %v", op, got, m.BackgroundVariation)
		}
	}
	// The variation-only offset equals the background margin — no gain
	// from disabling anything.
	withDisable := m.EfficientOffset(isa.FaultableMask, true, false)
	withoutDisable := m.EfficientOffset(0, false, false)
	if withDisable != withoutDisable {
		t.Errorf("disabling changed the offset on a no-variation part: %v vs %v",
			withDisable, withoutDisable)
	}
	// Nothing in the faultable set actually faults at that offset.
	for _, op := range isa.Faultable() {
		if m.Faults(op, withDisable, false) {
			t.Errorf("%v faults on a no-variation part at %v", op, withDisable)
		}
	}
}
