// Package facts is the cross-function, cross-package state store of the
// suitlint framework: an analyzer running over one package can export a
// deduction about a function ("may allocate", "tainted by the wall
// clock") and an analyzer running later over a *dependent* package can
// import it at a call site. It mirrors the role of object facts in
// golang.org/x/tools/go/analysis, built on the standard library only.
//
// Facts are keyed by (package import path, object name) rather than by
// *types.Object identity, because the same function is a different
// object in different type-checking sessions: the standalone loader
// shares one importer, but the cmd/go vet protocol type-checks every
// package in a separate process and revives dependency facts from .vetx
// files. String keys survive both. Only package-level functions and
// methods are addressable; closures have no stable name and must be
// summarized into their enclosing declaration by the analyzer.
//
// The wire encoding (Encode/Decode) is deterministic JSON sorted by
// key, so identical analysis inputs produce identical .vetx bytes —
// the same reproducibility contract the rest of the repo holds its
// outputs to.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// A Fact is one deduction about a function. Concrete fact types are
// pointers to plain structs with exported JSON-serializable fields and
// must be Register-ed (in the analyzer's init) before a Store can
// decode them from wire form.
type Fact interface {
	// AFact is a marker so arbitrary values cannot be stored by
	// accident.
	AFact()
}

// registry maps a fact's wire name (the concrete type's
// "pkgname.TypeName" string) to its type, for Decode.
var (
	registryMu sync.Mutex
	registry   = map[string]reflect.Type{}
)

// Register records a fact type for wire decoding. The zero value passed
// in is only used for its type; call from the analyzer package's init.
func Register(f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("facts: Register(%T): facts must be pointers to structs", f))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[factName(f)] = t.Elem()
}

// factName is the wire name of a fact's concrete type, e.g.
// "allocfree.Allocates".
func factName(f Fact) string {
	return reflect.TypeOf(f).Elem().String()
}

// A Key addresses one function across type-checking sessions.
type Key struct {
	Pkg string // normalized package import path
	Obj string // "F" for functions, "(T).M" / "(*T).M" for methods
}

// NormPkgPath canonicalizes a package path: cmd/go analyzes test
// variants under synthesized paths like "suit/internal/cpu
// [suit/internal/cpu.test]"; the bracketed suffix is dropped so facts
// from the variant and the plain package coincide.
func NormPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// FuncKey derives the stable key for a function or method, reporting
// false for objects that have no cross-session name: nil, functions
// outside any package (builtins), init functions (each is a distinct
// anonymous object) and methods on unnamed receiver types.
func FuncKey(fn *types.Func) (Key, bool) {
	if fn == nil || fn.Pkg() == nil {
		return Key{}, false
	}
	fn = fn.Origin() // generic instantiations share the origin's facts
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return Key{}, false
	}
	name := fn.Name()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			ptr = "*"
			t = p.Elem()
		}
		named, okn := t.(*types.Named)
		if !okn {
			return Key{}, false
		}
		name = "(" + ptr + named.Obj().Name() + ")." + fn.Name()
	} else if name == "init" || name == "_" {
		return Key{}, false
	}
	return Key{Pkg: NormPkgPath(fn.Pkg().Path()), Obj: name}, true
}

// A Store holds facts for one analysis session. Drivers create one
// Store per run (or revive one from dependency .vetx files) and every
// analyzed package reads and writes through it.
type Store struct {
	mu sync.Mutex
	m  map[Key]map[string]Fact
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{m: map[Key]map[string]Fact{}}
}

// Export records fact for fn, overwriting a previous fact of the same
// concrete type. It reports whether fn was addressable.
func (s *Store) Export(fn *types.Func, f Fact) bool {
	key, ok := FuncKey(fn)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byType := s.m[key]
	if byType == nil {
		byType = map[string]Fact{}
		s.m[key] = byType
	}
	byType[factName(f)] = f
	return true
}

// Import looks up a fact of ptr's concrete type for fn and, when found,
// copies it into *ptr and reports true.
func (s *Store) Import(fn *types.Func, ptr Fact) bool {
	key, ok := FuncKey(fn)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, okf := s.m[key][factName(ptr)]
	if !okf {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// Len returns the number of (function, fact) pairs held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, byType := range s.m {
		n += len(byType)
	}
	return n
}

// wireFact is the serialized form of one (key, fact) pair.
type wireFact struct {
	Pkg  string          `json:"pkg"`
	Obj  string          `json:"obj"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes every fact in the store, deterministically sorted
// by (package, object, fact type). The whole store is written — not
// just the current package's facts — so a dependent package's .vetx
// transitively carries everything it learned, whichever subset of
// dependency files the driver was handed.
func (s *Store) Encode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var wire []wireFact
	for key, byType := range s.m {
		for name, f := range byType {
			data, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("facts: encoding %s for %s.%s: %v", name, key.Pkg, key.Obj, err)
			}
			wire = append(wire, wireFact{Pkg: key.Pkg, Obj: key.Obj, Type: name, Data: data})
		}
	}
	sort.Slice(wire, func(i, j int) bool {
		if wire[i].Pkg != wire[j].Pkg {
			return wire[i].Pkg < wire[j].Pkg
		}
		if wire[i].Obj != wire[j].Obj {
			return wire[i].Obj < wire[j].Obj
		}
		return wire[i].Type < wire[j].Type
	})
	return json.Marshal(wire)
}

// Decode merges serialized facts into the store. Facts of unregistered
// types are an error: the vet cache keys on the suitlint binary hash,
// so a type mismatch means a driver bug, not a stale file.
func (s *Store) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := json.Unmarshal(data, &wire); err != nil {
		return fmt.Errorf("facts: decoding store: %v", err)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range wire {
		t, ok := registry[w.Type]
		if !ok {
			return fmt.Errorf("facts: decoding store: unregistered fact type %q", w.Type)
		}
		ptr := reflect.New(t)
		if err := json.Unmarshal(w.Data, ptr.Interface()); err != nil {
			return fmt.Errorf("facts: decoding %s for %s.%s: %v", w.Type, w.Pkg, w.Obj, err)
		}
		key := Key{Pkg: w.Pkg, Obj: w.Obj}
		byType := s.m[key]
		if byType == nil {
			byType = map[string]Fact{}
			s.m[key] = byType
		}
		byType[w.Type] = ptr.Interface().(Fact)
	}
	return nil
}
