package emul

// The decryption half of the AES-NI family. The faultable set of Table 1
// lists AESENC (the instruction Kogler et al. observed faulting), but a
// TLS endpoint decrypts as much as it encrypts, so a complete emulation
// story needs AESDEC/AESDECLAST too. Semantics per the Intel SDM:
//
//	AESDEC:     state ← InvMixColumns(InvSubBytes(InvShiftRows(state))) ⊕ rk
//	AESDECLAST: state ← InvSubBytes(InvShiftRows(state)) ⊕ rk
//
// The equivalent-inverse-cipher key schedule (InvMixColumns applied to the
// middle round keys) is handled by DecryptAES128, which is validated
// against crypto/aes in the tests.

// AESDEC computes one AES decryption round (equivalent inverse cipher)
// with the table-free constant-time inverse S-box.
func AESDEC(state, roundKey Vec128) Vec128 {
	b := state.Bytes()
	b = invShiftRows(b)
	for i := range b {
		b[i] = invSboxCT(b[i])
	}
	b = invMixColumns(b)
	return VXOR(FromBytes(b), roundKey)
}

// AESDECLAST computes the final AES decryption round (no InvMixColumns).
func AESDECLAST(state, roundKey Vec128) Vec128 {
	b := state.Bytes()
	b = invShiftRows(b)
	for i := range b {
		b[i] = invSboxCT(b[i])
	}
	return VXOR(FromBytes(b), roundKey)
}

// invShiftRows rotates row r of the column-major state right by r.
func invShiftRows(b [16]byte) [16]byte {
	var out [16]byte
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[4*((c+r)%4)+r] = b[4*c+r]
		}
	}
	return out
}

// invMixColumns applies the inverse MixColumns matrix (14 11 13 9).
func invMixColumns(b [16]byte) [16]byte {
	var out [16]byte
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := b[4*c], b[4*c+1], b[4*c+2], b[4*c+3]
		out[4*c] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		out[4*c+1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		out[4*c+2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		out[4*c+3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
	return out
}

// invSboxCT computes the inverse AES S-box without table lookups: the
// inverse affine transform followed by GF(2⁸) inversion (the forward
// S-box run backwards), with the same constant-time structure as sboxCT.
func invSboxCT(x byte) byte {
	// Inverse affine: s = rotl(x,1) ⊕ rotl(x,3) ⊕ rotl(x,6) ⊕ 0x05.
	rotl := func(v byte, n uint) byte { return v<<n | v>>(8-n) }
	y := rotl(x, 1) ^ rotl(x, 3) ^ rotl(x, 6) ^ 0x05
	// GF(2⁸) inversion via the fixed x^254 chain.
	inv := byte(1)
	for bit := 7; bit >= 0; bit-- {
		inv = gmul(inv, inv)
		if 254>>bit&1 == 1 {
			inv = gmul(inv, y)
		}
	}
	return inv
}

// DecryptAES128 decrypts one block with AES-128 assembled from the
// emulated rounds using the equivalent inverse cipher: the middle round
// keys pass through InvMixColumns, and the rounds run AESDEC/AESDECLAST.
func DecryptAES128(key, block [16]byte) [16]byte {
	rk := ExpandKeyAES128(key)
	state := VXOR(FromBytes(block), rk[10])
	for r := 9; r >= 1; r-- {
		dk := FromBytes(invMixColumns(rk[r].Bytes()))
		state = AESDEC(state, dk)
	}
	state = AESDECLAST(state, rk[0])
	return state.Bytes()
}
