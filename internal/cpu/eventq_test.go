package cpu

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"suit/internal/dvfs"
	"suit/internal/isa"
	"suit/internal/trace"
	"suit/internal/units"
)

// fvThrash is fvLite plus thrashing prevention: it exercises
// ExceptionsWithin (and thus the exception-ring kept-count formula) on
// every trap.
type fvThrash struct {
	deadline, window units.Second
	maxExceptions    int
}

func (fvThrash) Name() string { return "fvThrash" }
func (s fvThrash) Init(ctl Controller) {
	for d := 0; d < ctl.Domains(); d++ {
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, ModeE)
	}
}
func (s fvThrash) OnDisabledOpcode(ctl Controller, domain, core int, op isa.Opcode) {
	ctl.RequestWait(domain, ModeCf)
	ctl.RequestAsync(domain, ModeCv)
	ctl.EnableInstructions(domain)
	if ctl.ExceptionsWithin(domain, s.window) > s.maxExceptions {
		return // thrashing: stay conservative, no deadline
	}
	ctl.ArmDeadline(domain, s.deadline)
}
func (s fvThrash) OnDeadline(ctl Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, ModeE)
}

// randomDiffTrace emits faultable events with randomized gaps — dense
// stretches, sparse stretches and back-to-back pairs.
func randomDiffTrace(rng *rand.Rand, total uint64) *trace.Trace {
	tr := &trace.Trace{Name: "diff", Total: total, IPC: 1 + rng.Float64()*2}
	ops := isa.Faultable()
	idx := uint64(rng.IntN(2000))
	for idx < total {
		tr.Events = append(tr.Events, trace.Event{Index: idx, Op: ops[rng.IntN(len(ops))]})
		switch rng.IntN(4) {
		case 0: // back-to-back
			idx++
		case 1: // dense
			idx += 1 + uint64(rng.IntN(300))
		default: // sparse
			idx += 1 + uint64(rng.IntN(150_000))
		}
	}
	return tr
}

// TestDifferentialHeapVsLinear is the scheduler-swap oracle: randomized
// trace/strategy schedules run through both the indexed event queue and
// the retained linear scan (nextEventLinear), and the dispatched
// (t, kind, who) sequences plus the full Results must be identical —
// bitwise, not approximately. The heap machine also runs with the queue
// audit enabled, which re-derives every due slot from machine state
// after each event and fails on any missing or mistimed entry.
func TestDifferentialHeapVsLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	for iter := 0; iter < 40; iter++ {
		ncores := 1 + rng.IntN(3)
		total := uint64(200_000 + rng.IntN(600_000))
		var trs []*trace.Trace
		for c := 0; c < ncores; c++ {
			trs = append(trs, randomDiffTrace(rng, total))
		}
		cfg := testConfig(trs...)
		cfg.Seed = rng.Uint64()
		if rng.IntN(2) == 1 {
			cfg.Chip = dvfs.AMDRyzen7700X() // per-core frequency domains
		}
		if rng.IntN(3) == 0 {
			cfg.SampleEvery = units.Microseconds(50)
		}
		var s Strategy
		switch rng.IntN(4) {
		case 0:
			s = fvLite{deadline: units.Microseconds(float64(5 + rng.IntN(50)))}
		case 1:
			s = fvThrash{
				deadline:      units.Microseconds(float64(5 + rng.IntN(50))),
				window:        units.Microseconds(float64(100 + rng.IntN(900))),
				maxExceptions: 1 + rng.IntN(5),
			}
		case 2:
			s = emulAll{}
		default:
			s = pinnedBase{}
		}

		runOne := func(linear bool) ([]eventRecord, Result) {
			m, err := New(cfg, s)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			var log []eventRecord
			m.evLog = &log
			m.linearScan = linear
			m.audit = !linear
			res, err := m.Run()
			if err != nil {
				t.Fatalf("iter %d (linear=%v): %v", iter, linear, err)
			}
			return log, res
		}
		heapLog, heapRes := runOne(false)
		linLog, linRes := runOne(true)

		if len(heapLog) != len(linLog) {
			t.Fatalf("iter %d (%s): heap dispatched %d events, linear %d",
				iter, s.Name(), len(heapLog), len(linLog))
		}
		for i := range heapLog {
			if heapLog[i] != linLog[i] {
				t.Fatalf("iter %d (%s): event %d diverges: heap (t=%v kind=%d who=%d) vs linear (t=%v kind=%d who=%d)",
					iter, s.Name(), i,
					heapLog[i].t, heapLog[i].kind, heapLog[i].who,
					linLog[i].t, linLog[i].kind, linLog[i].who)
			}
		}
		if !reflect.DeepEqual(heapRes, linRes) {
			t.Fatalf("iter %d (%s): results diverge:\nheap:   %+v\nlinear: %+v", iter, s.Name(), heapRes, linRes)
		}
	}
}

// TestResetReplaysByteIdentical checks the zero-allocation replay path:
// a Reset machine must reproduce the exact Result of a fresh build,
// including timeline and sample recording.
func TestResetReplaysByteIdentical(t *testing.T) {
	tr := hotPathTrace(5_000_000, 2_000)
	cfg := testConfig(tr)
	cfg.RecordTimeline = true
	cfg.SampleEvery = units.Microseconds(20)

	clone := func(r Result) Result {
		r.PerCore = append([]units.Second(nil), r.PerCore...)
		r.Faults = append([]FaultRecord(nil), r.Faults...)
		r.Timeline = append([]ModeChange(nil), r.Timeline...)
		r.Samples = append([]StateSample(nil), r.Samples...)
		return r
	}

	m, err := New(cfg, fvLite{deadline: units.Microseconds(30)})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := clone(r1)
	m.Reset()
	r2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	second := clone(r2)

	m2, err := New(cfg, fvLite{deadline: units.Microseconds(30)})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(first, clone(fresh)) {
		t.Errorf("first run diverges from fresh machine:\n%+v\n%+v", first, fresh)
	}
	if !reflect.DeepEqual(second, clone(fresh)) {
		t.Errorf("reset replay diverges from fresh machine:\n%+v\n%+v", second, fresh)
	}
	if first.Exceptions == 0 || first.Switches == 0 {
		t.Fatalf("degenerate run: %+v", first)
	}
}

// TestExceptionRingSteadyStateFlat is the regression test for the old
// unbounded-growth-then-copy d.exceptions pattern: over a dense-trap
// 10⁷-instruction run the ring must stay at its fixed capacity, and the
// whole steady-state Run cycle must not allocate.
func TestExceptionRingSteadyStateFlat(t *testing.T) {
	tr := hotPathTrace(10_000_000, 500) // ~20k traps, > excRingCap
	cfg := testConfig(tr)
	m, err := New(cfg, emulAll{}) // every faultable event traps and is emulated
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := m.domains[0]
	if d.excTotal <= excRingCap {
		t.Fatalf("want the ring to wrap (> %d traps), got %d", excRingCap, d.excTotal)
	}
	if uint64(res.Exceptions) != d.excTotal {
		t.Fatalf("result counts %d exceptions, ring recorded %d", res.Exceptions, d.excTotal)
	}
	if len(d.exceptions) != excRingCap || cap(d.exceptions) != excRingCap {
		t.Fatalf("ring len/cap = %d/%d, want %d/%d",
			len(d.exceptions), cap(d.exceptions), excRingCap, excRingCap)
	}
	kept := d.excKept()
	if kept < excKeep || kept > excRingCap {
		t.Fatalf("kept count %d outside [%d, %d]", kept, excKeep, excRingCap)
	}
	// Newest-first iteration must be monotonically non-increasing.
	prev := d.excNth(0)
	for i := 1; i < kept; i++ {
		cur := d.excNth(i)
		if cur > prev {
			t.Fatalf("excNth(%d) = %v newer than excNth(%d) = %v", i, cur, i-1, prev)
		}
		prev = cur
	}

	m.Reset()
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		m.Reset()
	})
	if allocs != 0 {
		t.Errorf("steady-state Run+Reset allocates %v allocs/op, want 0", allocs)
	}
}

// TestSchedTombstoneReset checks the O(1) scheduled-action removal: a
// burst of deferred actions consumes in insertion order and the backing
// slice resets (rather than growing) once drained.
func TestSchedTombstoneReset(t *testing.T) {
	tr := hotPathTrace(4_000_000, 1_000)
	cfg := testConfig(tr)
	m, err := New(cfg, fvLite{deadline: units.Microseconds(25)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.schedLive != 0 {
		t.Fatalf("run finished with %d live scheduled actions", m.schedLive)
	}
	if len(m.scheduled) != 0 {
		t.Fatalf("scheduled slice not drained: len %d", len(m.scheduled))
	}
}
