// Package unitchecker implements the cmd/go vet tool protocol, so the
// suitlint binary can run as `go vet -vettool=$(which suitlint) ./...`.
// It is a standard-library re-implementation of the x/tools unitchecker
// essentials: the go command invokes the tool once per package with a
// JSON config file describing the sources and the export data of every
// dependency; the tool type-checks, analyzes, prints findings to
// stderr and signals them with exit code 2.
//
// Cross-package facts ride the same protocol: the go command hands the
// tool each dependency's .vetx file (PackageVetx) and expects this
// package's facts back (VetxOutput). Every .vetx carries the package's
// WHOLE merged store — its own exports plus everything revived from its
// dependencies — so facts reach transitive dependents regardless of
// which subset of .vetx files cmd/go lists for them. VetxOnly runs
// (dependency passes whose findings nobody wants) still execute the
// analyzers, because the facts are the point; only the reporting is
// skipped.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"suit/internal/analysis"
)

// Config mirrors the JSON schema cmd/go writes for vet tools. Field
// names must match exactly; unused fields are listed for completeness.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet config file and exits: 0 on success, 1 on
// protocol or type-check errors, 2 when diagnostics were reported.
func Run(cfgPath string, analyzers []*analysis.Analyzer) {
	code, err := run(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitlint:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// The go command expects the facts file to exist on every exit path,
	// including typecheck-failure bailouts; it is rewritten with the real
	// store once analysis succeeds.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	// Revive dependency facts. Iterate sorted so a (hypothetical) decode
	// conflict resolves the same way on every run.
	session := analysis.NewSession(analyzers)
	session.ReportStale = true
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		depPaths = append(depPaths, p)
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		vetx, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			return 0, fmt.Errorf("reading facts for %s: %v", p, err)
		}
		if err := session.Facts.Decode(vetx); err != nil {
			return 0, fmt.Errorf("facts for %s: %v", p, err)
		}
	}

	diags, err := session.RunPackage(&analysis.Package{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	})
	if err != nil {
		return 0, err
	}

	if cfg.VetxOutput != "" {
		encoded, err := session.Facts.Encode()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(cfg.VetxOutput, encoded, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}
