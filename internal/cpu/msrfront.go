package cpu

import (
	"errors"
	"fmt"

	"suit/internal/isa"
	"suit/internal/msr"
	"suit/internal/units"
)

// This file implements the architectural MSR interface of §3.2/§3.3 — the
// way a real OS would program SUIT, as opposed to the Controller interface
// strategies use inside simulations. WRMSR to the SUIT registers has the
// documented side effects, and the hardware interlock (efficient curve
// only with the faultable set disabled) surfaces as #GP instead of a
// successful write.
//
// The front-end targets machine configuration *between* runs (tooling,
// tests, interactive exploration); during a simulation the strategy hooks
// remain the OS.

// ErrGP is the general-protection fault WRMSR raises for an illegal write.
var ErrGP = errors.New("cpu: #GP")

// WriteMSR performs a WRMSR on the domain's register file with SUIT
// semantics. Supported registers:
//
//   - msr.SUITDisable — value is the opcode disable mask; only the
//     faultable set (and optionally IMUL) may be disabled.
//   - msr.SUITCurve — CurveEfficient requires SUITDisable to cover the
//     full faultable set, else #GP (§3.2: "the CPU ensures that the
//     efficient curve can only be used if the faultable instructions are
//     disabled").
//   - msr.SUITDeadline — arms the deadline timer, in nanosecond ticks;
//     zero disarms.
//
// Other registers accept the raw write without SUIT side effects when the
// register exists, and fault otherwise.
func (m *Machine) WriteMSR(domainID int, addr msr.Addr, value uint64) error {
	if domainID < 0 || domainID >= len(m.domains) {
		return fmt.Errorf("%w: no domain %d", ErrGP, domainID)
	}
	d := m.domains[domainID]
	switch addr {
	case msr.SUITDisable:
		mask := isa.DisableMask(value)
		allowed := isa.FaultableMask.With(isa.OpIMUL)
		if mask&^allowed != 0 {
			return fmt.Errorf("%w: mask %#x disables non-faultable opcodes", ErrGP, value)
		}
		d.msrs.Poke(msr.SUITDisable, value)
		full := mask&isa.FaultableMask == isa.FaultableMask
		d.disabled = full
		d.disabledView = full
		if !full && d.target == ModeE {
			// Hardware safety: re-enabling instructions while on the
			// efficient curve forces the conservative curve (the inverse
			// interlock; a real part would likewise refuse to stay).
			m.requestTransition(domainID, ModeCv, m.now)
		}
		return nil
	case msr.SUITCurve:
		switch value {
		case msr.CurveConservative:
			d.msrs.Poke(msr.SUITCurve, value)
			m.requestTransition(domainID, ModeCv, m.now)
			return nil
		case msr.CurveEfficient:
			if !d.disabledView && !m.cfg.AllowUnsafe {
				return fmt.Errorf("%w: efficient curve with faultable instructions enabled", ErrGP)
			}
			d.msrs.Poke(msr.SUITCurve, value)
			m.requestTransition(domainID, ModeE, m.now)
			return nil
		default:
			return fmt.Errorf("%w: SUITCurve value %d", ErrGP, value)
		}
	case msr.SUITDeadline:
		d.msrs.Poke(msr.SUITDeadline, value)
		if value == 0 {
			d.deadlineAt = 0
			m.syncDeadline(d)
			return nil
		}
		dur := units.Second(float64(value) * 1e-9)
		d.deadlineDur = dur
		d.deadlineAt = m.now + dur
		m.syncDeadline(d)
		return nil
	default:
		return d.msrs.Write(addr, value)
	}
}

// ReadMSR performs a RDMSR on the domain's register file. Dynamic status
// registers are synthesised from live machine state.
func (m *Machine) ReadMSR(domainID int, addr msr.Addr) (uint64, error) {
	if domainID < 0 || domainID >= len(m.domains) {
		return 0, fmt.Errorf("%w: no domain %d", ErrGP, domainID)
	}
	d := m.domains[domainID]
	switch addr {
	case msr.IA32PerfStatus:
		ratio := uint8(d.freq.GHz() * 10)
		return msr.EncodePerfStatus(ratio, float64(d.voltAt(m.now))), nil
	case msr.SUITDisable:
		if d.disabled {
			return uint64(isa.FaultableMask), nil
		}
		return 0, nil
	default:
		return d.msrs.Read(addr)
	}
}
