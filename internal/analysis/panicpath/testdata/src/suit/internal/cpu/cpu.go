// Package cpu is the negative fixture: machine-invariant packages may
// panic, so nothing here is flagged.
package cpu

func checkInvariant(ok bool) {
	if !ok {
		panic("cpu: invariant violated")
	}
}
