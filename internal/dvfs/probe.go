package dvfs

import (
	"suit/internal/units"
)

// This file reproduces the measurement methodology of §5.2: a kernel
// module requests a p-state change and then polls the observed voltage
// (MSR_IA32_PERF_STATUS) and effective frequency (APERF/MPERF) until they
// settle. ProbeTransition performs the same experiment against a
// TransitionModel, producing the sample series plotted in Figs 8–11.

// Sample is one polled observation during a transition.
type Sample struct {
	T units.Second // time since the change was requested
	F units.Hertz  // observed effective frequency (APERF/MPERF)
	V units.Volt   // observed core voltage (PERF_STATUS)
	// Stalled marks samples that could not be taken because the core was
	// stalled by the frequency change (the grey area of Fig 9). Stalled
	// samples carry the last pre-stall readings.
	Stalled bool
}

// Transition describes the timed phases of one p-state change under a
// TransitionModel. All times are relative to the request.
type Transition struct {
	From, To PState
	// VoltStart/VoltDone delimit the voltage ramp ([0,0] if no voltage
	// change).
	VoltStart, VoltDone units.Second
	// FreqDone is when the new frequency becomes active ([0] if no
	// frequency change). The core is stalled in [StallStart, FreqDone].
	FreqDone   units.Second
	StallStart units.Second
	// End is when the transition is fully settled.
	End units.Second
}

// Plan computes the phase timing for a transition from → to. norm supplies
// standard normal variates for delay jitter (pass func() float64 {return 0}
// for deterministic mean delays).
func (m TransitionModel) Plan(from, to PState, norm func() float64) Transition {
	tr := Transition{From: from, To: to}
	voltChange := from.V != to.V
	freqChange := from.F != to.F

	var voltDelay, freqDelay units.Second
	if voltChange {
		voltDelay = Jitter(m.VoltDelay, m.VoltDelaySigma, norm())
	}
	if freqChange {
		freqDelay = Jitter(m.FreqDelay, m.FreqDelaySigma, norm())
	}

	switch {
	case m.VoltFirst && voltChange && freqChange:
		// Xeon PCPS: voltage settles first, then the frequency change
		// with its stall (Fig 11), regardless of direction.
		tr.VoltStart, tr.VoltDone = 0, voltDelay
		tr.FreqDone = voltDelay + freqDelay
		tr.StallStart = tr.FreqDone - m.FreqStall
	case voltChange && freqChange:
		// Independent planes: both proceed concurrently.
		tr.VoltStart, tr.VoltDone = 0, voltDelay
		tr.FreqDone = freqDelay
		tr.StallStart = tr.FreqDone - m.FreqStall
	case voltChange:
		tr.VoltStart, tr.VoltDone = 0, voltDelay
	case freqChange:
		tr.FreqDone = freqDelay
		tr.StallStart = tr.FreqDone - m.FreqStall
	}
	if tr.StallStart < 0 {
		tr.StallStart = 0
	}
	tr.End = max(tr.VoltDone, tr.FreqDone)
	return tr
}

// VoltageAt returns the supply voltage at time t of the transition,
// modelling the regulator ramp as linear between the endpoints.
func (tr Transition) VoltageAt(t units.Second) units.Volt {
	if tr.VoltDone == tr.VoltStart { // no voltage change
		if tr.To.V != tr.From.V && t >= tr.End {
			return tr.To.V
		}
		return tr.From.V
	}
	switch {
	case t <= tr.VoltStart:
		return tr.From.V
	case t >= tr.VoltDone:
		return tr.To.V
	default:
		frac := float64(t-tr.VoltStart) / float64(tr.VoltDone-tr.VoltStart)
		return tr.From.V + units.Volt(frac)*(tr.To.V-tr.From.V)
	}
}

// FrequencyAt returns the core clock at time t of the transition. The
// frequency steps (rather than ramps) when the PLL relocks.
func (tr Transition) FrequencyAt(t units.Second) units.Hertz {
	if tr.From.F == tr.To.F {
		return tr.From.F
	}
	if t >= tr.FreqDone {
		return tr.To.F
	}
	return tr.From.F
}

// StalledAt reports whether the core is stalled at time t.
func (tr Transition) StalledAt(t units.Second) bool {
	if tr.From.F == tr.To.F || tr.FreqDone == 0 {
		return false
	}
	return t >= tr.StallStart && t < tr.FreqDone
}

// MaxVoltage returns the highest supply voltage over the transition; the
// fault model uses it because a core is only as safe as its instantaneous
// voltage allows.
func (tr Transition) MaxVoltage() units.Volt {
	if tr.From.V > tr.To.V {
		return tr.From.V
	}
	return tr.To.V
}

// ProbeTransition polls a transition every interval, replicating the §5.2
// kernel-module loop. During the stall no fresh readings are possible:
// samples carry the pre-stall frequency and are marked Stalled — including
// the APERF artifact the paper observes (the first post-stall sample still
// shows the stale frequency because APERF updates late).
func ProbeTransition(m TransitionModel, from, to PState, norm func() float64, interval units.Second) []Sample {
	tr := m.Plan(from, to, norm)
	if interval <= 0 {
		interval = units.Microseconds(1)
	}
	var out []Sample
	staleFreq := from.F
	stalePending := false
	// Sample a few intervals past settle so the series always ends with a
	// fresh (post-artifact) reading of the target operating point.
	for t := units.Second(0); t <= tr.End+3*interval; t += interval {
		s := Sample{T: t, V: tr.VoltageAt(t), F: tr.FrequencyAt(t), Stalled: tr.StalledAt(t)}
		if s.Stalled {
			s.F = staleFreq
			stalePending = true
		} else if stalePending {
			// First reading after the stall: APERF still reports the
			// pre-change frequency (Fig 9).
			s.F = staleFreq
			stalePending = false
		} else {
			staleFreq = s.F
		}
		out = append(out, s)
	}
	return out
}
