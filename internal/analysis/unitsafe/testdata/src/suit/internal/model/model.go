// Package model is a unitsafe fixture: raw literals flowing into unit
// types and bare cross-unit conversions.
package model

import "suit/internal/units"

type Config struct {
	Vdd units.Volt
	F   units.Hertz
	TDP units.Watt
}

func SetVdd(v units.Volt) {}

func Tune(vs ...units.Volt) {}

func rawArgs() {
	SetVdd(0.85)   // want `raw literal 0\.85 passed as Volt`
	SetVdd(-0.07)  // want `raw literal -0\.07 passed as Volt`
	Tune(0.8, 0.9) // want `raw literal 0\.8 passed as Volt` `raw literal 0\.9 passed as Volt`
}

func rawFields() Config {
	return Config{
		Vdd: 0.9,    // want `raw literal 0\.9 assigned to field Vdd`
		TDP: 15 * 2, // want `raw literal 15 ?\* ?2 assigned to field TDP`
	}
}

func rawPositional() Config {
	return Config{0.7, 0, 0} // want `raw literal 0\.7 assigned to field Vdd`
}

func constructed(v units.Volt) Config {
	SetVdd(units.MilliVolts(850))
	SetVdd(0) // zero is the same quantity in every unit
	SetVdd(v)
	const nominal = units.Volt(0.85)
	SetVdd(nominal)
	return Config{Vdd: units.Volt(0.9), F: units.MHz(800)}
}

func crossUnit(f units.Hertz, s units.Second) {
	_ = units.Second(f)             // want `bare conversion mixes units: Second built from a Hertz`
	_ = units.Watt(float64(s) * 2)  // want `bare conversion mixes units: Watt built from a Second`
	_ = units.Hertz(float64(f) * 2) // same-unit scaling is not a mix
}

func calibrated() {
	SetVdd(0.85) //lint:allow units fixture: calibration constant cross-checked against Fig 12
}
