package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"suit/internal/core"
	"suit/internal/engine"
	"suit/internal/engine/faultinject"
)

// startServer mounts a dispatcher on an httptest server.
func startServer(t *testing.T, d *Dispatcher) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	d.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// waitLiveWorkers blocks until at least n workers have polled in, so a
// sweep started next actually offers units remotely instead of racing
// the first claim and falling back to local execution.
func waitLiveWorkers(t *testing.T, d *Dispatcher, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d.Stats().LiveWorkers >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%d workers never registered", n)
}

// localReference computes the byte-exact expected outcome JSON for a
// scenario, the way a single-process engine run would.
func localReference(t *testing.T, sc core.Scenario) []byte {
	t.Helper()
	out, err := core.RunJob(context.Background(), sc, engine.DeriveSeed(0, sc.Fingerprint()))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// runWorker starts a worker and returns a stop function that waits for
// it to exit.
func runWorker(t *testing.T, cfg WorkerConfig) (stop func()) {
	t.Helper()
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx) //nolint:errcheck
	}()
	return func() {
		cancel()
		<-done
	}
}

// TestDistributedChaosByteIdentical is the chaos suite: a full engine
// sweep distributed to workers whose HTTP transports inject all five
// fault kinds — drops, delays, 500s with the effect applied, truncated
// bodies, duplicated deliveries — must store results byte-identical to
// a single-process run. Run under -race in CI (the dist-chaos job).
func TestDistributedChaosByteIdentical(t *testing.T) {
	var scenarios []core.Scenario
	for i := 0; i < 10; i++ {
		scenarios = append(scenarios, testScenario(t, i))
	}
	want := make(map[string][]byte, len(scenarios))
	for _, sc := range scenarios {
		want[sc.Fingerprint()] = localReference(t, sc)
	}

	d := NewDispatcher(Config{
		LeaseTTL:       500 * time.Millisecond,
		RemoteAttempts: 4,
		RetryBackoff:   5 * time.Millisecond,
		// Faults here are injected noise, not worker pathology: keep the
		// breakers from starving the test of its own chaos.
		QuarantineAfter: 50,
		TripAfter:       200,
	})
	defer d.Close()
	srv := startServer(t, d)

	// Three workers, each behind its own fault-laden transport; every
	// fault kind is in the palette, decided by a pure per-request hash.
	for i := 0; i < 3; i++ {
		tr := faultinject.NewTransport(faultinject.HTTPPlan{
			Seed:  uint64(1000 + i),
			Rate:  0.4,
			Kinds: faultinject.AllHTTPKinds,
			Times: 2,
			Delay: 2 * time.Millisecond,
		}, nil)
		stop := runWorker(t, WorkerConfig{
			BaseURL:        srv.URL,
			ID:             fmt.Sprintf("chaos-w%d", i),
			Slots:          2,
			PollInterval:   10 * time.Millisecond,
			ResultAttempts: 6,
			RetryBackoff:   5 * time.Millisecond,
			Client:         &http.Client{Transport: tr, Timeout: 10 * time.Second},
		})
		defer stop()
	}

	waitLiveWorkers(t, d, 1)

	// The production path: an engine whose remote hook is the
	// dispatcher. Anything the remote tier cannot finish falls back to
	// the identical local computation.
	eng := engine.New(core.Scenario.Fingerprint, core.RunJob, engine.Options{Workers: 4})
	eng.SetRemote(d.Execute)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := eng.Run(ctx, scenarios)
	if err != nil {
		t.Fatalf("distributed sweep failed under chaos: %v", err)
	}
	for i, sc := range scenarios {
		raw, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want[sc.Fingerprint()]) {
			t.Errorf("scenario %d (%s): distributed outcome differs from the single-process bytes", i, sc.Fingerprint())
		}
	}
	st := d.Stats()
	t.Logf("dispatcher: %+v", st)
	if st.Conflicts != 0 {
		t.Errorf("chaos produced %d conflicting results — determinism violation", st.Conflicts)
	}
	if st.Completed == 0 && st.LocalFallbacks == 0 {
		t.Error("nothing completed remotely or locally — the sweep result came from nowhere?")
	}
}

// TestWorkerKilledMidSweep: a worker that dies holding leases (its
// heartbeats stop mid-run) must not lose the sweep — leases expire,
// units reassign to the surviving worker, and every stored byte matches
// the single-process reference. The in-process half of the kill-worker
// e2e; scripts/suitd_smoke.sh SIGKILLs a real process.
func TestWorkerKilledMidSweep(t *testing.T) {
	var scenarios []core.Scenario
	for i := 0; i < 4; i++ {
		scenarios = append(scenarios, testScenario(t, 100+i))
	}
	want := make(map[string][]byte, len(scenarios))
	for _, sc := range scenarios {
		want[sc.Fingerprint()] = localReference(t, sc)
	}

	d := NewDispatcher(Config{
		LeaseTTL:       150 * time.Millisecond,
		RemoteAttempts: 6,
		RetryBackoff:   5 * time.Millisecond,
	})
	defer d.Close()
	srv := startServer(t, d)

	// The victim claims work and then "crashes": its run function blocks
	// until the worker is killed, so it dies holding a lease.
	victimCtx, killVictim := context.WithCancel(context.Background())
	victim, err := NewWorker(WorkerConfig{
		BaseURL:      srv.URL,
		ID:           "victim",
		Slots:        2,
		PollInterval: 5 * time.Millisecond,
		runFn: func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
			<-ctx.Done() // holds the lease until killed
			return core.Outcome{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		victim.Run(victimCtx) //nolint:errcheck
	}()
	waitLiveWorkers(t, d, 1)

	// Start the sweep against the victim alone.
	eng := engine.New(core.Scenario.Fingerprint, core.RunJob, engine.Options{Workers: 4})
	eng.SetRemote(d.Execute)
	type sweep struct {
		got []core.Outcome
		err error
	}
	sweepCh := make(chan sweep, 1)
	go func() {
		got, err := eng.Run(context.Background(), scenarios)
		sweepCh <- sweep{got, err}
	}()

	// Wait until the victim holds at least one lease, then kill it.
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().LeasedUnits == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.Stats().LeasedUnits == 0 {
		t.Fatal("victim never claimed a lease")
	}
	killVictim()
	<-victimDone

	// A healthy worker arrives; expired leases reassign to it.
	stop := runWorker(t, WorkerConfig{
		BaseURL:      srv.URL,
		ID:           "survivor",
		Slots:        2,
		PollInterval: 10 * time.Millisecond,
	})
	defer stop()

	var res sweep
	select {
	case res = <-sweepCh:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not finish after the worker was killed")
	}
	if res.err != nil {
		t.Fatalf("sweep error: %v", res.err)
	}
	for i, sc := range scenarios {
		raw, err := json.Marshal(res.got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want[sc.Fingerprint()]) {
			t.Errorf("scenario %d (%s): outcome differs from the single-process bytes after reassignment", i, sc.Fingerprint())
		}
	}
	st := d.Stats()
	if st.Expired == 0 {
		t.Errorf("no lease expired — the kill was not exercised (stats %+v)", st)
	}
}

// TestWorkerEndToEnd: one worker, no faults — the plain distributed
// happy path through real HTTP, heartbeats included.
func TestWorkerEndToEnd(t *testing.T) {
	d := NewDispatcher(Config{LeaseTTL: 200 * time.Millisecond, RetryBackoff: 5 * time.Millisecond})
	defer d.Close()
	srv := startServer(t, d)
	stop := runWorker(t, WorkerConfig{BaseURL: srv.URL, ID: "w1", Slots: 1, PollInterval: 5 * time.Millisecond})
	defer stop()

	var wg sync.WaitGroup
	scs := []core.Scenario{testScenario(t, 200), testScenario(t, 201)}
	outs := make([]core.Outcome, len(scs))
	errs := make([]error, len(scs))
	handleds := make([]bool, len(scs))
	for i, sc := range scs {
		wg.Add(1)
		go func(i int, sc core.Scenario) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			outs[i], handleds[i], errs[i] = d.Execute(ctx, sc, sc.Fingerprint(), engine.DeriveSeed(0, sc.Fingerprint()))
		}(i, sc)
	}
	wg.Wait()
	for i, sc := range scs {
		if errs[i] != nil {
			t.Fatalf("scenario %d: %v", i, errs[i])
		}
		if !handleds[i] {
			// Legal (the worker may not have polled yet at offer time) but
			// unexpected with a live worker; don't fail byte checks below.
			t.Logf("scenario %d fell back locally", i)
			continue
		}
		raw, err := json.Marshal(outs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, localReference(t, sc)) {
			t.Errorf("scenario %d: remote outcome differs from local bytes", i)
		}
	}
}
