package security

import (
	"testing"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/units"
)

func TestVerifyNoFaults(t *testing.T) {
	if err := VerifyNoFaults(cpu.Result{}); err != nil {
		t.Errorf("clean result rejected: %v", err)
	}
	res := cpu.Result{Faults: []cpu.FaultRecord{{Op: isa.OpAESENC, Core: 2}}}
	if err := VerifyNoFaults(res); err == nil {
		t.Error("faulty result accepted")
	}
}

func TestCheckReductionHoldsForSUITConfiguration(t *testing.T) {
	// The SUIT design point: faultable set disabled, hardened IMUL,
	// −97 mV — every enabled instruction keeps its margin.
	gb := guardband.Default()
	off := gb.EfficientOffset(isa.FaultableMask, true, true)
	if bad := CheckReduction(gb, isa.FaultableMask, off, true); len(bad) != 0 {
		t.Errorf("reduction violated by %v", bad)
	}
}

func TestCheckReductionFailsWithoutDisabling(t *testing.T) {
	// Same offset without disabling anything: the faultable set and the
	// stock IMUL violate their margins — today's CPUs cannot run here.
	gb := guardband.Default()
	off := gb.EfficientOffset(isa.FaultableMask, true, true)
	bad := CheckReduction(gb, 0, off, false)
	if len(bad) == 0 {
		t.Fatal("blind undervolting passed the reduction check")
	}
	// IMUL (unhardened) must be among the violators — it faults first.
	found := false
	for _, op := range bad {
		if op == isa.OpIMUL {
			found = true
		}
	}
	if !found {
		t.Errorf("IMUL missing from violators %v", bad)
	}
}

func TestCheckReductionFailsWithUnhardenedIMUL(t *testing.T) {
	// Disabling the faultable set is not enough: the 3-cycle IMUL still
	// faults, which is why SUIT hardens it statically (§4.2).
	gb := guardband.Default()
	off := gb.EfficientOffset(isa.FaultableMask, true, false)
	bad := CheckReduction(gb, isa.FaultableMask, off, false)
	if len(bad) != 1 || bad[0] != isa.OpIMUL {
		t.Errorf("violators = %v, want exactly [IMUL]", bad)
	}
}

func TestRunAttackThreeWay(t *testing.T) {
	rep, err := RunAttack(dvfs.IntelI9_9900K(), units.MilliVolts(-97), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Today's CPU at nominal voltage: safe, no traps.
	if rep.Nominal.Faults != 0 || rep.Nominal.Exceptions != 0 || rep.Nominal.WrongResult {
		t.Errorf("nominal config unsafe: %+v", rep.Nominal)
	}
	// Blind undervolting: the attack induces silent faults and the AES
	// result is wrong — Plundervolt.
	if rep.Unsafe.Faults == 0 || !rep.Unsafe.WrongResult {
		t.Errorf("unsafe config did not fault: %+v", rep.Unsafe)
	}
	if rep.Unsafe.Exceptions != 0 {
		t.Errorf("pre-SUIT CPU trapped: %+v", rep.Unsafe)
	}
	// SUIT: same undervolt, the attack instructions trap instead of
	// faulting; the computation stays correct.
	if rep.SUIT.Faults != 0 || rep.SUIT.WrongResult {
		t.Errorf("SUIT config faulted: %+v", rep.SUIT)
	}
	if rep.SUIT.Exceptions == 0 {
		t.Errorf("SUIT never trapped the attack: %+v", rep.SUIT)
	}
}

func TestRunAttackRejectsPositiveOffset(t *testing.T) {
	if _, err := RunAttack(dvfs.IntelI9_9900K(), units.MilliVolts(5), 1); err == nil {
		t.Error("positive offset accepted")
	}
}

func TestSweepOffsetsMonotoneSafety(t *testing.T) {
	offs := []units.Volt{
		units.MilliVolts(-20), units.MilliVolts(-50),
		units.MilliVolts(-97), units.MilliVolts(-140),
	}
	res, err := SweepOffsets(dvfs.IntelI9_9900K(), offs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(offs) {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.SUITFaults != 0 {
			t.Errorf("SUIT faulted at %v", r.Offset)
		}
	}
	// Shallow undervolts stay within the AESENC margin (27 mV); deeper
	// ones fault on the unsafe machine.
	if res[0].UnsafeFaults != 0 {
		t.Errorf("unsafe machine faulted at −20 mV, inside the AESENC margin")
	}
	if res[2].UnsafeFaults == 0 || res[3].UnsafeFaults == 0 {
		t.Error("unsafe machine survived deep undervolts")
	}
}

func TestCorruptedAESDiffers(t *testing.T) {
	if corruptedAES(false) {
		t.Error("fault-free AES differs from reference")
	}
	if !corruptedAES(true) {
		t.Error("bit-flipped AES matches the correct ciphertext")
	}
}
