// Command tool is a panicpath fixture: cmd/ binaries report errors,
// they do not panic.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(); err != nil {
		panic(err) // want `panic on an I/O or user-input path`
	}
}

func run() error {
	fmt.Fprintln(os.Stderr, "tool: nothing to do")
	return nil
}
