#!/usr/bin/env bash
# suitd end-to-end smoke (the CI suitd-smoke job): boot the daemon,
# serve a small sweep to completion, prove a second identical
# submission is a cache hit via /metrics, then SIGTERM and require a
# clean exit-0 drain inside the budget.
#
# Run from the repository root: scripts/suitd_smoke.sh
set -euo pipefail

WORK=$(mktemp -d)
ADDR=127.0.0.1:8470
BASE="http://$ADDR"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/suitd" ./cmd/suitd
"$WORK/suitd" -addr "$ADDR" -state "$WORK/state" -drain-timeout 30s &
PID=$!

# Wait for the daemon to come up.
up=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "suitd died during startup" >&2; exit 1; fi
  sleep 0.1
done
[ -n "$up" ] || { echo "suitd never answered /healthz" >&2; exit 1; }

SPEC='{"instructions":50000,"benches":["VLC","557.xz"],"params":[{"p_dl_us":30,"p_ts_us":450,"p_ec":3,"p_df":14},{"p_dl_us":50,"p_ts_us":450,"p_ec":2,"p_df":9}]}'

ID=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/sweeps" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "submitted job $ID"

state=""
for _ in $(seq 1 300); do
  state=$(curl -fsS "$BASE/v1/sweeps/$ID" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = done ] && break
  case "$state" in
    failed|canceled) echo "job ended $state" >&2; exit 1 ;;
  esac
  sleep 0.2
done
[ "$state" = done ] || { echo "job stuck in state '$state'" >&2; exit 1; }

curl -fsS "$BASE/v1/sweeps/$ID" | python3 -c '
import json, sys
v = json.load(sys.stdin)
pts = v["result"]["points"]
assert v["state"] == "done" and pts, v
effs = [p["efficiency"] for p in pts]
assert effs == sorted(effs, reverse=True), "ranking not descending"
print(f"ranked {len(pts)} points; best efficiency {effs[0]:.4f}")
'

# The second identical submission must be answered from the cache (200,
# not 201) and /metrics must prove no second execution happened.
CODE=$(curl -fsS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/sweeps")
[ "$CODE" = 200 ] || { echo "duplicate POST got HTTP $CODE, want 200" >&2; exit 1; }
METRICS=$(curl -fsS "$BASE/metrics")
HITS=$(echo "$METRICS" | awk '$1 == "suitd_cache_hits_total" {print $2}')
EXECUTED=$(echo "$METRICS" | awk '$1 == "suitd_jobs_executed_total" {print $2}')
[ "$HITS" = 1 ] || { echo "suitd_cache_hits_total = '$HITS', want 1" >&2; exit 1; }
[ "$EXECUTED" = 1 ] || { echo "suitd_jobs_executed_total = '$EXECUTED', want 1" >&2; exit 1; }

# Graceful shutdown: SIGTERM, then the daemon must exit 0. The drain is
# internally bounded by -drain-timeout; a hang beyond that trips the CI
# job's timeout-minutes.
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = 0 ] || { echo "suitd exited $RC after SIGTERM, want 0" >&2; exit 1; }
echo "suitd smoke OK: served 1 sweep, deduped the repeat (hits=$HITS), drained cleanly"
