// Package report is outside the result-affecting set; wall-clock reads
// and map iteration order are its own business and must not be flagged.
package report

import (
	"fmt"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
