package workload

import (
	"encoding/json"
	"fmt"

	"suit/internal/isa"
)

// JSON form of a Benchmark, so users can define custom workload models
// for cmd/tracegen and cmd/suitsim without recompiling. Opcodes are
// mnemonic strings; the noSIMD map is keyed "intel"/"amd".
type benchmarkJSON struct {
	Name         string  `json:"name"`
	Suite        string  `json:"suite"` // "SPECint" | "SPECfp" | "network"
	IPC          float64 `json:"ipc"`
	IMULFraction float64 `json:"imulFraction"`

	BurstEvery    float64 `json:"burstEvery,omitempty"`
	BurstLen      float64 `json:"burstLen,omitempty"`
	BurstIntraGap uint64  `json:"burstIntraGap,omitempty"`
	BurstSigma    float64 `json:"burstSigma,omitempty"`
	PoissonGap    float64 `json:"poissonGap,omitempty"`
	BurstOp       string  `json:"burstOp,omitempty"`
	DiffuseOp     string  `json:"diffuseOp,omitempty"`

	NoSIMD map[string]float64 `json:"noSIMD"`
	TEE    bool               `json:"tee,omitempty"`
}

var suiteNames = map[Suite]string{
	SPECint: "SPECint", SPECfp: "SPECfp", Network: "network",
}

// MarshalJSON implements json.Marshaler.
func (b Benchmark) MarshalJSON() ([]byte, error) {
	j := benchmarkJSON{
		Name: b.Name, Suite: suiteNames[b.Suite], IPC: b.IPC,
		IMULFraction: b.IMULFraction,
		BurstEvery:   b.BurstEvery, BurstLen: b.BurstLen,
		BurstIntraGap: b.BurstIntraGap, BurstSigma: b.BurstSigma,
		PoissonGap: b.PoissonGap,
		NoSIMD:     map[string]float64{},
		TEE:        b.TEE,
	}
	if b.BurstOp != isa.OpNop {
		j.BurstOp = b.BurstOp.String()
	}
	if b.DiffuseOp != isa.OpNop {
		j.DiffuseOp = b.DiffuseOp.String()
	}
	for fam, v := range b.NoSIMD {
		key := "intel"
		if fam == AMD {
			key = "amd"
		}
		j.NoSIMD[key] = v
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler; the result is validated.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	var j benchmarkJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	out := Benchmark{
		Name: j.Name, IPC: j.IPC, IMULFraction: j.IMULFraction,
		BurstEvery: j.BurstEvery, BurstLen: j.BurstLen,
		BurstIntraGap: j.BurstIntraGap, BurstSigma: j.BurstSigma,
		PoissonGap: j.PoissonGap, TEE: j.TEE,
		NoSIMD: map[CPUFamily]float64{},
	}
	switch j.Suite {
	case "SPECint":
		out.Suite = SPECint
	case "SPECfp":
		out.Suite = SPECfp
	case "network", "":
		out.Suite = Network
	default:
		return fmt.Errorf("workload: unknown suite %q", j.Suite)
	}
	lookupOp := func(name string) (isa.Opcode, error) {
		if name == "" {
			return isa.OpNop, nil
		}
		op, ok := isa.ByName(name)
		if !ok {
			return 0, fmt.Errorf("workload: unknown opcode %q", name)
		}
		return op, nil
	}
	var err error
	if out.BurstOp, err = lookupOp(j.BurstOp); err != nil {
		return err
	}
	if out.DiffuseOp, err = lookupOp(j.DiffuseOp); err != nil {
		return err
	}
	for key, v := range j.NoSIMD {
		switch key {
		case "intel":
			out.NoSIMD[Intel] = v
		case "amd":
			out.NoSIMD[AMD] = v
		default:
			return fmt.Errorf("workload: unknown CPU family %q", key)
		}
	}
	// Defaults: a spec without noSIMD data gets zeros (valid model).
	if _, ok := out.NoSIMD[Intel]; !ok {
		out.NoSIMD[Intel] = 0
	}
	if _, ok := out.NoSIMD[AMD]; !ok {
		out.NoSIMD[AMD] = 0
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*b = out
	return nil
}
