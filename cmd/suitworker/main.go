// Command suitworker is a crash-safe execution worker for suitd's
// distributed sweep tier: it pulls leased, fingerprint-addressed
// scenario units from a daemon over HTTP (-daemon), simulates them with
// the same deterministic core a local run would use, and posts
// digest-protected results back.
//
// Robustness model: the worker holds no durable state. If it crashes,
// is SIGKILLed, or partitions away mid-unit, its lease simply expires
// at the daemon and the unit is reassigned — at-least-once delivery is
// safe because every result is a pure function of its work unit, so
// duplicates verify against the recorded digest and dedup. A worker
// whose leases keep failing is quarantined by the daemon; stopping one
// (SIGTERM/SIGINT) just stops polling and lets in-flight leases lapse.
// Daemons running with -worker-token require the matching -token (or
// $SUITD_WORKER_TOKEN) on every request.
//
// Any number of workers — including zero — leave the daemon's stored
// results byte-identical; workers only change where the cycles burn.
//
// Example:
//
//	suitworker -daemon http://127.0.0.1:8470 -slots 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"suit/internal/dist"
)

const (
	exitOK    = 0
	exitUsage = 1
)

func main() { os.Exit(run()) }

func run() int {
	var (
		daemon  = flag.String("daemon", "", "base URL of the suitd daemon to pull work from; required")
		id      = flag.String("id", "", "worker ID for lease accounting and quarantine (default host/pid derived)")
		slots   = flag.Int("slots", runtime.GOMAXPROCS(0), "units simulated concurrently")
		poll    = flag.Duration("poll", 250*time.Millisecond, "pause between empty claim polls")
		retries = flag.Int("result-attempts", 4, "delivery attempts per result on transport/5xx failures (the daemon dedups duplicates by digest)")
		token   = flag.String("token", os.Getenv("SUITD_WORKER_TOKEN"), "bearer token for daemons running with -worker-token (default $SUITD_WORKER_TOKEN)")
	)
	flag.CommandLine.Init("suitworker", flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	if *daemon == "" {
		fmt.Fprintln(os.Stderr, "suitworker: -daemon is required (e.g. http://127.0.0.1:8470)")
		return exitUsage
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	w, err := dist.NewWorker(dist.WorkerConfig{
		BaseURL:        *daemon,
		ID:             *id,
		Token:          *token,
		Slots:          *slots,
		PollInterval:   *poll,
		ResultAttempts: *retries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitworker:", err)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "suitworker: %s pulling from %s (%d slots)\n", *id, *daemon, *slots)
	w.Run(ctx) //nolint:errcheck // the only error is the shutdown signal's
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "suitworker: stopping after %d claims, %d completed, %d errors\n",
		st.Claims, st.Completed, st.Errors)
	return exitOK
}
