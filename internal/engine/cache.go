package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheEntry is the on-disk record: the full key is stored alongside the
// result so a filename hash collision reads as a miss, never as a wrong
// result.
type cacheEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// cachePath buckets entries by the SHA-256 of the cache key. The base
// seed is part of the key so caches warmed under different -seed values
// never alias.
func (e *Engine[S, R]) cachePath(key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|base=%d", key, e.opts.BaseSeed)))
	return filepath.Join(e.opts.CacheDir, hex.EncodeToString(sum[:16])+".json")
}

// diskGet loads a cached result. Any unreadable, foreign or stale entry
// is treated as a miss.
func (e *Engine[S, R]) diskGet(key string) (R, bool) {
	var zero R
	if e.opts.CacheDir == "" {
		return zero, false
	}
	data, err := os.ReadFile(e.cachePath(key))
	if err != nil {
		return zero, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Key != key {
		return zero, false
	}
	var r R
	if err := json.Unmarshal(ent.Result, &r); err != nil {
		return zero, false
	}
	return r, true
}

// diskPut persists a result via write-to-temp + rename so concurrent
// sweeps sharing a cache directory never observe torn files. Cache
// writes are best-effort: a full disk or unmarshalable result type only
// disables reuse, it never fails the sweep.
func (e *Engine[S, R]) diskPut(key string, r R) {
	if e.opts.CacheDir == "" {
		return
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Key: key, Result: raw})
	if err != nil {
		return
	}
	if err := os.MkdirAll(e.opts.CacheDir, 0o755); err != nil {
		return
	}
	path := e.cachePath(key)
	tmp, err := os.CreateTemp(e.opts.CacheDir, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
