// Package strategy implements the operating strategies of §4.3: the OS
// policies that drive SUIT's hardware through the Disabled Opcode
// exception and deadline-timer interrupts. FV is a direct port of the
// paper's Listing 1 (the fV strategy with thrashing prevention); FreqOnly
// and VoltOnly are the single-knob variants; Emulation resolves every trap
// in software (§3.4); Dynamic picks between emulation and curve switching
// at runtime (§6.8); Pinned and AlwaysEfficient provide the baseline and
// noSIMD configurations.
package strategy

import (
	"errors"
	"fmt"

	"suit/internal/cpu"
	"suit/internal/isa"
	"suit/internal/units"
)

// Params are the four tuning knobs of the fV strategy and thrashing
// prevention (§4.3): the deadline p_dl, the look-back time span p_ts, the
// exception-count threshold p_ec, and the deadline factor p_df.
type Params struct {
	Deadline       units.Second // p_dl
	TimeSpan       units.Second // p_ts
	MaxExceptions  int          // p_ec
	DeadlineFactor float64      // p_df
}

// ParamsAC returns the optimal parameters for CPUs 𝒜 and 𝒞 (Table 7).
func ParamsAC() Params {
	return Params{
		Deadline:       units.Microseconds(30),
		TimeSpan:       units.Microseconds(450),
		MaxExceptions:  3,
		DeadlineFactor: 14,
	}
}

// ParamsB returns the optimal parameters for CPU ℬ (Table 7), whose slow
// frequency changes need a far longer deadline.
func ParamsB() Params {
	return Params{
		Deadline:       units.Microseconds(700),
		TimeSpan:       units.Milliseconds(14),
		MaxExceptions:  4,
		DeadlineFactor: 9,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Deadline <= 0 {
		return fmt.Errorf("strategy: deadline %v must be positive", p.Deadline)
	}
	if p.TimeSpan <= 0 {
		return fmt.Errorf("strategy: time span %v must be positive", p.TimeSpan)
	}
	if p.MaxExceptions < 1 {
		return errors.New("strategy: max exceptions must be ≥ 1")
	}
	if p.DeadlineFactor < 1 {
		return errors.New("strategy: deadline factor must be ≥ 1")
	}
	return nil
}

// arm sets the deadline, stretched by the deadline factor when thrashing
// is detected (Listing 1 lines 10–14).
func (p Params) arm(ctl cpu.Controller, domain int) {
	d := p.Deadline
	if ctl.ExceptionsWithin(domain, p.TimeSpan) >= p.MaxExceptions {
		d = units.Second(float64(d) * p.DeadlineFactor)
	}
	ctl.ArmDeadline(domain, d)
}

// initEfficient is the common boot sequence: disable the faultable set,
// then select the efficient curve (the hardware refuses the reverse
// order, §3.2).
func initEfficient(ctl cpu.Controller) {
	for dom := 0; dom < ctl.Domains(); dom++ {
		ctl.DisableInstructions(dom)
		ctl.RequestAsync(dom, cpu.ModeE)
	}
}

// FV is the combined frequency+voltage strategy (Listing 1):
// E → Cf (fast frequency drop) → Cv (voltage catches up, frequency
// restored) → E on deadline expiry.
type FV struct {
	P Params
}

// Name implements cpu.Strategy.
func (FV) Name() string { return "fV" }

// Init implements cpu.Strategy.
func (FV) Init(ctl cpu.Controller) { initEfficient(ctl) }

// OnDisabledOpcode implements cpu.Strategy — Listing 1's
// disabled_instruction_exception_handler.
func (s FV) OnDisabledOpcode(ctl cpu.Controller, domain, core int, op isa.Opcode) {
	// Wait for the fast frequency switch to the conservative curve...
	ctl.RequestWait(domain, cpu.ModeCf)
	// ...and request the voltage change in the background.
	ctl.RequestAsync(domain, cpu.ModeCv)
	ctl.EnableInstructions(domain)
	s.P.arm(ctl, domain)
}

// OnDeadline implements cpu.Strategy — Listing 1's timer_interrupt_handler.
func (FV) OnDeadline(ctl cpu.Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, cpu.ModeE)
}

// FreqOnly is the frequency-only strategy (E ↔ Cf): fast and very
// efficient — the voltage never rises — at the cost of running slower
// while on the conservative curve. CPU ℬ, with per-core frequency domains
// but a single voltage plane, can only use this or emulation.
type FreqOnly struct {
	P Params
}

// Name implements cpu.Strategy.
func (FreqOnly) Name() string { return "f" }

// Init implements cpu.Strategy.
func (FreqOnly) Init(ctl cpu.Controller) { initEfficient(ctl) }

// OnDisabledOpcode implements cpu.Strategy.
func (s FreqOnly) OnDisabledOpcode(ctl cpu.Controller, domain, core int, op isa.Opcode) {
	ctl.RequestWait(domain, cpu.ModeCf)
	ctl.EnableInstructions(domain)
	s.P.arm(ctl, domain)
}

// OnDeadline implements cpu.Strategy.
func (FreqOnly) OnDeadline(ctl cpu.Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, cpu.ModeE)
}

// VoltOnly is the voltage-only strategy (E ↔ Cv): an order of magnitude
// slower to engage (the trap blocks for the full voltage settle time) but
// full-speed once on the conservative curve.
type VoltOnly struct {
	P Params
}

// Name implements cpu.Strategy.
func (VoltOnly) Name() string { return "V" }

// Init implements cpu.Strategy.
func (VoltOnly) Init(ctl cpu.Controller) { initEfficient(ctl) }

// OnDisabledOpcode implements cpu.Strategy.
func (s VoltOnly) OnDisabledOpcode(ctl cpu.Controller, domain, core int, op isa.Opcode) {
	ctl.RequestWait(domain, cpu.ModeCv)
	ctl.EnableInstructions(domain)
	s.P.arm(ctl, domain)
}

// OnDeadline implements cpu.Strategy.
func (VoltOnly) OnDeadline(ctl cpu.Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, cpu.ModeE)
}

// Emulation resolves every trap in software (§3.4): the CPU never leaves
// the efficient curve; each disabled instruction costs the emulation-call
// delay plus the replacement's work. Not possible inside TEEs.
type Emulation struct{}

// Name implements cpu.Strategy.
func (Emulation) Name() string { return "e" }

// Init implements cpu.Strategy.
func (Emulation) Init(ctl cpu.Controller) { initEfficient(ctl) }

// OnDisabledOpcode implements cpu.Strategy.
func (Emulation) OnDisabledOpcode(ctl cpu.Controller, domain, core int, op isa.Opcode) {
	ctl.Emulate(op)
}

// OnDeadline implements cpu.Strategy.
func (Emulation) OnDeadline(cpu.Controller, int) {
	panic("strategy: emulation never arms the deadline timer")
}

// Dynamic combines emulation and fV (§6.8: "SUIT could dynamically switch
// between Cv and e for highest efficiency"): an isolated trap — nothing
// else within the look-back window — is emulated on the spot, keeping the
// efficient curve; clustered traps indicate a burst and engage the fV
// switching machinery.
type Dynamic struct {
	P Params
	// EmulateBelow is the exception count within P.TimeSpan up to which
	// traps are emulated rather than switched (default 1: only isolated
	// traps).
	EmulateBelow int
}

// Name implements cpu.Strategy.
func (Dynamic) Name() string { return "dyn" }

// Init implements cpu.Strategy.
func (Dynamic) Init(ctl cpu.Controller) { initEfficient(ctl) }

// OnDisabledOpcode implements cpu.Strategy.
func (s Dynamic) OnDisabledOpcode(ctl cpu.Controller, domain, core int, op isa.Opcode) {
	limit := s.EmulateBelow
	if limit <= 0 {
		limit = 1
	}
	if ctl.Mode(domain) == cpu.ModeE && ctl.ExceptionsWithin(domain, s.P.TimeSpan) <= limit {
		ctl.Emulate(op)
		return
	}
	s.fv().OnDisabledOpcode(ctl, domain, core, op)
}

// OnDeadline implements cpu.Strategy.
func (s Dynamic) OnDeadline(ctl cpu.Controller, domain int) {
	s.fv().OnDeadline(ctl, domain)
}

// FV conversion helper for Dynamic.
func (s Dynamic) fv() FV { return FV{P: s.P} }

// Pinned runs the whole workload at a fixed operating point with the
// faultable instructions enabled: ModeBase is the pre-SUIT baseline every
// comparison normalises to; ModeE on a machine with AllowUnsafe models
// insecure blind undervolting (the attack scenario of §6.9).
type Pinned struct {
	M cpu.Mode
}

// Name implements cpu.Strategy.
func (p Pinned) Name() string { return "pinned-" + p.M.String() }

// Init implements cpu.Strategy.
func (p Pinned) Init(ctl cpu.Controller) {
	for dom := 0; dom < ctl.Domains(); dom++ {
		if p.M != cpu.ModeBase {
			ctl.RequestAsync(dom, p.M)
		}
	}
}

// OnDisabledOpcode implements cpu.Strategy.
func (p Pinned) OnDisabledOpcode(cpu.Controller, int, int, isa.Opcode) {
	panic("strategy: pinned configuration took a #DO trap; nothing is disabled")
}

// OnDeadline implements cpu.Strategy.
func (p Pinned) OnDeadline(cpu.Controller, int) {
	panic("strategy: pinned configuration armed no deadline")
}

// AlwaysEfficient is the noSIMD configuration (§6.7): the workload was
// recompiled without the faultable instructions, so the machine disables
// them and stays on the efficient curve for the whole run. A trap means
// the trace was not actually SIMD-free and is a configuration error.
type AlwaysEfficient struct{}

// Name implements cpu.Strategy.
func (AlwaysEfficient) Name() string { return "noSIMD" }

// Init implements cpu.Strategy.
func (AlwaysEfficient) Init(ctl cpu.Controller) { initEfficient(ctl) }

// OnDisabledOpcode implements cpu.Strategy.
func (AlwaysEfficient) OnDisabledOpcode(cpu.Controller, int, int, isa.Opcode) {
	panic("strategy: noSIMD trace contained a faultable instruction")
}

// OnDeadline implements cpu.Strategy.
func (AlwaysEfficient) OnDeadline(cpu.Controller, int) {
	panic("strategy: noSIMD configuration armed no deadline")
}
