// Package trace models instruction-event streams as recorded by the paper's
// QEMU plugin (§5.1): for each workload, the stream of *interesting*
// instructions (the Table 1 faultable set plus IMUL) with the instruction
// index at which each executes, together with the total instruction count
// and an instructions-per-cycle estimate used to convert instruction counts
// into clock cycles (the paper uses the INSTRUCTIONS_RETIRED counter for
// this conversion).
//
// Traces are sparse: background instructions are represented only by the
// gaps between events, which is exactly the information SUIT's dynamic
// building block consumes (the gap-size distribution determines deadline
// behaviour, Figs 5-7).
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"suit/internal/isa"
)

// Event is one occurrence of an interesting instruction.
type Event struct {
	// Index is the zero-based position of the instruction in the
	// workload's dynamic instruction stream.
	Index uint64
	// Op is the instruction executed.
	Op isa.Opcode
}

// Trace is a recorded instruction stream.
type Trace struct {
	// Name identifies the workload, e.g. "557.xz" or "nginx".
	Name string
	// Total is the total number of dynamic instructions in the stream,
	// including all background instructions. Total must be greater than
	// the last event index.
	Total uint64
	// IPC is the measured instructions-per-cycle used to convert
	// instruction indices into clock cycles (§5.1).
	IPC float64
	// Events are the interesting instructions, sorted by Index.
	Events []Event
}

// Validation errors.
var (
	ErrUnsorted   = errors.New("trace: events not sorted by index")
	ErrOutOfRange = errors.New("trace: event index beyond total instruction count")
	ErrBadOpcode  = errors.New("trace: invalid opcode")
	ErrBadIPC     = errors.New("trace: IPC must be positive and finite")
	ErrDuplicate  = errors.New("trace: duplicate event index")
)

// Validate checks the structural invariants of the trace.
func (t *Trace) Validate() error {
	if !(t.IPC > 0) || math.IsInf(t.IPC, 0) || math.IsNaN(t.IPC) {
		return fmt.Errorf("%w: %v", ErrBadIPC, t.IPC)
	}
	for i, ev := range t.Events {
		if !isa.Valid(ev.Op) || ev.Op == isa.OpNop {
			return fmt.Errorf("%w: event %d op %d", ErrBadOpcode, i, ev.Op)
		}
		if ev.Index >= t.Total {
			return fmt.Errorf("%w: event %d index %d >= total %d", ErrOutOfRange, i, ev.Index, t.Total)
		}
		if i > 0 {
			switch prev := t.Events[i-1].Index; {
			case ev.Index < prev:
				return fmt.Errorf("%w: event %d index %d < %d", ErrUnsorted, i, ev.Index, prev)
			case ev.Index == prev:
				return fmt.Errorf("%w: index %d", ErrDuplicate, ev.Index)
			}
		}
	}
	return nil
}

// Cycles converts an instruction count to clock cycles using the trace IPC.
func (t *Trace) Cycles(instructions uint64) float64 {
	return float64(instructions) / t.IPC
}

// TotalCycles is the cycle count of the whole stream.
func (t *Trace) TotalCycles() float64 { return t.Cycles(t.Total) }

// Density returns interesting events per instruction (0 when empty).
func (t *Trace) Density() float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(len(t.Events)) / float64(t.Total)
}

// CountByOpcode returns how many events each opcode contributes.
func (t *Trace) CountByOpcode() map[isa.Opcode]uint64 {
	m := make(map[isa.Opcode]uint64)
	for _, ev := range t.Events {
		m[ev.Op]++
	}
	return m
}

// Filter returns a new trace containing only events for which keep returns
// true. Total, IPC and Name are preserved.
func (t *Trace) Filter(keep func(Event) bool) *Trace {
	out := &Trace{Name: t.Name, Total: t.Total, IPC: t.IPC}
	for _, ev := range t.Events {
		if keep(ev) {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// FaultableOnly returns the sub-trace of events in the faultable set
// (excluding hardened IMUL) — the events that raise #DO when disabled.
func (t *Trace) FaultableOnly() *Trace {
	return t.Filter(func(ev Event) bool { return ev.Op.IsFaultable() })
}

// WithoutSIMD models recompiling the workload without SSE/AVX (§5.8): all
// SIMD events disappear from the stream. The instruction count change from
// scalarisation is modelled by internal/workload, not here.
func (t *Trace) WithoutSIMD() *Trace {
	return t.Filter(func(ev Event) bool { return !ev.Op.IsSIMD() })
}

// Window returns the events with from <= Index < to.
func (t *Trace) Window(from, to uint64) []Event {
	lo := sort.Search(len(t.Events), func(i int) bool { return t.Events[i].Index >= from })
	hi := sort.Search(len(t.Events), func(i int) bool { return t.Events[i].Index >= to })
	return t.Events[lo:hi]
}

// Gaps returns the instruction-count gaps of the stream: the gap before
// each event (distance from the previous event, or from stream start for
// the first event) and the tail gap after the last event. A trace with n
// events yields n+1 gaps summing to Total - n (each event occupies one
// instruction slot).
func (t *Trace) Gaps() []uint64 {
	gaps := make([]uint64, 0, len(t.Events)+1)
	var prevEnd uint64 // index just after the previous event
	for _, ev := range t.Events {
		gaps = append(gaps, ev.Index-prevEnd)
		prevEnd = ev.Index + 1
	}
	gaps = append(gaps, t.Total-prevEnd)
	return gaps
}

// GapHistogram buckets the gaps by order of magnitude: bucket i counts gaps
// g with 10^i <= g < 10^(i+1); bucket 0 also includes gaps of 0. This is
// the "gap size" axis of Figs 5 and 7.
func (t *Trace) GapHistogram() []uint64 {
	var hist []uint64
	for _, g := range t.Gaps() {
		b := 0
		if g > 0 {
			b = int(math.Log10(float64(g)))
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// Merge combines several traces into one interleaved stream over the same
// instruction index space, as when multiple event sources (e.g. different
// opcodes recorded separately) belong to one execution. All inputs must
// share Total and IPC. Duplicate indices are rejected.
func Merge(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: Merge needs at least one trace")
	}
	out := &Trace{Name: name, Total: traces[0].Total, IPC: traces[0].IPC}
	n := 0
	for _, tr := range traces {
		if tr.Total != out.Total || tr.IPC != out.IPC {
			return nil, fmt.Errorf("trace: Merge mismatch: %q has total=%d ipc=%g, want total=%d ipc=%g",
				tr.Name, tr.Total, tr.IPC, out.Total, out.IPC)
		}
		n += len(tr.Events)
	}
	out.Events = make([]Event, 0, n)
	for _, tr := range traces {
		out.Events = append(out.Events, tr.Events...)
	}
	sort.Slice(out.Events, func(i, j int) bool { return out.Events[i].Index < out.Events[j].Index })
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarises a trace for reporting.
type Stats struct {
	Name        string
	Total       uint64
	Events      int
	Density     float64 // events per instruction
	MeanGap     float64 // mean instructions between events
	MedianGap   uint64
	MaxGap      uint64
	ByOpcode    map[isa.Opcode]uint64
	GapHistBase []uint64 // log10 histogram
}

// Summarize computes Stats for the trace.
func Summarize(t *Trace) Stats {
	gaps := t.Gaps()
	sorted := append([]uint64(nil), gaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, max uint64
	for _, g := range gaps {
		sum += g
		if g > max {
			max = g
		}
	}
	return Stats{
		Name:        t.Name,
		Total:       t.Total,
		Events:      len(t.Events),
		Density:     t.Density(),
		MeanGap:     float64(sum) / float64(len(gaps)),
		MedianGap:   sorted[len(sorted)/2],
		MaxGap:      max,
		ByOpcode:    t.CountByOpcode(),
		GapHistBase: t.GapHistogram(),
	}
}
