package dist

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// maxResultBytes bounds a result post's body. Outcomes are small JSON
// documents (a few KB with a timeline); 4 MiB is generous headroom, and
// the cap turns a runaway or malicious body into a clean 413.
const maxResultBytes = 4 << 20

// Register mounts the work-distribution endpoints on mux (Go 1.22
// method+pattern routing):
//
//	POST /v1/work/claim              → claim one leased unit (204 if none)
//	POST /v1/work/{lease}/heartbeat  → extend a lease (410 if gone)
//	POST /v1/work/{lease}/result     → deliver a result (202/200/409/410/422)
//
// With Config.WorkerToken set, every endpoint additionally answers 401
// unless the request carries the matching bearer token.
func (d *Dispatcher) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/work/claim", d.auth(d.handleClaim))
	mux.HandleFunc("POST /v1/work/{lease}/heartbeat", d.auth(d.handleHeartbeat))
	mux.HandleFunc("POST /v1/work/{lease}/result", d.auth(d.handleResult))
}

// auth gates a handler behind Config.WorkerToken. The digest on a
// result only proves the body survived transport intact; it says
// nothing about who computed it, so authenticity has to come from the
// connection — this token, or the network boundary when it is empty.
// Tokens are compared as SHA-256 digests in constant time.
func (d *Dispatcher) auth(h http.HandlerFunc) http.HandlerFunc {
	token := d.cfg.WorkerToken
	if token == "" {
		return h
	}
	want := sha256.Sum256([]byte(token))
	return func(w http.ResponseWriter, r *http.Request) {
		presented, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		got := sha256.Sum256([]byte(presented))
		if !ok || subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="suitd work distribution"`)
			httpError(w, http.StatusUnauthorized, "missing or invalid worker token")
			return
		}
		h(w, r)
	}
}

func (d *Dispatcher) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad claim body: "+err.Error())
		return
	}
	if req.WorkerID == "" {
		httpError(w, http.StatusBadRequest, "claim must name a worker_id")
		return
	}
	grant, ok := d.Claim(req.WorkerID)
	if !ok {
		w.WriteHeader(http.StatusNoContent) // nothing to do; poll again
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	ttl, ok := d.Heartbeat(r.PathValue("lease"))
	if !ok {
		// Gone: expired and reassigned, or the job was abandoned. The
		// worker should stop computing this unit.
		httpError(w, http.StatusGone, "lease gone")
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": ttl.Milliseconds()})
}

func (d *Dispatcher) handleResult(w http.ResponseWriter, r *http.Request) {
	var msg ResultMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBytes)).Decode(&msg); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "result body exceeds the limit")
			return
		}
		httpError(w, http.StatusBadRequest, "bad result body: "+err.Error())
		return
	}
	status, err := d.Result(r.PathValue("lease"), msg)
	if err != nil {
		switch {
		case errors.Is(err, ErrGone):
			httpError(w, http.StatusGone, err.Error())
		case errors.Is(err, ErrConflict):
			httpError(w, http.StatusConflict, err.Error())
		case errors.Is(err, ErrBadDigest), errors.Is(err, ErrMismatch):
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	code := http.StatusOK
	if status == "accepted" {
		code = http.StatusAccepted
	}
	writeJSON(w, code, ResultAck{Status: status})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
