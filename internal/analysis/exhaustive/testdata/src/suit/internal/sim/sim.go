// Package sim is an exhaustive fixture: switches over the guarded dvfs
// enums from a consuming package.
package sim

import (
	"fmt"

	"suit/internal/dvfs"
)

func incomplete(k dvfs.DomainKind) string {
	switch k { // want `switch on dvfs\.DomainKind is missing cases PerCoreBoth`
	case dvfs.SingleDomain:
		return "single"
	case dvfs.PerCoreFreq:
		return "freq"
	}
	return ""
}

func covered(k dvfs.DomainKind) string {
	switch k {
	case dvfs.SingleDomain, dvfs.PerCoreFreq, dvfs.PerCoreBoth:
		return "known"
	}
	return ""
}

func panickingDefault(id dvfs.CurveID) string {
	switch id {
	case dvfs.Conservative:
		return "conservative"
	default:
		panic(fmt.Sprintf("unknown curve %d", id))
	}
}

func lazyDefault(id dvfs.CurveID) string {
	switch id { // want `switch on dvfs\.CurveID is missing cases Efficient`
	case dvfs.Conservative:
		return "c"
	default:
		return "?"
	}
}

func unguardedInt(x int) string {
	switch x {
	case 1:
		return "one"
	}
	return ""
}

func suppressed(k dvfs.DomainKind) bool {
	//lint:allow exhaustive fixture: only the shared-domain case is relevant here
	switch k {
	case dvfs.SingleDomain:
		return true
	}
	return false
}
