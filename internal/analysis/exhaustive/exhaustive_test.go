package exhaustive_test

import (
	"testing"

	"suit/internal/analysis/analysistest"
	"suit/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", exhaustive.Analyzer,
		"suit/internal/sim", "suit/internal/cpu")
}
