// Package uarch is the microarchitecture simulator used for SUIT's static
// building block (§4.2, §6.1): it quantifies how much performance an
// out-of-order core loses when the IMUL latency grows from 3 cycles to 4
// (the SUIT hardening) and beyond (Fig 14).
//
// The paper uses gem5's O3 model in full-system mode (Table 5). This
// package implements a dataflow-limit out-of-order model from scratch:
// instructions dispatch in order through a width-limited front end into a
// reorder buffer, issue out of order when their operands and a functional
// unit are ready, and retire in order. That captures the two effects
// Fig 14 hinges on — small latency increases hide inside the scheduler's
// slack, large ones serialise dependence chains — without modelling fetch,
// caches or TLBs cycle by cycle.
package uarch

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"suit/internal/isa"
)

// Config describes the simulated core, defaulting to a gem5-O3-like
// configuration (Table 5: x86-64, 3 GHz, out-of-order).
type Config struct {
	// Width is the dispatch/retire width in instructions per cycle.
	Width int
	// ROB is the reorder-buffer capacity.
	ROB int
	// IMULLatency overrides the IMUL result latency (3 = stock hardware,
	// 4 = SUIT-hardened).
	IMULLatency int
	// FUs is the number of functional units per kind.
	FUs map[isa.FUKind]int
	// BranchMispredictRate is the per-branch misprediction probability;
	// a mispredict refills the front end after the branch resolves plus
	// MispredictPenalty cycles.
	BranchMispredictRate float64
	MispredictPenalty    int
	// LoadMissRate is the per-load probability of a last-level miss with
	// MissLatency cycles instead of the L1 hit latency.
	LoadMissRate float64
	MissLatency  int
	// DepMeanDist is the mean register-dependence distance in
	// instructions; each instruction reads up to two earlier results.
	DepMeanDist float64
	// IMULChainIn is the probability that an IMUL reads the immediately
	// preceding result, and IMULChainLen the mean length of the serial
	// dependence chain consuming an IMUL result (each link reading its
	// predecessor). 525.x264's motion-estimation and DCT kernels put
	// IMUL on such multiply-accumulate chains, which is what exposes the
	// extra latency (§6.1); without chains the scheduler hides it.
	//
	// Chains only form where multiplies are loop-carried: a workload
	// whose IMUL density reaches IMULChainDensity behaves as a multiply
	// kernel (full chain probability); sparse incidental multiplies
	// (address arithmetic, hashing) sit off the critical path and chain
	// proportionally less.
	IMULChainIn      float64
	IMULChainLen     float64
	IMULChainDensity float64
}

// DefaultConfig returns the Table 5-like core: 4-wide, 192-entry ROB,
// stock 3-cycle IMUL.
func DefaultConfig() Config {
	return Config{
		Width:       4,
		ROB:         192,
		IMULLatency: 3,
		FUs: map[isa.FUKind]int{
			isa.FUALU:    4,
			isa.FUMul:    1,
			isa.FUDiv:    1,
			isa.FULoad:   2,
			isa.FUStore:  1,
			isa.FUBranch: 1,
			isa.FUFPAdd:  2,
			isa.FUFPMul:  2,
			isa.FUVector: 2,
			isa.FUAES:    1,
		},
		BranchMispredictRate: 0.01,
		MispredictPenalty:    14,
		LoadMissRate:         0.005,
		MissLatency:          80,
		DepMeanDist:          40,
		IMULChainIn:          0.8,
		IMULChainLen:         6,
		IMULChainDensity:     0.008,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 {
		return errors.New("uarch: Width and ROB must be positive")
	}
	if c.IMULLatency <= 0 {
		return errors.New("uarch: IMULLatency must be positive")
	}
	if c.BranchMispredictRate < 0 || c.BranchMispredictRate > 1 ||
		c.LoadMissRate < 0 || c.LoadMissRate > 1 {
		return errors.New("uarch: rates must be in [0,1]")
	}
	if c.DepMeanDist < 1 {
		return errors.New("uarch: DepMeanDist must be ≥ 1")
	}
	if c.IMULChainIn < 0 || c.IMULChainIn > 1 {
		return errors.New("uarch: IMULChainIn must be in [0,1]")
	}
	if c.IMULChainLen < 0 {
		return errors.New("uarch: IMULChainLen must be non-negative")
	}
	for k, n := range c.FUs {
		if n <= 0 {
			return fmt.Errorf("uarch: FU %v count must be positive", k)
		}
	}
	return nil
}

// Result summarises one simulation.
type Result struct {
	Instructions uint64
	Cycles       float64
	IPC          float64
}

// latencyOf returns the configured result latency of op.
func (c Config) latencyOf(op isa.Opcode) int {
	if op == isa.OpIMUL {
		return c.IMULLatency
	}
	return isa.Lookup(op).Latency
}

// Simulate runs n instructions drawn from mix through the core and
// returns the achieved IPC. It is deterministic in seed.
func Simulate(cfg Config, mix map[isa.Opcode]float64, n int, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n <= 0 {
		return Result{}, errors.New("uarch: need at least one instruction")
	}
	sampler, err := newMixSampler(mix)
	if err != nil {
		return Result{}, err
	}
	return simulate(cfg, n, seed, sampler.share(isa.OpIMUL), sampler.sample)
}

// simulate is the core scheduling loop, shared by the mix-driven and
// trace-driven front ends. imulShare drives the multiply-chain activation
// (see Config.IMULChainDensity); next supplies the instruction stream.
func simulate(cfg Config, n int, seed uint64, imulShare float64, next func(*rand.Rand) isa.Opcode) (Result, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))

	// Ring buffers over the ROB window.
	window := cfg.ROB
	complete := make([]float64, window) // completion cycle of instr i%window
	retire := make([]float64, window)   // retirement cycle

	// Per-FU-kind next-free cycles (one slot per unit).
	fuFree := make([][]float64, isa.NumFUKinds)
	for k := range fuFree {
		if cnt := cfg.FUs[isa.FUKind(k)]; cnt > 0 {
			fuFree[k] = make([]float64, cnt)
		}
	}

	dispatchStep := 1.0 / float64(cfg.Width)
	var frontEnd float64 // next dispatch cycle
	var lastRetire float64
	chainRemaining := 0

	// Chain activation scales with the workload's IMUL density (see the
	// IMULChainDensity doc comment).
	chainScale := 1.0
	if cfg.IMULChainDensity > 0 && imulShare < cfg.IMULChainDensity {
		chainScale = imulShare / cfg.IMULChainDensity
	}
	chainProb := cfg.IMULChainIn * chainScale

	for i := 0; i < n; i++ {
		op := next(rng)
		info := isa.Lookup(op)

		// Dispatch: width-limited, ROB-limited (cannot dispatch before
		// the instruction ROB slots ago retired).
		dispatch := frontEnd
		if i >= window {
			if r := retire[i%window]; r > dispatch {
				dispatch = r
			}
		}
		frontEnd = dispatch + dispatchStep

		// Operand readiness: up to two producers at geometric distances,
		// plus multiply-chain coupling around IMUL.
		ready := dispatch
		for d := 0; d < 2; d++ {
			if d == 1 && rng.Float64() < 0.6 {
				continue // many instructions have a single register input
			}
			dist := 1 + int(rng.ExpFloat64()*(cfg.DepMeanDist-1))
			if dist > i {
				continue
			}
			if dist >= window {
				continue // producer long retired
			}
			if t := complete[(i-dist)%window]; t > ready {
				ready = t
			}
		}
		chained := i > 0 &&
			(chainRemaining > 0 ||
				(op == isa.OpIMUL && rng.Float64() < chainProb))
		if chained {
			if t := complete[(i-1)%window]; t > ready {
				ready = t
			}
		}
		if chainRemaining > 0 {
			chainRemaining--
		}
		if op == isa.OpIMUL && cfg.IMULChainLen > 0 && rng.Float64() < chainScale {
			chainRemaining = 1 + int(rng.ExpFloat64()*(cfg.IMULChainLen-1))
		}

		// Functional unit: earliest-free unit of the required kind.
		units := fuFree[info.FU]
		best := 0
		for u := 1; u < len(units); u++ {
			if units[u] < units[best] {
				best = u
			}
		}
		issue := ready
		if units[best] > issue {
			issue = units[best]
		}

		lat := float64(cfg.latencyOf(op))
		if op == isa.OpLoad && rng.Float64() < cfg.LoadMissRate {
			lat = float64(cfg.MissLatency)
		}
		if info.Pipelined {
			units[best] = issue + 1
		} else {
			units[best] = issue + lat
		}
		done := issue + lat
		complete[i%window] = done

		// In-order, width-limited retirement.
		ret := done
		if lastRetire+dispatchStep > ret {
			ret = lastRetire + dispatchStep
		}
		retire[i%window] = ret
		lastRetire = ret

		// Branch mispredict: the front end refills after resolution.
		if op == isa.OpBranch && rng.Float64() < cfg.BranchMispredictRate {
			refill := done + float64(cfg.MispredictPenalty)
			if refill > frontEnd {
				frontEnd = refill
			}
		}
	}

	cycles := lastRetire
	return Result{
		Instructions: uint64(n),
		Cycles:       cycles,
		IPC:          float64(n) / cycles,
	}, nil
}

// Slowdown runs the mix at the stock 3-cycle IMUL and at imulLatency and
// returns the relative slowdown (0.016 = 1.6 % slower). Both runs share
// the seed, so they see identical instruction streams.
func Slowdown(cfg Config, mix map[isa.Opcode]float64, n int, seed uint64, imulLatency int) (float64, error) {
	base := cfg
	base.IMULLatency = 3
	mod := cfg
	mod.IMULLatency = imulLatency
	r0, err := Simulate(base, mix, n, seed)
	if err != nil {
		return 0, err
	}
	r1, err := Simulate(mod, mix, n, seed)
	if err != nil {
		return 0, err
	}
	return r0.IPC/r1.IPC - 1, nil
}

// mixSampler draws opcodes from a weighted mix by inverse CDF.
type mixSampler struct {
	ops []isa.Opcode
	cdf []float64
}

func newMixSampler(mix map[isa.Opcode]float64) (*mixSampler, error) {
	for op, w := range mix {
		if w < 0 {
			return nil, fmt.Errorf("uarch: negative weight for %v", op)
		}
	}
	// Deterministic order: iterate the opcode space, not the map — the
	// float sums below depend on addition order.
	var total float64
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		total += mix[op]
	}
	if total <= 0 {
		return nil, errors.New("uarch: empty instruction mix")
	}
	s := &mixSampler{}
	acc := 0.0
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		w, ok := mix[op]
		if !ok || w == 0 {
			continue
		}
		acc += w / total
		s.ops = append(s.ops, op)
		s.cdf = append(s.cdf, acc)
	}
	return s, nil
}

// share returns the normalised weight of op in the mix.
func (s *mixSampler) share(op isa.Opcode) float64 {
	prev := 0.0
	for i, o := range s.ops {
		if o == op {
			return s.cdf[i] - prev
		}
		prev = s.cdf[i]
	}
	return 0
}

func (s *mixSampler) sample(rng *rand.Rand) isa.Opcode {
	x := rng.Float64()
	for i, c := range s.cdf {
		if x < c {
			return s.ops[i]
		}
	}
	return s.ops[len(s.ops)-1]
}
