// Package metrics provides the aggregation math of the paper's evaluation:
// geometric means over relative changes (how SPEC scores are summarised),
// medians, standard deviations, and the efficiency algebra of §5.4 — the
// efficiency change is one over the change in duration multiplied by the
// change in power.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// Geomean returns the geometric mean of positive values.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: geomean of empty set")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("metrics: geomean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// GeomeanChange aggregates relative changes (e.g. −0.02 for 2 % slower) by
// the geometric mean of their ratios (1 + change).
func GeomeanChange(changes []float64) (float64, error) {
	ratios := make([]float64, len(changes))
	for i, c := range changes {
		ratios[i] = 1 + c
	}
	g, err := Geomean(ratios)
	if err != nil {
		return 0, err
	}
	return g - 1, nil
}

// Median returns the median (mean of the central pair for even lengths).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: median of empty set")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: mean of empty set")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation (n−1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("metrics: stddev needs at least two values")
	}
	m, _ := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1)), nil
}

// Change is a relative comparison of a run against its baseline.
type Change struct {
	// Perf is the score change: +0.02 = 2 % faster (duration shrank).
	Perf float64
	// Power is the average-power change: −0.10 = 10 % less power.
	Power float64
}

// Efficiency computes the paper's efficiency change: with relative
// duration d and relative power p, efficiency changes by 1/(d·p) − 1
// (§5.4: half the time at half the power = 4× the efficiency).
func (c Change) Efficiency() float64 {
	relDur := 1 / (1 + c.Perf)
	relPow := 1 + c.Power
	return 1/(relDur*relPow) - 1
}

// NewChange derives a Change from absolute durations and powers.
func NewChange(baseDur, dur, basePower, power float64) Change {
	return Change{
		Perf:  baseDur/dur - 1,
		Power: power/basePower - 1,
	}
}
