package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from current output")

// TestGoldenOutput pins the CLI's stdout byte-for-byte on three fixed
// seeds spanning all three paper chips, single- and multi-core runs and
// three strategies. The goldens were captured before the indexed event
// queue replaced the linear scan, so any drift in event ordering, float
// evaluation or report formatting fails here. Regenerate deliberately
// with: go test ./cmd/suitsim -run TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"golden_c_xz.txt", []string{"-chip", "C", "-bench", "557.xz", "-strategy", "fV", "-offset", "97", "-instr", "20000000", "-seed", "7"}},
		{"golden_a_x264.txt", []string{"-chip", "A", "-bench", "525.x264", "-strategy", "e", "-offset", "97", "-instr", "20000000", "-seed", "3"}},
		{"golden_b_nginx.txt", []string{"-chip", "B", "-bench", "nginx", "-strategy", "f", "-offset", "70", "-cores", "2", "-instr", "20000000", "-seed", "5"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, stdout.String(), want)
			}
		})
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-chip", "pentium"},
		{"-bench", "no-such-workload"},
		{"-offset", "50"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want usage exit 2 (stderr: %q)", args, code, stderr.String())
		}
	}
}

func TestChipByName(t *testing.T) {
	cases := map[string]string{
		"A":     "Intel Core i9-9900K",
		"a":     "Intel Core i9-9900K",
		"i9":    "Intel Core i9-9900K",
		"B":     "AMD Ryzen 7 7700X",
		"ryzen": "AMD Ryzen 7 7700X",
		"C":     "Intel Xeon Silver 4208",
		"xeon":  "Intel Xeon Silver 4208",
		"4208":  "Intel Xeon Silver 4208",
		"i5":    "Intel Core i5-1035G1",
	}
	for in, want := range cases {
		chip, ok := chipByName(in)
		if !ok {
			t.Errorf("chipByName(%q) not found", in)
			continue
		}
		if chip.Name != want {
			t.Errorf("chipByName(%q) = %q, want %q", in, chip.Name, want)
		}
	}
	if _, ok := chipByName("pentium"); ok {
		t.Error("unknown chip resolved")
	}
}
