// Package allocsites exercises every allocation-site class the
// allocfree analyzer knows, plus the propagation rules: hotness spreads
// over static calls and method values, never over interface dispatch or
// function values.
package allocsites

import (
	"errors"
	"fmt"
)

type payload struct{ n int }

// hot is an annotated root: every allocation site inside it (or inside
// anything it statically reaches) is a finding.
//
//suit:hotpath
func hot(dst []int, m map[string]int, s string) {
	_ = make([]int, 8)       // want `hot path: make allocates`
	_ = new(payload)         // want `hot path: new allocates`
	dst = append(dst, 1)     // want `hot path: append may grow the backing array`
	m["k"] = 1               // want `hot path: map assignment may allocate`
	_ = s + "x"              // want `hot path: string concatenation allocates`
	_ = []byte(s)            // want `hot path: string to \[\]byte/\[\]rune conversion allocates`
	_ = fmt.Sprintf("%d", 1) // want `hot path: fmt\.Sprintf allocates`
	_ = errors.New("boom")   // want `hot path: errors\.New allocates`
	helper()
	var sink any
	sink = payload{n: 1} // want `hot path: assignment boxes value into interface any`
	_ = sink
}

// helper is not annotated but is statically called from hot, so its
// sites surface where they occur.
func helper() {
	_ = make([]int, 1) // want `hot path: make allocates`
}

// cold allocates freely: nothing reaches it from a root, so no findings
// (its Allocates fact is still exported for cross-package callers).
func cold() {
	_ = make([]int, 64)
	_ = fmt.Sprintf("%v", 3)
}

type doer interface{ Do() }

type impl struct{}

// Do allocates, but impl.Do is only ever reached through the interface:
// conservative dispatch means no finding unless Do is annotated itself.
func (impl) Do() { _ = make([]int, 1) }

//suit:hotpath
func hotIface(d doer) {
	d.Do()
}

//suit:hotpath
func hotFuncValue(f func()) {
	f()
}

//suit:hotpath
func hotClosure() {
	x := 1
	f := func() { x++ } // want `hot path: func literal captures variables and allocates a closure`
	f()
	g := func() {} // non-capturing literal: a static closure, no allocation
	g()
}

type T struct{}

// alloc is reached from hotMethodValue via a bound method value, which
// is statically resolved: hotness propagates.
func (T) alloc() { _ = make([]int, 2) } // want `hot path: make allocates`

//suit:hotpath
func hotMethodValue(t T) {
	m := t.alloc
	_ = m
}

//suit:hotpath
func hotGo() {
	go func() {}() // want `hot path: go statement allocates a new goroutine`
}

//suit:hotpath
func hotLiterals() {
	_ = []int{1, 2}      // want `hot path: slice literal allocates`
	_ = map[string]int{} // want `hot path: map literal allocates`
	_ = &payload{}       // want `hot path: &composite literal may escape and allocate`
}

type wrap struct{ p *payload }

func take(v any) { _ = v }

// hotBoxing: only non-pointer-shaped values allocate when boxed into an
// interface; pointers and single-pointer-field structs ride in the
// interface word directly.
//
//suit:hotpath
func hotBoxing(w wrap, p payload, pp *payload) {
	take(w)
	take(pp)
	take(p) // want `hot path: argument boxed into interface any allocates`
}

// hotAllowed: an explained site is invisible — no finding, and no
// Allocates fact, so annotated callers of hotAllowed stay clean.
//
//suit:hotpath
func hotAllowed() {
	_ = make([]int, 1) //lint:allow allocfree scratch buffer preallocated per run, measured off the steady state
	hotAllowed2()
}

//suit:hotpath
func hotAllowed2() {}
