// Package sched implements the scheduling direction the paper points at in
// §7 ("similar scheduling methods could also be used in conjunction with
// SUIT to minimize DVFS curve changes", citing Nest): on a machine with
// cluster-granular DVFS domains, *where* the OS places tasks decides how
// many clusters SUIT can keep on the efficient curve.
//
// The insight is dual to Nest's: a workload with dense faultable
// instructions parks its whole domain on the conservative curve, so
// spreading such workloads poisons every cluster, while packing them
// together sacrifices one cluster and leaves the rest efficient. The
// package provides the two policies and an evaluator that runs a
// placement end to end on the event-driven machine.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/metrics"
	"suit/internal/strategy"
	"suit/internal/trace"
	"suit/internal/units"
	"suit/internal/workload"
)

// Assignment maps each task (by index) to a DVFS cluster.
type Assignment []int

// Clusters returns the number of clusters the assignment uses.
func (a Assignment) Clusters() int {
	max := -1
	for _, c := range a {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// Validate checks the assignment against the cluster count and capacity.
func (a Assignment) Validate(nClusters, coresPerCluster int) error {
	load := make([]int, nClusters)
	for i, c := range a {
		if c < 0 || c >= nClusters {
			return fmt.Errorf("sched: task %d assigned to cluster %d of %d", i, c, nClusters)
		}
		load[c]++
		if load[c] > coresPerCluster {
			return fmt.Errorf("sched: cluster %d over capacity (%d cores)", c, coresPerCluster)
		}
	}
	return nil
}

// FaultableDensity estimates a workload's faultable instructions per
// dynamic instruction — the quantity placement decisions key on (an OS
// would read it from the per-task #DO count MSR).
func FaultableDensity(b workload.Benchmark) float64 {
	d := 0.0
	if b.BurstEvery > 0 {
		d += b.BurstLen / b.BurstEvery
	}
	if b.PoissonGap > 0 {
		d += 1 / b.PoissonGap
	}
	return d
}

// Spread distributes tasks round-robin across clusters — the
// SUIT-oblivious default an existing scheduler would produce.
func Spread(tasks []workload.Benchmark, nClusters int) Assignment {
	a := make(Assignment, len(tasks))
	for i := range tasks {
		a[i] = i % nClusters
	}
	return a
}

// PackByDensity sorts tasks by faultable density and fills clusters from
// the densest down, so conservative-curve-bound tasks share domains and
// the remaining clusters stay efficient.
func PackByDensity(tasks []workload.Benchmark, nClusters, coresPerCluster int) Assignment {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return FaultableDensity(tasks[order[x]]) > FaultableDensity(tasks[order[y]])
	})
	a := make(Assignment, len(tasks))
	for rank, task := range order {
		a[task] = (rank / coresPerCluster) % nClusters
	}
	return a
}

// Result aggregates one placement's run against the pinned-conservative
// baseline of the same placement.
type Result struct {
	Assignment Assignment
	// Perf/Power/Eff are whole-machine changes vs the baseline.
	Change metrics.Change
	Eff    float64
	// PerTask is each task's completion time.
	PerTask []units.Second
	// EfficientShares is each cluster's efficient-curve residency.
	Exceptions int
}

// Config describes the scheduling experiment.
type Config struct {
	// Chip provides curves, power and transition models; its cores must
	// cover Clusters × CoresPerCluster.
	Chip            dvfs.Chip
	Clusters        int
	CoresPerCluster int
	Tasks           []workload.Benchmark
	// Instructions per task stream (default 2·10⁸).
	Instructions uint64
	SpendAging   bool
	Seed         uint64
}

func (c Config) validate() error {
	if c.Clusters < 1 || c.CoresPerCluster < 1 {
		return errors.New("sched: need at least one cluster and core")
	}
	if c.Clusters*c.CoresPerCluster > c.Chip.Cores {
		return fmt.Errorf("sched: %d×%d cores exceed the chip's %d",
			c.Clusters, c.CoresPerCluster, c.Chip.Cores)
	}
	if len(c.Tasks) == 0 {
		return errors.New("sched: no tasks")
	}
	for i, t := range c.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("sched: task %d: %w", i, err)
		}
	}
	return nil
}

// Evaluate runs the assignment on the machine and returns the aggregate
// outcome relative to the pinned-baseline run of the same placement.
func Evaluate(c Config, a Assignment) (Result, error) {
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	if err := a.Validate(c.Clusters, c.CoresPerCluster); err != nil {
		return Result{}, err
	}
	if len(a) != len(c.Tasks) {
		return Result{}, fmt.Errorf("sched: %d assignments for %d tasks", len(a), len(c.Tasks))
	}
	total := c.Instructions
	if total == 0 {
		total = 200_000_000
	}

	gb := guardband.Default()
	offset := gb.EfficientOffset(isa.FaultableMask, true, c.SpendAging)

	mkTraces := func() ([]*trace.Trace, error) {
		out := make([]*trace.Trace, len(c.Tasks))
		for i, t := range c.Tasks {
			tr, err := t.GenerateTrace(total, c.Seed+uint64(i)*7919+1)
			if err != nil {
				return nil, err
			}
			out[i] = tr
		}
		return out, nil
	}

	run := func(strat cpu.Strategy, hardened bool) (cpu.Result, error) {
		traces, err := mkTraces()
		if err != nil {
			return cpu.Result{}, err
		}
		m, err := cpu.New(cpu.Config{
			Chip:           c.Chip,
			Traces:         traces,
			Offset:         offset,
			Faults:         gb,
			HardenedIMUL:   hardened,
			ExceptionDelay: c.Chip.ExceptionDelay,
			Emul:           emul.NewCostModel(c.Chip.EmulCallDelay),
			Seed:           c.Seed,
			DomainOf:       a,
		}, strat)
		if err != nil {
			return cpu.Result{}, err
		}
		return m.Run()
	}

	base, err := run(strategy.Pinned{M: cpu.ModeBase}, false)
	if err != nil {
		return Result{}, err
	}
	params := strategy.ParamsAC()
	if c.Chip.Transition.FreqDelay > units.Microseconds(100) {
		params = strategy.ParamsB()
	}
	suit, err := run(strategy.FV{P: params}, true)
	if err != nil {
		return Result{}, err
	}
	if len(suit.Faults) != 0 {
		return Result{}, fmt.Errorf("sched: placement run recorded %d faults", len(suit.Faults))
	}

	ch := metrics.NewChange(
		float64(base.Duration), float64(suit.Duration),
		float64(base.AvgPower), float64(suit.AvgPower),
	)
	return Result{
		Assignment: a,
		Change:     ch,
		Eff:        ch.Efficiency(),
		PerTask:    suit.PerCore,
		Exceptions: suit.Exceptions,
	}, nil
}

// Compare evaluates the oblivious spread against density packing and
// returns both results (spread first).
func Compare(c Config) (spread, packed Result, err error) {
	spread, err = Evaluate(c, Spread(c.Tasks, c.Clusters))
	if err != nil {
		return
	}
	packed, err = Evaluate(c, PackByDensity(c.Tasks, c.Clusters, c.CoresPerCluster))
	return
}
