package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	s, ok := parseBenchLine("BenchmarkMachineHotPath/dense-trap-8 \t 1 \t 2049713 ns/op \t 128 B/op \t 2 allocs/op")
	if !ok {
		t.Fatal("valid bench line rejected")
	}
	if s.Name != "BenchmarkMachineHotPath/dense-trap" {
		t.Errorf("name %q: -8 CPU suffix not trimmed", s.Name)
	}
	if s.MinNsPerOp != 2049713 || s.MaxBytesOp != 128 || s.MaxAllocsOp != 2 {
		t.Errorf("parsed %+v", s)
	}

	for _, line := range []string{
		"ok  \tsuit/internal/cpu\t0.31s",
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 not numbers here",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-result line parsed as a benchmark: %q", line)
		}
	}

	// A benchmark without -benchmem style columns still parses.
	s, ok = parseBenchLine("BenchmarkMachineEventLoop-4   5   304958 ns/op")
	if !ok || s.MinNsPerOp != 304958 || s.MaxAllocsOp != 0 {
		t.Errorf("plain ns/op line: ok=%v %+v", ok, s)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":           "BenchmarkX",
		"BenchmarkX/sub-case-16": "BenchmarkX/sub-case",
		"BenchmarkX/sub-case":    "BenchmarkX/sub-case",
		"BenchmarkX":             "BenchmarkX",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeBaseline drops a baseline report JSON into a temp dir and
// returns its path.
func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_BASE.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodReport() *report {
	return &report{
		Sweep:          &sweepStat{Points: 1200, PointsPerSec: 450},
		SweepUnbatched: &sweepStat{Points: 1200, PointsPerSec: 300},
	}
}

// A corrupt baseline — zero, negative, NaN, Inf or absent points/s —
// must be a hard error, not a vacuous floor of 0.85 × 0 that every run
// sails over.
func TestCompareBaselineRejectsCorruptBaseline(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"zero", `{"sweep":{"points":1200,"points_per_sec":0}}`},
		{"negative", `{"sweep":{"points":1200,"points_per_sec":-12.5}}`},
		{"missing sweep", `{"bench_count":3}`},
		{"null sweep", `{"sweep":null}`},
		{"zero unbatched", `{"sweep":{"points_per_sec":400},"sweep_unbatched":{"points_per_sec":0}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeBaseline(t, tc.body)
			err := compareBaseline(path, goodReport())
			if err == nil {
				t.Fatalf("corrupt baseline %s accepted; gate is vacuous", tc.name)
			}
			if !strings.Contains(err.Error(), "sweep") {
				t.Errorf("error should name the sweep measurement, got: %v", err)
			}
		})
	}
}

// The current run's own stats must be usable too: a NaN or Inf
// points/s on our side would also make the comparison meaningless.
func TestCompareBaselineRejectsUnusableCurrentRun(t *testing.T) {
	path := writeBaseline(t,
		`{"sweep":{"points_per_sec":400},"sweep_unbatched":{"points_per_sec":250}}`)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		rep := goodReport()
		rep.Sweep.PointsPerSec = bad
		if err := compareBaseline(path, rep); err == nil {
			t.Errorf("current batched throughput %v accepted", bad)
		}
		rep = goodReport()
		rep.SweepUnbatched.PointsPerSec = bad
		if err := compareBaseline(path, rep); err == nil {
			t.Errorf("current unbatched throughput %v accepted", bad)
		}
	}
}

func TestCompareBaselineGatesBothLegs(t *testing.T) {
	path := writeBaseline(t,
		`{"sweep":{"points_per_sec":400},"sweep_unbatched":{"points_per_sec":250}}`)

	if err := compareBaseline(path, goodReport()); err != nil {
		t.Fatalf("healthy report failed the gate: %v", err)
	}

	rep := goodReport()
	rep.Sweep.PointsPerSec = 400 * regressionFloor * 0.99
	if err := compareBaseline(path, rep); err == nil {
		t.Error("batched regression below the floor passed the gate")
	}

	rep = goodReport()
	rep.SweepUnbatched.PointsPerSec = 250 * regressionFloor * 0.99
	if err := compareBaseline(path, rep); err == nil {
		t.Error("unbatched regression below the floor passed the gate")
	}
}

// Baselines committed before the batched/unbatched split carry a
// single sweep stat; both legs of a newer run gate against it.
func TestCompareBaselineLegacySingleSweep(t *testing.T) {
	path := writeBaseline(t, `{"sweep":{"points":1200,"points_per_sec":290}}`)

	if err := compareBaseline(path, goodReport()); err != nil {
		t.Fatalf("legacy baseline should gate both legs against its one stat: %v", err)
	}

	rep := goodReport()
	rep.SweepUnbatched.PointsPerSec = 290 * regressionFloor * 0.99
	if err := compareBaseline(path, rep); err == nil {
		t.Error("unbatched leg ignored the legacy baseline floor")
	}
}

func TestCompareBaselineSkippedSweep(t *testing.T) {
	path := writeBaseline(t, `{"sweep":{"points_per_sec":400}}`)
	rep := &report{}
	if err := compareBaseline(path, rep); err == nil {
		t.Error("report without any sweep measurement accepted")
	}
}

// The per-benchmark ns/op ceiling: regressions beyond +25% fail, new
// benchmarks without a baseline entry are skipped, and unusable values
// on either side are hard errors rather than vacuous ceilings.
func TestGateBenchmarks(t *testing.T) {
	base := []benchStat{
		{Name: "BenchmarkMachineHotPath/dense-trap", MinNsPerOp: 1000},
		{Name: "BenchmarkMachineHotPath/sparse-trap", MinNsPerOp: 100},
	}

	ok := []benchStat{
		{Name: "BenchmarkMachineHotPath/dense-trap", MinNsPerOp: 1000 * nsCeiling * 0.99},
		{Name: "BenchmarkMachineHotPath/sparse-trap", MinNsPerOp: 90},
		{Name: "BenchmarkMachineHotPath/brand-new", MinNsPerOp: 5e9}, // no baseline: skipped
	}
	if err := gateBenchmarks("BASE.json", base, ok); err != nil {
		t.Fatalf("healthy benchmarks failed the gate: %v", err)
	}

	slow := []benchStat{
		{Name: "BenchmarkMachineHotPath/dense-trap", MinNsPerOp: 1000 * nsCeiling * 1.01},
	}
	if err := gateBenchmarks("BASE.json", base, slow); err == nil {
		t.Error("regression beyond the ceiling passed the gate")
	} else if !strings.Contains(err.Error(), "dense-trap") {
		t.Errorf("error should name the benchmark, got: %v", err)
	}

	for _, bad := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		b := []benchStat{{Name: "x", MinNsPerOp: bad}}
		c := []benchStat{{Name: "x", MinNsPerOp: 100}}
		if err := gateBenchmarks("BASE.json", b, c); err == nil {
			t.Errorf("unusable baseline ns/op %v accepted", bad)
		}
		if err := gateBenchmarks("BASE.json", c, b); err == nil {
			t.Errorf("unusable current ns/op %v accepted", bad)
		}
	}
}

// compareBaseline runs the benchmark gate before the sweep legs.
func TestCompareBaselineGatesBenchmarks(t *testing.T) {
	path := writeBaseline(t, `{
		"benchmarks":[{"name":"BenchmarkMachineHotPath/dense-trap","min_ns_per_op":1000}],
		"sweep":{"points_per_sec":400},
		"sweep_unbatched":{"points_per_sec":250}}`)
	rep := goodReport()
	rep.Benchmarks = []benchStat{{Name: "BenchmarkMachineHotPath/dense-trap", MinNsPerOp: 2000}}
	if err := compareBaseline(path, rep); err == nil {
		t.Error("benchmark regression passed compareBaseline")
	}
	rep.Benchmarks[0].MinNsPerOp = 1100
	if err := compareBaseline(path, rep); err != nil {
		t.Errorf("benchmark within ceiling failed compareBaseline: %v", err)
	}
}

func TestParseRampMemoLine(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("suitsweep: 1200 jobs (1200 unique), 1200 ran, 0 memo + 0 disk hits (0.0% hit rate), 590.4 jobs/s\n")
	buf.WriteString("suitsweep: rampmemo pair_hits=25 pair_misses=75 pair_evictions=3 pow_hits=40 pow_misses=160 pow_evictions=9\n")
	st := parseRampMemoLine(&buf)
	if st == nil {
		t.Fatal("telemetry line not parsed")
	}
	if st.PairHits != 25 || st.PairMisses != 75 || st.PairEvictions != 3 ||
		st.PowHits != 40 || st.PowMisses != 160 || st.PowEvictions != 9 {
		t.Fatalf("counters wrong: %+v", st)
	}
	if st.PairHitRate != 0.25 || st.PowHitRate != 0.2 {
		t.Fatalf("hit rates wrong: %+v", st)
	}

	var empty bytes.Buffer
	empty.WriteString("suitsweep: 10 jobs\n")
	if parseRampMemoLine(&empty) != nil {
		t.Error("absent telemetry line should yield nil, not a zero struct")
	}
}
