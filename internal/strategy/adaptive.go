package strategy

import (
	"suit/internal/cpu"
	"suit/internal/isa"
	"suit/internal/units"
)

// Adaptive is a self-tuning variant of fV that replaces the fixed Table 7
// deadline with an exponentially weighted estimate of the workload's
// inter-exception gap. The paper observes that a single parameter set
// works across workloads because the tolerance band is wide (§6.4);
// Adaptive explores the obvious next step — let the OS learn the band per
// workload instead of shipping constants.
//
// Policy: the deadline is Alpha × EWMA(gap between consecutive #DO
// exceptions), clamped to [MinDeadline, MaxDeadline]. Short observed gaps
// (a thrashing workload) stretch the deadline exactly like the static
// thrashing prevention, but proportionally; long gaps (sparse bursts)
// shrink it toward MinDeadline, returning to the efficient curve sooner
// than the fixed p_dl would.
type Adaptive struct {
	// Alpha scales the gap estimate into a deadline (default 0.5).
	Alpha float64
	// Smoothing is the EWMA weight of the newest gap (default 0.25).
	Smoothing float64
	// MinDeadline/MaxDeadline clamp the result (defaults 10 µs / 2 ms).
	MinDeadline units.Second
	MaxDeadline units.Second

	// per-domain learning state; Adaptive must be used by pointer so the
	// state persists across handler invocations.
	lastException []units.Second
	ewmaGap       []units.Second
}

// Name implements cpu.Strategy.
func (*Adaptive) Name() string { return "adaptive" }

func (a *Adaptive) defaults() {
	if a.Alpha == 0 {
		a.Alpha = 0.5
	}
	if a.Smoothing == 0 {
		a.Smoothing = 0.25
	}
	if a.MinDeadline == 0 {
		a.MinDeadline = units.Microseconds(10)
	}
	if a.MaxDeadline == 0 {
		a.MaxDeadline = units.Milliseconds(2)
	}
}

// Init implements cpu.Strategy.
func (a *Adaptive) Init(ctl cpu.Controller) {
	a.defaults()
	n := ctl.Domains()
	a.lastException = make([]units.Second, n)
	a.ewmaGap = make([]units.Second, n)
	for d := 0; d < n; d++ {
		a.lastException[d] = -1
		ctl.DisableInstructions(d)
		ctl.RequestAsync(d, cpu.ModeE)
	}
}

// deadline computes the current deadline for a domain.
func (a *Adaptive) deadline(domain int) units.Second {
	d := units.Second(a.Alpha) * a.ewmaGap[domain]
	if d < a.MinDeadline {
		d = a.MinDeadline
	}
	if d > a.MaxDeadline {
		d = a.MaxDeadline
	}
	return d
}

// OnDisabledOpcode implements cpu.Strategy.
func (a *Adaptive) OnDisabledOpcode(ctl cpu.Controller, domain, core int, op isa.Opcode) {
	now := ctl.Now()
	if a.lastException[domain] >= 0 {
		gap := now - a.lastException[domain]
		if a.ewmaGap[domain] == 0 {
			a.ewmaGap[domain] = gap
		} else {
			s := units.Second(a.Smoothing)
			a.ewmaGap[domain] = s*gap + (1-s)*a.ewmaGap[domain]
		}
	}
	a.lastException[domain] = now

	ctl.RequestWait(domain, cpu.ModeCf)
	ctl.RequestAsync(domain, cpu.ModeCv)
	ctl.EnableInstructions(domain)
	ctl.ArmDeadline(domain, a.deadline(domain))
}

// OnDeadline implements cpu.Strategy.
func (a *Adaptive) OnDeadline(ctl cpu.Controller, domain int) {
	ctl.DisableInstructions(domain)
	ctl.RequestAsync(domain, cpu.ModeE)
}
