// Package exhaustive enforces that switches over the simulator's
// enum-like types handle every declared constant. The SUIT model grows
// by adding strategy kinds, event kinds and DVFS domains; a switch that
// silently falls through for a new constant mis-simulates instead of
// failing loudly, so each listed enum must either be covered completely
// or carry an explicit default that panics.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"suit/internal/analysis"
)

// enums lists the guarded types as (package-path suffix, type name).
// Unexported types (cpu.evKind) can only be switched on inside their
// own package, which is exactly where the analyzer sees them.
var enums = []struct{ pkg, name string }{
	{"internal/dvfs", "CurveID"},
	{"internal/dvfs", "DomainKind"},
	{"internal/isa", "FUKind"},
	{"internal/cpu", "evKind"},
	{"internal/core", "StrategyKind"},
}

// Analyzer flags non-exhaustive switches over the listed enum types.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "switches on dvfs.CurveID, dvfs.DomainKind, isa.FUKind, cpu.evKind and " +
		"core.StrategyKind must cover every declared constant or panic in an explicit default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := guardedEnum(pass, sw.Tag)
			if named == nil {
				return true
			}
			checkSwitch(pass, sw, named)
			return true
		})
	}
	return nil
}

// guardedEnum returns the named type of tag if it is one of the guarded
// enums, else nil.
func guardedEnum(pass *analysis.Pass, tag ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	for _, e := range enums {
		if named.Obj().Name() == e.name &&
			analysis.PkgPathMatches(named.Obj().Pkg().Path(), []string{e.pkg}) {
			return named
		}
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named) {
	members := enumMembers(named)
	if len(members) == 0 {
		return
	}
	covered := make(map[string]bool, len(members))
	hasPanickingDefault := false
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil { // default:
			if bodyPanics(pass, cc.Body) {
				hasPanickingDefault = true
			}
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				continue // non-constant case; cannot prove coverage
			}
			for _, m := range members {
				if constant.Compare(m.Val(), token.EQL, tv.Value) {
					covered[m.Name()] = true
				}
			}
		}
	}
	if hasPanickingDefault {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m.Name()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil && pkg != pass.Pkg {
		typeName = pkg.Name() + "." + typeName
	}
	pass.Reportf(sw.Pos(),
		"switch on %s is missing cases %s; cover every constant or add a panicking default",
		typeName, strings.Join(missing, ", "))
}

// enumMembers returns the package-level constants declared with exactly
// the named type, in declaration order.
func enumMembers(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Pos() < members[j].Pos() })
	return members
}

// bodyPanics reports whether the statement list contains a call to the
// panic builtin (directly or nested, e.g. inside a fmt.Sprintf arg).
func bodyPanics(pass *analysis.Pass, body []ast.Stmt) bool {
	found := false
	for _, st := range body {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					found = true
				}
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}
