// Package units defines the physical quantities shared across the SUIT
// simulator: voltage, frequency, power, energy and time. All are float64
// base-SI named types; helper constructors and formatters keep call sites
// readable (e.g. units.MilliVolts(-97), units.GHz(4.7)).
package units

import (
	"fmt"
	"time"
)

// Volt is an electric potential in volts.
type Volt float64

// MilliVolts constructs a Volt from millivolts.
func MilliVolts(mv float64) Volt { return Volt(mv / 1000) }

// MilliVolts reports the value in millivolts.
func (v Volt) MilliVolts() float64 { return float64(v) * 1000 }

// String implements fmt.Stringer.
func (v Volt) String() string { return fmt.Sprintf("%.0f mV", v.MilliVolts()) }

// Hertz is a frequency in hertz.
type Hertz float64

// GHz constructs a Hertz from gigahertz.
func GHz(g float64) Hertz { return Hertz(g * 1e9) }

// MHz constructs a Hertz from megahertz.
func MHz(m float64) Hertz { return Hertz(m * 1e6) }

// GHz reports the value in gigahertz.
func (f Hertz) GHz() float64 { return float64(f) / 1e9 }

// String implements fmt.Stringer.
func (f Hertz) String() string { return fmt.Sprintf("%.2f GHz", f.GHz()) }

// Watt is a power in watts.
type Watt float64

// String implements fmt.Stringer.
func (w Watt) String() string { return fmt.Sprintf("%.2f W", float64(w)) }

// Joule is an energy in joules.
type Joule float64

// String implements fmt.Stringer.
func (j Joule) String() string { return fmt.Sprintf("%.3f J", float64(j)) }

// Second is a duration in seconds. The simulator uses float64 seconds
// rather than time.Duration because simulated spans range from tens of
// nanoseconds (exception entry) to minutes (benchmark runs) and arithmetic
// with rates (cycles = seconds × hertz) is pervasive.
type Second float64

// Microseconds constructs a Second from microseconds.
func Microseconds(us float64) Second { return Second(us * 1e-6) }

// Milliseconds constructs a Second from milliseconds.
func Milliseconds(ms float64) Second { return Second(ms * 1e-3) }

// Microseconds reports the value in microseconds.
func (s Second) Microseconds() float64 { return float64(s) * 1e6 }

// Duration converts to time.Duration (nanosecond resolution, saturating).
func (s Second) Duration() time.Duration {
	ns := float64(s) * 1e9
	switch {
	case ns > float64(1<<63-1):
		return time.Duration(1<<63 - 1)
	case ns < -float64(1<<63-1):
		return -time.Duration(1<<63 - 1)
	}
	return time.Duration(ns)
}

// FromDuration converts a time.Duration to Second.
func FromDuration(d time.Duration) Second { return Second(d.Seconds()) }

// String implements fmt.Stringer.
func (s Second) String() string {
	switch abs := max(float64(s), -float64(s)); {
	case abs >= 1:
		return fmt.Sprintf("%.3f s", float64(s))
	case abs >= 1e-3:
		return fmt.Sprintf("%.3f ms", float64(s)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3f µs", float64(s)*1e6)
	default:
		return fmt.Sprintf("%.1f ns", float64(s)*1e9)
	}
}

// Celsius is a temperature in degrees Celsius.
type Celsius float64

// String implements fmt.Stringer.
func (c Celsius) String() string { return fmt.Sprintf("%.1f °C", float64(c)) }

// Energy returns power × time.
func Energy(p Watt, dt Second) Joule { return Joule(float64(p) * float64(dt)) }

// Power returns energy ÷ time.
func Power(e Joule, dt Second) Watt { return Watt(float64(e) / float64(dt)) }

// Cycles returns the number of clock cycles elapsed in dt at frequency f.
func Cycles(f Hertz, dt Second) float64 { return float64(f) * float64(dt) }

// TimeFor returns the duration of n cycles at frequency f.
func TimeFor(n float64, f Hertz) Second { return Second(n / float64(f)) }
