package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"suit/internal/engine"
	"suit/internal/workload"
)

// Fingerprint returns the canonical description of the scenario used as
// the engine's memoization key and as the input to deterministic seed
// derivation. Two scenarios with equal fingerprints produce equal
// outcomes, so the fingerprint must cover every field that influences the
// simulation — including a zero Seed, which marks the scenario as wanting
// an engine-derived seed.
func (s Scenario) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chip=%s|kind=%s|cores=%d|bench=%s", s.Chip.Name, s.Kind, s.Cores, benchFingerprint(s.Bench))
	for _, cb := range s.CoBenches {
		fmt.Fprintf(&b, "|co=%s", benchFingerprint(cb))
	}
	fmt.Fprintf(&b, "|aging=%t|instr=%d|seed=%d|timeline=%t|sample=%g",
		s.SpendAging, s.Instructions, s.Seed, s.RecordTimeline, float64(s.SampleEvery))
	if s.Params != nil {
		p := s.Params
		fmt.Fprintf(&b, "|params=%g/%g/%d/%g",
			float64(p.Deadline), float64(p.TimeSpan), p.MaxExceptions, p.DeadlineFactor)
	}
	return b.String()
}

// benchFingerprint canonicalises a benchmark. Named workloads from the
// registry are fully determined by their name, but ad-hoc benchmarks
// (synthetic traces in tests and ablations) may reuse names, so the
// arrival-model parameters are spelled out. The NoSIMD map is emitted in
// fixed family order — never by map iteration.
func benchFingerprint(b workload.Benchmark) string {
	return fmt.Sprintf("%s/%d/%g/%g/%g/%g/%d/%g/%g/%d/%d/%t/%g/%g",
		b.Name, b.Suite, b.IPC, b.IMULFraction,
		b.BurstEvery, b.BurstLen, b.BurstIntraGap, b.BurstSigma, b.PoissonGap,
		b.BurstOp, b.DiffuseOp, b.TEE,
		b.NoSIMD[workload.Intel], b.NoSIMD[workload.AMD])
}

// RunJob adapts Run to the engine's job signature: scenarios with an
// explicit Seed keep it; a zero Seed takes the engine-derived one (hash
// of fingerprint + base seed), giving every sweep point its own
// deterministic stream. The simulator itself is not context-aware, so a
// cancelled job finishes its current simulation before the worker
// returns; the engine's watchdog handles a genuinely hung one.
// Exported so callers that need their own engine instance — the suitd
// service keeps one with its own cache and stats — run scenarios
// exactly like the process-wide engine does.
func RunJob(_ context.Context, sc Scenario, seed uint64) (Outcome, error) {
	if sc.Seed == 0 {
		sc.Seed = seed
	}
	return Run(sc)
}

var (
	engMu      sync.Mutex
	sharedEng  *engine.Engine[Scenario, Outcome]
	sharedOpts engine.Options
	sharedCtx  context.Context
)

// SetEngineOptions replaces the process-wide evaluation engine (worker
// count, base seed, disk cache, progress writer). Call it once at
// startup, before the first RunAll; the in-memory memo of the previous
// engine is discarded.
func SetEngineOptions(o engine.Options) {
	engMu.Lock()
	defer engMu.Unlock()
	sharedOpts = o
	sharedEng = engine.New(Scenario.Fingerprint, RunJob, o)
}

func getEngine() *engine.Engine[Scenario, Outcome] {
	engMu.Lock()
	defer engMu.Unlock()
	if sharedEng == nil {
		sharedEng = engine.New(Scenario.Fingerprint, RunJob, sharedOpts)
	}
	return sharedEng
}

// SetRunContext installs the context every subsequent RunAll runs
// under, letting commands tie sweeps to signal handling: cancelling it
// (e.g. on SIGINT) stops dispatch, flushes the checkpoint journal
// through the engine's per-job records, and returns partial results
// plus the context error. nil restores context.Background().
func SetRunContext(ctx context.Context) {
	engMu.Lock()
	defer engMu.Unlock()
	sharedCtx = ctx
}

func runContext() context.Context {
	engMu.Lock()
	defer engMu.Unlock()
	if sharedCtx == nil {
		return context.Background()
	}
	return sharedCtx
}

// RunAll evaluates the scenarios through the shared parallel engine and
// returns outcomes in scenario order. Results are memoized by
// fingerprint for the life of the process (and on disk when configured),
// and are identical at any worker count. Under the engine's Collect
// policy a *engine.RunError comes back alongside the partial outcomes
// (failed scenarios hold the zero Outcome); callers that aggregate must
// treat any error as disqualifying the affected outcomes.
func RunAll(scs []Scenario) ([]Outcome, error) {
	return getEngine().Run(runContext(), scs)
}

// EngineStats reports the shared engine's cumulative job and cache-hit
// accounting.
func EngineStats() engine.Stats {
	return getEngine().Stats()
}
