package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPPlanDecideDeterministic: the fault decision is a pure
// function of (key, seed) — stable across calls, sensitive to both.
func TestHTTPPlanDecideDeterministic(t *testing.T) {
	p := HTTPPlan{Seed: 7, Rate: 0.5}
	keys := []string{"POST /v1/work/claim aabbccdd", "POST /v1/work/l1/result 11223344", "GET /healthz 00000000"}
	for _, k := range keys {
		first := p.Decide(k)
		for i := 0; i < 10; i++ {
			if got := p.Decide(k); got != first {
				t.Fatalf("Decide(%q) flapped: %v then %v", k, first, got)
			}
		}
	}
	if p.Rate = 0; p.Decide(keys[0]) != HTTPNone {
		t.Error("rate 0 must never fault")
	}
	p.Rate = 1
	for _, k := range keys {
		if p.Decide(k) == HTTPNone {
			t.Errorf("rate 1 left %q unfaulted", k)
		}
	}
	// Different seeds choose different fault sets (overwhelmingly likely
	// across three keys and five kinds).
	q := HTTPPlan{Seed: 8, Rate: 1}
	same := true
	for _, k := range keys {
		if p.Decide(k) != q.Decide(k) {
			same = false
		}
	}
	if same {
		t.Error("seeds 7 and 8 picked identical faults for every key")
	}
}

// newEchoServer returns a server that counts requests and echoes a
// fixed JSON body.
func newEchoServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func post(t *testing.T, client *http.Client, url, body string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(body)), nil
	}
	return client.Do(req)
}

// TestTransportDrop: the request never reaches the server and the
// caller sees the injected transport error.
func TestTransportDrop(t *testing.T) {
	srv, hits := newEchoServer(t, `{"ok":true}`)
	tr := NewTransport(HTTPPlan{Rate: 1, Kinds: []HTTPKind{HTTPDrop}, Times: -1}, nil)
	_, err := post(t, &http.Client{Transport: tr}, srv.URL+"/v1/x", `{"a":1}`)
	if err == nil || !strings.Contains(err.Error(), "request dropped") {
		t.Fatalf("err = %v, want the injected drop", err)
	}
	if hits.Load() != 0 {
		t.Errorf("server saw %d requests, want 0", hits.Load())
	}
	if st := tr.Stats(); st.Drops != 1 {
		t.Errorf("Stats.Drops = %d, want 1", st.Drops)
	}
}

// TestTransportErr500: the request reaches the server (its effect
// happens) but the caller sees a 500 — the ack-lost fault that forces
// at-least-once delivery.
func TestTransportErr500(t *testing.T) {
	srv, hits := newEchoServer(t, `{"ok":true}`)
	tr := NewTransport(HTTPPlan{Rate: 1, Kinds: []HTTPKind{HTTPErr500}, Times: -1}, nil)
	resp, err := post(t, &http.Client{Transport: tr}, srv.URL+"/v1/x", `{"a":1}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want 1 (the effect must happen)", hits.Load())
	}
}

// TestTransportTruncate: the body is torn below Content-Length so the
// reader hits unexpected EOF.
func TestTransportTruncate(t *testing.T) {
	srv, _ := newEchoServer(t, `{"padding":"0123456789012345678901234567890123456789"}`)
	tr := NewTransport(HTTPPlan{Rate: 1, Kinds: []HTTPKind{HTTPTruncate}, Times: -1}, nil)
	resp, err := post(t, &http.Client{Transport: tr}, srv.URL+"/v1/x", `{"a":1}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading torn body: err = %v, want unexpected EOF", err)
	}
}

// TestTransportDup: the server processes the request twice; the caller
// sees one clean response.
func TestTransportDup(t *testing.T) {
	srv, hits := newEchoServer(t, `{"ok":true}`)
	tr := NewTransport(HTTPPlan{Rate: 1, Kinds: []HTTPKind{HTTPDup}, Times: -1}, nil)
	resp, err := post(t, &http.Client{Transport: tr}, srv.URL+"/v1/x", `{"a":1}`)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok":true`)) {
		t.Fatalf("dup response = %d %q, want a clean 200", resp.StatusCode, body)
	}
	if hits.Load() != 2 {
		t.Errorf("server saw %d requests, want 2", hits.Load())
	}
}

// TestTransportDelay: the request is delivered after the pause.
func TestTransportDelay(t *testing.T) {
	srv, hits := newEchoServer(t, `{"ok":true}`)
	tr := NewTransport(HTTPPlan{Rate: 1, Kinds: []HTTPKind{HTTPDelay}, Times: -1, Delay: 20 * time.Millisecond}, nil)
	start := time.Now()
	resp, err := post(t, &http.Client{Transport: tr}, srv.URL+"/v1/x", `{"a":1}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("delivered after %s, want >= the 20ms injected delay", elapsed)
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want 1", hits.Load())
	}
}

// TestTransportTimesBound: after Times faulted deliveries a request key
// passes through clean — the guarantee that retried requests terminate.
func TestTransportTimesBound(t *testing.T) {
	srv, hits := newEchoServer(t, `{"ok":true}`)
	tr := NewTransport(HTTPPlan{Rate: 1, Kinds: []HTTPKind{HTTPDrop}, Times: 2}, nil)
	client := &http.Client{Transport: tr}
	for i := 0; i < 2; i++ {
		if _, err := post(t, client, srv.URL+"/v1/x", `{"a":1}`); err == nil {
			t.Fatalf("attempt %d was not dropped", i+1)
		}
	}
	resp, err := post(t, client, srv.URL+"/v1/x", `{"a":1}`)
	if err != nil {
		t.Fatalf("attempt 3 should pass clean: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want exactly the clean one", hits.Load())
	}
	// A different body is a different logical request with its own
	// budget.
	if _, err := post(t, client, srv.URL+"/v1/x", `{"a":2}`); err == nil {
		t.Error("fresh request key was not dropped")
	}
}
