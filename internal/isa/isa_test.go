package isa

import (
	"testing"
	"testing/quick"
)

func TestLookupAllOpcodes(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		info := Lookup(op)
		if info.Op != op {
			t.Errorf("Lookup(%v).Op = %v, want %v", op, info.Op, op)
		}
		if info.Name == "" {
			t.Errorf("Lookup(%v) has empty name", op)
		}
		if info.Latency <= 0 {
			t.Errorf("%v has non-positive latency %d", op, info.Latency)
		}
	}
}

func TestLookupPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup(9999) did not panic")
		}
	}()
	Lookup(Opcode(9999))
}

func TestByNameRoundTrip(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		got, ok := ByName(op.String())
		if !ok {
			t.Errorf("ByName(%q) not found", op.String())
			continue
		}
		if got != op {
			t.Errorf("ByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, ok := ByName("BOGUS"); ok {
		t.Error("ByName(BOGUS) unexpectedly found")
	}
}

func TestTable1OrderMatchesPaper(t *testing.T) {
	// Table 1: IMUL 79, VOR 47, AESENC 40, VXOR 40, VANDN 30, VAND 28,
	// VSQRTPD 24, VPCLMULQDQ 16, VPSRAD 9, VPCMP 5, VPMAX 3, VPADDQ 1.
	want := []struct {
		name  string
		count int
	}{
		{"IMUL", 79}, {"VOR", 47}, {"AESENC", 40}, {"VXOR", 40},
		{"VANDN", 30}, {"VAND", 28}, {"VSQRTPD", 24}, {"VPCLMULQDQ", 16},
		{"VPSRAD", 9}, {"VPCMP", 5}, {"VPMAX", 3}, {"VPADDQ", 1},
	}
	got := Table1()
	if len(got) != len(want) {
		t.Fatalf("Table1() has %d rows, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w.name || got[i].FaultCount != w.count {
			t.Errorf("Table1()[%d] = %s/%d, want %s/%d",
				i, got[i].Name, got[i].FaultCount, w.name, w.count)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].FaultCount > got[i-1].FaultCount {
			t.Errorf("Table1 not sorted by fault count at %d: %d > %d",
				i, got[i].FaultCount, got[i-1].FaultCount)
		}
	}
}

func TestFaultableSetExcludesIMUL(t *testing.T) {
	fs := Faultable()
	if len(fs) != 11 {
		t.Fatalf("len(Faultable()) = %d, want 11", len(fs))
	}
	for _, op := range fs {
		if op == OpIMUL {
			t.Error("Faultable() contains IMUL; IMUL is hardened, not trapped")
		}
		if !op.IsFaultable() {
			t.Errorf("%v in Faultable() but IsFaultable() is false", op)
		}
	}
	if OpIMUL.IsFaultable() {
		t.Error("IMUL.IsFaultable() = true, want false (ClassHardened)")
	}
	if OpIMUL.Class() != ClassHardened {
		t.Errorf("IMUL class = %v, want hardened", OpIMUL.Class())
	}
}

func TestSIMDFlags(t *testing.T) {
	// §5.8: all Table 1 instructions except IMUL and AESENC are SIMD...
	// but the paper treats recompilation as removing AESENC too (AES-NI
	// needs -maes); our model marks AESENC SIMD for the noSIMD build.
	if OpIMUL.IsSIMD() {
		t.Error("IMUL marked SIMD")
	}
	if !OpVOR.IsSIMD() || !OpVPADDQ.IsSIMD() {
		t.Error("vector ops must be SIMD")
	}
	if OpALU.IsSIMD() || OpLoad.IsSIMD() {
		t.Error("background scalar ops must not be SIMD")
	}
}

func TestFaultableMaskCoversExactlyFaultableSet(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		want := op.IsFaultable()
		if got := FaultableMask.Has(op); got != want {
			t.Errorf("FaultableMask.Has(%v) = %t, want %t", op, got, want)
		}
	}
	if FaultableMask.Count() != len(Faultable()) {
		t.Errorf("mask count %d != faultable set size %d",
			FaultableMask.Count(), len(Faultable()))
	}
}

func TestDisableMaskAlgebra(t *testing.T) {
	m := MaskOf(OpVOR, OpAESENC)
	if !m.Has(OpVOR) || !m.Has(OpAESENC) || m.Has(OpVXOR) {
		t.Errorf("MaskOf membership wrong: %b", m)
	}
	m2 := m.With(OpVXOR)
	if !m2.Has(OpVXOR) || m2.Count() != 3 {
		t.Errorf("With failed: %b count %d", m2, m2.Count())
	}
	m3 := m2.Without(OpAESENC)
	if m3.Has(OpAESENC) || m3.Count() != 2 {
		t.Errorf("Without failed: %b", m3)
	}
	// Without on absent opcode is a no-op.
	if m3.Without(OpAESENC) != m3 {
		t.Error("Without on absent opcode changed mask")
	}
}

func TestDisableMaskProperties(t *testing.T) {
	inRange := func(raw uint16) Opcode { return Opcode(int(raw) % NumOpcodes) }
	// With then Has is always true; Without then Has is always false.
	prop := func(rawA, rawB uint16, seed uint32) bool {
		a, b := inRange(rawA), inRange(rawB)
		m := DisableMask(seed) & (1<<Opcode(NumOpcodes) - 1)
		if !m.With(a).Has(a) {
			return false
		}
		if m.Without(b).Has(b) {
			return false
		}
		// With is idempotent.
		return m.With(a).With(a) == m.With(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassBackground: "background",
		ClassHardened:   "hardened",
		ClassFaultable:  "faultable",
		Class(99):       "Class(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestFUKindString(t *testing.T) {
	seen := map[string]bool{}
	for f := FUALU; int(f) < NumFUKinds; f++ {
		s := f.String()
		if s == "" || seen[s] {
			t.Errorf("FUKind %d has empty or duplicate name %q", f, s)
		}
		seen[s] = true
	}
	if got := FUKind(200).String(); got != "FUKind(200)" {
		t.Errorf("unknown FUKind string = %q", got)
	}
}

func TestOpcodeStringOutOfRange(t *testing.T) {
	if got := Opcode(5000).String(); got != "Opcode(5000)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestIMULPipelined(t *testing.T) {
	// §4.2: IMUL is fully pipelined, latency 3, throughput 1/cycle.
	info := Lookup(OpIMUL)
	if !info.Pipelined || info.Latency != 3 {
		t.Errorf("IMUL latency=%d pipelined=%t, want 3/true", info.Latency, info.Pipelined)
	}
}
