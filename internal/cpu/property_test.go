package cpu

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"suit/internal/dvfs"
	"suit/internal/isa"
	"suit/internal/trace"
	"suit/internal/units"
)

// TestRandomTracesNeverFaultUnderSUIT is the repository's core safety
// property: whatever the faultable-instruction pattern, a SUIT machine
// under the fV policy completes the stream with zero silent faults and a
// well-formed result.
func TestRandomTracesNeverFaultUnderSUIT(t *testing.T) {
	faultable := isa.Faultable()
	chips := []dvfs.Chip{dvfs.IntelI9_9900K(), dvfs.XeonSilver4208(), dvfs.AMDRyzen7700X()}
	prop := func(seed uint64, nEvents uint8, chipPick uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		total := uint64(20_000_000 + rng.Uint64N(80_000_000))
		tr := &trace.Trace{Name: "random", Total: total, IPC: 0.5 + rng.Float64()*2}
		idx := uint64(0)
		for i := 0; i < int(nEvents); i++ {
			// Gap distribution spanning the interesting regimes: from
			// back-to-back to millions of instructions.
			idx += 1 + rng.Uint64N(1<<(5+rng.Uint64N(18)))
			if idx >= total {
				break
			}
			tr.Events = append(tr.Events, trace.Event{
				Index: idx, Op: faultable[rng.IntN(len(faultable))],
			})
		}
		cfg := testConfig(tr)
		cfg.Chip = chips[int(chipPick)%len(chips)]
		res, err := New(cfg, fvLite{deadline: units.Microseconds(30)})
		if err != nil {
			return false
		}
		out, err := res.Run()
		if err != nil {
			return false
		}
		if len(out.Faults) != 0 {
			t.Logf("seed %d: %d faults, first %+v", seed, len(out.Faults), out.Faults[0])
			return false
		}
		// Structural sanity: everything committed, time sane, energy
		// positive, residencies sum to the duration.
		if out.Instructions != tr.Total || out.Duration <= 0 || out.Energy <= 0 {
			return false
		}
		var resSum units.Second
		for _, r := range out.Residency {
			resSum += r
		}
		rel := float64((resSum - out.Duration) / out.Duration)
		return rel < 1e-6 && rel > -1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMachineMatchesProbePlan cross-validates the machine's transition
// handling against the standalone dvfs transition planner: a single trap
// must engage the conservative curve no earlier than the planner's
// frequency delay and enable no later than its safe point plus the
// exception cost.
func TestMachineMatchesProbePlan(t *testing.T) {
	chip := dvfs.XeonSilver4208()
	tr := testTrace(400_000_000, 2, 200_000_000)
	cfg := testConfig(tr)
	cfg.Chip = chip
	cfg.RecordTimeline = true
	res := runWith(t, cfg, fvLite{deadline: units.Microseconds(30)})
	if len(res.Timeline) < 3 {
		t.Fatalf("timeline too short: %v", res.Timeline)
	}
	// Timeline: [E(init), Cf, Cv, E]. The Cf→Cv request happens one
	// jittered FreqDelay after the trap (RequestWait for the frequency).
	cfT := res.Timeline[1].T
	cvT := res.Timeline[2].T
	gap := cvT - cfT
	m := chip.Transition
	lo := m.FreqDelay - 4*m.FreqDelaySigma
	hi := m.FreqDelay + 4*m.FreqDelaySigma
	if gap < lo || gap > hi {
		t.Errorf("Cf→Cv handler gap = %v, want ≈FreqDelay %v (the wait)", gap, m.FreqDelay)
	}
	// The deadline-driven return to E comes after the deadline at least.
	eT := res.Timeline[3].T
	if eT-cvT < units.Microseconds(30)-units.Microseconds(1) {
		t.Errorf("returned to E after %v, before the deadline", eT-cvT)
	}
}
