package core

import (
	"fmt"
	"strings"

	"suit/internal/dvfs"
	"suit/internal/strategy"
	"suit/internal/units"
	"suit/internal/workload"
)

// knownChips maps the CLI chip letters to chip models, in flag-help
// order. Shared by suitsweep's -chip flag and the suitd spec decoder so
// the two front ends can never drift apart on what "chip C" means.
var knownChips = []struct {
	letter string
	chip   func() dvfs.Chip
}{
	{"A", dvfs.IntelI9_9900K},
	{"B", dvfs.AMDRyzen7700X},
	{"C", dvfs.XeonSilver4208},
}

// ChipLetters lists the accepted chip names in canonical order.
func ChipLetters() []string {
	letters := make([]string, len(knownChips))
	for i, k := range knownChips {
		letters[i] = k.letter
	}
	return letters
}

// ChipByName resolves a chip letter, case-insensitively.
func ChipByName(name string) (dvfs.Chip, error) {
	for _, k := range knownChips {
		if strings.EqualFold(name, k.letter) {
			return k.chip(), nil
		}
	}
	return dvfs.Chip{}, fmt.Errorf("unknown chip %q (known: %s)", name, strings.Join(ChipLetters(), ", "))
}

// SweepGrid builds the Table 7 search region for a chip: the full
// deadline × time-span × exception-count × deadline-factor cross
// product behind "we ran hundreds of simulations". CPU ℬ's slow
// switching gets a coarser, longer-deadline grid.
func SweepGrid(chip dvfs.Chip) []strategy.Params {
	deadlines := []float64{10, 20, 30, 50, 80} // µs
	spans := []float64{150, 450, 900}          // µs
	if chip.Transition.FreqDelay > units.Microseconds(100) {
		deadlines = []float64{300, 500, 700, 1000, 1500}
		spans = []float64{7000, 14000, 28000}
	}
	counts := []int{2, 3, 4, 6}
	factors := []float64{4, 9, 14, 20}

	var grid []strategy.Params
	for _, dl := range deadlines {
		for _, ts := range spans {
			for _, ec := range counts {
				for _, df := range factors {
					grid = append(grid, strategy.Params{
						Deadline:       units.Microseconds(dl),
						TimeSpan:       units.Microseconds(ts),
						MaxExceptions:  ec,
						DeadlineFactor: df,
					})
				}
			}
		}
	}
	return grid
}

// SweepBenchNames is the representative workload mix of the parameter
// sweep: sparse, medium, dense, bursty.
var SweepBenchNames = []string{"557.xz", "502.gcc", "527.cam4", "525.x264", "VLC"}

// SweepBenches resolves the default sweep workload mix.
func SweepBenches() ([]workload.Benchmark, error) {
	return BenchesByName(SweepBenchNames)
}

// BenchesByName resolves a list of workload registry names, failing on
// the first unknown one.
func BenchesByName(names []string) ([]workload.Benchmark, error) {
	benches := make([]workload.Benchmark, 0, len(names))
	for _, n := range names {
		b, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", n)
		}
		benches = append(benches, b)
	}
	return benches, nil
}
