// Package load type-checks packages for analysis without
// golang.org/x/tools/go/packages: it shells out to `go list -export
// -deps -json` for the build plan, parses each target package's
// sources, and type-checks them against the compiler export data the
// list step just produced. That keeps the loader correct under modules,
// build tags and cgo exclusions — the go command decides what is in a
// package — while needing nothing beyond the standard library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"suit/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// Packages loads and type-checks every package matching patterns
// (relative to dir; empty dir means the current directory). Only
// non-dependency packages are returned for analysis; dependencies
// contribute export data.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Export,DepOnly,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*analysis.Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 || len(t.CgoFiles) > 0 {
			continue // test-only directory, or cgo (not analyzed)
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		conf := types.Config{
			Importer:  imp,
			GoVersion: goVersion(t),
		}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &analysis.Package{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

func goVersion(p listPackage) string {
	if p.Module != nil && p.Module.GoVersion != "" {
		return "go" + strings.TrimPrefix(p.Module.GoVersion, "go")
	}
	return ""
}
