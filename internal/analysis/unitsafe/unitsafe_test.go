package unitsafe_test

import (
	"testing"

	"suit/internal/analysis/analysistest"
	"suit/internal/analysis/unitsafe"
)

func TestUnits(t *testing.T) {
	analysistest.Run(t, "testdata", unitsafe.Analyzer,
		"suit/internal/model", "suit/internal/units")
}
