package cpu

import (
	"errors"
	"fmt"
)

// Batch co-steps K independent machines over a shared event stream.
// The members are typically K parameter points of one sweep scenario
// built against the same immutable traces (internal/core's trace
// artifacts): the instruction streams are identical and only the
// per-domain voltage/margin/strategy state diverges. Interleaving the
// members by simulated time keeps the shared trace segment all of them
// are currently walking hot in cache instead of streaming the whole
// trace through once per machine.
//
// Each member's event sequence is exactly what its own Run would
// produce — machines never observe each other, so every Result is
// bit-identical to an unbatched run (asserted by the randomized
// batched-vs-unbatched differential test in batch_test.go).
type Batch struct {
	ms []*Machine
}

// NewBatch builds a batch over the given machines. Machines must not be
// shared between batches or stepped concurrently elsewhere; traces,
// being read-only to the simulator, may be shared freely.
func NewBatch(ms []*Machine) (*Batch, error) {
	if len(ms) == 0 {
		return nil, errors.New("cpu: empty batch")
	}
	for i, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("cpu: batch machine %d is nil", i)
		}
	}
	// Share one ramp memo across members with the same exponent: the
	// co-stepped run/base machines ramp between the same operating
	// points, so one member's segment integrands serve the others'.
	// Legal because Batch.Run steps members sequentially (never
	// concurrently) and the memo is pure — a cached entry is a function
	// of its key bits alone, so cross-member pollution cannot change any
	// result bit (the batched-vs-solo differential test pins this).
	// Built eagerly here (ahead of runInit's lazy construction) so the
	// whole batch allocates the ~100KB tables once.
	if lead := ms[0]; lead.voltExp != 2 && !lead.cfg.NoRampMemo {
		if lead.memo == nil {
			lead.memo = newRampMemo(lead.voltExp)
		}
		for _, m := range ms[1:] {
			if m.memo == nil && m.voltExp == lead.voltExp && !m.cfg.NoRampMemo {
				m.memo = lead.memo
			}
		}
	}
	return &Batch{ms: ms}, nil
}

// Run executes every member to completion and returns their results in
// member order. On error the whole batch is abandoned (partial results
// would not be byte-stable across batch shapes).
func (b *Batch) Run() ([]Result, error) {
	for _, m := range b.ms {
		m.runInit()
	}
	for {
		// Step the laggard: the unfinished machine with the smallest
		// simulated clock (ties broken by member order, so the schedule —
		// though invisible in results — is itself deterministic).
		idx := -1
		for i, m := range b.ms {
			if m.runDone {
				continue
			}
			if idx < 0 || m.now < b.ms[idx].now {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		if err := b.ms[idx].runStep(); err != nil {
			return nil, fmt.Errorf("cpu: batch machine %d: %w", idx, err)
		}
	}
	res := make([]Result, len(b.ms))
	for i, m := range b.ms {
		res[i] = m.finishRun()
	}
	return res, nil
}
