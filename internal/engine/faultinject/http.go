package faultinject

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"suit/internal/engine"
)

// HTTPKind enumerates the injectable transport faults. They mirror what
// a flaky network actually does to a request: lose it, slow it, answer
// with a server error, tear the response body, or deliver it twice.
type HTTPKind int

const (
	// HTTPNone passes the request through untouched.
	HTTPNone HTTPKind = iota
	// HTTPDrop loses the request before it reaches the server: the
	// caller sees a transport error, the server sees nothing.
	HTTPDrop
	// HTTPDelay delivers the request after a pause (bounded by the
	// request context, so cancellation still wins).
	HTTPDelay
	// HTTPErr500 delivers the request — the server processes it — but
	// replaces the response with a 500, like a dying proxy. This is the
	// fault that forces the at-least-once path: the sender must retry a
	// request whose effect already happened.
	HTTPErr500
	// HTTPTruncate delivers the request but tears the response body
	// below its Content-Length, so the reader hits unexpected EOF.
	HTTPTruncate
	// HTTPDup delivers the request twice back-to-back and returns the
	// second response — an at-least-once duplicate without any failure
	// signal to the sender.
	HTTPDup
)

func (k HTTPKind) String() string {
	switch k {
	case HTTPNone:
		return "none"
	case HTTPDrop:
		return "drop"
	case HTTPDelay:
		return "delay"
	case HTTPErr500:
		return "err500"
	case HTTPTruncate:
		return "truncate"
	case HTTPDup:
		return "dup"
	default:
		return fmt.Sprintf("HTTPKind(%d)", int(k))
	}
}

// AllHTTPKinds lists every real fault (everything but HTTPNone), in a
// fixed order chaos tests can sweep.
var AllHTTPKinds = []HTTPKind{HTTPDrop, HTTPDelay, HTTPErr500, HTTPTruncate, HTTPDup}

// HTTPPlan decides which requests fault and how. Like Plan, the choice
// is a pure function of the request fingerprint and the seed — never of
// the wall clock or the global rand source — so a chaos run replays
// bit-for-bit at any concurrency.
type HTTPPlan struct {
	// Seed feeds the per-request fault decision.
	Seed uint64
	// Rate is the fraction of requests faulted (0..1).
	Rate float64
	// Kinds is the fault palette: a faulted request's kind is chosen
	// from this slice, again by hash. Empty defaults to AllHTTPKinds.
	Kinds []HTTPKind
	// Times bounds how many times a given request fingerprint faults
	// before passing through clean; 0 defaults to 2, negative means
	// every time. The bound guarantees chaos runs terminate: a retried
	// request eventually gets through.
	Times int
	// Delay is the HTTPDelay pause. 0 defaults to 5ms.
	Delay time.Duration
}

func (p HTTPPlan) kinds() []HTTPKind {
	if len(p.Kinds) == 0 {
		return AllHTTPKinds
	}
	return p.Kinds
}

func (p HTTPPlan) times() int {
	if p.Times == 0 {
		return 2
	}
	return p.Times
}

func (p HTTPPlan) delay() time.Duration {
	if p.Delay <= 0 {
		return 5 * time.Millisecond
	}
	return p.Delay
}

// Decide returns the fault for a request fingerprint — deterministic,
// order-free, uniform.
func (p HTTPPlan) Decide(key string) HTTPKind {
	if p.Rate <= 0 {
		return HTTPNone
	}
	h := engine.DeriveSeed(p.Seed, "faultinject-http|"+key)
	if float64(h) >= p.Rate*float64(^uint64(0)) {
		return HTTPNone
	}
	kinds := p.kinds()
	pick := engine.DeriveSeed(p.Seed, "faultinject-http-kind|"+key)
	return kinds[pick%uint64(len(kinds))]
}

// ErrInjectedHTTP is the transport error HTTPDrop produces.
var ErrInjectedHTTP = fmt.Errorf("%w: request dropped in transport", ErrInjected)

// HTTPStats counts injected faults by kind.
type HTTPStats struct {
	Requests  int64
	Drops     int64
	Delays    int64
	Err500s   int64
	Truncates int64
	Dups      int64
}

// Transport is a fault-injecting http.RoundTripper: it wraps a real
// transport and applies the plan's fault to each request, keyed by a
// pure hash of (method, path, body) so the same request faults the same
// way in every run regardless of timing or interleaving. Per-key fault
// counts are bounded by Plan.Times, so retried requests eventually get
// through and chaos runs terminate.
type Transport struct {
	Plan HTTPPlan
	// Base is the real transport. Nil defaults to
	// http.DefaultTransport.
	Base http.RoundTripper

	mu       sync.Mutex
	attempts map[string]int
	stats    HTTPStats
}

// NewTransport builds a fault-injecting transport over base.
func NewTransport(plan HTTPPlan, base http.RoundTripper) *Transport {
	return &Transport{Plan: plan, Base: base, attempts: make(map[string]int)}
}

// Stats snapshots the fault counters.
func (t *Transport) Stats() HTTPStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// RequestKey fingerprints a request for the fault decision: method,
// path, and a short hash of the body. Two retries of one logical
// request share a key (and thus a bounded fault budget); two different
// results never collide on faults just because they hit the same URL.
func RequestKey(method, path string, body []byte) string {
	sum := sha256.Sum256(body)
	return method + " " + path + " " + hex.EncodeToString(sum[:4])
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	body, restore, err := snapshotBody(req)
	if err != nil {
		return nil, err
	}
	key := RequestKey(req.Method, req.URL.Path, body)

	t.mu.Lock()
	t.stats.Requests++
	t.attempts[key]++
	attempt := t.attempts[key]
	t.mu.Unlock()

	kind := t.Plan.Decide(key)
	if kind == HTTPNone || (t.Plan.times() >= 0 && attempt > t.Plan.times()) {
		return t.base().RoundTrip(restore(req))
	}

	switch kind {
	case HTTPDrop:
		t.count(func(s *HTTPStats) { s.Drops++ })
		return nil, fmt.Errorf("%w (%s)", ErrInjectedHTTP, key)
	case HTTPDelay:
		t.count(func(s *HTTPStats) { s.Delays++ })
		wd := time.NewTimer(t.Plan.delay()) //lint:allow determinism the injected delay paces delivery only; which requests fault, and how, is decided by the pure request-key hash above
		defer wd.Stop()
		select {
		case <-wd.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base().RoundTrip(restore(req))
	case HTTPErr500:
		// The request must REACH the server — the whole point is that
		// its effect happens and only the acknowledgment is lost.
		t.count(func(s *HTTPStats) { s.Err500s++ })
		resp, err := t.base().RoundTrip(restore(req))
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return syntheticResponse(req, http.StatusInternalServerError, []byte(`{"error":"injected upstream failure"}`)), nil
	case HTTPTruncate:
		resp, err := t.base().RoundTrip(restore(req))
		if err != nil {
			return nil, err
		}
		full, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(full) < 2 {
			return syntheticResponseFrom(resp, full), nil // nothing to tear
		}
		t.count(func(s *HTTPStats) { s.Truncates++ })
		// Deliver half the bytes under the original Content-Length and
		// end the body with unexpected EOF — exactly what net/http
		// surfaces when the connection dies mid-body.
		torn := syntheticResponseFrom(resp, full[:len(full)/2])
		torn.Body = io.NopCloser(&tornReader{r: bytes.NewReader(full[:len(full)/2])})
		torn.ContentLength = int64(len(full))
		torn.Header.Set("Content-Length", strconv.Itoa(len(full)))
		return torn, nil
	case HTTPDup:
		t.count(func(s *HTTPStats) { s.Dups++ })
		first, err := t.base().RoundTrip(restore(req))
		if err == nil {
			io.Copy(io.Discard, first.Body) //nolint:errcheck
			first.Body.Close()
		}
		second := req.Clone(req.Context())
		return t.base().RoundTrip(restore(second))
	default:
		return t.base().RoundTrip(restore(req))
	}
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) count(f func(*HTTPStats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// snapshotBody reads a request's body into memory and returns a restore
// function that re-arms it (and any clone) for an actual send. The
// transport needs the bytes twice: once for the fault-decision key, and
// possibly twice more for a duplicated delivery.
func snapshotBody(req *http.Request) (body []byte, restore func(*http.Request) *http.Request, err error) {
	if req.Body == nil {
		return nil, func(r *http.Request) *http.Request { return r }, nil
	}
	if req.GetBody != nil {
		rc, err := req.GetBody()
		if err != nil {
			return nil, nil, err
		}
		body, err = io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, nil, err
		}
	} else {
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	restore = func(r *http.Request) *http.Request {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
		r.ContentLength = int64(len(body))
		return r
	}
	return body, restore, nil
}

// tornReader yields its bytes and then io.ErrUnexpectedEOF instead of
// a clean EOF, like a response body cut off by a dying connection.
type tornReader struct {
	r io.Reader
}

func (t *tornReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// syntheticResponse fabricates a response for req.
func syntheticResponse(req *http.Request, code int, body []byte) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// syntheticResponseFrom rebuilds resp with a replacement body, keeping
// status and headers.
func syntheticResponseFrom(resp *http.Response, body []byte) *http.Response {
	out := *resp
	out.Body = io.NopCloser(bytes.NewReader(body))
	out.ContentLength = int64(len(body))
	out.Header = resp.Header.Clone()
	return &out
}
