package uarch

import (
	"math/rand/v2"
	"testing"

	"suit/internal/isa"
	"suit/internal/program"
	"suit/internal/trace"
)

func recordedSAD(t *testing.T, macroblocks uint64) *trace.Trace {
	t.Helper()
	tr, err := program.VideoSAD(macroblocks).Record()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimulateTraceValidation(t *testing.T) {
	cfg := DefaultConfig()
	tr := recordedSAD(t, 100)
	if _, err := SimulateTrace(cfg, tr, 0, 0, nil, 1); err == nil {
		t.Error("zero instructions accepted")
	}
	if _, err := SimulateTrace(cfg, tr, tr.Total+5, 100, nil, 1); err == nil {
		t.Error("window beyond the trace accepted")
	}
	bad := cfg
	bad.Width = 0
	if _, err := SimulateTrace(bad, tr, 0, 100, nil, 1); err == nil {
		t.Error("invalid config accepted")
	}
	invalid := &trace.Trace{Total: 10} // IPC 0
	if _, err := SimulateTrace(cfg, invalid, 0, 5, nil, 1); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSimulateTraceDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	tr := recordedSAD(t, 2000)
	a, err := SimulateTrace(cfg, tr, 0, 100_000, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace(cfg, tr, 0, 100_000, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace-driven simulation not deterministic")
	}
}

func TestTraceSlowdownOnIMULDenseProgram(t *testing.T) {
	// VideoSAD has 4 IMULs per ~240-instruction macroblock (≈1.7 %):
	// denser than 525.x264's mix, so the hardened IMUL must cost it a
	// visible slowdown, while the AES-GCM kernel (no IMUL at all) costs
	// exactly nothing.
	cfg := DefaultConfig()
	sad := recordedSAD(t, 2000)
	s, err := TraceSlowdown(cfg, sad, 0, 200_000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.005 {
		t.Errorf("SAD latency-4 slowdown = %.3f%%, want ≥0.5%%", s*100)
	}
	gcm, err := program.AESGCMSeal(200_000).Record()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := TraceSlowdown(cfg, gcm, 0, 200_000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 0 {
		t.Errorf("IMUL-free kernel slowdown = %v, want exactly 0", s2)
	}
}

func TestTraceStreamEmitsEventsAtExactPositions(t *testing.T) {
	tr := &trace.Trace{Name: "x", Total: 100, IPC: 1, Events: []trace.Event{
		{Index: 3, Op: isa.OpAESENC},
		{Index: 4, Op: isa.OpIMUL},
		{Index: 50, Op: isa.OpVOR},
	}}
	sampler, err := newMixSampler(map[isa.Opcode]float64{isa.OpALU: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	st := newTraceStream(tr, 0, sampler)
	var got []isa.Opcode
	for i := 0; i < 60; i++ {
		got = append(got, st.next(rng))
	}
	if got[3] != isa.OpAESENC || got[4] != isa.OpIMUL || got[50] != isa.OpVOR {
		t.Errorf("events misplaced: [3]=%v [4]=%v [50]=%v", got[3], got[4], got[50])
	}
	for i, op := range got {
		if i != 3 && i != 4 && i != 50 && op != isa.OpALU {
			t.Errorf("background at %d = %v", i, op)
		}
	}
	// A window starting mid-trace skips earlier events.
	st2 := newTraceStream(tr, 10, sampler)
	for i := 10; i < 50; i++ {
		st2.next(rng)
	}
	if op := st2.next(rng); op != isa.OpVOR {
		t.Errorf("windowed stream at 50 = %v, want VOR", op)
	}
}
