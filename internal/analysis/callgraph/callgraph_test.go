package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const src = `package p

type T struct{}

func (T) Hit() {}
func (*T) HitPtr() {}

type I interface{ Dyn() }

type impl struct{}

func (impl) Dyn() {}

func helper() {}
func helper2() {}

func direct() {
	helper()
	var t T
	t.Hit()
	(&t).HitPtr()
}

func viaDefer() {
	defer helper()
}

func viaGo() {
	go helper2()
}

func viaIface(i I) {
	i.Dyn()
}

func viaFuncValue(f func()) {
	f()
	g := helper
	g()
}

func viaMethodValue() {
	var t T
	m := t.Hit
	_ = m
	me := T.Hit
	_ = me
}

func viaIfaceMethodValue(i I) {
	m := i.Dyn
	_ = m
}

func chain() { direct() }
`

func buildGraph(t *testing.T) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := new(types.Config).Check("example.com/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return Build(info, []*ast.File{f}), pkg
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

func TestStaticAndMethodCalls(t *testing.T) {
	g, _ := buildGraph(t)
	n := nodeByName(t, g, "direct")
	var names []string
	for _, e := range n.Out {
		if e.Kind != Static {
			t.Errorf("direct: edge to %v has kind %v, want static", e.Callee, e.Kind)
		}
		names = append(names, e.Callee.Name())
	}
	want := []string{"helper", "Hit", "HitPtr"}
	if len(names) != len(want) {
		t.Fatalf("direct edges = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("direct edge %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestDeferredAndGoCalls(t *testing.T) {
	g, _ := buildGraph(t)
	d := nodeByName(t, g, "viaDefer")
	if len(d.Out) != 1 || !d.Out[0].Deferred || d.Out[0].Kind != Static || d.Out[0].Callee.Name() != "helper" {
		t.Errorf("viaDefer edges = %+v, want one deferred static edge to helper", d.Out)
	}
	gn := nodeByName(t, g, "viaGo")
	if len(gn.Out) != 1 || !gn.Out[0].Go || gn.Out[0].Callee.Name() != "helper2" {
		t.Errorf("viaGo edges = %+v, want one go static edge to helper2", gn.Out)
	}
}

func TestInterfaceDispatchIsDynamic(t *testing.T) {
	g, _ := buildGraph(t)
	n := nodeByName(t, g, "viaIface")
	if len(n.Out) != 1 {
		t.Fatalf("viaIface edges = %+v, want 1", n.Out)
	}
	e := n.Out[0]
	if e.Kind != Interface || e.Callee == nil || e.Callee.Name() != "Dyn" {
		t.Errorf("viaIface edge = %+v, want interface edge to Dyn", e)
	}
	// Conservative fallback: reachability from viaIface must NOT include
	// the implementation — dynamic dispatch does not spread hotness
	// unless the implementation is annotated in its own right.
	reach := g.Reachable([]*types.Func{n.Func}, nil)
	if reach[nodeByName(t, g, "Dyn").Func] {
		t.Error("interface dispatch leaked into Reachable")
	}
}

func TestFuncValueCalls(t *testing.T) {
	g, _ := buildGraph(t)
	n := nodeByName(t, g, "viaFuncValue")
	var kinds []Kind
	for _, e := range n.Out {
		kinds = append(kinds, e.Kind)
	}
	// f() is a FuncValue call; `g := helper` binds nothing (plain ident
	// use, not a selector), g() is another FuncValue call.
	if len(kinds) != 2 || kinds[0] != FuncValue || kinds[1] != FuncValue {
		t.Errorf("viaFuncValue kinds = %v, want [funcvalue funcvalue]", kinds)
	}
}

func TestMethodValues(t *testing.T) {
	g, _ := buildGraph(t)
	n := nodeByName(t, g, "viaMethodValue")
	if len(n.Out) != 2 {
		t.Fatalf("viaMethodValue edges = %+v, want 2", n.Out)
	}
	for _, e := range n.Out {
		if e.Kind != MethodValue || e.Callee.Name() != "Hit" {
			t.Errorf("viaMethodValue edge = %+v, want methodvalue to Hit", e)
		}
	}
	// Method values propagate reachability: the bound method runs later.
	reach := g.Reachable([]*types.Func{n.Func}, nil)
	if !reach[nodeByName(t, g, "Hit").Func] {
		t.Error("method value binding did not propagate reachability")
	}

	// A bound interface method stays dynamic.
	iv := nodeByName(t, g, "viaIfaceMethodValue")
	if len(iv.Out) != 1 || iv.Out[0].Kind != Interface {
		t.Errorf("viaIfaceMethodValue edges = %+v, want one interface edge", iv.Out)
	}
}

func TestReachableChain(t *testing.T) {
	g, _ := buildGraph(t)
	chain := nodeByName(t, g, "chain")
	reach := g.Reachable([]*types.Func{chain.Func}, nil)
	for _, name := range []string{"chain", "direct", "helper", "Hit", "HitPtr"} {
		if !reach[nodeByName(t, g, name).Func] {
			t.Errorf("%s not reachable from chain", name)
		}
	}
	if reach[nodeByName(t, g, "helper2").Func] {
		t.Error("helper2 should not be reachable from chain")
	}
}
