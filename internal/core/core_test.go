package core

import (
	"testing"

	"suit/internal/dvfs"
	"suit/internal/strategy"
	"suit/internal/units"
	"suit/internal/workload"
)

const (
	testInstr    = 200_000_000 // per-core instructions for SPEC scenarios
	testInstrNet = 100_000_000
)

func bench(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	return b
}

func run(t *testing.T, s Scenario) Outcome {
	t.Helper()
	o, err := Run(s)
	if err != nil {
		t.Fatalf("Run(%s/%s): %v", s.Bench.Name, s.Kind, err)
	}
	return o
}

func TestRunValidation(t *testing.T) {
	chip := dvfs.XeonSilver4208()
	xz := bench(t, "557.xz")
	if _, err := Run(Scenario{Chip: chip, Bench: workload.Benchmark{}, Kind: KindFV}); err == nil {
		t.Error("invalid benchmark accepted")
	}
	if _, err := Run(Scenario{Chip: chip, Bench: xz, Kind: "bogus", Instructions: 1000}); err == nil {
		t.Error("unknown strategy kind accepted")
	}
	if _, err := Run(Scenario{Chip: chip, Bench: xz, Kind: KindFV, Cores: 99, Instructions: 1000}); err == nil {
		t.Error("excess core count accepted")
	}
	bad := strategy.Params{}
	if _, err := Run(Scenario{Chip: chip, Bench: xz, Kind: KindFV, Params: &bad, Instructions: 1000}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSparseWorkloadGainsEfficiency(t *testing.T) {
	// 557.xz under fV at −97 mV: high efficient-curve residency, positive
	// score, double-digit efficiency gain, zero faults (§6.4).
	o := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "557.xz"),
		Kind: KindFV, SpendAging: true, Instructions: testInstr, Seed: 1})
	if o.EfficientShare < 0.9 {
		t.Errorf("xz efficient share = %v, want >0.9 (paper: 97.1%%)", o.EfficientShare)
	}
	if o.Change.Perf < 0 {
		t.Errorf("xz perf = %v, want positive (paper: +2.75%%)", o.Change.Perf)
	}
	if o.Efficiency < 0.08 {
		t.Errorf("xz efficiency = %v, want >8%% (paper: +16.9%%)", o.Efficiency)
	}
	if len(o.Run.Faults) != 0 {
		t.Fatalf("SUIT run faulted: %v", o.Run.Faults)
	}
	if o.Offset > units.MilliVolts(-95) || o.Offset < units.MilliVolts(-100) {
		t.Errorf("offset = %v, want ≈−97 mV", o.Offset)
	}
}

func TestDenseWorkloadParksConservative(t *testing.T) {
	// 520.omnetpp: faultable instructions arrive continuously; SUIT must
	// park on the conservative curve with negligible performance impact
	// (§6.4: −0.13 %).
	o := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "520.omnetpp"),
		Kind: KindFV, SpendAging: true, Instructions: testInstr, Seed: 1})
	if o.EfficientShare > 0.1 {
		t.Errorf("omnetpp efficient share = %v, want ≈0 (paper: 3.2%%)", o.EfficientShare)
	}
	if o.Change.Perf < -0.03 {
		t.Errorf("omnetpp perf = %v, want ≈0 (thrashing prevention parks it)", o.Change.Perf)
	}
	if len(o.Run.Faults) != 0 {
		t.Fatal("omnetpp faulted under SUIT")
	}
}

func TestSeventyVsNinetySevenMilliVolts(t *testing.T) {
	// §6.3: efficiency roughly doubles from −70 mV to −97 mV.
	xz := bench(t, "557.xz")
	lo := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: xz, Kind: KindFV,
		SpendAging: false, Instructions: testInstr, Seed: 1})
	hi := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: xz, Kind: KindFV,
		SpendAging: true, Instructions: testInstr, Seed: 1})
	if hi.Efficiency <= lo.Efficiency {
		t.Errorf("−97 mV efficiency %v not above −70 mV %v", hi.Efficiency, lo.Efficiency)
	}
	ratio := hi.Efficiency / lo.Efficiency
	if ratio < 1.3 || ratio > 3.0 {
		t.Errorf("efficiency ratio −97/−70 = %v, want ≈2 (quadratic voltage dependence)", ratio)
	}
}

func TestEmulationCatastrophicForAESWorkload(t *testing.T) {
	// §6.6: nginx loses ≈98 % performance under emulation but works well
	// with fV.
	ng := bench(t, "nginx")
	chip := dvfs.IntelI9_9900K()
	e := run(t, Scenario{Chip: chip, Bench: ng, Kind: KindEmul, SpendAging: true,
		Instructions: testInstrNet, Seed: 1})
	fv := run(t, Scenario{Chip: chip, Bench: ng, Kind: KindFV, SpendAging: true,
		Instructions: testInstrNet, Seed: 1})
	if e.Change.Perf > -0.9 {
		t.Errorf("nginx emulation perf = %v, want ≈−98%%", e.Change.Perf)
	}
	if fv.Efficiency < 0.02 {
		t.Errorf("nginx fV efficiency = %v, want positive (paper: +7.4%%)", fv.Efficiency)
	}
	if e.Run.Emulated == 0 {
		t.Error("no instructions emulated")
	}
}

func TestEmulationFineForSparseWorkload(t *testing.T) {
	// §6.6: emulation is beneficial for workloads with rare faultable
	// instructions (65 % of tested applications).
	o := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: bench(t, "557.xz"),
		Kind: KindEmul, SpendAging: true, Instructions: testInstr, Seed: 1})
	if o.Efficiency < 0.05 {
		t.Errorf("xz emulation efficiency = %v, want clearly positive", o.Efficiency)
	}
	if o.Run.Exceptions != o.Run.Emulated {
		t.Errorf("exceptions %d != emulated %d under pure emulation", o.Run.Exceptions, o.Run.Emulated)
	}
}

func TestNoSIMDRunsEntirelyEfficient(t *testing.T) {
	o := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "508.namd"),
		Kind: KindNoSIMD, SpendAging: true, Instructions: testInstr, Seed: 1})
	if o.Run.Exceptions != 0 {
		t.Errorf("noSIMD run trapped %d times", o.Run.Exceptions)
	}
	if o.EfficientShare < 0.999 {
		t.Errorf("noSIMD efficient share = %v, want 1", o.EfficientShare)
	}
	// namd loses 22 % from scalarisation (Table 4) — far more than the
	// efficient curve's frequency gain recovers.
	if o.Change.Perf > -0.1 {
		t.Errorf("namd noSIMD perf = %v, want ≤−10%% (Table 4: −22%%)", o.Change.Perf)
	}
	// x264 *gains* from dropping SIMD (AVX throttling, Table 4: +7 %).
	o2 := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "525.x264"),
		Kind: KindNoSIMD, SpendAging: true, Instructions: testInstr, Seed: 1})
	if o2.Change.Perf < 0.05 {
		t.Errorf("x264 noSIMD perf = %v, want positive", o2.Change.Perf)
	}
}

func TestUnsafeUndervoltingRecordsFaults(t *testing.T) {
	o := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "502.gcc"),
		Kind: KindUnsafe, SpendAging: true, Instructions: testInstr, Seed: 1})
	if len(o.Run.Faults) == 0 {
		t.Fatal("blind undervolting of a faultable workload recorded no faults")
	}
	if o.Run.Exceptions != 0 {
		t.Error("pre-SUIT CPU delivered #DO exceptions")
	}
}

func TestSlowFrequencySwitchingHurtsOnB(t *testing.T) {
	// §6.5: CPU ℬ's 668 µs frequency change makes curve switching far
	// less attractive than on 𝒞 (31 µs).
	gcc := bench(t, "502.gcc")
	onB := run(t, Scenario{Chip: dvfs.AMDRyzen7700X(), Bench: gcc, Kind: KindFreq,
		SpendAging: true, Instructions: testInstr, Seed: 1})
	onC := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: gcc, Kind: KindFV,
		SpendAging: true, Instructions: testInstr, Seed: 1})
	if onB.Change.Perf >= onC.Change.Perf {
		t.Errorf("ℬ perf %v not worse than 𝒞 %v despite 20× slower switching",
			onB.Change.Perf, onC.Change.Perf)
	}
	if onB.Params().Deadline != strategy.ParamsB().Deadline {
		t.Error("ℬ did not get the Table 7 long-deadline parameters")
	}
}

// Params exposes the parameters the scenario resolved to (test helper).
func (o Outcome) Params() strategy.Params {
	if o.Scenario.Params != nil {
		return *o.Scenario.Params
	}
	return ParamsFor(o.Scenario.Chip)
}

func TestMultiCoreDegradesSingleDomain(t *testing.T) {
	// §6.4: 𝒜₄ sees lower efficiency than 𝒜₁ because one domain serves
	// four workloads.
	gcc := bench(t, "502.gcc")
	a1 := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: gcc, Kind: KindFV,
		Cores: 1, SpendAging: true, Instructions: testInstr, Seed: 1})
	a4 := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: gcc, Kind: KindFV,
		Cores: 4, SpendAging: true, Instructions: testInstr, Seed: 1})
	// Four streams in one domain interfere: exceptions multiply, the
	// domain spends far less time on the efficient curve, and the score
	// drops relative to the single-copy run.
	if a4.Run.Exceptions <= 2*a1.Run.Exceptions {
		t.Errorf("𝒜₄ exceptions %d not well above 𝒜₁ %d", a4.Run.Exceptions, a1.Run.Exceptions)
	}
	if a4.EfficientShare >= a1.EfficientShare-0.1 {
		t.Errorf("𝒜₄ efficient share %v not clearly below 𝒜₁ %v", a4.EfficientShare, a1.EfficientShare)
	}
	if a4.Change.Perf >= a1.Change.Perf {
		t.Errorf("𝒜₄ perf %v not below 𝒜₁ %v", a4.Change.Perf, a1.Change.Perf)
	}
	if a4.Efficiency > a1.Efficiency+0.005 {
		t.Errorf("𝒜₄ efficiency %v above 𝒜₁ %v", a4.Efficiency, a1.Efficiency)
	}
}

func TestIMULOverheadForX264Worst(t *testing.T) {
	x264, err := IMULOverheadFor(bench(t, "525.x264"))
	if err != nil {
		t.Fatal(err)
	}
	xz, err := IMULOverheadFor(bench(t, "557.xz"))
	if err != nil {
		t.Fatal(err)
	}
	if x264 <= xz {
		t.Errorf("x264 IMUL overhead %v not above xz %v", x264, xz)
	}
	if x264 < 0.005 || x264 > 0.03 {
		t.Errorf("x264 overhead = %v, want ≈1.6%%", x264)
	}
	// Cache hit must return the identical value.
	again, _ := IMULOverheadFor(bench(t, "525.x264"))
	if again != x264 {
		t.Error("IMUL overhead cache returned a different value")
	}
}

func TestParamsFor(t *testing.T) {
	if ParamsFor(dvfs.AMDRyzen7700X()) != strategy.ParamsB() {
		t.Error("ℬ must use Table 7's long-deadline parameters")
	}
	if ParamsFor(dvfs.XeonSilver4208()) != strategy.ParamsAC() {
		t.Error("𝒞 must use Table 7's 𝒜&𝒞 parameters")
	}
	if ParamsFor(dvfs.IntelI9_9900K()) != strategy.ParamsAC() {
		t.Error("𝒜 must use Table 7's 𝒜&𝒞 parameters")
	}
}

func TestUndervoltResponseShapes(t *testing.T) {
	for _, chip := range []dvfs.Chip{
		dvfs.IntelI5_1035G1(), dvfs.IntelI9_9900K(),
		dvfs.AMDRyzen7700X(), dvfs.XeonSilver4208(),
	} {
		lo := UndervoltResponse(chip, units.MilliVolts(-70))
		hi := UndervoltResponse(chip, units.MilliVolts(-97))
		if lo.Score < 0 || hi.Score < lo.Score {
			t.Errorf("%s: scores %v/%v not monotone non-negative", chip.Name, lo.Score, hi.Score)
		}
		if hi.Eff <= 0 || hi.Eff < lo.Eff {
			t.Errorf("%s: efficiency %v/%v wrong", chip.Name, lo.Eff, hi.Eff)
		}
		if hi.Power > 0.01 {
			t.Errorf("%s: power rose %v under undervolt", chip.Name, hi.Power)
		}
	}
	// The TDP-bound laptop gains far more frequency than the desktop
	// (Table 2: +12 % vs +3.3 %).
	i5 := UndervoltResponse(dvfs.IntelI5_1035G1(), units.MilliVolts(-97))
	i9 := UndervoltResponse(dvfs.IntelI9_9900K(), units.MilliVolts(-97))
	if i5.Freq <= i9.Freq {
		t.Errorf("i5 freq gain %v not above i9 %v", i5.Freq, i9.Freq)
	}
}

func TestEvaluateSuiteAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("suite evaluation is expensive")
	}
	row, err := EvaluateSuite(dvfs.XeonSilver4208(), KindFV, 1, true, 100_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.PerBench) != 23 {
		t.Fatalf("PerBench has %d entries, want 23", len(row.PerBench))
	}
	if row.SPECGmean.Eff < 0.03 {
		t.Errorf("gmean efficiency = %v, want clearly positive (paper: +11%%)", row.SPECGmean.Eff)
	}
	if row.SPECMedian.Eff < row.SPECGmean.Eff-0.05 {
		t.Errorf("median efficiency %v implausibly far below gmean %v", row.SPECMedian.Eff, row.SPECGmean.Eff)
	}
	if row.MeanEfficientShare < 0.5 || row.MeanEfficientShare > 0.95 {
		t.Errorf("mean efficient share = %v, want ≈0.7 (paper: 72.7%%)", row.MeanEfficientShare)
	}
	if row.SPECGmean.Pwr > -0.04 {
		t.Errorf("gmean power = %v, want ≤−5%%", row.SPECGmean.Pwr)
	}
	for name, o := range row.PerBench {
		if len(o.Run.Faults) != 0 {
			t.Errorf("%s faulted under SUIT", name)
		}
	}
}

func TestCompareNoSIMDCountsSumToSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite comparison is expensive")
	}
	row, err := CompareNoSIMD(dvfs.XeonSilver4208(), KindFV, 1, true, 50_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.NoSIMDBetter+row.SUITBetter != 23 {
		t.Errorf("counts %d+%d != 23", row.NoSIMDBetter, row.SUITBetter)
	}
	// Table 8 (𝒞∞ fV at −97 mV): noSIMD wins 16, SUIT 7 — a clear
	// majority for noSIMD, but not a sweep.
	if row.NoSIMDBetter < 10 || row.SUITBetter < 2 {
		t.Errorf("split %d/%d far from Table 8's 16/7", row.NoSIMDBetter, row.SUITBetter)
	}
}

func TestHeterogeneousCoRunners(t *testing.T) {
	// A sparse primary (557.xz) with a dense co-runner (520.omnetpp) on
	// the single-domain 𝒜: the co-runner parks the shared domain on the
	// conservative curve and destroys the primary's efficiency gain.
	xz := bench(t, "557.xz")
	omnetpp := bench(t, "520.omnetpp")
	alone := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: xz, Kind: KindFV,
		SpendAging: true, Instructions: testInstr, Seed: 1})
	shared := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: xz, Kind: KindFV,
		CoBenches:  []workload.Benchmark{omnetpp},
		SpendAging: true, Instructions: testInstr, Seed: 1})
	if shared.EfficientShare > alone.EfficientShare/2 {
		t.Errorf("dense co-runner left E-share at %v (alone: %v)",
			shared.EfficientShare, alone.EfficientShare)
	}
	// On a per-core-domain chip the co-runner cannot interfere.
	isolated := run(t, Scenario{Chip: dvfs.XeonSilver4208(), Bench: xz, Kind: KindFV,
		CoBenches:  []workload.Benchmark{omnetpp},
		SpendAging: true, Instructions: testInstr, Seed: 1})
	if isolated.EfficientShare < 0.9 {
		t.Errorf("per-core domains: xz E-share %v despite isolation", isolated.EfficientShare)
	}
	if len(shared.Run.Faults)+len(isolated.Run.Faults) != 0 {
		t.Error("co-located runs faulted")
	}
}

func TestCoBenchesValidation(t *testing.T) {
	xz := bench(t, "557.xz")
	many := make([]workload.Benchmark, 8)
	for i := range many {
		many[i] = xz
	}
	if _, err := Run(Scenario{Chip: dvfs.XeonSilver4208(), Bench: xz, Kind: KindFV,
		CoBenches: many, Instructions: 1000}); err == nil {
		t.Error("9 streams on 8 cores accepted")
	}
	if _, err := Run(Scenario{Chip: dvfs.XeonSilver4208(), Bench: xz, Kind: KindFV,
		CoBenches: []workload.Benchmark{{}}, Instructions: 1000}); err == nil {
		t.Error("invalid co-runner accepted")
	}
}

func TestTEEWorkloadRejectsEmulation(t *testing.T) {
	// §4.3: emulation is not possible inside a TEE; curve switching is.
	enclave := bench(t, "nginx")
	enclave.Name = "nginx-sgx"
	enclave.TEE = true
	if _, err := Run(Scenario{Chip: dvfs.IntelI9_9900K(), Bench: enclave,
		Kind: KindEmul, Instructions: 10_000_000}); err == nil {
		t.Error("emulation accepted for a TEE workload")
	}
	if _, err := Run(Scenario{Chip: dvfs.IntelI9_9900K(), Bench: enclave,
		Kind: KindDynamic, Instructions: 10_000_000}); err == nil {
		t.Error("dynamic (emulation-capable) strategy accepted for a TEE workload")
	}
	o := run(t, Scenario{Chip: dvfs.IntelI9_9900K(), Bench: enclave,
		Kind: KindFV, SpendAging: true, Instructions: 50_000_000, Seed: 1})
	if len(o.Run.Faults) != 0 {
		t.Error("TEE workload faulted under fV")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	s := Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "502.gcc"),
		Kind: KindFV, SpendAging: true, Instructions: 100_000_000, Seed: 42}
	a := run(t, s)
	b := run(t, s)
	if a.Run.Duration != b.Run.Duration || a.Run.Energy != b.Run.Energy ||
		a.Run.Exceptions != b.Run.Exceptions {
		t.Errorf("non-deterministic outcomes: %+v vs %+v", a.Run, b.Run)
	}
}

func TestRunNStatistics(t *testing.T) {
	st, err := RunN(Scenario{Chip: dvfs.XeonSilver4208(), Bench: bench(t, "502.gcc"),
		Kind: KindFV, SpendAging: true, Instructions: 100_000_000, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || len(st.Outcomes) != 4 {
		t.Fatalf("N=%d outcomes=%d", st.N, len(st.Outcomes))
	}
	// Different seeds produce different traces: some spread, but small
	// relative to the mean (the paper's σ are small for the fV rows).
	if st.EffSigma <= 0 {
		t.Error("zero efficiency spread across seeds is implausible")
	}
	if st.EffSigma > st.Eff/2 {
		t.Errorf("efficiency σ %v too large vs mean %v", st.EffSigma, st.Eff)
	}
	if st.Share < 0.5 || st.Share > 1 {
		t.Errorf("mean efficient share %v out of range", st.Share)
	}
	if _, err := RunN(Scenario{}, 1); err == nil {
		t.Error("RunN with one seed accepted")
	}
}
