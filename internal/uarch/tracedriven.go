package uarch

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"suit/internal/isa"
	"suit/internal/trace"
)

// Trace-driven simulation: instead of sampling opcodes from a statistical
// mix, the core executes a window of a recorded trace — the interesting
// instructions (faultable set, IMUL) at their exact recorded positions,
// embedded in the background mix for the anonymous instructions between
// them. This lets program-recorded traces (internal/program) answer the
// §6.1 question directly: how much does the 4-cycle IMUL cost *this*
// program?

// traceStream yields the opcode at each dynamic instruction of a trace
// window, filling gaps from a background sampler.
type traceStream struct {
	events  []trace.Event
	idx     int
	pos     uint64
	backgnd *mixSampler
}

func newTraceStream(tr *trace.Trace, start uint64, background *mixSampler) *traceStream {
	events := tr.Events
	// Skip events before the window.
	lo := 0
	for lo < len(events) && events[lo].Index < start {
		lo++
	}
	return &traceStream{events: events[lo:], pos: start, backgnd: background}
}

// SimulateTrace runs n instructions of the trace (from instruction index
// start) through the core. Background instructions between the recorded
// events are drawn from backgroundMix (defaults to a generic scalar mix).
func SimulateTrace(cfg Config, tr *trace.Trace, start uint64, n int, backgroundMix map[isa.Opcode]float64, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n <= 0 {
		return Result{}, errors.New("uarch: need at least one instruction")
	}
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if start >= tr.Total {
		return Result{}, fmt.Errorf("uarch: window start %d beyond trace total %d", start, tr.Total)
	}
	if backgroundMix == nil {
		backgroundMix = map[isa.Opcode]float64{
			isa.OpALU: 0.40, isa.OpLoad: 0.25, isa.OpStore: 0.10,
			isa.OpBranch: 0.15, isa.OpFPAdd: 0.06, isa.OpFPMul: 0.03,
			isa.OpLEA: 0.01,
		}
	}
	sampler, err := newMixSampler(backgroundMix)
	if err != nil {
		return Result{}, err
	}
	st := newTraceStream(tr, start, sampler)
	// The IMUL share of the window drives the multiply-chain model.
	end := start + uint64(n)
	imuls := 0
	for _, ev := range tr.Events {
		if ev.Index >= start && ev.Index < end && ev.Op == isa.OpIMUL {
			imuls++
		}
	}
	return simulate(cfg, n, seed, float64(imuls)/float64(n), st.next)
}

// next returns the opcode at the stream's current position and advances.
func (s *traceStream) next(rng *rand.Rand) isa.Opcode {
	if s.idx < len(s.events) && s.events[s.idx].Index == s.pos {
		op := s.events[s.idx].Op
		s.idx++
		s.pos++
		return op
	}
	s.pos++
	return s.backgnd.sample(rng)
}

// TraceSlowdown compares the trace window at stock and modified IMUL
// latency (both runs see the identical stream).
func TraceSlowdown(cfg Config, tr *trace.Trace, start uint64, n int, seed uint64, imulLatency int) (float64, error) {
	base := cfg
	base.IMULLatency = 3
	mod := cfg
	mod.IMULLatency = imulLatency
	r0, err := SimulateTrace(base, tr, start, n, nil, seed)
	if err != nil {
		return 0, err
	}
	r1, err := SimulateTrace(mod, tr, start, n, nil, seed)
	if err != nil {
		return 0, err
	}
	return r0.IPC/r1.IPC - 1, nil
}
