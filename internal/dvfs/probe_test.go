package dvfs

import (
	"math"
	"testing"

	"suit/internal/units"
)

func det() func() float64 { return func() float64 { return 0 } }

func i9States() (lo, hi PState) {
	c := IntelI9_9900K().Vendor
	lo, _ = c.StateAt(40)
	hi, _ = c.StateAt(47)
	return lo, hi
}

func TestPlanFreqOnly(t *testing.T) {
	m := IntelI9_9900K().Transition
	lo, hi := i9States()
	from := PState{Ratio: lo.Ratio, F: lo.F, V: hi.V} // same voltage
	to := PState{Ratio: hi.Ratio, F: hi.F, V: hi.V}
	tr := m.Plan(from, to, det())
	if tr.VoltDone != 0 || tr.VoltStart != 0 {
		t.Errorf("freq-only transition has voltage phase: %+v", tr)
	}
	if tr.FreqDone != m.FreqDelay {
		t.Errorf("FreqDone = %v, want %v", tr.FreqDone, m.FreqDelay)
	}
	if got := tr.FreqDone - tr.StallStart; math.Abs(float64(got-m.FreqStall)) > 1e-12 {
		t.Errorf("stall window = %v, want %v", got, m.FreqStall)
	}
	if tr.End != m.FreqDelay {
		t.Errorf("End = %v", tr.End)
	}
}

func TestPlanVoltOnly(t *testing.T) {
	m := IntelI9_9900K().Transition
	lo, hi := i9States()
	from := PState{Ratio: lo.Ratio, F: lo.F, V: lo.V}
	to := PState{Ratio: lo.Ratio, F: lo.F, V: hi.V}
	tr := m.Plan(from, to, det())
	if tr.FreqDone != 0 {
		t.Errorf("volt-only transition has frequency phase: %+v", tr)
	}
	if tr.VoltDone != m.VoltDelay || tr.End != m.VoltDelay {
		t.Errorf("VoltDone = %v End = %v, want %v", tr.VoltDone, tr.End, m.VoltDelay)
	}
	if tr.StalledAt(tr.VoltDone / 2) {
		t.Error("voltage change must not stall the core")
	}
}

func TestPlanVoltFirstSequence(t *testing.T) {
	// Xeon: voltage settles, then frequency changes with a stall (Fig 11).
	m := XeonSilver4208().Transition
	c := XeonSilver4208().Vendor
	from, to := c.Min(), c.Top()
	tr := m.Plan(from, to, det())
	if tr.VoltDone != m.VoltDelay {
		t.Errorf("VoltDone = %v, want %v", tr.VoltDone, m.VoltDelay)
	}
	if tr.FreqDone != m.VoltDelay+m.FreqDelay {
		t.Errorf("FreqDone = %v, want voltage+frequency sequence", tr.FreqDone)
	}
	if tr.StallStart < tr.VoltDone {
		t.Error("stall began before the voltage settled")
	}
	// During the voltage phase the core still runs at the old frequency.
	if tr.FrequencyAt(m.VoltDelay/2) != from.F {
		t.Error("frequency changed during voltage phase")
	}
	if tr.StalledAt(m.VoltDelay / 2) {
		t.Error("core stalled during voltage phase")
	}
}

func TestPlanConcurrentBothOnIndependentPlanes(t *testing.T) {
	m := IntelI9_9900K().Transition // VoltFirst = false
	lo, hi := i9States()
	tr := m.Plan(lo, hi, det())
	if tr.FreqDone != m.FreqDelay {
		t.Errorf("concurrent FreqDone = %v, want %v", tr.FreqDone, m.FreqDelay)
	}
	if tr.VoltDone != m.VoltDelay {
		t.Errorf("concurrent VoltDone = %v, want %v", tr.VoltDone, m.VoltDelay)
	}
	if tr.End != m.VoltDelay { // voltage is slower on 𝒜
		t.Errorf("End = %v, want %v", tr.End, m.VoltDelay)
	}
}

func TestPlanNoChange(t *testing.T) {
	m := IntelI9_9900K().Transition
	lo, _ := i9States()
	tr := m.Plan(lo, lo, det())
	if tr.End != 0 || tr.FreqDone != 0 || tr.VoltDone != 0 {
		t.Errorf("no-op transition has phases: %+v", tr)
	}
	if tr.VoltageAt(0) != lo.V || tr.FrequencyAt(0) != lo.F {
		t.Error("no-op transition changed operating point")
	}
}

func TestVoltageRampIsLinearAndMonotone(t *testing.T) {
	m := IntelI9_9900K().Transition
	lo, hi := i9States()
	from := PState{Ratio: lo.Ratio, F: lo.F, V: lo.V}
	to := PState{Ratio: lo.Ratio, F: lo.F, V: hi.V}
	tr := m.Plan(from, to, det())
	if tr.VoltageAt(-1) != from.V {
		t.Error("voltage before start wrong")
	}
	if tr.VoltageAt(tr.VoltDone+1e-9) != to.V {
		t.Error("voltage after settle wrong")
	}
	mid := tr.VoltageAt(tr.VoltDone / 2)
	want := (from.V + to.V) / 2
	if math.Abs(float64(mid-want)) > 1e-9 {
		t.Errorf("midpoint voltage = %v, want %v", mid, want)
	}
	prev := units.Volt(0)
	for ti := units.Second(0); ti <= tr.VoltDone; ti += tr.VoltDone / 100 {
		v := tr.VoltageAt(ti)
		if v < prev {
			t.Fatalf("voltage ramp not monotone at %v", ti)
		}
		prev = v
	}
}

func TestMaxVoltage(t *testing.T) {
	lo, hi := i9States()
	m := IntelI9_9900K().Transition
	up := m.Plan(lo, hi, det())
	down := m.Plan(hi, lo, det())
	if up.MaxVoltage() != hi.V || down.MaxVoltage() != hi.V {
		t.Errorf("MaxVoltage: up=%v down=%v, want %v", up.MaxVoltage(), down.MaxVoltage(), hi.V)
	}
}

func TestProbeTransitionSettlesAtTarget(t *testing.T) {
	m := XeonSilver4208().Transition
	c := XeonSilver4208().Vendor
	samples := ProbeTransition(m, c.Min(), c.Top(), det(), units.Microseconds(5))
	if len(samples) < 10 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	last := samples[len(samples)-1]
	if last.V != c.Top().V || last.F != c.Top().F || last.Stalled {
		t.Errorf("final sample %+v did not settle at target", last)
	}
	first := samples[0]
	if first.V != c.Min().V || first.F != c.Min().F {
		t.Errorf("first sample %+v not at origin", first)
	}
}

func TestProbeTransitionStallArtifact(t *testing.T) {
	// Fig 9: samples during the stall carry the stale frequency, and so
	// does the first post-stall sample (late APERF update).
	m := IntelI9_9900K().Transition
	lo, hi := i9States()
	from := PState{Ratio: hi.Ratio, F: hi.F, V: hi.V}
	to := PState{Ratio: lo.Ratio, F: lo.F, V: hi.V} // freq-only downshift
	samples := ProbeTransition(m, from, to, det(), units.Microseconds(1))
	var sawStall, sawArtifact bool
	for i, s := range samples {
		if s.Stalled {
			sawStall = true
			if s.F != from.F {
				t.Errorf("stalled sample %d shows fresh frequency %v", i, s.F)
			}
			continue
		}
		if sawStall && !sawArtifact {
			sawArtifact = true
			if s.F != from.F {
				t.Errorf("first post-stall sample shows %v, want stale %v", s.F, from.F)
			}
		}
	}
	if !sawStall {
		t.Error("no stalled samples observed")
	}
	if !sawArtifact {
		t.Error("no post-stall sample observed")
	}
}

func TestProbeTransitionNoStallOnAMD(t *testing.T) {
	// Fig 10: the 7700X does not stall during frequency changes.
	chip := AMDRyzen7700X()
	c := chip.Vendor
	from := PState{Ratio: c.Top().Ratio, F: c.Top().F, V: c.Top().V}
	to := PState{Ratio: c.Min().Ratio, F: c.Min().F, V: c.Top().V}
	for _, s := range ProbeTransition(chip.Transition, from, to, det(), units.Microseconds(10)) {
		if s.Stalled {
			t.Fatalf("AMD sample stalled at %v", s.T)
		}
	}
}

func TestProbeDefaultsInterval(t *testing.T) {
	m := IntelI9_9900K().Transition
	lo, hi := i9States()
	if got := ProbeTransition(m, lo, hi, det(), 0); len(got) == 0 {
		t.Error("zero interval produced no samples")
	}
}
