// Package core models a result-affecting package calling into the
// cache utility package: taint exported while analyzing cache surfaces
// here, at the call sites.
package core

import "suit/internal/cache"

func Step(since int64) int64 {
	n := cache.Age(since) // want `calls cache\.Age, which is tainted by time\.Now at cache\.go:11`
	n += int64(cache.Size())
	cache.Watchdog()
	return n
}

func StepAllowed(since int64) int64 {
	return cache.Stamp() //lint:allow determinism telemetry timestamp, stripped before comparison
}
