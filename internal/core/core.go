// Package core is the SUIT system evaluation engine: it assembles a chip
// model, workload traces, an operating strategy and the guardband-derived
// efficient curve into simulation runs, and reports the paper's metrics —
// performance, power and efficiency changes relative to the pre-SUIT
// baseline (§6.2, §6.3).
//
// This is the top of the stack: everything below (trace generation, DVFS
// and power models, the event-driven machine, the out-of-order IMUL study)
// plugs in here, and every Table 6 / Figure 16 cell is one Scenario.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/metrics"
	"suit/internal/strategy"
	"suit/internal/trace"
	"suit/internal/uarch"
	"suit/internal/units"
	"suit/internal/workload"
)

// StrategyKind selects an operating strategy (§4.3) or a special
// configuration of the evaluation.
type StrategyKind string

// The strategies of the evaluation. KindNoSIMD is the recompiled-without-
// SIMD configuration of §6.7; KindUnsafe is blind undervolting on a
// pre-SUIT CPU (the insecure practice SUIT replaces).
const (
	KindFV       StrategyKind = "fV"
	KindFreq     StrategyKind = "f"
	KindVolt     StrategyKind = "V"
	KindEmul     StrategyKind = "e"
	KindDynamic  StrategyKind = "dyn"
	KindAdaptive StrategyKind = "adaptive"
	KindNoSIMD   StrategyKind = "noSIMD"
	KindUnsafe   StrategyKind = "unsafe"
)

// Scenario is one evaluation cell.
type Scenario struct {
	Chip  dvfs.Chip
	Bench workload.Benchmark
	Kind  StrategyKind
	// Cores is the number of workload copies pinned to cores (the 𝒜₁ vs
	// 𝒜₄ distinction of §6.4). Default 1.
	Cores int
	// CoBenches pins additional, different workloads to further cores —
	// heterogeneous co-location (§6.2 pins one recorded stream per
	// core). Performance and power are still reported for the primary
	// workload's machine.
	CoBenches []workload.Benchmark
	// SpendAging selects the −97 mV offset (20 % of the aging guardband
	// on top of the −70 mV instruction variation, §3.1).
	SpendAging bool
	// Instructions per core; defaults to 2·10⁹ for SPEC and 2·10⁸ for
	// network workloads.
	Instructions uint64
	// Params overrides the strategy parameters (Table 7 defaults
	// otherwise, chosen by chip).
	Params *strategy.Params
	Seed   uint64
	// RecordTimeline captures curve-switch events for figure rendering.
	RecordTimeline bool
	// SampleEvery samples the operating point on a fixed grid (figure
	// rendering; see cpu.Config.SampleEvery).
	SampleEvery units.Second
}

// Outcome is the result of one scenario against its baseline.
type Outcome struct {
	Scenario Scenario
	Base     cpu.Result
	Run      cpu.Result
	// Change holds the performance and power deltas; Efficiency is the
	// paper's 1/(Δduration·Δpower) − 1.
	Change     metrics.Change
	Efficiency float64
	// EfficientShare is the time fraction on the efficient curve.
	EfficientShare float64
	// IMULOverhead is the hardened-IMUL slowdown applied (§6.1).
	IMULOverhead float64
	// Offset is the efficient-curve undervolt used.
	Offset units.Volt
}

// defaultInstructions picks the simulation length.
func defaultInstructions(b workload.Benchmark) uint64 {
	if b.Suite == workload.Network {
		return 200_000_000
	}
	return 2_000_000_000
}

// ParamsFor returns the Table 7 parameters for a chip: the slow frequency
// switching of ℬ needs the long-deadline set.
func ParamsFor(chip dvfs.Chip) strategy.Params {
	if chip.Transition.FreqDelay > units.Microseconds(100) {
		return strategy.ParamsB()
	}
	return strategy.ParamsAC()
}

// familyOf maps a chip to its Table 4 measurement column.
func familyOf(chip dvfs.Chip) workload.CPUFamily {
	if chip.Domains == dvfs.PerCoreFreq {
		return workload.AMD
	}
	return workload.Intel
}

// imulCache memoises the per-benchmark hardened-IMUL slowdown: the
// out-of-order study is deterministic per mix.
var imulCache sync.Map // string → float64

// IMULOverheadFor returns the §6.1 slowdown of the 4-cycle IMUL for the
// benchmark, computed with the out-of-order model (Fig 14).
func IMULOverheadFor(b workload.Benchmark) (float64, error) {
	if v, ok := imulCache.Load(b.Name); ok {
		return v.(float64), nil
	}
	if bits, ok := imulBaked[imulMixKey(b)]; ok {
		// Constant-folded study result for a shipped mix (see
		// imultable.go); bit-identical to the live computation below by
		// the table's guard test.
		s := math.Float64frombits(bits)
		imulCache.Store(b.Name, s)
		return s, nil
	}
	s, err := uarch.Slowdown(uarch.DefaultConfig(), b.Mix(), 200_000, 1, 4)
	if err != nil {
		return 0, err
	}
	if s < 0 {
		s = 0 // sampling noise cannot make the longer IMUL faster
	}
	imulCache.Store(b.Name, s)
	return s, nil
}

// buildStrategy constructs the cpu.Strategy for a kind.
func buildStrategy(kind StrategyKind, p strategy.Params) (cpu.Strategy, error) {
	switch kind {
	case KindFV:
		return strategy.FV{P: p}, nil
	case KindFreq:
		return strategy.FreqOnly{P: p}, nil
	case KindVolt:
		return strategy.VoltOnly{P: p}, nil
	case KindEmul:
		return strategy.Emulation{}, nil
	case KindDynamic:
		return strategy.Dynamic{P: p}, nil
	case KindAdaptive:
		return &strategy.Adaptive{}, nil
	case KindNoSIMD:
		return strategy.AlwaysEfficient{}, nil
	case KindUnsafe:
		return strategy.Pinned{M: cpu.ModeE}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy kind %q", kind)
	}
}

// tracesShared reports whether the two machines were handed the very
// same trace artifacts (pointer identity), the precondition for
// batching them over a shared event stream.
func tracesShared(a, b []*trace.Trace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run evaluates one scenario: the SUIT configuration and the pre-SUIT
// baseline run the same workload; the outcome reports the relative
// changes.
func Run(s Scenario) (Outcome, error) {
	if err := s.Bench.Validate(); err != nil {
		return Outcome{}, err
	}
	if s.Cores <= 0 {
		s.Cores = 1
	}
	if s.Cores+len(s.CoBenches) > s.Chip.Cores {
		return Outcome{}, fmt.Errorf("core: %d streams exceed %d cores",
			s.Cores+len(s.CoBenches), s.Chip.Cores)
	}
	for _, cb := range s.CoBenches {
		if err := cb.Validate(); err != nil {
			return Outcome{}, fmt.Errorf("core: co-runner: %w", err)
		}
	}
	// §4.3: instruction emulation is not possible for applications in
	// trusted execution environments — the kernel cannot map emulation
	// code into an enclave.
	if s.Bench.TEE && (s.Kind == KindEmul || s.Kind == KindDynamic) {
		return Outcome{}, fmt.Errorf("core: %s runs in a TEE; emulation-based strategies are unavailable (§4.3)", s.Bench.Name)
	}
	total := s.Instructions
	if total == 0 {
		total = defaultInstructions(s.Bench)
	}

	gb := guardband.Default()
	offset := gb.EfficientOffset(isa.FaultableMask, true, s.SpendAging)

	params := ParamsFor(s.Chip)
	if s.Params != nil {
		params = *s.Params
	}
	if err := params.Validate(); err != nil {
		return Outcome{}, err
	}
	strat, err := buildStrategy(s.Kind, params)
	if err != nil {
		return Outcome{}, err
	}

	// Per-core traces: SPEC-rate style copies with different seeds.
	bench := s.Bench
	fam := familyOf(s.Chip)
	if s.Kind == KindNoSIMD || s.Kind == KindEmul {
		// §6.2: emulation runs behave as if compiled without SIMD (the
		// replacements are the scalar code paths) plus per-trap costs;
		// the noSIMD build has the same throughput change and no
		// faultable instructions at all.
		bench.IPC *= 1 + bench.NoSIMD[fam]
	}
	// Trace generation goes through the shared artifact store
	// (traceartifact.go): the baseline below requests byte-identical
	// traces and receives the same immutable artifacts instead of a
	// regeneration, and concurrent sweep points sharing a (workload,
	// seed) pair coalesce on one build.
	shared := batchingEnabled()
	traces := make([]*trace.Trace, s.Cores, s.Cores+len(s.CoBenches))
	for i := range traces {
		tr, err := sharedTrace(bench, total, s.Seed+uint64(i)*7919+1, s.Kind == KindNoSIMD)
		if err != nil {
			return Outcome{}, err
		}
		traces[i] = tr
	}

	imulOv, err := IMULOverheadFor(s.Bench)
	if err != nil {
		return Outcome{}, err
	}
	imulPerCore := make([]float64, s.Cores, s.Cores+len(s.CoBenches))
	for i := range imulPerCore {
		imulPerCore[i] = imulOv
	}
	// Heterogeneous co-runners: their own traces and IMUL overheads on
	// the remaining cores, scaled to the primary stream's duration so all
	// cores stay busy for the measured interval.
	for j, cb := range s.CoBenches {
		coTotal := uint64(float64(total) * cb.IPC / s.Bench.IPC)
		if coTotal == 0 {
			coTotal = total
		}
		tr, err := sharedTrace(cb, coTotal, s.Seed+uint64(s.Cores+j)*7919+1, false)
		if err != nil {
			return Outcome{}, err
		}
		traces = append(traces, tr)
		coOv, err := IMULOverheadFor(cb)
		if err != nil {
			return Outcome{}, err
		}
		imulPerCore = append(imulPerCore, coOv)
	}

	runCfg := cpu.Config{
		Chip:           s.Chip,
		Traces:         traces,
		Offset:         offset,
		Faults:         gb,
		HardenedIMUL:   true,
		IMULOverhead:   imulPerCore,
		ExceptionDelay: s.Chip.ExceptionDelay,
		Emul:           emul.NewCostModel(s.Chip.EmulCallDelay),
		AllowUnsafe:    s.Kind == KindUnsafe,
		Seed:           s.Seed,
		RecordTimeline: s.RecordTimeline,
		SampleEvery:    s.SampleEvery,
		NoRampMemo:     !rampMemoEnabled(),
		// Artifact traces were validated once at generation; re-walking
		// them per machine would cost more than a sweep point's stepping.
		TrustedTraces: shared,
	}
	if s.Kind == KindUnsafe {
		// A pre-SUIT part: stock IMUL, no hardening overhead.
		runCfg.HardenedIMUL = false
		runCfg.IMULOverhead = nil
	}

	// Baseline: the same workloads (stock compilation, stock IMUL) pinned
	// to the vendor curve at the TDP-sustainable state. For every kind
	// except noSIMD/emulation these requests hit the artifacts the run
	// traces were built from, so base and run machines step the very same
	// event arrays.
	baseTraces := make([]*trace.Trace, s.Cores, len(traces))
	for i := range baseTraces {
		tr, err := sharedTrace(s.Bench, total, s.Seed+uint64(i)*7919+1, false)
		if err != nil {
			return Outcome{}, err
		}
		baseTraces[i] = tr
	}
	for j, cb := range s.CoBenches {
		coTotal := uint64(float64(total) * cb.IPC / s.Bench.IPC)
		if coTotal == 0 {
			coTotal = total
		}
		tr, err := sharedTrace(cb, coTotal, s.Seed+uint64(s.Cores+j)*7919+1, false)
		if err != nil {
			return Outcome{}, err
		}
		baseTraces = append(baseTraces, tr)
	}
	baseCfg := runCfg
	baseCfg.Traces = baseTraces
	baseCfg.HardenedIMUL = false
	baseCfg.IMULOverhead = nil
	baseCfg.AllowUnsafe = false

	baseMachine, err := cpu.New(baseCfg, strategy.Pinned{M: cpu.ModeBase})
	if err != nil {
		return Outcome{}, err
	}
	runMachine, err := cpu.New(runCfg, strat)
	if err != nil {
		return Outcome{}, err
	}

	var base, run cpu.Result
	if shared && tracesShared(baseTraces, traces) {
		// Batched stepping: co-step the baseline and run machines over
		// the shared event stream (see cpu.Batch). Each machine's event
		// sequence — and so each Result — is bit-identical to a solo Run.
		batch, err := cpu.NewBatch([]*cpu.Machine{baseMachine, runMachine})
		if err != nil {
			return Outcome{}, err
		}
		rs, err := batch.Run()
		if err != nil {
			return Outcome{}, err
		}
		base, run = rs[0], rs[1]
	} else {
		if base, err = baseMachine.Run(); err != nil {
			return Outcome{}, err
		}
		if run, err = runMachine.Run(); err != nil {
			return Outcome{}, err
		}
	}

	if base.Duration <= 0 || run.Duration <= 0 {
		return Outcome{}, errors.New("core: degenerate run duration")
	}
	change := metrics.NewChange(
		float64(base.Duration), float64(run.Duration),
		float64(base.AvgPower), float64(run.AvgPower),
	)
	return Outcome{
		Scenario:       s,
		Base:           base,
		Run:            run,
		Change:         change,
		Efficiency:     change.Efficiency(),
		EfficientShare: run.EfficientShare(),
		IMULOverhead:   imulOv,
		Offset:         offset,
	}, nil
}
