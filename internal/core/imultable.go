package core

import (
	"math"

	"suit/internal/workload"
)

// Baked hardened-IMUL slowdowns for the shipped workload models.
//
// uarch.Slowdown is deterministic: for a fixed uarch.DefaultConfig it is a
// pure function of the instruction mix, and workload.Benchmark.Mix() is in
// turn a pure function of exactly two scalars — the IMUL fraction and the
// vector density BurstLen/BurstEvery + 1/PoissonGap. The out-of-order
// study it runs (2×200k instructions per benchmark) therefore always
// reproduces the same float64, yet costs ~40ms per benchmark — the single
// largest fixed cost of a cold sweep process. This table is that study's
// result, constant-folded.
//
// The key is the raw float64 bits of (IMULFraction, vec), NOT the
// benchmark name: a custom JSON workload that reuses a shipped name with a
// different mix misses the table and takes the live computation, while any
// workload whose mix inputs match bit-for-bit gets the bit-identical
// answer the live path would have produced. Values store Float64bits so
// no decimal round-trip can perturb them.
//
// TestIMULTableMatchesLiveStudy regenerates every entry with
// uarch.Slowdown and fails on any bit mismatch, so the table cannot drift
// from the model it folds.
var imulBaked = map[[2]uint64]uint64{
	{0x3f4a36e2eb1c432d, 0x3ef797cc39ffd60f}: 0x3f19a15cef984000, // 500.perlbench
	{0x3f4d7dbf487fcb92, 0x3eef2c837874a2e9}: 0x3f1c9edfd9d98000, // 502.gcc
	{0x3f40624dd2f1a9fc, 0x3ec695afce7ebfc8}: 0x3ef7aa4879000000, // 505.mcf
	{0x3f43a92a30553261, 0x3f423456789abcdf}: 0x3f16abbcb02f4000, // 520.omnetpp
	{0x3f3a36e2eb1c432d, 0x3ea86739a3f15988}: 0x3edf91b16d880000, // 523.xalancbmk
	{0x3f84467381d7dbf5, 0x3edbf647612f3696}: 0x3f8e94054d471d00, // 525.x264
	{0x3f46f0068db8bac7, 0x3ec92a737110e454}: 0x3f15b7126be24000, // 531.deepsjeng
	{0x3f43a92a30553261, 0x3ed8777e75094fc3}: 0x3f11bcf1fc3ac000, // 541.leela
	{0x3f53a92a30553261, 0x3ec96b86b570bd43}: 0x3f2e1b45c11f6000, // 548.exchange2
	{0x3f4a36e2eb1c432d, 0x3eb65e9f80f29212}: 0x3f15b3ef1a394000, // 557.xz
	{0x3f3a36e2eb1c432d, 0x3ef4f8b588e368f1}: 0x3edf944f3dc40000, // 503.bwaves
	{0x3f40624dd2f1a9fc, 0x3ef6cb8dab0d7211}: 0x3f03bacfa25c8000, // 507.cactuBSSN
	{0x3f33a92a30553261, 0x3ef205bc01a36e2f}: 0x3edf90531dec0000, // 508.namd
	{0x3f43a92a30553261, 0x3ee63483fa5a32e1}: 0x3f11bd2acc414000, // 510.parest
	{0x3f4a36e2eb1c432d, 0x3ef021c6b811646a}: 0x3f19a3e176b5c000, // 511.povray
	{0x3f2a36e2eb1c432d, 0x3ed4f8b588e368f1}: 0x3edf96beb6880000, // 519.lbm
	{0x3f40624dd2f1a9fc, 0x3f2a36e2eb1c432d}: 0x3f07acd04a238000, // 521.wrf
	{0x3f4d7dbf487fcb92, 0x3ef04560b53dae1c}: 0x3f1ca0169c3e0000, // 526.blender
	{0x3f43a92a30553261, 0x3edbf647612f3696}: 0x3f11bd2acc414000, // 527.cam4
	{0x3f5205bc01a36e2f, 0x3ee4f8b588e368f1}: 0x3f26310786396000, // 538.imagick
	{0x3f46f0068db8bac7, 0x3ef2a42f961f79b9}: 0x3f15b6c20c770000, // 544.nab
	{0x3f3a36e2eb1c432d, 0x3ec18ebbb417b129}: 0x3edf8be35e640000, // 549.fotonik3d
	{0x3f40624dd2f1a9fc, 0x3ef4f8b588e368f1}: 0x3f03ba4768230000, // 554.roms
	{0x3f3a36e2eb1c432d, 0x3f8abcdf01234568}: 0x3f07f269b5858000, // nginx
	{0x3f40624dd2f1a9fc, 0x3f6999999999999a}: 0x3f0f9b0a7f380000, // VLC
}

// imulMixKey derives the baked-table key for a benchmark: the raw bits of
// the two scalars that fully determine its Mix().
func imulMixKey(b workload.Benchmark) [2]uint64 {
	vec := 0.0
	if b.BurstEvery > 0 {
		vec += b.BurstLen / b.BurstEvery
	}
	if b.PoissonGap > 0 {
		vec += 1 / b.PoissonGap
	}
	return [2]uint64{math.Float64bits(b.IMULFraction), math.Float64bits(vec)}
}
