package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g, err := Geomean([]float64{1, 4}); err != nil || !approx(g, 2) {
		t.Errorf("Geomean(1,4) = %v, %v", g, err)
	}
	if g, err := Geomean([]float64{8}); err != nil || !approx(g, 8) {
		t.Errorf("Geomean(8) = %v, %v", g, err)
	}
	if _, err := Geomean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := Geomean([]float64{1, -2}); err == nil {
		t.Error("negative geomean accepted")
	}
	if _, err := Geomean([]float64{0}); err == nil {
		t.Error("zero geomean accepted")
	}
}

func TestGeomeanChange(t *testing.T) {
	// +100 % and −50 % cancel.
	if c, err := GeomeanChange([]float64{1, -0.5}); err != nil || !approx(c, 0) {
		t.Errorf("GeomeanChange = %v, %v", c, err)
	}
	if _, err := GeomeanChange([]float64{-1}); err == nil {
		t.Error("−100 % change accepted (ratio 0)")
	}
}

func TestMedian(t *testing.T) {
	if m, _ := Median([]float64{3, 1, 2}); !approx(m, 2) {
		t.Errorf("odd median = %v", m)
	}
	if m, _ := Median([]float64{4, 1, 3, 2}); !approx(m, 2.5) {
		t.Errorf("even median = %v", m)
	}
	if _, err := Median(nil); err == nil {
		t.Error("empty median accepted")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	if m, _ := Mean([]float64{1, 2, 3}); !approx(m, 2) {
		t.Errorf("mean = %v", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty mean accepted")
	}
	if s, _ := StdDev([]float64{2, 4}); !approx(s, math.Sqrt2) {
		t.Errorf("stddev = %v", s)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Error("single-value stddev accepted")
	}
}

func TestEfficiencyPaperExample(t *testing.T) {
	// §5.4: finishing in half the time (score +100 %) at half the power
	// (power −50 %) quadruples the efficiency (+300 %).
	c := Change{Perf: 1.0, Power: -0.5}
	if got := c.Efficiency(); !approx(got, 3.0) {
		t.Errorf("efficiency = %v, want 3.0", got)
	}
}

func TestEfficiencyNeutral(t *testing.T) {
	if got := (Change{}).Efficiency(); !approx(got, 0) {
		t.Errorf("neutral efficiency = %v", got)
	}
	// Power drop with no perf change: efficiency = 1/(1·0.84) − 1.
	c := Change{Power: -0.16}
	if got := c.Efficiency(); !approx(got, 1/0.84-1) {
		t.Errorf("efficiency = %v", got)
	}
}

func TestNewChange(t *testing.T) {
	// Base 10 s @ 100 W; run 8 s @ 90 W.
	c := NewChange(10, 8, 100, 90)
	if !approx(c.Perf, 0.25) {
		t.Errorf("perf = %v, want +25%%", c.Perf)
	}
	if !approx(c.Power, -0.10) {
		t.Errorf("power = %v, want −10%%", c.Power)
	}
	// Efficiency: duration ×0.8, power ×0.9 → 1/(0.72) − 1 ≈ +38.9 %.
	if got := c.Efficiency(); !approx(got, 1/0.72-1) {
		t.Errorf("efficiency = %v", got)
	}
}

func TestEfficiencyConsistencyProperty(t *testing.T) {
	prop := func(rawD, rawP uint16) bool {
		dur := 0.5 + float64(rawD%1000)/1000 // 0.5..1.5 relative duration
		pow := 0.5 + float64(rawP%1000)/1000 // relative power
		c := NewChange(1, dur, 1, pow)
		want := 1/(dur*pow) - 1
		return math.Abs(c.Efficiency()-want) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
