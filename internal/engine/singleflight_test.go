package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleFlightCoalesces: N concurrent Run calls over the same spec
// must trigger exactly one execution; everyone gets the same result.
func TestSingleFlightCoalesces(t *testing.T) {
	var executions atomic.Int64
	release := make(chan struct{})
	eng := New(
		func(s string) string { return s },
		func(ctx context.Context, spec string, seed uint64) (string, error) {
			executions.Add(1)
			<-release // hold the flight open until every caller has arrived
			return "result:" + spec, nil
		},
		Options{Workers: 2},
	)

	const callers = 8
	var wg sync.WaitGroup
	results := make([]string, callers)
	errs := make([]error, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			out, err := eng.Run(context.Background(), []string{"spec-a"})
			errs[i] = err
			if len(out) == 1 {
				results[i] = out[0]
			}
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	// Give every Run time to reach the flight wait before releasing the
	// leader; correctness does not depend on this, only test strength.
	time.Sleep(50 * time.Millisecond)
	if got := eng.Inflight(); got != 1 {
		t.Errorf("Inflight mid-execution = %d, want 1", got)
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("run function executed %d times, want exactly 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != "result:spec-a" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	st := eng.Stats()
	if st.Ran != 1 {
		t.Errorf("Stats.Ran = %d, want 1", st.Ran)
	}
	if st.Coalesced != callers-1 {
		t.Errorf("Stats.Coalesced = %d, want %d", st.Coalesced, callers-1)
	}
	if got := eng.Inflight(); got != 0 {
		t.Errorf("Inflight after completion = %d, want 0", got)
	}
}

// TestSingleFlightLeaderFailureNotShared: a follower must not inherit
// the leader's failure — it re-executes under its own budget.
func TestSingleFlightLeaderFailureNotShared(t *testing.T) {
	var executions atomic.Int64
	firstArrived := make(chan struct{})
	failFirst := make(chan struct{})
	eng := New(
		func(s string) string { return s },
		func(ctx context.Context, spec string, seed uint64) (string, error) {
			n := executions.Add(1)
			if n == 1 {
				close(firstArrived)
				<-failFirst
				return "", fmt.Errorf("injected leader failure")
			}
			return "ok:" + spec, nil
		},
		Options{Workers: 1},
	)

	leaderErr := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), []string{"spec-b"})
		leaderErr <- err
	}()
	<-firstArrived

	followerDone := make(chan struct{})
	var followerOut []string
	var followerErr error
	go func() {
		defer close(followerDone)
		followerOut, followerErr = eng.Run(context.Background(), []string{"spec-b"})
	}()
	// The follower is now (or soon will be) waiting on the leader's
	// flight; fail the leader and watch the follower recover.
	time.Sleep(20 * time.Millisecond)
	close(failFirst)

	if err := <-leaderErr; err == nil {
		t.Fatal("leader Run should have failed")
	}
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower Run failed: %v", followerErr)
	}
	if len(followerOut) != 1 || followerOut[0] != "ok:spec-b" {
		t.Fatalf("follower got %v", followerOut)
	}
	if got := executions.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (failed leader + recovering follower)", got)
	}
}

// TestSingleFlightFollowerCancellation: a follower whose context is
// cancelled stops waiting on a stuck leader promptly.
func TestSingleFlightFollowerCancellation(t *testing.T) {
	arrived := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	eng := New(
		func(s string) string { return s },
		func(ctx context.Context, spec string, seed uint64) (string, error) {
			close(arrived)
			<-release
			return spec, nil
		},
		Options{Workers: 1},
	)
	go eng.Run(context.Background(), []string{"spec-c"})
	<-arrived

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, []string{"spec-c"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not return")
	}
}

// TestRunCheckpointedPerCallJournal: two sweeps sharing one engine
// journal into separate checkpoints, and a coalesced completion is
// recorded in the follower's journal too.
func TestRunCheckpointedPerCallJournal(t *testing.T) {
	dir := t.TempDir()
	cpA, err := OpenCheckpoint(dir+"/a.journal", "sweep-a", false)
	if err != nil {
		t.Fatal(err)
	}
	defer cpA.Close()
	cpB, err := OpenCheckpoint(dir+"/b.journal", "sweep-b", false)
	if err != nil {
		t.Fatal(err)
	}
	defer cpB.Close()

	eng := New(
		func(s string) string { return s },
		func(ctx context.Context, spec string, seed uint64) (string, error) {
			return "r:" + spec, nil
		},
		Options{Workers: 2},
	)
	if _, err := eng.RunCheckpointed(context.Background(), []string{"x", "y"}, cpA); err != nil {
		t.Fatal(err)
	}
	// Second sweep overlaps on "y" (memo hit) and adds "z".
	if _, err := eng.RunCheckpointed(context.Background(), []string{"y", "z"}, cpB); err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		cp   *Checkpoint
		keys []string
	}{
		{cpA, []string{"x", "y"}},
		{cpB, []string{"y", "z"}},
	} {
		for _, k := range want.keys {
			if !want.cp.Done(k) {
				t.Errorf("checkpoint %s missing key %q", want.cp.Path(), k)
			}
		}
		if got := want.cp.Completed(); got != 2 {
			t.Errorf("checkpoint %s Completed = %d, want 2", want.cp.Path(), got)
		}
	}
	if cpA.Done("z") {
		t.Error("sweep A's journal recorded sweep B's job")
	}
}
