// Command suitsweep searches the operating-strategy parameter space
// (p_dl, p_ts, p_ec, p_df — §4.3) for the efficiency-optimal setting,
// reproducing the methodology behind Table 7 ("we ran hundreds of
// simulations to find the optimal values").
//
// The sweep fans out through the shared parallel experiment engine
// (internal/engine): -j bounds the worker pool, -cache reuses results
// across runs, and per-point seeds derive deterministically from the
// point fingerprint plus -seed, so the report is byte-identical at any
// parallelism level. Progress and throughput go to stderr; the table
// itself goes to stdout.
//
// Example:
//
//	suitsweep -chip C -offset 97 -instr 3e8 -j 8 -cache /tmp/sweepcache
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/engine"
	"suit/internal/metrics"
	"suit/internal/report"
	"suit/internal/strategy"
	"suit/internal/units"
	"suit/internal/workload"
)

// sweepPoint is one parameter combination with its outcome.
type sweepPoint struct {
	p   strategy.Params
	eff float64
}

// knownChips maps the -chip letters to chip models, in flag-help order.
var knownChips = []struct {
	letter string
	chip   func() dvfs.Chip
}{
	{"A", dvfs.IntelI9_9900K},
	{"B", dvfs.AMDRyzen7700X},
	{"C", dvfs.XeonSilver4208},
}

// chipByName resolves a -chip value, case-insensitively.
func chipByName(name string) (dvfs.Chip, error) {
	var letters []string
	for _, k := range knownChips {
		if strings.EqualFold(name, k.letter) {
			return k.chip(), nil
		}
		letters = append(letters, k.letter)
	}
	return dvfs.Chip{}, fmt.Errorf("unknown chip %q (known: %s)", name, strings.Join(letters, ", "))
}

// sweepGrid builds the Table 7 search region for a chip. CPU ℬ's slow
// switching gets a coarser, longer-deadline grid.
func sweepGrid(chip dvfs.Chip) []strategy.Params {
	deadlines := []float64{10, 20, 30, 50, 80} // µs
	spans := []float64{150, 450, 900}          // µs
	if chip.Transition.FreqDelay > units.Microseconds(100) {
		deadlines = []float64{300, 500, 700, 1000, 1500}
		spans = []float64{7000, 14000, 28000}
	}
	counts := []int{2, 3, 4, 6}
	factors := []float64{4, 9, 14, 20}

	var grid []strategy.Params
	for _, dl := range deadlines {
		for _, ts := range spans {
			for _, ec := range counts {
				for _, df := range factors {
					grid = append(grid, strategy.Params{
						Deadline:       units.Microseconds(dl),
						TimeSpan:       units.Microseconds(ts),
						MaxExceptions:  ec,
						DeadlineFactor: df,
					})
				}
			}
		}
	}
	return grid
}

// sweepBenches is the representative workload mix: sparse, medium,
// dense, bursty.
func sweepBenches() ([]workload.Benchmark, error) {
	var benches []workload.Benchmark
	for _, n := range []string{"557.xz", "502.gcc", "527.cam4", "525.x264", "VLC"} {
		b, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("missing workload %s", n)
		}
		benches = append(benches, b)
	}
	return benches, nil
}

// sweep evaluates the whole grid × workload matrix through the engine
// and aggregates the per-point mean efficiency, preserving grid order.
func sweep(chip dvfs.Chip, grid []strategy.Params, benches []workload.Benchmark, spendAging bool, instr uint64) ([]sweepPoint, error) {
	scs := make([]core.Scenario, 0, len(grid)*len(benches))
	for i := range grid {
		for _, b := range benches {
			scs = append(scs, core.Scenario{
				Chip: chip, Bench: b, Kind: core.KindFV,
				SpendAging: spendAging, Instructions: instr,
				Params: &grid[i], // Seed 0: engine derives the per-point seed
			})
		}
	}
	outs, err := core.RunAll(scs)
	if err != nil {
		return nil, err
	}
	points := make([]sweepPoint, len(grid))
	for i := range grid {
		effs := make([]float64, len(benches))
		for j := range benches {
			effs[j] = outs[i*len(benches)+j].Efficiency
		}
		mean, _ := metrics.Mean(effs)
		points[i] = sweepPoint{p: grid[i], eff: mean}
	}
	// Rank by mean efficiency; exact ties keep grid order so the report
	// never depends on sort internals.
	sort.SliceStable(points, func(i, j int) bool { return points[i].eff > points[j].eff })
	return points, nil
}

func main() {
	var (
		chipName = flag.String("chip", "C", "CPU model: A, B, C")
		offset   = flag.Int("offset", 97, "undervolt in mV: 70 or 97")
		instrStr = flag.String("instr", "3e8", "instructions per run")
		seed     = flag.Uint64("seed", 1, "base seed for deterministic per-point seed derivation")
		top      = flag.Int("top", 10, "how many settings to print (>= 1)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		cacheDir = flag.String("cache", "", "directory for the on-disk result cache (reused across runs)")
	)
	flag.Parse()

	chip, err := chipByName(*chipName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *top < 1 {
		fmt.Fprintf(os.Stderr, "bad -top %d: need at least one setting to print\n", *top)
		os.Exit(2)
	}
	totalF, err := strconv.ParseFloat(*instrStr, 64)
	if err != nil || totalF < 1e6 {
		fmt.Fprintf(os.Stderr, "bad -instr %q\n", *instrStr)
		os.Exit(2)
	}
	instr := uint64(totalF)

	core.SetEngineOptions(engine.Options{
		Workers:  *workers,
		BaseSeed: *seed,
		CacheDir: *cacheDir,
		Progress: os.Stderr,
		Label:    "suitsweep",
	})

	grid := sweepGrid(chip)
	benches, err := sweepBenches()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sweeping %d parameter settings × %d workloads on %s at −%d mV...\n",
		len(grid), len(benches), chip.Name, *offset)

	results, err := sweep(chip, grid, benches, *offset == 97, instr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	n := *top
	if n > len(results) {
		n = len(results)
	}
	t := report.NewTable(fmt.Sprintf("Top %d parameter settings (mean efficiency over %d workloads)", n, len(benches)),
		"p_dl", "p_ts", "p_ec", "p_df", "efficiency")
	for _, r := range results[:n] {
		t.AddRow(r.p.Deadline.String(), r.p.TimeSpan.String(),
			fmt.Sprintf("%d", r.p.MaxExceptions), fmt.Sprintf("%.0f", r.p.DeadlineFactor),
			report.Pct(r.eff))
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spread := results[0].eff - results[len(results)-1].eff
	fmt.Printf("\nbest-to-worst spread: %.2f points — the paper notes workloads tolerate a wide range (§6.4)\n", spread*100)
	fmt.Printf("Table 7 reference: 𝒜&𝒞 30 µs/450 µs/3/14; ℬ 700 µs/14 ms/4/9\n")
	fmt.Fprintf(os.Stderr, "suitsweep: %s\n", core.EngineStats())
}
