package strategy

import (
	"testing"

	"suit/internal/cpu"
	"suit/internal/isa"
	"suit/internal/units"
)

// timedController extends the mock with a controllable clock.
type timedController struct {
	mockController
	now units.Second
}

func (m *timedController) Now() units.Second { return m.now }

func TestAdaptiveDefaults(t *testing.T) {
	a := &Adaptive{}
	ctl := &timedController{mockController: mockController{domains: 2}}
	a.Init(&ctl.mockController)
	if a.Alpha != 0.5 || a.Smoothing != 0.25 {
		t.Errorf("defaults not applied: %+v", a)
	}
	if len(a.ewmaGap) != 2 || len(a.lastException) != 2 {
		t.Error("per-domain state not sized")
	}
	if a.Name() != "adaptive" {
		t.Error("name wrong")
	}
}

func TestAdaptiveLearnsGaps(t *testing.T) {
	a := &Adaptive{}
	ctl := &timedController{mockController: mockController{domains: 1}}
	a.Init(&ctl.mockController)

	// First exception: no gap yet → MinDeadline.
	ctl.now = units.Milliseconds(1)
	a.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	if ctl.deadline != a.MinDeadline {
		t.Errorf("first deadline = %v, want MinDeadline %v", ctl.deadline, a.MinDeadline)
	}

	// Exceptions 100 µs apart: the deadline converges toward
	// Alpha × 100 µs = 50 µs.
	for i := 2; i <= 30; i++ {
		ctl.now = units.Milliseconds(1) + units.Microseconds(float64(i-1)*100)
		a.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	}
	got := ctl.deadline.Microseconds()
	if got < 40 || got > 60 {
		t.Errorf("converged deadline = %v µs, want ≈50", got)
	}

	// A sudden sparse phase (10 ms gaps) stretches the estimate but the
	// clamp holds it at MaxDeadline.
	for i := 0; i < 40; i++ {
		ctl.now += units.Milliseconds(10)
		a.OnDisabledOpcode(ctl, 0, 0, isa.OpVOR)
	}
	if ctl.deadline != a.MaxDeadline {
		t.Errorf("sparse-phase deadline = %v, want clamp at %v", ctl.deadline, a.MaxDeadline)
	}
}

func TestAdaptiveHandlerSequence(t *testing.T) {
	a := &Adaptive{}
	ctl := &timedController{mockController: mockController{domains: 1}}
	a.Init(&ctl.mockController)
	ctl.calls = nil
	a.OnDisabledOpcode(ctl, 0, 0, isa.OpAESENC)
	want := []string{"wait:Cf", "async:Cv", "enable", "arm"}
	for i, w := range want {
		if i >= len(ctl.calls) || ctl.calls[i] != w {
			t.Fatalf("calls = %v, want %v", ctl.calls, want)
		}
	}
	ctl.calls = nil
	a.OnDeadline(ctl, 0)
	if len(ctl.calls) != 2 || ctl.calls[0] != "disable" || ctl.calls[1] != "async:E" {
		t.Errorf("deadline calls = %v", ctl.calls)
	}
}

// Adaptive must satisfy cpu.Strategy as a pointer.
var _ cpu.Strategy = (*Adaptive)(nil)
