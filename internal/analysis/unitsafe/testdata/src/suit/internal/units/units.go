// Package units is the fixture stand-in for suit/internal/units. The
// analyzer must leave it alone: raw float math and cross-unit formulas
// are this package's job.
package units

type (
	Volt   float64
	Hertz  float64
	Watt   float64
	Joule  float64
	Second float64
)

func MilliVolts(mv float64) Volt { return Volt(mv / 1000) }

func MHz(f float64) Hertz { return Hertz(f * 1e6) }

// Power mixes Joule and Second into Watt — a finding anywhere else.
func Power(e Joule, dt Second) Watt { return Watt(float64(e) / float64(dt)) }
