package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"suit/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainNow(t, svc)
	})
	return svc, ts
}

func postSpec(t *testing.T, ts *httptest.Server, body string) (*http.Response, jobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, v
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp
}

func TestHTTPSubmitLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	spec, _ := json.Marshal(tinySpec(2, 1))
	resp, created := postSpec(t, ts, string(spec))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d, want 201", resp.StatusCode)
	}
	if created.ID == "" || created.State != StateQueued || created.Total != 2 {
		t.Fatalf("created view = %+v", created)
	}

	var view jobView
	deadline := time.Now().Add(120 * time.Second)
	for {
		if r := getJSON(t, ts, "/v1/sweeps/"+created.ID, &view); r.StatusCode != http.StatusOK {
			t.Fatalf("GET status = %d", r.StatusCode)
		}
		if view.State == StateDone || view.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != StateDone || view.Rslt == nil || len(view.Rslt.Points) != 2 {
		t.Fatalf("final view = %+v", view)
	}

	// The duplicate POST is the content-addressed hit: 200, same ID,
	// result inline, no new execution.
	resp2, dup := postSpec(t, ts, string(spec))
	if resp2.StatusCode != http.StatusOK || dup.ID != created.ID || dup.Rslt == nil {
		t.Fatalf("duplicate POST: status %d, view %+v", resp2.StatusCode, dup)
	}

	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	getJSON(t, ts, "/v1/sweeps", &list)
	if len(list.Jobs) != 1 {
		t.Fatalf("list has %d jobs, want 1", len(list.Jobs))
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		"{not json",
		`{"chip":"Z"}`,
		`{"unknown_field":1}`,
		`{"offset_mv":55}`,
	} {
		resp, _ := postSpec(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts, "/v1/sweeps/deadbeef", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/v1/sweeps/deadbeef/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPSingleFlight: concurrent identical POSTs over real HTTP get
// one 201 and N-1 200s, all naming the same job (run with -race).
func TestHTTPSingleFlight(t *testing.T) {
	release := make(chan struct{})
	cfg := Config{}
	cfg.runJob = func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return core.Outcome{}, ctx.Err()
		}
		return core.RunJob(ctx, sc, seed)
	}
	svc, ts := newTestServer(t, cfg)

	spec, _ := json.Marshal(tinySpec(1, 1))
	const callers = 8
	statuses := make([]int, callers)
	ids := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(string(spec)))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var v jobView
			json.NewDecoder(resp.Body).Decode(&v)
			statuses[i] = resp.StatusCode
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	close(release)

	var created, coalesced int
	for i := 0; i < callers; i++ {
		switch statuses[i] {
		case http.StatusCreated:
			created++
		case http.StatusOK:
			coalesced++
		default:
			t.Fatalf("caller %d: status %d", i, statuses[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("caller %d got job %s, caller 0 got %s", i, ids[i], ids[0])
		}
	}
	if created != 1 || coalesced != callers-1 {
		t.Fatalf("created=%d coalesced=%d, want 1 and %d", created, coalesced, callers-1)
	}
	if hits := svc.dedupHits.Load(); hits != callers-1 {
		t.Errorf("dedup hits = %d, want %d", hits, callers-1)
	}
}

func TestHTTPBackpressure(t *testing.T) {
	release := make(chan struct{})
	cfg := Config{ExecJobs: 1, QueueDepth: 1}
	cfg.runJob = func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return core.Outcome{}, ctx.Err()
		}
		return core.RunJob(ctx, sc, seed)
	}
	svc, ts := newTestServer(t, cfg)
	defer close(release)

	marshal := func(s Spec) string { b, _ := json.Marshal(s); return string(b) }
	resp, a := postSpec(t, ts, marshal(tinySpec(1, 1)))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("A: status %d", resp.StatusCode)
	}
	jobA, _ := svc.Job(a.ID)
	for i := 0; jobA.State() != StateRunning; i++ {
		if i > 5000 {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := postSpec(t, ts, marshal(tinySpec(1, 2))); resp.StatusCode != http.StatusCreated {
		t.Fatalf("B: status %d", resp.StatusCode)
	}
	resp, _ = postSpec(t, ts, marshal(tinySpec(1, 3)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("C: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After header = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
}

func TestHTTPDraining(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	drainNow(t, svc)
	resp, _ := postSpec(t, ts, `{}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining: status %d, want 503", resp.StatusCode)
	}
	// Liveness and readiness split: a draining daemon is alive (killing
	// it would defeat the graceful drain) but not ready for new work.
	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200 (pure liveness)", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPReadyz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body struct {
		Status string `json:"status"`
	}
	resp := getJSON(t, ts, "/readyz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ready" {
		t.Errorf("readyz: %d %q, want 200 ready", resp.StatusCode, body.Status)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body struct {
		Status string `json:"status"`
	}
	resp := getJSON(t, ts, "/healthz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ok" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body.Status)
	}
}

// TestHTTPEventsStream: the SSE endpoint replays the current snapshot,
// streams transitions, and closes after the terminal event.
func TestHTTPEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec, _ := json.Marshal(tinySpec(2, 1))
	_, created := postSpec(t, ts, string(spec))

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // server closes the stream at the terminal event
	if err != nil {
		t.Fatal(err)
	}
	stream := string(raw)
	if !strings.Contains(stream, "event: done\n") {
		t.Fatalf("stream has no terminal done event:\n%s", stream)
	}
	last := ""
	for _, line := range strings.Split(stream, "\n") {
		if strings.HasPrefix(line, "data: ") {
			last = strings.TrimPrefix(line, "data: ")
		}
	}
	var ev Event
	if err := json.Unmarshal([]byte(last), &ev); err != nil {
		t.Fatalf("last data line %q: %v", last, err)
	}
	if ev.State != StateDone || ev.Done != 2 || ev.Total != 2 {
		t.Errorf("terminal event = %+v", ev)
	}
}
