package metrics_test

import (
	"fmt"

	"suit/internal/metrics"
)

// The efficiency algebra of §5.4: finishing in half the time at half the
// power quadruples the efficiency.
func ExampleChange_Efficiency() {
	c := metrics.Change{Perf: 1.0, Power: -0.5}
	fmt.Printf("%+.0f %%\n", c.Efficiency()*100)
	// Output:
	// +300 %
}
