package emul

import (
	"fmt"

	"suit/internal/isa"
	"suit/internal/units"
)

// Emulate dispatches one disabled instruction to its software replacement.
// imm carries the immediate operand where the instruction has one
// (VPCLMULQDQ source selector, VPSRAD shift count). It returns an error
// for opcodes that have no emulation (IMUL is hardened in hardware and
// never trapped; background opcodes never trap).
func Emulate(op isa.Opcode, a, b Vec128, imm uint8) (Vec128, error) {
	switch op {
	case isa.OpVOR:
		return VOR(a, b), nil
	case isa.OpVXOR:
		return VXOR(a, b), nil
	case isa.OpVAND:
		return VAND(a, b), nil
	case isa.OpVANDN:
		return VANDN(a, b), nil
	case isa.OpVPADDQ:
		return VPADDQ(a, b), nil
	case isa.OpVPSRAD:
		return VPSRAD(a, uint(imm)), nil
	case isa.OpVPCMP:
		return VPCMPEQD(a, b), nil
	case isa.OpVPMAX:
		return VPMAXSD(a, b), nil
	case isa.OpVSQRTPD:
		return VSQRTPD(a), nil
	case isa.OpVPCLMULQDQ:
		return VPCLMULQDQ(a, b, imm), nil
	case isa.OpAESENC:
		return AESENC(a, b), nil
	default:
		return Vec128{}, fmt.Errorf("emul: no emulation for %v", op)
	}
}

// CostModel prices an emulated execution: the fixed emulation-call delay
// (two kernel transitions, §5.3 — 0.77 µs on the i9-9900K, 0.27 µs on the
// 7700X) plus the work of the software replacement in core cycles.
type CostModel struct {
	// CallDelay is the end-to-end #DO → user-space emulation → kernel →
	// program resume cost, excluding the emulation work itself.
	CallDelay units.Second
	// Cycles is the replacement's work per executed instruction.
	Cycles map[isa.Opcode]float64
}

// DefaultCycles is the per-opcode emulation work. Logic operations cost a
// handful of scalar instructions; VSQRTPD is two scalar sqrts; VPCLMULQDQ
// is the 64-step shift-xor loop; AESENC assumes the bit-sliced AES kernel
// amortised over a batch of blocks (§3.4), not the didactic per-byte
// S-box evaluation — this package's un-batched constant-time AESENC
// measures ≈9 000 cycles (see BenchmarkAESENCConstantTime), which is
// exactly why the paper prescribes bit-slicing for the emulation path.
var DefaultCycles = map[isa.Opcode]float64{
	isa.OpVOR:        6,
	isa.OpVXOR:       6,
	isa.OpVAND:       6,
	isa.OpVANDN:      6,
	isa.OpVPADDQ:     6,
	isa.OpVPSRAD:     10,
	isa.OpVPCMP:      12,
	isa.OpVPMAX:      12,
	isa.OpVSQRTPD:    60,
	isa.OpVPCLMULQDQ: 260,
	isa.OpAESENC:     800,
}

// NewCostModel returns a CostModel with the given call delay and the
// default per-opcode cycle counts.
func NewCostModel(callDelay units.Second) CostModel {
	cycles := make(map[isa.Opcode]float64, len(DefaultCycles))
	for op, c := range DefaultCycles {
		cycles[op] = c
	}
	return CostModel{CallDelay: callDelay, Cycles: cycles}
}

// Time returns the wall-clock cost of emulating op once with the core
// running at frequency f.
func (m CostModel) Time(op isa.Opcode, f units.Hertz) units.Second {
	work := m.Cycles[op]
	return m.CallDelay + units.TimeFor(work, f)
}
