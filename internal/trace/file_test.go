package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"suit/internal/isa"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub.suittrc")
	orig := &Trace{
		Name: "file-test", Total: 1_000_000, IPC: 1.5,
		Events: []Event{{100, isa.OpAESENC}, {5000, isa.OpVOR}},
	}
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", orig, got)
	}
}

func TestWriteFileInvalidTraceLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.suittrc")
	bad := &Trace{Total: 1} // IPC 0 → invalid
	if err := WriteFile(path, bad); err == nil {
		t.Fatal("invalid trace written")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed write left a file behind")
	}
	// No stray temp files either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("stray files after failed write: %v", entries)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file read succeeded")
	}
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("garbage file read succeeded")
	}
}

func TestWriteFileRelativePath(t *testing.T) {
	// dirOf(".") handling: a bare filename writes into the cwd.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Name: "rel", Total: 10, IPC: 1}
	if err := WriteFile("rel.suittrc", tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile("rel.suittrc"); err != nil {
		t.Fatal(err)
	}
}
