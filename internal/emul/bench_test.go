package emul

import (
	"testing"
)

// These microbenchmarks measure the actual software replacements — the
// real-world counterpart of the cycle counts in DefaultCycles. On a
// ~3 GHz host, ns/op × 3 gives a rough cycle count to sanity-check the
// cost model against.

func BenchmarkAESENCConstantTime(b *testing.B) {
	state := Vec128{0x0123456789abcdef, 0xfedcba9876543210}
	key := Vec128{0x1111111111111111, 0x2222222222222222}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		state = AESENC(state, key)
	}
	sinkVec = state
}

func BenchmarkAESENCReference(b *testing.B) {
	state := Vec128{0x0123456789abcdef, 0xfedcba9876543210}
	key := Vec128{0x1111111111111111, 0x2222222222222222}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		state = aesencRef(state, key)
	}
	sinkVec = state
}

func BenchmarkVPCLMULQDQ(b *testing.B) {
	x := Vec128{0xdeadbeefcafebabe, 0x0123456789abcdef}
	y := Vec128{0x5555555555555555, 0xaaaaaaaaaaaaaaaa}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = VPCLMULQDQ(x, y, 0x00)
	}
	sinkVec = x
}

func BenchmarkGhashMul(b *testing.B) {
	x := gcmBlock{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	h := gcmBlock{0xfe, 0xdc, 0xba}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = ghashMul(x, h)
	}
	sinkBlock = x
}

func BenchmarkSealAESGCM16KiB(b *testing.B) {
	var key [16]byte
	var nonce [12]byte
	pt := make([]byte, 16384) // one TLS record
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := SealAESGCM(key, nonce, pt, nil)
		if err != nil {
			b.Fatal(err)
		}
		sinkByte = out[0]
	}
}

func BenchmarkEncryptAES128Block(b *testing.B) {
	var key, block [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		block = EncryptAES128(key, block)
	}
	sinkByte = block[0]
}

var (
	sinkVec   Vec128
	sinkBlock gcmBlock
	sinkByte  byte
)
