package cpu

import (
	"errors"
	"math"
	"testing"

	"suit/internal/isa"
	"suit/internal/msr"
)

func newIdleMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(testConfig(testTrace(1000, 1)), pinnedBase{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteMSRInterlock(t *testing.T) {
	m := newIdleMachine(t)
	// Selecting the efficient curve before disabling must #GP (§3.2).
	err := m.WriteMSR(0, msr.SUITCurve, msr.CurveEfficient)
	if !errors.Is(err, ErrGP) {
		t.Fatalf("interlock returned %v, want #GP", err)
	}
	// Disable, then the same write succeeds.
	if err := m.WriteMSR(0, msr.SUITDisable, uint64(isa.FaultableMask)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMSR(0, msr.SUITCurve, msr.CurveEfficient); err != nil {
		t.Fatalf("efficient curve refused after disabling: %v", err)
	}
}

func TestWriteMSRDisableMaskValidation(t *testing.T) {
	m := newIdleMachine(t)
	// Disabling a background opcode is not architecturally allowed.
	bad := isa.MaskOf(isa.OpALU)
	if err := m.WriteMSR(0, msr.SUITDisable, uint64(bad)); !errors.Is(err, ErrGP) {
		t.Errorf("background-opcode mask accepted: %v", err)
	}
	// The faultable set plus IMUL is the allowed maximum.
	full := isa.FaultableMask.With(isa.OpIMUL)
	if err := m.WriteMSR(0, msr.SUITDisable, uint64(full)); err != nil {
		t.Errorf("full mask rejected: %v", err)
	}
}

func TestWriteMSRPartialDisableDropsEfficient(t *testing.T) {
	m := newIdleMachine(t)
	if err := m.WriteMSR(0, msr.SUITDisable, uint64(isa.FaultableMask)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMSR(0, msr.SUITCurve, msr.CurveEfficient); err != nil {
		t.Fatal(err)
	}
	// Re-enabling one instruction while on the efficient curve must not
	// leave the machine there.
	partial := isa.FaultableMask.Without(isa.OpAESENC)
	if err := m.WriteMSR(0, msr.SUITDisable, uint64(partial)); err != nil {
		t.Fatal(err)
	}
	if m.domains[0].target == ModeE {
		t.Error("machine still targets the efficient curve with AESENC enabled")
	}
}

func TestWriteMSRDeadline(t *testing.T) {
	m := newIdleMachine(t)
	if err := m.WriteMSR(0, msr.SUITDeadline, 30_000); err != nil { // 30 µs in ns
		t.Fatal(err)
	}
	d := m.domains[0]
	if math.Abs(float64(d.deadlineAt)-30e-6) > 1e-12 {
		t.Errorf("deadlineAt = %v, want 30 µs", d.deadlineAt)
	}
	if err := m.WriteMSR(0, msr.SUITDeadline, 0); err != nil {
		t.Fatal(err)
	}
	if d.deadlineAt != 0 {
		t.Error("zero write did not disarm the timer")
	}
}

func TestWriteMSRBadCurveValueAndDomain(t *testing.T) {
	m := newIdleMachine(t)
	if err := m.WriteMSR(0, msr.SUITCurve, 7); !errors.Is(err, ErrGP) {
		t.Errorf("bogus curve value accepted: %v", err)
	}
	if err := m.WriteMSR(42, msr.SUITCurve, 0); !errors.Is(err, ErrGP) {
		t.Errorf("bogus domain accepted: %v", err)
	}
	if _, err := m.ReadMSR(42, msr.SUITCurve); !errors.Is(err, ErrGP) {
		t.Errorf("bogus domain read accepted: %v", err)
	}
}

func TestWriteMSRUnknownRegisterFaults(t *testing.T) {
	m := newIdleMachine(t)
	if err := m.WriteMSR(0, msr.Addr(0xBEEF), 1); err == nil {
		t.Error("unknown MSR accepted")
	}
	// Known plain registers pass through.
	if err := m.WriteMSR(0, msr.IA32PerfCtl, msr.EncodePerfCtl(30)); err != nil {
		t.Errorf("plain register write failed: %v", err)
	}
}

func TestReadMSRSynthesisedStatus(t *testing.T) {
	m := newIdleMachine(t)
	v, err := m.ReadMSR(0, msr.IA32PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	gotV := msr.DecodePerfStatusVolts(v)
	wantV := float64(m.Points().Base.V)
	if math.Abs(gotV-wantV) > 1.0/8192 {
		t.Errorf("PERF_STATUS voltage = %v, want %v", gotV, wantV)
	}
	// SUITDisable reads back the live hardware state.
	if got, _ := m.ReadMSR(0, msr.SUITDisable); got != 0 {
		t.Errorf("fresh machine reports disabled mask %#x", got)
	}
	if err := m.WriteMSR(0, msr.SUITDisable, uint64(isa.FaultableMask)); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.ReadMSR(0, msr.SUITDisable); isa.DisableMask(got) != isa.FaultableMask {
		t.Errorf("disable readback = %#x", got)
	}
}

func TestWriteMSRConservativeAlwaysAllowed(t *testing.T) {
	m := newIdleMachine(t)
	if err := m.WriteMSR(0, msr.SUITCurve, msr.CurveConservative); err != nil {
		t.Fatalf("conservative curve refused: %v", err)
	}
}
