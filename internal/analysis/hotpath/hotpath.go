// Package hotpath guards the simulator's per-event cost model. The
// constant-voltage fast path in internal/cpu exists so that math.Pow —
// tens of nanoseconds per call, ~60% of a cold sweep's profile before
// the cache landed — runs only while a voltage ramp is actually in
// flight. Any new math.Pow in internal/cpu reintroduces that cost on a
// path that may execute once per event, so each call site must carry an
// explained //lint:allow hotpath <reason> stating why it is off the
// steady-state path (or why it cannot be cached).
package hotpath

import (
	"go/ast"
	"go/types"

	"suit/internal/analysis"
)

// hotPackages are the packages whose functions run per simulated event.
var hotPackages = []string{"internal/cpu"}

// Analyzer flags math.Pow calls in the simulator hot path.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag math.Pow in internal/cpu's per-event code; the sanctioned pow-kernel/memo " +
		"helpers (powKernel, rampMemo, newPowKernel) replicate math.Pow bit-for-bit and may " +
		"call it freely — every other call needs //lint:allow hotpath <reason>",
	Run: run,
}

// sanctioned reports whether fd is one of the pow-kernel/memo helpers
// that exist precisely to wrap math.Pow: methods on powKernel or
// rampMemo (the exponent-specialized kernel and the ramp memo, whose
// math.Pow calls are the deliberate, bit-identical fallback ladder) and
// the kernel constructor. Calls inside them are the replacement for
// per-event math.Pow, not a reintroduction of it.
func sanctioned(fd *ast.FuncDecl) bool {
	if fd.Name.Name == "newPowKernel" {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "powKernel" || id.Name == "rampMemo")
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), hotPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && sanctioned(fd) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math" || fn.Name() != "Pow" {
					return true
				}
				pass.Reportf(sel.Pos(),
					"math.Pow on a per-event path; route it through the ramp memo's "+
						"exponent-specialized kernel (rampMemo.pow), keep it behind the "+
						"settled-ramp voltage cache (refreshVoltCache), or explain with "+
						"//lint:allow hotpath <reason> why this site is off the steady state")
				return true
			})
		}
	}
	return nil
}
