package main

import (
	"fmt"
	"os"
	"sort"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/report"
	"suit/internal/security"
	"suit/internal/strategy"
	"suit/internal/units"
	"suit/internal/workload"
)

// table6Rows are the configurations of Table 6.
type table6Config struct {
	label string
	chip  dvfs.Chip
	kind  core.StrategyKind
	cores int
}

func table6Configs() []table6Config {
	return []table6Config{
		{"𝒜₁  fV", dvfs.IntelI9_9900K(), core.KindFV, 1},
		{"𝒜₄  fV", dvfs.IntelI9_9900K(), core.KindFV, 4},
		{"𝒜∞  e", dvfs.IntelI9_9900K(), core.KindEmul, 1},
		{"ℬ∞  f", dvfs.AMDRyzen7700X(), core.KindFreq, 1},
		{"ℬ∞  e", dvfs.AMDRyzen7700X(), core.KindEmul, 1},
		{"𝒞∞  fV", dvfs.XeonSilver4208(), core.KindFV, 1},
	}
}

// runTable6 regenerates the paper's main results table.
func runTable6(c cfg, w *os.File) error {
	for _, spendAging := range []bool{false, true} {
		offset := "−70 mV"
		if spendAging {
			offset = "−97 mV"
		}
		t := report.NewTable(fmt.Sprintf("Table 6 (%s undervolt)", offset),
			"CPU/OS", "", "SPECgmean", "SPECmedian", "525.x264", "SPECnoSIMD", "Nginx", "VLC")
		for _, rc := range table6Configs() {
			row, err := core.EvaluateSuite(rc.chip, rc.kind, rc.cores, spendAging, c.specInstr, c.seed)
			if err != nil {
				return fmt.Errorf("%s: %w", rc.label, err)
			}
			t.AddRow(rc.label, "Pwr", report.Pct(row.SPECGmean.Pwr), report.Pct(row.SPECMedian.Pwr),
				report.Pct(row.X264.Pwr), report.Pct(row.NoSIMD.Pwr), report.Pct(row.Nginx.Pwr), report.Pct(row.VLC.Pwr))
			t.AddRow("", "Perf", report.Pct(row.SPECGmean.Perf), report.Pct(row.SPECMedian.Perf),
				report.Pct(row.X264.Perf), report.Pct(row.NoSIMD.Perf), report.Pct(row.Nginx.Perf), report.Pct(row.VLC.Perf))
			t.AddRow("", "Eff", report.Pct(row.SPECGmean.Eff), report.Pct(row.SPECMedian.Eff),
				report.Pct(row.X264.Eff), report.Pct(row.NoSIMD.Eff), report.Pct(row.Nginx.Eff), report.Pct(row.VLC.Eff))
			if rc.label == "𝒞∞  fV" && spendAging {
				defer fmt.Fprintf(w, "\n𝒞 fV at −97 mV spends %.1f %% of the time on the efficient curve (paper: 72.7 %%)\n",
					row.MeanEfficientShare*100)
			}
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runTable7 prints the Table 7 parameters and a sensitivity check around
// the deadline (§6.4: ±10 µs changes average efficiency by only ~0.6 %).
func runTable7(c cfg, w *os.File) error {
	t := report.NewTable("Table 7. Operating-strategy parameters",
		"CPU", "p_dl", "p_ts", "p_ec", "p_df")
	ac := strategy.ParamsAC()
	b := strategy.ParamsB()
	t.AddRow("𝒜 & 𝒞", ac.Deadline.String(), ac.TimeSpan.String(),
		fmt.Sprintf("%d", ac.MaxExceptions), fmt.Sprintf("%.0f", ac.DeadlineFactor))
	t.AddRow("ℬ", b.Deadline.String(), b.TimeSpan.String(),
		fmt.Sprintf("%d", b.MaxExceptions), fmt.Sprintf("%.0f", b.DeadlineFactor))
	if err := t.Render(w); err != nil {
		return err
	}

	// Sensitivity: efficiency of a mid-density benchmark under deadline
	// variations, fanned out through the shared engine.
	gcc, _ := workload.ByName("502.gcc")
	chip := dvfs.XeonSilver4208()
	deadlines := []float64{10, 20, 30, 40, 60, 120}
	params := make([]strategy.Params, len(deadlines))
	scs := make([]core.Scenario, len(deadlines))
	for i, dl := range deadlines {
		params[i] = strategy.ParamsAC()
		params[i].Deadline = units.Microseconds(dl)
		scs[i] = core.Scenario{Chip: chip, Bench: gcc, Kind: core.KindFV,
			SpendAging: true, Instructions: c.specInstr / 2, Params: &params[i], Seed: c.seed}
	}
	outs, err := core.RunAll(scs)
	if err != nil {
		return err
	}
	st := report.NewTable("\nDeadline sensitivity (502.gcc on 𝒞, −97 mV)",
		"p_dl", "efficiency", "E-share")
	for i, o := range outs {
		st.AddRow(fmt.Sprintf("%.0f µs", deadlines[i]), report.Pct(o.Efficiency),
			fmt.Sprintf("%.1f %%", o.EfficientShare*100))
	}
	return st.Render(w)
}

// runTable8 counts, per configuration, how many benchmarks prefer the
// noSIMD build over SUIT.
func runTable8(c cfg, w *os.File) error {
	t := report.NewTable("Table 8. Benchmarks where noSIMD beats SUIT (−97 mV)",
		"config", "No SIMD", "SUIT")
	for _, rc := range table6Configs() {
		row, err := core.CompareNoSIMD(rc.chip, rc.kind, rc.cores, true, c.specInstr/4, c.seed)
		if err != nil {
			return err
		}
		t.AddRow(rc.label, fmt.Sprintf("%d", row.NoSIMDBetter), fmt.Sprintf("%d", row.SUITBetter))
	}
	return t.Render(w)
}

// runFig16 prints per-benchmark performance and efficiency on CPU 𝒞.
func runFig16(c cfg, w *os.File) error {
	chip := dvfs.XeonSilver4208()
	type rowData struct {
		name string
		lo   core.Outcome
		hi   core.Outcome
	}
	benches := append(workload.SPEC(), workload.Nginx(), workload.VLC())
	var scs []core.Scenario
	for _, b := range benches {
		for _, aging := range []bool{false, true} {
			scs = append(scs, core.Scenario{Chip: chip, Bench: b, Kind: core.KindFV,
				SpendAging: aging, Instructions: c.specInstr, Seed: c.seed})
		}
	}
	outs, err := core.RunAll(scs)
	if err != nil {
		return err
	}
	var rows []rowData
	for i, b := range benches {
		rows = append(rows, rowData{b.Name, outs[2*i], outs[2*i+1]})
	}
	// Paper orders the x-axis by decreasing benefit.
	sort.Slice(rows, func(i, j int) bool { return rows[i].hi.Efficiency > rows[j].hi.Efficiency })
	t := report.NewTable("Fig 16. Performance and efficiency on 𝒞 (fV)",
		"benchmark", "perf −70", "eff −70", "perf −97", "eff −97", "E-share −97")
	for _, r := range rows {
		t.AddRow(r.name,
			report.Pct(r.lo.Change.Perf), report.Pct(r.lo.Efficiency),
			report.Pct(r.hi.Change.Perf), report.Pct(r.hi.Efficiency),
			fmt.Sprintf("%.1f %%", r.hi.EfficientShare*100))
	}
	return t.Render(w)
}

// runSecurity performs the §6.9 analysis.
func runSecurity(c cfg, w *os.File) error {
	gb := guardband.Default()
	off := gb.EfficientOffset(isa.FaultableMask, true, true)
	if bad := security.CheckReduction(gb, isa.FaultableMask, off, true); len(bad) != 0 {
		return fmt.Errorf("reduction check failed: %v", bad)
	}
	fmt.Fprintf(w, "reduction check: every enabled instruction keeps a non-negative margin at %v ✓\n", off)
	if bad := security.CheckReduction(gb, 0, off, false); len(bad) == 0 {
		return fmt.Errorf("blind undervolting unexpectedly passed the reduction check")
	} else {
		fmt.Fprintf(w, "without SUIT the same offset violates %d instructions (incl. IMUL): insecure ✗\n\n", len(bad))
	}

	rep, err := security.RunAttack(dvfs.IntelI9_9900K(), off, c.seed)
	if err != nil {
		return err
	}
	t := report.NewTable("Undervolting fault attack (AES victim, −97 mV)",
		"configuration", "silent faults", "#DO traps", "AES result")
	for _, o := range []security.AttackOutcome{rep.Nominal, rep.Unsafe, rep.SUIT} {
		result := "correct"
		if o.WrongResult {
			result = "CORRUPTED (key recoverable by DFA)"
		}
		t.AddRow(o.Config, fmt.Sprintf("%d", o.Faults), fmt.Sprintf("%d", o.Exceptions), result)
	}
	return t.Render(w)
}
