// End-to-end integration tests spanning the whole stack: program →
// recorded trace → file round trip → event-driven machine → security
// verification → metrics. These are the invariants a downstream user
// depends on regardless of which subsystem changes.
package suit_test

import (
	"path/filepath"
	"testing"

	"suit/internal/core"
	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/program"
	"suit/internal/security"
	"suit/internal/strategy"
	"suit/internal/trace"
	"suit/internal/units"
	"suit/internal/workload"
)

// TestEndToEndProgramPipeline runs the full path: author a program,
// record its trace, persist and reload it, execute it under SUIT with
// functional emulation, and verify the security invariant.
func TestEndToEndProgramPipeline(t *testing.T) {
	service := program.HTTPSRequest(16, 500_000).Repeat(10)
	recorded, err := service.Record()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "service.suittrc")
	if err := trace.WriteFile(path, recorded); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total != recorded.Total || len(loaded.Events) != len(recorded.Events) {
		t.Fatal("trace changed across the file round trip")
	}

	chip := dvfs.XeonSilver4208()
	gb := guardband.Default()
	m, err := cpu.New(cpu.Config{
		Chip:             chip,
		Traces:           []*trace.Trace{loaded},
		Offset:           gb.EfficientOffset(isa.FaultableMask, true, true),
		Faults:           gb,
		HardenedIMUL:     true,
		ExceptionDelay:   chip.ExceptionDelay,
		Emul:             emul.NewCostModel(chip.EmulCallDelay),
		ExecuteEmulation: true,
		Seed:             1,
	}, strategy.Dynamic{P: strategy.ParamsAC()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := security.VerifyNoFaults(res); err != nil {
		t.Fatal(err)
	}
	if res.Exceptions == 0 {
		t.Fatal("service loop produced no traps")
	}
	if res.Instructions != recorded.Total {
		t.Fatalf("committed %d of %d instructions", res.Instructions, recorded.Total)
	}
}

// TestEverySPECWorkloadIsSafeUnderEveryStrategy sweeps the full SUIT
// strategy matrix over representative workloads and requires zero monitor
// faults everywhere — the repository-wide security statement.
func TestEverySPECWorkloadIsSafeUnderEveryStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is expensive")
	}
	kinds := []core.StrategyKind{core.KindFV, core.KindFreq, core.KindVolt, core.KindEmul, core.KindDynamic, core.KindNoSIMD}
	names := []string{"557.xz", "502.gcc", "520.omnetpp", "525.x264", "nginx"}
	for _, n := range names {
		b, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("workload %s missing", n)
		}
		for _, k := range kinds {
			o, err := core.Run(core.Scenario{
				Chip: dvfs.XeonSilver4208(), Bench: b, Kind: k,
				SpendAging: true, Instructions: 50_000_000, Seed: 7,
			})
			if err != nil {
				t.Errorf("%s/%s: %v", n, k, err)
				continue
			}
			if err := security.VerifyNoFaults(o.Run); err != nil {
				t.Errorf("%s/%s: %v", n, k, err)
			}
		}
	}
}

// TestBaselineMonotonicity checks cross-cutting sanity on the steady-state
// response for every chip: the sustained score never falls as the
// undervolt deepens (more TDP headroom can only raise the frequency), and
// the full design point clearly beats a shallow offset. Efficiency itself
// is NOT monotone point-to-point — at a p-state bin boundary the chip
// cashes headroom into frequency at a power cost (the performance-governor
// behaviour real parts exhibit) — so only the endpoint comparison is
// asserted.
func TestBaselineMonotonicity(t *testing.T) {
	for _, chip := range []dvfs.Chip{
		dvfs.IntelI5_1035G1(), dvfs.IntelI9_9900K(),
		dvfs.AMDRyzen7700X(), dvfs.XeonSilver4208(),
	} {
		prevScore := -1.0
		for _, mv := range []float64{-20, -40, -70, -97} {
			p := core.UndervoltResponse(chip, units.MilliVolts(mv))
			if p.Score < prevScore-1e-9 {
				t.Errorf("%s: score fell to %v at %v mV", chip.Name, p.Score, mv)
			}
			prevScore = p.Score
		}
		shallow := core.UndervoltResponse(chip, units.MilliVolts(-20))
		deep := core.UndervoltResponse(chip, units.MilliVolts(-97))
		if deep.Eff <= shallow.Eff {
			t.Errorf("%s: −97 mV efficiency %v not above −20 mV %v", chip.Name, deep.Eff, shallow.Eff)
		}
	}
}

// TestEnergyAccountingConsistency: for a pinned baseline run the energy
// must equal power × duration within float tolerance, and the RAPL
// counter must agree to one quantum.
func TestEnergyAccountingConsistency(t *testing.T) {
	b, _ := workload.ByName("505.mcf")
	o, err := core.Run(core.Scenario{
		Chip: dvfs.IntelI9_9900K(), Bench: b, Kind: core.KindFV,
		SpendAging: true, Instructions: 100_000_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []cpu.Result{o.Base, o.Run} {
		want := float64(res.AvgPower) * float64(res.Duration)
		if diff := float64(res.Energy) - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("energy %v != power×duration %v", res.Energy, want)
		}
		raplJ := float64(res.RAPLCounter) / 16384
		if d := raplJ - float64(res.Energy); d > 1.0/16384 || d < -1.0/16384 {
			t.Errorf("RAPL %v J vs energy %v", raplJ, res.Energy)
		}
	}
}

// TestNoVariationPartGainsNothing ties §3.1's observation through the
// whole stack: on a part without instruction voltage variation, the
// vendor procedure certifies (almost) no efficient-curve offset.
func TestNoVariationPartGainsNothing(t *testing.T) {
	m := guardband.NoVariation()
	off := m.EfficientOffset(isa.FaultableMask, true, false)
	if off != -m.BackgroundVariation {
		t.Errorf("offset %v, want the undifferentiated background margin", off)
	}
	// Disabling instructions buys nothing over not disabling them.
	if m.EfficientOffset(0, false, false) != off {
		t.Error("disabling changed the offset without variation")
	}
}
