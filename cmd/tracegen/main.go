// Command tracegen generates, inspects and converts SUIT instruction
// traces (§5.1's QEMU-plugin substitute).
//
// Examples:
//
//	tracegen -bench nginx -total 2e8 -o nginx.suittrc     # generate
//	tracegen -stats nginx.suittrc                          # inspect
//	tracegen -bench 557.xz -total 1e9 -json -o xz.json     # JSON form
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"suit/internal/report"
	"suit/internal/trace"
	"suit/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "workload model to generate from")
		specFile  = flag.String("spec", "", "JSON workload spec file instead of a built-in model")
		totalStr  = flag.String("total", "1e9", "total instructions (accepts scientific notation)")
		seed      = flag.Uint64("seed", 1, "generation seed")
		out       = flag.String("o", "", "output file (default stdout summary only)")
		useJSON   = flag.Bool("json", false, "write JSON instead of the binary format")
		statsFile = flag.String("stats", "", "read a trace file and print statistics")
	)
	flag.Parse()

	if *statsFile != "" {
		if err := printStats(*statsFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *benchName == "" && *specFile == "" {
		fmt.Fprintln(os.Stderr, "need -bench or -spec (or -stats <file>)")
		os.Exit(2)
	}
	var b workload.Benchmark
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintf(os.Stderr, "parsing %s: %v\n", *specFile, err)
			os.Exit(1)
		}
	} else {
		var ok bool
		b, ok = workload.ByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *benchName)
			os.Exit(2)
		}
	}
	totalF, err := strconv.ParseFloat(*totalStr, 64)
	if err != nil || totalF < 1 {
		fmt.Fprintf(os.Stderr, "bad -total %q\n", *totalStr)
		os.Exit(2)
	}
	tr, err := b.GenerateTrace(uint64(totalF), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	summarize(tr)
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if *useJSON {
		enc := json.NewEncoder(f)
		err = enc.Encode(tr)
	} else {
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	summarize(tr)
	return nil
}

func summarize(tr *trace.Trace) {
	s := trace.Summarize(tr)
	fmt.Printf("trace %q: %d instructions, IPC %.2f\n", s.Name, s.Total, tr.IPC)
	fmt.Printf("interesting events: %d (density %.2e)\n", s.Events, s.Density)
	fmt.Printf("gaps: mean %.0f, median %d, max %d instructions\n", s.MeanGap, s.MedianGap, s.MaxGap)

	t := report.NewTable("events by opcode", "opcode", "count")
	for op, n := range s.ByOpcode {
		t.AddRow(op.String(), fmt.Sprintf("%d", n))
	}
	_ = t.Render(os.Stdout)

	labels := make([]string, len(s.GapHistBase))
	for i := range labels {
		labels[i] = fmt.Sprintf("10^%d", i)
	}
	_ = report.Histogram(os.Stdout, "gap-size histogram (log10 buckets)", labels, s.GapHistBase, 48)
}
