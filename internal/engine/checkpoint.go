package engine

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// checkpointMagic versions the journal format; the config line follows
// it so a journal can never be replayed against a different run setup.
const checkpointMagic = "suit-checkpoint v1"

// Checkpoint is an append-only journal of completed job fingerprints,
// kept next to the disk cache. Together the two give crash-safe
// resume: the cache holds the finished results, the journal records
// which jobs of this sweep configuration finished, so a killed run
// restarted with the same configuration recomputes only the missing
// jobs and can report how much work was already done. Each completion
// is appended (one short hash line) as it happens, so even a SIGKILL
// loses at most the in-flight jobs.
//
// A nil *Checkpoint is valid and inert, so callers can thread an
// optional journal without nil checks.
type Checkpoint struct {
	path   string
	config string

	mu   sync.Mutex
	f    *os.File
	done map[string]bool
}

// hashKey shortens a fingerprint to a fixed-width journal line. The
// same digest family as the cache filenames, so journal lines never
// contain sweep internals verbatim.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

// OpenCheckpoint opens the journal at path. config must canonically
// describe the run (command, flags, base seed): it is stored in the
// journal header and a resume against a journal written under a
// different config is refused, so stale journals cannot silently
// mislabel work as done.
//
// With resume=false any existing journal is truncated and a fresh
// header written; with resume=true an existing journal's completed set
// is loaded (a missing file starts empty). Unparseable journal lines
// are ignored — a torn final line from a killed process costs at most
// one recomputation.
func OpenCheckpoint(path, config string, resume bool) (*Checkpoint, error) {
	if strings.ContainsAny(config, "\n\r") {
		return nil, fmt.Errorf("checkpoint config must be a single line: %q", config)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	cp := &Checkpoint{path: path, config: config, done: make(map[string]bool)}

	if resume {
		if err := cp.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	cp.f = f
	// A fresh (truncated) journal and a resume of a not-yet-existing
	// file both start at size 0 and need the header.
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if _, err := fmt.Fprintf(f, "%s %s\n", checkpointMagic, config); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return cp, nil
}

// load reads an existing journal into the completed set, validating the
// header against the expected config.
func (c *Checkpoint) load() error {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil // empty file: treat as fresh
	}
	header := sc.Text()
	rest, ok := strings.CutPrefix(header, checkpointMagic+" ")
	if !ok {
		return fmt.Errorf("checkpoint %s: not a checkpoint journal (header %q)", c.path, header)
	}
	if rest != c.config {
		return fmt.Errorf("checkpoint %s was written by a different run configuration:\n  journal: %s\n  current: %s\nre-run without -resume to start over", c.path, rest, c.config)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if len(line) == 32 && isHex(line) {
			c.done[line] = true
		}
	}
	return sc.Err()
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// Done reports whether a previous run journaled the fingerprint as
// complete. Safe on a nil Checkpoint (always false).
func (c *Checkpoint) Done(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[hashKey(key)]
}

// Completed is the number of distinct fingerprints journaled so far.
// Safe on a nil Checkpoint (0).
func (c *Checkpoint) Completed() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Record journals a completed fingerprint. Idempotent; each new entry
// is appended and reaches the file immediately (no userspace
// buffering), so an interrupt after Record never loses the completion.
// Journal I/O is best-effort: a full disk disables resume, it never
// fails the sweep. Safe on a nil Checkpoint (no-op).
func (c *Checkpoint) Record(key string) {
	if c == nil {
		return
	}
	h := hashKey(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done[h] || c.f == nil {
		if !c.done[h] {
			c.done[h] = true // journal closed: keep the in-memory set coherent
		}
		return
	}
	c.done[h] = true
	fmt.Fprintf(c.f, "%s\n", h)
}

// Close flushes and closes the journal file. The in-memory completed
// set stays usable. Safe on a nil Checkpoint.
func (c *Checkpoint) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Path returns the journal's file path (empty on a nil Checkpoint).
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return c.path
}
