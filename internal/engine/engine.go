// Package engine runs large batches of independent simulations — the
// "hundreds of simulations" behind Table 7 and every other sweep-shaped
// experiment — through one shared, deterministic parallel runner.
//
// The engine provides four things every sweep caller used to hand-roll:
//
//   - a bounded worker pool (GOMAXPROCS-sized by default, -j overridable)
//     consuming a queue of simulation specs;
//   - per-job deterministic seed derivation (a hash of the spec
//     fingerprint mixed with a base seed), so results are identical at
//     any parallelism level;
//   - a memoized result store — always in memory, optionally on disk
//     (-cache dir) — keyed by the canonical spec fingerprint, so repeated
//     table/sweep runs skip already-computed points;
//   - a progress/throughput reporter (jobs done, jobs/s, ETA) on stderr.
//
// Results come back in spec order regardless of completion order, which
// together with the seed contract makes engine output a pure function of
// (specs, base seed): `-j 1` and `-j 8` produce byte-identical reports.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures an Engine. The zero value is usable: GOMAXPROCS
// workers, base seed 0, no disk cache, no progress output.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed is mixed into every derived job seed (see DeriveSeed).
	BaseSeed uint64
	// CacheDir, when non-empty, persists results as JSON files keyed by
	// the spec fingerprint (plus BaseSeed), shared across processes.
	CacheDir string
	// Progress, when non-nil, receives periodic throughput lines and a
	// final summary. Point it at os.Stderr to keep stdout reproducible.
	Progress io.Writer
	// ProgressEvery is the reporting interval; <= 0 means 1s.
	ProgressEvery time.Duration
	// Label prefixes progress lines; empty means "engine".
	Label string
}

// Stats counts the engine's work since creation. Jobs is the number of
// submitted specs; Unique excludes within-batch duplicates; Ran is the
// number of specs actually simulated. MemHits/DiskHits count unique specs
// resolved from the memo layers; HitRate is (MemHits+DiskHits)/Unique.
type Stats struct {
	Jobs     int64
	Unique   int64
	Ran      int64
	MemHits  int64
	DiskHits int64
	// Elapsed is the wall-clock time spent inside Run calls.
	Elapsed time.Duration
}

// Hits is the number of unique specs served from a cache layer.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// HitRate is the fraction of unique specs served from a cache layer.
func (s Stats) HitRate() float64 {
	if s.Unique == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Unique)
}

// Throughput is the number of simulated specs per second of Run time.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ran) / s.Elapsed.Seconds()
}

func (s Stats) String() string {
	return fmt.Sprintf("%d jobs (%d unique), %d ran, %d memo + %d disk hits (%.1f%% hit rate), %.1f jobs/s",
		s.Jobs, s.Unique, s.Ran, s.MemHits, s.DiskHits, s.HitRate()*100, s.Throughput())
}

// Engine runs spec-shaped jobs of type S producing results of type R.
// An Engine is safe for concurrent use; the in-memory memo persists for
// its lifetime.
type Engine[S, R any] struct {
	key  func(S) string
	run  func(spec S, seed uint64) (R, error)
	opts Options

	mu    sync.Mutex
	memo  map[string]R
	stats Stats
}

// New builds an engine. key must return a canonical fingerprint: equal
// fingerprints are assumed to denote identical work and are computed only
// once. run receives the spec plus its derived seed (DeriveSeed of the
// fingerprint); callers whose specs carry explicit seeds may ignore it.
func New[S, R any](key func(S) string, run func(spec S, seed uint64) (R, error), opts Options) *Engine[S, R] {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = time.Second
	}
	if opts.Label == "" {
		opts.Label = "engine"
	}
	return &Engine[S, R]{key: key, run: run, opts: opts, memo: make(map[string]R)}
}

// Stats returns a snapshot of the cumulative accounting.
func (e *Engine[S, R]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// job groups all batch indices that share one fingerprint.
type job[S any] struct {
	key     string
	spec    S
	indices []int
}

// Run evaluates every spec and returns the results in spec order. The
// first job error cancels the remaining queue and is returned; ctx
// cancellation stops dispatching (in-flight jobs finish first) and
// returns ctx.Err(). Run never leaks goroutines: all workers have exited
// by the time it returns.
func (e *Engine[S, R]) Run(ctx context.Context, specs []S) ([]R, error) {
	start := time.Now() //lint:allow determinism wall-clock only feeds Stats.Elapsed and the progress reporter, never results
	results := make([]R, len(specs))

	// Group duplicate fingerprints so each is computed once per batch.
	byKey := make(map[string]*job[S], len(specs))
	order := make([]*job[S], 0, len(specs))
	for i, s := range specs {
		k := e.key(s)
		if j, ok := byKey[k]; ok {
			j.indices = append(j.indices, i)
			continue
		}
		j := &job[S]{key: k, spec: s, indices: []int{i}}
		byKey[k] = j
		order = append(order, j)
	}

	fill := func(j *job[S], r R) {
		for _, i := range j.indices {
			results[i] = r
		}
	}

	// Resolve the memo layers before spinning up workers.
	var pending []*job[S]
	var memHits, diskHits int64
	for _, j := range order {
		e.mu.Lock()
		r, ok := e.memo[j.key]
		e.mu.Unlock()
		if ok {
			fill(j, r)
			memHits++
			continue
		}
		if r, ok := e.diskGet(j.key); ok {
			e.mu.Lock()
			e.memo[j.key] = r
			e.mu.Unlock()
			fill(j, r)
			diskHits++
			continue
		}
		pending = append(pending, j)
	}

	var done atomic.Int64
	stopProgress := e.startProgress(&done, len(pending), start)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan *job[S])
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if runCtx.Err() != nil {
					continue // drain the queue without working
				}
				r, err := e.run(j.spec, DeriveSeed(e.opts.BaseSeed, j.key))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("engine: job %d/%d: %w", j.indices[0]+1, len(specs), err)
					}
					errMu.Unlock()
					cancel()
					continue
				}
				e.mu.Lock()
				e.memo[j.key] = r
				e.stats.Ran++
				e.mu.Unlock()
				e.diskPut(j.key, r)
				fill(j, r)
				done.Add(1)
			}
		}()
	}
feed:
	for _, j := range pending {
		select {
		case jobs <- j:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	stopProgress()

	e.mu.Lock()
	e.stats.Jobs += int64(len(specs))
	e.stats.Unique += int64(len(order))
	e.stats.MemHits += memHits
	e.stats.DiskHits += diskHits
	e.stats.Elapsed += time.Since(start) //lint:allow determinism Stats.Elapsed is operator telemetry, not a result
	e.mu.Unlock()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// startProgress launches the throughput reporter; the returned func stops
// it and prints the final line. A no-op when Progress is nil or the batch
// resolved entirely from cache.
func (e *Engine[S, R]) startProgress(done *atomic.Int64, total int, start time.Time) func() {
	if e.opts.Progress == nil || total == 0 {
		return func() {}
	}
	report := func(final bool) {
		d := done.Load()
		elapsed := time.Since(start).Seconds() //lint:allow determinism progress-line throughput is stderr telemetry, not a result
		rate := float64(d) / elapsed
		line := fmt.Sprintf("%s: %d/%d jobs, %.1f jobs/s", e.opts.Label, d, total, rate)
		if !final && rate > 0 {
			eta := time.Duration(float64(total-int(d))/rate*1e9) * time.Nanosecond
			line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
		}
		fmt.Fprintln(e.opts.Progress, line)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(e.opts.ProgressEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				report(false)
			case <-stop:
				return
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
		report(true)
	}
}

// DeriveSeed maps (base seed, spec fingerprint) to the job's simulation
// seed: an FNV-1a hash of the fingerprint mixed with the base seed and
// finalized with splitmix64. The derivation depends only on its inputs —
// never on worker count or completion order — which is what makes sweep
// output reproducible at any parallelism level. The result is never 0 so
// downstream code can keep treating a zero seed as "unset".
func DeriveSeed(base uint64, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	x := h.Sum64() ^ (base * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
