package isa_test

import (
	"fmt"

	"suit/internal/isa"
)

// The faultable set SUIT disables on the efficient curve (Table 1 minus
// the statically hardened IMUL).
func ExampleFaultable() {
	for _, op := range isa.Faultable() {
		fmt.Println(op)
	}
	// Output:
	// VOR
	// AESENC
	// VXOR
	// VANDN
	// VAND
	// VSQRTPD
	// VPCLMULQDQ
	// VPSRAD
	// VPCMP
	// VPMAX
	// VPADDQ
}
