// Package workload models the applications of the paper's evaluation: all
// 23 SPEC CPU2017 rate benchmarks, an nginx HTTPS server under wrk load,
// and VLC streaming a 1080p video (§5.1, §6.2).
//
// The paper records instruction traces of these applications with a QEMU
// plugin; neither QEMU nor SPEC are available here, so each workload is
// described by a generative model calibrated to the paper's published
// statistics: faultable instructions arrive in bursts with
// benchmark-specific episode rates (Figs 5–7), IMUL frequency per
// benchmark (§6.1: 0.99 % of instructions in 525.x264, 0.07 % on average
// elsewhere), and the measured impact of compiling without SIMD (Table 4).
package workload

import (
	"fmt"

	"suit/internal/isa"
	"suit/internal/trace"
)

// Suite classifies a workload.
type Suite uint8

// Workload suites.
const (
	SPECint Suite = iota
	SPECfp
	Network
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	switch s {
	case SPECint:
		return "SPECint"
	case SPECfp:
		return "SPECfp"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("Suite(%d)", uint8(s))
	}
}

// Benchmark is the generative model of one workload.
type Benchmark struct {
	Name  string
	Suite Suite
	// IPC is the baseline instructions-per-cycle of the workload, used to
	// convert instruction counts to cycles (§5.1's INSTRUCTIONS_RETIRED
	// method).
	IPC float64
	// IMULFraction is the share of dynamic instructions that are IMUL.
	IMULFraction float64

	// Faultable-instruction arrival model. BurstEvery is the mean
	// instruction distance between burst episodes (0 disables bursts);
	// each episode contains ≈BurstLen events BurstIntraGap instructions
	// apart. PoissonGap adds memoryless events (0 disables); dense
	// workloads like 520.omnetpp use it to model faultable instructions
	// arriving continuously just below the deadline spacing.
	BurstEvery    float64
	BurstLen      float64
	BurstIntraGap uint64
	BurstSigma    float64
	PoissonGap    float64
	BurstOp       isa.Opcode
	DiffuseOp     isa.Opcode

	// NoSIMD is the measured relative score change when the workload is
	// compiled without SSE/AVX (Table 4), keyed by CPU family.
	NoSIMD map[CPUFamily]float64

	// TEE marks a workload running inside a trusted execution
	// environment (SGX-style enclave): SUIT may still switch DVFS curves
	// for it, but the OS cannot map emulation code into the enclave, so
	// emulation-based strategies are unavailable (§4.3).
	TEE bool
}

// CPUFamily keys the per-CPU Table 4 measurements.
type CPUFamily uint8

// The CPU families of Table 4. The Xeon Silver 4208 uses the Intel column.
const (
	Intel CPUFamily = iota
	AMD
)

// String implements fmt.Stringer.
func (f CPUFamily) String() string {
	if f == AMD {
		return "7700X"
	}
	return "i9-9900K"
}

// Validate checks the model.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: unnamed benchmark")
	}
	if !(b.IPC > 0) {
		return fmt.Errorf("workload: %s has non-positive IPC", b.Name)
	}
	if b.IMULFraction < 0 || b.IMULFraction > 0.05 {
		return fmt.Errorf("workload: %s IMUL fraction %v implausible", b.Name, b.IMULFraction)
	}
	if b.BurstEvery < 0 || b.PoissonGap < 0 {
		return fmt.Errorf("workload: %s negative arrival parameter", b.Name)
	}
	if b.BurstEvery > 0 && (b.BurstLen < 1 || b.BurstIntraGap == 0) {
		return fmt.Errorf("workload: %s burst model incomplete", b.Name)
	}
	if _, ok := b.NoSIMD[Intel]; !ok {
		return fmt.Errorf("workload: %s missing Intel noSIMD impact", b.Name)
	}
	if _, ok := b.NoSIMD[AMD]; !ok {
		return fmt.Errorf("workload: %s missing AMD noSIMD impact", b.Name)
	}
	return nil
}

// TraceSpec builds the trace.Spec generating total instructions of this
// workload. The trace contains the faultable-set events only — IMUL is
// hardened in SUIT CPUs and never traps, so its cost is modelled
// analytically (internal/uarch) rather than per event.
func (b Benchmark) TraceSpec(total uint64, seed uint64) trace.Spec {
	var src []trace.Source
	if b.BurstEvery > 0 {
		src = append(src, trace.Burst{
			Op:           b.burstOp(),
			MeanBurstLen: b.BurstLen,
			IntraGap:     b.BurstIntraGap,
			QuietMedian:  b.BurstEvery,
			QuietSigma:   b.BurstSigma,
		})
	}
	if b.PoissonGap > 0 {
		src = append(src, trace.Poisson{Op: b.diffuseOp(), MeanGap: b.PoissonGap})
	}
	return trace.Spec{Name: b.Name, Total: total, IPC: b.IPC, Seed: seed, Sources: src}
}

func (b Benchmark) burstOp() isa.Opcode {
	if b.BurstOp != isa.OpNop {
		return b.BurstOp
	}
	return isa.OpVOR
}

func (b Benchmark) diffuseOp() isa.Opcode {
	if b.DiffuseOp != isa.OpNop {
		return b.DiffuseOp
	}
	return isa.OpVXOR
}

// GenerateTrace materialises a trace of total instructions.
func (b Benchmark) GenerateTrace(total uint64, seed uint64) (*trace.Trace, error) {
	return trace.Generate(b.TraceSpec(total, seed))
}

// Mix returns the instruction mix for the out-of-order model: IMUL at the
// benchmark's fraction, vector work proportional to its faultable density,
// and a generic scalar/memory/branch background.
func (b Benchmark) Mix() map[isa.Opcode]float64 {
	vec := 0.0
	if b.BurstEvery > 0 {
		vec += b.BurstLen / b.BurstEvery
	}
	if b.PoissonGap > 0 {
		vec += 1 / b.PoissonGap
	}
	m := map[isa.Opcode]float64{
		isa.OpIMUL: b.IMULFraction,
		isa.OpVOR:  vec,
	}
	rest := 1 - b.IMULFraction - vec
	// A generic 2017-era mix: ~40 % ALU, 25 % loads, 10 % stores,
	// 15 % branches, 10 % FP/other, scaled into the remaining share.
	m[isa.OpALU] = 0.40 * rest
	m[isa.OpLoad] = 0.25 * rest
	m[isa.OpStore] = 0.10 * rest
	m[isa.OpBranch] = 0.15 * rest
	m[isa.OpFPAdd] = 0.06 * rest
	m[isa.OpFPMul] = 0.03 * rest
	m[isa.OpLEA] = 0.01 * rest
	return m
}
