package emul

import (
	"encoding/binary"
	"errors"
)

// AES-GCM assembled entirely from the emulated instruction set: AESENC /
// AESENCLAST for the counter-mode keystream and VPCLMULQDQ for GHASH.
// This is the workload inside nginx's bursts (§6.2's HTTPS serving) built
// from the very replacements the OS would run under the emulation
// strategy — and validated against crypto/cipher's GCM in the tests.
//
// The GHASH field is GF(2¹²⁸) with the polynomial x¹²⁸ + x⁷ + x² + x + 1
// and the bit-reflected element encoding of the GCM specification.

// gcmBlock is a 16-byte big-endian GCM field element.
type gcmBlock [16]byte

// toPoly converts a GCM block to a plain polynomial over GF(2): per the
// GCM specification, the coefficient of xⁱ is bit 7−(i mod 8) of byte
// i/8. The result is little-endian: lo holds x⁰..x⁶³.
func toPoly(b gcmBlock) (lo, hi uint64) {
	for i := 0; i < 128; i++ {
		bit := uint64(b[i/8]>>(7-uint(i%8))) & 1
		if i < 64 {
			lo |= bit << uint(i)
		} else {
			hi |= bit << uint(i-64)
		}
	}
	return
}

// fromPoly is the inverse of toPoly.
func fromPoly(lo, hi uint64) gcmBlock {
	var b gcmBlock
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = lo >> uint(i) & 1
		} else {
			bit = hi >> uint(i-64) & 1
		}
		b[i/8] |= byte(bit) << (7 - uint(i%8))
	}
	return b
}

// ghashMul multiplies two GCM field elements using the carry-less multiply
// emulation (VPCLMULQDQ), as AES-NI GCM code does: a 128×128 carry-less
// product from four 64×64 CLMULs, then reduction modulo the GCM polynomial
// g(x) = x¹²⁸ + x⁷ + x² + x + 1.
func ghashMul(x, y gcmBlock) gcmBlock {
	x0, x1 := toPoly(x)
	y0, y1 := toPoly(y)

	a := Vec128{Lo: x0, Hi: x1}
	b := Vec128{Lo: y0, Hi: y1}
	lo := VPCLMULQDQ(a, b, 0x00)   // x0·y0
	hi := VPCLMULQDQ(a, b, 0x11)   // x1·y1
	mid1 := VPCLMULQDQ(a, b, 0x01) // x1·y0
	mid2 := VPCLMULQDQ(a, b, 0x10) // x0·y1
	mid := VXOR(mid1, mid2)

	// 256-bit product: r0 + r1·x⁶⁴ + r2·x¹²⁸ + r3·x¹⁹².
	r0 := lo.Lo
	r1 := lo.Hi ^ mid.Lo
	r2 := hi.Lo ^ mid.Hi
	r3 := hi.Hi

	// Fold the upper half: x¹²⁸ ≡ x⁷ + x² + x + 1 (mod g).
	// r3·x¹⁹² = (r3·x⁶⁴)·x¹²⁸ lands at bit offsets 64+{0,1,2,7}.
	r1 ^= r3 ^ r3<<1 ^ r3<<2 ^ r3<<7
	r2 ^= r3>>63 ^ r3>>62 ^ r3>>57
	// Then the (updated) r2·x¹²⁸ lands at bit offsets {0,1,2,7}.
	r0 ^= r2 ^ r2<<1 ^ r2<<2 ^ r2<<7
	r1 ^= r2>>63 ^ r2>>62 ^ r2>>57

	return fromPoly(r0, r1)
}

// ghash computes GHASH_H over the given data (already padded to blocks).
func ghash(h gcmBlock, blocks []gcmBlock) gcmBlock {
	var y gcmBlock
	for _, b := range blocks {
		for i := range y {
			y[i] ^= b[i]
		}
		y = ghashMul(y, h)
	}
	return y
}

// gcmBlocksOf pads data to 16-byte blocks.
func gcmBlocksOf(data []byte) []gcmBlock {
	n := (len(data) + 15) / 16
	out := make([]gcmBlock, n)
	for i := 0; i < n; i++ {
		copy(out[i][:], data[i*16:min(len(data), (i+1)*16)])
	}
	return out
}

// SealAESGCM encrypts and authenticates plaintext with AES-128-GCM using
// a 96-bit nonce, returning ciphertext||tag — the operation behind every
// TLS record in the nginx workload. additional is the AAD.
func SealAESGCM(key [16]byte, nonce [12]byte, plaintext, additional []byte) ([]byte, error) {
	rk := ExpandKeyAES128(key)
	encBlock := func(in [16]byte) [16]byte {
		s := VXOR(FromBytes(in), rk[0])
		for r := 1; r <= 9; r++ {
			s = AESENC(s, rk[r])
		}
		return AESENCLAST(s, rk[10]).Bytes()
	}

	// H = E(K, 0¹²⁸); J0 = nonce || 0x00000001.
	h := gcmBlock(encBlock([16]byte{}))
	var j0 [16]byte
	copy(j0[:], nonce[:])
	j0[15] = 1

	// CTR encryption starting at J0+1.
	ct := make([]byte, len(plaintext))
	ctr := j0
	for i := 0; i < len(plaintext); i += 16 {
		incCounter(&ctr)
		ks := encBlock(ctr)
		for j := i; j < min(i+16, len(plaintext)); j++ {
			ct[j] = plaintext[j] ^ ks[j-i]
		}
	}

	// Tag = GHASH(AAD || CT || lengths) ⊕ E(K, J0).
	blocks := gcmBlocksOf(additional)
	blocks = append(blocks, gcmBlocksOf(ct)...)
	var lens gcmBlock
	binary.BigEndian.PutUint64(lens[0:8], uint64(len(additional))*8)
	binary.BigEndian.PutUint64(lens[8:16], uint64(len(ct))*8)
	blocks = append(blocks, lens)
	s := ghash(h, blocks)
	ek := encBlock(j0)
	tag := make([]byte, 16)
	for i := range tag {
		tag[i] = s[i] ^ ek[i]
	}
	return append(ct, tag...), nil
}

// OpenAESGCM authenticates and decrypts ciphertext||tag produced by
// SealAESGCM, in constant-time tag comparison.
func OpenAESGCM(key [16]byte, nonce [12]byte, sealed, additional []byte) ([]byte, error) {
	if len(sealed) < 16 {
		return nil, errors.New("emul: sealed input shorter than the tag")
	}
	ct, tag := sealed[:len(sealed)-16], sealed[len(sealed)-16:]
	rk := ExpandKeyAES128(key)
	encBlock := func(in [16]byte) [16]byte {
		s := VXOR(FromBytes(in), rk[0])
		for r := 1; r <= 9; r++ {
			s = AESENC(s, rk[r])
		}
		return AESENCLAST(s, rk[10]).Bytes()
	}
	h := gcmBlock(encBlock([16]byte{}))
	var j0 [16]byte
	copy(j0[:], nonce[:])
	j0[15] = 1
	blocks := gcmBlocksOf(additional)
	blocks = append(blocks, gcmBlocksOf(ct)...)
	var lens gcmBlock
	binary.BigEndian.PutUint64(lens[0:8], uint64(len(additional))*8)
	binary.BigEndian.PutUint64(lens[8:16], uint64(len(ct))*8)
	blocks = append(blocks, lens)
	s := ghash(h, blocks)
	ek := encBlock(j0)
	var diff byte
	for i := 0; i < 16; i++ {
		diff |= tag[i] ^ (s[i] ^ ek[i])
	}
	if diff != 0 {
		return nil, errors.New("emul: GCM tag mismatch")
	}
	// Decrypt.
	pt := make([]byte, len(ct))
	ctr := j0
	for i := 0; i < len(ct); i += 16 {
		incCounter(&ctr)
		ks := encBlock(ctr)
		for j := i; j < min(i+16, len(ct)); j++ {
			pt[j] = ct[j] ^ ks[j-i]
		}
	}
	return pt, nil
}

// incCounter increments the 32-bit big-endian counter in the last word.
func incCounter(b *[16]byte) {
	c := binary.BigEndian.Uint32(b[12:16])
	binary.BigEndian.PutUint32(b[12:16], c+1)
}
