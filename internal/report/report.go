// Package report renders evaluation results as aligned text tables and
// figure data series, the forms in which cmd/suittables regenerates every
// table and figure of the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table (the
// form EXPERIMENTS.md embeds). Pipes in cells are escaped.
func (t *Table) Markdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", esc(t.Title))
	}
	b.WriteString("|")
	for _, h := range t.Header {
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString("|")
		for _, c := range row {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a relative change as a signed percentage ("+3.8 %").
func Pct(x float64) string {
	return fmt.Sprintf("%+.1f %%", x*100)
}

// Pct2 formats with two decimals for small effects ("+0.03 %").
func Pct2(x float64) string {
	return fmt.Sprintf("%+.2f %%", x*100)
}

// Series is one figure data series: (x, y) points with axis labels,
// emitted as CSV so the figures can be re-plotted with any tool.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// WriteCSV emits "# name / xlabel,ylabel / points" CSV to w.
func (s *Series) WriteCSV(w io.Writer) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n%s,%s\n", s.Name, s.XLabel, s.YLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Histogram renders labelled counts as a horizontal bar chart scaled to
// width characters — the gap-size histograms of §5.1 in terminal form.
func Histogram(w io.Writer, title string, labels []string, counts []uint64, width int) error {
	if len(labels) != len(counts) {
		return fmt.Errorf("report: %d labels for %d counts", len(labels), len(counts))
	}
	if width <= 0 {
		width = 50
	}
	var max uint64
	labelW := 0
	for i, c := range counts {
		if c > max {
			max = c
		}
		if l := len([]rune(labels[i])); l > labelW {
			labelW = l
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, c := range counts {
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		if c > 0 && bar == 0 {
			bar = 1 // nonzero buckets stay visible
		}
		fmt.Fprintf(&b, "%-*s |%s %d\n", labelW, labels[i], strings.Repeat("█", bar), c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparkline renders the series' y values as a unicode mini-chart, handy
// for eyeballing figure shapes in a terminal.
func (s *Series) Sparkline() string {
	if len(s.Y) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	var b strings.Builder
	for _, y := range s.Y {
		idx := 0
		if max > min {
			idx = int((y - min) / (max - min) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
