// Package trace is a panicpath fixture: an I/O-adjacent package where
// panic must be replaced by returned errors.
package trace

import "fmt"

func Parse(b []byte) (int, error) {
	if len(b) == 0 {
		panic("trace: empty input") // want `panic on an I/O or user-input path`
	}
	return 0, fmt.Errorf("trace: unsupported version %d", b[0])
}

func mustLen(b []byte, n int) {
	if len(b) < n {
		panic("trace: short buffer") //lint:allow panicpath fixture: demonstrates a justified suppression
	}
}
