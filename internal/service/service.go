package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"suit/internal/core"
	"suit/internal/dist"
	"suit/internal/engine"
)

// Config sizes the service. The zero value of every field except
// StateDir and Retries means "use the default"; Retries distinguishes
// explicit zero from unset (see its comment).
type Config struct {
	// StateDir is the daemon's persistent root: the engine's scenario
	// cache lives in cas/, completed results in results/, per-job
	// checkpoint journals in journals/. Required.
	StateDir string
	// EngineWorkers bounds the engine's scenario worker pool
	// (default GOMAXPROCS via the engine).
	EngineWorkers int
	// ExecJobs is how many submitted jobs execute concurrently; the
	// engine pool is shared between them. Default 2.
	ExecJobs int
	// QueueDepth bounds the admission queue; a submission that finds
	// it full is rejected with retry advice. Default 64.
	QueueDepth int
	// Retries is the per-scenario retry budget. Zero is honored as zero
	// (no retries — the engine's single-attempt mode, and what suitsweep
	// defaults to); negative means "use the default" of 1, the budget
	// cmd/suitd runs with unless -retries says otherwise. Retried
	// attempts reuse the derived seed, so retries never change bytes.
	Retries int
	// JobTimeout arms the engine's per-scenario watchdog (0 disables).
	JobTimeout time.Duration
	// Dist configures the distributed tier: every daemon runs a work
	// dispatcher (costless with zero workers — the first offer declines
	// to local execution), and suitworker processes pull leased units
	// from it over /v1/work. The zero value uses the dispatcher's
	// defaults; Dist.RemoteOnly forbids local fallback.
	Dist dist.Config

	// runJob overrides the engine's run function. Test-only: package
	// tests wrap core.RunJob to gate execution deterministically; the
	// wrapper must return the same outcomes or byte-identity breaks.
	runJob engine.RunFunc[core.Scenario, core.Outcome]
}

func (c Config) withDefaults() (Config, error) {
	if c.StateDir == "" {
		return c, errors.New("service: Config.StateDir is required")
	}
	if c.ExecJobs <= 0 {
		c.ExecJobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retries < 0 {
		c.Retries = 1
	}
	return c, nil
}

// SubmitOutcome says how a submission was resolved.
type SubmitOutcome int

const (
	// SubmitQueued admitted a new job to the queue.
	SubmitQueued SubmitOutcome = iota
	// SubmitCoalesced matched an existing registry job (in any state):
	// the single-flight path — no new engine execution.
	SubmitCoalesced
	// SubmitStored served a completed result from the persistent store
	// (computed in an earlier daemon lifetime).
	SubmitStored
	// SubmitQueueFull rejected the submission: the admission queue is
	// at capacity. Retry after RetryAfterSeconds.
	SubmitQueueFull
	// SubmitDraining rejected the submission: the daemon is shutting
	// down.
	SubmitDraining
)

// Service is the sweep-as-a-service layer: a job registry keyed by
// spec fingerprint, a bounded admission queue, a pool of job executors
// sharing one engine, and a persistent content-addressed result store.
type Service struct {
	cfg   Config
	eng   *engine.Engine[core.Scenario, core.Outcome]
	store *resultStore
	dist  *dist.Dispatcher

	runCtx     context.Context
	cancelRuns context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for deterministic listings
	queue    chan *Job
	draining bool

	execWG sync.WaitGroup

	// Counters for /metrics. jobSecondsMilli accumulates executed-job
	// wall time (telemetry only — never part of a result).
	submissions     atomic.Int64
	dedupHits       atomic.Int64
	storeHits       atomic.Int64
	rejected        atomic.Int64
	jobsExecuted    atomic.Int64
	jobSecondsMilli atomic.Int64
}

// New builds a service and starts its executor pool. Call Drain to
// stop it.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	for _, sub := range []string{"cas", "results", "journals"} {
		if err := os.MkdirAll(filepath.Join(cfg.StateDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	store, err := newResultStore(filepath.Join(cfg.StateDir, "results"))
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Service{
		cfg:   cfg,
		store: store,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	s.runCtx, s.cancelRuns = context.WithCancel(context.Background())
	runJob := cfg.runJob
	if runJob == nil {
		runJob = core.RunJob
	}
	s.eng = engine.New(core.Scenario.Fingerprint, runJob, engine.Options{
		Workers:      cfg.EngineWorkers,
		BaseSeed:     0, // specs carry explicit per-scenario seeds
		CacheDir:     filepath.Join(cfg.StateDir, "cas"),
		Retries:      cfg.Retries,
		RetryBackoff: 100 * time.Millisecond,
		Policy:       engine.FailFast,
		JobTimeout:   cfg.JobTimeout,
		Label:        "suitd",
	})
	// The distributed tier: the engine offers every uncached scenario to
	// the dispatcher first; with no live workers (or a tripped breaker)
	// the offer declines instantly and the scenario runs locally as
	// before. Results are content-addressed, so remote and local
	// execution store byte-identical files.
	s.dist = dist.NewDispatcher(cfg.Dist)
	s.eng.SetRemote(s.dist.Execute)
	for i := 0; i < cfg.ExecJobs; i++ {
		s.execWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// EngineStats exposes the engine's cumulative accounting for /metrics.
func (s *Service) EngineStats() engine.Stats { return s.eng.Stats() }

// DistStats exposes the work dispatcher's accounting for /metrics.
func (s *Service) DistStats() dist.Stats { return s.dist.Stats() }

// Dispatcher exposes the distributed-work dispatcher (for its HTTP
// endpoints and readiness probing).
func (s *Service) Dispatcher() *dist.Dispatcher { return s.dist }

// Inflight is the engine's currently-executing scenario count.
func (s *Service) Inflight() int { return s.eng.Inflight() }

// QueueDepth reports (queued jobs, capacity).
func (s *Service) QueueDepth() (int, int) { return len(s.queue), s.cfg.QueueDepth }

// Submit resolves a spec submission: normalize, content-address,
// dedup against the registry and the persistent store, else admit to
// the bounded queue. A non-nil error means the spec itself was invalid.
func (s *Service) Submit(raw Spec) (*Job, SubmitOutcome, error) {
	spec, err := raw.Normalize()
	if err != nil {
		return nil, 0, err
	}
	id := spec.ID()
	s.submissions.Add(1)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, SubmitDraining, nil
	}
	if j, ok := s.jobs[id]; ok {
		// The single-flight path: identical spec, one execution —
		// whether the original is still queued, mid-run, or finished.
		s.dedupHits.Add(1)
		return j, SubmitCoalesced, nil
	}
	if res, ok := s.store.get(id, spec.Fingerprint()); ok {
		j := newJob(id, spec, res.GridPoints*len(spec.Benches))
		j.finish(StateDone, res, "")
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.storeHits.Add(1)
		return j, SubmitStored, nil
	}
	total := len(spec.grid()) * len(spec.Benches)
	j := newJob(id, spec, total)
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.order = append(s.order, id)
		return j, SubmitQueued, nil
	default:
		s.rejected.Add(1)
		return nil, SubmitQueueFull, nil
	}
}

// Job looks a registry job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobsInOrder snapshots the registry in submission order.
func (s *Service) JobsInOrder() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// RetryAfterSeconds advises a rejected client when to retry: the time
// for the backlog ahead of it to drain — ⌈queued / ExecJobs⌉ executor
// waves of the mean executed-job duration (5 s before any job has
// finished) — clamped to [1, 300]. A rejected client was turned away by
// a full queue, so advising one mean duration regardless of depth would
// send the whole herd back into a still-full queue; scaling by
// occupancy spreads the retries across the drain.
func (s *Service) RetryAfterSeconds() int {
	n := s.jobsExecuted.Load()
	secs := 5.0
	if n > 0 {
		secs = float64(s.jobSecondsMilli.Load()) / 1000 / float64(n)
	}
	waves := math.Ceil(float64(len(s.queue)) / float64(s.cfg.ExecJobs))
	if waves < 1 {
		waves = 1
	}
	return int(math.Min(300, math.Max(1, math.Ceil(secs*waves))))
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the service down gracefully: new submissions are
// refused, queued-but-unstarted jobs are canceled (their submitters
// resubmit after restart and hit the store or the journals), and
// running jobs get until ctx's deadline to finish. When the deadline
// expires the engine runs are cancelled — every completed scenario is
// already journaled and cached, so a restarted daemon replays the
// finished points from disk and the resumed result is byte-identical.
// Always returns once the executors have stopped.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.execWG.Wait()
		return nil
	}
	s.draining = true
	close(s.queue) // executors drain the remainder; Submit is refused already
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.execWG.Wait()
		close(done)
	}()
	var interrupted error
	select {
	case <-done:
	case <-ctx.Done():
		interrupted = ctx.Err()
		s.cancelRuns()
		<-done
	}
	s.cancelRuns()
	// Executors are stopped; shut the dispatcher so in-flight remote
	// offers resolve (to local fallback — already moot) and its janitor
	// exits. Workers polling a drained daemon just see empty claims.
	s.dist.Close()
	return interrupted
}

// worker executes queued jobs until the queue closes at drain time.
func (s *Service) worker() {
	defer s.execWG.Done()
	for job := range s.queue {
		if s.Draining() || s.runCtx.Err() != nil {
			job.finish(StateCanceled, nil, "daemon drained before the job started; resubmit to resume")
			continue
		}
		start := time.Now() //lint:allow determinism job wall time only feeds the Retry-After estimate and /metrics, never results
		s.execute(job)
		s.jobsExecuted.Add(1)
		s.jobSecondsMilli.Add(time.Since(start).Milliseconds()) //lint:allow determinism telemetry-only duration accounting
	}
}

// execute runs one job through the engine under its own checkpoint
// journal and persists the aggregated result.
func (s *Service) execute(job *Job) {
	job.setRunning()
	scs, grid, err := job.Spec.Scenarios()
	if err != nil {
		job.finish(StateFailed, nil, err.Error())
		return
	}
	journal := filepath.Join(s.cfg.StateDir, "journals", job.ID+".journal")
	// resume=true: a journal left by an interrupted daemon marks this
	// job's finished points; the engine replays them from the cache.
	// The config line is the job ID, so a journal can never be applied
	// to a different spec.
	cp, err := engine.OpenCheckpoint(journal, "suitd job "+job.ID, true)
	if err != nil {
		job.finish(StateFailed, nil, err.Error())
		return
	}
	stopProgress := s.watchProgress(job, cp)
	outs, err := s.eng.RunCheckpointed(s.runCtx, scs, cp)
	stopProgress()
	cp.Close()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			job.finish(StateCanceled, nil,
				"interrupted by drain: completed points are journaled; resubmit after restart to resume")
			return
		}
		job.finish(StateFailed, nil, err.Error())
		return
	}
	res, err := aggregate(job.ID, job.Spec, grid, outs)
	if err != nil {
		job.finish(StateFailed, nil, err.Error())
		return
	}
	s.store.put(job.ID, job.Spec.Fingerprint(), res)
	job.finish(StateDone, res, "")
}

// watchProgress publishes the job's completed-point count while the
// engine runs, read from the checkpoint journal's in-memory set. The
// returned stop func flushes a final count.
func (s *Service) watchProgress(job *Job, cp *engine.Checkpoint) func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(200 * time.Millisecond) //lint:allow determinism the progress ticker paces event-stream telemetry; job results never depend on it
		defer t.Stop()
		for {
			select {
			case <-t.C:
				job.setProgress(cp.Completed())
			case <-stop:
				return
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
		job.setProgress(cp.Completed())
	}
}
