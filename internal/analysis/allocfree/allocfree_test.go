package allocfree_test

import (
	"testing"

	"suit/internal/analysis/allocfree"
	"suit/internal/analysis/analysistest"
)

func TestAllocSites(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "allocsites")
}

// TestSeededRegression is the fixture leg of the acceptance criterion:
// an append under runStep must always be flagged.
func TestSeededRegression(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "hotregress")
}

// TestCrossPackageFacts drives two fixture packages through one shared
// session in dependency order; xhot's findings depend entirely on facts
// exported while analyzing xdep.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.RunDeps(t, "testdata", allocfree.Analyzer, "xdep", "xhot")
}
