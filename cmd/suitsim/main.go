// Command suitsim runs a single SUIT evaluation cell — one workload on one
// CPU model under one operating strategy — and reports the full outcome:
// performance, power and efficiency against the pre-SUIT baseline, curve
// residency, exception statistics and the security monitor's verdict.
//
// Examples:
//
//	suitsim -chip C -bench 557.xz -strategy fV -offset 97
//	suitsim -chip A -bench nginx -strategy e
//	suitsim -chip B -bench 525.x264 -strategy f -cores 4
//	suitsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/report"
	"suit/internal/security"
	"suit/internal/workload"
)

func chipByName(name string) (dvfs.Chip, bool) {
	switch strings.ToUpper(name) {
	case "A", "I9", "I9-9900K":
		return dvfs.IntelI9_9900K(), true
	case "B", "7700X", "RYZEN":
		return dvfs.AMDRyzen7700X(), true
	case "C", "XEON", "4208":
		return dvfs.XeonSilver4208(), true
	case "I5", "I5-1035G1":
		return dvfs.IntelI5_1035G1(), true
	default:
		return dvfs.Chip{}, false
	}
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its streams and exit status lifted out, so the
// machine-level golden test can execute the full CLI in-process and
// byte-compare stdout across scheduler implementations.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("suitsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chipName  = fs.String("chip", "C", "CPU model: A (i9-9900K), B (7700X), C (Xeon 4208), i5")
		benchName = fs.String("bench", "557.xz", "workload name (see -list)")
		specFile  = fs.String("spec", "", "JSON workload spec file instead of a built-in model")
		strat     = fs.String("strategy", "fV", "operating strategy: fV f V e dyn adaptive noSIMD unsafe")
		cores     = fs.Int("cores", 1, "number of workload copies pinned to cores")
		offset    = fs.Int("offset", 97, "undervolt magnitude in mV: 70 or 97")
		instr     = fs.Uint64("instr", 0, "instructions per core (0 = default)")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		list      = fs.Bool("list", false, "list workloads and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		t := report.NewTable("Workloads", "name", "suite", "IPC", "IMUL %")
		for _, b := range workload.All() {
			t.AddRow(b.Name, b.Suite.String(), fmt.Sprintf("%.1f", b.IPC),
				fmt.Sprintf("%.2f", b.IMULFraction*100))
		}
		_ = t.Render(stdout)
		return 0
	}

	chip, ok := chipByName(*chipName)
	if !ok {
		fmt.Fprintf(stderr, "unknown chip %q\n", *chipName)
		return 2
	}
	var b workload.Benchmark
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintf(stderr, "parsing %s: %v\n", *specFile, err)
			return 1
		}
	} else {
		var ok bool
		b, ok = workload.ByName(*benchName)
		if !ok {
			fmt.Fprintf(stderr, "unknown workload %q (use -list)\n", *benchName)
			return 2
		}
	}
	if *offset != 70 && *offset != 97 {
		fmt.Fprintln(stderr, "-offset must be 70 or 97 (the paper's design points)")
		return 2
	}

	o, err := core.Run(core.Scenario{
		Chip:         chip,
		Bench:        b,
		Kind:         core.StrategyKind(*strat),
		Cores:        *cores,
		SpendAging:   *offset == 97,
		Instructions: *instr,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintf(stdout, "%s on %s, strategy %s, %d core(s), offset %v\n\n",
		b.Name, chip.Name, *strat, max(*cores, 1), o.Offset)
	t := report.NewTable("", "metric", "baseline", "SUIT", "change")
	t.AddRow("duration", o.Base.Duration.String(), o.Run.Duration.String(), report.Pct(-o.Change.Perf/(1+o.Change.Perf)))
	t.AddRow("score", "1.000", fmt.Sprintf("%.3f", 1+o.Change.Perf), report.Pct(o.Change.Perf))
	t.AddRow("avg power", o.Base.AvgPower.String(), o.Run.AvgPower.String(), report.Pct(o.Change.Power))
	t.AddRow("energy", o.Base.Energy.String(), o.Run.Energy.String(), "")
	t.AddRow("efficiency", "", "", report.Pct(o.Efficiency))
	if err := t.Render(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintf(stdout, "\nefficient-curve residency: %.1f %%\n", o.EfficientShare*100)
	fmt.Fprintf(stdout, "#DO exceptions: %d (emulated: %d), curve switches: %d, deadline fires: %d\n",
		o.Run.Exceptions, o.Run.Emulated, o.Run.Switches, o.Run.DeadlineFires)
	fmt.Fprintf(stdout, "hardened-IMUL overhead applied: %s\n", report.Pct2(o.IMULOverhead))
	if err := security.VerifyNoFaults(o.Run); err != nil {
		fmt.Fprintf(stdout, "SECURITY: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "security monitor: no silent faults ✓")
	return 0
}
