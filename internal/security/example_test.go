package security_test

import (
	"fmt"

	"suit/internal/dvfs"
	"suit/internal/security"
	"suit/internal/units"
)

// The §8 covert channel: a sender modulates the shared DVFS domain by
// trapping on 1-bits; the receiver decodes its own slowdowns.
func ExampleCovertChannel() {
	bits := []bool{true, false, true, true, false, false, true, false}
	res, err := security.CovertChannel(dvfs.IntelI9_9900K(), bits, units.Microseconds(400), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sent     %v\n", res.Sent)
	fmt.Printf("received %v\n", res.Received)
	fmt.Printf("errors: %d at %.1f kbit/s\n", res.BitErrors, res.BitsPerSecond/1000)
	// Output:
	// sent     [true false true true false false true false]
	// received [true false true true false false true false]
	// errors: 0 at 2.5 kbit/s
}
