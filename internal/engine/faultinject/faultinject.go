// Package faultinject deterministically injects faults into engine
// runs so every recovery path — retry, panic containment, watchdog
// timeout, collect-policy degradation, cache quarantine — can be
// exercised by reproducible chaos tests. The related undervolting
// literature validates resilience the same way (hardware vs. software
// fault injection of undervolted SRAMs; Scrooge-style crash/recovery
// of undervolted nodes): faults are chosen by a pure function of
// (fingerprint, fault seed), never by the wall clock or the global
// rand source, so a chaos run replays bit-for-bit.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"suit/internal/engine"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None leaves the job alone.
	None Kind = iota
	// Error makes the attempt return ErrInjected.
	Error
	// Panic makes the attempt panic.
	Panic
	// Hang blocks the attempt until its context is cancelled (the
	// engine watchdog's job) and then returns the context error.
	Hang
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the base error every injected Error fault wraps.
var ErrInjected = errors.New("injected fault")

// Plan decides which jobs fault and how often. The zero value injects
// nothing.
type Plan struct {
	// Seed feeds the deterministic per-key fault decision.
	Seed uint64
	// Faults pins explicit fingerprints to fault kinds.
	Faults map[string]Kind
	// Rate additionally faults that fraction of all keys (0..1), chosen
	// by hashing (key, Seed) — deterministic, uniform, independent of
	// execution order. RateKind is the fault those keys suffer.
	Rate     float64
	RateKind Kind
	// Times is how many attempts per key fault before the real function
	// runs: 1 means "fails once, succeeds on first retry"; a negative
	// value faults every attempt. 0 defaults to 1.
	Times int
}

// Decide returns the fault kind for a fingerprint — a pure function of
// (key, plan), so the same plan faults the same jobs in every run at
// any parallelism level.
func (p Plan) Decide(key string) Kind {
	if k, ok := p.Faults[key]; ok {
		return k
	}
	if p.Rate > 0 {
		// engine.DeriveSeed is uniform over uint64; compare against the
		// rate threshold for an order-free Bernoulli draw.
		h := engine.DeriveSeed(p.Seed, "faultinject|"+key)
		if float64(h) < p.Rate*float64(^uint64(0)) {
			return p.RateKind
		}
	}
	return None
}

// times normalizes Plan.Times.
func (p Plan) times() int {
	if p.Times == 0 {
		return 1
	}
	return p.Times
}

// Injector wraps a RunFunc, injecting the plan's faults ahead of the
// real computation. It tracks attempts per fingerprint so "fail N
// times, then succeed" scenarios drive the engine's retry path.
type Injector[S, R any] struct {
	plan Plan
	key  func(S) string
	run  engine.RunFunc[S, R]

	mu       sync.Mutex
	attempts map[string]int
}

// New builds an injector around run; key must be the same fingerprint
// function the engine uses.
func New[S, R any](plan Plan, key func(S) string, run engine.RunFunc[S, R]) *Injector[S, R] {
	return &Injector[S, R]{plan: plan, key: key, run: run, attempts: make(map[string]int)}
}

// Run is the engine.RunFunc: it injects the planned fault for the first
// plan.Times attempts on a key, then delegates to the real function.
func (in *Injector[S, R]) Run(ctx context.Context, spec S, seed uint64) (R, error) {
	var zero R
	key := in.key(spec)
	in.mu.Lock()
	in.attempts[key]++
	attempt := in.attempts[key]
	in.mu.Unlock()

	kind := in.plan.Decide(key)
	if kind == None || (in.plan.times() >= 0 && attempt > in.plan.times()) {
		return in.run(ctx, spec, seed)
	}
	switch kind {
	case Error:
		return zero, fmt.Errorf("%w: %s (attempt %d)", ErrInjected, key, attempt)
	case Panic:
		panic(fmt.Sprintf("faultinject: panic for %s (attempt %d)", key, attempt))
	case Hang:
		<-ctx.Done() // a hung simulation: only the watchdog gets us out
		return zero, ctx.Err()
	default:
		return in.run(ctx, spec, seed)
	}
}

// Attempts reports how many times the injector saw a fingerprint.
func (in *Injector[S, R]) Attempts(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.attempts[key]
}

// CorruptFile deterministically damages a file in place — the
// software analogue of a torn or bit-flipped cache write. mode cycles
// by seed over truncation, garbling the middle bytes, and replacing the
// content with non-JSON noise; every mode must read back as a cache
// miss (quarantine), never as a result.
func CorruptFile(path string, seed uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h := engine.DeriveSeed(seed, "corrupt|"+path)
	switch h % 3 {
	case 0: // truncate mid-entry
		data = data[:len(data)/2]
	case 1: // flip bytes in the middle (may or may not stay valid JSON;
		// the cache's integrity digest catches the valid-JSON case)
		for i := len(data) / 3; i < len(data)/3+8 && i < len(data); i++ {
			data[i] ^= byte(h>>((uint(i)%7)*8)) | 1
		}
	default: // replace with noise that is not JSON at all
		data = []byte(fmt.Sprintf("\x00\xff suit chaos noise %d", h))
	}
	return os.WriteFile(path, data, 0o644)
}
