#!/usr/bin/env bash
# suitd end-to-end smoke (the CI suitd-smoke job): boot the daemon,
# serve a small sweep to completion, prove a second identical
# submission is a cache hit via /metrics, then SIGTERM and require a
# clean exit-0 drain inside the budget.
#
# Phase 2 is the distributed kill-a-worker e2e: a second daemon with a
# fresh state dir executes the same spec through two suitworker
# processes, one of which is SIGKILLed mid-sweep; the sweep must still
# complete (lease reassignment or local fallback) and the stored result
# file must be byte-identical to the single-process daemon's.
#
# Run from the repository root: scripts/suitd_smoke.sh
set -euo pipefail

WORK=$(mktemp -d)
ADDR=127.0.0.1:8470
BASE="http://$ADDR"
ADDR2=127.0.0.1:8471
BASE2="http://$ADDR2"
PID=""
PID2=""
W1=""
W2=""
cleanup() {
  for p in "$PID" "$PID2" "$W1" "$W2"; do
    [ -n "$p" ] && kill "$p" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/suitd" ./cmd/suitd
go build -o "$WORK/suitworker" ./cmd/suitworker
"$WORK/suitd" -addr "$ADDR" -state "$WORK/state" -drain-timeout 30s &
PID=$!

# Wait for the daemon to come up.
up=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "suitd died during startup" >&2; exit 1; fi
  sleep 0.1
done
[ -n "$up" ] || { echo "suitd never answered /healthz" >&2; exit 1; }

# Readiness is split from liveness: a freshly booted daemon is both.
curl -fsS "$BASE/readyz" >/dev/null || { echo "/readyz not ready on a fresh daemon" >&2; exit 1; }

SPEC='{"instructions":50000,"benches":["VLC","557.xz"],"params":[{"p_dl_us":30,"p_ts_us":450,"p_ec":3,"p_df":14},{"p_dl_us":50,"p_ts_us":450,"p_ec":2,"p_df":9}]}'

ID=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/sweeps" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "submitted job $ID"

state=""
for _ in $(seq 1 300); do
  state=$(curl -fsS "$BASE/v1/sweeps/$ID" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = done ] && break
  case "$state" in
    failed|canceled) echo "job ended $state" >&2; exit 1 ;;
  esac
  sleep 0.2
done
[ "$state" = done ] || { echo "job stuck in state '$state'" >&2; exit 1; }

curl -fsS "$BASE/v1/sweeps/$ID" | python3 -c '
import json, sys
v = json.load(sys.stdin)
pts = v["result"]["points"]
assert v["state"] == "done" and pts, v
effs = [p["efficiency"] for p in pts]
assert effs == sorted(effs, reverse=True), "ranking not descending"
print(f"ranked {len(pts)} points; best efficiency {effs[0]:.4f}")
'

# The second identical submission must be answered from the cache (200,
# not 201) and /metrics must prove no second execution happened.
CODE=$(curl -fsS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/sweeps")
[ "$CODE" = 200 ] || { echo "duplicate POST got HTTP $CODE, want 200" >&2; exit 1; }
METRICS=$(curl -fsS "$BASE/metrics")
HITS=$(echo "$METRICS" | awk '$1 == "suitd_cache_hits_total" {print $2}')
EXECUTED=$(echo "$METRICS" | awk '$1 == "suitd_jobs_executed_total" {print $2}')
[ "$HITS" = 1 ] || { echo "suitd_cache_hits_total = '$HITS', want 1" >&2; exit 1; }
[ "$EXECUTED" = 1 ] || { echo "suitd_jobs_executed_total = '$EXECUTED', want 1" >&2; exit 1; }

# Graceful shutdown: SIGTERM, then the daemon must exit 0. The drain is
# internally bounded by -drain-timeout; a hang beyond that trips the CI
# job's timeout-minutes.
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = 0 ] || { echo "suitd exited $RC after SIGTERM, want 0" >&2; exit 1; }
echo "suitd smoke OK: served 1 sweep, deduped the repeat (hits=$HITS), drained cleanly"

# ---------------------------------------------------------------------
# Phase 2: distributed kill-a-worker e2e. A second daemon (fresh state,
# short lease TTL) runs the SAME spec through two pull workers; one
# worker is SIGKILLed while leases are out. The sweep must complete via
# lease reassignment (or local fallback) and the stored result file
# must be byte-identical to the single-process daemon's.
# ---------------------------------------------------------------------
TOKEN=smoke-worker-secret
"$WORK/suitd" -addr "$ADDR2" -state "$WORK/state2" -lease-ttl 1s -worker-token "$TOKEN" -drain-timeout 30s &
PID2=$!
up=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE2/readyz" >/dev/null 2>&1; then up=1; break; fi
  if ! kill -0 "$PID2" 2>/dev/null; then echo "second suitd died during startup" >&2; exit 1; fi
  sleep 0.1
done
[ -n "$up" ] || { echo "second suitd never became ready" >&2; exit 1; }

# The work endpoints require the worker token: an unauthenticated claim
# must bounce with 401 (a digest proves integrity, not authenticity).
CODE=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"worker_id":"intruder"}' "$BASE2/v1/work/claim")
[ "$CODE" = 401 ] || { echo "tokenless claim got HTTP $CODE, want 401" >&2; exit 1; }

"$WORK/suitworker" -daemon "$BASE2" -id smoke-w1 -token "$TOKEN" -slots 1 -poll 50ms &
W1=$!
"$WORK/suitworker" -daemon "$BASE2" -id smoke-w2 -token "$TOKEN" -slots 1 -poll 50ms &
W2=$!

# Both workers must be live before submitting, or the engine's first
# offers decline straight to local and nothing is distributed.
live=""
for _ in $(seq 1 100); do
  live=$(curl -fsS "$BASE2/metrics" | awk '$1 == "suitd_dist_live_workers" {print $2}')
  [ "${live:-0}" = 2 ] && break
  sleep 0.1
done
[ "$live" = 2 ] || { echo "workers never registered (live=$live)" >&2; exit 1; }

ID2=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE2/v1/sweeps" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
[ "$ID2" = "$ID" ] || { echo "content addressing drifted: job $ID2 vs $ID" >&2; exit 1; }

# SIGKILL one worker the moment leases are out — a real crash: no
# goodbye, no result post, just a lease that stops heartbeating.
for _ in $(seq 1 200); do
  leases=$(curl -fsS "$BASE2/metrics" | awk '$1 == "suitd_dist_leases_total" {print $2}')
  if [ "${leases:-0}" != 0 ] && [ "${leases:-0}" != "" ]; then break; fi
  state=$(curl -fsS "$BASE2/v1/sweeps/$ID2" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = done ] && break
  sleep 0.05
done
kill -9 "$W1" 2>/dev/null || true
wait "$W1" 2>/dev/null || true
W1=""
echo "SIGKILLed worker smoke-w1 (leases granted so far: ${leases:-0})"

state=""
for _ in $(seq 1 600); do
  state=$(curl -fsS "$BASE2/v1/sweeps/$ID2" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = done ] && break
  case "$state" in
    failed|canceled) echo "distributed job ended $state" >&2; exit 1 ;;
  esac
  sleep 0.2
done
[ "$state" = done ] || { echo "distributed job stuck in state '$state'" >&2; exit 1; }

# The robustness contract, on disk: the distributed daemon's stored
# result file is byte-identical to the single-process daemon's.
cmp "$WORK/state/results/$ID.json" "$WORK/state2/results/$ID2.json" ||
  { echo "distributed result file differs from the single-process one" >&2; exit 1; }

M2=$(curl -fsS "$BASE2/metrics")
COMPLETED=$(echo "$M2" | awk '$1 == "suitd_dist_completed_total" {print $2}')
EXPIRED=$(echo "$M2" | awk '$1 == "suitd_dist_leases_expired_total" {print $2}')
FALLBACKS=$(echo "$M2" | awk '$1 == "suitd_dist_local_fallbacks_total" {print $2}')
CONFLICTS=$(echo "$M2" | awk '$1 == "suitd_dist_conflicts_total" {print $2}')
[ "$CONFLICTS" = 0 ] || { echo "suitd_dist_conflicts_total = $CONFLICTS — determinism violation" >&2; exit 1; }
echo "distributed sweep OK: remote-completed=$COMPLETED expired-leases=$EXPIRED local-fallbacks=$FALLBACKS conflicts=0"

kill -TERM "$W2" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
W2=""
kill -TERM "$PID2"
RC=0
wait "$PID2" || RC=$?
PID2=""
[ "$RC" = 0 ] || { echo "second suitd exited $RC after SIGTERM, want 0" >&2; exit 1; }
echo "suitd distributed smoke OK: worker killed mid-sweep, result bytes identical, clean drain"
