// Package xdep is the dependency half of the cross-package fact
// fixture: it is analyzed first, in its own type-checking session, and
// exports Allocates facts that package xhot imports at call sites.
package xdep

// Grow allocates; the fact crosses the package boundary.
func Grow(dst []int) []int {
	return append(dst, 1)
}

// Quiet's only site is explained, so no fact is exported and callers
// stay clean.
func Quiet() {
	_ = make([]int, 4) //lint:allow allocfree buffer preallocated once at startup, not per step
}

// Deep allocates only transitively, through Grow: the summary fixpoint
// still exports a fact for it.
func Deep(dst []int) []int {
	return Grow(dst)
}
