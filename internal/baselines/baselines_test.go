package baselines

import (
	"math"
	"strings"
	"testing"

	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/trace"
	"suit/internal/units"
	"suit/internal/workload"
)

func TestRazorErrorRateShape(t *testing.T) {
	r := DefaultRazor()
	// Negligible at nominal voltage, saturating at the critical point.
	if rate := r.ErrorRate(0); rate > 1e-4 {
		t.Errorf("error rate at 0 mV = %v", rate)
	}
	if rate := r.ErrorRate(r.Vcrit); math.Abs(rate-1) > 1e-9 {
		t.Errorf("error rate at Vcrit = %v, want 1 (capped)", rate)
	}
	if rate := r.ErrorRate(r.Vcrit - units.MilliVolts(50)); rate != 1 {
		t.Errorf("rate below Vcrit = %v, want capped at 1", rate)
	}
	// Monotone in depth.
	if r.ErrorRate(units.MilliVolts(-100)) <= r.ErrorRate(units.MilliVolts(-50)) {
		t.Error("error rate not monotone in undervolt depth")
	}
}

func TestRazorThroughputFactor(t *testing.T) {
	r := DefaultRazor()
	if tf := r.ThroughputFactor(0); tf < 0.999 {
		t.Errorf("nominal throughput factor %v", tf)
	}
	// At the critical point every cycle replays: 1/(1+ReplayCycles).
	want := 1 / (1 + r.ReplayCycles)
	if tf := r.ThroughputFactor(r.Vcrit); math.Abs(tf-want) > 1e-9 {
		t.Errorf("critical throughput factor %v, want %v", tf, want)
	}
}

func TestRazorOptimizeFindsDeepOffset(t *testing.T) {
	// Razor can dive past SUIT's −97 mV because it spends the aging
	// guardband — but it stops before the error wall.
	r := DefaultRazor()
	off, ch := r.Optimize(dvfs.IntelI9_9900K())
	if off > units.MilliVolts(-97) {
		t.Errorf("Razor offset %v shallower than SUIT's −97 mV", off)
	}
	if off < r.Vcrit {
		t.Errorf("Razor offset %v beyond the error wall %v", off, r.Vcrit)
	}
	if ch.Efficiency() <= 0 {
		t.Errorf("Razor efficiency %v not positive", ch.Efficiency())
	}
	// Throughput stays near nominal at the optimum (errors are rare
	// there).
	if ch.Perf < -0.05 {
		t.Errorf("Razor optimum loses %v performance", ch.Perf)
	}
}

func TestECCGuidedCalibration(t *testing.T) {
	e := DefaultECCGuided()
	off := e.Calibrate(1)
	// The weakest of 4096 lines sits ≈3σ above the mean floor; plus the
	// safety margin the offset must be shallower than the mean.
	if off <= e.MeanFloor {
		t.Errorf("calibrated offset %v at or below the mean floor %v", off, e.MeanFloor)
	}
	if off > units.MilliVolts(-100) {
		t.Errorf("calibrated offset %v implausibly shallow", off)
	}
	// Deterministic per seed.
	if e.Calibrate(1) != off {
		t.Error("calibration not deterministic per seed")
	}
	if e.Calibrate(2) == off {
		t.Error("different seeds gave identical calibration")
	}
}

func TestECCGuidedResponse(t *testing.T) {
	e := DefaultECCGuided()
	off, ch := e.Response(dvfs.IntelI9_9900K(), 1)
	if off >= 0 {
		t.Fatalf("offset %v not negative", off)
	}
	if ch.Power >= 0 {
		t.Errorf("power change %v not negative", ch.Power)
	}
	// The calibration duty cycle costs a little performance relative to
	// the pure frequency gain.
	pure := float64(1) / (1 - float64(e.CalibrationCost)/float64(e.CalibrationEvery))
	if ch.Perf > pure {
		t.Errorf("perf %v ignores the calibration duty cycle", ch.Perf)
	}
}

func TestWorkloadAwareOffset(t *testing.T) {
	gb := guardband.Default()
	// A trace that only executes background instructions can undervolt to
	// the background margin minus safety.
	quiet := &trace.Trace{Name: "quiet", Total: 1000, IPC: 1}
	off, err := WorkloadAwareOffset(gb, quiet, units.MilliVolts(10))
	if err != nil {
		t.Fatal(err)
	}
	wantQuiet := -(gb.PhysicalMargin(isa.OpALU, false) - units.MilliVolts(10))
	if math.Abs(float64(off-wantQuiet)) > 1e-9 {
		t.Errorf("quiet offset %v, want %v", off, wantQuiet)
	}
	// A trace using AESENC is pinned by AESENC's much smaller margin.
	aes := &trace.Trace{Name: "aes", Total: 1000, IPC: 1,
		Events: []trace.Event{{Index: 1, Op: isa.OpAESENC}}}
	offAES, err := WorkloadAwareOffset(gb, aes, units.MilliVolts(10))
	if err != nil {
		t.Fatal(err)
	}
	if offAES <= off {
		t.Errorf("AES-using workload offset %v not shallower than quiet %v", offAES, off)
	}
	// Negative safety rejected.
	if _, err := WorkloadAwareOffset(gb, quiet, units.MilliVolts(-1)); err == nil {
		t.Error("negative safety accepted")
	}
}

func TestWorkloadAwareIsUnsafeOnUnprofiledCode(t *testing.T) {
	// The §7 security argument: the xDVS-style offset derived from a
	// quiet profile faults when the workload later runs AESENC.
	gb := guardband.Default()
	quiet := &trace.Trace{Name: "profile", Total: 1000, IPC: 1}
	off, err := WorkloadAwareOffset(gb, quiet, units.MilliVolts(5))
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Faults(isa.OpAESENC, off, false) {
		t.Errorf("AESENC survives the quiet-profile offset %v; expected a silent fault", off)
	}
}

func TestCompareOrdering(t *testing.T) {
	gb := guardband.Default()
	b, _ := workload.ByName("557.xz")
	tr, err := b.GenerateTrace(10_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Compare(dvfs.IntelI9_9900K(), gb, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Sorted by efficiency.
	for i := 1; i < len(rows); i++ {
		if rows[i].Eff > rows[i-1].Eff {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	// SUIT must be the only approach that neither spends the aging
	// guardband nor faults on unprofiled code.
	for _, r := range rows {
		isSUIT := strings.HasPrefix(r.Name, "SUIT")
		if isSUIT && (r.SpendsAgingGuardband || r.FaultsOnUnprofiled) {
			t.Errorf("SUIT row carries risk flags: %+v", r)
		}
		if !isSUIT && !r.SpendsAgingGuardband {
			t.Errorf("%s does not spend the guardband?", r.Name)
		}
		if r.Eff == 0 {
			t.Errorf("%s has zero efficiency", r.Name)
		}
	}
}

func TestApproachString(t *testing.T) {
	a := Approach{Name: "x", Offset: units.MilliVolts(-97), Eff: 0.2,
		SpendsAgingGuardband: true, FaultsOnUnprofiled: true}
	s := a.String()
	for _, want := range []string{"x:", "-97 mV", "+20.0 %", "[spends guardband]", "[unsafe on unprofiled code]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
