package trace

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"suit/internal/isa"
)

func mkTrace(t *testing.T, total uint64, idx ...uint64) *Trace {
	t.Helper()
	tr := &Trace{Name: "test", Total: total, IPC: 1}
	for _, i := range idx {
		tr.Events = append(tr.Events, Event{Index: i, Op: isa.OpAESENC})
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("mkTrace: %v", err)
	}
	return tr
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want error
	}{
		{"ok empty", Trace{Total: 10, IPC: 1}, nil},
		{"ok events", Trace{Total: 10, IPC: 2, Events: []Event{{1, isa.OpVOR}, {5, isa.OpAESENC}}}, nil},
		{"zero ipc", Trace{Total: 10}, ErrBadIPC},
		{"nan ipc", Trace{Total: 10, IPC: math.NaN()}, ErrBadIPC},
		{"inf ipc", Trace{Total: 10, IPC: math.Inf(1)}, ErrBadIPC},
		{"unsorted", Trace{Total: 10, IPC: 1, Events: []Event{{5, isa.OpVOR}, {1, isa.OpVOR}}}, ErrUnsorted},
		{"duplicate", Trace{Total: 10, IPC: 1, Events: []Event{{5, isa.OpVOR}, {5, isa.OpVOR}}}, ErrDuplicate},
		{"out of range", Trace{Total: 10, IPC: 1, Events: []Event{{10, isa.OpVOR}}}, ErrOutOfRange},
		{"nop opcode", Trace{Total: 10, IPC: 1, Events: []Event{{1, isa.OpNop}}}, ErrBadOpcode},
		{"invalid opcode", Trace{Total: 10, IPC: 1, Events: []Event{{1, isa.Opcode(999)}}}, ErrBadOpcode},
	}
	for _, c := range cases {
		err := c.tr.Validate()
		if c.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if c.want != nil && !errorsIs(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestGapsSumInvariant(t *testing.T) {
	tr := mkTrace(t, 100, 0, 10, 11, 99)
	gaps := tr.Gaps()
	if len(gaps) != len(tr.Events)+1 {
		t.Fatalf("got %d gaps, want %d", len(gaps), len(tr.Events)+1)
	}
	var sum uint64
	for _, g := range gaps {
		sum += g
	}
	want := tr.Total - uint64(len(tr.Events))
	if sum != want {
		t.Errorf("gap sum = %d, want %d", sum, want)
	}
	wantGaps := []uint64{0, 9, 0, 87, 0}
	if !reflect.DeepEqual(gaps, wantGaps) {
		t.Errorf("gaps = %v, want %v", gaps, wantGaps)
	}
}

func TestGapHistogram(t *testing.T) {
	tr := mkTrace(t, 2000, 0, 5, 105, 1105)
	// Gaps: 0, 4, 99, 999, 894 → buckets 0,0,1,2,2.
	hist := tr.GapHistogram()
	want := []uint64{2, 1, 2}
	if !reflect.DeepEqual(hist, want) {
		t.Errorf("hist = %v, want %v", hist, want)
	}
}

func TestCyclesAndDensity(t *testing.T) {
	tr := &Trace{Total: 1000, IPC: 2, Events: []Event{{1, isa.OpVOR}, {2, isa.OpVXOR}}}
	if got := tr.Cycles(500); got != 250 {
		t.Errorf("Cycles(500) = %v, want 250", got)
	}
	if got := tr.TotalCycles(); got != 500 {
		t.Errorf("TotalCycles = %v, want 500", got)
	}
	if got := tr.Density(); got != 0.002 {
		t.Errorf("Density = %v, want 0.002", got)
	}
	empty := &Trace{IPC: 1}
	if empty.Density() != 0 {
		t.Error("empty trace density must be 0")
	}
}

func TestFilterFamilies(t *testing.T) {
	tr := &Trace{Total: 100, IPC: 1, Events: []Event{
		{1, isa.OpIMUL}, {2, isa.OpAESENC}, {3, isa.OpVOR}, {4, isa.OpVPADDQ},
	}}
	f := tr.FaultableOnly()
	if len(f.Events) != 3 {
		t.Errorf("FaultableOnly kept %d events, want 3 (IMUL dropped)", len(f.Events))
	}
	ns := tr.WithoutSIMD()
	// AESENC, VOR, VPADDQ are SIMD → only IMUL survives.
	if len(ns.Events) != 1 || ns.Events[0].Op != isa.OpIMUL {
		t.Errorf("WithoutSIMD = %v, want only IMUL", ns.Events)
	}
	if ns.Total != tr.Total || ns.IPC != tr.IPC {
		t.Error("Filter must preserve Total and IPC")
	}
}

func TestWindow(t *testing.T) {
	tr := mkTrace(t, 100, 5, 10, 20, 30)
	got := tr.Window(10, 30)
	if len(got) != 2 || got[0].Index != 10 || got[1].Index != 20 {
		t.Errorf("Window(10,30) = %v", got)
	}
	if len(tr.Window(0, 5)) != 0 {
		t.Error("Window before first event should be empty")
	}
	if len(tr.Window(0, 101)) != 4 {
		t.Error("full Window should return all events")
	}
}

func TestMerge(t *testing.T) {
	a := mkTrace(t, 100, 1, 10)
	b := mkTrace(t, 100, 5, 50)
	m, err := Merge("merged", a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []uint64{1, 5, 10, 50}
	for i, ev := range m.Events {
		if ev.Index != wantIdx[i] {
			t.Errorf("merged[%d].Index = %d, want %d", i, ev.Index, wantIdx[i])
		}
	}
	// Mismatched totals rejected.
	c := mkTrace(t, 200, 1)
	if _, err := Merge("bad", a, c); err == nil {
		t.Error("Merge with mismatched totals should fail")
	}
	// Duplicate indices rejected.
	d := mkTrace(t, 100, 1)
	if _, err := Merge("dup", a, d); err == nil {
		t.Error("Merge with duplicate indices should fail")
	}
	if _, err := Merge("none"); err == nil {
		t.Error("Merge with no traces should fail")
	}
}

func TestSummarize(t *testing.T) {
	tr := mkTrace(t, 1000, 100, 200)
	s := Summarize(tr)
	if s.Events != 2 || s.Total != 1000 {
		t.Errorf("Stats events/total = %d/%d", s.Events, s.Total)
	}
	// Gaps: 100, 99, 799.
	if s.MaxGap != 799 {
		t.Errorf("MaxGap = %d, want 799", s.MaxGap)
	}
	if s.MedianGap != 100 {
		t.Errorf("MedianGap = %d, want 100", s.MedianGap)
	}
	wantMean := float64(100+99+799) / 3
	if math.Abs(s.MeanGap-wantMean) > 1e-9 {
		t.Errorf("MeanGap = %v, want %v", s.MeanGap, wantMean)
	}
	if s.ByOpcode[isa.OpAESENC] != 2 {
		t.Errorf("ByOpcode[AESENC] = %d, want 2", s.ByOpcode[isa.OpAESENC])
	}
}

func TestGapsPropertySumAlwaysMatches(t *testing.T) {
	prop := func(raw []uint32, totalExtra uint16) bool {
		idx := make([]uint64, 0, len(raw))
		seen := map[uint64]bool{}
		for _, r := range raw {
			v := uint64(r % 10000)
			if !seen[v] {
				seen[v] = true
				idx = append(idx, v)
			}
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
		total := 10000 + uint64(totalExtra)
		tr := &Trace{Total: total, IPC: 1}
		for _, i := range idx {
			tr.Events = append(tr.Events, Event{Index: i, Op: isa.OpVOR})
		}
		if tr.Validate() != nil {
			return false
		}
		var sum uint64
		for _, g := range tr.Gaps() {
			sum += g
		}
		return sum == total-uint64(len(idx))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
