package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func a() {
	_ = 1 //lint:allow determinism trailing form with a reason
}

func b() {
	//lint:allow units standalone form above the statement
	_ = 2
}

func c() {
	_ = 3 //lint:allow determinism
}

func d() {
	_ = 4 //lint:allow nosuchpass it is not a real analyzer
}

func e() {
	_ = 5 //lint:allow
}
`

func parseAllowSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectAllows(t *testing.T) {
	fset, files := parseAllowSrc(t)
	known := map[string]bool{"determinism": true, "units": true}
	allows, bad := CollectAllows(fset, files, known)

	if len(allows) != 2 {
		t.Fatalf("well-formed allows = %d, want 2: %+v", len(allows), allows)
	}
	if allows[0].Analyzer != "determinism" || allows[1].Analyzer != "units" {
		t.Errorf("allow analyzers = %s, %s; want determinism, units",
			allows[0].Analyzer, allows[1].Analyzer)
	}

	if len(bad) != 3 {
		t.Fatalf("malformed allows = %d, want 3: %+v", len(bad), bad)
	}
	wantBad := []string{"missing a reason", "unknown analyzer nosuchpass", "needs an analyzer name"}
	for i, w := range wantBad {
		if bad[i].Analyzer != "lintallow" {
			t.Errorf("bad[%d].Analyzer = %s, want lintallow", i, bad[i].Analyzer)
		}
		if !strings.Contains(bad[i].Message, w) {
			t.Errorf("bad[%d].Message = %q, want substring %q", i, bad[i].Message, w)
		}
	}
}

func TestSuppress(t *testing.T) {
	fset, files := parseAllowSrc(t)
	known := map[string]bool{"determinism": true, "units": true}
	allows, _ := CollectAllows(fset, files, known)

	lineOf := func(a Allow) int { return a.Line }
	trailing, standalone := allows[0], allows[1]

	posAt := func(line int) token.Pos {
		tf := fset.File(files[0].Pos())
		return tf.LineStart(line)
	}

	diags := []Diagnostic{
		// Same line as the trailing suppression: suppressed.
		{Pos: posAt(lineOf(trailing)), Analyzer: "determinism", Message: "x"},
		// Line below the standalone suppression: suppressed.
		{Pos: posAt(lineOf(standalone) + 1), Analyzer: "units", Message: "y"},
		// Wrong analyzer on a suppressed line: kept.
		{Pos: posAt(lineOf(trailing)), Analyzer: "units", Message: "z"},
		// Two lines below a suppression: kept.
		{Pos: posAt(lineOf(standalone) + 2), Analyzer: "units", Message: "w"},
	}
	kept := Suppress(fset, diags, allows)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	if kept[0].Message != "z" || kept[1].Message != "w" {
		t.Errorf("kept = %q, %q; want z, w", kept[0].Message, kept[1].Message)
	}
}

// TestSuppressionScoping is the regression test for the allow-scoping
// bug: each form must cover exactly one line (trailing → its own,
// standalone → the one below) and only its named analyzer. Before the
// fix a trailing allow also swallowed same-analyzer findings on the
// next line.
func TestSuppressionScoping(t *testing.T) {
	fset, files := parseAllowSrc(t)
	known := map[string]bool{"determinism": true, "units": true}
	allows, _ := CollectAllows(fset, files, known)
	trailing, standalone := allows[0], allows[1]

	if !trailing.Trailing {
		t.Error("allow after code on the line not detected as trailing")
	}
	if standalone.Trailing {
		t.Error("allow on its own line misdetected as trailing")
	}

	posAt := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}

	diags := []Diagnostic{
		// Line below a TRAILING suppression, same analyzer: must be kept.
		{Pos: posAt(trailing.Line + 1), Analyzer: "determinism", Message: "below-trailing"},
		// Same line as a STANDALONE suppression (the comment's own line):
		// must be kept — nothing but the comment is there to suppress.
		{Pos: posAt(standalone.Line), Analyzer: "units", Message: "on-standalone"},
		// A different analyzer's finding on a covered line: must be kept
		// even though a suppression covers that line for another analyzer.
		{Pos: posAt(standalone.Line + 1), Analyzer: "determinism", Message: "other-analyzer"},
		// Control: the intended targets are still suppressed.
		{Pos: posAt(trailing.Line), Analyzer: "determinism", Message: "on-trailing"},
		{Pos: posAt(standalone.Line + 1), Analyzer: "units", Message: "below-standalone"},
	}
	kept := Suppress(fset, diags, allows)
	var msgs []string
	for _, d := range kept {
		msgs = append(msgs, d.Message)
	}
	want := []string{"below-trailing", "on-standalone", "other-analyzer"}
	if len(msgs) != len(want) {
		t.Fatalf("kept = %v, want %v", msgs, want)
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Errorf("kept[%d] = %q, want %q", i, msgs[i], want[i])
		}
	}
}

// TestAllowTrackerStale exercises the used-marking that feeds stale
// detection: suppressing a diagnostic or being consulted via match
// marks an allow used; untouched allows stay stale.
func TestAllowTrackerStale(t *testing.T) {
	fset, files := parseAllowSrc(t)
	known := map[string]bool{"determinism": true, "units": true}
	allows, _ := CollectAllows(fset, files, known)
	tr := newAllowTracker(allows)

	posAt := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}

	// Suppress a diagnostic covered by the trailing determinism allow.
	kept := tr.suppress(fset, []Diagnostic{
		{Pos: posAt(allows[0].Line), Analyzer: "determinism", Message: "x"},
	})
	if len(kept) != 0 {
		t.Fatalf("kept = %+v, want none", kept)
	}
	if !tr.used[0] {
		t.Error("suppressing a diagnostic did not mark the allow used")
	}
	if tr.used[1] {
		t.Error("unrelated allow marked used")
	}

	// Consulting via match (the Pass.Allowed path) also marks used.
	if !tr.match("units", fset.Position(posAt(allows[1].Line+1))) {
		t.Fatal("match missed the standalone units allow")
	}
	if !tr.used[1] {
		t.Error("match did not mark the allow used")
	}
}

func TestMalformedAllowDoesNotSuppress(t *testing.T) {
	fset, files := parseAllowSrc(t)
	allows, _ := CollectAllows(fset, files, map[string]bool{"determinism": true})

	// The reason-less //lint:allow determinism in func c must not have
	// produced an Allow for its line.
	tf := fset.File(files[0].Pos())
	for _, a := range allows {
		line := a.Line
		text := allowSrc[tf.Offset(tf.LineStart(line)):]
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			text = text[:i]
		}
		if strings.Contains(text, "_ = 3") {
			t.Errorf("reason-less suppression was honored: %+v", a)
		}
	}
}
