package service

import (
	"bytes"
	"context"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"suit/internal/core"
)

// tinySpec is a fast submission: n grid points over one short network
// workload at the minimum instruction count.
func tinySpec(n int, seed uint64) Spec {
	params := make([]ParamSpec, n)
	deadlines := []float64{10, 20, 30, 50, 80, 100, 150, 200}
	for i := range params {
		params[i] = ParamSpec{
			DeadlineUS:     deadlines[i%len(deadlines)],
			TimeSpanUS:     450,
			MaxExceptions:  2 + i/len(deadlines),
			DeadlineFactor: 9,
		}
	}
	return Spec{
		Benches:      []string{"VLC"},
		Instructions: 20_000,
		Seed:         seed,
		Params:       params,
	}
}

// drainNow shuts a service down with an already-expired context.
func drainNow(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

func waitTerminal(t *testing.T, j *Job) Event {
	t.Helper()
	select {
	case <-j.Terminal():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID)
	}
	return j.Snapshot()
}

func TestSubmitRunsToDone(t *testing.T) {
	svc, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svc)

	job, outcome, err := svc.Submit(tinySpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitQueued {
		t.Fatalf("outcome = %d, want SubmitQueued", outcome)
	}
	snap := waitTerminal(t, job)
	if snap.State != StateDone {
		t.Fatalf("state = %s (%s)", snap.State, snap.Error)
	}
	res := job.Result()
	if res == nil || len(res.Points) != 2 || res.GridPoints != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Points[0].Efficiency < res.Points[len(res.Points)-1].Efficiency {
		t.Error("ranking is not descending by efficiency")
	}
	// Resubmission of the finished job coalesces — no new execution.
	again, outcome, err := svc.Submit(tinySpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitCoalesced || again != job {
		t.Errorf("resubmission: outcome %d, same job %v", outcome, again == job)
	}
	if ran := svc.EngineStats().Ran; ran != 2 {
		t.Errorf("engine ran %d scenarios, want 2", ran)
	}
}

// TestSingleFlightSubmissions: N concurrent identical submissions
// create exactly one job and one engine execution (run with -race).
func TestSingleFlightSubmissions(t *testing.T) {
	release := make(chan struct{})
	var executions atomic.Int64
	cfg := Config{StateDir: t.TempDir(), ExecJobs: 2}
	cfg.runJob = func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
		executions.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return core.Outcome{}, ctx.Err()
		}
		return core.RunJob(ctx, sc, seed)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svc)

	const callers = 8
	spec := tinySpec(1, 1)
	var wg sync.WaitGroup
	jobs := make([]*Job, callers)
	outcomes := make([]SubmitOutcome, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], outcomes[i], errs[i] = svc.Submit(spec)
		}(i)
	}
	wg.Wait()
	close(release)

	var queued, coalesced int
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if jobs[i] != jobs[0] {
			t.Fatalf("caller %d got a different job", i)
		}
		switch outcomes[i] {
		case SubmitQueued:
			queued++
		case SubmitCoalesced:
			coalesced++
		}
	}
	if queued != 1 || coalesced != callers-1 {
		t.Fatalf("queued=%d coalesced=%d, want 1 and %d", queued, coalesced, callers-1)
	}
	if snap := waitTerminal(t, jobs[0]); snap.State != StateDone {
		t.Fatalf("state = %s (%s)", snap.State, snap.Error)
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("engine executed %d scenarios, want exactly 1", got)
	}
}

func TestBackpressureQueueFull(t *testing.T) {
	release := make(chan struct{})
	cfg := Config{StateDir: t.TempDir(), ExecJobs: 1, QueueDepth: 1}
	cfg.runJob = func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return core.Outcome{}, ctx.Err()
		}
		return core.RunJob(ctx, sc, seed)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svc)

	jobA, _, err := svc.Submit(tinySpec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the executor to dequeue A, freeing the queue slot.
	for i := 0; jobA.State() != StateRunning; i++ {
		if i > 5000 {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, outcome, err := svc.Submit(tinySpec(1, 2)); err != nil || outcome != SubmitQueued {
		t.Fatalf("B: outcome %d err %v, want queued", outcome, err)
	}
	_, outcome, err := svc.Submit(tinySpec(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitQueueFull {
		t.Fatalf("C: outcome %d, want SubmitQueueFull", outcome)
	}
	if retry := svc.RetryAfterSeconds(); retry < 1 || retry > 300 {
		t.Errorf("RetryAfterSeconds = %d, want within [1, 300]", retry)
	}
	// The advice scales with occupancy: B is still queued ahead of the
	// rejected client, so with a (synthetic) 42 s mean job duration one
	// executor wave must drain before a retry can be admitted.
	svc.jobsExecuted.Store(1)
	svc.jobSecondsMilli.Store(42_000)
	if retry := svc.RetryAfterSeconds(); retry != 42 {
		t.Errorf("RetryAfterSeconds with 1 queued job = %d, want 42 (1 wave x 42 s)", retry)
	}
	close(release)
}

func TestDrainRefusesSubmissions(t *testing.T) {
	svc, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	drainNow(t, svc)
	if _, outcome, err := svc.Submit(tinySpec(1, 1)); err != nil || outcome != SubmitDraining {
		t.Fatalf("outcome %d err %v, want SubmitDraining", outcome, err)
	}
}

// TestDrainResumeByteIdentical is the service half of the PR 3
// checkpoint contract: a daemon killed mid-sweep, restarted against
// the same state dir and asked the same question reproduces the
// uninterrupted result byte for byte (run with -race).
func TestDrainResumeByteIdentical(t *testing.T) {
	spec := tinySpec(6, 3)
	specN, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	id := specN.ID()

	// Reference: an uninterrupted daemon lifetime.
	dirA := t.TempDir()
	svcA, err := New(Config{StateDir: dirA, EngineWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobA, _, err := svcA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, jobA); snap.State != StateDone {
		t.Fatalf("reference job: %s (%s)", snap.State, snap.Error)
	}
	drainNow(t, svcA)
	bytesA, err := os.ReadFile(svcA.store.path(id))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted lifetime: two scenarios complete, the third blocks
	// until drain cancels it.
	dirB := t.TempDir()
	var calls atomic.Int64
	held := make(chan struct{})
	cfg := Config{StateDir: dirB, EngineWorkers: 1}
	cfg.runJob = func(ctx context.Context, sc core.Scenario, seed uint64) (core.Outcome, error) {
		if calls.Add(1) <= 2 {
			return core.RunJob(ctx, sc, seed)
		}
		select {
		case held <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return core.Outcome{}, ctx.Err()
	}
	svcB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobB, _, err := svcB.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-held:
	case <-time.After(120 * time.Second):
		t.Fatal("third scenario never started")
	}
	drainNow(t, svcB) // expired context: running sweeps are cancelled now
	if snap := jobB.Snapshot(); snap.State != StateCanceled {
		t.Fatalf("interrupted job state = %s (%s), want canceled", snap.State, snap.Error)
	}
	if _, err := os.Stat(svcB.store.path(id)); err == nil {
		t.Fatal("interrupted job must not have stored a result")
	}

	// Restarted lifetime on the same state dir: the journal marks the
	// two finished points, the cache replays them, the rest computes.
	svcC, err := New(Config{StateDir: dirB, EngineWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svcC)
	jobC, outcome, err := svcC.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitQueued {
		t.Fatalf("resubmission outcome = %d, want queued (a fresh registry)", outcome)
	}
	if snap := waitTerminal(t, jobC); snap.State != StateDone {
		t.Fatalf("resumed job: %s (%s)", snap.State, snap.Error)
	}
	st := svcC.EngineStats()
	if st.DiskHits != 2 || st.Resumed != 2 || st.Ran != 4 {
		t.Errorf("resume accounting: disk hits %d, resumed %d, ran %d; want 2/2/4", st.DiskHits, st.Resumed, st.Ran)
	}
	bytesC, err := os.ReadFile(svcC.store.path(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytesA, bytesC) {
		t.Errorf("resumed result differs from uninterrupted run:\nA: %s\nC: %s", bytesA, bytesC)
	}
}

// TestResultStoreAcrossRestart: a completed result is served from the
// persistent store by a fresh daemon lifetime without any engine work.
func TestResultStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svcA, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	jobA, _, err := svcA.Submit(tinySpec(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, jobA); snap.State != StateDone {
		t.Fatalf("job: %s (%s)", snap.State, snap.Error)
	}
	drainNow(t, svcA)

	svcB, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svcB)
	jobB, outcome, err := svcB.Submit(tinySpec(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitStored {
		t.Fatalf("outcome = %d, want SubmitStored", outcome)
	}
	if jobB.State() != StateDone || jobB.Result() == nil {
		t.Fatal("stored job should be done with a result immediately")
	}
	if ran := svcB.EngineStats().Ran; ran != 0 {
		t.Errorf("restart served from store but ran %d scenarios", ran)
	}
}

// TestJobEvents: subscribers see the queued→running→done progression
// and the stream closes after the terminal event.
func TestJobEvents(t *testing.T) {
	svc, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, svc)
	job, _, err := svc.Submit(tinySpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := job.Subscribe()
	defer cancel()
	var last Event
	sawTerminal := false
	for ev := range events {
		last = ev
		if ev.State == StateDone || ev.State == StateFailed || ev.State == StateCanceled {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("stream closed without a terminal event")
	}
	if last.State != StateDone || last.Done != last.Total || last.Total != 2 {
		t.Errorf("terminal event = %+v", last)
	}
}

// TestRetriesExplicitZeroSticks is the regression test for the config
// bug where `-retries 0` was silently promoted to 1: zero must be
// honored as "no retries" (the engine's single-attempt mode and
// suitsweep's default), while negative means "unset → default 1" (the
// suitd default).
func TestRetriesExplicitZeroSticks(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{in: 0, want: 0},
		{in: -1, want: 1},
		{in: -7, want: 1},
		{in: 3, want: 3},
	} {
		cfg, err := Config{StateDir: t.TempDir(), Retries: tc.in}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Retries != tc.want {
			t.Errorf("Retries %d → %d, want %d", tc.in, cfg.Retries, tc.want)
		}
	}
}

// TestRetryAfterScalesWithQueueDepth pins the backpressure advice to
// the backlog: ⌈queued / ExecJobs⌉ waves of the mean job duration,
// clamped to [1, 300]. The service is built directly (no executor pool)
// so queue occupancy and the duration telemetry are fully controlled.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	s := &Service{cfg: Config{ExecJobs: 2}, queue: make(chan *Job, 8)}
	s.jobsExecuted.Store(2)
	s.jobSecondsMilli.Store(16_000) // mean job duration 8 s
	if got := s.RetryAfterSeconds(); got != 8 {
		t.Errorf("empty queue: RetryAfterSeconds = %d, want 8 (one wave)", got)
	}
	for i := 0; i < 5; i++ {
		s.queue <- nil
	}
	if got := s.RetryAfterSeconds(); got != 24 {
		t.Errorf("5 queued / 2 executors: RetryAfterSeconds = %d, want 24 (3 waves x 8 s)", got)
	}
	s.jobSecondsMilli.Store(2_000_000) // mean 1000 s: the clamp must hold
	if got := s.RetryAfterSeconds(); got != 300 {
		t.Errorf("clamp: RetryAfterSeconds = %d, want 300", got)
	}
}
